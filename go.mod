module dmcs

go 1.21
