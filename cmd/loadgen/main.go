// Command loadgen drives a dmcsd serving tier with a query+update mix
// and reports against an SLO. It has two phases:
//
//  1. Calibration: a short closed-loop run (one in-flight probe per
//     engine worker, live update stream) measures the uncontended
//     latency profile of the real mix — service times without queue
//     wait — and the sustainable throughput (capacity).
//  2. Overload: an open-loop run offers -overload × capacity of the
//     same whale-skewed mix. Open-loop means requests fire on the
//     clock whether or not earlier ones returned — the arrival process
//     does not politely slow down for a struggling server, which is
//     exactly the regime admission control exists for.
//
// The report (written to -out as JSON, summarized on stdout) gives
// p50/p95/p99 of admitted (HTTP 200, complete) answers plus
// shed/stale/timeout rates, and the SLO verdict: under overload the
// tier must keep admitted p99 within -p99-factor × the uncontended p99
// while shedding the excess explicitly (429s or stale answers — never
// hangs, never crashes). Exit status 0 means the verdict held, 1 not,
// 2 bad usage.
//
// With -addr it speaks HTTP to a running dmcsd. Without, it spins up
// the serving tier in-process around a synthetic many-community +
// whale fixture and dispatches requests straight into the handler
// stack (no sockets), so the measured ceiling is the server's
// admission and peel machinery rather than client socket throughput:
//
//	loadgen -duration 10s -out BENCH_7.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dmcs/internal/engine"
	"dmcs/internal/graph"
	"dmcs/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target dmcsd base URL (empty = in-process server, direct dispatch)")
		comms     = flag.Int("comms", 256, "in-process fixture: number of small communities")
		commSize  = flag.Int("comm-size", 64, "in-process fixture: nodes per small community")
		whaleSize = flag.Int("whale-size", 16384, "in-process fixture: whale component size")
		workers   = flag.Int("workers", 0, "in-process engine workers (0 = GOMAXPROCS)")
		slo       = flag.Duration("slo", 0, "in-process server p99 target (0 = auto: the measured uncontended p99)")
		duration  = flag.Duration("duration", 10*time.Second, "overload phase length")
		calib     = flag.Duration("calibrate", 2*time.Second, "calibration phase length")
		overload  = flag.Float64("overload", 4, "offered load as a multiple of measured capacity")
		whaleFrac = flag.Float64("whale-frac", 0.2, "fraction of offered queries aimed at the whale component")
		updEvery  = flag.Duration("update-every", 50*time.Millisecond, "interval between mutation batches (0 disables)")
		conns     = flag.Int("conns", 512, "max outstanding open-loop requests")
		p99Factor = flag.Float64("p99-factor", 2, "SLO verdict: admitted p99 must stay within this × the uncontended baseline p99")
		out       = flag.String("out", "", "write the JSON report here ('' = stdout only)")
	)
	flag.Parse()

	mix := queryMix{
		nSmall:    *comms,
		commSize:  *commSize,
		whaleBase: *comms * *commSize,
		whalePct:  int(*whaleFrac * 100),
	}

	// In-process mode builds the engine once and wraps it in two server
	// configurations: a wide-open one for calibration (admission effectively
	// disabled, so the probe measures the ENGINE's capacity, not a token
	// bucket's opinion of it), then the real tier with buckets and SLO tuned
	// from what calibration measured — the same self-tuning a deployment
	// would do from a staging run.
	var eng *engine.Engine
	var call caller
	var tieredClose func()
	if *addr == "" {
		g := fixtureGraph(*comms, *commSize, *whaleSize)
		eng = engine.New(g, engine.Options{Workers: *workers, StaleRetention: 8})
		calSrv := server.New(eng, server.Config{
			SampleInterval: -1, // no overload sampler: calibration stays healthy
			CheapRate:      1e12, CheapBurst: 1e12,
			ExpensiveRate: 1e12, ExpensiveBurst: 1e12,
		})
		call = &directCaller{h: calSrv}
		tieredClose = calSrv.Close
		fmt.Printf("loadgen: in-process serving tier (%d nodes, %d edges, whale=%d, workers=%d)\n",
			g.NumNodes(), g.NumEdges(), *whaleSize, eng.Workers())
	} else {
		call = &httpCaller{
			base: strings.TrimRight(*addr, "/"),
			client: &http.Client{
				Timeout:   10 * time.Second,
				Transport: &http.Transport{MaxIdleConnsPerHost: *conns},
			},
		}
		tieredClose = func() {}
		fmt.Printf("loadgen: targeting %s (fixture flags must describe its graph; its own admission config applies to both phases)\n", *addr)
	}

	// Overload-phase client concurrency. In-process mode runs requesters
	// on the same cores as the engine: hundreds of outstanding goroutines
	// turn measured latency into Go scheduler queueing, not serving-tier
	// behavior. Enough outstanding to keep admission saturated is enough;
	// offered load beyond that is honestly counted as dropped.
	outstanding := *conns
	calWorkers := 4
	if *addr == "" {
		if limit := 4 * eng.Workers(); outstanding > limit {
			outstanding = limit
		}
		// One in-flight probe per engine worker: no admitted query ever
		// queues, so the baseline p99 is the pure service-time tail of the
		// mix — whale peels and post-epoch cold cache included, queue wait
		// excluded. That is the "uncontended" reference the overload
		// verdict compares against.
		calWorkers = eng.Workers()
	}

	// ---- Phase 1: calibration (closed loop, same mix, updates live) ----
	fmt.Printf("loadgen: calibrating for %s...\n", *calib)
	calRes := runLoad(call, mix, loadOpts{
		duration: *calib, closedWorkers: calWorkers, updEvery: *updEvery,
	})
	if calRes.admitted == 0 {
		fatalf("calibration admitted zero queries — server unreachable or shedding at idle")
	}
	capacityQPS := float64(calRes.admitted) / calib.Seconds()
	baselineP99 := percentile(calRes.latencies, 99)
	fmt.Printf("loadgen: capacity ≈ %.0f q/s, uncontended baseline p50=%s p99=%s\n",
		capacityQPS, percentile(calRes.latencies, 50), baselineP99)

	if *addr == "" {
		// Swap in the tuned tier: cheap bucket sized to measured capacity,
		// overload SLO anchored at the uncontended p99 so the controller
		// degrades the moment contention starts stretching the tail.
		tieredClose()
		sloTarget := *slo
		if sloTarget == 0 {
			sloTarget = baselineP99
		}
		// The inflight bound is the queue-wait bound: every admitted query
		// can wait behind at most MaxInflight-1 peels. One slot per engine
		// worker means an admitted query NEVER waits — its latency is pure
		// service time, so the admitted tail tracks the uncontended
		// baseline instead of a multiple of it, and everything the engine
		// can't start right now is shed explicitly rather than queued
		// invisibly. The expensive bucket is sized to
		// exactly one whale's admission cost (component size / 256) with a
		// refill of one whale per second: a whale convoy — the worst-case
		// queue, two multi-ms peels back to back — is structurally
		// impossible. The sampler runs fast so degradation engages within
		// a few peels of the tail stretching.
		whaleCost := float64(*whaleSize) / 256
		if whaleCost < 1 {
			whaleCost = 1
		}
		srv := server.New(eng, server.Config{
			CheapRate:      capacityQPS,
			CheapBurst:     2 * capacityQPS,
			ExpensiveRate:  whaleCost,
			ExpensiveBurst: whaleCost,
			MaxInflight:    eng.Workers(),
			SampleInterval: 20 * time.Millisecond,
			Overload:       server.OverloadConfig{SLO: sloTarget},
		})
		call = &directCaller{h: srv}
		tieredClose = func() {
			srv.StartDrain()
			srv.Close()
		}
		fmt.Printf("loadgen: tuned tier: cheap-rate=%.0f/s slo=%s\n", capacityQPS, sloTarget)
	}
	defer tieredClose()

	// ---- Phase 2: overload (open loop, same mix) ----
	offered := capacityQPS * *overload
	fmt.Printf("loadgen: offering %.0f q/s (%.1f× capacity, %d%% whales) for %s\n",
		offered, *overload, mix.whalePct, *duration)
	res := runLoad(call, mix, loadOpts{
		duration: *duration, openQPS: offered, maxOutstanding: outstanding, updEvery: *updEvery,
	})

	// ---- Report ----
	admittedP99 := percentile(res.latencies, 99)
	budget := time.Duration(float64(baselineP99) * *p99Factor)
	rep := report{
		Bench:          "serving-slo-overload",
		CapacityQPS:    round2(capacityQPS),
		BaselineP50US:  percentile(calRes.latencies, 50).Microseconds(),
		BaselineP99US:  baselineP99.Microseconds(),
		OfferedQPS:     round2(offered),
		OverloadFactor: *overload,
		WhaleFrac:      *whaleFrac,
		DurationS:      duration.Seconds(),
		Offered:        res.offered,
		Admitted:       res.admitted,
		Stale:          res.stale,
		Shed:           res.shed,
		Timeout:        res.timeout,
		Errored:        res.errored,
		Dropped:        res.dropped,
		ShedRate:       rate(res.shed, res.offered),
		StaleRate:      rate(res.stale, res.admitted),
		TimeoutRate:    rate(res.timeout, res.offered),
		AdmittedP50US:  percentile(res.latencies, 50).Microseconds(),
		AdmittedP95US:  percentile(res.latencies, 95).Microseconds(),
		AdmittedP99US:  admittedP99.Microseconds(),
		P99Factor:      *p99Factor,
		SLOHeld:        res.admitted > 0 && admittedP99 <= budget && res.shed+res.stale > 0,
	}
	if stats := fetchStats(call); stats != nil {
		rep.ServerStats = stats
	}

	fmt.Printf("loadgen: offered=%d admitted=%d (stale=%d) shed=%d timeout=%d errored=%d dropped=%d\n",
		res.offered, res.admitted, res.stale, res.shed, res.timeout, res.errored, res.dropped)
	fmt.Printf("loadgen: admitted p50=%s p95=%s p99=%s (budget %s = %.1f× baseline p99)\n",
		percentile(res.latencies, 50), percentile(res.latencies, 95), admittedP99, budget, *p99Factor)
	verdict := "HELD"
	if !rep.SLOHeld {
		verdict = "VIOLATED"
	}
	fmt.Printf("loadgen: SLO %s\n", verdict)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal report: %v", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("loadgen: report written to %s\n", *out)
	} else {
		fmt.Println(string(blob))
	}
	if !rep.SLOHeld {
		os.Exit(1)
	}
}

type report struct {
	Bench          string  `json:"bench"`
	CapacityQPS    float64 `json:"capacity_qps"`
	BaselineP50US  int64   `json:"baseline_p50_us"`
	BaselineP99US  int64   `json:"baseline_p99_us"`
	OfferedQPS     float64 `json:"offered_qps"`
	OverloadFactor float64 `json:"overload_factor"`
	WhaleFrac      float64 `json:"whale_frac"`
	DurationS      float64 `json:"duration_s"`
	Offered        int64   `json:"offered"`
	Admitted       int64   `json:"admitted"`
	Stale          int64   `json:"stale"`
	Shed           int64   `json:"shed"`
	Timeout        int64   `json:"timeout"`
	Errored        int64   `json:"errored"`
	Dropped        int64   `json:"dropped"`
	ShedRate       float64 `json:"shed_rate"`
	StaleRate      float64 `json:"stale_rate"`
	TimeoutRate    float64 `json:"timeout_rate"`
	AdmittedP50US  int64   `json:"admitted_p50_us"`
	AdmittedP95US  int64   `json:"admitted_p95_us"`
	AdmittedP99US  int64   `json:"admitted_p99_us"`
	P99Factor      float64 `json:"p99_factor"`
	SLOHeld        bool    `json:"slo_held"`
	ServerStats    any     `json:"server_stats,omitempty"`
}

// caller abstracts the transport: real HTTP against a remote dmcsd, or
// direct in-process dispatch into the handler stack.
type caller interface {
	do(path, body string) (status int, resp []byte, err error)
}

type httpCaller struct {
	base   string
	client *http.Client
}

func (c *httpCaller) do(path, body string) (int, []byte, error) {
	var resp *http.Response
	var err error
	if body == "" {
		resp, err = c.client.Get(c.base + path)
	} else {
		ct := "application/json"
		if path == "/apply" {
			ct = "text/plain"
		}
		resp, err = c.client.Post(c.base+path, ct, strings.NewReader(body))
	}
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

type directCaller struct{ h http.Handler }

func (c *directCaller) do(path, body string) (status int, raw []byte, err error) {
	// A dropped-response injection aborts the "connection" by panicking
	// with http.ErrAbortHandler; model it as a transport error.
	defer func() {
		if r := recover(); r != nil {
			status, raw, err = 0, nil, fmt.Errorf("connection aborted: %v", r)
		}
	}()
	method := http.MethodPost
	if body == "" {
		method = http.MethodGet
	}
	r := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	c.h.ServeHTTP(w, r)
	return w.Code, w.Body.Bytes(), nil
}

// queryMix deterministically generates the request stream: whale
// queries (rotating over 16 whale entry nodes) interleaved at whalePct
// per hundred, cheap queries rotating over every node of every small
// community (far more distinct query sets than the result cache holds,
// so the cheap stream keeps computing instead of degenerating into
// pure cache hits).
type queryMix struct {
	nSmall    int
	commSize  int
	whaleBase int
	whalePct  int
}

func (m queryMix) body(i int64) string {
	if m.whalePct > 0 && i%100 < int64(m.whalePct) {
		return fmt.Sprintf(`{"nodes":[%d],"timeout_ms":1000}`, int64(m.whaleBase)+i%16)
	}
	comm := i % int64(m.nSmall)
	off := (i / int64(m.nSmall)) % int64(m.commSize)
	return fmt.Sprintf(`{"nodes":[%d],"timeout_ms":1000}`, comm*int64(m.commSize)+off)
}

type runResult struct {
	offered, admitted, stale, shed, timeout, errored, dropped int64
	latencies                                                 []time.Duration
}

func (r *runResult) record(lat time.Duration, o outcome) {
	switch o {
	case outAdmitted:
		r.admitted++
		r.latencies = append(r.latencies, lat)
	case outStale:
		r.admitted++
		r.stale++
		r.latencies = append(r.latencies, lat)
	case outShed:
		r.shed++
	case outTimeout:
		r.timeout++
	default:
		r.errored++
	}
}

type loadOpts struct {
	duration       time.Duration
	closedWorkers  int     // > 0: closed loop with this many workers
	openQPS        float64 // > 0: open loop at this offered rate
	maxOutstanding int
	updEvery       time.Duration
}

// runLoad drives one phase. Closed loop: each worker keeps exactly one
// request in flight. Open loop: a 1ms pacer fires batches on the clock
// regardless of completions, bounded only by maxOutstanding in flight
// (arrivals beyond that count as dropped — the client ran out of
// sockets; a functioning admission tier keeps this near zero because
// refusals return fast).
func runLoad(call caller, mix queryMix, o loadOpts) *runResult {
	res := &runResult{}
	var mu sync.Mutex
	var wg sync.WaitGroup

	stopUpd := make(chan struct{})
	var updWG sync.WaitGroup
	if o.updEvery > 0 {
		updWG.Add(1)
		go func() {
			defer updWG.Done()
			mutateLoop(call, mix, o.updEvery, stopUpd)
		}()
	}

	if o.closedWorkers > 0 {
		stop := time.Now().Add(o.duration)
		var seq int64
		for w := 0; w < o.closedWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					mu.Lock()
					seq++
					i := seq
					res.offered++
					mu.Unlock()
					lat, oc := oneQuery(call, mix.body(i))
					mu.Lock()
					res.record(lat, oc)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	} else {
		sem := make(chan struct{}, o.maxOutstanding)
		// 1ms pacing batches: high offered rates cannot ride a per-request
		// ticker.
		tick := time.NewTicker(time.Millisecond)
		deadline := time.Now().Add(o.duration)
		perTick := o.openQPS / 1000
		var carry float64
		var i int64
		for now := range tick.C {
			if now.After(deadline) {
				break
			}
			carry += perTick
			n := int(carry)
			carry -= float64(n)
			for k := 0; k < n; k++ {
				i++
				body := mix.body(i)
				res.offered++
				select {
				case sem <- struct{}{}:
				default:
					res.dropped++
					continue
				}
				wg.Add(1)
				go func(body string) {
					defer wg.Done()
					defer func() { <-sem }()
					lat, oc := oneQuery(call, body)
					mu.Lock()
					res.record(lat, oc)
					mu.Unlock()
				}(body)
			}
		}
		tick.Stop()
		wg.Wait()
	}
	close(stopUpd)
	updWG.Wait()
	return res
}

// mutateLoop toggles a chord set inside community 0 — a live update
// stream riding along with the query load, forcing epoch churn.
func mutateLoop(call caller, mix queryMix, every time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		var sb bytes.Buffer
		op := "add"
		if i%2 == 1 {
			op = "del"
		}
		for k := 0; k < 4; k++ {
			fmt.Fprintf(&sb, "%s %d %d\n", op, k, (k+mix.commSize/2)%mix.commSize)
		}
		_, _, _ = call.do("/apply", sb.String())
	}
}

type outcome int

const (
	outAdmitted outcome = iota
	outStale
	outShed
	outTimeout
	outErrored
)

func oneQuery(call caller, body string) (time.Duration, outcome) {
	start := time.Now()
	status, raw, err := call.do("/query", body)
	lat := time.Since(start)
	if err != nil {
		return 0, outErrored
	}
	switch status {
	case http.StatusOK:
		var qr struct {
			Stale    bool `json:"stale"`
			TimedOut bool `json:"timed_out"`
		}
		if json.Unmarshal(raw, &qr) != nil {
			return 0, outErrored
		}
		switch {
		case qr.TimedOut:
			return lat, outTimeout
		case qr.Stale:
			return lat, outStale
		default:
			return lat, outAdmitted
		}
	case http.StatusTooManyRequests:
		return lat, outShed
	case http.StatusGatewayTimeout, http.StatusUnprocessableEntity:
		return lat, outTimeout
	default:
		return lat, outErrored
	}
}

func fetchStats(call caller) any {
	status, raw, err := call.do("/stats", "")
	if err != nil || status != http.StatusOK {
		return nil
	}
	var v any
	if json.Unmarshal(raw, &v) != nil {
		return nil
	}
	return v
}

// fixtureGraph is the in-process serving fixture: comms ring+chord
// communities of commSize nodes plus one whale ring of whaleSize nodes.
func fixtureGraph(comms, commSize, whaleSize int) *graph.Graph {
	b := graph.NewBuilder(comms*commSize + whaleSize)
	for c := 0; c < comms; c++ {
		base := c * commSize
		for i := 0; i < commSize; i++ {
			u := graph.Node(base + i)
			b.AddEdge(u, graph.Node(base+(i+1)%commSize))
			b.AddEdge(u, graph.Node(base+(i+7)%commSize))
		}
	}
	wbase := comms * commSize
	for i := 0; i < whaleSize; i++ {
		u := graph.Node(wbase + i)
		b.AddEdge(u, graph.Node(wbase+(i+1)%whaleSize))
		b.AddEdge(u, graph.Node(wbase+(i+13)%whaleSize))
	}
	return b.Build()
}

func percentile(lat []time.Duration, p int) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}

func rate(n, of int64) float64 {
	if of == 0 {
		return 0
	}
	return round2(float64(n) / float64(of))
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
