// Command dmcsvet runs the dmcs static-analysis suite (internal/analysis)
// over the module. It works two ways:
//
//	dmcsvet ./...                         # standalone, like staticcheck
//	go vet -vettool=$(which dmcsvet) ./...  # as a vet tool
//
// Standalone mode loads the matched packages (plus in-module deps) once
// and prints every finding. Vet-tool mode speaks cmd/vet's unit-config
// protocol: go vet invokes the tool once per package with a JSON .cfg
// file; because the suite's analyzers are whole-program (hotpath
// reachability and epoch-key obligations cross package boundaries), the
// tool reloads the module from the unit's directory and reports only the
// findings that land in the unit's own files, so each finding is printed
// exactly once across the vet run.
//
// Exit status: 0 clean, 1 operational error, 2 findings.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dmcs/internal/analysis"
)

func main() {
	args := os.Args[1:]

	// go vet protocol handshake: -V=full prints an identity line used to
	// fingerprint the tool for build caching; -flags declares the tool's
	// flags (none) as a JSON array.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			// The buildID fingerprints the tool for go vet's action cache.
			fmt.Printf("%s version devel buildID=dmcsvet-1\n", progName())
			return
		}
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	os.Exit(standalone(args))
}

func progName() string {
	return filepath.Base(os.Args[0])
}

// standalone loads patterns (default ./...) rooted at the working
// directory and prints all findings.
func standalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmcsvet: %v\n", err)
		return 1
	}
	prog, err := analysis.LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmcsvet: %v\n", err)
		return 1
	}
	diags, err := prog.Run(analysis.All()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmcsvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the subset of cmd/vet's unit-config JSON the tool needs.
type vetConfig struct {
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one go vet unit. The whole module is reloaded (the
// analyzers are whole-program) and findings are filtered to the unit's
// own files.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmcsvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dmcsvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The analyzers only cover the module's shipped (non-test) code; test
	// variants and external test packages produce nothing to check.
	unitFiles := make(map[string]bool)
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			unitFiles[f] = true
		}
	}
	finish := func(code int) int {
		if cfg.VetxOutput != "" {
			// go vet requires the facts file to exist even when empty.
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "dmcsvet: %v\n", err)
				return 1
			}
		}
		return code
	}
	if len(unitFiles) == 0 || strings.Contains(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") || strings.Contains(cfg.ImportPath, " [") {
		return finish(0)
	}

	// go vet applies the vettool to every package in the build graph,
	// standard library included; only units of the surrounding module are
	// ours to check.
	root, err := moduleRoot(cfg.Dir)
	if err != nil {
		return finish(0)
	}
	mod := moduleName(root)
	if mod == "" || (cfg.ImportPath != mod && !strings.HasPrefix(cfg.ImportPath, mod+"/")) {
		return finish(0)
	}
	prog, err := analysis.LoadPackages(root, "./...")
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return finish(0)
		}
		fmt.Fprintf(os.Stderr, "dmcsvet: %v\n", err)
		return 1
	}
	diags, err := prog.Run(analysis.All()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmcsvet: %v\n", err)
		return 1
	}
	found := 0
	for _, d := range diags {
		posn := prog.Fset.Position(d.Pos)
		if !unitFiles[posn.Filename] {
			continue
		}
		found++
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", posn, d.Analyzer, d.Message)
	}
	if found > 0 {
		return finish(2)
	}
	return finish(0)
}

// moduleName reads the module path from root's go.mod.
func moduleName(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
