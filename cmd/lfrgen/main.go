// Command lfrgen generates LFR benchmark graphs (Table 2 of the paper) as
// plain-text files: <out>.edges (edge list) and <out>.comms (one
// ground-truth community per line).
//
// Usage:
//
//	lfrgen -n 5000 -avgdeg 20 -maxdeg 300 -mu 0.2 -out bench
package main

import (
	"flag"
	"fmt"
	"os"

	"dmcs/internal/graph"
	"dmcs/internal/lfr"
)

func main() {
	def := lfr.Default()
	var (
		n       = flag.Int("n", def.N, "number of nodes")
		avgDeg  = flag.Float64("avgdeg", def.AvgDeg, "average degree")
		maxDeg  = flag.Int("maxdeg", def.MaxDeg, "maximum degree")
		mu      = flag.Float64("mu", def.Mu, "mixing parameter (fraction of inter-community edges)")
		minComm = flag.Int("minc", def.MinComm, "minimum community size")
		maxComm = flag.Int("maxc", def.MaxComm, "maximum community size")
		t1      = flag.Float64("t1", def.DegreeExp, "degree power-law exponent")
		t2      = flag.Float64("t2", def.CommExp, "community-size power-law exponent")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", "lfr", "output file prefix")
	)
	flag.Parse()

	cfg := lfr.Config{
		N: *n, AvgDeg: *avgDeg, MaxDeg: *maxDeg, Mu: *mu,
		DegreeExp: *t1, CommExp: *t2, MinComm: *minComm, MaxComm: *maxComm,
		Seed: *seed,
	}
	res, err := lfr.Generate(cfg)
	if err != nil {
		fatalf("generate: %v", err)
	}

	ef, err := os.Create(*out + ".edges")
	if err != nil {
		fatalf("create: %v", err)
	}
	if err := graph.WriteEdgeList(ef, res.G); err != nil {
		fatalf("write edges: %v", err)
	}
	// A deferred unchecked Close would swallow the write error that
	// matters most: the one reporting that buffered data never hit disk.
	if err := ef.Close(); err != nil {
		fatalf("close %s.edges: %v", *out, err)
	}
	cf, err := os.Create(*out + ".comms")
	if err != nil {
		fatalf("create: %v", err)
	}
	if err := graph.WriteCommunities(cf, res.G, res.Communities); err != nil {
		fatalf("write communities: %v", err)
	}
	if err := cf.Close(); err != nil {
		fatalf("close %s.comms: %v", *out, err)
	}
	fmt.Printf("wrote %s.edges (%d nodes, %d edges) and %s.comms (%d communities)\n",
		*out, res.G.NumNodes(), res.G.NumEdges(), *out, len(res.Communities))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lfrgen: "+format+"\n", args...)
	os.Exit(1)
}
