// Kill-crash recovery differential: a dmcsd child with a data directory
// is SIGKILLed at randomized points under live apply + query traffic,
// restarted, and its recovered state is compared bit-for-bit against a
// serial in-process reference replayed to the same epoch. The assertions
// are exactly the durability contract:
//
//   - no lost acknowledged Apply: the recovered epoch is at least the
//     last epoch a client saw a 200 for;
//   - no partially merged batch: the recovered epoch corresponds to a
//     whole number of sent batches, and the state dump byte-matches the
//     reference replayed to that batch count — a half-applied batch
//     cannot match any prefix;
//   - torn tails truncated, not mis-replayed: every restart recovers or
//     the test fails loudly; iterations accumulate in ONE data
//     directory, so each recovery builds on the previous crash's.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dmcs/internal/engine"
	"dmcs/internal/graph"
)

// binPath is the dmcsd binary TestMain builds once for every test in
// this package.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dmcsd-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "dmcsd")
	out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building dmcsd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// seedGraph is the boot graph: a 16-node double ring, node labels equal
// to node ids because they appear in ascending order.
func seedGraphFile(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, (i+1)%16)
	}
	for i := 0; i < 16; i += 2 {
		fmt.Fprintf(&sb, "%d %d\n", i, (i+2)%16)
	}
	path := filepath.Join(t.TempDir(), "seed.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func seedEngine(t *testing.T, path string) *engine.Engine {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ParseEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	return engine.New(g, engine.Options{})
}

// child is one running dmcsd process.
type child struct {
	cmd  *exec.Cmd
	addr string
}

var servingRE = regexp.MustCompile(`dmcsd: serving .* on (\S+) \(`)

// startChild boots dmcsd on a random port against dataDir and waits for
// its serving line (recovery happens before the listener binds, so a
// reachable child has already recovered).
func startChild(t *testing.T, graphFile, dataDir string) *child {
	t.Helper()
	cmd := exec.Command(binPath,
		"-graph", graphFile,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-fsync", "interval",
		"-fsync-interval", "2ms",
		"-checkpoint-every", "8",
		"-wal-segment-bytes", "4096",
		"-state-dump",
		"-workers", "2",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc []byte
		sent := false
		for {
			n, err := stdout.Read(buf)
			if n > 0 && !sent {
				acc = append(acc, buf[:n]...)
				if m := servingRE.FindSubmatch(acc); m != nil {
					addrCh <- string(m[1])
					sent = true
					acc = nil
				}
			}
			if err != nil {
				if !sent {
					close(addrCh)
				}
				return
			}
		}
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("dmcsd exited before its serving line (recovery failed?)")
		}
		return &child{cmd: cmd, addr: addr}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("dmcsd never printed its serving line")
		return nil
	}
}

func (c *child) kill() {
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

func killCrashIters() int {
	if s := os.Getenv("KILLCRASH_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 6
	}
	return 50
}

func TestKillCrashRecovery(t *testing.T) {
	graphFile := seedGraphFile(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	ref := seedEngine(t, graphFile)
	rng := rand.New(rand.NewSource(0x5eed))
	client := &http.Client{Timeout: 5 * time.Second}

	// Every sent batch, in order; batch i (0-indexed) produces epoch i+1.
	// Each is a single guaranteed-effective op (a strictly increasing
	// weight), so the epoch sequence is dense and a recovered epoch E
	// means exactly batches[0:E] are in the state.
	type refOp struct {
		u, v graph.Node
		w    float64
	}
	var (
		mu        sync.Mutex
		sent      []refOp
		lastAcked uint64
	)
	refEpoch := 0
	syncRef := func(t *testing.T, epoch uint64) {
		t.Helper()
		mu.Lock()
		defer mu.Unlock()
		if epoch > uint64(len(sent)) {
			t.Fatalf("recovered epoch %d exceeds the %d batches ever sent", epoch, len(sent))
		}
		for uint64(refEpoch) < epoch {
			op := sent[refEpoch]
			var b engine.Batch
			b.SetWeight(op.u, op.v, op.w)
			st, err := ref.Apply(b)
			if err != nil {
				t.Fatal(err)
			}
			if st.Epoch != uint64(refEpoch)+1 {
				t.Fatalf("reference batch %d produced epoch %d", refEpoch, st.Epoch)
			}
			refEpoch++
		}
		// The kill can catch the mutator with one batch in flight that the
		// server never applied; recovery proves it is not in the state, so
		// drop it — the next iteration's batches follow the recovered epoch
		// directly and the epoch -> batch mapping stays dense.
		sent = sent[:epoch]
	}

	// The mutator's rng is separate from the kill-timing rng above: the
	// mutator goroutine calls nextOp (under mu) while the main goroutine
	// is still drawing sleep durations.
	oprng := rand.New(rand.NewSource(0xbeef))
	seq := 0.0
	nextOp := func() refOp {
		seq++
		u := graph.Node(oprng.Intn(24))
		v := graph.Node(oprng.Intn(24))
		for v == u {
			v = graph.Node(oprng.Intn(24))
		}
		return refOp{u: u, v: v, w: 1 + seq/8}
	}

	c := startChild(t, graphFile, dataDir)
	defer func() { c.kill() }()

	iters := killCrashIters()
	for it := 0; it < iters; it++ {
		stop := make(chan struct{})
		var wg sync.WaitGroup

		// Query traffic: read-side load racing the applies and the kill.
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(it)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"nodes":[%d]}`, qrng.Intn(16))
				resp, err := client.Post("http://"+addr+"/query", "application/json", strings.NewReader(body))
				if err != nil {
					return // child died mid-request: expected
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c.addr)

		// Sequential mutator: each batch is recorded BEFORE it is sent, so
		// a batch the server applied but never acknowledged (killed while
		// responding) is still replayable by the reference.
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				op := nextOp()
				sent = append(sent, op)
				mu.Unlock()
				body := fmt.Sprintf("setw %d %d %g\n", op.u, op.v, op.w)
				resp, err := client.Post("http://"+addr+"/apply", "text/plain", strings.NewReader(body))
				if err != nil {
					return // child died mid-request: the unacked-tail case
				}
				var ack struct {
					Epoch uint64 `json:"epoch"`
				}
				err = json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				if err == nil && resp.StatusCode == http.StatusOK {
					mu.Lock()
					if ack.Epoch > lastAcked {
						lastAcked = ack.Epoch
					}
					mu.Unlock()
				}
			}
		}(c.addr)

		// Let traffic run, then pull the plug at a random point.
		time.Sleep(time.Duration(30+rng.Intn(120)) * time.Millisecond)
		c.kill()
		close(stop)
		wg.Wait()

		// Restart on the same directory and differentiate.
		c = startChild(t, graphFile, dataDir)
		resp, err := client.Get("http://" + c.addr + "/stats")
		if err != nil {
			t.Fatalf("iter %d: stats after recovery: %v", it, err)
		}
		var stats struct {
			Server struct {
				Epoch uint64 `json:"epoch"`
			} `json:"server"`
			Durable *struct {
				DurableEpoch uint64 `json:"durable_epoch"`
			} `json:"durable"`
		}
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("iter %d: decode stats: %v", it, err)
		}
		epoch := stats.Server.Epoch
		mu.Lock()
		acked := lastAcked
		mu.Unlock()
		if epoch < acked {
			t.Fatalf("iter %d: LOST ACKNOWLEDGED APPLY: recovered epoch %d < last acked %d", it, epoch, acked)
		}
		if stats.Durable == nil {
			t.Fatalf("iter %d: recovered server reports no durability block", it)
		}

		dumpResp, err := client.Get("http://" + c.addr + "/debug/state")
		if err != nil {
			t.Fatalf("iter %d: state dump: %v", it, err)
		}
		dump, err := io.ReadAll(dumpResp.Body)
		dumpResp.Body.Close()
		if err != nil {
			t.Fatalf("iter %d: read state dump: %v", it, err)
		}
		syncRef(t, epoch)
		if want := ref.EncodeState(nil); !bytes.Equal(dump, want) {
			t.Fatalf("iter %d: recovered state at epoch %d does not bit-match the serial reference (%d vs %d bytes)",
				it, epoch, len(dump), len(want))
		}
	}
}
