// Command dmcsd serves DMCS community search over HTTP with overload
// protection: cost-aware admission control, client deadline budgets,
// and graceful degradation to epoch-stale cached answers when the
// engine saturates (see internal/server for the full policy).
//
// Usage:
//
//	dmcsd -graph graph.txt [-addr :7473] [-workers 8] [-slo 50ms]
//	dmcsd -graph graph.txt -data-dir /var/lib/dmcs [-fsync always]
//
// Endpoints:
//
//	POST /query   {"nodes":[0,7], "variant":"FPA", "timeout_ms":100}
//	POST /apply   update-stream lines: add/setw/del/node with numeric ids
//	GET  /stats   engine counters + admission state (JSON)
//	GET  /healthz liveness + overload state
//	GET  /debug/state  canonical binary state image (with -state-dump)
//
// Query responses carry "stale": true when answered from a superseded
// graph epoch under overload (disable per request with "no_stale":
// true). Refused requests get JSON errors with a machine-readable code
// and, where retrying helps, a Retry-After header.
//
// With -data-dir the graph state is durable: every applied batch is
// written ahead to a CRC-framed log before it is acknowledged, periodic
// checkpoints bound replay time, and boot recovers the last durable
// epoch — newest valid checkpoint plus log replay, with a torn final
// record truncated — BEFORE the listener binds, so a recovering process
// never serves pre-recovery state. On the first boot the -graph file
// seeds the directory; afterwards the durable state is authoritative
// and -graph contributes nothing. -fsync picks the durability/latency
// trade-off (see internal/wal).
//
// SIGINT/SIGTERM starts a graceful drain: new requests are refused with
// 503 while in-flight ones finish (bounded by -drain-timeout), the WAL
// is fsynced, a final checkpoint is written, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dmcs/internal/engine"
	"dmcs/internal/graph"
	"dmcs/internal/server"
	"dmcs/internal/wal"
)

func main() {
	var (
		graphPath    = flag.String("graph", "", "edge-list file (required; '-' for stdin)")
		addr         = flag.String("addr", ":7473", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent computed searches in the engine")
		cacheSize    = flag.Int("cache", 0, "result cache entries (0 = engine default)")
		staleKeep    = flag.Int("stale-retention", 8, "epochs of superseded results kept for degraded-mode serving (0 disables)")
		slo          = flag.Duration("slo", 50*time.Millisecond, "p99 latency target feeding the overload controller (0 = queue-depth signal only)")
		maxInflight  = flag.Int("max-inflight", 0, "admitted-query bound (0 = 8×GOMAXPROCS)")
		expNodes     = flag.Int("expensive-nodes", 0, "component size classifying a query as expensive (0 = 8192)")
		cheapRate    = flag.Float64("cheap-rate", 0, "cheap-class admission tokens/sec (0 = default)")
		expRate      = flag.Float64("expensive-rate", 0, "expensive-class admission tokens/sec (0 = default)")
		defTimeout   = flag.Duration("default-timeout", 2*time.Second, "deadline budget for requests without timeout_ms")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "cap on client-requested budgets")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		dataDir   = flag.String("data-dir", "", "durability directory: write-ahead log + checkpoints (empty = no durability)")
		fsync     = flag.String("fsync", "interval", "WAL fsync policy: always, interval, or off")
		fsyncIvl  = flag.Duration("fsync-interval", 0, "background fsync period under -fsync interval (0 = 50ms)")
		ckptEvery = flag.Int("checkpoint-every", 1024, "checkpoint after this many applied batches (0 disables periodic checkpoints)")
		segBytes  = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size (0 = 64MiB)")
		stateDump = flag.Bool("state-dump", false, "expose GET /debug/state (canonical binary state image)")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatalf("open graph: %v", err)
		}
		in = f
	}
	g, err := graph.ParseEdgeList(in)
	if err != nil {
		fatalf("parse graph: %v", err)
	}
	if in != os.Stdin {
		if err := in.Close(); err != nil {
			fatalf("close graph: %v", err)
		}
	}

	eopts := engine.Options{
		Workers:         *workers,
		CacheSize:       *cacheSize,
		StaleRetention:  *staleKeep,
		CheckpointEvery: *ckptEvery,
	}
	var eng *engine.Engine
	if *dataDir != "" {
		// Recovery happens here, before the listener binds: a client that
		// can connect is guaranteed to see the recovered state, never a
		// partially replayed one.
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fatalf("%v", err)
		}
		var info engine.RecoveryInfo
		eng, info, err = engine.OpenDurable(g, wal.Options{
			Dir:          *dataDir,
			Policy:       policy,
			Interval:     *fsyncIvl,
			SegmentBytes: *segBytes,
		}, eopts)
		if err != nil {
			fatalf("open data dir: %v", err)
		}
		if info.FreshStart {
			fmt.Printf("dmcsd: initialized %s from %s (epoch 0 checkpointed, fsync=%s)\n", *dataDir, *graphPath, policy)
		} else {
			fmt.Printf("dmcsd: recovered %s: epoch=%d (checkpoint=%d + %d replayed records, torn-bytes=%d, skipped-checkpoints=%d, fsync=%s)\n",
				*dataDir, info.RecoveredEpoch, info.CheckpointEpoch, info.RecordsReplayed,
				info.TruncatedBytes, info.SkippedCheckpoints, policy)
		}
	} else {
		eng = engine.New(g, eopts)
	}
	srv := server.New(eng, server.Config{
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxInflight:    *maxInflight,
		ExpensiveNodes: *expNodes,
		CheapRate:      *cheapRate,
		ExpensiveRate:  *expRate,
		StaleMaxBehind: *staleKeep,
		Overload:       server.OverloadConfig{SLO: *slo},
		StateDump:      *stateDump,
	})
	hs := &http.Server{Handler: srv}

	// Bind explicitly so ":0" reports its real port before serving — the
	// kill-crash harness (and any supervisor) reads it from this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	snap := eng.Snapshot()
	fmt.Printf("dmcsd: serving %d nodes / %d edges on %s (workers=%d stale-retention=%d slo=%s)\n",
		snap.CSR().NumNodes(), snap.CSR().NumEdges(), ln.Addr(), eng.Workers(), *staleKeep, *slo)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		fatalf("serve: %v", err)
	case s := <-sig:
		fmt.Printf("dmcsd: %s — draining (up to %s)\n", s, *drainTimeout)
	}

	// Drain: refuse new work immediately, make everything already
	// acknowledged durable (flush + fsync the WAL before waiting on
	// in-flight requests — if the bounded wait is cut short, durability
	// is already settled), let in-flight requests finish, then stop the
	// listener and the overload sampler, checkpoint, and close the log.
	srv.StartDrain()
	if err := eng.SyncWAL(); err != nil {
		fmt.Fprintf(os.Stderr, "dmcsd: drain wal sync: %v\n", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dmcsd: drain incomplete: %v\n", err)
	}
	srv.Close()
	if *dataDir != "" {
		if _, err := eng.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "dmcsd: final checkpoint: %v\n", err)
		}
		if err := eng.CloseWAL(); err != nil {
			fmt.Fprintf(os.Stderr, "dmcsd: close wal: %v\n", err)
		}
	}
	st := eng.Stats()
	durable, _ := eng.DurableEpoch()
	fmt.Printf("dmcsd: drained. served=%d cache-hits=%d stale-served=%d shed=%d rejected=%d timed-out=%d errors=%d invalidated=%d retained=%d durable-epoch=%d\n",
		st.Queries, st.CacheHits, st.StaleServed, st.Shed, st.Rejected, st.TimedOut, st.Errors,
		st.Invalidated, st.Retained, durable)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dmcsd: "+format+"\n", args...)
	os.Exit(1)
}
