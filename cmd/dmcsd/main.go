// Command dmcsd serves DMCS community search over HTTP with overload
// protection: cost-aware admission control, client deadline budgets,
// and graceful degradation to epoch-stale cached answers when the
// engine saturates (see internal/server for the full policy).
//
// Usage:
//
//	dmcsd -graph graph.txt [-addr :7473] [-workers 8] [-slo 50ms]
//
// Endpoints:
//
//	POST /query   {"nodes":[0,7], "variant":"FPA", "timeout_ms":100}
//	POST /apply   update-stream lines: add/setw/del/node with numeric ids
//	GET  /stats   engine counters + admission state (JSON)
//	GET  /healthz liveness + overload state
//
// Query responses carry "stale": true when answered from a superseded
// graph epoch under overload (disable per request with "no_stale":
// true). Refused requests get JSON errors with a machine-readable code
// and, where retrying helps, a Retry-After header.
//
// SIGINT/SIGTERM starts a graceful drain: new requests are refused with
// 503 while in-flight ones finish (bounded by -drain-timeout), then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dmcs/internal/engine"
	"dmcs/internal/graph"
	"dmcs/internal/server"
)

func main() {
	var (
		graphPath    = flag.String("graph", "", "edge-list file (required; '-' for stdin)")
		addr         = flag.String("addr", ":7473", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent computed searches in the engine")
		cacheSize    = flag.Int("cache", 0, "result cache entries (0 = engine default)")
		staleKeep    = flag.Int("stale-retention", 8, "epochs of superseded results kept for degraded-mode serving (0 disables)")
		slo          = flag.Duration("slo", 50*time.Millisecond, "p99 latency target feeding the overload controller (0 = queue-depth signal only)")
		maxInflight  = flag.Int("max-inflight", 0, "admitted-query bound (0 = 8×GOMAXPROCS)")
		expNodes     = flag.Int("expensive-nodes", 0, "component size classifying a query as expensive (0 = 8192)")
		cheapRate    = flag.Float64("cheap-rate", 0, "cheap-class admission tokens/sec (0 = default)")
		expRate      = flag.Float64("expensive-rate", 0, "expensive-class admission tokens/sec (0 = default)")
		defTimeout   = flag.Duration("default-timeout", 2*time.Second, "deadline budget for requests without timeout_ms")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "cap on client-requested budgets")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatalf("open graph: %v", err)
		}
		in = f
	}
	g, err := graph.ParseEdgeList(in)
	if err != nil {
		fatalf("parse graph: %v", err)
	}
	if in != os.Stdin {
		if err := in.Close(); err != nil {
			fatalf("close graph: %v", err)
		}
	}

	eng := engine.New(g, engine.Options{
		Workers:        *workers,
		CacheSize:      *cacheSize,
		StaleRetention: *staleKeep,
	})
	srv := server.New(eng, server.Config{
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxInflight:    *maxInflight,
		ExpensiveNodes: *expNodes,
		CheapRate:      *cheapRate,
		ExpensiveRate:  *expRate,
		StaleMaxBehind: *staleKeep,
		Overload:       server.OverloadConfig{SLO: *slo},
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	fmt.Printf("dmcsd: serving %d nodes / %d edges on %s (workers=%d stale-retention=%d slo=%s)\n",
		g.NumNodes(), g.NumEdges(), *addr, eng.Workers(), *staleKeep, *slo)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		fatalf("serve: %v", err)
	case s := <-sig:
		fmt.Printf("dmcsd: %s — draining (up to %s)\n", s, *drainTimeout)
	}

	// Drain: refuse new work immediately, let in-flight requests finish,
	// then stop the listener and the overload sampler.
	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dmcsd: drain incomplete: %v\n", err)
	}
	srv.Close()
	st := eng.Stats()
	fmt.Printf("dmcsd: drained. served=%d cache-hits=%d stale-served=%d shed=%d rejected=%d timed-out=%d errors=%d invalidated=%d retained=%d\n",
		st.Queries, st.CacheHits, st.StaleServed, st.Shed, st.Rejected, st.TimedOut, st.Errors,
		st.Invalidated, st.Retained)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dmcsd: "+format+"\n", args...)
	os.Exit(1)
}
