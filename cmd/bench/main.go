// Command bench runs the repository's Go benchmarks with a pinned
// -benchtime and records ns/op per benchmark in a JSON file, so the
// performance trajectory of the hot paths is checked in next to the code
// (BENCH_2.json at the repo root is the CSR-migration baseline).
//
// Usage:
//
//	go run ./cmd/bench                       # weighted-search suite -> BENCH_2.json
//	go run ./cmd/bench -bench . -pkgs ./...  # everything (slow)
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// benchLine matches standard testing.B output:
// BenchmarkName-8   123   4567 ns/op [extra metrics...]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

type report struct {
	GoVersion string             `json:"go_version"`
	NumCPU    int                `json:"num_cpu"`
	Benchtime string             `json:"benchtime"`
	Packages  []string           `json:"packages"`
	NsPerOp   map[string]float64 `json:"ns_per_op"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_2.json", "output JSON path")
		benchtime = flag.String("benchtime", "200ms", "go test -benchtime value (pinned for comparability)")
		bench     = flag.String("bench", "Weighted", "go test -bench regex")
		pkgs      = flag.String("pkgs", "./internal/dmcs", "comma-separated package patterns")
	)
	flag.Parse()

	patterns := strings.Split(*pkgs, ",")
	args := append([]string{"test", "-run=NONE", "-bench", *bench, "-benchtime", *benchtime}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Benchtime: *benchtime,
		Packages:  patterns,
		NsPerOp:   map[string]float64{},
	}
	pkg := ""
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		name := m[1]
		if pkg != "" {
			name = pkg + "." + name
		}
		rep.NsPerOp[name] = ns
	}
	if len(rep.NsPerOp) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark results parsed")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.NsPerOp))
}
