// Command bench runs the repository's Go benchmarks with a pinned
// -benchtime and records ns/op and allocs/op per benchmark in a JSON
// file, so the performance trajectory of the hot paths is checked in
// next to the code (BENCH_2.json is the CSR-migration baseline,
// BENCH_3.json the query-scoped SubCSR/arena baseline, BENCH_4.json the
// dynamic-update suite, BENCH_5.json the parallel serving suite,
// BENCH_6.json the intra-query parallelism suite: whale-component
// peels and skewed fused batches swept across -cpu, BENCH_8.json the
// query-under-churn suite: hit ratio and computed-search p99 recorded
// as custom metrics under component-scoped cache invalidation).
//
// Custom b.ReportMetric values (e.g. "0.95 hit_ratio", "135745 p99_ns")
// are parsed off each benchmark line and recorded per benchmark under
// "metrics" in the JSON.
//
// Usage:
//
//	go run ./cmd/bench                       # serving + update + whale + churn suite -> BENCH_8.json
//	go run ./cmd/bench -cpu 1,2,4,8          # same, swept across GOMAXPROCS
//	go run ./cmd/bench -bench . -pkgs ./...  # everything (slow)
//
// Benchmark names keep testing's -N GOMAXPROCS suffix (BenchmarkFoo-8;
// testing omits the suffix at GOMAXPROCS=1), so one benchmark swept
// across -cpu 1,2,4 records three distinct entries — BenchmarkFoo,
// BenchmarkFoo-2, BenchmarkFoo-4 — instead of silently overwriting
// itself in the JSON map.
//
// -baseline merges a previously recorded report into the output (under
// "baseline_ns_per_op") and computes per-benchmark speedups, so a single
// JSON artifact shows before/after. Baselines recorded before the
// suffix was kept are still matched by falling back to the
// suffix-stripped name.
//
// -gate enforces allocation budgets: "-gate BenchmarkName=N" (comma
// separated, suffix-matched against package-qualified names, ignoring
// the -N GOMAXPROCS suffix — a swept benchmark must pass its budget at
// every GOMAXPROCS) exits non-zero when a benchmark allocates more than
// N allocs/op. CI uses it to fail when steady-state engine query
// serving — serial or parallel — starts allocating.
//
// -metricgate enforces custom-metric budgets: "-metricgate
// Name:metric>=Min" or "Name:metric<=Max" (comma separated, matched
// like -gate) exits non-zero when the named benchmark's reported metric
// violates the bound. CI uses it to fail when the warm-majority churn
// hit ratio drops below its pinned floor — the component-scoped-epochs
// acceptance criterion.
//
// -ratiogate enforces pairwise time budgets: "-ratiogate A<=1.25xB"
// (comma separated) exits non-zero when benchmark A's ns/op exceeds
// 1.25 times benchmark B's at any GOMAXPROCS both were swept across —
// the A-8 entry is compared against B-8, the suffixless entry against
// the suffixless entry. CI uses it to fail when the parallel whale peel
// falls behind its serial twin at -cpu 1 (where Parallelism resolves to
// the serial kernels and only dispatch overhead separates the pair).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// benchLine matches standard testing.B output with -benchmem:
// BenchmarkName-8   123   4567 ns/op   89 B/op   7 allocs/op
// The -8 GOMAXPROCS suffix is captured and kept as part of the recorded
// name; stripping it would make a -cpu sweep overwrite itself.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) B/op\s+([0-9]+) allocs/op)?`)

// metricPair matches one "value unit" measurement on a benchmark line.
// testing prints b.ReportMetric values in exactly this shape between
// ns/op and the -benchmem columns; ns/op, B/op and allocs/op themselves
// are skipped when collecting custom metrics.
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?) ([A-Za-z_][A-Za-z0-9_/%.-]*)`)

// procSuffix strips the GOMAXPROCS suffix for baseline fallback and
// gate matching.
var procSuffix = regexp.MustCompile(`-\d+$`)

type report struct {
	GoVersion   string             `json:"go_version"`
	NumCPU      int                `json:"num_cpu"`
	Benchtime   string             `json:"benchtime"`
	CPUList     string             `json:"cpu,omitempty"`
	Packages    []string           `json:"packages"`
	NsPerOp     map[string]float64 `json:"ns_per_op"`
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values per benchmark (e.g.
	// hit_ratio, p99_ns for the query-under-churn suite).
	Metrics map[string]map[string]float64 `json:"metrics,omitempty"`
	// BaselineNsPerOp and Speedup are present only when -baseline is
	// given: the prior report's numbers and new-vs-old ratios for the
	// benchmarks both runs contain.
	BaselineNsPerOp     map[string]float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp map[string]float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             map[string]float64 `json:"speedup,omitempty"`
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		out        = flag.String("out", "BENCH_8.json", "output JSON path")
		benchtime  = flag.String("benchtime", "200ms", "go test -benchtime value (pinned for comparability)")
		bench      = flag.String("bench", "Weighted|SmallQueries|EngineApply|UnderChurn|EngineParallel|HotKeyHerd|Whale|SkewedBatch", "go test -bench regex")
		pkgs       = flag.String("pkgs", "./internal/dmcs,./internal/engine", "comma-separated package patterns")
		cpu        = flag.String("cpu", "", "go test -cpu list (e.g. 1,2,4,8); empty runs at GOMAXPROCS only")
		baseline   = flag.String("baseline", "", "prior report JSON to merge as the before numbers")
		gate       = flag.String("gate", "", "comma-separated Name=MaxAllocs budgets enforced on allocs/op")
		metricgate = flag.String("metricgate", "", "comma-separated Name:metric>=Min or Name:metric<=Max bounds on custom metrics")
		ratiogate  = flag.String("ratiogate", "", "comma-separated A<=1.25xB pairwise ns/op budgets, matched per GOMAXPROCS suffix")
	)
	flag.Parse()

	patterns := strings.Split(*pkgs, ",")
	args := []string{"test", "-run=NONE", "-bench", *bench, "-benchtime", *benchtime, "-benchmem"}
	if *cpu != "" {
		args = append(args, "-cpu", *cpu)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fail("%v", err)
	}

	rep := report{
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Benchtime:   *benchtime,
		CPUList:     *cpu,
		Packages:    patterns,
		NsPerOp:     map[string]float64{},
		AllocsPerOp: map[string]float64{},
		Metrics:     map[string]map[string]float64{},
	}
	pkg := ""
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		name := m[1] + m[2] // keep the -N GOMAXPROCS suffix: one entry per swept proc count
		if pkg != "" {
			name = pkg + "." + name
		}
		rep.NsPerOp[name] = ns
		if m[6] != "" {
			if allocs, err := strconv.ParseFloat(m[6], 64); err == nil {
				rep.AllocsPerOp[name] = allocs
			}
		}
		for _, mp := range metricPair.FindAllStringSubmatch(line, -1) {
			unit := mp[2]
			if unit == "ns/op" || unit == "B/op" || unit == "allocs/op" {
				continue
			}
			if v, err := strconv.ParseFloat(mp[1], 64); err == nil {
				if rep.Metrics[name] == nil {
					rep.Metrics[name] = map[string]float64{}
				}
				rep.Metrics[name][unit] = v
			}
		}
	}
	if len(rep.NsPerOp) == 0 {
		fail("no benchmark results parsed")
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fail("baseline: %v", err)
		}
		var base report
		if err := json.Unmarshal(data, &base); err != nil {
			fail("baseline: %v", err)
		}
		rep.BaselineNsPerOp = base.NsPerOp
		rep.BaselineAllocsPerOp = base.AllocsPerOp
		// Index the baseline by suffix-stripped name too, so a baseline
		// recorded at a different GOMAXPROCS (-8 there, -16 here) or
		// before the suffix was kept still matches. A stripped name that
		// maps to several baseline entries (a -cpu sweep) is ambiguous
		// and only matched exactly.
		strippedBase := map[string]float64{}
		ambiguous := map[string]bool{}
		for name, ns := range base.NsPerOp {
			bare := procSuffix.ReplaceAllString(name, "")
			if _, dup := strippedBase[bare]; dup {
				ambiguous[bare] = true
			}
			strippedBase[bare] = ns
		}
		rep.Speedup = map[string]float64{}
		for name, ns := range rep.NsPerOp {
			old, ok := base.NsPerOp[name]
			if !ok {
				bare := procSuffix.ReplaceAllString(name, "")
				if !ambiguous[bare] {
					old, ok = strippedBase[bare]
				}
			}
			if ok && ns > 0 {
				rep.Speedup[name] = old / ns
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.NsPerOp))

	violations := 0
	if *gate != "" {
		for _, g := range strings.Split(*gate, ",") {
			name, limitStr, ok := strings.Cut(strings.TrimSpace(g), "=")
			if !ok {
				fail("bad -gate entry %q (want Name=MaxAllocs)", g)
			}
			limit, err := strconv.ParseFloat(limitStr, 64)
			if err != nil {
				fail("bad -gate limit %q: %v", limitStr, err)
			}
			matched := false
			for full, allocs := range rep.AllocsPerOp {
				bare := procSuffix.ReplaceAllString(full, "")
				if full == name || bare == name ||
					strings.HasSuffix(full, "."+name) || strings.HasSuffix(bare, "."+name) {
					matched = true
					if allocs > limit {
						fmt.Fprintf(os.Stderr, "bench: GATE FAILED %s: %.0f allocs/op > %.0f\n", full, allocs, limit)
						violations++
					} else {
						fmt.Printf("gate ok: %s %.0f allocs/op <= %.0f\n", full, allocs, limit)
					}
				}
			}
			if !matched {
				fmt.Fprintf(os.Stderr, "bench: GATE FAILED %s: benchmark not found in results\n", name)
				violations++
			}
		}
	}

	if *metricgate != "" {
		for _, g := range strings.Split(*metricgate, ",") {
			entry := strings.TrimSpace(g)
			op, min := ">=", true
			target, boundStr, ok := strings.Cut(entry, ">=")
			if !ok {
				op, min = "<=", false
				target, boundStr, ok = strings.Cut(entry, "<=")
			}
			if !ok {
				fail("bad -metricgate entry %q (want Name:metric>=Min or Name:metric<=Max)", entry)
			}
			name, metric, ok := strings.Cut(strings.TrimSpace(target), ":")
			if !ok {
				fail("bad -metricgate target %q (want Name:metric)", target)
			}
			bound, err := strconv.ParseFloat(strings.TrimSpace(boundStr), 64)
			if err != nil {
				fail("bad -metricgate bound %q: %v", boundStr, err)
			}
			matched := false
			for full, metrics := range rep.Metrics {
				bare := procSuffix.ReplaceAllString(full, "")
				if full != name && bare != name &&
					!strings.HasSuffix(full, "."+name) && !strings.HasSuffix(bare, "."+name) {
					continue
				}
				v, have := metrics[metric]
				if !have {
					continue
				}
				matched = true
				if (min && v < bound) || (!min && v > bound) {
					fmt.Fprintf(os.Stderr, "bench: METRIC GATE FAILED %s: %s %v violates %s %v\n", full, metric, v, op, bound)
					violations++
				} else {
					fmt.Printf("metric gate ok: %s %s %v %s %v\n", full, metric, v, op, bound)
				}
			}
			if !matched {
				fmt.Fprintf(os.Stderr, "bench: METRIC GATE FAILED %s: metric %s not found in results\n", name, metric)
				violations++
			}
		}
	}

	if *ratiogate != "" {
		for _, g := range strings.Split(*ratiogate, ",") {
			entry := strings.TrimSpace(g)
			left, rest, ok := strings.Cut(entry, "<=")
			if !ok {
				fail("bad -ratiogate entry %q (want A<=1.25xB)", entry)
			}
			factorStr, right, ok := strings.Cut(rest, "x")
			if !ok {
				fail("bad -ratiogate entry %q (want A<=1.25xB)", entry)
			}
			factor, err := strconv.ParseFloat(factorStr, 64)
			if err != nil || factor <= 0 {
				fail("bad -ratiogate factor %q in %q", factorStr, entry)
			}
			a := nsBySuffix(rep.NsPerOp, strings.TrimSpace(left))
			b := nsBySuffix(rep.NsPerOp, strings.TrimSpace(right))
			compared := 0
			for suffix, ansOp := range a {
				bnsOp, ok := b[suffix]
				if !ok {
					continue
				}
				compared++
				if ansOp > factor*bnsOp {
					fmt.Fprintf(os.Stderr, "bench: RATIO GATE FAILED %s%s: %.0f ns/op > %.2f x %.0f ns/op\n",
						strings.TrimSpace(left), suffix, ansOp, factor, bnsOp)
					violations++
				} else {
					fmt.Printf("ratio gate ok: %s%s %.0f ns/op <= %.2f x %.0f ns/op\n",
						strings.TrimSpace(left), suffix, ansOp, factor, bnsOp)
				}
			}
			if compared == 0 {
				fmt.Fprintf(os.Stderr, "bench: RATIO GATE FAILED %s: no GOMAXPROCS suffix has results for both sides\n", entry)
				violations++
			}
		}
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// nsBySuffix collects every recorded result whose suffix-stripped,
// package-qualified name matches name, keyed by its -N GOMAXPROCS
// suffix ("" at GOMAXPROCS=1) — the ratio gate compares like against
// like across a -cpu sweep.
func nsBySuffix(nsPerOp map[string]float64, name string) map[string]float64 {
	out := map[string]float64{}
	for full, ns := range nsPerOp {
		suffix := procSuffix.FindString(full)
		bare := strings.TrimSuffix(full, suffix)
		if bare == name || strings.HasSuffix(bare, "."+name) {
			out[suffix] = ns
		}
	}
	return out
}
