// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig8            # one experiment
//	experiments -exp all             # everything
//	experiments -exp fig8 -quick     # reduced sizes for a fast sanity pass
//	experiments -exp fig17 -scale 20000
//
// Experiment ids follow the paper: table1, table2, fig4, fig5, fig8
// (includes fig9's timings), fig10, fig11, fig12, fig13, fig14, fig15
// (includes fig16), fig17 (includes fig18), fig19, case.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmcs/internal/harness"
	"dmcs/internal/lfr"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1,table2,fig4,fig5,fig8,fig10,fig11,fig12,fig13,fig14,fig15,fig17,fig19,case,all)")
		quick   = flag.Bool("quick", false, "reduced sizes: LFR n=1000, large stand-ins 3000 nodes, 5 query sets")
		scale   = flag.Int("scale", 0, "node count for the dblp/youtube/livejournal stand-ins (0 = defaults)")
		lfrN    = flag.Int("lfr-n", 0, "override LFR node count (0 = Table 2 default 5000)")
		timeout = flag.Duration("timeout", 120*time.Second, "per-run cap for slow algorithms")
		seed    = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	cfg := harness.DefaultConfig(os.Stdout)
	cfg.Timeout = *timeout
	cfg.Seed = *seed
	base := lfr.Default()
	standScale := *scale
	fig11Sizes := []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000, 90000, 100000}
	if *quick {
		base.N = 1000
		base.MaxComm = 300
		cfg.NumQuerySets = 5
		if standScale == 0 {
			standScale = 3000
		}
		fig11Sizes = []int{1000, 2000, 4000}
	}
	if *lfrN > 0 {
		base.N = *lfrN
	}

	run := func(id string, fn func() error) {
		if *exp != "all" && *exp != id {
			return
		}
		fmt.Printf("=== %s ===\n", id)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error { return cfg.Table1(standScale) })
	run("table2", func() error { return cfg.Table2() })
	run("fig4", func() error { return cfg.Fig4(standScale) })
	run("fig5", func() error { return cfg.Fig5() })
	run("fig8", func() error { return cfg.Fig8and9(base, nil, nil) })
	run("fig10", func() error { return cfg.Fig10(base, nil) })
	run("fig11", func() error { return cfg.Fig11(base, fig11Sizes, nil) })
	run("fig12", func() error { return cfg.Fig12(base) })
	run("fig13", func() error { return cfg.Fig13(base) })
	run("fig14", func() error { return cfg.Fig14(base) })
	run("fig15", func() error { return cfg.Fig15and16(nil) })
	run("fig17", func() error { return cfg.Fig17and18(standScale, nil) })
	run("fig19", func() error { return cfg.Fig19(standScale, nil) })
	run("case", func() error { return cfg.CaseStudy(standScale) })
	// Extensions beyond the paper's evaluation (Section 7 future work and
	// NP-hardness calibration). Not part of -exp all; select explicitly
	// with -exp ext (all three) or an individual id.
	runExt := func(id string, fn func() error) {
		if *exp != id && *exp != "ext" {
			return
		}
		fmt.Printf("=== %s ===\n", id)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	runExt("ext-detect", func() error { return cfg.ExtDetect(base) })
	runExt("ext-gap", func() error { return cfg.ExtOptimalityGap(50) })
	runExt("ext-weighted", func() error { return cfg.ExtWeighted(base) })
}
