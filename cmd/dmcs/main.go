// Command dmcs runs density-modularity community search (and every
// baseline from the paper) on an edge-list file.
//
// Usage:
//
//	dmcs -graph graph.txt -query alice,bob [-algo FPA] [-k 3] [-timeout 60s]
//	dmcs -graph graph.txt -queries queries.txt [-parallel 8] [-algo FPA]
//
// The graph file contains one "u v" pair per line (arbitrary string
// labels; '#' comments allowed; optional third column = edge weight). The
// query is a comma-separated list of node labels. Supported -algo values:
// FPA (default), NCA, NCA-DR, FPA-DMG, clique, kc, kt, kecc, GN, CNM,
// icwi2008, huang2015, wu2015, highcore, hightruss.
//
// Batch mode: -queries names a file with one query per line (labels
// separated by commas or spaces, '#' comments allowed). The queries are
// answered concurrently by the shared-snapshot engine with -parallel
// workers; batch mode supports the DMCS variants (FPA, NCA, NCA-DR,
// FPA-DMG), prints one line per query, and ends with a throughput and
// latency summary.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/engine"
	"dmcs/internal/graph"
	"dmcs/internal/harness"
	"dmcs/internal/modularity"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (required; '-' for stdin)")
		queryStr  = flag.String("query", "", "comma-separated query node labels")
		queryFile = flag.String("queries", "", "file with one query per line (batch mode)")
		algo      = flag.String("algo", "FPA", "algorithm: FPA, NCA, NCA-DR, FPA-DMG, or a baseline name")
		k         = flag.Int("k", 3, "parameter k for kc/kecc (kt uses k+1)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-run time limit for slow algorithms")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "batch mode: concurrent search workers")
		verbose   = flag.Bool("v", false, "print the community membership")
	)
	flag.Parse()
	if *graphPath == "" || (*queryStr == "" && *queryFile == "") {
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatalf("open graph: %v", err)
		}
		defer f.Close()
		in = f
	}
	g, err := graph.ParseEdgeList(in)
	if err != nil {
		fatalf("parse graph: %v", err)
	}

	byLabel := make(map[string]graph.Node, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		byLabel[g.Label(graph.Node(u))] = graph.Node(u)
	}

	if *queryFile != "" {
		runBatch(g, byLabel, *queryFile, *algo, *parallel, *timeout, *verbose)
		return
	}

	q := parseQuery(*queryStr, byLabel, ",")
	cfg := harness.DefaultConfig(os.Stdout)
	cfg.K = *k
	cfg.Timeout = *timeout
	comm, elapsed, err := cfg.Run(*algo, g, q)
	if err != nil {
		fatalf("%s: %v", *algo, err)
	}

	fmt.Printf("algorithm:          %s\n", *algo)
	fmt.Printf("graph:              %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("community size:     %d\n", len(comm))
	fmt.Printf("density modularity: %.6f\n", modularity.Density(g, comm))
	fmt.Printf("classic modularity: %.6f\n", modularity.Classic(g, comm))
	fmt.Printf("elapsed:            %s\n", elapsed)
	if *verbose {
		fmt.Printf("members:            %s\n", joinLabels(g, comm))
	}
}

// runBatch answers every query in path through a shared-snapshot engine.
func runBatch(g *graph.Graph, byLabel map[string]graph.Node, path, algo string, parallel int, timeout time.Duration, verbose bool) {
	variant, ok := variantByName(algo)
	if !ok {
		fatalf("batch mode supports the DMCS variants (FPA, NCA, NCA-DR, FPA-DMG); got %q", algo)
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("open queries: %v", err)
	}
	defer f.Close()

	type batchLine struct {
		text string
		err  error // label-resolution failure; not dispatched
		qIdx int   // index into qs, -1 when err != nil
	}
	var qs []engine.Query
	var batch []batchLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		nodes, err := resolveQuery(line, byLabel, ", \t")
		if err != nil {
			batch = append(batch, batchLine{text: line, err: err, qIdx: -1})
			continue
		}
		batch = append(batch, batchLine{text: line, qIdx: len(qs)})
		qs = append(qs, engine.Query{
			Nodes:   nodes,
			Variant: variant,
			// Match the single-query path (harness.Run), which enables the
			// Section 5.7 pruning for plain FPA.
			Opts: dmcs.Options{Timeout: timeout, LayerPruning: variant == dmcs.VariantFPA},
		})
	}
	if err := sc.Err(); err != nil {
		fatalf("read queries: %v", err)
	}
	if len(batch) == 0 {
		fatalf("no queries in %s", path)
	}

	eng := engine.New(g, engine.Options{Workers: parallel})
	start := time.Now()
	results := eng.SearchBatch(context.Background(), qs)
	wall := time.Since(start)

	for _, bl := range batch {
		if bl.err != nil {
			fmt.Printf("%-24s error: %v\n", bl.text, bl.err)
			continue
		}
		r := results[bl.qIdx]
		if r.Err != nil {
			fmt.Printf("%-24s error: %v\n", bl.text, r.Err)
			continue
		}
		mark := ""
		if r.Result.TimedOut {
			mark = " TIMED-OUT(partial)"
		}
		if verbose {
			fmt.Printf("%-24s size=%-5d score=%.6f%s members: %s\n",
				bl.text, len(r.Result.Community), r.Result.Score, mark, joinLabels(g, r.Result.Community))
		} else {
			fmt.Printf("%-24s size=%-5d score=%.6f%s\n", bl.text, len(r.Result.Community), r.Result.Score, mark)
		}
	}
	st := eng.Stats()
	fmt.Printf("\nbatch: %d queries in %s (%.1f q/s, %d workers)\n",
		len(batch), wall.Round(time.Millisecond), float64(len(batch))/wall.Seconds(), eng.Workers())
	fmt.Printf("engine: served=%d cache-hits=%d errors=%d p50=%s p95=%s\n",
		st.Queries, st.CacheHits, st.Errors, st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond))
}

// parseQuery resolves a separated list of node labels, exiting on unknown
// labels (single-query mode).
func parseQuery(s string, byLabel map[string]graph.Node, seps string) []graph.Node {
	q, err := resolveQuery(s, byLabel, seps)
	if err != nil {
		fatalf("%v", err)
	}
	return q
}

// resolveQuery resolves a separated list of node labels, reporting unknown
// labels as an error so batch mode can fail one query without aborting the
// rest.
func resolveQuery(s string, byLabel map[string]graph.Node, seps string) ([]graph.Node, error) {
	var q []graph.Node
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool { return strings.ContainsRune(seps, r) }) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		u, ok := byLabel[tok]
		if !ok {
			return nil, fmt.Errorf("unknown query node %q", tok)
		}
		q = append(q, u)
	}
	return q, nil
}

// variantByName maps the CLI algorithm names to DMCS variants.
func variantByName(name string) (dmcs.Variant, bool) {
	switch strings.ToUpper(name) {
	case "FPA":
		return dmcs.VariantFPA, true
	case "NCA":
		return dmcs.VariantNCA, true
	case "NCA-DR", "NCADR":
		return dmcs.VariantNCADR, true
	case "FPA-DMG", "FPADMG":
		return dmcs.VariantFPADMG, true
	}
	return 0, false
}

func joinLabels(g *graph.Graph, comm []graph.Node) string {
	labels := make([]string, len(comm))
	for i, u := range comm {
		labels[i] = g.Label(u)
	}
	return strings.Join(labels, " ")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dmcs: "+format+"\n", args...)
	os.Exit(1)
}
