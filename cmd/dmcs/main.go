// Command dmcs runs density-modularity community search (and every
// baseline from the paper) on an edge-list file.
//
// Usage:
//
//	dmcs -graph graph.txt -query alice,bob [-algo FPA] [-k 3] [-timeout 60s]
//
// The graph file contains one "u v" pair per line (arbitrary string
// labels; '#' comments allowed; optional third column = edge weight). The
// query is a comma-separated list of node labels. Supported -algo values:
// FPA (default), NCA, NCA-DR, FPA-DMG, clique, kc, kt, kecc, GN, CNM,
// icwi2008, huang2015, wu2015, highcore, hightruss.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmcs/internal/graph"
	"dmcs/internal/harness"
	"dmcs/internal/modularity"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (required; '-' for stdin)")
		queryStr  = flag.String("query", "", "comma-separated query node labels (required)")
		algo      = flag.String("algo", "FPA", "algorithm: FPA, NCA, NCA-DR, FPA-DMG, or a baseline name")
		k         = flag.Int("k", 3, "parameter k for kc/kecc (kt uses k+1)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-run time limit for slow algorithms")
		verbose   = flag.Bool("v", false, "print the community membership")
	)
	flag.Parse()
	if *graphPath == "" || *queryStr == "" {
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatalf("open graph: %v", err)
		}
		defer f.Close()
		in = f
	}
	g, err := graph.ParseEdgeList(in)
	if err != nil {
		fatalf("parse graph: %v", err)
	}

	byLabel := make(map[string]graph.Node, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		byLabel[g.Label(graph.Node(u))] = graph.Node(u)
	}
	var q []graph.Node
	for _, tok := range strings.Split(*queryStr, ",") {
		tok = strings.TrimSpace(tok)
		u, ok := byLabel[tok]
		if !ok {
			fatalf("unknown query node %q", tok)
		}
		q = append(q, u)
	}

	cfg := harness.DefaultConfig(os.Stdout)
	cfg.K = *k
	cfg.Timeout = *timeout
	comm, elapsed, err := cfg.Run(*algo, g, q)
	if err != nil {
		fatalf("%s: %v", *algo, err)
	}

	fmt.Printf("algorithm:          %s\n", *algo)
	fmt.Printf("graph:              %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("community size:     %d\n", len(comm))
	fmt.Printf("density modularity: %.6f\n", modularity.Density(g, comm))
	fmt.Printf("classic modularity: %.6f\n", modularity.Classic(g, comm))
	fmt.Printf("elapsed:            %s\n", elapsed)
	if *verbose {
		labels := make([]string, len(comm))
		for i, u := range comm {
			labels[i] = g.Label(u)
		}
		fmt.Printf("members:            %s\n", strings.Join(labels, " "))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dmcs: "+format+"\n", args...)
	os.Exit(1)
}
