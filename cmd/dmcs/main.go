// Command dmcs runs density-modularity community search (and every
// baseline from the paper) on an edge-list file.
//
// Usage:
//
//	dmcs -graph graph.txt -query alice,bob [-algo FPA] [-k 3] [-timeout 60s]
//	dmcs -graph graph.txt -queries queries.txt [-parallel 8] [-algo FPA]
//
// The graph file contains one "u v" pair per line (arbitrary string
// labels; '#' comments allowed; optional third column = edge weight). The
// query is a comma-separated list of node labels. Supported -algo values:
// FPA (default), NCA, NCA-DR, FPA-DMG, clique, kc, kt, kecc, GN, CNM,
// icwi2008, huang2015, wu2015, highcore, hightruss.
//
// Batch mode: -queries names a file with one query per line (labels
// separated by commas or spaces, '#' comments allowed). The queries are
// answered concurrently by the shared-snapshot engine with -parallel
// workers; batch mode supports the DMCS variants (FPA, NCA, NCA-DR,
// FPA-DMG), prints one line per query, and ends with a throughput and
// latency summary.
//
// Update-stream mode: -updates names a file of interleaved mutations and
// queries, processed in order against a live engine:
//
//	add u v [w]     stage an edge insertion (weight defaults to 1; an
//	                explicit weight — 0 included — is applied exactly)
//	setw u v w      stage a weight change (inserts the edge if absent)
//	del u v         stage an edge removal
//	node u          stage an isolated-node creation
//	apply           apply the staged ops as one atomic batch
//	query a,b[,c]   answer a query against the current graph version
//
// Unknown labels in add/setw/node lines create new nodes. A query line
// auto-applies any staged ops first, so each query always sees every
// mutation above it. The run ends with the engine's serving summary.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/engine"
	"dmcs/internal/graph"
	"dmcs/internal/harness"
	"dmcs/internal/modularity"
	"dmcs/internal/wal"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (required; '-' for stdin)")
		queryStr   = flag.String("query", "", "comma-separated query node labels")
		queryFile  = flag.String("queries", "", "file with one query per line (batch mode)")
		updateFile = flag.String("updates", "", "file with interleaved mutations and queries (stream mode)")
		algo       = flag.String("algo", "FPA", "algorithm: FPA, NCA, NCA-DR, FPA-DMG, or a baseline name")
		k          = flag.Int("k", 3, "parameter k for kc/kecc (kt uses k+1)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-run time limit for slow algorithms")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "batch mode: concurrent search workers")
		verbose    = flag.Bool("v", false, "print the community membership")
		fullStats  = flag.Bool("stats", false, "batch/stream modes: print the full engine counter set (incl. timed-out/rejected/shed/stale-served) at the end")
		walDir     = flag.String("wal", "", "stream mode: data directory for the write-ahead log (state survives restarts; same code path as dmcsd -data-dir)")
		recoverDir = flag.Bool("recover", false, "with -wal: recover the durable state, print its epoch and stats, and exit")
	)
	flag.Parse()
	if *recoverDir {
		if *walDir == "" {
			fatalf("-recover requires -wal <dir>")
		}
		runRecover(*walDir)
		return
	}
	if *graphPath == "" || (*queryStr == "" && *queryFile == "" && *updateFile == "") {
		flag.Usage()
		os.Exit(2)
	}
	if *walDir != "" && *updateFile == "" {
		fatalf("-wal is only meaningful in update-stream mode (-updates) or with -recover")
	}

	in := os.Stdin
	if *graphPath != "-" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fatalf("open graph: %v", err)
		}
		in = f
	}
	g, err := graph.ParseEdgeList(in)
	if err != nil {
		fatalf("parse graph: %v", err)
	}
	if in != os.Stdin {
		if err := in.Close(); err != nil {
			fatalf("close graph: %v", err)
		}
	}

	byLabel := make(map[string]graph.Node, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		byLabel[g.Label(graph.Node(u))] = graph.Node(u)
	}

	showFullStats = *fullStats
	if *updateFile != "" {
		runUpdates(g, byLabel, *updateFile, *walDir, *algo, *parallel, *timeout, *verbose)
		return
	}
	if *queryFile != "" {
		runBatch(g, byLabel, *queryFile, *algo, *parallel, *timeout, *verbose)
		return
	}

	q := parseQuery(*queryStr, byLabel, ",")
	cfg := harness.DefaultConfig(os.Stdout)
	cfg.K = *k
	cfg.Timeout = *timeout
	comm, elapsed, err := cfg.Run(*algo, g, q)
	if err != nil {
		fatalf("%s: %v", *algo, err)
	}

	fmt.Printf("algorithm:          %s\n", *algo)
	fmt.Printf("graph:              %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("community size:     %d\n", len(comm))
	fmt.Printf("density modularity: %.6f\n", modularity.Density(g, comm))
	fmt.Printf("classic modularity: %.6f\n", modularity.Classic(g, comm))
	fmt.Printf("elapsed:            %s\n", elapsed)
	if *verbose {
		fmt.Printf("members:            %s\n", joinLabels(g, comm))
	}
}

// runBatch answers every query in path through a shared-snapshot engine.
func runBatch(g *graph.Graph, byLabel map[string]graph.Node, path, algo string, parallel int, timeout time.Duration, verbose bool) {
	variant, ok := variantByName(algo)
	if !ok {
		fatalf("batch mode supports the DMCS variants (FPA, NCA, NCA-DR, FPA-DMG); got %q", algo)
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("open queries: %v", err)
	}

	type batchLine struct {
		text string
		err  error // label-resolution failure; not dispatched
		qIdx int   // index into qs, -1 when err != nil
	}
	var qs []engine.Query
	var batch []batchLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		nodes, err := resolveQuery(line, byLabel, ", \t")
		if err != nil {
			batch = append(batch, batchLine{text: line, err: err, qIdx: -1})
			continue
		}
		batch = append(batch, batchLine{text: line, qIdx: len(qs)})
		qs = append(qs, engine.Query{
			Nodes:   nodes,
			Variant: variant,
			// Match the single-query path (harness.Run), which enables the
			// Section 5.7 pruning for plain FPA.
			Opts: dmcs.Options{Timeout: timeout, LayerPruning: variant == dmcs.VariantFPA},
		})
	}
	if err := sc.Err(); err != nil {
		fatalf("read queries: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("close queries: %v", err)
	}
	if len(batch) == 0 {
		fatalf("no queries in %s", path)
	}

	eng := engine.New(g, engine.Options{Workers: parallel})
	start := time.Now()
	results := eng.SearchBatch(context.Background(), qs)
	wall := time.Since(start)

	for _, bl := range batch {
		if bl.err != nil {
			fmt.Printf("%-24s error: %v\n", bl.text, bl.err)
			continue
		}
		r := results[bl.qIdx]
		if r.Err != nil {
			fmt.Printf("%-24s error: %v\n", bl.text, r.Err)
			continue
		}
		mark := ""
		if r.Result.TimedOut {
			mark = " TIMED-OUT(partial)"
		}
		if verbose {
			fmt.Printf("%-24s size=%-5d score=%.6f%s members: %s\n",
				bl.text, len(r.Result.Community), r.Result.Score, mark, joinLabels(g, r.Result.Community))
		} else {
			fmt.Printf("%-24s size=%-5d score=%.6f%s\n", bl.text, len(r.Result.Community), r.Result.Score, mark)
		}
	}
	st := eng.Stats()
	fmt.Printf("\nbatch: %d queries in %s (%.1f q/s, %d workers)\n",
		len(batch), wall.Round(time.Millisecond), float64(len(batch))/wall.Seconds(), eng.Workers())
	fmt.Printf("engine: served=%d cache-hits=%d collapsed=%d computed=%d errors=%d p50=%s p95=%s\n",
		st.Queries, st.CacheHits, st.Collapsed, st.Computed, st.Errors,
		st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond))
	printFullStats(st)
}

// showFullStats gates the -stats counter dump appended after the batch
// and stream summaries.
var showFullStats bool

// walAttached records that the stream engine was opened through
// OpenDurable, so the summaries include the durability counters.
var walAttached bool

// printFullStats dumps the complete engine counter set, including the
// serving-tier robustness counters (deadline expiries, pre-work
// rejections, overload sheds, degraded-mode stale answers) and the
// component-scoped invalidation counters (components superseded vs
// carried warm across Applies).
func printFullStats(st engine.Stats) {
	if !showFullStats {
		return
	}
	fmt.Printf("engine: fused=%d timed-out=%d rejected=%d shed=%d stale-served=%d cache-entries=%d p99=%s\n",
		st.Fused, st.TimedOut, st.Rejected, st.Shed, st.StaleServed, st.CacheEntries,
		st.P99.Round(time.Microsecond))
	fmt.Printf("engine: components invalidated=%d retained=%d\n", st.Invalidated, st.Retained)
	if walAttached {
		fmt.Printf("engine: durable-epoch=%d last-checkpoint=%d checkpoint-failures=%d wal-sync-errors=%d\n",
			st.DurableEpoch, st.LastCheckpoint, st.CheckpointFailures, st.WALSyncErrors)
	}
}

// runUpdates processes an update-stream file: mutations are staged into a
// batch, applied atomically on `apply` (or implicitly before a query),
// and queries are answered by the live engine against the current graph
// version.
func runUpdates(g *graph.Graph, byLabel map[string]graph.Node, path, walDir, algo string, parallel int, timeout time.Duration, verbose bool) {
	variant, ok := variantByName(algo)
	if !ok {
		fatalf("update-stream mode supports the DMCS variants (FPA, NCA, NCA-DR, FPA-DMG); got %q", algo)
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("open updates: %v", err)
	}

	var eng *engine.Engine
	if walDir != "" {
		// Same durable code path dmcsd uses for -data-dir: on a fresh
		// directory the parsed graph seeds the log; on a non-empty one the
		// recovered state wins and -graph contributes only its labels.
		var info engine.RecoveryInfo
		eng, info, err = engine.OpenDurable(g, wal.Options{Dir: walDir}, engine.Options{Workers: parallel})
		if err != nil {
			fatalf("open wal: %v", err)
		}
		walAttached = true
		if !info.FreshStart {
			fmt.Printf("recovered: epoch=%d checkpoint=%d replayed=%d torn-bytes=%d (graph file superseded by durable state)\n",
				info.RecoveredEpoch, info.CheckpointEpoch, info.RecordsReplayed, info.TruncatedBytes)
		}
	} else {
		eng = engine.New(g, engine.Options{Workers: parallel})
	}
	// Labels grow with the graph; new tokens in mutation lines intern as
	// fresh node ids staged into the pending batch.
	labels := make([]string, g.NumNodes())
	for u := range labels {
		labels[u] = g.Label(graph.Node(u))
	}
	var pending engine.Batch
	intern := func(tok string) graph.Node {
		if id, ok := byLabel[tok]; ok {
			return id
		}
		id := graph.Node(len(labels))
		byLabel[tok] = id
		labels = append(labels, tok)
		pending.AddNode(id)
		return id
	}
	labelOf := func(u graph.Node) string {
		if int(u) < len(labels) {
			return labels[u]
		}
		return fmt.Sprintf("%d", u)
	}
	applyPending := func() {
		if pending.Len() == 0 {
			return
		}
		st, err := eng.Apply(pending)
		if err != nil {
			fatalf("apply: %v", err)
		}
		pending.Reset()
		fmt.Printf("apply: epoch=%d +%dn +%de -%de ~%dw reflooded=%d components=%d\n",
			st.Epoch, st.NodesAdded, st.EdgesAdded, st.EdgesRemoved, st.WeightsChanged,
			st.RefloodedNodes, st.Components)
	}

	ctx := context.Background()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Split on any whitespace, like every other parser in the
		// toolchain; rest keeps the raw operand text for query lines.
		cmd := strings.ToLower(strings.Fields(line)[0])
		rest := strings.TrimSpace(line[len(cmd):])
		fields := strings.Fields(rest)
		switch cmd {
		case "add", "setw":
			if len(fields) < 2 {
				fatalf("line %d: %s wants at least 2 labels", lineNo, cmd)
			}
			u, v := intern(fields[0]), intern(fields[1])
			w := 1.0
			if len(fields) >= 3 {
				if w, err = strconv.ParseFloat(fields[2], 64); err != nil {
					fatalf("line %d: bad weight %q: %v", lineNo, fields[2], err)
				}
			} else if cmd == "setw" {
				fatalf("line %d: setw wants an explicit weight", lineNo)
			}
			// A bare add is the API's AddEdge; an explicit weight column
			// (0 included) is honored exactly via SetWeight.
			if cmd == "add" && len(fields) < 3 {
				pending.AddEdge(u, v)
			} else {
				pending.SetWeight(u, v, w)
			}
		case "del":
			if len(fields) < 2 {
				fatalf("line %d: del wants 2 labels", lineNo)
			}
			// del never creates nodes: unknown labels mean the edge cannot
			// exist, so the removal is a no-op.
			u, uok := byLabel[fields[0]]
			v, vok := byLabel[fields[1]]
			if uok && vok {
				pending.RemoveEdge(u, v)
			}
		case "node":
			if len(fields) < 1 {
				fatalf("line %d: node wants a label", lineNo)
			}
			for _, tok := range fields {
				u := intern(tok)
				pending.AddNode(u) // idempotent for already-interned labels
			}
		case "apply":
			applyPending()
		case "query":
			applyPending() // a query always sees every mutation above it
			nodes, err := resolveQuery(rest, byLabel, ", \t")
			if err != nil {
				fmt.Printf("%-24s error: %v\n", line, err)
				continue
			}
			res, err := eng.Search(ctx, engine.Query{
				Nodes:   nodes,
				Variant: variant,
				Opts:    dmcs.Options{Timeout: timeout, LayerPruning: variant == dmcs.VariantFPA},
			})
			if err != nil {
				fmt.Printf("%-24s error: %v\n", line, err)
				continue
			}
			mark := ""
			if res.TimedOut {
				mark = " TIMED-OUT(partial)"
			}
			if verbose {
				members := make([]string, len(res.Community))
				for i, u := range res.Community {
					members[i] = labelOf(u)
				}
				fmt.Printf("%-24s epoch=%-3d size=%-5d score=%.6f%s members: %s\n",
					line, eng.Epoch(), len(res.Community), res.Score, mark, strings.Join(members, " "))
			} else {
				fmt.Printf("%-24s epoch=%-3d size=%-5d score=%.6f%s\n",
					line, eng.Epoch(), len(res.Community), res.Score, mark)
			}
		default:
			fatalf("line %d: unknown command %q (want add/setw/del/node/apply/query)", lineNo, cmd)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read updates: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("close updates: %v", err)
	}
	applyPending()
	if walAttached {
		// Make everything applied durable and leave a fresh checkpoint so
		// the next run replays nothing.
		if err := eng.SyncWAL(); err != nil {
			fatalf("wal sync: %v", err)
		}
		if _, err := eng.Checkpoint(); err != nil {
			fatalf("checkpoint: %v", err)
		}
		if err := eng.CloseWAL(); err != nil {
			fatalf("wal close: %v", err)
		}
	}
	st := eng.Stats()
	fmt.Printf("\nstream done: epoch=%d served=%d cache-hits=%d collapsed=%d computed=%d errors=%d p50=%s p95=%s\n",
		eng.Epoch(), st.Queries, st.CacheHits, st.Collapsed, st.Computed, st.Errors,
		st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond))
	printFullStats(st)
}

// runRecover opens a WAL data directory, recovers the durable state
// (newest valid checkpoint plus the replayable log suffix), prints what
// it found, and exits. A missing or empty directory is initialized as a
// fresh empty state — the same semantics dmcsd applies on first boot.
func runRecover(dir string) {
	eng, info, err := engine.OpenDurable(nil, wal.Options{Dir: dir}, engine.Options{})
	if err != nil {
		fatalf("recover: %v", err)
	}
	snap := eng.Snapshot()
	csr := snap.CSR()
	durable, _ := eng.DurableEpoch()
	fmt.Printf("recovered: epoch=%d durable-epoch=%d fresh=%v\n", eng.Epoch(), durable, info.FreshStart)
	fmt.Printf("checkpoint: epoch=%d skipped=%d\n", info.CheckpointEpoch, info.SkippedCheckpoints)
	fmt.Printf("log: replayed=%d records, torn-bytes=%d truncated\n", info.RecordsReplayed, info.TruncatedBytes)
	fmt.Printf("graph: %d nodes, %d edges, %d components (weighted=%v)\n",
		csr.NumNodes(), csr.NumEdges(), snap.NumComponents(), csr.Weighted())
	if err := eng.CloseWAL(); err != nil {
		fatalf("wal close: %v", err)
	}
}

// parseQuery resolves a separated list of node labels, exiting on unknown
// labels (single-query mode).
func parseQuery(s string, byLabel map[string]graph.Node, seps string) []graph.Node {
	q, err := resolveQuery(s, byLabel, seps)
	if err != nil {
		fatalf("%v", err)
	}
	return q
}

// resolveQuery resolves a separated list of node labels, reporting unknown
// labels as an error so batch mode can fail one query without aborting the
// rest.
func resolveQuery(s string, byLabel map[string]graph.Node, seps string) ([]graph.Node, error) {
	var q []graph.Node
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool { return strings.ContainsRune(seps, r) }) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		u, ok := byLabel[tok]
		if !ok {
			return nil, fmt.Errorf("unknown query node %q", tok)
		}
		q = append(q, u)
	}
	return q, nil
}

// variantByName maps the CLI algorithm names to DMCS variants.
func variantByName(name string) (dmcs.Variant, bool) {
	switch strings.ToUpper(name) {
	case "FPA":
		return dmcs.VariantFPA, true
	case "NCA":
		return dmcs.VariantNCA, true
	case "NCA-DR", "NCADR":
		return dmcs.VariantNCADR, true
	case "FPA-DMG", "FPADMG":
		return dmcs.VariantFPADMG, true
	}
	return 0, false
}

func joinLabels(g *graph.Graph, comm []graph.Node) string {
	labels := make([]string, len(comm))
	for i, u := range comm {
		labels[i] = g.Label(u)
	}
	return strings.Join(labels, " ")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dmcs: "+format+"\n", args...)
	os.Exit(1)
}
