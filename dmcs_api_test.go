package dmcs_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"dmcs"
)

// twoCliques is the standard two-K5s-with-a-bridge fixture.
func twoCliques() *dmcs.Graph {
	b := dmcs.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(dmcs.Node(i), dmcs.Node(j))
			b.AddEdge(dmcs.Node(i+5), dmcs.Node(j+5))
		}
	}
	b.AddEdge(4, 5)
	return b.Build()
}

func TestPublicQuickstartFlow(t *testing.T) {
	g := twoCliques()
	res, err := dmcs.FPA(g, []dmcs.Node{0}, dmcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Community) != 5 {
		t.Fatalf("community=%v want the K5", res.Community)
	}
	if math.Abs(res.Score-dmcs.DensityModularityOf(g, res.Community)) > 1e-9 {
		t.Fatal("Score should match DensityModularityOf")
	}
}

func TestPublicSearchVariants(t *testing.T) {
	g := twoCliques()
	for _, v := range []dmcs.Variant{dmcs.VariantFPA, dmcs.VariantNCA, dmcs.VariantNCADR, dmcs.VariantFPADMG} {
		res, err := dmcs.Search(g, []dmcs.Node{2}, v, dmcs.Options{})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		found := false
		for _, u := range res.Community {
			if u == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v lost the query node", v)
		}
	}
}

func TestPublicParseEdgeList(t *testing.T) {
	g, err := dmcs.ParseEdgeList(strings.NewReader("a b\nb c\nc a\nc d\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("parsed n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	res, err := dmcs.FPA(g, []dmcs.Node{0}, dmcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Community) == 0 {
		t.Fatal("no community found")
	}
}

func TestPublicErrors(t *testing.T) {
	g := dmcs.FromEdges(4, [][2]dmcs.Node{{0, 1}, {2, 3}})
	if _, err := dmcs.FPA(g, nil, dmcs.Options{}); err != dmcs.ErrEmptyQuery {
		t.Fatalf("want ErrEmptyQuery, got %v", err)
	}
	if _, err := dmcs.FPA(g, []dmcs.Node{0, 2}, dmcs.Options{}); err != dmcs.ErrDisconnected {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
}

func TestPublicModularityValues(t *testing.T) {
	// Example 1/2 arithmetic through the public API: build the Figure 1
	// toy network inline.
	b := dmcs.NewBuilder(16)
	k4 := func(base dmcs.Node) {
		for i := dmcs.Node(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	k4(0)
	k4(4)
	k4(8)
	k4(12)
	b.AddEdge(0, 4)
	b.AddEdge(1, 5)
	g := b.Build()
	a := []dmcs.Node{0, 1, 2, 3}
	if got := dmcs.ClassicModularityOf(g, a); math.Abs(got-0.158284) > 1e-6 {
		t.Fatalf("CM(A)=%v", got)
	}
	if got := dmcs.DensityModularityOf(g, a); math.Abs(got-1.028846) > 1e-6 {
		t.Fatalf("DM(A)=%v", got)
	}
	if got := dmcs.WeightedDensityModularityOf(g, a); math.Abs(got-1.028846) > 1e-6 {
		t.Fatalf("weighted DM(A)=%v on unweighted graph", got)
	}
}

func TestPublicObjectiveConstants(t *testing.T) {
	g := twoCliques()
	for _, obj := range []dmcs.Objective{dmcs.DensityModularity, dmcs.ClassicModularity, dmcs.GeneralizedModularityDensity} {
		if _, err := dmcs.FPA(g, []dmcs.Node{0}, dmcs.Options{Objective: obj}); err != nil {
			t.Fatalf("objective %v: %v", obj, err)
		}
	}
}

func TestPublicEngineApply(t *testing.T) {
	g := twoCliques()
	eng := dmcs.NewEngine(g, dmcs.EngineOptions{Workers: 2})
	ctx := context.Background()
	if _, err := eng.Search(ctx, dmcs.EngineQuery{Nodes: []dmcs.Node{0}}); err != nil {
		t.Fatal(err)
	}

	var b dmcs.EngineBatch
	b.RemoveEdge(4, 5) // cut the bridge
	b.AddNode(10)
	st, _ := eng.Apply(b)
	if st.Epoch != 1 || st.EdgesRemoved != 1 || st.NodesAdded != 1 {
		t.Fatalf("ApplyStats = %+v, want epoch 1 with one removal and one new node", st)
	}
	if st.Components != 3 {
		t.Fatalf("components = %d, want 3 (two cliques + isolated node)", st.Components)
	}
	if _, err := eng.Search(ctx, dmcs.EngineQuery{Nodes: []dmcs.Node{0, 5}}); err != dmcs.ErrDisconnected {
		t.Fatalf("cross-cut query err = %v, want ErrDisconnected", err)
	}
	res, err := eng.Search(ctx, dmcs.EngineQuery{Nodes: []dmcs.Node{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Community) != 5 {
		t.Fatalf("post-cut community = %v, want the K5", res.Community)
	}
}
