package gen

import (
	"testing"

	"dmcs/internal/graph"
)

func TestFigure1ToyMatchesPaperStatistics(t *testing.T) {
	g, a, ab := Figure1Toy()
	if g.NumNodes() != 16 || g.NumEdges() != 26 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if len(a) != 4 || len(ab) != 8 {
		t.Fatalf("|A|=%d |A∪B|=%d", len(a), len(ab))
	}
	// d_A = 14 per the paper
	d := 0
	for _, u := range a {
		d += g.Degree(u)
	}
	if d != 14 {
		t.Fatalf("d_A=%d want 14", d)
	}
}

func TestRingOfCliquesShape(t *testing.T) {
	g, comms := RingOfCliques(30, 6)
	if g.NumNodes() != 180 {
		t.Fatalf("n=%d want 180", g.NumNodes())
	}
	// 30 * C(6,2) + 30 ring edges = 450 + 30 = 480, as in Example 3
	if g.NumEdges() != 480 {
		t.Fatalf("m=%d want 480", g.NumEdges())
	}
	if len(comms) != 30 || len(comms[0]) != 6 {
		t.Fatalf("communities %d × %d", len(comms), len(comms[0]))
	}
	comp, k := graph.ConnectedComponents(g)
	_ = comp
	if k != 1 {
		t.Fatalf("ring of cliques should be connected, got %d components", k)
	}
}

func TestRingOfCliquesDegrees(t *testing.T) {
	g, _ := RingOfCliques(5, 4)
	// every clique has exactly two nodes with an extra ring edge
	extra := 0
	for u := 0; u < g.NumNodes(); u++ {
		switch g.Degree(graph.Node(u)) {
		case 3:
		case 4:
			extra++
		default:
			t.Fatalf("unexpected degree %d", g.Degree(graph.Node(u)))
		}
	}
	if extra != 10 {
		t.Fatalf("extra-degree nodes=%d want 10", extra)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 0.1, 9)
	b := ErdosRenyi(50, 0.1, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should give the same graph")
	}
	if c := ErdosRenyi(50, 0.1, 10); c.NumEdges() == a.NumEdges() {
		ea, ec := a.EdgeList(), c.EdgeList()
		same := true
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

func TestGNMEdgeCount(t *testing.T) {
	g := GNM(30, 100, 4)
	if g.NumEdges() != 100 {
		t.Fatalf("m=%d want 100", g.NumEdges())
	}
	// m larger than possible is clamped
	g2 := GNM(5, 100, 4)
	if g2.NumEdges() != 10 {
		t.Fatalf("clamped m=%d want 10", g2.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(200, 3, 3, 5)
	if g.NumNodes() != 200 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	// expected edge count: C(3,2) + 197*3 = 3 + 591 (deduping may remove a few)
	if g.NumEdges() < 550 || g.NumEdges() > 594 {
		t.Fatalf("m=%d outside plausible range", g.NumEdges())
	}
	if _, k := graph.ConnectedComponents(g); k != 1 {
		t.Fatal("BA graph should be connected")
	}
	// scale-free: max degree far above average
	maxd := 0
	for u := 0; u < 200; u++ {
		if d := g.Degree(graph.Node(u)); d > maxd {
			maxd = d
		}
	}
	if maxd < 12 {
		t.Fatalf("max degree %d suspiciously small for BA", maxd)
	}
}

func TestPlantedPartition(t *testing.T) {
	sizes := []int{30, 30, 40}
	g, comms := PlantedPartition(sizes, 0.3, 0.01, 77)
	if g.NumNodes() != 100 || len(comms) != 3 {
		t.Fatalf("n=%d comms=%d", g.NumNodes(), len(comms))
	}
	if _, k := graph.ConnectedComponents(g); k != 1 {
		t.Fatal("planted partition should be globally connected")
	}
	// each community individually connected (spanning tree guarantee)
	for ci, c := range comms {
		sub, _ := g.InducedSubgraph(c)
		if _, k := graph.ConnectedComponents(sub); k != 1 {
			t.Fatalf("community %d disconnected", ci)
		}
	}
	// intra edges dominate inter edges
	memb := make([]int, 100)
	for ci, c := range comms {
		for _, u := range c {
			memb[u] = ci
		}
	}
	intra, inter := 0, 0
	g.Edges(func(u, v graph.Node) bool {
		if memb[u] == memb[v] {
			intra++
		} else {
			inter++
		}
		return true
	})
	if intra <= inter*3 {
		t.Fatalf("intra=%d inter=%d; expected strong community structure", intra, inter)
	}
}

func TestChungLuPartition(t *testing.T) {
	g, comms := ChungLuPartition([2]int{80, 60}, 8, 2.5, 0.2, 3)
	if g.NumNodes() != 140 || len(comms) != 2 {
		t.Fatalf("n=%d comms=%d", g.NumNodes(), len(comms))
	}
	if len(comms[0]) != 80 || len(comms[1]) != 60 {
		t.Fatalf("sizes %d/%d", len(comms[0]), len(comms[1]))
	}
	if _, k := graph.ConnectedComponents(g); k != 1 {
		t.Fatal("stand-in should be connected")
	}
	// heterogeneous degrees: max degree well above the mean
	maxd, sum := 0, 0
	for u := 0; u < 140; u++ {
		d := g.Degree(graph.Node(u))
		sum += d
		if d > maxd {
			maxd = d
		}
	}
	if float64(maxd) < 2.5*float64(sum)/140 {
		t.Fatalf("max degree %d not hub-like (avg %.1f)", maxd, float64(sum)/140)
	}
}
