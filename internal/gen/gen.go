// Package gen provides deterministic synthetic graph generators: the
// paper's worked-example topologies (Figure 1 toy network, the ring of
// cliques of Example 3), classic random-graph models (Erdős–Rényi,
// Barabási–Albert), and planted-partition generators used as stand-ins for
// real datasets that cannot be redistributed (see DESIGN.md §2).
//
// Every generator takes an explicit seed and uses its own rand.Rand, so
// outputs are reproducible across runs and platforms.
package gen

import (
	"math"
	"math/rand"

	"dmcs/internal/graph"
)

// Figure1Toy builds the 16-node toy network consistent with the paper's
// Figure 1 arithmetic: community A (nodes 0–3) is a K4, community B (nodes
// 4–7) is a K4, A and B are joined by two edges, and nodes 8–15 form two
// disjoint K4s, for |E| = 26 in total. It returns the graph plus the A and
// A∪B node sets used in Examples 1 and 2.
func Figure1Toy() (g *graph.Graph, a, ab []graph.Node) {
	b := graph.NewBuilder(16)
	k4 := func(base graph.Node) {
		for i := graph.Node(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	k4(0)
	k4(4)
	k4(8)
	k4(12)
	b.AddEdge(0, 4)
	b.AddEdge(1, 5)
	return b.Build(),
		[]graph.Node{0, 1, 2, 3},
		[]graph.Node{0, 1, 2, 3, 4, 5, 6, 7}
}

// RingOfCliques builds the classic resolution-limit gadget of Example 3: k
// cliques of size s arranged in a ring, consecutive cliques joined by a
// single edge. It returns the graph and the ground-truth communities (one
// per clique). Nodes of clique i are [i*s, (i+1)*s).
func RingOfCliques(k, s int) (*graph.Graph, [][]graph.Node) {
	b := graph.NewBuilder(k * s)
	comms := make([][]graph.Node, k)
	for c := 0; c < k; c++ {
		base := graph.Node(c * s)
		members := make([]graph.Node, s)
		for i := 0; i < s; i++ {
			members[i] = base + graph.Node(i)
			for j := i + 1; j < s; j++ {
				b.AddEdge(base+graph.Node(i), base+graph.Node(j))
			}
		}
		comms[c] = members
	}
	// Ring edges: last node of clique c to first node of clique c+1.
	for c := 0; c < k; c++ {
		u := graph.Node(c*s + s - 1)
		v := graph.Node(((c + 1) % k) * s)
		b.AddEdge(u, v)
	}
	return b.Build(), comms
}

// ErdosRenyi samples G(n, p).
func ErdosRenyi(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(graph.Node(i), graph.Node(j))
			}
		}
	}
	return b.Build()
}

// GNM samples a uniform graph with exactly m distinct edges (or fewer when
// m exceeds the number of possible edges).
func GNM(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	b := graph.NewBuilder(n)
	for b.NumEdges() < m {
		u := graph.Node(rng.Intn(n))
		v := graph.Node(rng.Intn(n))
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert grows a scale-free graph by preferential attachment: it
// starts from a clique on m0 nodes and attaches each new node to m distinct
// existing nodes chosen proportionally to degree.
func BarabasiAlbert(n, m0, m int, seed int64) *graph.Graph {
	if m0 < m {
		m0 = m
	}
	if m0 < 2 {
		m0 = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// repeated-endpoint list implements preferential attachment
	var targets []graph.Node
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			targets = append(targets, graph.Node(i), graph.Node(j))
		}
	}
	for u := m0; u < n; u++ {
		chosen := make(map[graph.Node]bool, m)
		for len(chosen) < m {
			chosen[targets[rng.Intn(len(targets))]] = true
		}
		for v := range chosen {
			b.AddEdge(graph.Node(u), v)
			targets = append(targets, graph.Node(u), v)
		}
	}
	return b.Build()
}

// PlantedPartition builds a graph whose nodes are split into communities of
// the given sizes; each intra-community pair is an edge with probability
// pin and each inter-community pair with probability pout. A random
// spanning tree is always added inside each community so ground-truth
// communities are connected, and single bridge edges join consecutive
// communities so the whole graph is connected. Returns the graph and the
// ground-truth communities.
func PlantedPartition(sizes []int, pin, pout float64, seed int64) (*graph.Graph, [][]graph.Node) {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for _, s := range sizes {
		n += s
	}
	b := graph.NewBuilder(n)
	comms := make([][]graph.Node, len(sizes))
	base := 0
	for c, s := range sizes {
		members := make([]graph.Node, s)
		for i := 0; i < s; i++ {
			members[i] = graph.Node(base + i)
		}
		comms[c] = members
		// random spanning tree keeps the community connected
		for i := 1; i < s; i++ {
			b.AddEdge(members[i], members[rng.Intn(i)])
		}
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				if rng.Float64() < pin {
					b.AddEdge(members[i], members[j])
				}
			}
		}
		base += s
	}
	// inter-community noise
	for c := 0; c < len(comms); c++ {
		for d := c + 1; d < len(comms); d++ {
			for _, u := range comms[c] {
				for _, v := range comms[d] {
					if rng.Float64() < pout {
						b.AddEdge(u, v)
					}
				}
			}
		}
	}
	// guarantee global connectivity with a ring of bridges
	for c := 0; c+1 < len(comms); c++ {
		u := comms[c][rng.Intn(len(comms[c]))]
		v := comms[c+1][rng.Intn(len(comms[c+1]))]
		b.AddEdge(u, v)
	}
	return b.Build(), comms
}

// ChungLuPartition builds a two-community graph with heterogeneous
// (power-law-ish) expected degrees, used as the Polblogs stand-in: hub
// nodes acquire high degree, and a fraction mu of each node's edges point
// across the community boundary. Returns the graph and the two ground-truth
// communities.
func ChungLuPartition(sizes [2]int, avgDeg float64, exponent float64, mu float64, seed int64) (*graph.Graph, [][]graph.Node) {
	rng := rand.New(rand.NewSource(seed))
	n := sizes[0] + sizes[1]
	w := make([]float64, n)
	var sum float64
	for i := range w {
		// power-law weights w_i ∝ (i+1)^(-1/(exponent-1))
		w[i] = math.Pow(float64(i%max(sizes[0], sizes[1])+1), -1/(exponent-1))
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	comm := make([]int, n)
	comms := make([][]graph.Node, 2)
	for i := 0; i < n; i++ {
		c := 0
		if i >= sizes[0] {
			c = 1
		}
		comm[i] = c
		comms[c] = append(comms[c], graph.Node(i))
	}
	b := graph.NewBuilder(n)
	// Chung–Lu sampling: edge (i,j) with prob ~ w_i w_j / (sum w), damped
	// across communities by mu/(1-mu).
	totalW := 0.0
	for _, x := range w {
		totalW += x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := w[i] * w[j] / totalW
			if comm[i] != comm[j] {
				p *= mu / (1 - mu)
			}
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p {
				b.AddEdge(graph.Node(i), graph.Node(j))
			}
		}
	}
	// spanning trees for community connectivity + one bridge
	base := 0
	for _, s := range []int{sizes[0], sizes[1]} {
		for i := 1; i < s; i++ {
			b.AddEdge(graph.Node(base+i), graph.Node(base+rng.Intn(i)))
		}
		base += s
	}
	b.AddEdge(comms[0][0], comms[1][0])
	return b.Build(), comms
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
