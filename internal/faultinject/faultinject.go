// Package faultinject is the repository's build-tag-free fault-injection
// registry: a fixed set of named injection points threaded through the
// serving stack (engine peel, engine apply, the dmcsd admission and
// response paths), each of which can be armed at runtime with a latency,
// an error, a panic, or a dropped-response directive. The chaos test
// suites and cmd/loadgen's chaos profile drive it; production builds
// carry the same code, disarmed.
//
// The registry is designed around one constraint: when nothing is armed
// — the permanent state of any real deployment — an injection point must
// cost one atomic load and nothing else. Fire's fast path is
//
//	if armed.Load() == 0 { return nil }
//
// with no allocation, no map lookup, no lock, and no time.Now call, so
// injection points may sit on the engine's zero-alloc cache-hit path
// without breaking its 0 allocs/op gate (CI asserts exactly that; see
// the steady-state allocation gate in ci.yml). When at least one point
// is armed, Fire loads the point's atomic.Pointer slot; points other
// than the armed ones still allocate nothing.
//
// Arming is test-side API: Set installs an Injection on a point, Clear
// and Reset disarm. An Injection can fire on every pass, every Nth pass
// (Every), or a bounded number of times (Limit), which is how chaos
// tests inject "one poisoned query" into a storm without taking the
// whole run down.
//
// Adding a new injection point is a three-line change; see
// CONTRIBUTING.md "Adding a fault-injection point".
package faultinject

import (
	"errors"
	"sync/atomic"
	"time"
)

// Point identifies one injection site. Points are a fixed enum (not
// strings) so Fire's armed-path lookup is an array index — no hashing,
// no allocation — and so the compiler can prove call sites cheap.
type Point uint8

const (
	// EngineSearch fires at the top of Engine.Search, before admission —
	// on the cache-hit path, which is exactly why it exists: it is the
	// point the zero-cost-when-disabled gate measures.
	EngineSearch Point = iota
	// EnginePeel fires inside the engine's search execution, immediately
	// before the peel kernel runs — the place to inject peel latency
	// (slow query), a peel error, or a mid-serving panic (poisoned
	// query).
	EnginePeel
	// EngineApply fires inside Engine.Apply while the writer lock is
	// held — the slow-Apply point: injected latency here stalls graph
	// mutation while queries keep draining on the old snapshot.
	EngineApply
	// ServerDecode fires in dmcsd after a request has been decoded and
	// before admission — the place to inject admission-side errors and
	// latency (slow middleware, auth stalls).
	ServerDecode
	// ServerRespond fires in dmcsd immediately before the response is
	// written. An Injection with Drop set makes the server abandon the
	// write (the client sees a connection reset / truncated body), the
	// slow-client / dropped-response chaos case.
	ServerRespond
	// WALAppend fires inside wal.Log.Append before the record frame is
	// written — the full-disk / failed-write case: an injected error here
	// fails the Apply that triggered the append, and injecting the WAL's
	// ErrTornWrite sentinel makes Append leave a deliberately truncated
	// frame on disk before failing (the torn-write crash image recovery
	// must tolerate at the tail and refuse mid-log).
	WALAppend
	// WALSync fires before each fsync of the active WAL segment (both the
	// per-append sync of the `always` policy and the background flusher of
	// `interval`) — the place to inject fsync latency or failure.
	WALSync
	// CheckpointWrite fires at the top of wal.Log.WriteCheckpoint — an
	// injected error aborts the checkpoint (the previous one stays
	// authoritative), and ErrTornWrite leaves a truncated checkpoint file
	// that recovery must reject by checksum and fall past.
	CheckpointWrite
	numPoints
)

// String returns the point's registry name, as used in CONTRIBUTING.md
// and cmd/loadgen -chaos profiles.
func (p Point) String() string {
	switch p {
	case EngineSearch:
		return "engine.search"
	case EnginePeel:
		return "engine.peel"
	case EngineApply:
		return "engine.apply"
	case ServerDecode:
		return "server.decode"
	case ServerRespond:
		return "server.respond"
	case WALAppend:
		return "wal.append"
	case WALSync:
		return "wal.sync"
	case CheckpointWrite:
		return "wal.checkpoint"
	}
	return "unknown"
}

// ErrInjected is the default error an armed point returns when its
// Injection sets Err == nil but still needs a failure outcome (Drop
// points aside, an armed error injection with no explicit error means
// "fail generically").
var ErrInjected = errors.New("faultinject: injected error")

// ErrDropped is returned by Fire at a point whose Injection has Drop
// set: the caller must abandon its response instead of writing it.
// Only the server respond path interprets it; everywhere else it
// surfaces like any injected error.
var ErrDropped = errors.New("faultinject: response dropped")

// Injection is what an armed point does when it fires. Zero-valued
// fields are inert; combining fields is allowed and executes in the
// order latency → panic → drop → error.
type Injection struct {
	// Latency is slept before anything else — the slow-peel / slow-Apply
	// / slow-middleware injection.
	Latency time.Duration
	// Err, when non-nil, is returned from Fire. A directive-free
	// Injection (no latency, panic, drop, or error) returns ErrInjected
	// so arming a point is never a silent no-op; a latency-only
	// Injection sleeps and then proceeds (returns nil).
	Err error
	// Panic, when non-empty, makes Fire panic with this value — the
	// poisoned-query case. Per-query panic isolation in the engine and
	// server converts it into one failed response.
	Panic string
	// Drop, when set, makes Fire return ErrDropped.
	Drop bool
	// Every fires the injection on every Nth pass through the point
	// (1 or 0 = every pass). Passes that don't fire pay two atomic ops
	// and inject nothing.
	Every int
	// Limit, when > 0, disarms the injection after it has fired that
	// many times — "inject exactly K panics into the storm".
	Limit int
}

// armedInjection is the installed form: the directive plus its firing
// counters.
type armedInjection struct {
	inj   Injection
	hits  atomic.Int64 // passes through the point while armed
	fired atomic.Int64 // times the injection actually fired
}

// armed counts installed injections; the zero check is Fire's entire
// fast path. points holds one slot per Point.
var (
	armed  atomic.Int32
	points [numPoints]atomic.Pointer[armedInjection]
)

// Fire executes point p's armed injection, if any: it sleeps the
// injected latency, panics if a panic is injected, and returns the
// injected error (ErrDropped for Drop directives). With nothing armed
// anywhere — the production state — it is a single atomic load.
func Fire(p Point) error {
	if armed.Load() == 0 {
		return nil
	}
	return fireSlow(p)
}

// fireSlow is the armed path, kept out of Fire so the fast path stays
// trivially inlinable.
func fireSlow(p Point) error {
	ai := points[p].Load()
	if ai == nil {
		return nil
	}
	hit := ai.hits.Add(1)
	if every := int64(ai.inj.Every); every > 1 && hit%every != 0 {
		return nil
	}
	if limit := int64(ai.inj.Limit); limit > 0 {
		if fired := ai.fired.Add(1); fired > limit {
			return nil
		}
	} else {
		ai.fired.Add(1)
	}
	if ai.inj.Latency > 0 {
		time.Sleep(ai.inj.Latency)
	}
	if ai.inj.Panic != "" {
		panic("faultinject: " + ai.inj.Panic)
	}
	if ai.inj.Drop {
		return ErrDropped
	}
	if ai.inj.Err != nil {
		return ai.inj.Err
	}
	if ai.inj.Latency > 0 {
		// Latency-only: slow, then proceed.
		return nil
	}
	return ErrInjected
}

// Set arms point p with inj, replacing any previous injection on it.
func Set(p Point, inj Injection) {
	if points[p].Swap(&armedInjection{inj: inj}) == nil {
		armed.Add(1)
	}
}

// Clear disarms point p.
func Clear(p Point) {
	if points[p].Swap(nil) != nil {
		armed.Add(-1)
	}
}

// Reset disarms every point — chaos tests defer this so one test's
// injections can never leak into the next.
func Reset() {
	for p := Point(0); p < numPoints; p++ {
		Clear(p)
	}
}

// Fired reports how many times point p's current injection has actually
// fired (0 if disarmed). Test-side assertion API.
func Fired(p Point) int {
	ai := points[p].Load()
	if ai == nil {
		return 0
	}
	n := ai.fired.Load()
	if limit := int64(ai.inj.Limit); limit > 0 && n > limit {
		n = limit
	}
	return int(n)
}

// Hits reports how many times point p has been passed while armed
// (fired or not). Test-side assertion API.
func Hits(p Point) int {
	ai := points[p].Load()
	if ai == nil {
		return 0
	}
	return int(ai.hits.Load())
}

// Armed reports whether any point is currently armed. The serving tier
// may consult it for diagnostics; it is never needed for correctness.
func Armed() bool { return armed.Load() != 0 }
