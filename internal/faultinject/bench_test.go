package faultinject

import "testing"

// BenchmarkFireDisarmed is the registry's whole reason to exist in this
// form: a disarmed injection point must be one atomic load — no
// allocation, no lock, no branch into the slow path. CI gates it at
// 0 allocs/op alongside the engine cache-hit gates.
func BenchmarkFireDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Fire(EngineSearch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFireArmedOtherPoint measures the cost the registry's armed
// state imposes on points that are NOT themselves armed: one atomic
// load plus one pointer-slot load, still allocation-free. This is what
// the engine's cache-hit path pays while a chaos profile is injecting
// faults elsewhere.
func BenchmarkFireArmedOtherPoint(b *testing.B) {
	defer Reset()
	Set(ServerRespond, Injection{Drop: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Fire(EngineSearch); err != nil {
			b.Fatal(err)
		}
	}
}
