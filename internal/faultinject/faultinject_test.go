package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	Reset()
	for p := Point(0); p < numPoints; p++ {
		if err := Fire(p); err != nil {
			t.Fatalf("disarmed Fire(%v) = %v, want nil", p, err)
		}
	}
}

func TestErrorInjection(t *testing.T) {
	defer Reset()
	want := errors.New("boom")
	Set(EnginePeel, Injection{Err: want})
	if err := Fire(EnginePeel); !errors.Is(err, want) {
		t.Fatalf("Fire = %v, want %v", err, want)
	}
	// Other points stay unarmed even while the registry is armed.
	if err := Fire(EngineSearch); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	Clear(EnginePeel)
	if err := Fire(EnginePeel); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
}

func TestArmedWithoutDirectiveFailsLoudly(t *testing.T) {
	defer Reset()
	Set(ServerDecode, Injection{})
	if err := Fire(ServerDecode); !errors.Is(err, ErrInjected) {
		t.Fatalf("zero Injection Fire = %v, want ErrInjected", err)
	}
}

func TestDropInjection(t *testing.T) {
	defer Reset()
	Set(ServerRespond, Injection{Drop: true})
	if err := Fire(ServerRespond); !errors.Is(err, ErrDropped) {
		t.Fatalf("Fire = %v, want ErrDropped", err)
	}
}

func TestPanicInjection(t *testing.T) {
	defer Reset()
	Set(EnginePeel, Injection{Panic: "poisoned"})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected injected panic")
		}
	}()
	_ = Fire(EnginePeel)
}

func TestLatencyInjection(t *testing.T) {
	defer Reset()
	Set(EngineApply, Injection{Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := Fire(EngineApply); err != nil {
		t.Fatalf("latency-only injection returned error %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("injected latency not observed: %v", d)
	}
}

// A latency-only injection must not fail the call: Err/Panic/Drop unset
// means "slow, then proceed".
func TestLatencyOnlyDoesNotError(t *testing.T) {
	defer Reset()
	Set(EnginePeel, Injection{Latency: time.Microsecond})
	if err := Fire(EnginePeel); err != nil {
		t.Fatalf("latency-only Fire = %v, want nil", err)
	}
}

func TestEveryNth(t *testing.T) {
	defer Reset()
	Set(EnginePeel, Injection{Err: ErrInjected, Every: 3})
	fails := 0
	for i := 0; i < 9; i++ {
		if Fire(EnginePeel) != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("Every=3 over 9 passes fired %d times, want 3", fails)
	}
	if Hits(EnginePeel) != 9 || Fired(EnginePeel) != 3 {
		t.Fatalf("Hits=%d Fired=%d, want 9/3", Hits(EnginePeel), Fired(EnginePeel))
	}
}

func TestLimitDisarmsAfterN(t *testing.T) {
	defer Reset()
	Set(EnginePeel, Injection{Err: ErrInjected, Limit: 2})
	fails := 0
	for i := 0; i < 10; i++ {
		if Fire(EnginePeel) != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("Limit=2 fired %d times, want 2", fails)
	}
	if Fired(EnginePeel) != 2 {
		t.Fatalf("Fired = %d, want 2", Fired(EnginePeel))
	}
}

// Limit must hold exactly under concurrent firing — the chaos suites
// inject "exactly K panics" into a storm and count on it.
func TestLimitConcurrent(t *testing.T) {
	defer Reset()
	Set(EnginePeel, Injection{Err: ErrInjected, Limit: 7})
	var fails sync.Map
	var total atomic64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 1000; i++ {
				if Fire(EnginePeel) != nil {
					n++
				}
			}
			fails.Store(w, n)
			total.add(int64(n))
		}(w)
	}
	wg.Wait()
	if got := total.load(); got != 7 {
		t.Fatalf("concurrent Limit=7 fired %d times", got)
	}
}

func TestSetReplaces(t *testing.T) {
	defer Reset()
	Set(EnginePeel, Injection{Err: errors.New("old")})
	Set(EnginePeel, Injection{Drop: true})
	if err := Fire(EnginePeel); !errors.Is(err, ErrDropped) {
		t.Fatalf("replaced injection Fire = %v, want ErrDropped", err)
	}
	Reset()
	if Armed() {
		t.Fatal("Armed() true after Reset")
	}
}

func TestPointNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Point(0); p < numPoints; p++ {
		name := p.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("point %d has bad/duplicate name %q", p, name)
		}
		seen[name] = true
	}
}

// atomic64 is a tiny wrapper so the test file needs no extra import
// gymnastics.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
