package dmcs

import (
	"testing"

	"dmcs/internal/graph"
)

// whaleGraph is the intra-query parallelism fixture: ONE connected
// expander-style component of n nodes (ring for connectivity plus two
// affine chord families, degree ~6). Unlike the ring+chord small-query
// fixture, whose BFS layers stay a few dozen nodes wide, the affine
// chords make frontiers grow multiplicatively — layers reach thousands
// of nodes within a few hops, which is the regime the round-synchronous
// kernels (parallel BFS, fused layer removal, parallel Θ-fill) target.
func whaleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(graph.Node(u), graph.Node((u+1)%n))
		b.AddEdge(graph.Node(u), graph.Node((7*u+3)%n))
		b.AddEdge(graph.Node(u), graph.Node((131*u+17)%n))
	}
	return b.Build()
}

// whaleNodes keeps the component above parallelMinNodes (8192) with
// headroom, while holding a full serial peel to a few milliseconds so
// the -cpu 1,8 CI comparison stays cheap.
const whaleNodes = 16384

// benchWhale measures one full community search on the whale component.
// Query node rotates so no per-node pathology dominates; the arena pool
// keeps steady-state allocation out of the measurement, same as the
// small-query suite.
func benchWhale(b *testing.B, opts Options) {
	b.Helper()
	csr := graph.NewCSR(whaleGraph(whaleNodes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := []graph.Node{graph.Node((i * 977) % whaleNodes)}
		if _, err := SearchCSR(csr, q, VariantFPA, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhaleFPAPruningSerial is the serial baseline for the headline
// whale workload: Section 5.7 layer pruning on a 16k-node component.
func BenchmarkWhaleFPAPruningSerial(b *testing.B) {
	benchWhale(b, Options{LayerPruning: true, Parallelism: 1})
}

// BenchmarkWhaleFPAPruningPar is the same workload with the parallel
// peel requested. Parallelism is capped at GOMAXPROCS, so under
// `-cpu 1` this resolves to the serial kernels plus dispatch checks —
// CI gates that it stays within noise of the Serial twin there — and
// under `-cpu 8` it exercises the gang kernels.
func BenchmarkWhaleFPAPruningPar(b *testing.B) {
	benchWhale(b, Options{LayerPruning: true, Parallelism: 8})
}

// BenchmarkWhaleFPASerial / Par: the non-pruned peel, where the Θ-heap
// drain is the serial residue and only the BFS and per-layer Θ-fill
// parallelize (Amdahl bounds this pair well below the pruning pair).
func BenchmarkWhaleFPASerial(b *testing.B) {
	benchWhale(b, Options{Parallelism: 1})
}

func BenchmarkWhaleFPAPar(b *testing.B) {
	benchWhale(b, Options{Parallelism: 8})
}
