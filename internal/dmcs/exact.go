package dmcs

import (
	"errors"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// ErrTooLarge is returned by ExactSmall for graphs beyond the exhaustive-
// search limit.
var ErrTooLarge = errors.New("dmcs: graph too large for exact search")

// ExactSmall solves DMCS exactly by enumerating every connected node set
// that contains the query nodes, for graphs with at most maxNodes nodes
// (≤ 24). It exists to measure the optimality gap of the heuristics — the
// problem is NP-hard (Theorem 3), so this is exponential and intended for
// tests and calibration only.
func ExactSmall(g *graph.Graph, q []graph.Node, maxNodes int) (*Result, error) {
	n := g.NumNodes()
	if maxNodes <= 0 || maxNodes > 24 {
		maxNodes = 24
	}
	if n > maxNodes {
		return nil, ErrTooLarge
	}
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	if !graph.SameComponent(g, q) {
		return nil, ErrDisconnected
	}
	// One packed snapshot serves the 2^n subset evaluations: connectivity
	// floods and density scoring both run on the flat adjacency.
	c := graph.NewCSR(g)
	var qMask uint32
	for _, u := range q {
		qMask |= 1 << uint(u)
	}
	best := -1.0
	var bestMask uint32
	total := uint32(1) << uint(n)
	nodes := make([]graph.Node, 0, n)
	for mask := uint32(1); mask < total; mask++ {
		if mask&qMask != qMask {
			continue
		}
		if !connectedMask(c, mask) {
			continue
		}
		nodes = nodes[:0]
		for u := 0; u < n; u++ {
			if mask&(1<<uint(u)) != 0 {
				nodes = append(nodes, graph.Node(u))
			}
		}
		sc := modularity.DensityCSR(c, nodes)
		if sc > best {
			best = sc
			bestMask = mask
		}
	}
	var comm []graph.Node
	for u := 0; u < n; u++ {
		if bestMask&(1<<uint(u)) != 0 {
			comm = append(comm, graph.Node(u))
		}
	}
	return &Result{Community: comm, Score: best}, nil
}

// connectedMask reports whether the induced subgraph over the mask's nodes
// is connected.
func connectedMask(c *graph.CSR, mask uint32) bool {
	var start graph.Node = -1
	for u := 0; u < c.NumNodes(); u++ {
		if mask&(1<<uint(u)) != 0 {
			start = graph.Node(u)
			break
		}
	}
	if start < 0 {
		return false
	}
	seen := uint32(1) << uint(start)
	stack := []graph.Node{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range c.Neighbors(u) {
			bit := uint32(1) << uint(w)
			if mask&bit != 0 && seen&bit == 0 {
				seen |= bit
				stack = append(stack, w)
			}
		}
	}
	return seen == mask
}
