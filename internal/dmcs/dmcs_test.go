package dmcs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dmcs/internal/gen"
	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

func twoCliquesBridge() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			b.AddEdge(graph.Node(i+5), graph.Node(j+5))
		}
	}
	b.AddEdge(4, 5)
	return b.Build()
}

func isConnectedSet(g *graph.Graph, c []graph.Node) bool {
	if len(c) == 0 {
		return false
	}
	v := graph.NewViewOf(g, c)
	return graph.ConnectedWithin(v)
}

func containsAll(c []graph.Node, want ...graph.Node) bool {
	in := make(map[graph.Node]bool, len(c))
	for _, u := range c {
		in[u] = true
	}
	for _, u := range want {
		if !in[u] {
			return false
		}
	}
	return true
}

func allVariants() []Variant {
	return []Variant{VariantFPA, VariantNCA, VariantNCADR, VariantFPADMG}
}

func TestFPAFindsNearClique(t *testing.T) {
	g := twoCliquesBridge()
	r, err := FPA(g, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Community) != 5 || !containsAll(r.Community, 0, 1, 2, 3, 4) {
		t.Fatalf("FPA community=%v want the near K5", r.Community)
	}
}

// The paper's headline behavior on Figure 1: searching from u1 must return
// community A, not the classic-modularity-preferred A∪B.
func TestFPAOnFigure1ReturnsA(t *testing.T) {
	g, a, _ := gen.Figure1Toy()
	r, err := FPA(g, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Community) != len(a) || !containsAll(r.Community, a...) {
		t.Fatalf("FPA on Figure 1 = %v, want A = %v", r.Community, a)
	}
	if math.Abs(r.Score-1.028846) > 1e-5 {
		t.Fatalf("score=%v want DM(A)=1.028846", r.Score)
	}
}

// With the classic-modularity objective the same search prefers A∪B —
// exactly the free-rider effect of Example 1.
func TestFPAClassicObjectivePrefersMerged(t *testing.T) {
	g, _, ab := gen.Figure1Toy()
	r, err := FPA(g, []graph.Node{0}, Options{Objective: ClassicModularity})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Community) != len(ab) {
		t.Fatalf("CM objective community=%v want A∪B (8 nodes)", r.Community)
	}
}

// Resolution limit (Example 3): on the ring of 30 6-cliques, FPA from a
// clique member returns exactly that clique, not two merged cliques.
func TestFPAOnRingOfCliquesReturnsSingleClique(t *testing.T) {
	g, comms := gen.RingOfCliques(30, 6)
	q := comms[7][2]
	r, err := FPA(g, []graph.Node{q}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Community) != 6 || !containsAll(r.Community, comms[7]...) {
		t.Fatalf("FPA ring community=%v want clique %v", r.Community, comms[7])
	}
}

func TestNCAOnRingOfCliques(t *testing.T) {
	g, comms := gen.RingOfCliques(10, 5)
	q := comms[3][0]
	r, err := NCA(g, []graph.Node{q}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(r.Community, q) || !isConnectedSet(g, r.Community) {
		t.Fatalf("NCA invalid community %v", r.Community)
	}
	// NCA should find a small dense community, not the whole ring
	if len(r.Community) > 15 {
		t.Fatalf("NCA community too large: %d nodes", len(r.Community))
	}
}

func TestAllVariantsInvariants(t *testing.T) {
	g := twoCliquesBridge()
	for _, variant := range allVariants() {
		r, err := Search(g, []graph.Node{1}, variant, Options{})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if !containsAll(r.Community, 1) {
			t.Fatalf("%v: community %v lost the query", variant, r.Community)
		}
		if !isConnectedSet(g, r.Community) {
			t.Fatalf("%v: community %v disconnected", variant, r.Community)
		}
	}
}

// Property: for all variants on random connected graphs, the community
// contains Q, is connected, and its reported score matches a direct
// evaluation of the objective.
func TestVariantsPropertyRandomGraphs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(15)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(graph.Node(i), graph.Node(rng.Intn(i)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		q := []graph.Node{graph.Node(rng.Intn(n))}
		for _, variant := range allVariants() {
			r, err := Search(g, q, variant, Options{})
			if err != nil {
				return false
			}
			if !containsAll(r.Community, q...) || !isConnectedSet(g, r.Community) {
				return false
			}
			if math.Abs(r.Score-modularity.Density(g, r.Community)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiQuerySameClique(t *testing.T) {
	g := twoCliquesBridge()
	r, err := FPA(g, []graph.Node{0, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(r.Community, 0, 3) || !isConnectedSet(g, r.Community) {
		t.Fatalf("multi-query community invalid: %v", r.Community)
	}
}

func TestMultiQueryAcrossBridge(t *testing.T) {
	g := twoCliquesBridge()
	r, err := FPA(g, []graph.Node{0, 9}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// both queries plus the connecting path must survive
	if !containsAll(r.Community, 0, 9) {
		t.Fatalf("community lost a query node: %v", r.Community)
	}
	if !isConnectedSet(g, r.Community) {
		t.Fatalf("community disconnected: %v", r.Community)
	}
}

func TestMultiQueryNCA(t *testing.T) {
	g := twoCliquesBridge()
	r, err := NCA(g, []graph.Node{0, 9}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(r.Community, 0, 9) || !isConnectedSet(g, r.Community) {
		t.Fatalf("NCA multi-query invalid: %v", r.Community)
	}
}

func TestErrors(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {2, 3}})
	if _, err := FPA(g, nil, Options{}); err != ErrEmptyQuery {
		t.Fatalf("want ErrEmptyQuery, got %v", err)
	}
	if _, err := FPA(g, []graph.Node{0, 3}, Options{}); err != ErrDisconnected {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
	if _, err := FPA(g, []graph.Node{99}, Options{}); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := Search(g, []graph.Node{0}, Variant(99), Options{}); err == nil {
		t.Fatal("want unknown-variant error")
	}
}

func TestIsolatedQueryNode(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.Node{{1, 2}})
	r, err := FPA(g, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Community) != 1 || r.Community[0] != 0 {
		t.Fatalf("isolated query community=%v want {0}", r.Community)
	}
}

func TestQueryNodesNeverRemoved(t *testing.T) {
	g, comms := gen.RingOfCliques(6, 5)
	// query nodes in two adjacent cliques: both must survive all variants
	q := []graph.Node{comms[0][0], comms[1][0]}
	for _, variant := range allVariants() {
		r, err := Search(g, q, variant, Options{})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if !containsAll(r.Community, q...) {
			t.Fatalf("%v dropped a query node: %v", variant, r.Community)
		}
	}
}

func TestLayerPruningValidAndSmallerWork(t *testing.T) {
	g, comms := gen.RingOfCliques(20, 6)
	q := []graph.Node{comms[4][1]}
	plain, err := FPA(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := FPA(g, q, Options{LayerPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(pruned.Community, q...) || !isConnectedSet(g, pruned.Community) {
		t.Fatalf("pruned community invalid: %v", pruned.Community)
	}
	// pruning should not be wildly worse than plain FPA here
	if pruned.Score < plain.Score*0.5 {
		t.Fatalf("pruned score %v collapsed vs plain %v", pruned.Score, plain.Score)
	}
}

func TestLayerPruningOnFPADMG(t *testing.T) {
	g, comms := gen.RingOfCliques(8, 5)
	r, err := FPADMG(g, []graph.Node{comms[2][0]}, Options{LayerPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(r.Community, comms[2][0]) || !isConnectedSet(g, r.Community) {
		t.Fatalf("FPA-DMG pruned community invalid: %v", r.Community)
	}
}

func TestTimeout(t *testing.T) {
	g, comms := gen.RingOfCliques(40, 6)
	r, err := NCA(g, []graph.Node{comms[0][0]}, Options{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatal("nanosecond timeout should trip")
	}
	// even timed out, the result must be valid
	if !containsAll(r.Community, comms[0][0]) || !isConnectedSet(g, r.Community) {
		t.Fatalf("timed-out community invalid: %v", r.Community)
	}
}

func TestTrackOrder(t *testing.T) {
	g := twoCliquesBridge()
	r, err := FPA(g, []graph.Node{0}, Options{TrackOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RemovalOrder) != r.Iterations {
		t.Fatalf("order len=%d iterations=%d", len(r.RemovalOrder), r.Iterations)
	}
	seen := map[graph.Node]bool{}
	for _, u := range r.RemovalOrder {
		if seen[u] {
			t.Fatalf("node %d removed twice", u)
		}
		seen[u] = true
		if u == 0 {
			t.Fatal("query node in removal order")
		}
	}
	// without tracking, no order is recorded
	r2, _ := FPA(g, []graph.Node{0}, Options{})
	if r2.RemovalOrder != nil {
		t.Fatal("RemovalOrder should be nil without TrackOrder")
	}
}

// Figure 5's claim: Λ and Θ produce similar removal orders. We check rank
// correlation is clearly positive on a planted-partition graph.
func TestLambdaThetaOrdersCorrelated(t *testing.T) {
	g, comms := gen.PlantedPartition([]int{12, 12, 12}, 0.5, 0.03, 13)
	q := []graph.Node{comms[0][0]}
	a, err := FPA(g, q, Options{TrackOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FPADMG(g, q, Options{TrackOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	posA := map[graph.Node]int{}
	for i, u := range a.RemovalOrder {
		posA[u] = i
	}
	// Spearman-ish: average |rank difference| must be well below random
	var diff, count float64
	for i, u := range b.RemovalOrder {
		if j, ok := posA[u]; ok {
			diff += math.Abs(float64(i - j))
			count++
		}
	}
	if count == 0 {
		t.Skip("orders do not overlap")
	}
	avg := diff / count
	// random permutations of length L have expected |Δrank| ≈ L/3
	if l := count; avg > l/3 {
		t.Fatalf("avg rank difference %.1f not better than random (%.1f)", avg, l/3)
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		VariantFPA:    "FPA",
		VariantNCA:    "NCA",
		VariantNCADR:  "NCA-DR",
		VariantFPADMG: "FPA-DMG",
		Variant(42):   "unknown",
	}
	for v, want := range names {
		if v.String() != want {
			t.Fatalf("String(%d)=%q want %q", v, v.String(), want)
		}
	}
}

func TestSteinerProtect(t *testing.T) {
	// path 0-1-2-3-4: protecting {0,4} must include the whole path
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	g := b.Build()
	sub := graph.WrapCSR(graph.NewCSR(g))
	prot := steinerProtect(NewArena(), sub, []graph.Node{0, 4})
	if len(prot) != 5 {
		t.Fatalf("protected=%v want the whole path", prot)
	}
	// single query: just itself
	if p := steinerProtect(NewArena(), sub, []graph.Node{2}); len(p) != 1 || p[0] != 2 {
		t.Fatalf("single protect=%v", p)
	}
}

func TestObjectiveVariantsRun(t *testing.T) {
	g, comms := gen.RingOfCliques(6, 5)
	q := []graph.Node{comms[0][0]}
	for _, obj := range []Objective{DensityModularity, ClassicModularity, GeneralizedModularityDensity} {
		r, err := FPA(g, q, Options{Objective: obj})
		if err != nil {
			t.Fatalf("objective %d: %v", obj, err)
		}
		if !containsAll(r.Community, q...) || !isConnectedSet(g, r.Community) {
			t.Fatalf("objective %d: invalid community %v", obj, r.Community)
		}
	}
}

// The greedy framework's guarantee: the returned community's DM is at
// least the DM of the full component (we only ever keep better subgraphs).
func TestScoreNeverBelowInitial(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(graph.Node(i), graph.Node(rng.Intn(i)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		q := []graph.Node{graph.Node(rng.Intn(n))}
		var all []graph.Node
		for i := 0; i < n; i++ {
			all = append(all, graph.Node(i))
		}
		initial := modularity.Density(g, all)
		for _, variant := range allVariants() {
			r, err := Search(g, q, variant, Options{})
			if err != nil {
				return false
			}
			if r.Score < initial-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
