package dmcs

import (
	"math"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// pickFunc scores a removable candidate; larger is better (removed first).
// kv is the candidate's (weighted) degree into the current subgraph, dv
// its node weight, dS the current node-weight sum, wG the total edge
// weight (|E| when unweighted).
type pickFunc func(wG, dS, kv, dv float64) float64

// pickLambda is the density modularity gain Λ of Definition 6.
func pickLambda(wG, dS, kv, dv float64) float64 {
	return modularity.LambdaF(wG, dS, kv, dv)
}

// pickTheta is the density ratio Θ of Definition 7 (ignores wG and dS,
// which is exactly what makes it stable).
func pickTheta(_, _, kv, dv float64) float64 {
	return modularity.ThetaF(dv, kv)
}

// runNCA implements the non-articulation peeling loop shared by NCA and
// NCA-DR: every iteration recomputes the articulation points of the
// current subgraph, then removes the non-articulation non-query node with
// the best pick score. Ties keep the node closer to the query (the farther
// node is removed), then break on node id for determinism. comp is the
// sorted connected component containing q (see SearchComponentCSR).
func runNCA(c *graph.CSR, q, comp []graph.Node, opts Options, pick pickFunc) (*Result, error) {
	s := newPeelState(c, comp, opts)
	isQuery := make(map[graph.Node]bool, len(q))
	for _, u := range q {
		isQuery[u] = true
	}
	// minimum shortest-path distance from the query nodes, for tie-breaks
	dist := c.MultiSourceBFS(q)

	for s.v.NumAlive() > len(q) {
		if s.expired() {
			break
		}
		art := s.v.ArticulationPoints()
		var best graph.Node = -1
		bestScore := math.Inf(-1)
		dS := s.v.NodeWeightSum()
		for _, u := range comp {
			if !s.v.Alive(u) || art[u] || isQuery[u] {
				continue
			}
			sc := pick(s.wG, dS, s.kOf(u), s.dOf(u))
			switch {
			case sc > bestScore:
				bestScore, best = sc, u
			case sc == bestScore && best >= 0:
				// prefer removing the node farther from the query
				if dist[u] > dist[best] || (dist[u] == dist[best] && u < best) {
					best = u
				}
			}
		}
		if best < 0 {
			break // only articulation or query nodes remain
		}
		s.remove(best)
	}
	return s.result(), nil
}
