package dmcs

import (
	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// pickFunc scores a removable candidate; larger is better (removed first).
// kv is the candidate's (weighted) degree into the current subgraph, dv
// its node weight, dS the current node-weight sum, wG the total edge
// weight (|E| when unweighted).
type pickFunc func(wG, dS, kv, dv float64) float64

// pickLambda is the density modularity gain Λ of Definition 6.
func pickLambda(wG, dS, kv, dv float64) float64 {
	return modularity.LambdaF(wG, dS, kv, dv)
}

// pickTheta is the density ratio Θ of Definition 7 (ignores wG and dS,
// which is exactly what makes it stable).
func pickTheta(_, _, kv, dv float64) float64 {
	return modularity.ThetaF(dv, kv)
}

// recompactMinAlive is the smallest alive set worth rebuilding a sub-CSR
// for; below it the O(alive) rebuild costs more than the scans it saves.
const recompactMinAlive = 32

// runNCA implements the non-articulation peeling loop shared by NCA and
// NCA-DR: every iteration recomputes the articulation points of the
// current subgraph, then removes the non-articulation non-query node with
// the best pick score. Ties keep the node closer to the query (the
// farther node is removed), then break on node id for determinism.
//
// The loop runs entirely in the compact local id space of sub, and it
// re-compacts geometrically: whenever the alive set halves, the sub-CSR
// is rebuilt from the survivors, so the per-iteration articulation DFS
// and candidate rescan cost O(alive) instead of O(initial component) —
// the total work drops from iterations·(n+m) to a geometric series over
// the shrinking alive set. Aggregates (w_C, d_S) are carried, not
// recomputed, across rebuilds, and local ids stay order-isomorphic to
// source ids, so scores and tie-breaks are bit-identical to an
// uncompacted peel (TestDifferentialLegacyVsCSR exercises exactly this).
func runNCA(a *Arena, sub *graph.SubCSR, q, comp []graph.Node, opts Options, pick pickFunc) (*Result, error) {
	k := sub.NumNodes()
	s := newPeelState(a, sub, a.g.ViewAll(0, sub), comp, nil, opts)
	isQuery := a.g.Marks(0, k)
	for _, u := range q {
		isQuery[u] = true
	}
	// minimum shortest-path distance from the query nodes, for tie-breaks.
	// The parallel BFS runs over the all-alive view and yields the same
	// distances (BFS levels are schedule- and substrate-independent).
	var dist []int32
	if s.par > 1 {
		dist = s.v.MultiSourceBFSParInto(q, a.g.Dist(0, k), a.g.Queue(k), s.par, a.g.ParNext(s.par))
	} else {
		dist = sub.MultiSourceBFSInto(q, a.g.Dist(0, k), a.g.Queue(k))
	}
	// next arena slots for the re-compaction ping-pong (slot 0 of each
	// resource currently backs sub / the view / dist / isQuery)
	subSlot, viewSlot, markSlot := 1, 1, 1

	weighted := sub.Weighted()

	for s.v.NumAlive() > len(q) {
		if s.expired() {
			break
		}
		// On weighted snapshots the articulation sweep doubles as the
		// k_{v,S} pass: the DFS cursor already visits every alive edge in
		// ascending order, so the fused sums are bit-identical to
		// per-candidate rescans at half the memory traffic. Unweighted
		// k_{v,S} is the O(1) alive degree — nothing to fuse.
		var art []bool
		var kArr []float64
		if weighted {
			kArr = a.g.KSum(s.sub.NumNodes())
			art = s.v.ArticulationPointsKInto(a.g.Art(), kArr)
		} else {
			art = s.v.ArticulationPointsInto(a.g.Art())
		}
		// The candidate scan picks the maximum under a total order (pick
		// score, then distance from the query — farther removed first —
		// then smaller id), so it parallelizes exactly: chunk maxima
		// merged under the same order reproduce the serial winner. The
		// articulation DFS above stays serial and dominates NCA's cost,
		// which bounds this variant's parallel speedup (see README).
		dS := s.v.NodeWeightSum()
		n := s.sub.NumNodes()
		var best graph.Node
		if s.par > 1 && n >= parallelMinNodes {
			best, _ = ncaScanPar(s, art, isQuery, kArr, dist, dS, weighted, pick, n, s.par)
		} else {
			best, _ = ncaScanChunk(s, art, isQuery, kArr, dist, dS, weighted, pick, 0, n)
		}
		if best < 0 {
			break // only articulation or query nodes remain
		}
		s.remove(best)

		// Rebuild when the alive nodes OR the alive edges have halved
		// since the last compaction — the DFS walks every packed entry of
		// an alive node, so dead-entry buildup (hub neighborhoods dying
		// off) costs even while the node count barely moves.
		if alive := s.v.NumAlive(); alive >= recompactMinAlive && alive > len(q) &&
			(2*alive <= s.sub.NumNodes() || 2*s.v.NumAliveEdges() <= s.sub.NumEdges()) {
			// Geometric re-compaction: rebuild the sub-CSR over the
			// survivors and remap the per-node side tables.
			members := a.g.Nodes(0, alive)
			idx := 0
			for ui := 0; ui < s.sub.NumNodes(); ui++ {
				if s.v.Alive(graph.Node(ui)) {
					members[idx] = graph.Node(ui)
					idx++
				}
			}
			members = members[:idx]
			prev := s.sub
			next := a.g.ExtractSub(subSlot, &prev.CSR, members)
			// ExtractSub recorded members in prev's id space; rewrite
			// them into source ids so GlobalOf keeps meaning the same
			// thing across generations.
			globals := next.Globals()
			for i, old := range members {
				globals[i] = prev.GlobalOf(old)
			}
			// Carry the incrementally maintained aggregates — fresh
			// accumulation would change float summation order.
			next2 := a.g.ViewAllWith(viewSlot, next, s.v.InternalWeight(), s.v.NodeWeightSum())
			nd := a.g.Dist(1, len(members))
			nq := a.g.Marks(markSlot, len(members))
			for i, old := range members {
				nd[i] = dist[old]
				nq[i] = isQuery[old]
			}
			a.g.SwapDist()
			dist, isQuery = nd, nq
			s.sub, s.v, s.wdeg = next, next2, next.WeightedDegrees()
			subSlot, viewSlot, markSlot = 1-subSlot, 1-viewSlot, 1-markSlot
		}
	}
	return s.result(), nil
}
