package dmcs

// This file preserves the pre-CSR, map-backed implementation of the four
// search variants as a frozen reference. The production code now runs
// entirely on graph.CSR + graph.CSRView (flat arrays, no edge-weight-map
// lookups); TestDifferentialLegacyVsCSR asserts that the port returns
// bit-identical communities and scores on random weighted and unweighted
// graphs. The reference deliberately mirrors the historical code path:
// graph.Graph adjacency, graph.View alive-tracking, and
// Graph.EdgeWeight/WeightedDegree/TotalWeight hashed-map evaluation.

import (
	"container/heap"
	"math"
	"time"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// legacySearch is the historical Search: validate the query, extract the
// sorted component, dispatch the variant — all over the map-backed Graph.
func legacySearch(g *graph.Graph, q []graph.Node, variant Variant, opts Options) (*Result, error) {
	comp, err := legacyQueryComponent(g, q)
	if err != nil {
		return nil, err
	}
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	switch variant {
	case VariantNCA:
		return legacyRunNCA(g, q, comp, opts, pickLambda)
	case VariantNCADR:
		return legacyRunNCA(g, q, comp, opts, pickTheta)
	case VariantFPA:
		return legacyRunFPA(g, q, comp, opts, true)
	case VariantFPADMG:
		return legacyRunFPA(g, q, comp, opts, false)
	}
	panic("unknown variant")
}

func legacyQueryComponent(g *graph.Graph, q []graph.Node) ([]graph.Node, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	for _, u := range q {
		if u < 0 || int(u) >= g.NumNodes() {
			return nil, errOutOfRange
		}
	}
	if !graph.SameComponent(g, q) {
		return nil, ErrDisconnected
	}
	v := graph.NewView(g)
	comp := graph.ComponentOf(v, q[0])
	sortNodes(comp)
	return comp, nil
}

type legacyPeelState struct {
	g         *graph.Graph
	v         *graph.View
	weighted  bool
	wG        float64
	wC        float64
	dS        float64
	wdeg      []float64
	opts      Options
	comp      []graph.Node
	trace     []graph.Node
	bestIdx   int
	bestScore float64
	deadline  time.Time
	timedOut  bool
}

func newLegacyPeelState(g *graph.Graph, comp []graph.Node, opts Options) *legacyPeelState {
	s := &legacyPeelState{
		g:        g,
		v:        graph.NewViewOf(g, comp),
		weighted: g.Weighted(),
		wG:       g.TotalWeight(),
		opts:     opts,
		comp:     comp,
	}
	s.wdeg = make([]float64, g.NumNodes())
	for _, u := range comp {
		s.wdeg[u] = g.WeightedDegree(u)
	}
	for _, u := range comp {
		s.dS += s.wdeg[u]
	}
	if s.weighted {
		for _, u := range comp {
			for _, w := range g.Neighbors(u) {
				if s.v.Alive(w) && u < w {
					s.wC += g.EdgeWeight(u, w)
				}
			}
		}
	} else {
		s.wC = float64(s.v.NumAliveEdges())
	}
	s.bestScore = s.score()
	if opts.Timeout > 0 {
		s.deadline = time.Now().Add(opts.Timeout)
	}
	return s
}

func (s *legacyPeelState) kOf(u graph.Node) float64 {
	if !s.weighted {
		return float64(s.v.DegreeIn(u))
	}
	var k float64
	s.v.EachNeighbor(u, func(w graph.Node) {
		k += s.g.EdgeWeight(u, w)
	})
	return k
}

func (s *legacyPeelState) dOf(u graph.Node) float64 { return s.wdeg[u] }

func (s *legacyPeelState) score() float64 {
	size := s.v.NumAlive()
	switch s.opts.Objective {
	case ClassicModularity:
		return modularity.ClassicPartsF(s.wC, s.dS, s.wG)
	case GeneralizedModularityDensity:
		chi := s.opts.Chi
		if chi == 0 {
			chi = 1
		}
		return modularity.GeneralizedDensityPartsF(s.wC, s.dS, s.wG, size, chi)
	default:
		return modularity.DensityPartsF(s.wC, s.dS, s.wG, size)
	}
}

func (s *legacyPeelState) remove(u graph.Node) {
	s.wC -= s.kOf(u)
	s.v.Remove(u)
	s.dS -= s.wdeg[u]
	s.trace = append(s.trace, u)
	if sc := s.score(); sc >= s.bestScore {
		s.bestScore = sc
		s.bestIdx = len(s.trace)
	}
}

func (s *legacyPeelState) expired() bool {
	if s.timedOut {
		return true
	}
	if s.deadline.IsZero() {
		return false
	}
	if time.Now().After(s.deadline) {
		s.timedOut = true
	}
	return s.timedOut
}

func (s *legacyPeelState) result() *Result {
	dead := make(map[graph.Node]bool, s.bestIdx)
	for _, u := range s.trace[:s.bestIdx] {
		dead[u] = true
	}
	community := make([]graph.Node, 0, len(s.comp)-s.bestIdx)
	for _, u := range s.comp {
		if !dead[u] {
			community = append(community, u)
		}
	}
	r := &Result{
		Community:  community,
		Score:      s.bestScore,
		Iterations: len(s.trace),
		TimedOut:   s.timedOut,
	}
	if s.opts.TrackOrder {
		r.RemovalOrder = append([]graph.Node(nil), s.trace...)
	}
	return r
}

func legacyRunNCA(g *graph.Graph, q, comp []graph.Node, opts Options, pick pickFunc) (*Result, error) {
	s := newLegacyPeelState(g, comp, opts)
	isQuery := make(map[graph.Node]bool, len(q))
	for _, u := range q {
		isQuery[u] = true
	}
	dist := graph.MultiSourceBFS(g, q)

	for s.v.NumAlive() > len(q) {
		if s.expired() {
			break
		}
		art := graph.ArticulationPoints(s.v)
		var best graph.Node = -1
		bestScore := math.Inf(-1)
		for _, u := range comp {
			if !s.v.Alive(u) || art[u] || isQuery[u] {
				continue
			}
			sc := pick(s.wG, s.dS, s.kOf(u), s.dOf(u))
			switch {
			case sc > bestScore:
				bestScore, best = sc, u
			case sc == bestScore && best >= 0:
				if dist[u] > dist[best] || (dist[u] == dist[best] && u < best) {
					best = u
				}
			}
		}
		if best < 0 {
			break
		}
		s.remove(best)
	}
	return s.result(), nil
}

func legacySteinerProtect(g *graph.Graph, q []graph.Node) []graph.Node {
	if len(q) <= 1 {
		return append([]graph.Node(nil), q...)
	}
	parent := make([]graph.Node, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	root := q[0]
	parent[root] = root
	queue := []graph.Node{root}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range g.Neighbors(u) {
			if parent[w] < 0 {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	set := map[graph.Node]bool{root: true}
	for _, t := range q[1:] {
		for u := t; !set[u]; u = parent[u] {
			if parent[u] < 0 {
				break
			}
			set[u] = true
		}
	}
	out := make([]graph.Node, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sortNodes(out)
	return out
}

// thetaHeap is the historical container/heap-backed Θ max-heap. The
// production path uses the concrete thetaPQ (same ordering, same
// binary-heap moves, no interface boxing); this one stays as the frozen
// reference it must match pop-for-pop.
type thetaHeap []thetaItem

func (h thetaHeap) Len() int { return len(h) }
func (h thetaHeap) Less(i, j int) bool {
	if h[i].theta != h[j].theta {
		return h[i].theta > h[j].theta // max-heap on Θ
	}
	// Θ ties are common (every fully-internal node has Θ = 1). Break them
	// the way the exact criterion Λ would: with k_v = Θ·d_v fixed, Λ =
	// k_v·(Θ(2d_S − Θk_v) − 4w_G) is maximized by the smallest k_v at the
	// start of peeling, so remove low-degree nodes first.
	if h[i].k != h[j].k {
		return h[i].k < h[j].k
	}
	return h[i].node < h[j].node
}
func (h thetaHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *thetaHeap) Push(x interface{}) { *h = append(*h, x.(thetaItem)) }
func (h *thetaHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// groupLayers buckets comp by distance; unreachable nodes cannot occur
// because comp is a connected component containing the sources. (The
// production path uses the arena's flat bucket structure; this
// append-per-node grouping is the historical shape it must match.)
func groupLayers(comp []graph.Node, dist []int32) ([][]graph.Node, int) {
	maxD := int32(0)
	for _, u := range comp {
		if dist[u] > maxD {
			maxD = dist[u]
		}
	}
	layers := make([][]graph.Node, maxD+1)
	for _, u := range comp {
		layers[dist[u]] = append(layers[dist[u]], u)
	}
	return layers, int(maxD)
}

func legacyRunFPA(g *graph.Graph, q, comp []graph.Node, opts Options, useTheta bool) (*Result, error) {
	protected := legacySteinerProtect(g, q)
	if opts.LayerPruning {
		return legacyFPAWithPruning(g, comp, protected, opts, useTheta)
	}
	s := newLegacyPeelState(g, comp, opts)
	dist := graph.MultiSourceBFSView(s.v, protected)
	layers, maxD := groupLayers(comp, dist)
	for d := maxD; d >= 1; d-- {
		if s.expired() {
			break
		}
		legacyPeelLayer(s, layers[d], useTheta)
	}
	return s.result(), nil
}

func legacyPeelLayer(s *legacyPeelState, cand []graph.Node, useTheta bool) {
	if useTheta {
		legacyPeelLayerTheta(s, cand)
	} else {
		legacyPeelLayerLambda(s, cand)
	}
}

func legacyPeelLayerTheta(s *legacyPeelState, cand []graph.Node) {
	inLayer := make(map[graph.Node]bool, len(cand))
	for _, u := range cand {
		inLayer[u] = true
	}
	h := make(thetaHeap, 0, len(cand))
	for _, u := range cand {
		k := s.kOf(u)
		h = append(h, thetaItem{u, modularity.ThetaF(s.dOf(u), k), k})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		if s.expired() {
			return
		}
		it := heap.Pop(&h).(thetaItem)
		u := it.node
		if !s.v.Alive(u) || s.kOf(u) != it.k {
			continue
		}
		s.remove(u)
		delete(inLayer, u)
		for _, w := range s.g.Neighbors(u) {
			if s.v.Alive(w) && inLayer[w] {
				k := s.kOf(w)
				heap.Push(&h, thetaItem{w, modularity.ThetaF(s.dOf(w), k), k})
			}
		}
	}
}

func legacyPeelLayerLambda(s *legacyPeelState, cand []graph.Node) {
	remaining := append([]graph.Node(nil), cand...)
	for len(remaining) > 0 {
		if s.expired() {
			return
		}
		bestI := -1
		bestScore := math.Inf(-1)
		for i, u := range remaining {
			sc := modularity.LambdaF(s.wG, s.dS, s.kOf(u), s.dOf(u))
			if sc > bestScore || (sc == bestScore && bestI >= 0 && u < remaining[bestI]) {
				bestScore, bestI = sc, i
			}
		}
		u := remaining[bestI]
		remaining[bestI] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		s.remove(u)
	}
}

func legacyFPAWithPruning(g *graph.Graph, comp, protected []graph.Node, opts Options, useTheta bool) (*Result, error) {
	vAll := graph.NewViewOf(g, comp)
	dist := graph.MultiSourceBFSView(vAll, protected)
	layers, maxD := groupLayers(comp, dist)
	wG := g.TotalWeight()
	weighted := g.Weighted()
	wdegOf := g.WeightedDegree

	var dSum, wC float64
	for _, u := range comp {
		dSum += wdegOf(u)
	}
	if weighted {
		for _, u := range comp {
			for _, w := range g.Neighbors(u) {
				if vAll.Alive(w) && u < w {
					wC += g.EdgeWeight(u, w)
				}
			}
		}
	} else {
		wC = float64(vAll.NumAliveEdges())
	}
	kOf := func(u graph.Node) float64 {
		if !weighted {
			return float64(vAll.DegreeIn(u))
		}
		var k float64
		vAll.EachNeighbor(u, func(w graph.Node) { k += g.EdgeWeight(u, w) })
		return k
	}
	scoreOf := func() float64 {
		size := vAll.NumAlive()
		switch opts.Objective {
		case ClassicModularity:
			return modularity.ClassicPartsF(wC, dSum, wG)
		case GeneralizedModularityDensity:
			chi := opts.Chi
			if chi == 0 {
				chi = 1
			}
			return modularity.GeneralizedDensityPartsF(wC, dSum, wG, size, chi)
		default:
			return modularity.DensityPartsF(wC, dSum, wG, size)
		}
	}
	bestJ, bestScore := maxD, scoreOf()
	phase1 := 0
	for d := maxD; d >= 1; d-- {
		for _, u := range layers[d] {
			wC -= kOf(u)
			vAll.Remove(u)
			dSum -= wdegOf(u)
			phase1++
		}
		if sc := scoreOf(); sc >= bestScore {
			bestScore, bestJ = sc, d-1
		}
	}

	var comp2 []graph.Node
	for _, u := range comp {
		if int(dist[u]) <= bestJ {
			comp2 = append(comp2, u)
		}
	}
	s := newLegacyPeelState(g, comp2, opts)
	if bestJ >= 1 {
		legacyPeelLayer(s, layers[bestJ], useTheta)
	}
	r := s.result()
	r.Iterations += phase1
	return r, nil
}
