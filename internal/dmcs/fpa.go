package dmcs

import (
	"container/heap"
	"math"
	"time"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// steinerProtect returns the protected node set of Section 5.6: the query
// nodes plus, when there are several, the nodes on shortest paths from a
// root query node to every other query node. Protected nodes get distance
// 0 and are never removed, which guarantees that removing any farthest
// node keeps the subgraph connected.
func steinerProtect(c *graph.CSR, q []graph.Node) []graph.Node {
	if len(q) <= 1 {
		return append([]graph.Node(nil), q...)
	}
	// BFS parents from the root query node
	parent := make([]graph.Node, c.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	root := q[0]
	parent[root] = root
	queue := []graph.Node{root}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range c.Neighbors(u) {
			if parent[w] < 0 {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	set := map[graph.Node]bool{root: true}
	for _, t := range q[1:] {
		for u := t; !set[u]; u = parent[u] {
			if parent[u] < 0 {
				break // unreachable; caller validates connectivity
			}
			set[u] = true
		}
	}
	out := make([]graph.Node, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sortNodes(out)
	return out
}

// thetaItem is a candidate in the Θ max-heap. k caches the candidate's
// (weighted) subgraph degree at push time; entries whose k is stale are
// skipped.
type thetaItem struct {
	node  graph.Node
	theta float64
	k     float64
}

type thetaHeap []thetaItem

func (h thetaHeap) Len() int { return len(h) }
func (h thetaHeap) Less(i, j int) bool {
	if h[i].theta != h[j].theta {
		return h[i].theta > h[j].theta // max-heap on Θ
	}
	// Θ ties are common (every fully-internal node has Θ = 1). Break them
	// the way the exact criterion Λ would: with k_v = Θ·d_v fixed, Λ =
	// k_v·(Θ(2d_S − Θk_v) − 4w_G) is maximized by the smallest k_v at the
	// start of peeling, so remove low-degree nodes first.
	if h[i].k != h[j].k {
		return h[i].k < h[j].k
	}
	return h[i].node < h[j].node
}
func (h thetaHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *thetaHeap) Push(x interface{}) { *h = append(*h, x.(thetaItem)) }
func (h *thetaHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// runFPA implements Algorithm 2 and its FPA-DMG sibling. useTheta selects
// the density-ratio pick (stable, heap-driven); otherwise the density
// modularity gain Λ is rescanned over the remaining layer candidates each
// iteration (unstable, the 150× slowdown of Section 6.2.5). comp is the
// sorted connected component containing q (see SearchComponentCSR).
func runFPA(c *graph.CSR, q, comp []graph.Node, opts Options, useTheta bool) (*Result, error) {
	protected := steinerProtect(c, q)
	if opts.LayerPruning {
		return fpaWithPruning(c, comp, protected, opts, useTheta)
	}
	s := newPeelState(c, comp, opts)
	dist := s.v.MultiSourceBFS(protected)
	layers, maxD := groupLayers(comp, dist)
	for d := maxD; d >= 1; d-- {
		if s.expired() {
			break
		}
		peelLayer(s, layers[d], useTheta)
	}
	return s.result(), nil
}

// groupLayers buckets comp by distance; unreachable nodes cannot occur
// because comp is a connected component containing the sources.
func groupLayers(comp []graph.Node, dist []int32) ([][]graph.Node, int) {
	maxD := int32(0)
	for _, u := range comp {
		if dist[u] > maxD {
			maxD = dist[u]
		}
	}
	layers := make([][]graph.Node, maxD+1)
	for _, u := range comp {
		layers[dist[u]] = append(layers[dist[u]], u)
	}
	return layers, int(maxD)
}

// peelLayer removes every node of one distance layer in goodness order.
func peelLayer(s *peelState, cand []graph.Node, useTheta bool) {
	if useTheta {
		peelLayerTheta(s, cand)
	} else {
		peelLayerLambda(s, cand)
	}
}

// peelLayerTheta removes the layer in density-ratio order using a lazy
// max-heap: when a removal changes a neighbor's Θ, a fresh entry is pushed
// and the stale one is skipped on pop (Lemma 5 makes these the only
// updates needed).
func peelLayerTheta(s *peelState, cand []graph.Node) {
	inLayer := make(map[graph.Node]bool, len(cand))
	for _, u := range cand {
		inLayer[u] = true
	}
	h := make(thetaHeap, 0, len(cand))
	for _, u := range cand {
		k := s.kOf(u)
		h = append(h, thetaItem{u, modularity.ThetaF(s.dOf(u), k), k})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		if s.expired() {
			return
		}
		it := heap.Pop(&h).(thetaItem)
		u := it.node
		if !s.v.Alive(u) || s.kOf(u) != it.k {
			continue // removed or stale entry
		}
		s.remove(u)
		delete(inLayer, u)
		for _, w := range s.c.Neighbors(u) {
			if s.v.Alive(w) && inLayer[w] {
				k := s.kOf(w)
				heap.Push(&h, thetaItem{w, modularity.ThetaF(s.dOf(w), k), k})
			}
		}
	}
}

// peelLayerLambda removes the layer in Λ order; Λ depends on d_S, which
// every removal changes, so the whole candidate set is rescanned per
// iteration.
func peelLayerLambda(s *peelState, cand []graph.Node) {
	remaining := append([]graph.Node(nil), cand...)
	for len(remaining) > 0 {
		if s.expired() {
			return
		}
		bestI := -1
		bestScore := math.Inf(-1)
		dS := s.v.NodeWeightSum()
		for i, u := range remaining {
			sc := modularity.LambdaF(s.wG, dS, s.kOf(u), s.dOf(u))
			if sc > bestScore || (sc == bestScore && bestI >= 0 && u < remaining[bestI]) {
				bestScore, bestI = sc, i
			}
		}
		u := remaining[bestI]
		remaining[bestI] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		s.remove(u)
	}
}

// fpaWithPruning implements the Section 5.7 layer-based pruning strategy:
// (1) iteratively drop whole outermost layers, scoring each prefix
// subgraph; (2) keep the best-scoring prefix and apply the node-removal
// process to its outermost layer only. Both phases run on one CSRView;
// the view's incremental w_C/d_S maintenance replaces the hand-rolled
// statistics the map-backed implementation carried.
func fpaWithPruning(c *graph.CSR, comp, protected []graph.Node, opts Options, useTheta bool) (*Result, error) {
	vAll := graph.NewCSRViewOf(c, comp)
	dist := vAll.MultiSourceBFS(protected)
	layers, maxD := groupLayers(comp, dist)
	wG := c.TotalWeight()

	scoreOf := func() float64 { return scoreView(vAll, wG, opts) }
	// Phase 1 honours Cancel and Timeout at layer granularity; the best
	// prefix scored so far is kept on expiry, and phase 2 runs on the
	// remaining time budget so the bound covers both phases.
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	expired := func() bool {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				return true
			default:
			}
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	bestJ, bestScore := maxD, scoreOf()
	phase1 := 0
	timedOut := false
	for d := maxD; d >= 1; d-- {
		if expired() {
			timedOut = true
			break
		}
		for _, u := range layers[d] {
			vAll.Remove(u)
			phase1++
		}
		if sc := scoreOf(); sc >= bestScore {
			bestScore, bestJ = sc, d-1
		}
	}

	// Phase 2: fresh peel over the selected prefix, removing only its
	// outermost layer.
	var comp2 []graph.Node
	for _, u := range comp {
		if int(dist[u]) <= bestJ {
			comp2 = append(comp2, u)
		}
	}
	opts2 := opts
	if !deadline.IsZero() {
		if remaining := time.Until(deadline); remaining > 0 {
			opts2.Timeout = remaining
		} else {
			timedOut = true
		}
	}
	s := newPeelState(c, comp2, opts2)
	if bestJ >= 1 && !timedOut {
		peelLayer(s, layers[bestJ], useTheta)
	}
	r := s.result()
	r.Iterations += phase1
	if timedOut {
		r.TimedOut = true
	}
	return r, nil
}
