package dmcs

import (
	"math"
	"time"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// steinerProtect returns the protected node set of Section 5.6 in local
// ids, sorted ascending: the query nodes plus, when there are several,
// the nodes on shortest paths from a root query node to every other query
// node. Protected nodes get distance 0 and are never removed, which
// guarantees that removing any farthest node keeps the subgraph
// connected. All scratch (BFS parents, queue, membership flags) is
// arena-backed and component-sized.
func steinerProtect(a *Arena, sub *graph.SubCSR, q []graph.Node) []graph.Node {
	a.protected = append(a.protected[:0], q...)
	if len(q) <= 1 {
		return a.protected
	}
	k := sub.NumNodes()
	// BFS parents from the root query node
	parent := a.g.Nodes(0, k)
	for i := range parent {
		parent[i] = -1
	}
	root := q[0]
	parent[root] = root
	queue := append(a.g.Queue(k), root)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range sub.Neighbors(u) {
			if parent[w] < 0 {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	inSet := a.g.Marks(0, k)
	inSet[root] = true
	for _, t := range q[1:] {
		for u := t; !inSet[u]; u = parent[u] {
			if parent[u] < 0 {
				break // unreachable; caller validates connectivity
			}
			inSet[u] = true
		}
	}
	out := a.protected[:0]
	for u := 0; u < k; u++ {
		if inSet[u] {
			out = append(out, graph.Node(u))
		}
	}
	a.protected = out
	return out
}

// thetaItem is a candidate in the Θ max-heap. k caches the candidate's
// (weighted) subgraph degree at push time; entries whose k is stale are
// skipped.
type thetaItem struct {
	node  graph.Node
	theta float64
	k     float64
}

// runFPA implements Algorithm 2 and its FPA-DMG sibling over the compact
// sub-CSR. useTheta selects the density-ratio pick (stable, heap-driven);
// otherwise the density modularity gain Λ is rescanned over the remaining
// layer candidates each iteration (unstable, the 150× slowdown of Section
// 6.2.5). q is in local ids; comp is the sorted source-id component (see
// SearchComponentCSR), used only to reconstruct the result.
func runFPA(a *Arena, sub *graph.SubCSR, q, comp []graph.Node, opts Options, useTheta bool) (*Result, error) {
	protected := steinerProtect(a, sub, q)
	if opts.LayerPruning {
		return fpaWithPruning(a, sub, protected, comp, opts, useTheta)
	}
	k := sub.NumNodes()
	s := newPeelState(a, sub, a.g.ViewAll(0, sub), comp, nil, opts)
	dist := bfsInto(a, s.v, protected, k, s.par)
	maxD := groupLayersInto(a, k, dist)
	for d := maxD; d >= 1; d-- {
		if s.expired() {
			break
		}
		peelLayer(s, a.layer(d), useTheta)
	}
	return s.result(), nil
}

// groupLayersInto buckets the k local nodes by BFS distance into the
// arena's flat bucket structure (counts, prefix offsets, one fill pass —
// the CSR trick again) and returns the maximum distance. Within a layer
// nodes come out in ascending id order, exactly the order the historical
// append-per-node grouping produced. Unreachable nodes cannot occur
// because the sub spans a connected component containing the sources.
func groupLayersInto(a *Arena, k int, dist []int32) int {
	maxD := int32(0)
	for u := 0; u < k; u++ {
		if dist[u] > maxD {
			maxD = dist[u]
		}
	}
	off := growInt32Slice(a.layerOff, int(maxD)+2)
	for i := range off {
		off[i] = 0
	}
	for u := 0; u < k; u++ {
		off[dist[u]+1]++
	}
	for d := 1; d < len(off); d++ {
		off[d] += off[d-1]
	}
	nodes := growNodeSlice(a.layerNodes, k)
	fill := growInt32Slice(a.layerFill, int(maxD)+1) // per-layer cursors
	for i := range fill {
		fill[i] = 0
	}
	for u := 0; u < k; u++ {
		d := dist[u]
		nodes[off[d]+fill[d]] = graph.Node(u)
		fill[d]++
	}
	// Hand every grown buffer back to the arena — layerFill included.
	// Losing it (the pre-PR-7 bug) allocated a fresh cursor slice per
	// query, and that steady drip of garbage forced constant GC cycles
	// whose victim-cache flushes emptied the arena pool itself: each
	// flush made some future query rebuild full component-sized scratch,
	// and the added GC-worker wakeups scaled with GOMAXPROCS — the
	// BENCH_5 inverse scaling of BenchmarkSmallQueriesFPAPruning.
	a.layerOff, a.layerNodes, a.layerFill = off, nodes, fill
	return int(maxD)
}

// layer returns the d-distance bucket (ascending local ids).
func (a *Arena) layer(d int) []graph.Node {
	return a.layerNodes[a.layerOff[d]:a.layerOff[d+1]]
}

// peelLayer removes every node of one distance layer in goodness order.
func peelLayer(s *peelState, cand []graph.Node, useTheta bool) {
	if useTheta {
		peelLayerTheta(s, cand)
	} else {
		peelLayerLambda(s, cand)
	}
}

// peelLayerTheta removes the layer in density-ratio order using a lazy
// max-heap: when a removal changes a neighbor's Θ, a fresh entry is
// pushed and the stale one is skipped on pop (Lemma 5 makes these the
// only updates needed). Layer membership is a generation-tagged arena
// slice — the inLayer map of the historical implementation.
//
// The initial heap fill is the one parallelizable piece: each
// candidate's Θ entry depends only on the pre-drain subgraph, so on
// large layers workers score fixed chunks into fixed slice positions
// (fillThetaChunk) and the heap built from the filled slice is
// identical to the serial append loop's. The drain itself is a
// sequential dependence chain — every pop depends on the pushes of the
// previous removal — and stays serial (drainTheta, the hotpath kernel).
func peelLayerTheta(s *peelState, cand []graph.Node) {
	a := s.a
	k := s.sub.NumNodes()
	mark := growInt32Slice(a.layerInLayer, k)
	if a.layerGen == 0 { // first theta layer of this query: forget stale tags
		for i := range mark {
			mark[i] = 0
		}
	}
	a.layerInLayer = mark
	a.layerGen++
	gen := a.layerGen
	for _, u := range cand {
		mark[u] = gen
	}
	h := &a.pq
	if par := s.par; par > 1 && len(cand) >= parallelMinLayer {
		h.items = growThetaItems(h.items, len(cand))
		items := h.items
		graph.ParRange(par, len(cand), func(_, lo, hi int) {
			fillThetaChunk(s, cand, items, lo, hi)
		})
	} else {
		h.items = h.items[:0]
		for _, u := range cand {
			h.items = append(h.items, thetaOf(s, u))
		}
	}
	h.init()
	drainTheta(s, mark, gen)
}

// drainTheta pops the Θ heap to empty, removing live candidates and
// lazily re-scoring their still-queued neighbors.
//
//dmcs:hotpath
func drainTheta(s *peelState, mark []int32, gen int32) {
	h := &s.a.pq
	for len(h.items) > 0 {
		if s.expired() {
			break
		}
		it := h.pop()
		u := it.node
		if !s.v.Alive(u) || s.kOf(u) != it.k {
			continue // removed or stale entry
		}
		s.remove(u)
		mark[u] = 0
		for _, w := range s.sub.Neighbors(u) {
			if s.v.Alive(w) && mark[w] == gen {
				h.push(thetaOf(s, w))
			}
		}
	}
}

// peelLayerLambda removes the layer in Λ order; Λ depends on d_S, which
// every removal changes, so the whole candidate set is rescanned per
// iteration.
//
//dmcs:hotpath
func peelLayerLambda(s *peelState, cand []graph.Node) {
	remaining := append(s.a.remaining[:0], cand...)
	//dmcs:allow hotpath one defer closure per layer call, outside the per-removal loop; it returns the arena buffer on every exit path
	defer func() { s.a.remaining = remaining[:0] }()
	for len(remaining) > 0 {
		if s.expired() {
			return
		}
		bestI := -1
		bestScore := math.Inf(-1)
		dS := s.v.NodeWeightSum()
		for i, u := range remaining {
			sc := modularity.LambdaF(s.wG, dS, s.kOf(u), s.dOf(u))
			if sc > bestScore || (sc == bestScore && bestI >= 0 && u < remaining[bestI]) {
				bestScore, bestI = sc, i
			}
		}
		u := remaining[bestI]
		remaining[bestI] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		s.remove(u)
	}
}

// fpaWithPruning implements the Section 5.7 layer-based pruning strategy:
// (1) iteratively drop whole outermost layers, scoring each prefix
// subgraph; (2) keep the best-scoring prefix and apply the node-removal
// process to its outermost layer only. Both phases run on arena-backed
// views of the compact sub-CSR; the view's incremental w_C/d_S
// maintenance replaces the hand-rolled statistics the map-backed
// implementation carried.
func fpaWithPruning(a *Arena, sub *graph.SubCSR, protected, comp []graph.Node, opts Options, useTheta bool) (*Result, error) {
	k := sub.NumNodes()
	par := effectiveParallelism(opts.Parallelism, k)
	vAll := a.g.ViewAll(0, sub)
	dist := bfsInto(a, vAll, protected, k, par)
	maxD := groupLayersInto(a, k, dist)
	wG := sub.TotalWeight()

	// Phase 1 honours Cancel and Timeout at layer granularity; the best
	// prefix scored so far is kept on expiry, and phase 2 runs on the
	// remaining time budget so the bound covers both phases.
	var poll deadlinePoller
	poll.cancel = opts.Cancel
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
		poll.deadline = deadline
	}
	bestJ, bestScore := maxD, scoreView(vAll, wG, opts)
	phase1 := 0
	timedOut := false
	for d := maxD; d >= 1; d-- {
		if poll.check() {
			timedOut = true
			break
		}
		// Each round removes one whole outermost layer. Large layers go
		// through the round-synchronous parallel kernel, which leaves the
		// view bit-identical to the serial ascending-id loop below (the
		// layer buckets come out of groupLayersInto id-sorted).
		layer := a.layer(d)
		if par > 1 && len(layer) >= parallelMinLayer {
			removeLayerRound(a, vAll, layer, dist, int32(d), par)
			phase1 += len(layer)
		} else {
			for _, u := range layer {
				vAll.Remove(u)
				phase1++
			}
		}
		if sc := scoreView(vAll, wG, opts); sc >= bestScore {
			bestScore, bestJ = sc, d-1
		}
	}

	// Phase 2: fresh peel over the selected prefix, removing only its
	// outermost layer. comp2 holds the prefix members in local ids.
	comp2 := a.comp2[:0]
	for u := 0; u < k; u++ {
		if int(dist[u]) <= bestJ {
			comp2 = append(comp2, graph.Node(u))
		}
	}
	a.comp2 = comp2
	opts2 := opts
	if !deadline.IsZero() {
		if remaining := time.Until(deadline); remaining > 0 {
			opts2.Timeout = remaining
		} else {
			timedOut = true
		}
	}
	s := newPeelState(a, sub, a.g.ViewOf(1, sub, comp2), comp, comp2, opts2)
	if bestJ >= 1 && !timedOut {
		peelLayer(s, a.layer(bestJ), useTheta)
	}
	r := s.result()
	r.Iterations += phase1
	if timedOut {
		r.TimedOut = true
	}
	return r, nil
}
