package dmcs

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dmcs/internal/graph"
)

// TestArenaReuseMatchesFresh drives one arena through a long mixed-query
// sequence — poisoning every buffer between queries — and checks each
// result against a fresh map-backed legacy search. Any read of stale (or
// poisoned) arena state shows up as a community/score mismatch.
func TestArenaReuseMatchesFresh(t *testing.T) {
	variants := []Variant{VariantFPA, VariantNCA, VariantNCADR, VariantFPADMG}
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(17))
		g := diffRandomGraph(rng, 70, 0.07, weighted)
		csr := graph.NewCSR(g)
		a := NewArena()
		trials := 0
		for seed := 0; seed < 12; seed++ {
			qs := 1 + seed%3
			q := make([]graph.Node, 0, qs)
			for _, u := range rng.Perm(70)[:qs] {
				q = append(q, graph.Node(u))
			}
			if !graph.SameComponent(g, q) {
				continue
			}
			variant := variants[seed%len(variants)]
			opts := Options{LayerPruning: seed%2 == 0 && (variant == VariantFPA || variant == VariantFPADMG)}
			a.Poison() // worst legal arena state: garbage everywhere
			comp, err := queryComponentArena(a, csr, q)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			got, err := searchExtract(a, csr, q, comp, variant, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			want, err := legacySearch(g, q, variant, opts)
			if err != nil {
				t.Fatalf("seed %d: legacy: %v", seed, err)
			}
			if !reflect.DeepEqual(got.Community, want.Community) || got.Score != want.Score ||
				got.Iterations != want.Iterations {
				t.Fatalf("seed %d (%v weighted=%v): poisoned-arena result diverged\n got %v (%v)\nwant %v (%v)",
					seed, variant, weighted, got.Community, got.Score, want.Community, want.Score)
			}
			trials++
		}
		if trials < 6 {
			t.Fatalf("fixture too disconnected: only %d trials ran", trials)
		}
	}
}

// TestSearchSubMatchesSearchCSR proves the engine's prebuilt-sub path and
// the pooled SearchCSR path return identical results, including on a
// component that spans the whole snapshot (the WrapCSR identity path).
func TestSearchSubMatchesSearchCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := diffRandomGraph(rng, 60, 0.1, true)
	csr := graph.NewCSR(g)
	a := NewArena()
	for _, q := range [][]graph.Node{{0}, {3, 7}, {59}} {
		comp, err := queryComponentArena(NewArena(), csr, q)
		if err != nil {
			t.Fatal(err)
		}
		compCopy := append([]graph.Node(nil), comp...)
		var sub *graph.SubCSR
		if len(compCopy) == csr.NumNodes() {
			sub = graph.WrapCSR(csr)
		} else {
			sub = graph.NewSubCSR(csr, compCopy)
		}
		for _, variant := range []Variant{VariantFPA, VariantNCA} {
			want, err := SearchCSR(csr, q, variant, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := SearchSub(a, sub, q, compCopy, variant, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Community, want.Community) || got.Score != want.Score {
				t.Fatalf("q=%v %v: SearchSub (%v, %v) != SearchCSR (%v, %v)",
					q, variant, got.Community, got.Score, want.Community, want.Score)
			}
		}
	}
}

// timeoutGraph is big enough that every variant performs thousands of
// removals — far more than the 64-removal deadline polling stride.
func timeoutGraph(t *testing.T) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	return diffRandomGraph(rng, 3000, 0.002, false)
}

// TestTimeoutStillTriggers pins the satellite contract of the amortized
// deadline poller: a tiny Timeout must still stop every variant (the
// first expired() call always consults the clock) and surface TimedOut.
func TestTimeoutStillTriggers(t *testing.T) {
	g := timeoutGraph(t)
	csr := graph.NewCSR(g)
	for _, tc := range []struct {
		variant Variant
		opts    Options
	}{
		{VariantNCA, Options{Timeout: time.Nanosecond}},
		{VariantFPA, Options{Timeout: time.Nanosecond}},
		{VariantFPA, Options{Timeout: time.Nanosecond, LayerPruning: true}},
		{VariantFPADMG, Options{Timeout: time.Nanosecond}},
	} {
		r, err := SearchCSR(csr, []graph.Node{0}, tc.variant, tc.opts)
		if err != nil {
			t.Fatalf("%v: %v", tc.variant, err)
		}
		if !r.TimedOut {
			t.Errorf("%v pruning=%v: expected TimedOut under 1ns budget", tc.variant, tc.opts.LayerPruning)
		}
		if !containsAll(r.Community, 0) {
			t.Errorf("%v: timed-out community %v must still contain the query", tc.variant, r.Community)
		}
	}
	// A generous budget must not report a timeout.
	r, err := SearchCSR(csr, []graph.Node{0}, VariantFPA, Options{Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if r.TimedOut {
		t.Error("FPA reported TimedOut under an hour-long budget")
	}
}

// TestCancelStillTriggers pins the unchanged per-removal cancellation
// cadence: a pre-closed Cancel channel stops the search immediately.
func TestCancelStillTriggers(t *testing.T) {
	g := timeoutGraph(t)
	csr := graph.NewCSR(g)
	done := make(chan struct{})
	close(done)
	start := time.Now()
	r, err := SearchCSR(csr, []graph.Node{0}, VariantNCA, Options{Cancel: done})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Error("expected TimedOut on a closed Cancel channel")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v to unwind", elapsed)
	}
}

// TestDeadlinePollerFirstCallChecks guards the poller's edge cases: the
// very first check consults the clock (so an already-expired deadline
// never admits a removal), and Cancel is polled on every call.
func TestDeadlinePollerFirstCallChecks(t *testing.T) {
	p := deadlinePoller{deadline: time.Now().Add(-time.Second)}
	if !p.check() {
		t.Error("first check must consult an already-expired deadline")
	}
	done := make(chan struct{})
	p2 := deadlinePoller{cancel: done, deadline: time.Now().Add(time.Hour)}
	for i := 0; i < 10; i++ {
		if p2.check() {
			t.Fatal("premature expiry")
		}
	}
	close(done)
	if !p2.check() {
		t.Error("cancel must be observed on the very next check")
	}
}
