package dmcs

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"dmcs/internal/graph"
)

// forceParallel lowers every parallelism threshold so the parallel
// kernels engage on test-sized graphs, raises GOMAXPROCS so
// effectiveParallelism doesn't clamp everything back to serial on
// single-core CI hosts, and restores all of it on cleanup.
func forceParallel(t testing.TB) {
	t.Helper()
	oldNodes, oldLayer, oldFrontier := parallelMinNodes, parallelMinLayer, graph.ParMinFrontier
	oldProcs := runtime.GOMAXPROCS(8)
	parallelMinNodes, parallelMinLayer, graph.ParMinFrontier = 8, 2, 2
	t.Cleanup(func() {
		parallelMinNodes, parallelMinLayer, graph.ParMinFrontier = oldNodes, oldLayer, oldFrontier
		runtime.GOMAXPROCS(oldProcs)
	})
}

// TestParallelPeelBitIdentical is the tentpole's proof obligation: for
// every variant × weighted/unweighted × pruning × worker count, a search
// with Options.Parallelism > 1 must return exactly what the serial
// search returns — same community, bit-identical score, same iteration
// count, same removal order. Run under -race this doubles as the data-
// race check on the round-synchronous kernels.
func TestParallelPeelBitIdentical(t *testing.T) {
	forceParallel(t)
	variants := []Variant{VariantFPA, VariantNCA, VariantNCADR, VariantFPADMG}
	for _, weighted := range []bool{false, true} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(200 + seed))
			n := 120 + rng.Intn(120)
			g := diffRandomGraph(rng, n, 0.04, weighted)
			csr := graph.NewCSR(g)
			for qs := 1; qs <= 2; qs++ {
				q := make([]graph.Node, 0, qs)
				for _, u := range rng.Perm(n)[:qs] {
					q = append(q, graph.Node(u))
				}
				for _, v := range variants {
					for _, pruning := range []bool{false, true} {
						if pruning && (v == VariantNCA || v == VariantNCADR) {
							continue // pruning is FPA-family only
						}
						serial, serr := SearchCSR(csr, q, v, Options{LayerPruning: pruning, TrackOrder: true})
						for _, par := range []int{2, 3, 8} {
							got, gerr := SearchCSR(csr, q, v, Options{LayerPruning: pruning, TrackOrder: true, Parallelism: par})
							if (serr != nil) != (gerr != nil) {
								t.Fatalf("%v pruning=%v par=%d weighted=%v seed=%d: err mismatch %v vs %v", v, pruning, par, weighted, seed, serr, gerr)
							}
							if serr != nil {
								continue
							}
							assertSameResult(t, serial, got, "%v pruning=%v par=%d weighted=%v seed=%d q=%v", v, pruning, par, weighted, seed, q)
						}
					}
				}
			}
		}
	}
}

func assertSameResult(t *testing.T, want, got *Result, format string, args ...any) {
	t.Helper()
	if math.Float64bits(want.Score) != math.Float64bits(got.Score) {
		t.Errorf(format+": score %v (%x) vs serial %v (%x)", append(args, got.Score, math.Float64bits(got.Score), want.Score, math.Float64bits(want.Score))...)
	}
	if want.Iterations != got.Iterations {
		t.Errorf(format+": iterations %d vs serial %d", append(args, got.Iterations, want.Iterations)...)
	}
	if want.TimedOut != got.TimedOut {
		t.Errorf(format+": timedOut %v vs serial %v", append(args, got.TimedOut, want.TimedOut)...)
	}
	if len(want.Community) != len(got.Community) {
		t.Fatalf(format+": community size %d vs serial %d", append(args, len(got.Community), len(want.Community))...)
	}
	for i := range want.Community {
		if want.Community[i] != got.Community[i] {
			t.Fatalf(format+": community[%d] = %d vs serial %d", append(args, i, got.Community[i], want.Community[i])...)
		}
	}
	if len(want.RemovalOrder) != len(got.RemovalOrder) {
		t.Fatalf(format+": removal order length %d vs serial %d", append(args, len(got.RemovalOrder), len(want.RemovalOrder))...)
	}
	for i := range want.RemovalOrder {
		if want.RemovalOrder[i] != got.RemovalOrder[i] {
			t.Fatalf(format+": removalOrder[%d] = %d vs serial %d", append(args, i, got.RemovalOrder[i], want.RemovalOrder[i])...)
		}
	}
}

// TestParallelPeelPoisonedArena re-proves the arena-reuse contract for
// the parallel kernels: a parallel search on a poisoned warm arena must
// match a serial search on a fresh arena, or some parallel buffer (the
// per-worker frontiers, the argmax slots, the kEff store) is being read
// before it is rewritten.
func TestParallelPeelPoisonedArena(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(77))
	n := 160
	g := diffRandomGraph(rng, n, 0.05, true)
	csr := graph.NewCSR(g)
	q := []graph.Node{graph.Node(rng.Intn(n))}
	for _, v := range []Variant{VariantFPA, VariantNCA} {
		for _, pruning := range []bool{false, true} {
			if pruning && v == VariantNCA {
				continue
			}
			opts := Options{LayerPruning: pruning, TrackOrder: true, Parallelism: 4}
			want, err := SearchCSR(csr, q, v, Options{LayerPruning: pruning, TrackOrder: true})
			if err != nil {
				t.Fatal(err)
			}
			a := NewArena()
			comp, err := queryComponentArena(a, csr, q)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the arena with one parallel search, poison it, search again.
			if _, err := searchExtract(a, csr, q, comp, v, opts); err != nil {
				t.Fatal(err)
			}
			a.Poison()
			comp, err = queryComponentArena(a, csr, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := searchExtract(a, csr, q, comp, v, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, want, got, "poisoned arena %v pruning=%v", v, pruning)
		}
	}
}

// TestParallelThresholdFallback pins the dispatch contract: Parallelism
// on a component below parallelMinNodes must resolve to a fully serial
// peel (par == 1), so small queries never pay gang overhead.
func TestParallelThresholdFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	if got := effectiveParallelism(8, parallelMinNodes-1); got != 1 {
		t.Fatalf("below-threshold component resolved to %d workers, want 1", got)
	}
	if got := effectiveParallelism(0, parallelMinNodes*2); got != 1 {
		t.Fatalf("Parallelism 0 resolved to %d workers, want 1", got)
	}
	if got := effectiveParallelism(4, parallelMinNodes*2); got != 4 {
		t.Fatalf("in-range request resolved to %d workers, want 4", got)
	}
	if got := effectiveParallelism(64, parallelMinNodes*2); got != 8 {
		t.Fatalf("oversized request resolved to %d workers, want GOMAXPROCS=8", got)
	}
}

// TestWarmArenaAllocs pins the satellite fix for the BENCH_5 inverse
// scaling: groupLayersInto must hand its grown layer-cursor buffer back
// to the arena. A warm arena's pruning search performs exactly two heap
// allocations — the Result and its Community slice; a third one is the
// leaked-buffer regression.
func TestWarmArenaAllocs(t *testing.T) {
	g := smallQueryGraph(4, 80)
	csr := graph.NewCSR(g)
	a := NewArena()
	q := []graph.Node{3}
	comp, err := queryComponentArena(a, csr, q)
	if err != nil {
		t.Fatal(err)
	}
	comp = append([]graph.Node(nil), comp...) // stable storage across epochs
	for i := 0; i < 3; i++ {                  // warm every buffer
		if _, err := searchExtract(a, csr, q, comp, VariantFPA, Options{LayerPruning: true}); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := searchExtract(a, csr, q, comp, VariantFPA, Options{LayerPruning: true}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("warm-arena pruning search allocates %.1f times per run, want <= 2 (Result + Community)", allocs)
	}
}
