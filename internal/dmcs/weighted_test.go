package dmcs

import (
	"math"
	"testing"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// weightedTwoTriangles: query node 0 sits between a heavy triangle
// {0,1,2} (weight w1 per edge) and a light triangle {0,3,4} (weight w2).
func weightedTwoTriangles(w1, w2 float64) *graph.Graph {
	b := graph.NewBuilder(5)
	b.SetWeight(0, 1, w1)
	b.SetWeight(1, 2, w1)
	b.SetWeight(0, 2, w1)
	b.SetWeight(0, 3, w2)
	b.SetWeight(3, 4, w2)
	b.SetWeight(0, 4, w2)
	return b.Build()
}

// k4PlusTriangle builds a K4 on {0,1,2,3} (edge weight wK) sharing node 0
// with a triangle {0,4,5} (edge weight wT).
func k4PlusTriangle(wK, wT float64) *graph.Graph {
	b := graph.NewBuilder(6)
	set := func(u, v graph.Node, w float64) {
		if w == 1 {
			b.AddEdge(u, v) // keep the graph genuinely unweighted
		} else {
			b.SetWeight(u, v, w)
		}
	}
	for i := graph.Node(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			set(i, j, wK)
		}
	}
	set(0, 4, wT)
	set(0, 5, wT)
	set(4, 5, wT)
	return b.Build()
}

// Edge weights must change FPA's answer: under unit weights the Θ
// tie-break peels the low-degree triangle first and the best intermediate
// is the K4 {0,1,2,3}; with the triangle edges 10× heavier, the K4 nodes
// become the light ones, are peeled first, and the heavy triangle {0,4,5}
// wins.
func TestWeightsChangeTheAnswer(t *testing.T) {
	gu := k4PlusTriangle(1, 1)
	ru, err := FPA(gu, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ru.Community) != 4 {
		t.Fatalf("unweighted FPA community=%v want the K4 {0,1,2,3}", ru.Community)
	}
	gw := k4PlusTriangle(1, 10)
	// sanity of the construction: weighted DM ranks the heavy triangle
	// above the light K4
	if modularity.DensityWeighted(gw, []graph.Node{0, 4, 5}) <=
		modularity.DensityWeighted(gw, []graph.Node{0, 1, 2, 3}) {
		t.Fatal("construction broken: heavy triangle should outscore the light K4")
	}
	rw, err := FPA(gw, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Community) != 3 || rw.Community[1] != 4 || rw.Community[2] != 5 {
		t.Fatalf("weighted FPA community=%v want the heavy triangle {0,4,5}", rw.Community)
	}
	if rw.Score < modularity.DensityWeighted(gw, rw.Community)-1e-9 {
		t.Fatal("weighted score inconsistent")
	}
}

func TestWeightedScoreMatchesDefinition(t *testing.T) {
	g := weightedTwoTriangles(5, 2)
	for _, variant := range allVariants() {
		r, err := Search(g, []graph.Node{0}, variant, Options{})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		want := modularity.DensityWeighted(g, r.Community)
		if math.Abs(r.Score-want) > 1e-9 {
			t.Fatalf("%v: score %v != weighted DM %v", variant, r.Score, want)
		}
	}
}

func TestWeightedMirrorsUnweightedWithUnitWeights(t *testing.T) {
	// a graph with all weights exactly 1 must behave like the unweighted
	// version even though the weighted code path is taken
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.SetWeight(graph.Node(i), graph.Node(j), 1)
			b.SetWeight(graph.Node(i+5), graph.Node(j+5), 1)
		}
	}
	b.SetWeight(4, 5, 1)
	gw := b.Build()
	gu := twoCliquesBridge()
	rw, err := FPA(gw, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ru, err := FPA(gu, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Community) != len(ru.Community) {
		t.Fatalf("unit-weighted %v vs unweighted %v", rw.Community, ru.Community)
	}
	if math.Abs(rw.Score-ru.Score) > 1e-9 {
		t.Fatalf("unit-weighted score %v vs unweighted %v", rw.Score, ru.Score)
	}
}

func TestWeightedLayerPruning(t *testing.T) {
	g := weightedTwoTriangles(10, 1)
	r, err := FPA(g, []graph.Node{0}, Options{LayerPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Community) == 0 {
		t.Fatal("pruned weighted search returned nothing")
	}
	if math.Abs(r.Score-modularity.DensityWeighted(g, r.Community)) > 1e-9 {
		t.Fatal("pruned weighted score mismatch")
	}
}

func TestWeightedNCA(t *testing.T) {
	g := weightedTwoTriangles(10, 1)
	r, err := NCA(g, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !isConnectedSet(g, r.Community) {
		t.Fatalf("weighted NCA community disconnected: %v", r.Community)
	}
	in := map[graph.Node]bool{}
	for _, u := range r.Community {
		in[u] = true
	}
	if !in[0] {
		t.Fatal("weighted NCA lost the query")
	}
}

// Theorem 3's reduction gadget: a set-cover instance embedded in a graph.
// The proof argues DM decreases as more set-nodes are kept, so the optimum
// picks a minimum cover. We verify the monotonicity numerically on a small
// instance: universe {a,b,c}, sets S1={a,b}, S2={b,c}, S3={c}.
func TestTheorem3GadgetMonotonicity(t *testing.T) {
	// Build B1 ∪ B2 ∪ G1 ∪ B3 following Appendix C (self-edges on U are
	// dropped — our graphs are simple — which only shifts every DM by a
	// constant and preserves the comparisons).
	const (
		nU = 3 // items a,b,c → nodes 0,1,2
		nV = 3 // sets S1,S2,S3 → nodes 3,4,5
	)
	b := graph.NewBuilder(0)
	q := graph.Node(6) // query node
	// B1: item-set membership. Items have no edges among themselves, so
	// the community is connected only when the chosen sets cover all
	// items (the crux of the reduction).
	b.AddEdge(0, 3) // a ∈ S1
	b.AddEdge(1, 3) // b ∈ S1
	b.AddEdge(1, 4) // b ∈ S2
	b.AddEdge(2, 4) // c ∈ S2
	b.AddEdge(2, 5) // c ∈ S3
	// B3: query connected to all set nodes
	b.AddEdge(q, 3)
	b.AddEdge(q, 4)
	b.AddEdge(q, 5)
	// B2: |V| pendant nodes per set node (the T side, scaled down)
	next := graph.Node(7)
	for _, v := range []graph.Node{3, 4, 5} {
		for i := 0; i < nV; i++ {
			b.AddEdge(v, next)
			next++
		}
	}
	g := b.Build()

	// Monotonicity: communities {q} ∪ U ∪ X for covers X of growing size.
	dm := func(x []graph.Node) float64 {
		c := append([]graph.Node{q, 0, 1, 2}, x...)
		return modularity.Density(g, c)
	}
	cover12 := []graph.Node{3, 4}     // S1 ∪ S2 covers everything
	cover123 := []graph.Node{3, 4, 5} // adding S3 is redundant
	if dm(cover12) <= dm(cover123) {
		t.Fatalf("DM should decrease when adding a redundant set: %v vs %v",
			dm(cover12), dm(cover123))
	}
	// The DMCS optimum over this gadget selects a *minimum* cover: two
	// sets (both {S1,S2} and {S1,S3} are minimum covers), never all three.
	exact, err := ExactSmall(g, []graph.Node{q, 0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	picked := map[graph.Node]bool{}
	for _, u := range exact.Community {
		picked[u] = true
	}
	chosen := 0
	for _, s := range []graph.Node{3, 4, 5} {
		if picked[s] {
			chosen++
		}
	}
	if chosen != 2 {
		t.Fatalf("exact DMCS %v should select a minimum cover of exactly 2 sets, got %d", exact.Community, chosen)
	}
	// verify it actually covers: every item has a picked neighbor set
	for _, item := range []graph.Node{0, 1, 2} {
		covered := false
		for _, s := range g.Neighbors(item) {
			if picked[s] {
				covered = true
			}
		}
		if !covered {
			t.Fatalf("exact DMCS %v leaves item %d uncovered (disconnected?)", exact.Community, item)
		}
	}
}
