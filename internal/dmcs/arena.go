package dmcs

import (
	"sync"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// Arena bundles every piece of scratch memory one community-search query
// needs — the graph-level arena (sub-CSR extraction, view backing, BFS
// and articulation scratch) plus the peel-level buffers (removal trace,
// Θ priority queue, layer buckets, protected sets). Checked out per query
// and reused forever, it makes steady-state query serving allocation-free
// except for the returned Result itself: the only heap allocations a warm
// arena's search performs are the Community slice (and RemovalOrder when
// requested), which must escape to the caller.
//
// Arenas are not safe for concurrent use. internal/engine owns one per
// worker; the package-level entry points (Search, SearchCSR,
// SearchComponentCSR) draw from a sync.Pool, so they too stop allocating
// scratch once the pool is warm.
type Arena struct {
	g graph.Arena

	ps        peelState
	trace     []graph.Node // removal order, global ids
	dead      []graph.Node // sorted trace prefix for result reconstruction
	pq        thetaPQ      // Θ max-heap (concrete, no boxing)
	protected []graph.Node
	localQ    []graph.Node
	remaining []graph.Node // peelLayerLambda candidate scratch
	comp2     []graph.Node // pruning phase-2 prefix members (local ids)
	compBuf   []graph.Node // SearchCSR component flood queue / member list

	layerOff     []int32      // layer bucket offsets (len maxD+2)
	layerNodes   []graph.Node // bucketed layer members, outermost-last
	layerFill    []int32      // bucket fill cursors
	layerInLayer []int32      // per-local-node layer generation tag
	layerGen     int32        // reset per query; bumped per theta layer

	parNode  []graph.Node // per-worker argmax winners (parallel NCA scan)
	parScore []float64    // per-worker argmax scores
}

// NewArena returns an empty arena; buffers are sized by the first query.
func NewArena() *Arena { return &Arena{} }

// Poison overwrites every arena-owned buffer with garbage (see
// graph.Arena.Poison). It exists for tests proving the zero-alloc reuse
// contract: a search on a poisoned arena must return exactly what a
// search on a fresh arena returns, or some buffer is being read before it
// is rewritten.
func (a *Arena) Poison() {
	a.g.Poison()
	const junk = -0x5A5A
	poisonNodes(a.trace)
	poisonNodes(a.dead)
	items := a.pq.items[:cap(a.pq.items)]
	for i := range items {
		items[i] = thetaItem{junk, junk, junk}
	}
	poisonNodes(a.protected)
	poisonNodes(a.localQ)
	poisonNodes(a.remaining)
	poisonNodes(a.comp2)
	poisonNodes(a.compBuf)
	poisonInt32s(a.layerOff)
	poisonNodes(a.layerNodes)
	poisonInt32s(a.layerFill)
	poisonInt32s(a.layerInLayer)
	a.layerGen = junk
	poisonNodes(a.parNode)
	for i := range a.parScore {
		a.parScore[i] = -23130.23130
	}
	a.ps = peelState{}
}

func poisonNodes(s []graph.Node) {
	s = s[:cap(s)]
	for i := range s {
		s[i] = -0x5A5A
	}
}

func poisonInt32s(s []int32) {
	s = s[:cap(s)]
	for i := range s {
		s[i] = -0x5A5A
	}
}

// arenaPool backs the non-engine entry points.
var arenaPool = sync.Pool{New: func() interface{} { return NewArena() }}

func growNodeSlice(s []graph.Node, n int) []graph.Node {
	if cap(s) < n {
		return make([]graph.Node, n)
	}
	return s[:n]
}

func growInt32Slice(s []int32, n int) []int32 {
	if cap(s) < n {
		//dmcs:allow hotpath grow-once arena resize: amortized to zero per query after warmup
		return make([]int32, n)
	}
	return s[:n]
}

func growFloat64Slice(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growThetaItems(s []thetaItem, n int) []thetaItem {
	if cap(s) < n {
		return make([]thetaItem, n)
	}
	return s[:n]
}

// thetaPQ is the production Θ max-heap: the same ordering and the same
// binary-heap algorithm as container/heap over thetaHeap (Init = sift
// down from the last parent; Push = append + sift up; Pop = swap root
// with last, sift down, shrink), but on a concrete element type, so no
// per-push interface boxing and no allocation on a warm arena. Mirroring
// container/heap's moves exactly keeps the pop order — and therefore the
// peel order — bit-identical to the frozen legacy implementation even
// when entries compare equal.
type thetaPQ struct{ items []thetaItem }

func (h *thetaPQ) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.theta != b.theta {
		return a.theta > b.theta // max-heap on Θ
	}
	if a.k != b.k {
		return a.k < b.k
	}
	return a.node < b.node
}

func (h *thetaPQ) init() {
	n := len(h.items)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

func (h *thetaPQ) push(it thetaItem) {
	h.items = append(h.items, it)
	h.up(len(h.items) - 1)
}

func (h *thetaPQ) pop() thetaItem {
	n := len(h.items) - 1
	h.items[0], h.items[n] = h.items[n], h.items[0]
	h.down(0, n)
	it := h.items[n]
	h.items = h.items[:n]
	return it
}

func (h *thetaPQ) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h.items[i], h.items[j] = h.items[j], h.items[i]
		j = i
	}
}

func (h *thetaPQ) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h.items[i], h.items[j] = h.items[j], h.items[i]
		i = j
	}
}

// thetaOf is the Θ score of node u in the current subgraph paired with
// the cached k it was computed from.
func thetaOf(s *peelState, u graph.Node) thetaItem {
	k := s.kOf(u)
	return thetaItem{u, modularity.ThetaF(s.dOf(u), k), k}
}
