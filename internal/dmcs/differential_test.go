package dmcs

import (
	"fmt"
	"math/rand"
	"testing"

	"dmcs/internal/graph"
)

// diffRandomGraph builds a connected-ish random graph; weighted draws a
// weight in (0.5, 3) per edge, otherwise the graph is plain unweighted.
func diffRandomGraph(rng *rand.Rand, n int, p float64, weighted bool) *graph.Graph {
	b := graph.NewBuilder(n)
	// a random spanning path keeps most of the graph in one component so
	// the searches have something to peel
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := graph.Node(perm[i-1]), graph.Node(perm[i])
		if weighted {
			b.SetWeight(u, v, 0.5+2.5*rng.Float64())
		} else {
			b.AddEdge(u, v)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if weighted {
					b.SetWeight(graph.Node(u), graph.Node(v), 0.5+2.5*rng.Float64())
				} else {
					b.AddEdge(graph.Node(u), graph.Node(v))
				}
			}
		}
	}
	return b.Build()
}

// TestDifferentialLegacyVsCSR is the migration's proof obligation: on
// random weighted and unweighted graphs, every variant — with and without
// layer pruning — must return exactly the same community, the same
// bit-identical score, and the same iteration count through the retired
// map-backed implementation (legacy_ref_test.go) and the CSR production
// path. Scores are float-order-sensitive, so this only holds because the
// CSR code accumulates weights in the same sorted-adjacency order the
// legacy code did; any change to that order shows up here immediately.
func TestDifferentialLegacyVsCSR(t *testing.T) {
	variants := []Variant{VariantFPA, VariantNCA, VariantNCADR, VariantFPADMG}
	for _, weighted := range []bool{false, true} {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 30 + rng.Intn(50)
			g := diffRandomGraph(rng, n, 0.08, weighted)
			csr := graph.NewCSR(g)
			for qs := 1; qs <= 3; qs++ {
				q := make([]graph.Node, 0, qs)
				for _, u := range rng.Perm(n)[:qs] {
					q = append(q, graph.Node(u))
				}
				if !graph.SameComponent(g, q) {
					continue
				}
				for _, variant := range variants {
					for _, pruning := range []bool{false, true} {
						if pruning && (variant == VariantNCA || variant == VariantNCADR) {
							continue // pruning is an FPA-family option
						}
						opts := Options{LayerPruning: pruning}
						name := fmt.Sprintf("w=%v seed=%d |q|=%d %v pruning=%v",
							weighted, seed, qs, variant, pruning)
						want, err := legacySearch(g, q, variant, opts)
						if err != nil {
							t.Fatalf("%s: legacy: %v", name, err)
						}
						got, err := SearchCSR(csr, q, variant, opts)
						if err != nil {
							t.Fatalf("%s: csr: %v", name, err)
						}
						if got.Score != want.Score {
							t.Fatalf("%s: score %v (csr) != %v (legacy)", name, got.Score, want.Score)
						}
						if got.Iterations != want.Iterations {
							t.Fatalf("%s: iterations %d (csr) != %d (legacy)", name, got.Iterations, want.Iterations)
						}
						if len(got.Community) != len(want.Community) {
							t.Fatalf("%s: community %v (csr) != %v (legacy)", name, got.Community, want.Community)
						}
						for i := range got.Community {
							if got.Community[i] != want.Community[i] {
								t.Fatalf("%s: community %v (csr) != %v (legacy)", name, got.Community, want.Community)
							}
						}
					}
				}
			}
		}
	}
}

// The alternative objectives ride the same sufficient statistics; check
// them differentially too (FPA only — the pick rule is objective-blind).
func TestDifferentialObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, weighted := range []bool{false, true} {
		g := diffRandomGraph(rng, 50, 0.1, weighted)
		csr := graph.NewCSR(g)
		q := []graph.Node{graph.Node(rng.Intn(50))}
		for _, obj := range []Objective{ClassicModularity, GeneralizedModularityDensity} {
			opts := Options{Objective: obj, Chi: 1.5}
			want, err := legacySearch(g, q, VariantFPA, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SearchCSR(csr, q, VariantFPA, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Score != want.Score || len(got.Community) != len(want.Community) {
				t.Fatalf("weighted=%v obj=%d: csr (%v, %v) != legacy (%v, %v)",
					weighted, obj, got.Community, got.Score, want.Community, want.Score)
			}
		}
	}
}
