package dmcs

import (
	"math"
	"runtime"

	"dmcs/internal/graph"
)

// Intra-query parallelism (Options.Parallelism) dispatch. The peel's
// parallelizable phases — BFS layering, fpaWithPruning's whole-layer
// removal rounds, the Θ-heap fill, and NCA's candidate argmax — fan out
// across a bounded gang of workers (graph.ParRange) when the component
// is large enough to pay for the coordination; everything below the
// thresholds runs the untouched serial kernels. The parallel kernels
// are exact, not merely deterministic: within every removal round nodes
// are processed in ascending local id — the serial order — per-node
// float sums keep their packed-adjacency term order, and cross-worker
// merges either replay serially in that fixed order (aggregates) or
// combine under a total order (argmax), so results are bit-identical to
// Parallelism == 1 (TestParallelPeelBitIdentical pins this under -race).
//
// What stays serial, deliberately: the Θ-heap drain (a sequential
// dependence chain — each pop depends on the pushes of the previous
// removal), NCA's articulation DFS, and peelLayerLambda's rescan loop.
// On FPA+pruning those residues are small; on NCA the DFS dominates, so
// its speedup is bounded (documented in the README).

// Parallelism thresholds. Vars, not consts, so the differential tests
// can lower them and exercise the parallel kernels on test-sized graphs;
// production code treats them as constants.
var (
	// parallelMinNodes is the component size below which a search
	// ignores Options.Parallelism entirely: gang coordination costs more
	// than the whole peel on small components (the overwhelmingly common
	// case — this keeps the engine's small-query serving exactly as
	// allocation- and overhead-free as before).
	parallelMinNodes = 1 << 13
	// parallelMinLayer is the per-layer candidate count below which a
	// layer's Θ fill / removal round stays serial even when the search
	// as a whole is parallel.
	parallelMinLayer = 1 << 9
)

// effectiveParallelism resolves Options.Parallelism for an n-node
// component: <=1 (or a small component) means serial; larger values are
// capped at GOMAXPROCS, since extra gang members beyond runnable Ps only
// add scheduling latency to every round barrier.
func effectiveParallelism(requested, n int) int {
	if requested <= 1 || n < parallelMinNodes {
		return 1
	}
	if mx := runtime.GOMAXPROCS(0); requested > mx {
		requested = mx
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// bfsInto runs the multi-source BFS layering over v, parallel when the
// search is (the parallel BFS writes bit-identical distances; only
// internal frontier order differs, and nothing reads it).
func bfsInto(a *Arena, v *graph.CSRView, sources []graph.Node, k, par int) []int32 {
	if par > 1 {
		return v.MultiSourceBFSParInto(sources, a.g.Dist(0, k), a.g.Queue(k), par, a.g.ParNext(par))
	}
	return v.MultiSourceBFSInto(sources, a.g.Dist(0, k), a.g.Queue(k))
}

// fillThetaChunk scores cand[lo:hi) into items[lo:hi) — the parallel
// Θ-heap fill writes each candidate's entry to its fixed position, so
// the filled slice (and therefore the heap built from it) is identical
// to the serial append loop. Reads only immutable per-round state: the
// view's alive flags and the packed weights.
//
//dmcs:hotpath
func fillThetaChunk(s *peelState, cand []graph.Node, items []thetaItem, lo, hi int) {
	for i := lo; i < hi; i++ {
		items[i] = thetaOf(s, cand[i])
	}
}

// removeLayerRound removes one whole BFS layer from v in a
// round-synchronous parallel step bit-identical to the serial ascending-
// id removal loop (see graph.CSRView.RemoveLayerRound for the exactness
// argument). Scratch comes from the arena: the fused-k buffer doubles as
// the per-node removal-time degree store.
func removeLayerRound(a *Arena, v *graph.CSRView, layer []graph.Node, dist []int32, d int32, par int) {
	v.RemoveLayerRound(layer, dist, d, par, a.g.KSum(len(layer)), a.g.ParCounts(par))
}

// ncaScanChunk scans candidate local ids [lo, hi) and returns the best
// removable candidate under the serial scan's total order: higher pick
// score first, then farther from the query, then smaller id. Because
// that is a total order on candidates, per-chunk maxima merged under the
// same comparator (ncaBetter) reproduce the serial full-scan winner
// exactly, independent of chunk boundaries.
func ncaScanChunk(s *peelState, art []bool, isQuery []bool, kArr []float64, dist []int32, dS float64, weighted bool, pick pickFunc, lo, hi int) (graph.Node, float64) {
	var best graph.Node = -1
	bestScore := math.Inf(-1)
	for ui := lo; ui < hi; ui++ {
		u := graph.Node(ui)
		if !s.v.Alive(u) || art[u] || isQuery[u] {
			continue
		}
		kv := float64(s.v.DegreeIn(u))
		if weighted {
			kv = kArr[u]
		}
		sc := pick(s.wG, dS, kv, s.dOf(u))
		switch {
		case sc > bestScore:
			bestScore, best = sc, u
		case sc == bestScore && best >= 0:
			if dist[u] > dist[best] || (dist[u] == dist[best] && u < best) {
				best = u
			}
		}
	}
	return best, bestScore
}

// ncaBetter reports whether candidate (u, su) beats (b, sb) under the
// scan's total order; b < 0 means "no candidate yet".
func ncaBetter(u graph.Node, su float64, b graph.Node, sb float64, dist []int32) bool {
	if b < 0 {
		return u >= 0
	}
	if u < 0 || su != sb {
		return su > sb
	}
	return dist[u] > dist[b] || (dist[u] == dist[b] && u < b)
}

// ncaScanPar fans the candidate scan out over par workers and merges the
// chunk winners in fixed chunk order under the same total order the
// serial scan uses.
func ncaScanPar(s *peelState, art []bool, isQuery []bool, kArr []float64, dist []int32, dS float64, weighted bool, pick pickFunc, n, par int) (graph.Node, float64) {
	a := s.a
	nodeBuf := growNodeSlice(a.parNode, par)
	scoreBuf := growFloat64Slice(a.parScore, par)
	for w := 0; w < par; w++ {
		nodeBuf[w] = -1
		scoreBuf[w] = math.Inf(-1)
	}
	a.parNode, a.parScore = nodeBuf, scoreBuf
	graph.ParRange(par, n, func(chunk, lo, hi int) {
		nodeBuf[chunk], scoreBuf[chunk] = ncaScanChunk(s, art, isQuery, kArr, dist, dS, weighted, pick, lo, hi)
	})
	var best graph.Node = -1
	bestScore := math.Inf(-1)
	for w := 0; w < par; w++ {
		if ncaBetter(nodeBuf[w], scoreBuf[w], best, bestScore, dist) {
			best, bestScore = nodeBuf[w], scoreBuf[w]
		}
	}
	return best, bestScore
}
