package dmcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

func TestExactSmallOnTwoTriangles(t *testing.T) {
	// two triangles joined by a bridge: optimum for a triangle member is
	// its own triangle
	g := graph.FromEdges(6, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
	res, err := ExactSmall(g, []graph.Node{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Community) != 3 {
		t.Fatalf("exact community=%v want the triangle", res.Community)
	}
	want := modularity.Density(g, []graph.Node{0, 1, 2})
	if res.Score != want {
		t.Fatalf("score=%v want %v", res.Score, want)
	}
}

func TestExactSmallErrors(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {2, 3}})
	if _, err := ExactSmall(g, nil, 0); err != ErrEmptyQuery {
		t.Fatalf("want ErrEmptyQuery, got %v", err)
	}
	if _, err := ExactSmall(g, []graph.Node{0, 2}, 0); err != ErrDisconnected {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
	big := graph.FromEdges(30, [][2]graph.Node{{0, 1}})
	if _, err := ExactSmall(big, []graph.Node{0}, 0); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

// Property: the exact optimum upper-bounds every heuristic, and the
// heuristics stay within a reasonable optimality gap on small random
// graphs (this quantifies the greedy framework's quality).
func TestHeuristicsBoundedByExact(t *testing.T) {
	worstGap := 0.0
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(6)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(graph.Node(i), graph.Node(rng.Intn(i)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		q := []graph.Node{graph.Node(rng.Intn(n))}
		exact, err := ExactSmall(g, q, 0)
		if err != nil {
			return false
		}
		for _, variant := range []Variant{VariantFPA, VariantNCA} {
			r, err := Search(g, q, variant, Options{})
			if err != nil {
				return false
			}
			if r.Score > exact.Score+1e-9 {
				return false // heuristic beat the optimum: impossible
			}
			if exact.Score > 0 {
				if gap := (exact.Score - r.Score) / exact.Score; gap > worstGap {
					worstGap = gap
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	t.Logf("worst observed optimality gap: %.1f%%", 100*worstGap)
}

func TestFPAOftenMatchesExactOnCliquePlusTail(t *testing.T) {
	// K5 with a pendant path: the optimum is the K5 and FPA finds it
	b := graph.NewBuilder(8)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	g := b.Build()
	exact, err := ExactSmall(g, []graph.Node{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fpa, err := FPA(g, []graph.Node{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fpa.Score != exact.Score {
		t.Fatalf("FPA %v != exact %v on the clique+tail gadget", fpa.Score, exact.Score)
	}
	if len(exact.Community) != 5 {
		t.Fatalf("exact=%v want the K5", exact.Community)
	}
}
