package dmcs

import (
	"testing"

	"dmcs/internal/graph"
	"dmcs/internal/lfr"
)

// benchGraph generates a mid-size LFR graph once per benchmark binary.
func benchGraph(b *testing.B, n int) (*graph.Graph, []graph.Node) {
	b.Helper()
	cfg := lfr.Default()
	cfg.N = n
	cfg.MaxDeg = 100
	cfg.MaxComm = 300
	res, err := lfr.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.G, []graph.Node{res.Communities[0][0]}
}

// BenchmarkFPA measures the paper's headline algorithm (with pruning, as
// run in the evaluation).
func BenchmarkFPA(b *testing.B) {
	g, q := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPA(g, q, Options{LayerPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPANoPruning is the Figure 13 ablation partner: FPA without the
// layer-based pruning strategy.
func BenchmarkFPANoPruning(b *testing.B) {
	g, q := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPA(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPADMG is the Figure 14 ablation: the unstable Λ pick forces a
// full candidate rescan per removal (the paper reports ~150× slower).
func BenchmarkFPADMG(b *testing.B) {
	g, q := benchGraph(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPADMG(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNCA measures the quadratic articulation-recomputation loop.
func BenchmarkNCA(b *testing.B) {
	g, q := benchGraph(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NCA(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNCADR is the Figure 14 (a)+(d) cell.
func BenchmarkNCADR(b *testing.B) {
	g, q := benchGraph(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NCADR(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPAMultiQuery measures the Steiner-merge multi-query path.
func BenchmarkFPAMultiQuery(b *testing.B) {
	cfg := lfr.Default()
	cfg.N = 5000
	cfg.MaxDeg = 100
	cfg.MaxComm = 300
	res, err := lfr.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := append([]graph.Node(nil), res.Communities[0][:4]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPA(res.G, q, Options{LayerPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}
