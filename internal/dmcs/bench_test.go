package dmcs

import (
	"math/rand"
	"testing"

	"dmcs/internal/graph"
	"dmcs/internal/lfr"
)

// benchGraph generates a mid-size LFR graph once per benchmark binary.
func benchGraph(b *testing.B, n int) (*graph.Graph, []graph.Node) {
	b.Helper()
	cfg := lfr.Default()
	cfg.N = n
	cfg.MaxDeg = 100
	cfg.MaxComm = 300
	res, err := lfr.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.G, []graph.Node{res.Communities[0][0]}
}

// weightedBenchGraph is benchGraph with a deterministic random weight in
// (0.5, 2.5) on every edge — the workload where the flat CSR substrate
// replaces one hashed map lookup per edge-weight evaluation.
func weightedBenchGraph(b *testing.B, n int) (*graph.Graph, []graph.Node) {
	b.Helper()
	g, q := benchGraph(b, n)
	rng := rand.New(rand.NewSource(7))
	wb := graph.NewBuilder(g.NumNodes())
	g.Edges(func(u, v graph.Node) bool {
		wb.SetWeight(u, v, 0.5+2*rng.Float64())
		return true
	})
	return wb.Build(), q
}

// BenchmarkFPA measures the paper's headline algorithm (with pruning, as
// run in the evaluation).
func BenchmarkFPA(b *testing.B) {
	g, q := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPA(g, q, Options{LayerPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPANoPruning is the Figure 13 ablation partner: FPA without the
// layer-based pruning strategy.
func BenchmarkFPANoPruning(b *testing.B) {
	g, q := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPA(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPADMG is the Figure 14 ablation: the unstable Λ pick forces a
// full candidate rescan per removal (the paper reports ~150× slower).
func BenchmarkFPADMG(b *testing.B) {
	g, q := benchGraph(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPADMG(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNCA measures the quadratic articulation-recomputation loop.
func BenchmarkNCA(b *testing.B) {
	g, q := benchGraph(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NCA(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNCADR is the Figure 14 (a)+(d) cell.
func BenchmarkNCADR(b *testing.B) {
	g, q := benchGraph(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NCADR(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedFPACSR measures the production weighted search: pack a
// CSR snapshot and peel over flat arrays (one map pass at pack time, zero
// map lookups in the peel).
func BenchmarkWeightedFPACSR(b *testing.B) {
	g, q := weightedBenchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPA(g, q, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedFPACSRPrebuilt is the engine's view of the same query:
// the snapshot is built once and reused, so the measurement is the pure
// flat-array peel.
func BenchmarkWeightedFPACSRPrebuilt(b *testing.B) {
	g, q := weightedBenchGraph(b, 5000)
	csr := graph.NewCSR(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchCSR(csr, q, VariantFPA, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedFPALegacy runs the frozen map-backed reference
// implementation (legacy_ref_test.go) on the identical workload — every
// k_{v,S} and w_C evaluation is a hashed edge-weight-map lookup. The gap
// to BenchmarkWeightedFPACSR* is the win the CSR migration bought.
func BenchmarkWeightedFPALegacy(b *testing.B) {
	g, q := weightedBenchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacySearch(g, q, VariantFPA, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedFPAPruningCSR / ...Legacy compare the layer-pruning
// strategy (the paper's production configuration) on weighted graphs.
func BenchmarkWeightedFPAPruningCSR(b *testing.B) {
	g, q := weightedBenchGraph(b, 5000)
	csr := graph.NewCSR(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchCSR(csr, q, VariantFPA, Options{LayerPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightedFPAPruningLegacy(b *testing.B) {
	g, q := weightedBenchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacySearch(g, q, VariantFPA, Options{LayerPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedNCACSR / ...Legacy compare the quadratic NCA loop,
// whose per-iteration candidate scan evaluates k_{v,S} for every alive
// node — the heaviest edge-weight consumer of the four variants.
func BenchmarkWeightedNCACSR(b *testing.B) {
	g, q := weightedBenchGraph(b, 1000)
	csr := graph.NewCSR(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchCSR(csr, q, VariantNCA, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightedNCALegacy(b *testing.B) {
	g, q := weightedBenchGraph(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacySearch(g, q, VariantNCA, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPAMultiQuery measures the Steiner-merge multi-query path.
func BenchmarkFPAMultiQuery(b *testing.B) {
	cfg := lfr.Default()
	cfg.N = 5000
	cfg.MaxDeg = 100
	cfg.MaxComm = 300
	res, err := lfr.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := append([]graph.Node(nil), res.Communities[0][:4]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FPA(res.G, q, Options{LayerPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}
