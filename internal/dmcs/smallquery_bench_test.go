package dmcs

import (
	"testing"

	"dmcs/internal/graph"
)

// smallQueryGraph is the interactive-workload fixture: numComp disjoint
// communities of compSize nodes each (a ring plus two chord offsets, so
// every community is connected with average degree ~6). A query touches
// one community of compSize nodes inside a graph of numComp*compSize —
// the regime the query-scoped sub-CSR substrate targets, where per-query
// cost must be O(component), not O(graph).
func smallQueryGraph(numComp, compSize int) *graph.Graph {
	b := graph.NewBuilder(numComp * compSize)
	for c := 0; c < numComp; c++ {
		base := c * compSize
		for i := 0; i < compSize; i++ {
			u := graph.Node(base + i)
			b.AddEdge(u, graph.Node(base+(i+1)%compSize))
			b.AddEdge(u, graph.Node(base+(i+7)%compSize))
			b.AddEdge(u, graph.Node(base+(i+13)%compSize))
		}
	}
	return b.Build()
}

const (
	smallQueryComponents = 400
	smallQueryCompSize   = 80
)

// benchSmallQueries rotates single-node queries across the communities of
// the shared snapshot, measuring the per-query cost of the given variant.
func benchSmallQueries(b *testing.B, variant Variant, opts Options) {
	b.Helper()
	g := smallQueryGraph(smallQueryComponents, smallQueryCompSize)
	csr := graph.NewCSR(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := []graph.Node{graph.Node((i % smallQueryComponents) * smallQueryCompSize)}
		if _, err := SearchCSR(csr, q, variant, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallQueriesFPA is the headline interactive workload: many
// small FPA queries against one large (32k-node) multi-community graph.
func BenchmarkSmallQueriesFPA(b *testing.B) {
	benchSmallQueries(b, VariantFPA, Options{})
}

// BenchmarkSmallQueriesFPAPruning is the same workload through the
// Section 5.7 layer-pruning strategy (the paper's production setup).
func BenchmarkSmallQueriesFPAPruning(b *testing.B) {
	benchSmallQueries(b, VariantFPA, Options{LayerPruning: true})
}

// BenchmarkSmallQueriesNCA runs the quadratic articulation-recomputation
// variant on the same workload — the case the geometric re-compaction of
// the peeling substrate targets.
func BenchmarkSmallQueriesNCA(b *testing.B) {
	benchSmallQueries(b, VariantNCA, Options{})
}

// BenchmarkSmallQueriesMulti exercises the Steiner-protect path: 3-node
// queries spread inside one community.
func BenchmarkSmallQueriesMulti(b *testing.B) {
	g := smallQueryGraph(smallQueryComponents, smallQueryCompSize)
	csr := graph.NewCSR(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i % smallQueryComponents) * smallQueryCompSize
		q := []graph.Node{
			graph.Node(base),
			graph.Node(base + smallQueryCompSize/3),
			graph.Node(base + 2*smallQueryCompSize/3),
		}
		if _, err := SearchCSR(csr, q, VariantFPA, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
