// Package dmcs implements the paper's contribution: Density Modularity
// based Community Search. Given a graph G and query nodes Q, it finds a
// connected subgraph containing Q with high density modularity using the
// top-down greedy peeling framework of Section 5 (Algorithm 1) in its four
// instantiations:
//
//   - NCA  — non-articulation candidates + density-modularity-gain Λ (§5.4)
//   - FPA  — farthest-distance candidates + density-ratio Θ (§5.5, Alg. 2)
//   - NCADR — non-articulation candidates + density ratio (§6.2.5)
//   - FPADMG — farthest-distance candidates + Λ (§6.2.5)
//
// plus the layer-based pruning strategy of Section 5.7 and the multi-query
// Steiner merge of Section 5.6.
//
// # Architecture: one flat substrate, query-scoped
//
// Every search runs on a graph.CSR snapshot — packed adjacency, a packed
// parallel edge-weight slice, and cached per-node weighted degrees d_v and
// total edge weight w_G — with a graph.CSRView tracking the alive subgraph
// and its sufficient statistics (w_C, d_S) incrementally during peeling.
// No hashed edge-weight-map lookup ever happens inside a peeling loop.
// The *graph.Graph entry points (Search, SearchComponent, NCA, FPA, …)
// are thin wrappers that pack a CSR and delegate to SearchCSR /
// SearchComponentCSR; callers that serve many queries against one graph
// (internal/engine) build the snapshot once and call the CSR entry points
// directly. The map-backed Graph remains the construction/IO type only.
//
// On top of the snapshot, every query is scoped to its connected
// component: the component is relabelled into a compact graph.SubCSR
// (dense 0..k-1 ids, identity-wrapped when it spans the whole graph) and
// the entire peel — layer grouping, Θ heap, articulation sweeps,
// candidate scans — runs in the local id space, so a 50-node community
// on a 10M-node graph touches 50-node-sized state, not 10M-node-sized
// state. All scratch comes from a reusable Arena (pooled here, owned
// per worker by internal/engine): sub-CSR backing stores, view arrays,
// epoch-tagged visited tables, BFS queues, heap storage, the removal
// trace. The zero-alloc contract: once an arena is warm, a search heap-
// allocates only the Result and its Community slice (plus RemovalOrder
// when requested) — everything else is recycled, which is what lets the
// engine serve steady-state traffic with 0 allocs/op.
//
// NCA additionally re-compacts geometrically: whenever the alive set
// (by nodes or edges) halves, the sub-CSR is rebuilt over the survivors
// so its per-removal articulation DFS and candidate rescan cost
// O(alive), collapsing the historical O(iterations·(n+m)) behavior.
// Aggregates are carried — never re-accumulated — across rebuilds.
//
// The whole substrate is float-exact: relabelling is monotonic and
// weight accumulation follows the same sorted-adjacency order the
// historical map-backed implementation used, so communities AND scores
// are bit-identical (see TestDifferentialLegacyVsCSR and
// TestArenaReuseMatchesFresh, which re-proves it on poisoned arenas).
//
// The hot-path and arena contracts in this package are machine-checked:
// the peel kernels carry //dmcs:hotpath annotations and internal/analysis
// (run as cmd/dmcsvet in CI) proves them allocation-free; see
// CONTRIBUTING.md, "Invariants the linter enforces".
package dmcs

import (
	"errors"
	"slices"
	"time"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// Errors returned by the search entry points.
var (
	// ErrEmptyQuery is returned when no query nodes are given.
	ErrEmptyQuery = errors.New("dmcs: empty query")
	// ErrDisconnected is returned when the query nodes are not in one
	// connected component, so no community can contain them all.
	ErrDisconnected = errors.New("dmcs: query nodes are not in one connected component")

	errOutOfRange = errors.New("dmcs: query node out of range")
)

// Objective selects the goodness function used to pick the best
// intermediate subgraph (the paper's Figure 12 ablation). The node-removal
// criterion (Λ or Θ) is unchanged; only the selection objective varies.
type Objective int

const (
	// DensityModularity is the paper's DM (Definition 2), the default.
	DensityModularity Objective = iota
	// ClassicModularity is Newman's CM (Definition 1).
	ClassicModularity
	// GeneralizedModularityDensity is the Guo et al. 2020 comparator.
	GeneralizedModularityDensity
)

// Variant names one of the four algorithm instantiations.
type Variant int

const (
	// VariantFPA is farthest-distance candidates + density ratio.
	VariantFPA Variant = iota
	// VariantNCA is non-articulation candidates + Λ gain.
	VariantNCA
	// VariantNCADR is non-articulation candidates + density ratio.
	VariantNCADR
	// VariantFPADMG is farthest-distance candidates + Λ gain.
	VariantFPADMG
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantFPA:
		return "FPA"
	case VariantNCA:
		return "NCA"
	case VariantNCADR:
		return "NCA-DR"
	case VariantFPADMG:
		return "FPA-DMG"
	}
	return "unknown"
}

// Options tunes a search. The zero value is the paper's default
// configuration: density-modularity objective, no layer pruning, no
// timeout.
type Options struct {
	// Objective picks the best-subgraph selection function (Figure 12).
	Objective Objective
	// Chi is the exponent of the generalized modularity density (χ);
	// 0 means the comparator's default of 1.
	Chi float64
	// LayerPruning enables the Section 5.7 layer-based pruning strategy
	// (FPA variants only).
	LayerPruning bool
	// Timeout bounds the wall-clock time; on expiry the best community
	// found so far is returned with TimedOut set. Zero means no bound.
	Timeout time.Duration
	// TrackOrder records the node-removal order in the result (used by
	// the Figure 5 experiment).
	TrackOrder bool
	// Cancel, when non-nil, is polled between node removals; once it is
	// closed the search stops and returns the best community found so far
	// with TimedOut set, exactly like a Timeout expiry. The engine wires a
	// context.Context's Done channel here.
	Cancel <-chan struct{}
	// Parallelism bounds how many goroutines a single search may use for
	// its heavy phases (BFS layering, whole-layer removal rounds, Θ-heap
	// fills, NCA candidate scans). Values <= 1 keep the search fully
	// serial; larger values are capped at GOMAXPROCS and engage only on
	// components above an internal size threshold (~8k nodes), so small
	// queries never pay gang-scheduling overhead. Results are
	// bit-identical to the serial search at any setting: parallel rounds
	// process nodes in ascending local id — exactly the serial removal
	// order — and merge float work in that fixed order, so Parallelism
	// participates in no cache key and changes no answer, only latency.
	Parallelism int
}

// Result is the outcome of a community search.
type Result struct {
	// Community is the identified community (sorted node ids). It always
	// contains the query nodes and induces a connected subgraph.
	Community []graph.Node
	// Score is the objective value of Community.
	Score float64
	// Iterations is the number of node removals performed.
	Iterations int
	// RemovalOrder lists removed nodes in order (only when TrackOrder).
	RemovalOrder []graph.Node
	// TimedOut reports whether the search stopped on Options.Timeout.
	TimedOut bool
}

// Search runs the selected variant on a map-backed Graph. It packs a CSR
// snapshot and delegates to SearchCSR; callers answering many queries
// against one graph should build the snapshot once and call SearchCSR /
// SearchComponentCSR themselves (internal/engine does).
func Search(g *graph.Graph, q []graph.Node, variant Variant, opts Options) (*Result, error) {
	return SearchCSR(graph.NewCSR(g), q, variant, opts)
}

// SearchComponent runs the selected variant on a precomputed connected
// component of g (see SearchComponentCSR for the component contract). It
// is a thin wrapper that packs a CSR snapshot per call.
func SearchComponent(g *graph.Graph, q, comp []graph.Node, variant Variant, opts Options) (*Result, error) {
	return SearchComponentCSR(graph.NewCSR(g), q, comp, variant, opts)
}

// SearchCSR runs the selected variant against a packed snapshot: it
// validates the query, enumerates the sorted connected component
// containing it, and peels. The component flood uses the arena's
// epoch-tagged visited table (no whole-graph distance array to clear),
// so the entire call — admission, extraction, peel — costs
// O(|component|), not O(|G|).
func SearchCSR(c *graph.CSR, q []graph.Node, variant Variant, opts Options) (*Result, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	comp, err := queryComponentArena(a, c, q)
	if err != nil {
		return nil, err
	}
	return searchExtract(a, c, q, comp, variant, opts)
}

// SearchComponentCSR runs the selected variant on a precomputed connected
// component. comp must be the sorted connected component of the snapshot
// containing every query node — exactly what queryComponent returns.
// Callers that serve many queries against one graph (internal/engine)
// precompute the component partition once and skip the per-query BFS +
// sort; comp is only read, so one slice may serve concurrent searches.
//
// The search itself is query-scoped: the component is relabelled into a
// compact sub-CSR (skipped when it spans the whole snapshot) and every
// peel structure is sized to the component, so the per-query cost is
// O(|component|), not O(|G|). Scratch comes from a pooled Arena; callers
// that want per-worker arenas (and a prebuilt sub-CSR) use SearchSub.
func SearchComponentCSR(c *graph.CSR, q, comp []graph.Node, variant Variant, opts Options) (*Result, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	return searchExtract(a, c, q, comp, variant, opts)
}

// searchExtract compacts comp into the arena's sub-CSR slot (or wraps the
// snapshot when the component spans it) and dispatches.
func searchExtract(a *Arena, c *graph.CSR, q, comp []graph.Node, variant Variant, opts Options) (*Result, error) {
	var sub *graph.SubCSR
	if len(comp) == c.NumNodes() {
		sub = a.g.WrapFull(0, c)
	} else {
		sub = a.g.ExtractSub(0, c, comp)
	}
	return searchSub(a, sub, q, comp, variant, opts)
}

// SearchSub runs the selected variant against a prebuilt sub-CSR using
// caller-owned scratch: sub must be the compact snapshot of comp (the
// sorted connected component containing every query node, in source ids),
// either extracted with graph.NewSubCSR or wrapped with graph.WrapCSR.
// The engine calls it with its per-worker arena and its per-component
// sub-CSR cache, so steady-state serving touches only component-sized
// memory and allocates nothing but the Result. sub and comp are only
// read; the arena is exclusively owned for the duration of the call.
func SearchSub(a *Arena, sub *graph.SubCSR, q, comp []graph.Node, variant Variant, opts Options) (*Result, error) {
	return searchSub(a, sub, q, comp, variant, opts)
}

// searchSub translates the query into local ids and dispatches.
func searchSub(a *Arena, sub *graph.SubCSR, q, comp []graph.Node, variant Variant, opts Options) (*Result, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	a.layerGen = 0 // new query: peelLayerTheta re-seeds its tags
	lq := a.localQ[:0]
	for _, u := range q {
		l, ok := sub.LocalOf(u)
		if !ok {
			return nil, errOutOfRange
		}
		lq = append(lq, l)
	}
	a.localQ = lq
	switch variant {
	case VariantNCA:
		return runNCA(a, sub, lq, comp, opts, pickLambda)
	case VariantNCADR:
		return runNCA(a, sub, lq, comp, opts, pickTheta)
	case VariantFPA:
		return runFPA(a, sub, lq, comp, opts, true)
	case VariantFPADMG:
		return runFPA(a, sub, lq, comp, opts, false)
	}
	return nil, errors.New("dmcs: unknown variant")
}

// NCA runs the Non-articulation Cancellation Algorithm (Section 5.4).
func NCA(g *graph.Graph, q []graph.Node, opts Options) (*Result, error) {
	return Search(g, q, VariantNCA, opts)
}

// NCADR runs NCA with the density-ratio pick (Section 6.2.5).
func NCADR(g *graph.Graph, q []graph.Node, opts Options) (*Result, error) {
	return Search(g, q, VariantNCADR, opts)
}

// FPA runs the Fast Peeling Algorithm (Section 5.5, Algorithm 2).
func FPA(g *graph.Graph, q []graph.Node, opts Options) (*Result, error) {
	return Search(g, q, VariantFPA, opts)
}

// FPADMG runs FPA with the density-modularity-gain pick (Section 6.2.5).
func FPADMG(g *graph.Graph, q []graph.Node, opts Options) (*Result, error) {
	return Search(g, q, VariantFPADMG, opts)
}

// deadlinePoller amortizes wall-clock checks during peeling: the
// cancellation channel is polled on every call (cheap, non-blocking), but
// time.Now() is consulted only every 64 calls — a syscall per removal
// dominated small-community peels before. The first call always checks,
// so an already-expired deadline stops the search before any removal.
type deadlinePoller struct {
	deadline time.Time
	cancel   <-chan struct{}
	calls    uint32
	expired  bool
}

// deadlinePollStride is the number of check calls between time.Now()
// polls; a power of two so the modulus is a mask.
const deadlinePollStride = 64

func (p *deadlinePoller) check() bool {
	if p.expired {
		return true
	}
	if p.cancel != nil {
		select {
		case <-p.cancel:
			p.expired = true
			return true
		default:
		}
	}
	if p.deadline.IsZero() {
		return false
	}
	p.calls++
	if p.calls&(deadlinePollStride-1) != 1 {
		return false
	}
	if time.Now().After(p.deadline) {
		p.expired = true
	}
	return p.expired
}

// peelState drives one peel over a compact sub-CSR: a CSRView maintains
// the alive subgraph and its sufficient statistics (w_C, d_S)
// incrementally over the packed local arrays; peelState adds the removal
// trace (recorded in source ids, so it survives re-compaction), the best
// intermediate subgraph seen so far, and deadline/cancellation polling.
// Statistics are floats so the same code path serves unweighted graphs
// (where they are exact integers) and the weighted Definition 2. All
// mutable storage is arena-backed.
type peelState struct {
	a    *Arena
	sub  *graph.SubCSR  // current compact snapshot (swapped by re-compaction)
	v    *graph.CSRView // alive overlay of sub
	wG   float64        // total edge weight of G (|E| when unweighted)
	wdeg []float64      // node weights d_v of sub's members, by local id
	opts Options
	// origGlobals[i] is the source id of the i-th node of the search
	// universe at construction (the component — stable caller memory);
	// universe restricts it to a subset of construction-time local ids
	// (nil = the whole sub). Together they let result() reconstruct the
	// community after the sub has been re-compacted away.
	origGlobals []graph.Node
	universe    []graph.Node
	trace       []graph.Node // removal order, source ids
	// best intermediate subgraph = universe minus trace[:bestIdx]
	bestIdx   int
	bestScore float64
	poll      deadlinePoller
	// par is the resolved worker count for this peel's parallel phases
	// (1 = serial; see effectiveParallelism).
	par int
}

// newPeelState resets the arena's embedded peel state around an
// already-built view of sub. universe is nil for a full-sub peel, or the
// sorted construction-time local ids the view was restricted to.
func newPeelState(a *Arena, sub *graph.SubCSR, v *graph.CSRView, origGlobals, universe []graph.Node, opts Options) *peelState {
	s := &a.ps
	*s = peelState{
		a:           a,
		sub:         sub,
		v:           v,
		wG:          sub.TotalWeight(),
		wdeg:        sub.WeightedDegrees(),
		opts:        opts,
		origGlobals: origGlobals,
		universe:    universe,
		trace:       a.trace[:0],
		par:         effectiveParallelism(opts.Parallelism, sub.NumNodes()),
	}
	s.bestScore = s.score()
	if opts.Timeout > 0 {
		s.poll.deadline = time.Now().Add(opts.Timeout)
	}
	s.poll.cancel = opts.Cancel
	return s
}

// kOf returns the (weighted) degree of u into the alive subgraph — the
// k_{v,S} of Definitions 5–7. O(1) unweighted, O(deg) weighted, straight
// from the packed weights.
func (s *peelState) kOf(u graph.Node) float64 { return s.v.WeightedDegreeIn(u) }

// dOf returns u's node weight (its weighted degree in G).
func (s *peelState) dOf(u graph.Node) float64 { return s.wdeg[u] }

// score evaluates the selection objective on the current alive subgraph.
func (s *peelState) score() float64 { return scoreView(s.v, s.wG, s.opts) }

// scoreView evaluates the selection objective on a view's alive subgraph
// from its incrementally maintained sufficient statistics. It is the
// single scoring site shared by the peel loop and fpaWithPruning's
// phase-1 prefix scan, so every code path scores with the same formula.
func scoreView(v *graph.CSRView, wG float64, opts Options) float64 {
	wC, dS, size := v.InternalWeight(), v.NodeWeightSum(), v.NumAlive()
	switch opts.Objective {
	case ClassicModularity:
		return modularity.ClassicPartsF(wC, dS, wG)
	case GeneralizedModularityDensity:
		chi := opts.Chi
		if chi == 0 {
			chi = 1
		}
		return modularity.GeneralizedDensityPartsF(wC, dS, wG, size, chi)
	default:
		return modularity.DensityPartsF(wC, dS, wG, size)
	}
}

// remove deletes local node u (the view updates w_C and d_S), records its
// source id in the trace, and records the new subgraph as best when it
// scores at least as well (Algorithm 2 line 13 uses ≥, which prefers the
// smaller of equally good communities).
func (s *peelState) remove(u graph.Node) {
	s.v.Remove(u)
	s.trace = append(s.trace, s.sub.GlobalOf(u))
	if sc := s.score(); sc >= s.bestScore {
		s.bestScore = sc
		s.bestIdx = len(s.trace)
	}
}

// expired polls the cancellation channel on every call and the deadline
// every deadlinePollStride calls.
func (s *peelState) expired() bool { return s.poll.check() }

// result reconstructs the best intermediate subgraph: the construction
// universe minus the first bestIdx removals, both in ascending source-id
// order, filtered by a sorted merge (the historical implementation
// built a map of the dead prefix per query). The Community slice is the
// one allocation a warm arena's search performs — it escapes to the
// caller.
func (s *peelState) result() *Result {
	dead := append(s.a.dead[:0], s.trace[:s.bestIdx]...)
	slices.Sort(dead)
	s.a.dead = dead

	size := len(s.universe)
	if s.universe == nil {
		size = len(s.origGlobals)
	}
	community := make([]graph.Node, 0, size-s.bestIdx)
	j := 0
	if s.universe == nil {
		for _, g := range s.origGlobals {
			if j < len(dead) && dead[j] == g {
				j++
				continue
			}
			community = append(community, g)
		}
	} else {
		for _, u := range s.universe {
			g := s.origGlobals[u]
			if j < len(dead) && dead[j] == g {
				j++
				continue
			}
			community = append(community, g)
		}
	}
	r := &Result{
		Community:  community,
		Score:      s.bestScore,
		Iterations: len(s.trace),
		TimedOut:   s.poll.expired,
	}
	if s.opts.TrackOrder {
		r.RemovalOrder = append([]graph.Node(nil), s.trace...)
	}
	s.a.trace = s.trace[:0] // hand the grown trace back to the arena
	return r
}

// queryComponentArena validates the query and returns the connected
// component containing it, sorted ascending, in arena memory valid for
// the current query. One flood from the first query node both checks
// connectivity of Q and enumerates the component; visited bookkeeping is
// the arena's epoch-tagged mark table, so nothing whole-graph-sized is
// written — the flood touches O(|component|) memory.
func queryComponentArena(a *Arena, c *graph.CSR, q []graph.Node) ([]graph.Node, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	for _, u := range q {
		if u < 0 || int(u) >= c.NumNodes() {
			return nil, errOutOfRange
		}
	}
	a.g.BeginEpoch(c.NumNodes())
	comp := append(a.compBuf[:0], q[0]) // BFS queue doubles as the member list
	a.g.Mark(q[0], 0)
	for head := 0; head < len(comp); head++ {
		for _, w := range c.Neighbors(comp[head]) {
			if _, seen := a.g.Marked(w); !seen {
				a.g.Mark(w, 0)
				comp = append(comp, w)
			}
		}
	}
	a.compBuf = comp
	for _, u := range q[1:] {
		if _, seen := a.g.Marked(u); !seen {
			return nil, ErrDisconnected
		}
	}
	slices.Sort(comp)
	return comp, nil
}

// sortNodes sorts node ids ascending. slices.Sort compiles to a
// monomorphized pdqsort — no reflection, no per-comparison indirection —
// which BenchmarkSortNodes* in internal/graph quantifies against the
// historical sort.Slice.
func sortNodes(a []graph.Node) {
	slices.Sort(a)
}
