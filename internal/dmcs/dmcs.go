// Package dmcs implements the paper's contribution: Density Modularity
// based Community Search. Given a graph G and query nodes Q, it finds a
// connected subgraph containing Q with high density modularity using the
// top-down greedy peeling framework of Section 5 (Algorithm 1) in its four
// instantiations:
//
//   - NCA  — non-articulation candidates + density-modularity-gain Λ (§5.4)
//   - FPA  — farthest-distance candidates + density-ratio Θ (§5.5, Alg. 2)
//   - NCADR — non-articulation candidates + density ratio (§6.2.5)
//   - FPADMG — farthest-distance candidates + Λ (§6.2.5)
//
// plus the layer-based pruning strategy of Section 5.7 and the multi-query
// Steiner merge of Section 5.6.
//
// # Architecture: one flat substrate
//
// Every search runs on a graph.CSR snapshot — packed adjacency, a packed
// parallel edge-weight slice, and cached per-node weighted degrees d_v and
// total edge weight w_G — with a graph.CSRView tracking the alive subgraph
// and its sufficient statistics (w_C, d_S) incrementally during peeling.
// No hashed edge-weight-map lookup ever happens inside a peeling loop.
// The *graph.Graph entry points (Search, SearchComponent, NCA, FPA, …)
// are thin wrappers that pack a CSR and delegate to SearchCSR /
// SearchComponentCSR; callers that serve many queries against one graph
// (internal/engine) build the snapshot once and call the CSR entry points
// directly. The map-backed Graph remains the construction/IO type only.
//
// The CSR port is float-exact: weight accumulation follows the same
// sorted-adjacency order the historical map-backed implementation used,
// so communities AND scores are bit-identical (see
// TestDifferentialLegacyVsCSR).
package dmcs

import (
	"errors"
	"sort"
	"time"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// Errors returned by the search entry points.
var (
	// ErrEmptyQuery is returned when no query nodes are given.
	ErrEmptyQuery = errors.New("dmcs: empty query")
	// ErrDisconnected is returned when the query nodes are not in one
	// connected component, so no community can contain them all.
	ErrDisconnected = errors.New("dmcs: query nodes are not in one connected component")

	errOutOfRange = errors.New("dmcs: query node out of range")
)

// Objective selects the goodness function used to pick the best
// intermediate subgraph (the paper's Figure 12 ablation). The node-removal
// criterion (Λ or Θ) is unchanged; only the selection objective varies.
type Objective int

const (
	// DensityModularity is the paper's DM (Definition 2), the default.
	DensityModularity Objective = iota
	// ClassicModularity is Newman's CM (Definition 1).
	ClassicModularity
	// GeneralizedModularityDensity is the Guo et al. 2020 comparator.
	GeneralizedModularityDensity
)

// Variant names one of the four algorithm instantiations.
type Variant int

const (
	// VariantFPA is farthest-distance candidates + density ratio.
	VariantFPA Variant = iota
	// VariantNCA is non-articulation candidates + Λ gain.
	VariantNCA
	// VariantNCADR is non-articulation candidates + density ratio.
	VariantNCADR
	// VariantFPADMG is farthest-distance candidates + Λ gain.
	VariantFPADMG
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantFPA:
		return "FPA"
	case VariantNCA:
		return "NCA"
	case VariantNCADR:
		return "NCA-DR"
	case VariantFPADMG:
		return "FPA-DMG"
	}
	return "unknown"
}

// Options tunes a search. The zero value is the paper's default
// configuration: density-modularity objective, no layer pruning, no
// timeout.
type Options struct {
	// Objective picks the best-subgraph selection function (Figure 12).
	Objective Objective
	// Chi is the exponent of the generalized modularity density (χ);
	// 0 means the comparator's default of 1.
	Chi float64
	// LayerPruning enables the Section 5.7 layer-based pruning strategy
	// (FPA variants only).
	LayerPruning bool
	// Timeout bounds the wall-clock time; on expiry the best community
	// found so far is returned with TimedOut set. Zero means no bound.
	Timeout time.Duration
	// TrackOrder records the node-removal order in the result (used by
	// the Figure 5 experiment).
	TrackOrder bool
	// Cancel, when non-nil, is polled between node removals; once it is
	// closed the search stops and returns the best community found so far
	// with TimedOut set, exactly like a Timeout expiry. The engine wires a
	// context.Context's Done channel here.
	Cancel <-chan struct{}
}

// Result is the outcome of a community search.
type Result struct {
	// Community is the identified community (sorted node ids). It always
	// contains the query nodes and induces a connected subgraph.
	Community []graph.Node
	// Score is the objective value of Community.
	Score float64
	// Iterations is the number of node removals performed.
	Iterations int
	// RemovalOrder lists removed nodes in order (only when TrackOrder).
	RemovalOrder []graph.Node
	// TimedOut reports whether the search stopped on Options.Timeout.
	TimedOut bool
}

// Search runs the selected variant on a map-backed Graph. It packs a CSR
// snapshot and delegates to SearchCSR; callers answering many queries
// against one graph should build the snapshot once and call SearchCSR /
// SearchComponentCSR themselves (internal/engine does).
func Search(g *graph.Graph, q []graph.Node, variant Variant, opts Options) (*Result, error) {
	return SearchCSR(graph.NewCSR(g), q, variant, opts)
}

// SearchComponent runs the selected variant on a precomputed connected
// component of g (see SearchComponentCSR for the component contract). It
// is a thin wrapper that packs a CSR snapshot per call.
func SearchComponent(g *graph.Graph, q, comp []graph.Node, variant Variant, opts Options) (*Result, error) {
	return SearchComponentCSR(graph.NewCSR(g), q, comp, variant, opts)
}

// SearchCSR runs the selected variant against a packed snapshot: it
// validates the query, extracts the sorted connected component containing
// it, and peels.
func SearchCSR(c *graph.CSR, q []graph.Node, variant Variant, opts Options) (*Result, error) {
	comp, err := queryComponent(c, q)
	if err != nil {
		return nil, err
	}
	return SearchComponentCSR(c, q, comp, variant, opts)
}

// SearchComponentCSR runs the selected variant on a precomputed connected
// component. comp must be the sorted connected component of the snapshot
// containing every query node — exactly what queryComponent returns.
// Callers that serve many queries against one graph (internal/engine)
// precompute the component partition once and skip the per-query BFS +
// sort; comp is only read, so one slice may serve concurrent searches.
func SearchComponentCSR(c *graph.CSR, q, comp []graph.Node, variant Variant, opts Options) (*Result, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	switch variant {
	case VariantNCA:
		return runNCA(c, q, comp, opts, pickLambda)
	case VariantNCADR:
		return runNCA(c, q, comp, opts, pickTheta)
	case VariantFPA:
		return runFPA(c, q, comp, opts, true)
	case VariantFPADMG:
		return runFPA(c, q, comp, opts, false)
	}
	return nil, errors.New("dmcs: unknown variant")
}

// NCA runs the Non-articulation Cancellation Algorithm (Section 5.4).
func NCA(g *graph.Graph, q []graph.Node, opts Options) (*Result, error) {
	return Search(g, q, VariantNCA, opts)
}

// NCADR runs NCA with the density-ratio pick (Section 6.2.5).
func NCADR(g *graph.Graph, q []graph.Node, opts Options) (*Result, error) {
	return Search(g, q, VariantNCADR, opts)
}

// FPA runs the Fast Peeling Algorithm (Section 5.5, Algorithm 2).
func FPA(g *graph.Graph, q []graph.Node, opts Options) (*Result, error) {
	return Search(g, q, VariantFPA, opts)
}

// FPADMG runs FPA with the density-modularity-gain pick (Section 6.2.5).
func FPADMG(g *graph.Graph, q []graph.Node, opts Options) (*Result, error) {
	return Search(g, q, VariantFPADMG, opts)
}

// peelState drives one peel: a CSRView maintains the alive subgraph and
// its sufficient statistics (w_C, d_S) incrementally over the packed
// arrays; peelState adds the removal trace, the best intermediate
// subgraph seen so far, and deadline/cancellation polling. Statistics are
// floats so the same code path serves unweighted graphs (where they are
// exact integers) and the weighted Definition 2.
type peelState struct {
	c     *graph.CSR
	v     *graph.CSRView
	wG    float64   // total edge weight of G (|E| when unweighted)
	wdeg  []float64 // cached node weights d_v, shared with the snapshot
	opts  Options
	comp  []graph.Node // initial component (node universe of the search)
	trace []graph.Node // removal order
	// best intermediate subgraph = comp minus trace[:bestIdx]
	bestIdx   int
	bestScore float64
	deadline  time.Time
	timedOut  bool
}

func newPeelState(c *graph.CSR, comp []graph.Node, opts Options) *peelState {
	s := &peelState{
		c:    c,
		v:    graph.NewCSRViewOf(c, comp),
		wG:   c.TotalWeight(),
		wdeg: c.WeightedDegrees(),
		opts: opts,
		comp: comp,
	}
	s.bestScore = s.score()
	if opts.Timeout > 0 {
		s.deadline = time.Now().Add(opts.Timeout)
	}
	return s
}

// kOf returns the (weighted) degree of u into the alive subgraph — the
// k_{v,S} of Definitions 5–7. O(1) unweighted, O(deg) weighted, straight
// from the packed weights.
func (s *peelState) kOf(u graph.Node) float64 { return s.v.WeightedDegreeIn(u) }

// dOf returns u's node weight (its weighted degree in G).
func (s *peelState) dOf(u graph.Node) float64 { return s.wdeg[u] }

// score evaluates the selection objective on the current alive subgraph.
func (s *peelState) score() float64 { return scoreView(s.v, s.wG, s.opts) }

// scoreView evaluates the selection objective on a view's alive subgraph
// from its incrementally maintained sufficient statistics. It is the
// single scoring site shared by the peel loop and fpaWithPruning's
// phase-1 prefix scan, so every code path scores with the same formula.
func scoreView(v *graph.CSRView, wG float64, opts Options) float64 {
	wC, dS, size := v.InternalWeight(), v.NodeWeightSum(), v.NumAlive()
	switch opts.Objective {
	case ClassicModularity:
		return modularity.ClassicPartsF(wC, dS, wG)
	case GeneralizedModularityDensity:
		chi := opts.Chi
		if chi == 0 {
			chi = 1
		}
		return modularity.GeneralizedDensityPartsF(wC, dS, wG, size, chi)
	default:
		return modularity.DensityPartsF(wC, dS, wG, size)
	}
}

// remove deletes u (the view updates w_C and d_S) and records the new
// subgraph as best when it scores at least as well (Algorithm 2 line 13
// uses ≥, which prefers the smaller of equally good communities).
func (s *peelState) remove(u graph.Node) {
	s.v.Remove(u)
	s.trace = append(s.trace, u)
	if sc := s.score(); sc >= s.bestScore {
		s.bestScore = sc
		s.bestIdx = len(s.trace)
	}
}

// expired polls the cancellation channel and the deadline (cheaply, only
// when they are set).
func (s *peelState) expired() bool {
	if s.timedOut {
		return true
	}
	if s.opts.Cancel != nil {
		select {
		case <-s.opts.Cancel:
			s.timedOut = true
			return true
		default:
		}
	}
	if s.deadline.IsZero() {
		return false
	}
	if time.Now().After(s.deadline) {
		s.timedOut = true
	}
	return s.timedOut
}

// result reconstructs the best intermediate subgraph.
func (s *peelState) result() *Result {
	dead := make(map[graph.Node]bool, s.bestIdx)
	for _, u := range s.trace[:s.bestIdx] {
		dead[u] = true
	}
	community := make([]graph.Node, 0, len(s.comp)-s.bestIdx)
	for _, u := range s.comp {
		if !dead[u] {
			community = append(community, u)
		}
	}
	r := &Result{
		Community:  community,
		Score:      s.bestScore,
		Iterations: len(s.trace),
		TimedOut:   s.timedOut,
	}
	if s.opts.TrackOrder {
		r.RemovalOrder = append([]graph.Node(nil), s.trace...)
	}
	return r
}

// queryComponent validates the query and returns the connected component
// containing it, sorted. One BFS from the first query node both checks
// connectivity of Q and enumerates the component.
func queryComponent(c *graph.CSR, q []graph.Node) ([]graph.Node, error) {
	if len(q) == 0 {
		return nil, ErrEmptyQuery
	}
	for _, u := range q {
		if u < 0 || int(u) >= c.NumNodes() {
			return nil, errOutOfRange
		}
	}
	comp, dist := c.Component(q[0])
	for _, u := range q[1:] {
		if dist[u] == graph.INF {
			return nil, ErrDisconnected
		}
	}
	return comp, nil
}

func sortNodes(a []graph.Node) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
