// Package wal is the durability layer of the engine: a CRC32C-framed,
// length-prefixed write-ahead log of applied graph.Delta batches plus
// checkpointed snapshots of the packed CSR and component version
// vector, so a process that dies — cleanly or mid-write — restarts into
// exactly the graph state of its last durable epoch.
//
// The contract, end to end:
//
//   - Engine.Apply appends a record BEFORE publishing the new snapshot;
//     an append failure fails the Apply, so no un-logged state is ever
//     served or acknowledged.
//   - Records carry strictly sequential epochs. Recovery loads the
//     newest valid checkpoint and replays the log suffix after it;
//     because the merge pipeline is deterministic, replay reproduces
//     the pre-crash snapshots bit-for-bit (each record's logged
//     component stamps are re-derived and verified during replay).
//   - A bad frame at the tail of the LAST segment is a torn write: the
//     log is truncated at the frame start and everything before it
//     recovers. A bad frame anywhere else — or an epoch gap — is real
//     corruption, and Open refuses rather than serve a divergent graph.
//
// Fsync policy decides what "durable" means: SyncAlways survives power
// loss at one fsync per Apply; SyncInterval batches fsyncs on a timer,
// so an acknowledged Apply survives process death (the OS has the
// bytes) but the tail since the last sync may be lost to power failure;
// SyncOff never fsyncs. DurableEpoch reports the conservative bound.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dmcs/internal/faultinject"
)

// SyncPolicy selects when the log fsyncs its active segment.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append; Append does not return (and
	// therefore Apply does not acknowledge) until the record is on disk.
	SyncAlways SyncPolicy = iota
	// SyncInterval appends to the OS buffer and fsyncs on a background
	// timer (Options.Interval). The default.
	SyncInterval
	// SyncOff never fsyncs (Close still flushes file handles).
	SyncOff
)

// ParseSyncPolicy maps the -fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return "unknown"
}

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if absent). It holds the log
	// segments (wal-<firstEpoch>.log) and checkpoints
	// (checkpoint-<epoch>.ckpt).
	Dir string
	// Policy is the fsync policy; zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval.
	// 0 means 50ms.
	Interval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size.
	// 0 means 64 MiB. Rotation bounds how much log a checkpoint can
	// prune and how much one recovery scan reads per file.
	SegmentBytes int64
}

func (o *Options) defaults() {
	if o.Interval == 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
}

// ErrTornWrite is the injection sentinel for torn writes: arming
// faultinject.WALAppend (or CheckpointWrite) with this error makes the
// log deliberately leave a truncated frame (or checkpoint) on disk
// before failing, producing exactly the disk image of a crash mid-write
// without killing the process. It is also wrapped in the resulting
// append error.
var ErrTornWrite = errors.New("wal: torn write injected")

// ErrCorrupt marks unrecoverable log damage: a bad frame that is not at
// the tail of the last segment, or an epoch sequence gap. Open refuses
// with it; operators restore from a checkpoint/backup rather than let
// the engine serve a divergent graph.
var ErrCorrupt = errors.New("wal: log corrupt")

// ErrLogFailed is returned by Append and Sync after the log has hit an
// unrecoverable write error (including an injected torn write): the
// on-disk tail is no longer trustworthy for further appends, so the log
// fails stop — every later Apply fails too — instead of appending valid
// frames after garbage, which recovery would have to refuse wholesale.
var ErrLogFailed = errors.New("wal: log failed; restart to recover")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// Log is an open write-ahead log. One writer at a time appends (the
// engine serializes Applies already; the log's own mutex makes misuse
// safe rather than fast), checkpoints may be written concurrently with
// appends, and the epoch accessors are wait-free.
type Log struct {
	opts Options
	dir  string

	mu       sync.Mutex
	seg      *os.File // active segment, positioned at its end
	segSize  int64
	segFirst uint64 // epoch the active segment is named by
	buf      []byte // reusable frame-encode buffer
	failed   bool   // sticky: an append left untrustworthy bytes on disk
	closed   bool

	appended atomic.Uint64 // epoch of the last fully appended record
	synced   atomic.Uint64 // epoch of the last record known fsynced
	lastCkpt atomic.Uint64 // epoch of the newest successful checkpoint
	hasCkpt  atomic.Bool

	syncErrs atomic.Uint64 // background fsync failures (observability)

	flushStop chan struct{}
	flushDone chan struct{}
}

// segmentName returns the file name of the segment whose first record
// has the given epoch. Fixed-width hex keeps lexicographic order equal
// to epoch order, so recovery can sort by name.
func segmentName(firstEpoch uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstEpoch)
}

// checkpointName returns the file name of the checkpoint at epoch.
func checkpointName(epoch uint64) string {
	return fmt.Sprintf("checkpoint-%016x.ckpt", epoch)
}

// Append durably stages one record. The record's epoch must be exactly
// AppendedEpoch()+1 — the log enforces the strict sequencing recovery
// depends on. Under SyncAlways the call returns only after fsync; under
// SyncInterval/SyncOff it returns once the OS has the bytes (see the
// policy docs for what that guarantees). On error nothing was durably
// appended: either the partial write was truncated away, or the log has
// failed stop and every subsequent Append fails as well.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return ErrLogFailed
	}
	if want := l.appended.Load() + 1; rec.Epoch != want {
		return fmt.Errorf("wal: append epoch %d out of sequence (want %d)", rec.Epoch, want)
	}
	if err := faultinject.Fire(faultinject.WALAppend); err != nil {
		if errors.Is(err, ErrTornWrite) {
			return l.tearAppend(&rec)
		}
		return fmt.Errorf("wal: append: %w", err)
	}

	frame := l.encodeFrame(&rec)
	if l.segSize > 0 && l.segSize+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotate(rec.Epoch); err != nil {
			return err
		}
	}
	if err := l.writeFrame(frame); err != nil {
		return err
	}
	l.appended.Store(rec.Epoch)
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			// The record is appended (recovery will replay it) but not
			// acknowledged as durable; fail the Apply so the caller never
			// serves state the disk may not have.
			l.failed = true
			return fmt.Errorf("wal: fsync: %w", err)
		}
	case SyncOff:
		// No stronger guarantee exists to wait for; the append itself is
		// the durability point.
		l.synced.Store(rec.Epoch)
	}
	return nil
}

// encodeFrame builds the record's frame in the log's reusable buffer.
func (l *Log) encodeFrame(rec *Record) []byte {
	buf := l.buf[:0]
	var hdr [frameHeaderSize]byte
	buf = append(buf, hdr[:]...)
	buf = appendRecordPayload(buf, rec)
	sealFrame(buf)
	l.buf = buf
	return buf
}

// writeFrame writes one sealed frame to the active segment. A short or
// failed write is undone by truncating back to the pre-write size; if
// even that fails, the log fails stop.
func (l *Log) writeFrame(frame []byte) error {
	n, err := l.seg.Write(frame)
	if err != nil || n != len(frame) {
		if terr := l.seg.Truncate(l.segSize); terr != nil {
			l.failed = true
			return fmt.Errorf("wal: write failed (%v) and truncate failed (%v): %w", err, terr, ErrLogFailed)
		}
		if _, serr := l.seg.Seek(l.segSize, 0); serr != nil {
			l.failed = true
			return fmt.Errorf("wal: write failed (%v) and seek failed (%v): %w", err, serr, ErrLogFailed)
		}
		return fmt.Errorf("wal: write: %w", err)
	}
	l.segSize += int64(len(frame))
	return nil
}

// tearAppend is the injected torn-write path: it writes the frame
// header plus a prefix of the payload — the exact disk image of a crash
// mid-write — then fails the log stop. Only recovery (which truncates
// the torn tail) makes the directory appendable again.
func (l *Log) tearAppend(rec *Record) error {
	frame := l.encodeFrame(rec)
	cut := frameHeaderSize + (len(frame)-frameHeaderSize)/2
	if _, err := l.seg.Write(frame[:cut]); err != nil {
		l.failed = true
		return fmt.Errorf("wal: torn-write injection: %w", err)
	}
	l.segSize += int64(cut)
	l.failed = true
	return fmt.Errorf("wal: append epoch %d: %w", rec.Epoch, ErrTornWrite)
}

// rotate closes the active segment (fsyncing it regardless of policy —
// a sealed segment is immutable history) and starts a new one whose
// name records the epoch of its first record.
func (l *Log) rotate(firstEpoch uint64) error {
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(firstEpoch)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		l.failed = true
		return fmt.Errorf("wal: rotate open: %w", err)
	}
	l.seg = f
	l.segSize = 0
	l.segFirst = firstEpoch
	if err := syncDir(l.dir); err != nil {
		return err
	}
	return nil
}

// Sync fsyncs the active segment, advancing the durable epoch to
// everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return ErrLogFailed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := faultinject.Fire(faultinject.WALSync); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := l.seg.Sync(); err != nil {
		return err
	}
	l.synced.Store(l.appended.Load())
	return nil
}

// flusher is the SyncInterval background goroutine: group-commit by
// timer. Sync failures are counted, not fatal — the next Append under
// SyncAlways semantics they are fatal, but interval mode's contract is
// already "tail may be lost"; persistent failures surface via
// SyncErrors and, eventually, a failing checkpoint.
func (l *Log) flusher() {
	defer close(l.flushDone)
	tick := time.NewTicker(l.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-tick.C:
			l.mu.Lock()
			if !l.closed && !l.failed && l.synced.Load() != l.appended.Load() {
				if err := l.syncLocked(); err != nil {
					l.syncErrs.Add(1)
				}
			}
			l.mu.Unlock()
		}
	}
}

// AppendedEpoch returns the epoch of the last fully appended record (0
// before any append in a fresh directory).
func (l *Log) AppendedEpoch() uint64 { return l.appended.Load() }

// DurableEpoch returns the newest epoch the log considers durable under
// its policy: last-fsynced under SyncAlways/SyncInterval, last-appended
// under SyncOff.
func (l *Log) DurableEpoch() uint64 { return l.synced.Load() }

// LastCheckpoint returns the epoch of the newest successful checkpoint
// and whether one exists.
func (l *Log) LastCheckpoint() (uint64, bool) { return l.lastCkpt.Load(), l.hasCkpt.Load() }

// SyncErrors returns how many background fsyncs have failed.
func (l *Log) SyncErrors() uint64 { return l.syncErrs.Load() }

// Dir returns the data directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the log. Safe to call once; the log is
// unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	if !l.failed && l.opts.Policy != SyncOff {
		if err := l.seg.Sync(); err != nil {
			firstErr = err
		} else {
			l.synced.Store(l.appended.Load())
		}
	}
	if err := l.seg.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable. Required for the rename-based checkpoint commit and segment
// creation on filesystems where metadata is not ordered with data.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close dir: %w", cerr)
	}
	return nil
}
