package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"dmcs/internal/graph"
)

// Frame layout, the only thing the on-disk log is made of:
//
//	| u32 payloadLen (LE) | u32 crc32c(payload) (LE) | payload |
//
// The CRC is Castagnoli (crc32c) over the payload bytes only. A frame
// whose length field, checksum, or payload decode fails is a bad frame;
// recovery's tolerance for bad frames depends on where they sit (see
// scanSegment in recover.go).
//
// Record payload layout (recTypeDelta):
//
//	| u8 recType | uvarint epoch | uvarint nStamps | nStamps × (uvarint key, uvarint ver) | delta batch (graph.AppendDeltas) |
//
// Compatibility rule: recType is a frozen code point. A future record
// kind gets a NEW recType byte and old decoders reject it loudly
// (ErrCodec), never skip it silently — skipping would desynchronize the
// epoch sequence check. See CONTRIBUTING.md "Adding a WAL record type".

// frameHeaderSize is the fixed prefix of every frame: payload length
// plus checksum.
const frameHeaderSize = 8

// maxPayloadBytes bounds a frame's declared payload length. A corrupt
// length field is overwhelmingly likely to decode as garbage far above
// any real record; the cap turns that into an immediate bad frame
// instead of a giant allocation.
const maxPayloadBytes = 1 << 28

// recTypeDelta is the only record kind today: one applied Delta batch.
const recTypeDelta = 1

// castagnoli is the crc32c table shared by frames and checkpoint files.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCodec is wrapped by every frame- or record-level decode failure.
var ErrCodec = errors.New("wal: malformed record")

// ComponentStamp is one entry of a record's per-component version
// stamp: the stable identity and new version (== the record's epoch) of
// a component the batch touched. Stamps are redundant with deterministic
// replay — replaying the ops reproduces them — which is exactly why they
// are logged: recovery re-derives the stamps and verifies them against
// the logged ones, turning any replay divergence into a loud error
// instead of a silently wrong cache-invalidation state. They are also
// the per-component clock a future shard replica consumes for
// reconciliation without replaying graph state (ROADMAP: sharded
// scale-out).
type ComponentStamp struct {
	Key, Ver uint64
}

// Record is one durable Apply: the epoch its snapshot published as, the
// version stamps of the components it touched, and the staged ops
// exactly as the caller handed them to Apply (pre-normalization; replay
// renormalizes identically).
type Record struct {
	Epoch  uint64
	Stamps []ComponentStamp
	Ops    []graph.Delta
}

// appendRecordPayload appends rec's payload encoding (no frame header)
// to dst. Pure append-to-parameter, no locks, no allocation beyond the
// caller's buffer growth — this is the WAL's per-Apply encoding kernel.
//
//dmcs:hotpath
func appendRecordPayload(dst []byte, rec *Record) []byte {
	dst = append(dst, recTypeDelta)
	dst = binary.AppendUvarint(dst, rec.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Stamps)))
	for _, st := range rec.Stamps {
		dst = binary.AppendUvarint(dst, st.Key)
		dst = binary.AppendUvarint(dst, st.Ver)
	}
	return graph.AppendDeltas(dst, rec.Ops)
}

// decodeRecordPayload decodes a full record payload. The whole payload
// must be consumed; trailing bytes mean corruption that happened to
// keep the checksum valid is still rejected structurally.
func decodeRecordPayload(b []byte) (Record, error) {
	var rec Record
	if len(b) == 0 {
		return rec, fmt.Errorf("%w: empty payload", ErrCodec)
	}
	if b[0] != recTypeDelta {
		return rec, fmt.Errorf("%w: unknown record type %d", ErrCodec, b[0])
	}
	off := 1
	epoch, k := binary.Uvarint(b[off:])
	if k <= 0 {
		return rec, fmt.Errorf("%w: epoch", ErrCodec)
	}
	off += k
	nStamps, k := binary.Uvarint(b[off:])
	if k <= 0 || nStamps > maxPayloadBytes {
		return rec, fmt.Errorf("%w: stamp count", ErrCodec)
	}
	off += k
	stamps := make([]ComponentStamp, 0, nStamps)
	for i := uint64(0); i < nStamps; i++ {
		key, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return rec, fmt.Errorf("%w: stamp %d key", ErrCodec, i)
		}
		off += k
		ver, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return rec, fmt.Errorf("%w: stamp %d version", ErrCodec, i)
		}
		off += k
		stamps = append(stamps, ComponentStamp{Key: key, Ver: ver})
	}
	ops, k, err := graph.DecodeDeltas(b[off:], nil)
	if err != nil {
		return rec, fmt.Errorf("%w: ops: %v", ErrCodec, err)
	}
	off += k
	if off != len(b) {
		return rec, fmt.Errorf("%w: %d trailing payload bytes", ErrCodec, len(b)-off)
	}
	rec.Epoch = epoch
	rec.Stamps = stamps
	rec.Ops = ops
	return rec, nil
}

// appendFrame wraps payload (which must start at payloadStart within
// dst — the frame encoder writes the payload in place first, then seals
// it) with the length/CRC header. Callers lay out the frame as:
//
//	dst = append(dst, zeroHeader...)       // 8 placeholder bytes
//	dst = appendRecordPayload(dst, rec)    // payload in place
//	sealFrame(dst[frameStart:])            // backfill header
//
//dmcs:hotpath
func sealFrame(frame []byte) {
	payload := frame[frameHeaderSize:]
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
}

// parseFrame reads one frame from the front of b. It returns the
// payload and total frame length on success. A frame that is truncated,
// oversized, or checksum-corrupt returns an ErrCodec-wrapped error; the
// caller decides whether that means "torn tail" or "corrupt log".
func parseFrame(b []byte) (payload []byte, frameLen int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, fmt.Errorf("%w: truncated frame header (%d bytes)", ErrCodec, len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:])
	if n > maxPayloadBytes {
		return nil, 0, fmt.Errorf("%w: absurd payload length %d", ErrCodec, n)
	}
	total := frameHeaderSize + int(n)
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrCodec, len(b)-frameHeaderSize, n)
	}
	payload = b[frameHeaderSize:total]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:]); got != want {
		return nil, 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCodec, got, want)
	}
	return payload, total, nil
}
