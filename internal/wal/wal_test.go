package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
)

// testRecord builds a small, distinguishable record for epoch e.
func testRecord(e uint64) Record {
	return Record{
		Epoch:  e,
		Stamps: []ComponentStamp{{Key: e * 10, Ver: e}, {Key: e*10 + 1, Ver: e}},
		Ops: []graph.Delta{
			{Op: graph.DeltaAddEdge, U: graph.Node(e), V: graph.Node(e + 1), W: 1},
			{Op: graph.DeltaRemoveEdge, U: 0, V: graph.Node(e)},
		},
	}
}

// testCheckpoint builds a structurally valid checkpoint at epoch e over a
// tiny two-component graph.
func testCheckpoint(e uint64) *Checkpoint {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	return &Checkpoint{
		Epoch:       e,
		NextCompKey: 2,
		CSR:         graph.NewCSR(b.Build()),
		CompID:      []int32{0, 0, 1, 1},
		CompKeys:    []uint64{0, 1},
		CompVers:    []uint64{0, e},
		CompWG:      []float64{1, 1},
	}
}

func mustOpen(t *testing.T, opts Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	if rec.Checkpoint != nil || len(rec.Records) != 0 || rec.LastEpoch != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	want := []Record{testRecord(1), testRecord(2), testRecord(3)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("append %d: %v", r.Epoch, err)
		}
	}
	if l.AppendedEpoch() != 3 || l.DurableEpoch() != 3 {
		t.Fatalf("appended=%d durable=%d, want 3/3", l.AppendedEpoch(), l.DurableEpoch())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2 := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	defer l2.Close()
	if rec2.LastEpoch != 3 || rec2.TruncatedBytes != 0 {
		t.Fatalf("recovered last=%d torn=%d", rec2.LastEpoch, rec2.TruncatedBytes)
	}
	if !reflect.DeepEqual(rec2.Records, want) {
		t.Fatalf("records mismatch:\n got %+v\nwant %+v", rec2.Records, want)
	}
	// The recovered log appends where the old one stopped.
	if err := l2.Append(testRecord(4)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestAppendSequenceEnforced(t *testing.T) {
	l, _ := mustOpen(t, Options{Dir: t.TempDir(), Policy: SyncOff})
	defer l.Close()
	if err := l.Append(testRecord(2)); err == nil {
		t.Fatal("appending epoch 2 to an empty log succeeded")
	}
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(3)); err == nil {
		t.Fatal("epoch gap accepted")
	}
	if err := l.Append(testRecord(1)); err == nil {
		t.Fatal("epoch replay accepted")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record larger than 64 bytes forces a rotation.
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncOff, SegmentBytes: 64})
	const n = 12
	for e := uint64(1); e <= n; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			t.Fatalf("append %d: %v", e, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	l2, rec := mustOpen(t, Options{Dir: dir, Policy: SyncOff})
	defer l2.Close()
	if rec.Segments != len(segs) || rec.LastEpoch != n || len(rec.Records) != n {
		t.Fatalf("recovered segments=%d last=%d records=%d", rec.Segments, rec.LastEpoch, len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Epoch != uint64(i+1) {
			t.Fatalf("record %d has epoch %d", i, r.Epoch)
		}
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	for e := uint64(1); e <= 3; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			t.Fatal(err)
		}
	}
	// Injected torn write: epoch 4's frame is half-written, exactly the
	// disk image of a crash mid-append.
	defer faultinject.Reset()
	faultinject.Set(faultinject.WALAppend, faultinject.Injection{Err: ErrTornWrite})
	err := l.Append(testRecord(4))
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("append under torn injection: %v", err)
	}
	// Fail-stop: the on-disk tail is garbage, later appends must refuse.
	faultinject.Reset()
	if err := l.Append(testRecord(4)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after torn write: %v (want ErrLogFailed)", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("sync after torn write: %v (want ErrLogFailed)", err)
	}
	l.Close()

	l2, rec := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	if rec.LastEpoch != 3 || len(rec.Records) != 3 {
		t.Fatalf("recovered last=%d records=%d, want 3", rec.LastEpoch, len(rec.Records))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("recovery reported no torn bytes")
	}
	// The torn tail is gone from disk: append epoch 4 and recover again.
	if err := l2.Append(testRecord(4)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	l2.Close()
	l3, rec3 := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	defer l3.Close()
	if rec3.LastEpoch != 4 || rec3.TruncatedBytes != 0 {
		t.Fatalf("second recovery last=%d torn=%d", rec3.LastEpoch, rec3.TruncatedBytes)
	}
}

func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	// Two segments: corrupt the FIRST one's tail — recovery must refuse,
	// because a torn write can only ever be the final write of the log.
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 64})
	for e := uint64(1); e <= 6; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %v", segs)
	}
	first := segs[0] // lexicographic order == epoch order by construction
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: Open returned %v, want ErrCorrupt", err)
	}
}

func TestEpochGapRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Forge a gap: rewrite the segment with records 1 and 3.
	seg := filepath.Join(dir, segmentName(1))
	var out []byte
	for _, e := range []uint64{1, 3} {
		r := testRecord(e)
		frame := make([]byte, frameHeaderSize)
		frame = appendRecordPayload(frame, &r)
		sealFrame(frame)
		out = append(out, frame...)
	}
	if err := os.WriteFile(seg, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("epoch gap: Open returned %v, want ErrCorrupt", err)
	}
}

func TestCheckpointRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 64})
	for e := uint64(1); e <= 6; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			t.Fatal(err)
		}
	}
	cp := testCheckpoint(6)
	if err := l.WriteCheckpoint(cp); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if ep, ok := l.LastCheckpoint(); !ok || ep != 6 {
		t.Fatalf("LastCheckpoint = %d,%v", ep, ok)
	}
	// Records 7 and 8 land after the checkpoint.
	for e := uint64(7); e <= 8; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Segments wholly covered by the checkpoint were pruned: with these
	// tiny segments two records fit per file, so everything before the
	// checkpoint-time active segment (first epoch 5, holding records 5-6)
	// is gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs {
		if ep, ok := parseSegmentName(filepath.Base(s)); !ok || ep < 5 {
			t.Fatalf("segment %s survived pruning past checkpoint 6", filepath.Base(s))
		}
	}

	l2, rec := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	defer l2.Close()
	if rec.Checkpoint == nil || rec.BaseEpoch != 6 {
		t.Fatalf("recovered base=%d checkpoint=%v", rec.BaseEpoch, rec.Checkpoint)
	}
	if rec.LastEpoch != 8 || len(rec.Records) != 2 {
		t.Fatalf("recovered last=%d records=%d, want 8/2", rec.LastEpoch, len(rec.Records))
	}
	if rec.Records[0].Epoch != 7 || rec.Records[1].Epoch != 8 {
		t.Fatalf("replay suffix epochs %d,%d", rec.Records[0].Epoch, rec.Records[1].Epoch)
	}
	// The decoded checkpoint round-trips the payload byte-for-byte.
	got := AppendCheckpoint(nil, rec.Checkpoint)
	want := AppendCheckpoint(nil, cp)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("checkpoint payload did not round-trip byte-identically")
	}
}

func TestTornCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	for e := uint64(1); e <= 4; e++ {
		if err := l.Append(testRecord(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}
	// Torn checkpoint at epoch 4, under its FINAL name: the nastiest
	// crash placement — a plausible-looking newest checkpoint that fails
	// its checksum.
	defer faultinject.Reset()
	faultinject.Set(faultinject.CheckpointWrite, faultinject.Injection{Err: ErrTornWrite})
	if err := l.WriteCheckpoint(testCheckpoint(4)); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn checkpoint write: %v", err)
	}
	faultinject.Reset()
	if _, err := os.Stat(filepath.Join(dir, checkpointName(4))); err != nil {
		t.Fatalf("torn checkpoint not on disk: %v", err)
	}
	// The previous checkpoint stays authoritative.
	if ep, ok := l.LastCheckpoint(); !ok || ep != 2 {
		t.Fatalf("LastCheckpoint after torn write = %d,%v (want 2)", ep, ok)
	}
	l.Close()

	l2, rec := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	defer l2.Close()
	if rec.SkippedCheckpoints != 1 {
		t.Fatalf("SkippedCheckpoints = %d, want 1", rec.SkippedCheckpoints)
	}
	if rec.BaseEpoch != 2 || rec.LastEpoch != 4 || len(rec.Records) != 2 {
		t.Fatalf("recovered base=%d last=%d records=%d, want 2/4/2", rec.BaseEpoch, rec.LastEpoch, len(rec.Records))
	}
}

func TestCheckpointWithoutLogRecordsRefusedByCaller(t *testing.T) {
	// A directory holding log records but no checkpoint cannot anchor the
	// epoch sequence (the engine layer refuses it); at the wal layer the
	// scan itself accepts any strictly sequential run from base 0, so 1..n
	// recovers. This test pins the wal-layer behavior the engine builds on.
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Policy: SyncAlways})
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if rec.Checkpoint != nil || rec.BaseEpoch != 0 || rec.LastEpoch != 1 {
		t.Fatalf("recovered %+v", rec)
	}
}

func TestSyncIntervalAdvancesDurableEpoch(t *testing.T) {
	l, _ := mustOpen(t, Options{Dir: t.TempDir(), Policy: SyncInterval, Interval: time.Millisecond})
	defer l.Close()
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.DurableEpoch() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("durable epoch stuck at %d", l.DurableEpoch())
		}
		time.Sleep(time.Millisecond)
	}
}
