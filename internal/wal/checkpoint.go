package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
)

// Checkpoint is a complete, self-contained image of one engine snapshot:
// the packed CSR plus the component partition and its version vector.
// Recovery = newest valid checkpoint + replay of the log records after
// its epoch. The same encoding doubles as the engine's canonical state
// dump — two engines hold bit-identical graph state iff their encoded
// checkpoints are byte-equal — which is what the kill-crash differential
// harness compares. (Per-component stale-read ancestry is deliberately
// NOT part of the image: it is a bounded serving-side cache of history,
// empty after every recovery, and including it would make the dump
// depend on how a state was reached rather than what it is.)
type Checkpoint struct {
	// Epoch is the graph version this image captures.
	Epoch uint64
	// NextCompKey is the engine's next unissued component identity;
	// persisting it keeps component keys unique across restarts.
	NextCompKey uint64
	// CSR is the packed adjacency with its cached aggregates.
	CSR *graph.CSR
	// CompID maps node id -> component id (len == CSR.NumNodes()).
	CompID []int32
	// CompKeys, CompVers, and CompWG are the per-component version
	// vector: stable identity, last-touched epoch, and the frozen
	// normalization weight w_G (parallel slices, one entry per component).
	CompKeys []uint64
	CompVers []uint64
	CompWG   []float64
}

// checkpointMagic brands checkpoint files; the trailing digit is the
// format version.
const checkpointMagic = "DMCSCKP1"

// AppendCheckpoint appends cp's payload encoding to dst and returns the
// extended slice. This is the canonical state encoding (no file header,
// no checksum — WriteCheckpoint adds those for the on-disk form).
func AppendCheckpoint(dst []byte, cp *Checkpoint) []byte {
	dst = binary.AppendUvarint(dst, cp.Epoch)
	dst = binary.AppendUvarint(dst, cp.NextCompKey)
	dst = graph.AppendCSR(dst, cp.CSR)
	dst = binary.AppendUvarint(dst, uint64(len(cp.CompKeys)))
	for _, id := range cp.CompID {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	for _, k := range cp.CompKeys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	for _, v := range cp.CompVers {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	for _, w := range cp.CompWG {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w))
	}
	return dst
}

// DecodeCheckpoint decodes an AppendCheckpoint payload, validating the
// cross-field invariants recovery depends on: the component id map
// covers every node, ids index the version vector, versions never
// exceed the checkpoint epoch, and every component key is below
// NextCompKey. The whole buffer must be consumed.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	cp := &Checkpoint{}
	epoch, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, fmt.Errorf("%w: checkpoint epoch", ErrCodec)
	}
	off := k
	nck, k := binary.Uvarint(b[off:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: checkpoint next component key", ErrCodec)
	}
	off += k
	csr, k, err := graph.DecodeCSR(b[off:])
	if err != nil {
		return nil, fmt.Errorf("%w: checkpoint csr: %v", ErrCodec, err)
	}
	off += k
	nc64, k := binary.Uvarint(b[off:])
	if k <= 0 || nc64 > uint64(csr.NumNodes())+1 {
		return nil, fmt.Errorf("%w: checkpoint component count", ErrCodec)
	}
	off += k
	n, nc := csr.NumNodes(), int(nc64)
	if n > 0 && nc == 0 {
		return nil, fmt.Errorf("%w: checkpoint has nodes but no components", ErrCodec)
	}
	need := 4*n + (8+8+8)*nc
	if len(b)-off != need {
		return nil, fmt.Errorf("%w: checkpoint body is %d bytes, want %d", ErrCodec, len(b)-off, need)
	}
	cp.Epoch = epoch
	cp.NextCompKey = nck
	cp.CSR = csr
	cp.CompID = make([]int32, n)
	for i := range cp.CompID {
		id := int32(binary.LittleEndian.Uint32(b[off:]))
		if id < 0 || int(id) >= nc {
			return nil, fmt.Errorf("%w: checkpoint component id %d of node %d out of range", ErrCodec, id, i)
		}
		cp.CompID[i] = id
		off += 4
	}
	cp.CompKeys = make([]uint64, nc)
	for i := range cp.CompKeys {
		cp.CompKeys[i] = binary.LittleEndian.Uint64(b[off:])
		if cp.CompKeys[i] >= nck {
			return nil, fmt.Errorf("%w: checkpoint component key %d not below next key %d", ErrCodec, cp.CompKeys[i], nck)
		}
		off += 8
	}
	cp.CompVers = make([]uint64, nc)
	for i := range cp.CompVers {
		cp.CompVers[i] = binary.LittleEndian.Uint64(b[off:])
		if cp.CompVers[i] > epoch {
			return nil, fmt.Errorf("%w: checkpoint component version %d beyond epoch %d", ErrCodec, cp.CompVers[i], epoch)
		}
		off += 8
	}
	cp.CompWG = make([]float64, nc)
	for i := range cp.CompWG {
		cp.CompWG[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return cp, nil
}

// WriteCheckpoint atomically persists cp and prunes history it
// supersedes: the payload goes to a temp file, is fsynced, renamed to
// its final checkpoint-<epoch>.ckpt name, and the directory is fsynced
// — so a crash at any point leaves either the old checkpoint set or the
// new one, never a half-written file under a valid name. On success,
// older checkpoints and the log segments wholly covered by cp.Epoch are
// deleted. Concurrent with appends; serialized against other
// checkpoint writers by the caller (the engine runs at most one).
func (l *Log) WriteCheckpoint(cp *Checkpoint) error {
	payload := AppendCheckpoint(nil, cp)
	if err := faultinject.Fire(faultinject.CheckpointWrite); err != nil {
		if errors.Is(err, ErrTornWrite) {
			return l.tearCheckpoint(cp, payload)
		}
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	final := filepath.Join(l.dir, checkpointName(cp.Epoch))
	if err := writeFileSynced(final+".tmp", checkpointFileBytes(payload)); err != nil {
		return err
	}
	if err := os.Rename(final+".tmp", final); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.lastCkpt.Store(cp.Epoch)
	l.hasCkpt.Store(true)
	l.prune(cp.Epoch)
	return nil
}

// tearCheckpoint is the injected torn-checkpoint path: a truncated image
// lands under the FINAL name (the worst crash placement — a plausible-
// looking but unreadable newest checkpoint), and the previous checkpoint
// must remain authoritative. Nothing is pruned.
func (l *Log) tearCheckpoint(cp *Checkpoint, payload []byte) error {
	full := checkpointFileBytes(payload)
	torn := full[:len(full)/2]
	final := filepath.Join(l.dir, checkpointName(cp.Epoch))
	if err := os.WriteFile(final, torn, 0o644); err != nil {
		return fmt.Errorf("wal: torn-checkpoint injection: %w", err)
	}
	return fmt.Errorf("wal: checkpoint epoch %d: %w", cp.Epoch, ErrTornWrite)
}

// checkpointFileBytes wraps a payload in the on-disk checkpoint file
// form: magic, length, crc32c, payload.
func checkpointFileBytes(payload []byte) []byte {
	out := make([]byte, 0, len(checkpointMagic)+8+len(payload))
	out = append(out, checkpointMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// parseCheckpointFile validates a checkpoint file image and returns the
// decoded checkpoint.
func parseCheckpointFile(b []byte) (*Checkpoint, error) {
	hdr := len(checkpointMagic) + 8
	if len(b) < hdr {
		return nil, fmt.Errorf("%w: checkpoint file truncated header", ErrCodec)
	}
	if string(b[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrCodec)
	}
	n := binary.LittleEndian.Uint32(b[len(checkpointMagic):])
	if int(n) != len(b)-hdr {
		return nil, fmt.Errorf("%w: checkpoint payload length %d does not match file", ErrCodec, n)
	}
	payload := b[hdr:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[len(checkpointMagic)+4:]); got != want {
		return nil, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCodec)
	}
	return DecodeCheckpoint(payload)
}

// writeFileSynced writes data to path and fsyncs it before closing.
func writeFileSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	return nil
}

// prune deletes checkpoints older than keepEpoch and log segments whose
// every record is at or below keepEpoch (a segment is covered when the
// NEXT segment starts at keepEpoch+1 or earlier). The active segment is
// never deleted. Prune failures are silent by design — leftover files
// cost disk, not correctness, and the next successful checkpoint
// retries.
func (l *Log) prune(keepEpoch uint64) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if ep, ok := parseCheckpointName(name); ok && ep < keepEpoch {
			os.Remove(filepath.Join(l.dir, name))
		}
		if ep, ok := parseSegmentName(name); ok {
			segs = append(segs, ep)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	l.mu.Lock()
	active := l.segFirst
	l.mu.Unlock()
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == active || segs[i+1] > keepEpoch+1 {
			continue
		}
		os.Remove(filepath.Join(l.dir, segmentName(segs[i])))
	}
}

// parseSegmentName extracts the first-epoch of a wal-<hex>.log name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	var ep uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), "%016x", &ep); err != nil {
		return 0, false
	}
	return ep, true
}

// parseCheckpointName extracts the epoch of a checkpoint-<hex>.ckpt name.
func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	var ep uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt"), "%016x", &ep); err != nil {
		return 0, false
	}
	return ep, true
}
