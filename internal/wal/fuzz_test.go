package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dmcs/internal/graph"
)

// fuzzLogRecords is the fixed record sequence the replay fuzzer writes;
// deterministic so every mutated image is judged against the same truth.
func fuzzLogRecords() []Record {
	recs := make([]Record, 8)
	for i := range recs {
		e := uint64(i + 1)
		recs[i] = Record{
			Epoch:  e,
			Stamps: []ComponentStamp{{Key: e, Ver: e}},
			Ops: []graph.Delta{
				{Op: graph.DeltaAddEdge, U: graph.Node(i), V: graph.Node(i + 1), W: 1},
				{Op: graph.DeltaSetWeight, U: 0, V: graph.Node(i + 2), W: float64(i) + 0.5},
			},
		}
	}
	return recs
}

// FuzzWALReplay asserts the recovery scan's core safety property: an
// arbitrary byte mutation of a valid log must either fail Open loudly
// (ErrCorrupt) or recover a strict prefix of the original record
// sequence — never a divergent one. A mutation the framing cannot detect
// mid-log does not exist by construction (CRC32C catches all single-byte
// damage), so a successful Open after mutation means the scan classified
// the damage as a torn tail and truncated it.
func FuzzWALReplay(f *testing.F) {
	f.Add(uint32(0), byte(0xff))  // frame header of the first record
	f.Add(uint32(4), byte(0x01))  // its checksum
	f.Add(uint32(9), byte(0x80))  // payload body
	f.Add(uint32(1<<16), byte(1)) // out of range: wraps to somewhere valid
	f.Add(uint32(40), byte(0))    // no-op mutation: the full log must recover

	f.Fuzz(func(t *testing.T, pos uint32, xor byte) {
		dir := t.TempDir()
		l, _, err := Open(Options{Dir: dir, Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		want := fuzzLogRecords()
		for _, r := range want {
			if err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		seg := filepath.Join(dir, segmentName(1))
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[int(pos)%len(data)] ^= xor
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		l2, rec, err := Open(Options{Dir: dir, Policy: SyncOff})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open failed with a non-corruption error: %v", err)
			}
			return // refused loudly: acceptable outcome
		}
		if len(rec.Records) > len(want) {
			t.Fatalf("recovered %d records from a %d-record log", len(rec.Records), len(want))
		}
		for i := range rec.Records {
			if !reflect.DeepEqual(rec.Records[i], want[i]) {
				t.Fatalf("record %d diverged after mutation:\n got %+v\nwant %+v", i, rec.Records[i], want[i])
			}
		}
		if xor == 0 && len(rec.Records) != len(want) {
			t.Fatalf("no-op mutation lost records: %d of %d", len(rec.Records), len(want))
		}
		// Whatever was recovered must be stable: a second recovery of the
		// (possibly truncated) directory yields the same prefix.
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, rec2, err := Open(Options{Dir: dir, Policy: SyncOff})
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		defer l3.Close()
		if !reflect.DeepEqual(rec2.Records, rec.Records) {
			t.Fatal("recovery is not idempotent")
		}
	})
}
