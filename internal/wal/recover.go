package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Recovered reports what Open found in the data directory.
type Recovered struct {
	// Checkpoint is the newest valid checkpoint, or nil for a directory
	// with none (fresh, or seeded before the first checkpoint landed).
	Checkpoint *Checkpoint
	// Records are the log records after the checkpoint, in replay order
	// with strictly sequential epochs BaseEpoch+1 .. LastEpoch.
	Records []Record
	// BaseEpoch is the checkpoint's epoch (0 with no checkpoint).
	BaseEpoch uint64
	// LastEpoch is the newest recovered epoch: BaseEpoch + len(Records).
	LastEpoch uint64
	// TruncatedBytes is how much torn tail was cut off the last segment
	// (0 for a clean log).
	TruncatedBytes int64
	// SkippedCheckpoints counts newer-but-invalid checkpoint files that
	// recovery fell past (a crash mid-checkpoint leaves at most one).
	SkippedCheckpoints int
	// Segments is how many log segments were scanned.
	Segments int
}

// Open recovers the write-ahead log in opts.Dir and returns it ready
// for appends, together with what was recovered. The directory is
// created if absent. Recovery semantics:
//
//   - The newest checkpoint that passes magic/checksum/structural
//     validation is the base; invalid newer ones (torn mid-write) are
//     skipped, never trusted.
//   - Log segments are scanned oldest-first; records at or before the
//     base epoch are skipped, the rest must form a strictly sequential
//     epoch run starting at base+1.
//   - A bad frame at the tail of the LAST segment is a torn write: the
//     segment is truncated at the bad frame's start (everything after a
//     torn frame is unreachable by the framing and is discarded with
//     it) and recovery succeeds with the prefix.
//   - A bad frame in any earlier segment, or an epoch gap, fails Open
//     with ErrCorrupt: the log's integrity cannot be established, and
//     refusing loudly beats serving a silently divergent graph.
func Open(opts Options) (*Log, *Recovered, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read dir: %w", err)
	}

	var ckptEpochs, segEpochs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Temp files are pre-commit by construction; a crash between
			// create and rename leaves one behind.
			os.Remove(filepath.Join(opts.Dir, name))
			continue
		}
		if ep, ok := parseCheckpointName(name); ok {
			ckptEpochs = append(ckptEpochs, ep)
		}
		if ep, ok := parseSegmentName(name); ok {
			segEpochs = append(segEpochs, ep)
		}
	}
	sort.Slice(ckptEpochs, func(i, j int) bool { return ckptEpochs[i] > ckptEpochs[j] })
	sort.Slice(segEpochs, func(i, j int) bool { return segEpochs[i] < segEpochs[j] })

	rec := &Recovered{Segments: len(segEpochs)}
	for _, ep := range ckptEpochs {
		data, err := os.ReadFile(filepath.Join(opts.Dir, checkpointName(ep)))
		if err != nil {
			rec.SkippedCheckpoints++
			continue
		}
		cp, err := parseCheckpointFile(data)
		if err != nil || cp.Epoch != ep {
			rec.SkippedCheckpoints++
			continue
		}
		rec.Checkpoint = cp
		rec.BaseEpoch = cp.Epoch
		break
	}

	if err := scanSegments(opts.Dir, segEpochs, rec); err != nil {
		return nil, nil, err
	}
	rec.LastEpoch = rec.BaseEpoch + uint64(len(rec.Records))

	l := &Log{opts: opts, dir: opts.Dir}
	if n := len(segEpochs); n > 0 {
		l.segFirst = segEpochs[n-1]
		path := filepath.Join(opts.Dir, segmentName(l.segFirst))
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: open active segment: %w", err)
		}
		size, err := f.Seek(0, 2)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: seek active segment: %w", err)
		}
		l.seg = f
		l.segSize = size
	} else {
		l.segFirst = rec.LastEpoch + 1
		f, err := os.OpenFile(filepath.Join(opts.Dir, segmentName(l.segFirst)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: create segment: %w", err)
		}
		l.seg = f
		if err := syncDir(opts.Dir); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	l.appended.Store(rec.LastEpoch)
	l.synced.Store(rec.LastEpoch)
	if rec.Checkpoint != nil {
		l.lastCkpt.Store(rec.BaseEpoch)
		l.hasCkpt.Store(true)
	}
	if opts.Policy == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flusher()
	}
	return l, rec, nil
}

// scanSegments walks every segment's frames in order, filling
// rec.Records and enforcing the torn-tail / mid-log-corruption rules.
func scanSegments(dir string, segEpochs []uint64, rec *Recovered) error {
	// lastSeen tracks the epoch of the previous record across segment
	// boundaries; 0 means "none yet" (epoch 0 is never logged — it is
	// the seed snapshot's version, persisted by checkpoint only).
	var lastSeen uint64
	for si, segEp := range segEpochs {
		path := filepath.Join(dir, segmentName(segEp))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read segment %s: %w", segmentName(segEp), err)
		}
		isLast := si == len(segEpochs)-1
		off := 0
		for off < len(data) {
			payload, frameLen, ferr := parseFrame(data[off:])
			var r Record
			if ferr == nil {
				r, ferr = decodeRecordPayload(payload)
			}
			if ferr != nil {
				if !isLast {
					return fmt.Errorf("%w: segment %s offset %d: %v", ErrCorrupt, segmentName(segEp), off, ferr)
				}
				// Torn tail: cut the segment at the bad frame. Any bytes
				// after it are unreachable by the length-prefixed framing
				// and go with it — a torn write can only be the final
				// write, so nothing real is ever after one.
				rec.TruncatedBytes = int64(len(data) - off)
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return fmt.Errorf("wal: truncate torn tail of %s: %w", segmentName(segEp), terr)
				}
				return nil
			}
			off += frameLen
			if r.Epoch == 0 {
				return fmt.Errorf("%w: record with epoch 0", ErrCorrupt)
			}
			if r.Epoch <= rec.BaseEpoch {
				// Superseded history the checkpoint already covers: it only
				// has to be monotonic, not contiguous — a tail truncated
				// below a newer checkpoint legitimately leaves a gap that
				// the checkpoint bridges.
				if r.Epoch <= lastSeen {
					return fmt.Errorf("%w: epoch %d after %d", ErrCorrupt, r.Epoch, lastSeen)
				}
				lastSeen = r.Epoch
				continue
			}
			want := rec.BaseEpoch + 1
			if lastSeen > rec.BaseEpoch {
				want = lastSeen + 1
			}
			if r.Epoch != want {
				return fmt.Errorf("%w: epoch %d where %d was expected", ErrCorrupt, r.Epoch, want)
			}
			lastSeen = r.Epoch
			rec.Records = append(rec.Records, r)
		}
	}
	return nil
}
