package lfr

import (
	"math"
	"testing"

	"dmcs/internal/graph"
)

func smallConfig(seed int64) Config {
	cfg := Default()
	cfg.N = 600
	cfg.AvgDeg = 10
	cfg.MaxDeg = 60
	cfg.MinComm = 15
	cfg.MaxComm = 120
	cfg.Seed = seed
	return cfg
}

func TestGenerateBasicShape(t *testing.T) {
	res, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.G.NumNodes() != 600 {
		t.Fatalf("n=%d want 600", res.G.NumNodes())
	}
	// average degree within 15% of the target (configuration-model losses)
	avg := 2 * float64(res.G.NumEdges()) / 600
	if math.Abs(avg-10)/10 > 0.15 {
		t.Fatalf("average degree %.2f too far from 10", avg)
	}
}

func TestGenerateRespectsMaxDegree(t *testing.T) {
	res, err := Generate(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < res.G.NumNodes(); u++ {
		if res.G.Degree(graph.Node(u)) > 60 {
			t.Fatalf("node %d degree %d exceeds MaxDeg", u, res.G.Degree(graph.Node(u)))
		}
	}
}

func TestGenerateCommunityCover(t *testing.T) {
	res, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, res.G.NumNodes())
	for ci, c := range res.Communities {
		if len(c) < 15 || len(c) > 120 {
			t.Fatalf("community %d size %d outside [15,120]", ci, len(c))
		}
		for _, u := range c {
			if seen[u] {
				t.Fatalf("node %d in two communities", u)
			}
			seen[u] = true
		}
	}
	for u, ok := range seen {
		if !ok {
			t.Fatalf("node %d not covered", u)
		}
		if res.Membership[u] < 0 || int(res.Membership[u]) >= len(res.Communities) {
			t.Fatalf("bad membership for %d", u)
		}
	}
}

func TestGenerateMixingParameter(t *testing.T) {
	for _, mu := range []float64{0.1, 0.3} {
		cfg := smallConfig(5)
		cfg.Mu = mu
		res, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inter := 0
		res.G.Edges(func(u, v graph.Node) bool {
			if res.Membership[u] != res.Membership[v] {
				inter++
			}
			return true
		})
		got := float64(inter) / float64(res.G.NumEdges())
		if math.Abs(got-mu) > 0.08 {
			t.Fatalf("mu=%.2f: measured mixing %.3f too far off", mu, got)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != b.G.NumEdges() || len(a.Communities) != len(b.Communities) {
		t.Fatal("same seed must generate identical graphs")
	}
	ea, eb := a.G.EdgeList(), b.G.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("edge lists differ for the same seed")
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallConfig(1))
	b, _ := Generate(smallConfig(2))
	if a.G.NumEdges() == b.G.NumEdges() {
		ea, eb := a.G.EdgeList(), b.G.EdgeList()
		same := true
		for i := range ea {
			if ea[i] != eb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds should generate different graphs")
		}
	}
}

func TestGenerateInvalidConfigs(t *testing.T) {
	bad := []Config{
		{},
		{N: 100, AvgDeg: 5, MaxDeg: 20, Mu: 1.0, MinComm: 10, MaxComm: 20, DegreeExp: 2, CommExp: 1},
		{N: 100, AvgDeg: 5, MaxDeg: 20, Mu: 0.2, MinComm: 1, MaxComm: 20, DegreeExp: 2, CommExp: 1},
		{N: 100, AvgDeg: 5, MaxDeg: 20, Mu: 0.2, MinComm: 30, MaxComm: 20, DegreeExp: 2, CommExp: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestGenerateDefaultTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("default 5000-node config in -short mode")
	}
	res, err := Generate(Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.G.NumNodes() != 5000 {
		t.Fatalf("n=%d", res.G.NumNodes())
	}
	avg := 2 * float64(res.G.NumEdges()) / 5000
	if math.Abs(avg-20)/20 > 0.15 {
		t.Fatalf("avg degree %.2f too far from 20", avg)
	}
	if len(res.Communities) < 5 {
		t.Fatalf("expected several communities, got %d", len(res.Communities))
	}
}

func TestTruncatedPowerMeanMonotone(t *testing.T) {
	prev := 0.0
	for kmin := 1; kmin < 50; kmin++ {
		m := truncatedPowerMean(2, kmin, 100)
		if m <= prev {
			t.Fatalf("mean not increasing at kmin=%d", kmin)
		}
		prev = m
	}
}

func TestGenerateOverlap(t *testing.T) {
	cfg := smallConfig(21)
	cfg.OverlapNodes = 40
	cfg.OverlapMemberships = 2
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// count nodes with 2 memberships
	count := make(map[graph.Node]int)
	for _, c := range res.Communities {
		for _, u := range c {
			count[u]++
		}
	}
	overlapping := 0
	for _, k := range count {
		switch k {
		case 1:
		case 2:
			overlapping++
		default:
			t.Fatalf("node with %d memberships, want ≤2", k)
		}
	}
	if overlapping != 40 {
		t.Fatalf("overlapping nodes=%d want 40", overlapping)
	}
	// all nodes still covered
	if len(count) != cfg.N {
		t.Fatalf("covered %d nodes want %d", len(count), cfg.N)
	}
}

func TestGenerateOverlapThreeMemberships(t *testing.T) {
	cfg := smallConfig(22)
	cfg.OverlapNodes = 10
	cfg.OverlapMemberships = 3
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := make(map[graph.Node]int)
	for _, c := range res.Communities {
		for _, u := range c {
			count[u]++
		}
	}
	three := 0
	for _, k := range count {
		if k == 3 {
			three++
		}
	}
	if three != 10 {
		t.Fatalf("nodes with 3 memberships=%d want 10", three)
	}
}

func TestGenerateOverlapDeterministic(t *testing.T) {
	cfg := smallConfig(23)
	cfg.OverlapNodes = 20
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("overlap generation must be deterministic")
	}
}
