package lfr

import "testing"

// BenchmarkGenerate measures benchmark-graph generation at the Table 2
// default scale.
func BenchmarkGenerate(b *testing.B) {
	cfg := Default()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
