// Package lfr implements the LFR benchmark generator (Lancichinetti,
// Fortunato & Radicchi 2008) used by the paper's synthetic experiments
// (Table 2, Figures 8–14, 19): power-law degree sequence, power-law
// community sizes, and a mixing parameter μ giving the fraction of each
// node's edges that leave its community.
//
// The generator follows the reference construction: (1) sample degrees
// from a truncated power law whose minimum is solved so the mean matches
// AvgDeg; (2) sample community sizes from a truncated power law summing to
// N; (3) assign nodes to communities subject to the internal-degree
// capacity constraint; (4) realize internal edges with a per-community
// configuration model and external edges with a global configuration model
// that forbids intra-community pairs. Multi-edges and self-loops are
// rejected; irreparable leftover stubs are dropped, which perturbs the
// degree sequence by a vanishing fraction, exactly as in the reference
// implementation.
package lfr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dmcs/internal/graph"
)

// Config holds the LFR parameters of the paper's Table 2. The zero value
// is not usable; start from Default.
type Config struct {
	N         int     // number of nodes
	AvgDeg    float64 // average degree (d_avg)
	MaxDeg    int     // maximum degree (d_max)
	Mu        float64 // mixing parameter: fraction of inter-community edges
	DegreeExp float64 // power-law exponent of the degree distribution (τ1)
	CommExp   float64 // power-law exponent of community sizes (τ2)
	MinComm   int     // minimum community size
	MaxComm   int     // maximum community size
	Seed      int64   // RNG seed; equal configs generate equal graphs

	// OverlapNodes (the LFR "on" parameter) makes that many nodes belong
	// to OverlapMemberships communities instead of one, wiring extra
	// intra-community edges into each additional membership. 0 disables
	// overlap. OverlapMemberships ("om") defaults to 2.
	OverlapNodes       int
	OverlapMemberships int
}

// Default returns the paper's default synthetic configuration (Table 2,
// underlined values): n=5000, d_avg=20, d_max=300, μ=0.2, community sizes
// in [20, 1000].
func Default() Config {
	return Config{
		N:         5000,
		AvgDeg:    20,
		MaxDeg:    300,
		Mu:        0.2,
		DegreeExp: 2,
		CommExp:   1,
		MinComm:   20,
		MaxComm:   1000,
		Seed:      1,
	}
}

// Result is a generated benchmark graph with its ground truth.
type Result struct {
	G           *graph.Graph
	Communities [][]graph.Node
	Membership  []int32 // node -> community index
}

// Generate builds an LFR benchmark graph. It returns an error for
// infeasible configurations (e.g. MaxComm smaller than the largest internal
// degree the mixing parameter implies).
func Generate(cfg Config) (*Result, error) {
	if cfg.N <= 0 || cfg.AvgDeg <= 0 || cfg.MaxDeg <= 0 {
		return nil, errors.New("lfr: N, AvgDeg, MaxDeg must be positive")
	}
	if cfg.Mu < 0 || cfg.Mu >= 1 {
		return nil, errors.New("lfr: Mu must be in [0,1)")
	}
	if cfg.MinComm <= 1 || cfg.MaxComm < cfg.MinComm {
		return nil, errors.New("lfr: bad community size bounds")
	}
	if cfg.MaxDeg >= cfg.N {
		cfg.MaxDeg = cfg.N - 1
	}
	if cfg.MaxComm > cfg.N {
		cfg.MaxComm = cfg.N
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	deg := sampleDegrees(cfg, rng)
	sizes, err := sampleCommunitySizes(cfg, rng)
	if err != nil {
		return nil, err
	}
	intDeg := make([]int, cfg.N)
	for i, d := range deg {
		intDeg[i] = int(math.Round((1 - cfg.Mu) * float64(d)))
		if intDeg[i] > d {
			intDeg[i] = d
		}
	}
	member, err := assign(cfg, rng, intDeg, sizes)
	if err != nil {
		return nil, err
	}

	b := graph.NewBuilder(cfg.N)
	buildInternal(rng, b, member, sizes, intDeg)
	buildExternal(rng, b, member, deg, intDeg)

	comms := make([][]graph.Node, len(sizes))
	for u, c := range member {
		comms[c] = append(comms[c], graph.Node(u))
	}
	if cfg.OverlapNodes > 0 {
		addOverlap(cfg, rng, b, member, intDeg, comms)
	}
	g := b.Build()
	return &Result{G: g, Communities: comms, Membership: member}, nil
}

// addOverlap upgrades OverlapNodes random nodes to members of
// OverlapMemberships communities: each gains membership in om−1 extra
// communities plus ⌈intDeg/om⌉ edges into each, mirroring the reference
// benchmark's on/om parameters. Membership keeps the primary community;
// the Communities slices gain the overlapping members.
func addOverlap(cfg Config, rng *rand.Rand, b *graph.Builder, member []int32, intDeg []int, comms [][]graph.Node) {
	om := cfg.OverlapMemberships
	if om < 2 {
		om = 2
	}
	if om > len(comms) {
		om = len(comms)
	}
	on := cfg.OverlapNodes
	if on > cfg.N {
		on = cfg.N
	}
	perm := rng.Perm(cfg.N)
	for _, u := range perm[:on] {
		primary := int(member[u])
		// choose om-1 distinct extra communities
		extra := map[int]bool{}
		for len(extra) < om-1 {
			c := rng.Intn(len(comms))
			if c != primary && !extra[c] {
				extra[c] = true
			}
		}
		want := (intDeg[u] + om - 1) / om
		if want < 1 {
			want = 1
		}
		for c := range extra {
			members := comms[c]
			added := 0
			for _, p := range rng.Perm(len(members)) {
				if added >= want {
					break
				}
				v := members[p]
				if v == graph.Node(u) {
					continue
				}
				b.AddEdge(graph.Node(u), v)
				added++
			}
			comms[c] = append(comms[c], graph.Node(u))
		}
	}
}

// sampleDegrees draws N degrees from a discrete truncated power law
// k^(-τ1) on [kmin, MaxDeg], choosing kmin so the mean is closest to
// AvgDeg, then nudges individual degrees so the total is even and the
// average is exact to ±1 edge.
func sampleDegrees(cfg Config, rng *rand.Rand) []int {
	bestKmin, bestDiff := 1, math.Inf(1)
	for kmin := 1; kmin <= cfg.MaxDeg; kmin++ {
		mean := truncatedPowerMean(cfg.DegreeExp, kmin, cfg.MaxDeg)
		diff := math.Abs(mean - cfg.AvgDeg)
		if diff < bestDiff {
			bestDiff, bestKmin = diff, kmin
		}
		if mean > cfg.AvgDeg {
			break // mean grows monotonically with kmin
		}
	}
	weights, total := powerWeights(cfg.DegreeExp, bestKmin, cfg.MaxDeg)
	deg := make([]int, cfg.N)
	for i := range deg {
		deg[i] = samplePower(rng, weights, total, bestKmin)
	}
	// adjust total degree toward round(avg*N), keeping bounds
	target := int(math.Round(cfg.AvgDeg * float64(cfg.N)))
	sum := 0
	for _, d := range deg {
		sum += d
	}
	for it := 0; it < 20*cfg.N && sum != target; it++ {
		i := rng.Intn(cfg.N)
		if sum < target && deg[i] < cfg.MaxDeg {
			deg[i]++
			sum++
		} else if sum > target && deg[i] > bestKmin {
			deg[i]--
			sum--
		}
	}
	if sum%2 == 1 {
		for i := range deg {
			if deg[i] < cfg.MaxDeg {
				deg[i]++
				break
			}
		}
	}
	return deg
}

// truncatedPowerMean is the mean of the discrete distribution ∝ k^-exp on
// [kmin, kmax].
func truncatedPowerMean(exp float64, kmin, kmax int) float64 {
	var num, den float64
	for k := kmin; k <= kmax; k++ {
		w := math.Pow(float64(k), -exp)
		num += w * float64(k)
		den += w
	}
	return num / den
}

func powerWeights(exp float64, kmin, kmax int) ([]float64, float64) {
	w := make([]float64, kmax-kmin+1)
	var total float64
	for k := kmin; k <= kmax; k++ {
		w[k-kmin] = math.Pow(float64(k), -exp)
		total += w[k-kmin]
	}
	return w, total
}

func samplePower(rng *rand.Rand, weights []float64, total float64, kmin int) int {
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return kmin + i
		}
	}
	return kmin + len(weights) - 1
}

// sampleCommunitySizes draws sizes ∝ s^(-τ2) on [MinComm, MaxComm] until
// they cover N nodes, then trims the excess.
func sampleCommunitySizes(cfg Config, rng *rand.Rand) ([]int, error) {
	weights, total := powerWeights(cfg.CommExp, cfg.MinComm, cfg.MaxComm)
	var sizes []int
	sum := 0
	for sum < cfg.N {
		s := samplePower(rng, weights, total, cfg.MinComm)
		sizes = append(sizes, s)
		sum += s
	}
	// trim the surplus off communities that stay >= MinComm
	excess := sum - cfg.N
	for i := 0; excess > 0; i = (i + 1) % len(sizes) {
		if sizes[i] > cfg.MinComm {
			sizes[i]--
			excess--
		} else if allAtMin(sizes, cfg.MinComm) {
			// drop one community and recycle its slots
			last := sizes[len(sizes)-1]
			sizes = sizes[:len(sizes)-1]
			excess -= last
			if len(sizes) == 0 {
				return nil, errors.New("lfr: cannot fit community sizes to N")
			}
		}
	}
	// a negative excess after dropping: give slots back
	for i := 0; excess < 0; i = (i + 1) % len(sizes) {
		if sizes[i] < cfg.MaxComm {
			sizes[i]++
			excess++
		}
	}
	return sizes, nil
}

func allAtMin(sizes []int, min int) bool {
	for _, s := range sizes {
		if s > min {
			return false
		}
	}
	return true
}

// assign places each node into a community whose size can host its internal
// degree (intDeg[i] ≤ size−1), shrinking infeasible internal degrees to the
// largest hostable value, exactly like the reference implementation's
// kick-out loop but with explicit capacities.
func assign(cfg Config, rng *rand.Rand, intDeg []int, sizes []int) ([]int32, error) {
	n := cfg.N
	member := make([]int32, n)
	free := make([]int, len(sizes))
	maxSize := 0
	copy(free, sizes)
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	// hardest nodes first
	order := rng.Perm(n)
	type nd struct{ id, want int }
	nodes := make([]nd, n)
	for i, u := range order {
		nodes[i] = nd{u, intDeg[u]}
	}
	// simple counting sort by want, descending
	buckets := make([][]int, maxSize+1)
	for _, x := range nodes {
		w := x.want
		if w > maxSize {
			w = maxSize
		}
		buckets[w] = append(buckets[w], x.id)
	}
	candIdx := make([]int, 0, len(sizes))
	for w := maxSize; w >= 0; w-- {
		for _, u := range buckets[w] {
			if intDeg[u] > maxSize-1 {
				intDeg[u] = maxSize - 1 // shrink infeasible internal degree
			}
			candIdx = candIdx[:0]
			for c, f := range free {
				if f > 0 && sizes[c]-1 >= intDeg[u] {
					candIdx = append(candIdx, c)
				}
			}
			if len(candIdx) == 0 {
				// fall back: any community with a free slot, shrinking intDeg
				for c, f := range free {
					if f > 0 {
						candIdx = append(candIdx, c)
					}
				}
				if len(candIdx) == 0 {
					return nil, fmt.Errorf("lfr: no free community slot for node %d", u)
				}
			}
			c := candIdx[rng.Intn(len(candIdx))]
			if intDeg[u] > sizes[c]-1 {
				intDeg[u] = sizes[c] - 1
			}
			member[u] = int32(c)
			free[c]--
		}
	}
	return member, nil
}

// buildInternal realizes intra-community edges with a per-community
// configuration model: shuffle internal stubs, pair consecutive entries,
// and re-shuffle rejected pairs a bounded number of times.
func buildInternal(rng *rand.Rand, b *graph.Builder, member []int32, sizes []int, intDeg []int) {
	byComm := make([][]graph.Node, len(sizes))
	for u, c := range member {
		byComm[c] = append(byComm[c], graph.Node(u))
	}
	for _, members := range byComm {
		var stubs []graph.Node
		for _, u := range members {
			for k := 0; k < intDeg[u]; k++ {
				stubs = append(stubs, u)
			}
		}
		if len(stubs)%2 == 1 {
			stubs = stubs[:len(stubs)-1]
		}
		pairStubs(rng, b, stubs, func(u, v graph.Node) bool { return u != v })
	}
}

// buildExternal realizes inter-community edges with one global
// configuration model over external stubs, rejecting intra-community pairs.
func buildExternal(rng *rand.Rand, b *graph.Builder, member []int32, deg, intDeg []int) {
	var stubs []graph.Node
	for u := range deg {
		ext := deg[u] - intDeg[u]
		for k := 0; k < ext; k++ {
			stubs = append(stubs, graph.Node(u))
		}
	}
	if len(stubs)%2 == 1 {
		stubs = stubs[:len(stubs)-1]
	}
	pairStubs(rng, b, stubs, func(u, v graph.Node) bool {
		return u != v && member[u] != member[v]
	})
}

// pairStubs pairs up stubs into edges accepted by ok, re-queueing rejected
// stubs for a bounded number of passes and dropping irreparable leftovers.
func pairStubs(rng *rand.Rand, b *graph.Builder, stubs []graph.Node, ok func(u, v graph.Node) bool) {
	seen := make(map[[2]graph.Node]bool)
	for pass := 0; pass < 12 && len(stubs) >= 2; pass++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		var leftover []graph.Node
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u > v {
				u, v = v, u
			}
			key := [2]graph.Node{u, v}
			if !ok(u, v) || seen[key] {
				leftover = append(leftover, stubs[i], stubs[i+1])
				continue
			}
			seen[key] = true
			b.AddEdge(u, v)
		}
		if len(stubs)%2 == 1 {
			leftover = append(leftover, stubs[len(stubs)-1])
		}
		stubs = leftover
	}
}
