package kcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmcs/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	return b.Build()
}

func TestDecomposeClique(t *testing.T) {
	g := complete(5)
	core := Decompose(g)
	for u, c := range core {
		if c != 4 {
			t.Fatalf("core[%d]=%d want 4", u, c)
		}
	}
}

func TestDecomposePath(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {1, 2}, {2, 3}})
	for u, c := range Decompose(g) {
		if c != 1 {
			t.Fatalf("core[%d]=%d want 1", u, c)
		}
	}
}

func TestDecomposeCliqueWithTail(t *testing.T) {
	// K4 (nodes 0-3) with a pendant path 3-4-5.
	b := graph.NewBuilder(6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	core := Decompose(g)
	want := []int32{3, 3, 3, 3, 1, 1}
	for u := range want {
		if core[u] != want[u] {
			t.Fatalf("core=%v want %v", core, want)
		}
	}
}

func TestDecomposeIsolatedNodes(t *testing.T) {
	g := graph.FromEdges(3, nil)
	for u, c := range Decompose(g) {
		if c != 0 {
			t.Fatalf("core[%d]=%d want 0", u, c)
		}
	}
}

// Property: the core number computed by the bucket algorithm matches a
// naive iterative-peeling reference implementation.
func TestDecomposeMatchesNaive(t *testing.T) {
	naive := func(g *graph.Graph) []int32 {
		n := g.NumNodes()
		core := make([]int32, n)
		v := graph.NewView(g)
		for k := int32(1); v.NumAlive() > 0; k++ {
			for {
				removed := false
				for u := 0; u < n; u++ {
					if v.Alive(graph.Node(u)) && v.DegreeIn(graph.Node(u)) < int(k) {
						core[u] = k - 1
						v.Remove(graph.Node(u))
						removed = true
					}
				}
				if !removed {
					break
				}
			}
		}
		return core
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(30)
		for i := 0; i < 30; i++ {
			for j := i + 1; j < 30; j++ {
				if rng.Float64() < 0.15 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		got := Decompose(g)
		want := naive(g)
		for u := range got {
			if got[u] != want[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// twoK4s builds two K4s (nodes 0-3 and 4-7) joined through a degree-2
// middle node 8 (edges 3-8, 8-4). Node 8 peels out of the 3-core, which
// therefore splits into the two K4 components.
func twoK4s() *graph.Graph {
	b := graph.NewBuilder(9)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			b.AddEdge(graph.Node(i+4), graph.Node(j+4))
		}
	}
	b.AddEdge(3, 8)
	b.AddEdge(8, 4)
	return b.Build()
}

func TestCommunityConnectedKCore(t *testing.T) {
	g := twoK4s()
	c := Community(g, []graph.Node{0}, 3)
	if len(c) != 4 {
		t.Fatalf("3-core community size=%d want 4 (%v)", len(c), c)
	}
	for _, u := range c {
		if u >= 4 {
			t.Fatalf("community crossed the connector: %v", c)
		}
	}
	// k=1 community spans everything
	if c := Community(g, []graph.Node{0}, 1); len(c) != 9 {
		t.Fatalf("1-core community size=%d want 9", len(c))
	}
	// infeasible k
	if c := Community(g, []graph.Node{0}, 4); c != nil {
		t.Fatalf("4-core should not exist, got %v", c)
	}
}

func TestCommunityMultipleQueriesSeparated(t *testing.T) {
	g := twoK4s()
	// 0 and 7 are in different 3-core components → nil
	if c := Community(g, []graph.Node{0, 7}, 3); c != nil {
		t.Fatalf("cross-component query should fail, got %v", c)
	}
	// but are connected in the 1-core
	if c := Community(g, []graph.Node{0, 7}, 1); len(c) != 9 {
		t.Fatalf("1-core multi-query size=%d want 9", len(c))
	}
}

func TestCommunityEmptyQuery(t *testing.T) {
	if Community(complete(4), nil, 2) != nil {
		t.Fatal("empty query should return nil")
	}
}

func TestHighestCore(t *testing.T) {
	// K5 with a tail: highest core for a K5 member is 4.
	b := graph.NewBuilder(7)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.Build()
	c, k := HighestCore(g, []graph.Node{0})
	if k != 4 || len(c) != 5 {
		t.Fatalf("highcore k=%d size=%d want 4/5", k, len(c))
	}
	// tail node: its core number is 1, the 1-core is the whole graph
	c, k = HighestCore(g, []graph.Node{6})
	if k != 1 || len(c) != 7 {
		t.Fatalf("tail highcore k=%d size=%d want 1/7", k, len(c))
	}
	// query spanning clique and tail limits k to the tail's core number
	c, k = HighestCore(g, []graph.Node{0, 6})
	if k != 1 || len(c) != 7 {
		t.Fatalf("mixed highcore k=%d size=%d want 1/7", k, len(c))
	}
}

func TestMaxCore(t *testing.T) {
	if MaxCore(complete(6)) != 5 {
		t.Fatal("K6 max core should be 5")
	}
	if MaxCore(graph.FromEdges(2, nil)) != 0 {
		t.Fatal("edgeless max core should be 0")
	}
}
