// Package kcore implements k-core decomposition and the two core-based
// community-search baselines of the paper: kc (the connected k-core
// containing the query nodes, Sozio & Gionis 2010) and highcore (the
// connected k-core with the largest feasible k).
package kcore

import (
	"dmcs/internal/graph"
)

// Decompose computes the core number of every node with the classic
// O(|V|+|E|) bucket-peeling algorithm (Batagelj–Zaveršnik).
func Decompose(g *graph.Graph) []int32 {
	n := g.NumNodes()
	deg := make([]int32, n)
	maxDeg := int32(0)
	for u := 0; u < n; u++ {
		deg[u] = int32(g.Degree(graph.Node(u)))
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// bucket sort nodes by degree
	bin := make([]int32, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int32, n)
	vert := make([]graph.Node, n)
	for u := 0; u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = graph.Node(u)
		bin[deg[u]]++
	}
	for d := maxDeg; d >= 1; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int32, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		u := vert[i]
		for _, w := range g.Neighbors(u) {
			if core[w] > core[u] {
				// move w one bucket down
				dw := core[w]
				pw := pos[w]
				ps := bin[dw]
				s := vert[ps]
				if s != w {
					vert[ps], vert[pw] = w, s
					pos[w], pos[s] = ps, pw
				}
				bin[dw]++
				core[w]--
			}
		}
	}
	return core
}

// MaxCore returns the largest core number in g (0 for edgeless graphs).
func MaxCore(g *graph.Graph) int {
	core := Decompose(g)
	m := int32(0)
	for _, c := range core {
		if c > m {
			m = c
		}
	}
	return int(m)
}

// Community returns the kc baseline: the connected component of the k-core
// of g that contains all query nodes, or nil when no such component exists
// (a query node has core number < k, or the query nodes fall into
// different components of the k-core).
func Community(g *graph.Graph, q []graph.Node, k int) []graph.Node {
	if len(q) == 0 {
		return nil
	}
	core := Decompose(g)
	for _, u := range q {
		if int(core[u]) < k {
			return nil
		}
	}
	var keep []graph.Node
	for u := 0; u < g.NumNodes(); u++ {
		if int(core[u]) >= k {
			keep = append(keep, graph.Node(u))
		}
	}
	v := graph.NewViewOf(g, keep)
	comp := graph.ComponentOf(v, q[0])
	in := make(map[graph.Node]bool, len(comp))
	for _, u := range comp {
		in[u] = true
	}
	for _, u := range q[1:] {
		if !in[u] {
			return nil
		}
	}
	return comp
}

// HighestCore returns the highcore baseline: the connected k-core
// containing all the query nodes for the maximum feasible k, plus that k.
// Returns (nil, 0) when the query nodes are not even in one component.
func HighestCore(g *graph.Graph, q []graph.Node) ([]graph.Node, int) {
	if len(q) == 0 {
		return nil, 0
	}
	core := Decompose(g)
	// k can be at most the minimum core number over the query nodes
	kmax := int(core[q[0]])
	for _, u := range q[1:] {
		if int(core[u]) < kmax {
			kmax = int(core[u])
		}
	}
	for k := kmax; k >= 1; k-- {
		if c := Community(g, q, k); c != nil {
			return c, k
		}
	}
	if c := Community(g, q, 0); c != nil {
		return c, 0
	}
	return nil, 0
}
