package kcore

import (
	"testing"

	"dmcs/internal/lfr"
)

// BenchmarkDecompose measures the bucket-peeling core decomposition used
// by the kc and highcore baselines.
func BenchmarkDecompose(b *testing.B) {
	cfg := lfr.Default()
	cfg.N = 5000
	cfg.MaxDeg = 100
	cfg.MaxComm = 300
	res, err := lfr.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(res.G)
	}
}
