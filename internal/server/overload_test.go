package server

import (
	"testing"
	"time"
)

// step is one controller sample plus the state it must land in.
type step struct {
	frac float64
	p99  time.Duration
	want OverloadState
}

func runSteps(t *testing.T, c *overloadController, steps []step) {
	t.Helper()
	for i, s := range steps {
		if got := c.Observe(s.frac, s.p99); got != s.want {
			t.Fatalf("step %d (frac=%.2f p99=%v): state %v, want %v", i, s.frac, s.p99, got, s.want)
		}
	}
}

// Default watermarks under test: high 0.75, full 0.95, low 0.25, calm 3,
// SLO 50ms.
func testController() *overloadController {
	return newOverloadController(OverloadConfig{SLO: 50 * time.Millisecond, CalmSamples: 3})
}

func TestOverloadQueueEscalation(t *testing.T) {
	runSteps(t, testController(), []step{
		{0.10, 0, StateHealthy},
		{0.74, 0, StateHealthy},       // below high water
		{0.75, 0, StateShedExpensive}, // at high water
		{0.50, 0, StateShedExpensive}, // mid load holds the state
		{0.95, 0, StateStaleServe},    // at full water
		{0.80, 0, StateStaleServe},    // high-but-not-full never steps down
	})
}

func TestOverloadLatencyEscalation(t *testing.T) {
	runSteps(t, testController(), []step{
		{0, 50 * time.Millisecond, StateHealthy},       // at SLO is fine
		{0, 51 * time.Millisecond, StateShedExpensive}, // above SLO
		{0, 99 * time.Millisecond, StateShedExpensive}, // below 2×
		{0, 100 * time.Millisecond, StateStaleServe},   // at 2×: straight to stale-serve
	})
}

func TestOverloadLatencySignalDisabled(t *testing.T) {
	c := newOverloadController(OverloadConfig{CalmSamples: 3}) // SLO 0
	runSteps(t, c, []step{
		{0, time.Hour, StateHealthy}, // p99 ignored without an SLO
		{0.96, 0, StateStaleServe},   // queue signal still live
	})
}

func TestOverloadRecoveryHysteresis(t *testing.T) {
	c := testController()
	runSteps(t, c, []step{
		{0.96, 0, StateStaleServe},
		// Two calm samples are not enough (CalmSamples 3).
		{0.10, 0, StateStaleServe},
		{0.10, 0, StateStaleServe},
		// Third calm sample steps down ONE level, not straight to healthy.
		{0.10, 0, StateShedExpensive},
		{0.10, 0, StateShedExpensive},
		{0.10, 0, StateShedExpensive},
		{0.10, 0, StateHealthy},
		{0.10, 0, StateHealthy}, // extra calm samples are a no-op at healthy
	})
}

func TestOverloadCalmRunInterrupted(t *testing.T) {
	c := testController()
	runSteps(t, c, []step{
		{0.96, 0, StateStaleServe},
		{0.10, 0, StateStaleServe},
		{0.10, 0, StateStaleServe},
		{0.50, 0, StateStaleServe}, // mid load resets the calm counter...
		{0.10, 0, StateStaleServe},
		{0.10, 0, StateStaleServe},
		{0.10, 0, StateShedExpensive}, // ...so three MORE calm samples are needed
	})
}

func TestOverloadCalmNeedsBothSignals(t *testing.T) {
	c := testController()
	runSteps(t, c, []step{
		{0.80, 0, StateShedExpensive},
		// Queue calm but p99 blown: not a calm sample.
		{0.10, 60 * time.Millisecond, StateShedExpensive},
		{0.10, 60 * time.Millisecond, StateShedExpensive},
		{0.10, 60 * time.Millisecond, StateShedExpensive},
		{0.10, 10 * time.Millisecond, StateShedExpensive},
		{0.10, 10 * time.Millisecond, StateShedExpensive},
		{0.10, 10 * time.Millisecond, StateHealthy},
	})
}

func TestOverloadShedDoesNotStepDownFromStale(t *testing.T) {
	c := testController()
	runSteps(t, c, []step{
		{0.96, 0, StateStaleServe},
		// Shed-level pressure while in stale-serve must hold stale-serve,
		// not regress to shed-expensive.
		{0.80, 0, StateStaleServe},
		{0.96, 0, StateStaleServe},
	})
}

func TestOverloadStateStrings(t *testing.T) {
	for st, want := range map[OverloadState]string{
		StateHealthy:       "healthy",
		StateShedExpensive: "shed-expensive",
		StateStaleServe:    "stale-serve",
		OverloadState(99):  "unknown",
	} {
		if got := st.String(); got != want {
			t.Fatalf("state %d: %q, want %q", st, got, want)
		}
	}
}
