package server

import (
	"sync"
	"time"
)

// Admission control. Two mechanisms stack in front of every computed
// query:
//
//  1. Cost-aware token buckets, one per cost class. A query's cost is
//     estimated from the size of the component it peels — the dominant
//     term of DMCS peel time — so a whale query drains its bucket
//     proportionally to the work it is about to buy, and the cheap
//     class's bucket is untouched by whales entirely. Refusal computes
//     an honest Retry-After from the refill rate.
//  2. A bounded inflight slot table shared by all classes — the
//     admission queue whose fullness feeds the overload controller.
//     When it is full the server sheds instead of buffering: queueing
//     past capacity only converts overload into latency.
//
// Both are deliberately simple enough to reason about under -race:
// buckets take one short mutex per computed admission (cache hits and
// stale serves bypass admission entirely), and the slot table is a
// buffered channel.

// queryClass buckets queries by estimated cost.
type queryClass int

const (
	classCheap queryClass = iota
	classExpensive
	numClasses
)

func (c queryClass) String() string {
	if c == classExpensive {
		return "expensive"
	}
	return "cheap"
}

// tokenBucket is a standard leaky bucket: capacity burst, refill rate
// tokens/second, costs taken atomically under a mutex. take never
// blocks — admission either passes now or sheds with a Retry-After.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64 // tokens per second
	burst  float64
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	return &tokenBucket{tokens: burst, last: now, rate: rate, burst: burst}
}

// take attempts to spend cost tokens. On refusal it returns how long
// the caller should wait for the bucket to refill enough — the
// Retry-After hint.
func (b *tokenBucket) take(cost float64, now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += b.rate * dt.Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	deficit := cost - b.tokens
	if b.rate <= 0 {
		return false, time.Second
	}
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// costOf converts a component size into bucket tokens. Cost grows
// linearly with the component (peel work is near-linear in practice
// post-PR3), with a floor of one token so even trivial queries pay
// admission.
func costOf(compSize int) float64 {
	const nodesPerToken = 256
	c := float64(compSize) / nodesPerToken
	if c < 1 {
		c = 1
	}
	return c
}

// latEstimator tracks an exponentially weighted moving average of
// completed peel latency per class — the basis for the pre-work budget
// check ("can the remaining deadline plausibly cover this peel?").
// Seeded lazily by the first completion; until then estimate reports 0
// and the budget check admits optimistically.
type latEstimator struct {
	mu  sync.Mutex
	avg time.Duration
}

func (l *latEstimator) observe(d time.Duration) {
	l.mu.Lock()
	if l.avg == 0 {
		l.avg = d
	} else {
		l.avg = (l.avg*7 + d) / 8
	}
	l.mu.Unlock()
}

func (l *latEstimator) estimate() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.avg
}
