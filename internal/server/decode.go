package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/engine"
	"dmcs/internal/graph"
)

// Request decoding. Both wire formats terminate in hard caps before any
// engine work: node counts, op counts, node ids, and timeout values are
// all bounded here, so a hostile body can cost at most one bounded
// parse — never an engine allocation sized by attacker-chosen numbers.
// Both decoders are pure ([]byte in, value out) and fuzzed
// (FuzzDecodeQuery, FuzzParseUpdateOps).

// Decode caps. maxNodeID bounds node ids accepted on the update wire:
// MergeCSR grows the node table to the highest id seen, so an
// unbounded id would let one 20-byte line allocate gigabytes.
const (
	defaultMaxRequestBytes = 1 << 20 // 1 MiB body cap
	defaultMaxQueryNodes   = 1024
	defaultMaxUpdateOps    = 1 << 16
	maxNodeID              = 1 << 26
)

var (
	errEmptyBody  = errors.New("server: empty request body")
	errNoQuerySet = errors.New("server: query wants a non-empty \"nodes\" array")
)

// queryRequest is the POST /query wire format.
type queryRequest struct {
	// Nodes is the query-node id set (required, non-empty).
	Nodes []graph.Node `json:"nodes"`
	// Variant names the algorithm: "FPA" (default), "NCA", "NCA-DR",
	// "FPA-DMG". Case-insensitive.
	Variant string `json:"variant,omitempty"`
	// TimeoutMS is the client's deadline budget in milliseconds; 0 means
	// the server default. Capped by the server's MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoStale opts this request out of degraded-mode stale answers: under
	// overload it sheds instead of serving an old epoch.
	NoStale bool `json:"no_stale,omitempty"`
}

// decodeQuery parses and validates one /query body. maxNodes caps the
// query-set size (0 means the package default).
func decodeQuery(body []byte, maxNodes int) (queryRequest, dmcs.Variant, error) {
	if maxNodes <= 0 {
		maxNodes = defaultMaxQueryNodes
	}
	var req queryRequest
	if len(bytes.TrimSpace(body)) == 0 {
		return req, 0, errEmptyBody
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, 0, fmt.Errorf("server: bad query JSON: %w", err)
	}
	if dec.More() {
		return req, 0, errors.New("server: trailing data after query JSON")
	}
	if len(req.Nodes) == 0 {
		return req, 0, errNoQuerySet
	}
	if len(req.Nodes) > maxNodes {
		return req, 0, fmt.Errorf("server: query has %d nodes, cap is %d", len(req.Nodes), maxNodes)
	}
	for _, u := range req.Nodes {
		if u < 0 || u > maxNodeID {
			return req, 0, fmt.Errorf("server: node id %d out of range [0,%d]", u, maxNodeID)
		}
	}
	if req.TimeoutMS < 0 {
		return req, 0, fmt.Errorf("server: negative timeout_ms %d", req.TimeoutMS)
	}
	v, ok := variantByName(req.Variant)
	if !ok {
		return req, 0, fmt.Errorf("server: unknown variant %q (want FPA, NCA, NCA-DR, FPA-DMG)", req.Variant)
	}
	return req, v, nil
}

// variantByName maps wire algorithm names to DMCS variants; empty means
// the FPA default.
func variantByName(name string) (dmcs.Variant, bool) {
	switch strings.ToUpper(name) {
	case "", "FPA":
		return dmcs.VariantFPA, true
	case "NCA":
		return dmcs.VariantNCA, true
	case "NCA-DR", "NCADR":
		return dmcs.VariantNCADR, true
	case "FPA-DMG", "FPADMG":
		return dmcs.VariantFPADMG, true
	}
	return 0, false
}

// timeoutOf resolves the request's effective deadline budget against
// the server's default and cap.
func (r queryRequest) timeoutOf(def, max time.Duration) time.Duration {
	d := def
	if r.TimeoutMS > 0 {
		d = time.Duration(r.TimeoutMS) * time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// parseUpdateOps parses a POST /apply body: the same line format as the
// CLI update stream (`add u v [w]`, `setw u v w`, `del u v`,
// `node u...`, plus blank lines and # comments), except operands are
// numeric node ids, and `apply`/`query` lines are rejected — the HTTP
// body IS one atomic batch, applied as a whole by the handler. maxOps
// caps the staged op count (0 means the package default).
func parseUpdateOps(body []byte, maxOps int) (engine.Batch, error) {
	if maxOps <= 0 {
		maxOps = defaultMaxUpdateOps
	}
	var b engine.Batch
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd := strings.ToLower(fields[0])
		args := fields[1:]
		if b.Len() >= maxOps {
			return b, fmt.Errorf("server: line %d: batch exceeds %d ops", lineNo, maxOps)
		}
		switch cmd {
		case "add", "setw":
			if len(args) < 2 {
				return b, fmt.Errorf("server: line %d: %s wants 2 node ids", lineNo, cmd)
			}
			u, err := parseNodeID(args[0])
			if err != nil {
				return b, fmt.Errorf("server: line %d: %v", lineNo, err)
			}
			v, err := parseNodeID(args[1])
			if err != nil {
				return b, fmt.Errorf("server: line %d: %v", lineNo, err)
			}
			switch {
			case len(args) >= 3:
				w, err := strconv.ParseFloat(args[2], 64)
				if err != nil {
					return b, fmt.Errorf("server: line %d: bad weight %q: %v", lineNo, args[2], err)
				}
				b.SetWeight(u, v, w)
			case cmd == "setw":
				return b, fmt.Errorf("server: line %d: setw wants an explicit weight", lineNo)
			default:
				b.AddEdge(u, v)
			}
		case "del":
			if len(args) < 2 {
				return b, fmt.Errorf("server: line %d: del wants 2 node ids", lineNo)
			}
			u, err := parseNodeID(args[0])
			if err != nil {
				return b, fmt.Errorf("server: line %d: %v", lineNo, err)
			}
			v, err := parseNodeID(args[1])
			if err != nil {
				return b, fmt.Errorf("server: line %d: %v", lineNo, err)
			}
			b.RemoveEdge(u, v)
		case "node":
			if len(args) < 1 {
				return b, fmt.Errorf("server: line %d: node wants at least 1 id", lineNo)
			}
			for _, tok := range args {
				// One node line stages one op per id — re-check the cap per
				// op, not per line, or a single long line could blow it.
				if b.Len() >= maxOps {
					return b, fmt.Errorf("server: line %d: batch exceeds %d ops", lineNo, maxOps)
				}
				u, err := parseNodeID(tok)
				if err != nil {
					return b, fmt.Errorf("server: line %d: %v", lineNo, err)
				}
				b.AddNode(u)
			}
		default:
			return b, fmt.Errorf("server: line %d: unknown op %q (want add/setw/del/node)", lineNo, cmd)
		}
	}
	if err := sc.Err(); err != nil {
		return b, fmt.Errorf("server: reading update body: %w", err)
	}
	return b, nil
}

func parseNodeID(tok string) (graph.Node, error) {
	n, err := strconv.ParseUint(tok, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q: %v", tok, err)
	}
	if n > maxNodeID {
		return 0, fmt.Errorf("node id %d above cap %d", n, maxNodeID)
	}
	return graph.Node(n), nil
}
