package server

import (
	"testing"
)

// The decoders are the server's hostile-input boundary: every byte a
// client can send flows through decodeQuery or parseUpdateOps before
// anything touches the engine. The fuzz contract is (a) never panic,
// and (b) when a decode succeeds, every cap the decoder promises
// actually holds — so downstream code may trust them without
// re-checking.

func FuzzDecodeQuery(f *testing.F) {
	f.Add([]byte(`{"nodes":[1,2,3]}`))
	f.Add([]byte(`{"nodes":[0],"variant":"NCA-DR","timeout_ms":250}`))
	f.Add([]byte(`{"nodes":[7],"no_stale":true}`))
	f.Add([]byte(`{"nodes":[]}`))
	f.Add([]byte(`{"nodes":[-1]}`))
	f.Add([]byte(`{"nodes":[1.5]}`))
	f.Add([]byte(`{"nodes":[1],"variant":"QUANTUM"}`))
	f.Add([]byte(`{"nodes":[1]}{"nodes":[2]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"nodes":[99999999999999999999]}`))
	const maxNodes = 64
	f.Fuzz(func(t *testing.T, body []byte) {
		req, _, err := decodeQuery(body, maxNodes)
		if err != nil {
			return
		}
		if len(req.Nodes) == 0 || len(req.Nodes) > maxNodes {
			t.Fatalf("accepted query with %d nodes (cap %d)", len(req.Nodes), maxNodes)
		}
		for _, u := range req.Nodes {
			if u < 0 || u > maxNodeID {
				t.Fatalf("accepted out-of-range node id %d", u)
			}
		}
		if req.TimeoutMS < 0 {
			t.Fatalf("accepted negative timeout_ms %d", req.TimeoutMS)
		}
	})
}

func FuzzParseUpdateOps(f *testing.F) {
	f.Add([]byte("add 1 2\n"))
	f.Add([]byte("add 1 2 0.5\nsetw 2 3 2\ndel 1 2\nnode 4 5 6\n"))
	f.Add([]byte("# comment\n\n  add\t7 8  \n"))
	f.Add([]byte("setw 1 2\n"))
	f.Add([]byte("del 1\n"))
	f.Add([]byte("apply\n"))
	f.Add([]byte("add 1 99999999999\n"))
	f.Add([]byte("add -1 2\n"))
	f.Add([]byte("node 1 2 3 4 5 6 7 8 9 10\n"))
	const maxOps = 128
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := parseUpdateOps(body, maxOps)
		if err != nil {
			return
		}
		if b.Len() > maxOps {
			t.Fatalf("accepted batch of %d ops (cap %d)", b.Len(), maxOps)
		}
	})
}
