package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/engine"
	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
)

// The chaos suite: hammer the full serving tier over real HTTP while a
// mutator toggles the graph between two known versions and a chaos
// goroutine arms and clears every injection point (latency, errors,
// panics, slow Apply, dropped responses). Run under -race in CI.
//
// The invariants checked on every single response:
//
//   - No hybrid-epoch results. The mutator only ever toggles a fixed
//     chord set inside community 0, so at every instant the graph is in
//     exactly one of two versions (epoch parity picks which — a no-op
//     toggle never bumps the epoch). Every complete answer for the
//     sentinel query must be bit-identical (members and score) to the
//     serial reference answer of ONE version; a result computed partly
//     against each would match neither.
//   - Stale answers are exact for the epoch they claim: parity of the
//     reported epoch selects the reference answer.
//   - Refusals are always explicit, well-formed JSON with the documented
//     codes; injected faults surface as 500s, never as wrong answers.
//   - Shutdown completes: after the storm, drain + close finish under a
//     watchdog and a final serial-vs-engine comparison proves the
//     surviving state (arenas, cache, snapshot) is uncorrupted.
func TestChaosServingStorm(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	// Two graph versions: A = the plain fixture, B = A plus extra chords
	// inside community 0. Both built independently for serial reference
	// answers.
	buildVersion := func(withChords bool) *graph.Graph {
		b := graph.NewBuilder(tgSmallComms*tgSmallSize + tgWhaleSize)
		for c := 0; c < tgSmallComms; c++ {
			base := c * tgSmallSize
			for i := 0; i < tgSmallSize; i++ {
				u := graph.Node(base + i)
				b.AddEdge(u, graph.Node(base+(i+1)%tgSmallSize))
				b.AddEdge(u, graph.Node(base+(i+3)%tgSmallSize))
			}
		}
		wbase := tgSmallComms * tgSmallSize
		for i := 0; i < tgWhaleSize; i++ {
			u := graph.Node(wbase + i)
			b.AddEdge(u, graph.Node(wbase+(i+1)%tgWhaleSize))
			b.AddEdge(u, graph.Node(wbase+(i+7)%tgWhaleSize))
		}
		if withChords {
			for _, e := range chaosChords() {
				b.AddEdge(e[0], e[1])
			}
		}
		return b.Build()
	}
	gA, gB := buildVersion(false), buildVersion(true)
	opts := optsFPA()
	sentinel := []graph.Node{0}
	ansA, err := dmcs.Search(gA, sentinel, dmcs.VariantFPA, opts)
	if err != nil {
		t.Fatal(err)
	}
	ansB, err := dmcs.Search(gB, sentinel, dmcs.VariantFPA, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sameAnswer(ansA, ansB) {
		t.Fatal("fixture defect: both graph versions give the same sentinel answer; the hybrid check would be vacuous")
	}
	// Community 1 is untouched by every toggle. Under component-scoped
	// epochs its version stays pinned at 0 with w_G frozen at version A's
	// context, so every complete answer — cache hit or recompute, at any
	// global epoch — must be bit-identical to the version-A reference and
	// must never be flagged stale. (Before per-component versions, its
	// score shifted with the global edge mass and needed a per-version
	// reference pair; the frozen-w_G contract is exactly what removed
	// that churn.)
	stableQ := []graph.Node{tgSmallSize}
	stableA, err := dmcs.Search(gA, stableQ, dmcs.VariantFPA, opts)
	if err != nil {
		t.Fatal(err)
	}

	eng := engine.New(buildVersion(false), engine.Options{StaleRetention: 8})
	// Live sampler with a deliberately twitchy SLO so the storm actually
	// drives the overload states, not just the happy path.
	s := New(eng, Config{
		SampleInterval: 10 * time.Millisecond,
		ExpensiveNodes: 256,
		Overload:       OverloadConfig{SLO: 2 * time.Millisecond, CalmSamples: 2},
	})
	ts := httptest.NewServer(s)

	duration := 3 * time.Second
	if testing.Short() {
		duration = 800 * time.Millisecond
	}
	stop := make(chan struct{})
	var (
		wg       sync.WaitGroup
		complete atomic.Int64 // complete 200s checked against a reference
		staleOK  atomic.Int64
		refused  atomic.Int64
		faulted  atomic.Int64 // transport-level failures (dropped responses)
	)
	client := &http.Client{Timeout: 5 * time.Second}

	checkAnswer := func(resp queryResponse, refA, refB *dmcs.Result) error {
		if resp.Stale {
			// Stale answers report the exact epoch they were computed
			// against; parity selects the one reference they must match.
			want := refA
			if resp.Epoch%2 == 1 {
				want = refB
			}
			if !sameResponse(resp, want) {
				return fmt.Errorf("stale answer for epoch %d does not match that epoch's reference", resp.Epoch)
			}
			staleOK.Add(1)
			return nil
		}
		if !sameResponse(resp, refA) && !sameResponse(resp, refB) {
			return fmt.Errorf("HYBRID result: %d nodes score %v matches neither graph version (epoch %d)",
				resp.Size, resp.Score, resp.Epoch)
		}
		return nil
	}

	// Query workers: sentinel and stable queries, mixed budgets, some
	// garbage requests.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var body string
				refA, refB := ansA, ansB
				switch (w + i) % 5 {
				case 0:
					body = `{"nodes":[0],"timeout_ms":500}`
				case 1:
					body = fmt.Sprintf(`{"nodes":[%d],"timeout_ms":500}`, tgSmallSize)
					refA, refB = stableA, stableA // untouched: version A is the only legal answer
				case 2:
					body = `{"nodes":[0],"timeout_ms":1}` // likely queue/peel timeout under chaos
				case 3:
					body = fmt.Sprintf(`{"nodes":[%d],"timeout_ms":500}`, tgWhaleBase)
				case 4:
					body = `{"nodes":[` // malformed on purpose
				}
				hr, err := client.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
				if err != nil {
					faulted.Add(1)
					continue
				}
				raw, rerr := io.ReadAll(hr.Body)
				hr.Body.Close()
				if rerr != nil {
					faulted.Add(1)
					continue
				}
				switch hr.StatusCode {
				case http.StatusOK:
					var resp queryResponse
					if err := json.Unmarshal(raw, &resp); err != nil {
						t.Errorf("bad 200 body %q: %v", raw, err)
						return
					}
					if resp.TimedOut {
						continue // partial: best-so-far, no exactness contract
					}
					if (w+i)%5 == 3 {
						continue // whale query: no reference precomputed
					}
					if (w+i)%5 == 1 && resp.Stale {
						t.Errorf("untouched community served stale (version %d)", resp.Epoch)
						return
					}
					if err := checkAnswer(resp, refA, refB); err != nil {
						t.Error(err)
						return
					}
					complete.Add(1)
				case http.StatusTooManyRequests, http.StatusBadRequest,
					http.StatusUnprocessableEntity, http.StatusGatewayTimeout,
					http.StatusInternalServerError, http.StatusServiceUnavailable:
					var eb errorBody
					if err := json.Unmarshal(raw, &eb); err != nil || eb.Code == "" {
						t.Errorf("refusal %d with malformed body %q", hr.StatusCode, raw)
						return
					}
					refused.Add(1)
				default:
					t.Errorf("unexpected status %d: %s", hr.StatusCode, raw)
					return
				}
			}
		}(w)
	}

	// Mutator: blindly alternates chord add / chord del batches. A
	// mistimed toggle normalizes to a no-op and leaves the epoch alone,
	// so epoch parity always identifies the live version.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sb strings.Builder
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sb.Reset()
			for _, e := range chaosChords() {
				if i%2 == 0 {
					fmt.Fprintf(&sb, "add %d %d\n", e[0], e[1])
				} else {
					fmt.Fprintf(&sb, "del %d %d\n", e[0], e[1])
				}
			}
			hr, err := client.Post(ts.URL+"/apply", "text/plain", strings.NewReader(sb.String()))
			if err == nil {
				io.Copy(io.Discard, hr.Body)
				hr.Body.Close()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Chaos driver: rotates one armed injection at a time through every
	// point and directive class, with small Limits so service keeps
	// making progress between faults.
	wg.Add(1)
	go func() {
		defer wg.Done()
		storm := []struct {
			p   faultinject.Point
			inj faultinject.Injection
		}{
			{faultinject.EnginePeel, faultinject.Injection{Latency: 5 * time.Millisecond, Limit: 4}},
			{faultinject.EnginePeel, faultinject.Injection{Err: errors.New("chaos: injected peel error"), Limit: 2}},
			{faultinject.EnginePeel, faultinject.Injection{Panic: "chaos: injected peel panic", Limit: 2}},
			{faultinject.EngineSearch, faultinject.Injection{Err: errors.New("chaos: injected admission error"), Limit: 2}},
			{faultinject.EngineApply, faultinject.Injection{Latency: 8 * time.Millisecond, Limit: 2}},
			{faultinject.ServerDecode, faultinject.Injection{Err: errors.New("chaos: injected decode error"), Limit: 2}},
			{faultinject.ServerDecode, faultinject.Injection{Panic: "chaos: injected decode panic", Limit: 1}},
			{faultinject.ServerRespond, faultinject.Injection{Drop: true, Limit: 2}},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				faultinject.Reset()
				return
			default:
			}
			f := storm[i%len(storm)]
			faultinject.Set(f.p, f.inj)
			time.Sleep(7 * time.Millisecond)
			faultinject.Clear(f.p)
		}
	}()

	time.Sleep(duration)
	close(stop)
	waitOrDeadlock(t, &wg, 30*time.Second, "chaos workers")

	// Drain + shutdown must complete promptly — the no-deadlock check.
	s.StartDrain()
	if hr, err := client.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"nodes":[0]}`)); err == nil {
		if hr.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("query during drain: %d, want 503", hr.StatusCode)
		}
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
	}
	closed := make(chan struct{})
	go func() { ts.Close(); s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown deadlock: server close did not finish")
	}

	// Post-storm state check: with injections cleared, the engine must
	// answer the sentinel exactly for whatever epoch the storm left
	// behind — panics and poisoned arenas along the way must not have
	// leaked into surviving state.
	faultinject.Reset()
	want := ansA
	if eng.Epoch()%2 == 1 {
		want = ansB
	}
	res, err := eng.Search(t.Context(), engine.Query{Nodes: sentinel, Opts: opts})
	if err != nil {
		t.Fatalf("post-storm sentinel query: %v", err)
	}
	if !sameAnswer(want, res) {
		t.Fatalf("post-storm sentinel answer corrupted: %d nodes score %v", len(res.Community), res.Score)
	}
	if complete.Load() == 0 {
		t.Error("storm produced zero verified complete answers — chaos drowned the service entirely")
	}
	t.Logf("chaos: %d complete (%d stale) / %d refused / %d transport faults; final state %v, epoch %d",
		complete.Load(), staleOK.Load(), refused.Load(), faulted.Load(), s.State(), eng.Epoch())
}

// chaosChords is the toggled edge set: four extra chords inside
// community 0 that change its density (and thus the sentinel answer's
// score) without touching any other community.
func chaosChords() [][2]graph.Node {
	return [][2]graph.Node{{0, 8}, {1, 9}, {2, 10}, {3, 11}}
}

func sameAnswer(a, b *dmcs.Result) bool {
	if a.Score != b.Score || len(a.Community) != len(b.Community) {
		return false
	}
	for i := range a.Community {
		if a.Community[i] != b.Community[i] {
			return false
		}
	}
	return true
}

func sameResponse(resp queryResponse, want *dmcs.Result) bool {
	if resp.Score != want.Score || len(resp.Community) != len(want.Community) {
		return false
	}
	for i := range want.Community {
		if resp.Community[i] != want.Community[i] {
			return false
		}
	}
	return true
}

func waitOrDeadlock(t *testing.T, wg *sync.WaitGroup, timeout time.Duration, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("deadlock: %s did not finish within %v", what, timeout)
	}
}
