package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/engine"
	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
)

// serverTestGraph builds the serving fixture: numSmall ring+chord
// communities of smallSize nodes each, plus one whale ring of whaleSize
// nodes — so cheap-class and expensive-class queries coexist in one
// graph. The whale's first node id is numSmall*smallSize.
func serverTestGraph(numSmall, smallSize, whaleSize int) *graph.Graph {
	b := graph.NewBuilder(numSmall*smallSize + whaleSize)
	for c := 0; c < numSmall; c++ {
		base := c * smallSize
		for i := 0; i < smallSize; i++ {
			u := graph.Node(base + i)
			b.AddEdge(u, graph.Node(base+(i+1)%smallSize))
			b.AddEdge(u, graph.Node(base+(i+3)%smallSize))
		}
	}
	wbase := numSmall * smallSize
	for i := 0; i < whaleSize; i++ {
		u := graph.Node(wbase + i)
		b.AddEdge(u, graph.Node(wbase+(i+1)%whaleSize))
		b.AddEdge(u, graph.Node(wbase+(i+7)%whaleSize))
	}
	return b.Build()
}

const (
	tgSmallComms = 16
	tgSmallSize  = 16
	tgWhaleSize  = 512
	tgWhaleBase  = tgSmallComms * tgSmallSize
)

// newTestServer wires a Server around a fresh fixture engine. The
// sampler is disabled (SampleInterval -1): tests drive the overload
// state directly through s.state.
func newTestServer(t *testing.T, ecfg engine.Options, scfg Config) (*Server, *engine.Engine) {
	t.Helper()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	eng := engine.New(serverTestGraph(tgSmallComms, tgSmallSize, tgWhaleSize), ecfg)
	if scfg.SampleInterval == 0 {
		scfg.SampleInterval = -1
	}
	if scfg.ExpensiveNodes == 0 {
		scfg.ExpensiveNodes = 256 // whale (512) is expensive, communities (16) are cheap
	}
	s := New(eng, scfg)
	t.Cleanup(s.Close)
	return s, eng
}

// post runs one request straight through the handler stack.
func post(s *Server, path, body string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
	return w
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func decodeBody[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
	return v
}

func wantCode(t *testing.T, w *httptest.ResponseRecorder, status int, code string) errorBody {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status %d (%s), want %d", w.Code, w.Body.String(), status)
	}
	eb := decodeBody[errorBody](t, w)
	if eb.Code != code {
		t.Fatalf("error code %q (%s), want %q", eb.Code, eb.Error, code)
	}
	return eb
}

func TestQueryEndpoint(t *testing.T) {
	s, eng := newTestServer(t, engine.Options{}, Config{})
	w := post(s, "/query", `{"nodes":[0,1]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[queryResponse](t, w)
	if resp.Stale || resp.TimedOut {
		t.Fatalf("fresh uncontended answer flagged stale=%v timed_out=%v", resp.Stale, resp.TimedOut)
	}
	if resp.Size != len(resp.Community) || resp.Size == 0 {
		t.Fatalf("size %d vs community %d", resp.Size, len(resp.Community))
	}
	// Must match the engine answering directly.
	direct, err := eng.Search(t.Context(), engine.Query{
		Nodes: []graph.Node{0, 1},
		Opts:  optsFPA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Community) != len(resp.Community) || direct.Score != resp.Score {
		t.Fatalf("HTTP answer (%d nodes, %v) != direct answer (%d nodes, %v)",
			len(resp.Community), resp.Score, len(direct.Community), direct.Score)
	}
	for i := range direct.Community {
		if direct.Community[i] != resp.Community[i] {
			t.Fatalf("community[%d] = %d, want %d", i, resp.Community[i], direct.Community[i])
		}
	}
}

func TestQueryValidation(t *testing.T) {
	s, eng := newTestServer(t, engine.Options{}, Config{MaxQueryNodes: 4})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"nodes":`},
		{"empty body", ``},
		{"no nodes", `{"nodes":[]}`},
		{"unknown field", `{"nodes":[0],"bogus":1}`},
		{"unknown variant", `{"nodes":[0],"variant":"QUANTUM"}`},
		{"negative timeout", `{"nodes":[0],"timeout_ms":-5}`},
		{"negative node", `{"nodes":[-1]}`},
		{"too many nodes", `{"nodes":[0,1,2,3,4]}`},
		{"out of range", `{"nodes":[99999999]}`},
		{"disconnected", fmt.Sprintf(`{"nodes":[0,%d]}`, tgWhaleBase)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCode(t, post(s, "/query", tc.body), http.StatusBadRequest, "invalid")
		})
	}
	if got := eng.Stats().Rejected; got != uint64(len(cases)) {
		t.Fatalf("Rejected = %d, want %d", got, len(cases))
	}
	wantCode(t, get(s, "/query"), http.StatusMethodNotAllowed, "invalid")
}

func TestApplyEndpoint(t *testing.T) {
	s, eng := newTestServer(t, engine.Options{}, Config{})
	// Split community 0's ring by cutting enough edges around node 0
	// that its membership changes observably; easier: bridge two small
	// communities and check the component merge shows up.
	w := post(s, "/apply", fmt.Sprintf("# bridge comm0 and comm1\nadd 0 %d\n", tgSmallSize))
	if w.Code != http.StatusOK {
		t.Fatalf("apply status %d: %s", w.Code, w.Body.String())
	}
	ar := decodeBody[applyResponse](t, w)
	if ar.Epoch != 1 || ar.EdgesAdded != 1 {
		t.Fatalf("apply reported %+v, want epoch 1, one edge added", ar)
	}
	if eng.Epoch() != 1 {
		t.Fatalf("engine epoch %d after apply", eng.Epoch())
	}
	// The two communities are now one component: a cross-community query
	// is valid post-apply.
	w = post(s, "/query", fmt.Sprintf(`{"nodes":[0,%d]}`, tgSmallSize))
	if w.Code != http.StatusOK {
		t.Fatalf("cross-community query after bridge: %d %s", w.Code, w.Body.String())
	}
	if resp := decodeBody[queryResponse](t, w); resp.Epoch != 1 {
		t.Fatalf("query epoch %d, want 1", resp.Epoch)
	}

	wantCode(t, post(s, "/apply", "frobnicate 1 2\n"), http.StatusBadRequest, "invalid")
	wantCode(t, post(s, "/apply", "add 1 99999999999\n"), http.StatusBadRequest, "invalid")
}

func TestRateLimitSheds(t *testing.T) {
	// Expensive bucket: burst covers exactly one whale query
	// (cost = 512/256 = 2), refill glacial. Cheap bucket untouched.
	s, eng := newTestServer(t, engine.Options{}, Config{
		ExpensiveRate: 0.001, ExpensiveBurst: 2,
	})
	whale := fmt.Sprintf(`{"nodes":[%d]}`, tgWhaleBase)
	if w := post(s, "/query", whale); w.Code != http.StatusOK {
		t.Fatalf("first whale query: %d %s", w.Code, w.Body.String())
	}
	w := post(s, "/query", whale)
	wantCode(t, w, http.StatusTooManyRequests, "shed")
	if ra := w.Result().Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// One whale exhausting its class must not starve cheap queries.
	for c := 0; c < 4; c++ {
		if w := post(s, "/query", fmt.Sprintf(`{"nodes":[%d]}`, c*tgSmallSize)); w.Code != http.StatusOK {
			t.Fatalf("cheap query %d after whale shed: %d %s", c, w.Code, w.Body.String())
		}
	}
	if st := eng.Stats().Shed; st != 1 {
		t.Fatalf("Shed = %d, want 1", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	s, _ := newTestServer(t, engine.Options{Workers: 1}, Config{MaxInflight: 1})
	// Hold the single inflight slot: one query stalls inside the engine on
	// an injected 150ms peel latency.
	faultinject.Set(faultinject.EnginePeel, faultinject.Injection{Latency: 150 * time.Millisecond, Limit: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(s, "/query", `{"nodes":[0]}`)
	}()
	// Wait until the slow query occupies the slot, then overflow it.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never took the inflight slot")
		}
		time.Sleep(time.Millisecond)
	}
	w := post(s, "/query", fmt.Sprintf(`{"nodes":[%d]}`, tgSmallSize))
	wantCode(t, w, http.StatusTooManyRequests, "shed")
	wg.Wait()
}

func TestBudgetRejection(t *testing.T) {
	s, eng := newTestServer(t, engine.Options{}, Config{})
	// Teach the cheap-class estimator that peels take ~1s, then ask for a
	// 5ms budget: the pre-work check must refuse without searching.
	s.ests[classCheap].observe(time.Second)
	before := eng.Stats().Queries
	w := post(s, "/query", `{"nodes":[0],"timeout_ms":5}`)
	wantCode(t, w, http.StatusUnprocessableEntity, "budget")
	st := eng.Stats()
	if st.Queries != before {
		t.Fatal("budget-rejected query still reached the engine")
	}
	if st.Rejected == 0 {
		t.Fatal("budget rejection not counted in Stats.Rejected")
	}
	// A workable budget flows normally.
	if w := post(s, "/query", `{"nodes":[0],"timeout_ms":5000}`); w.Code != http.StatusOK {
		t.Fatalf("generous-budget query: %d %s", w.Code, w.Body.String())
	}
}

func TestDegradedShedExpensive(t *testing.T) {
	s, eng := newTestServer(t, engine.Options{StaleRetention: 8}, Config{})
	whale := fmt.Sprintf(`{"nodes":[%d]}`, tgWhaleBase)
	// Warm the cache with the whale answer at version 0, then mutate a
	// small community. The whale component is untouched, so its answer
	// must stay a FRESH hit — unchanged version, never flagged stale.
	if w := post(s, "/query", whale); w.Code != http.StatusOK {
		t.Fatalf("warming whale query: %d %s", w.Code, w.Body.String())
	}
	if w := post(s, "/apply", "add 0 2\n del 0 3\n"); w.Code != http.StatusOK {
		t.Fatalf("apply: %d %s", w.Code, w.Body.String())
	}

	s.state.Store(int32(StateShedExpensive))
	w := post(s, "/query", whale)
	if w.Code != http.StatusOK {
		t.Fatalf("whale under shed-expensive: %d %s", w.Code, w.Body.String())
	}
	resp := decodeBody[queryResponse](t, w)
	if resp.Stale || resp.Epoch != 0 {
		t.Fatalf("untouched whale answer stale=%v epoch=%d, want fresh at version 0", resp.Stale, resp.Epoch)
	}
	if st := eng.Stats(); st.StaleServed != 0 {
		t.Fatalf("untouched-component hit counted as StaleServed (%d)", st.StaleServed)
	}

	// Now mutate INSIDE the whale (a chord; the ring keeps it connected):
	// its version is superseded and the cached answer becomes stale.
	if w := post(s, "/apply", fmt.Sprintf("del %d %d\n", tgWhaleBase, tgWhaleBase+7)); w.Code != http.StatusOK {
		t.Fatalf("whale apply: %d %s", w.Code, w.Body.String())
	}
	w = post(s, "/query", whale)
	if w.Code != http.StatusOK {
		t.Fatalf("whale under shed-expensive: %d %s", w.Code, w.Body.String())
	}
	resp = decodeBody[queryResponse](t, w)
	if !resp.Stale || resp.Epoch != 0 {
		t.Fatalf("whale answer stale=%v epoch=%d, want stale from version 0", resp.Stale, resp.Epoch)
	}
	if eng.Stats().StaleServed == 0 {
		t.Fatal("stale serve not counted")
	}
	// Same query with no_stale opts out of degraded answers: shed.
	wantCode(t, post(s, "/query", fmt.Sprintf(`{"nodes":[%d],"no_stale":true}`, tgWhaleBase)),
		http.StatusTooManyRequests, "shed")
	// An expensive query with no cached answer at any retained epoch: shed.
	wantCode(t, post(s, "/query", fmt.Sprintf(`{"nodes":[%d]}`, tgWhaleBase+1)),
		http.StatusTooManyRequests, "shed")
	// Cheap queries still peel normally — and fresh.
	w = post(s, "/query", fmt.Sprintf(`{"nodes":[%d]}`, 2*tgSmallSize))
	if w.Code != http.StatusOK {
		t.Fatalf("cheap query under shed-expensive: %d %s", w.Code, w.Body.String())
	}
	if resp := decodeBody[queryResponse](t, w); resp.Stale {
		t.Fatal("cheap query served stale under shed-expensive")
	}
}

func TestDegradedStaleServe(t *testing.T) {
	s, _ := newTestServer(t, engine.Options{StaleRetention: 8}, Config{})
	// Warm two cheap communities, then mutate inside community 3 only:
	// its entry goes stale while community 5's stays a fresh hit.
	cheap := fmt.Sprintf(`{"nodes":[%d]}`, 3*tgSmallSize)
	untouched := fmt.Sprintf(`{"nodes":[%d]}`, 5*tgSmallSize)
	if w := post(s, "/query", cheap); w.Code != http.StatusOK {
		t.Fatalf("warming query: %d %s", w.Code, w.Body.String())
	}
	if w := post(s, "/query", untouched); w.Code != http.StatusOK {
		t.Fatalf("warming query: %d %s", w.Code, w.Body.String())
	}
	// Drop a chord inside community 3 (nodes 48..63; the ring keeps it
	// connected).
	if w := post(s, "/apply", fmt.Sprintf("del %d %d\n", 3*tgSmallSize, 3*tgSmallSize+3)); w.Code != http.StatusOK {
		t.Fatalf("apply: %d %s", w.Code, w.Body.String())
	}

	s.state.Store(int32(StateStaleServe))
	// Cached-at-superseded-version cheap query: stale answer, no peel.
	w := post(s, "/query", cheap)
	if w.Code != http.StatusOK {
		t.Fatalf("cached query under stale-serve: %d %s", w.Code, w.Body.String())
	}
	if resp := decodeBody[queryResponse](t, w); !resp.Stale || resp.Epoch != 0 {
		t.Fatalf("stale-serve answer stale=%v epoch=%d, want stale version 0", resp.Stale, resp.Epoch)
	}
	// The untouched community is served fresh, not stale: its version
	// never moved.
	w = post(s, "/query", untouched)
	if w.Code != http.StatusOK {
		t.Fatalf("untouched query under stale-serve: %d %s", w.Code, w.Body.String())
	}
	if resp := decodeBody[queryResponse](t, w); resp.Stale || resp.Epoch != 0 {
		t.Fatalf("untouched answer stale=%v epoch=%d, want fresh at version 0", resp.Stale, resp.Epoch)
	}
	// Uncached query: shed — stale-serve starts no new peels, cheap or not.
	wantCode(t, post(s, "/query", fmt.Sprintf(`{"nodes":[%d]}`, 4*tgSmallSize)),
		http.StatusTooManyRequests, "shed")

	// Recovery: back to healthy, the shed query peels fine.
	s.state.Store(int32(StateHealthy))
	if w := post(s, "/query", fmt.Sprintf(`{"nodes":[%d]}`, 4*tgSmallSize)); w.Code != http.StatusOK {
		t.Fatalf("query after recovery: %d %s", w.Code, w.Body.String())
	}
}

func TestDrain(t *testing.T) {
	s, _ := newTestServer(t, engine.Options{}, Config{})
	if w := get(s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", w.Code)
	}
	s.StartDrain()
	wantCode(t, post(s, "/query", `{"nodes":[0]}`), http.StatusServiceUnavailable, "draining")
	wantCode(t, post(s, "/apply", "add 0 2\n"), http.StatusServiceUnavailable, "draining")
	if w := get(s, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", w.Code)
	}
	// Stats stays reachable for post-mortem scraping.
	if w := get(s, "/stats"); w.Code != http.StatusOK {
		t.Fatalf("stats during drain: %d", w.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, engine.Options{}, Config{})
	post(s, "/query", `{"nodes":[0]}`)
	post(s, "/query", `{"nodes":[0]}`) // cache hit
	w := get(s, "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	resp := decodeBody[statsResponse](t, w)
	if resp.Engine.Queries != 2 || resp.Engine.CacheHits != 1 {
		t.Fatalf("stats queries=%d hits=%d, want 2/1", resp.Engine.Queries, resp.Engine.CacheHits)
	}
	if resp.Server.State != "healthy" || resp.Server.InflightCap == 0 {
		t.Fatalf("server stats %+v", resp.Server)
	}
}

func TestHandlerPanicContained(t *testing.T) {
	s, _ := newTestServer(t, engine.Options{}, Config{})
	faultinject.Set(faultinject.ServerDecode, faultinject.Injection{Panic: "decode exploded", Limit: 1})
	wantCode(t, post(s, "/query", `{"nodes":[0]}`), http.StatusInternalServerError, "panic")
	// The process survived and the next request is clean.
	if w := post(s, "/query", `{"nodes":[0]}`); w.Code != http.StatusOK {
		t.Fatalf("query after contained panic: %d %s", w.Code, w.Body.String())
	}
}

func TestInjectedPeelPanicMapsTo500(t *testing.T) {
	s, _ := newTestServer(t, engine.Options{}, Config{})
	faultinject.Set(faultinject.EnginePeel, faultinject.Injection{Panic: "peel exploded", Limit: 1})
	wantCode(t, post(s, "/query", `{"nodes":[0]}`), http.StatusInternalServerError, "panic")
	if w := post(s, "/query", `{"nodes":[0]}`); w.Code != http.StatusOK {
		t.Fatalf("query after engine panic: %d %s", w.Code, w.Body.String())
	}
}

func TestDroppedResponseAbortsConnection(t *testing.T) {
	s, _ := newTestServer(t, engine.Options{}, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	faultinject.Set(faultinject.ServerRespond, faultinject.Injection{Drop: true, Limit: 1})
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"nodes":[0]}`))
	if err == nil {
		// Some transports surface the abort as a read error on the body
		// instead of the POST itself.
		if _, rerr := io.ReadAll(resp.Body); rerr == nil {
			t.Fatal("dropped response reached the client intact")
		}
		resp.Body.Close()
	}
	// Server keeps serving afterwards.
	resp, err = http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"nodes":[0]}`))
	if err != nil {
		t.Fatalf("request after dropped response: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after dropped response: %d", resp.StatusCode)
	}
}

func TestQueueTimeoutMapsTo504(t *testing.T) {
	s, _ := newTestServer(t, engine.Options{Workers: 1}, Config{})
	// One slow peel monopolizes the single worker; the next computed query
	// has a budget too small to ever get the slot.
	faultinject.Set(faultinject.EnginePeel, faultinject.Injection{Latency: 300 * time.Millisecond, Limit: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(s, "/query", `{"nodes":[0]}`)
	}()
	time.Sleep(50 * time.Millisecond) // let the slow query take the engine worker slot
	w := post(s, "/query", fmt.Sprintf(`{"nodes":[%d],"timeout_ms":30}`, tgSmallSize))
	wantCode(t, w, http.StatusGatewayTimeout, "queue_timeout")
	wg.Wait()
}

func TestSamplerDrivesState(t *testing.T) {
	// Real sampler at 5ms with a microscopic SLO: two computed queries
	// push p99 over it and the published state must escalate.
	s, _ := newTestServer(t, engine.Options{}, Config{
		SampleInterval: 5 * time.Millisecond,
		Overload:       OverloadConfig{SLO: time.Nanosecond},
	})
	post(s, "/query", `{"nodes":[0]}`)
	deadline := time.Now().Add(2 * time.Second)
	for s.State() == StateHealthy {
		if time.Now().After(deadline) {
			t.Fatal("sampler never escalated despite p99 >> SLO")
		}
		time.Sleep(time.Millisecond)
	}
}

// optsFPA mirrors the server's option policy for the FPA default, so
// direct engine calls in tests hit the same cache keys.
func optsFPA() dmcs.Options { return dmcs.Options{LayerPruning: true} }
