// Package server is the overload-safe HTTP serving tier around
// engine.Engine: admission control (cost-aware token buckets plus a
// bounded inflight table), client deadline budgets propagated into the
// engine's timeout machinery, graceful degradation through an overload
// state machine that falls back to epoch-stale cached answers, and
// per-request panic isolation. cmd/dmcsd is a thin flag-parsing
// wrapper; everything testable lives here.
//
// Endpoints:
//
//	POST /query   {"nodes":[...], "variant":"FPA", "timeout_ms":100}
//	POST /apply   update-stream lines (add/setw/del/node), one atomic batch
//	GET  /stats   engine counters + server admission state
//	GET  /healthz liveness + overload state
//
// Refusals are explicit, never silent: shed and rate-limited requests
// get 429 with a Retry-After header, queue/deadline expiries get 504
// with a code distinguishing "never started" from "ran out mid-peel",
// and degraded-mode answers carry "stale": true with the epoch they
// were computed against.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/engine"
	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
)

// Config tunes the serving tier. The zero value of every field selects
// a sensible default (see defaults()).
type Config struct {
	// DefaultTimeout is the deadline budget for requests that do not send
	// timeout_ms; MaxTimeout caps what clients may ask for.
	DefaultTimeout, MaxTimeout time.Duration
	// MaxInflight bounds concurrently admitted queries (the admission
	// queue). Default 8×GOMAXPROCS.
	MaxInflight int
	// ExpensiveNodes is the component size at which a query classifies as
	// expensive (whale). Default 8192.
	ExpensiveNodes int
	// Per-class token buckets: tokens/second and burst. A query costs
	// ~componentSize/256 tokens, floor 1 (see costOf).
	CheapRate, CheapBurst         float64
	ExpensiveRate, ExpensiveBurst float64
	// StaleMaxBehind is how many superseded versions of the query's own
	// component degraded-mode answers may reach back through (requires
	// the engine to run with Options.StaleRetention > 0 for ancestry to
	// be recorded). Answers at the component's current version are exact
	// — never flagged stale — regardless of this knob. Default 8.
	StaleMaxBehind int
	// Request caps fed to the decoders.
	MaxRequestBytes int64
	MaxQueryNodes   int
	MaxUpdateOps    int
	// Overload configures the degradation state machine.
	Overload OverloadConfig
	// SampleInterval is the overload controller's sampling period.
	// Default 100ms; negative disables the sampler (tests drive the state
	// directly).
	SampleInterval time.Duration
	// StateDump enables GET /debug/state, which streams the engine's
	// canonical binary state image (engine.EncodeState). Off by default:
	// it serializes the whole graph per request, so it is a diagnostic /
	// harness endpoint, not a serving one.
	StateDump bool
}

func (c *Config) defaults() {
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 8 * runtime.GOMAXPROCS(0)
	}
	if c.ExpensiveNodes == 0 {
		c.ExpensiveNodes = 8192
	}
	if c.CheapRate == 0 {
		c.CheapRate = 2000
	}
	if c.CheapBurst == 0 {
		c.CheapBurst = 2 * c.CheapRate
	}
	if c.ExpensiveRate == 0 {
		c.ExpensiveRate = 64
	}
	if c.ExpensiveBurst == 0 {
		c.ExpensiveBurst = 2 * c.ExpensiveRate
	}
	if c.StaleMaxBehind == 0 {
		c.StaleMaxBehind = 8
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = defaultMaxRequestBytes
	}
	if c.MaxQueryNodes == 0 {
		c.MaxQueryNodes = defaultMaxQueryNodes
	}
	if c.MaxUpdateOps == 0 {
		c.MaxUpdateOps = defaultMaxUpdateOps
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 100 * time.Millisecond
	}
}

// Server is the HTTP serving tier. Create with New, serve via
// ServeHTTP (it implements http.Handler), shut down with StartDrain
// (new requests get 503; pair with http.Server.Shutdown to drain
// in-flight ones) and Close (stops the overload sampler).
type Server struct {
	eng *engine.Engine
	cfg Config
	mux *http.ServeMux

	inflight chan struct{} // admission queue: one slot per admitted query
	buckets  [numClasses]*tokenBucket
	ests     [numClasses]*latEstimator

	state    atomic.Int32 // OverloadState, published by the sampler
	draining atomic.Bool
	closed   atomic.Bool
	stop     chan struct{}
	done     chan struct{}
}

// New builds a Server around eng and starts its overload sampler
// (unless cfg.SampleInterval < 0). Callers own eng's lifecycle.
func New(eng *engine.Engine, cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, cfg.MaxInflight),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	now := time.Now()
	s.buckets[classCheap] = newTokenBucket(cfg.CheapRate, cfg.CheapBurst, now)
	s.buckets[classExpensive] = newTokenBucket(cfg.ExpensiveRate, cfg.ExpensiveBurst, now)
	for c := range s.ests {
		s.ests[c] = &latEstimator{}
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/apply", s.handleApply)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.StateDump {
		s.mux.HandleFunc("/debug/state", s.handleStateDump)
	}
	if cfg.SampleInterval > 0 {
		go s.sample()
	} else {
		close(s.done)
	}
	return s
}

// sample periodically feeds the overload controller and publishes its
// state. Engine.Stats is O(latency window) per call; at the default
// 10 Hz that is noise.
func (s *Server) sample() {
	defer close(s.done)
	ctrl := newOverloadController(s.cfg.Overload)
	tick := time.NewTicker(s.cfg.SampleInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			frac := float64(len(s.inflight)) / float64(cap(s.inflight))
			st := s.eng.Stats()
			s.state.Store(int32(ctrl.Observe(frac, st.P99)))
		}
	}
}

// State reports the current overload state.
func (s *Server) State() OverloadState { return OverloadState(s.state.Load()) }

// StartDrain flips the server into draining: every subsequent request
// is refused with 503. In-flight requests finish normally — pair with
// http.Server.Shutdown, which waits for them.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Close stops the overload sampler. Idempotent; does not wait for
// in-flight requests (that is http.Server.Shutdown's job).
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.stop)
	}
	<-s.done
}

// ServeHTTP implements http.Handler with per-request panic containment:
// a panicking handler (injected or real) answers 500 instead of taking
// the whole process down. The engine's own peel-panic isolation sits a
// layer below; this net catches everything else.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				panic(rec) // deliberate connection abort (dropped-response injection)
			}
			// Headers may already be out; WriteHeader then is a no-op plus a
			// server log line, which is the best available answer.
			writeError(w, http.StatusInternalServerError, "panic", fmt.Sprintf("handler panicked: %v", rec), 0)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

type errorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// writeError emits the uniform refusal shape. retryAfter > 0 adds a
// Retry-After header (rounded up to whole seconds, minimum 1).
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Code: code, Error: msg})
}

// writeJSON emits a success body through the dropped-response injection
// point: a Drop directive aborts the connection mid-response, the
// client-visible shape of a server that computed an answer and died
// sending it.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	if err := faultinject.Fire(faultinject.ServerRespond); err != nil {
		if errors.Is(err, faultinject.ErrDropped) {
			panic(http.ErrAbortHandler)
		}
		writeError(w, http.StatusInternalServerError, "injected", err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) shed(w http.ResponseWriter, msg string, retryAfter time.Duration) {
	s.eng.NoteShed()
	writeError(w, http.StatusTooManyRequests, "shed", msg, retryAfter)
}

// queryResponse is the POST /query success shape.
type queryResponse struct {
	Community []graph.Node `json:"community"`
	Size      int          `json:"size"`
	Score     float64      `json:"score"`
	// Epoch is the version of the query's component the answer was
	// computed against — the epoch at which that component last changed,
	// not the graph's global epoch. Exact for stale answers; best-effort
	// (captured at classification) for fresh ones.
	Epoch uint64 `json:"epoch"`
	// Stale marks a degraded-mode answer served from a superseded version
	// of the query's component. An answer at the component's current
	// version is exact and never flagged, even when the rest of the graph
	// has churned since it was computed.
	Stale bool `json:"stale"`
	// TimedOut marks a best-so-far partial whose peel hit the deadline.
	TimedOut  bool  `json:"timed_out"`
	ElapsedUS int64 `json:"elapsed_us"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "invalid", "POST only", 0)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", 0)
		return
	}
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		s.eng.NoteRejected()
		writeError(w, http.StatusBadRequest, "invalid", "reading body: "+err.Error(), 0)
		return
	}
	if err := faultinject.Fire(faultinject.ServerDecode); err != nil {
		writeError(w, http.StatusInternalServerError, "injected", err.Error(), 0)
		return
	}
	req, variant, err := decodeQuery(body, s.cfg.MaxQueryNodes)
	if err != nil {
		s.eng.NoteRejected()
		writeError(w, http.StatusBadRequest, "invalid", err.Error(), 0)
		return
	}
	q := engine.Query{
		Nodes:   req.Nodes,
		Variant: variant,
		// Mirror the CLI's option policy so cache keys line up across
		// entry points (and with LookupStale probes below).
		Opts: dmcs.Options{LayerPruning: variant == dmcs.VariantFPA},
	}
	budget := req.timeoutOf(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)

	// Classify by the size of the component the query would peel. This is
	// also the first validation gate: unknown nodes and cross-component
	// query sets are rejected before costing anything. The component's
	// version is captured here too — it is what the response reports as
	// "epoch" (best-effort for fresh answers: an Apply racing the query
	// may advance it before the peel runs; exact for degraded answers,
	// which LookupStale versions itself).
	snap := s.eng.Snapshot()
	compIdx, err := snap.ComponentID(req.Nodes)
	if err != nil {
		s.eng.NoteRejected()
		writeError(w, http.StatusBadRequest, "invalid", err.Error(), 0)
		return
	}
	compVer := snap.ComponentVersion(compIdx)
	comp := snap.ComponentMembers(compIdx)
	class := classCheap
	if len(comp) >= s.cfg.ExpensiveNodes {
		class = classExpensive
	}

	// Degraded modes answer from cache (stale allowed) or shed — no new
	// peels for the classes being protected against.
	state := s.State()
	if state == StateStaleServe || (state == StateShedExpensive && class == classExpensive) {
		if !req.NoStale {
			// Staleness comes from LookupStale itself, per component: an
			// answer at the query component's current version is exact and
			// NOT flagged, no matter how many Applies have landed elsewhere
			// in the graph; only an answer from a superseded version of
			// this component is marked stale.
			if res, ver, stale, ok := s.eng.LookupStale(q, s.cfg.StaleMaxBehind); ok {
				s.writeResult(w, res, ver, stale, start)
				return
			}
		}
		if state == StateStaleServe {
			s.shed(w, "overloaded: serving cached answers only", s.cfg.SampleInterval)
		} else {
			s.shed(w, "overloaded: shedding expensive queries", s.cfg.SampleInterval)
		}
		return
	}

	// Cost-aware rate limit, then the bounded admission queue. Both
	// refuse instantly — buffering past capacity only converts overload
	// into latency.
	if ok, retry := s.buckets[class].take(costOf(len(comp)), time.Now()); !ok {
		s.shed(w, class.String()+"-class rate limit", retry)
		return
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		s.shed(w, "admission queue full", s.cfg.SampleInterval)
		return
	}
	defer func() { <-s.inflight }()

	// Pre-work budget check: if this class's typical peel already
	// overshoots the remaining budget, reject now instead of burning a
	// worker slot to produce a doomed partial.
	elapsed := time.Since(start)
	if est := s.ests[class].estimate(); est > 0 && elapsed+est > budget {
		s.eng.NoteRejected()
		writeError(w, http.StatusUnprocessableEntity, "budget",
			fmt.Sprintf("deadline budget %v cannot cover estimated %v peel", budget, est), 0)
		return
	}

	// The engine deducts its own queue wait from Opts.Timeout
	// (acquireSlot); the server deducts the time spent here before
	// dispatch so the client's deadline is honored end to end.
	q.Opts.Timeout = budget - elapsed
	ctx := r.Context()
	peelStart := time.Now()
	res, err := s.eng.Search(ctx, q)
	peel := time.Since(peelStart)
	if err != nil {
		var pe *engine.PanicError
		switch {
		case errors.Is(err, engine.ErrQueueTimeout):
			writeError(w, http.StatusGatewayTimeout, "queue_timeout",
				"query timed out while queued; search never started", s.cfg.SampleInterval)
		case errors.As(err, &pe):
			writeError(w, http.StatusInternalServerError, "panic",
				fmt.Sprintf("search panicked: %v", pe.Value), 0)
		case errors.Is(err, faultinject.ErrInjected) || errors.Is(err, faultinject.ErrDropped):
			writeError(w, http.StatusInternalServerError, "injected", err.Error(), 0)
		case ctx.Err() != nil && errors.Is(err, ctx.Err()):
			writeError(w, http.StatusGatewayTimeout, "timeout", err.Error(), 0)
		default:
			writeError(w, http.StatusBadRequest, "invalid", err.Error(), 0)
		}
		return
	}
	if !res.TimedOut {
		s.ests[class].observe(peel)
	}
	s.writeResult(w, res, compVer, false, start)
}

func (s *Server) writeResult(w http.ResponseWriter, res *dmcs.Result, epoch uint64, stale bool, start time.Time) {
	s.writeJSON(w, queryResponse{
		Community: res.Community,
		Size:      len(res.Community),
		Score:     res.Score,
		Epoch:     epoch,
		Stale:     stale,
		TimedOut:  res.TimedOut,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

// applyResponse is the POST /apply success shape (engine.ApplyStats on
// the wire).
type applyResponse struct {
	Epoch          uint64 `json:"epoch"`
	NodesAdded     int    `json:"nodes_added"`
	EdgesAdded     int    `json:"edges_added"`
	EdgesRemoved   int    `json:"edges_removed"`
	WeightsChanged int    `json:"weights_changed"`
	RefloodedNodes int    `json:"reflooded_nodes"`
	Components     int    `json:"components"`
	Invalidated    int    `json:"invalidated"`
	Retained       int    `json:"retained"`
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "invalid", "POST only", 0)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", 0)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid", "reading body: "+err.Error(), 0)
		return
	}
	if err := faultinject.Fire(faultinject.ServerDecode); err != nil {
		writeError(w, http.StatusInternalServerError, "injected", err.Error(), 0)
		return
	}
	batch, err := parseUpdateOps(body, s.cfg.MaxUpdateOps)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid", err.Error(), 0)
		return
	}
	st, err := s.eng.Apply(batch)
	if err != nil {
		// The WAL refused the append: nothing was published and nothing is
		// acknowledged. 503 + Retry-After because a transient fsync stall
		// is retryable; a failed-stop log keeps answering this until the
		// process is restarted (which runs recovery).
		writeError(w, http.StatusServiceUnavailable, "durability",
			"batch not applied: "+err.Error(), s.cfg.SampleInterval)
		return
	}
	s.writeJSON(w, applyResponse{
		Epoch:          st.Epoch,
		NodesAdded:     st.NodesAdded,
		EdgesAdded:     st.EdgesAdded,
		EdgesRemoved:   st.EdgesRemoved,
		WeightsChanged: st.WeightsChanged,
		RefloodedNodes: st.RefloodedNodes,
		Components:     st.Components,
		Invalidated:    st.Invalidated,
		Retained:       st.Retained,
	})
}

// statsResponse is the GET /stats shape: raw engine counters plus the
// admission tier's live state. Durations are nanoseconds. The durable
// block is present only when the engine runs with a WAL; recovery is
// present only when this process recovered state at boot.
type statsResponse struct {
	Engine engine.Stats `json:"engine"`
	Server struct {
		State       string `json:"state"`
		Draining    bool   `json:"draining"`
		Inflight    int    `json:"inflight"`
		InflightCap int    `json:"inflight_cap"`
		Epoch       uint64 `json:"epoch"`
	} `json:"server"`
	Durable  *durableStats        `json:"durable,omitempty"`
	Recovery *engine.RecoveryInfo `json:"recovery,omitempty"`
}

// durableStats is the /stats and /healthz durability block.
type durableStats struct {
	// DurableEpoch is the newest epoch the WAL guarantees survives a
	// crash under its fsync policy; Epoch - DurableEpoch is the
	// acknowledged-but-not-yet-fsynced window (0 under -fsync always).
	DurableEpoch uint64 `json:"durable_epoch"`
	// LastCheckpoint is the epoch of the newest checkpoint; replay after
	// a crash starts there.
	LastCheckpoint uint64 `json:"last_checkpoint"`
}

// durable returns the durability block, or nil without a WAL.
func (s *Server) durable() *durableStats {
	ep, ok := s.eng.DurableEpoch()
	if !ok {
		return nil
	}
	st := s.eng.Stats()
	return &durableStats{DurableEpoch: ep, LastCheckpoint: st.LastCheckpoint}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.Engine = s.eng.Stats()
	resp.Server.State = s.State().String()
	resp.Server.Draining = s.draining.Load()
	resp.Server.Inflight = len(s.inflight)
	resp.Server.InflightCap = cap(s.inflight)
	resp.Server.Epoch = s.eng.Epoch()
	resp.Durable = s.durable()
	if ri, ok := s.eng.Recovery(); ok {
		resp.Recovery = &ri
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
	}
	body := map[string]any{
		"state":    s.State().String(),
		"draining": s.draining.Load(),
	}
	if d := s.durable(); d != nil {
		body["durable_epoch"] = d.DurableEpoch
		body["last_checkpoint"] = d.LastCheckpoint
		if ri, ok := s.eng.Recovery(); ok {
			body["recovered_epoch"] = ri.RecoveredEpoch
			body["recovery_fresh"] = ri.FreshStart
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// handleStateDump streams the engine's canonical state image — the
// checkpoint encoding of the current snapshot. Two processes hold
// bit-identical graph state iff their dumps are byte-equal, which is
// exactly how the kill-crash harness compares a recovered server
// against its reference.
func (s *Server) handleStateDump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "invalid", "GET only", 0)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = s.eng.WriteStateDump(w)
}
