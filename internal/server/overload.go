package server

import "time"

// Overload control. DMCS query cost is wildly skewed — a whale-component
// peel costs six orders of magnitude more than a cache hit — so a fixed
// admission policy either wastes capacity (tuned for whales) or
// collapses (tuned for hits). The server instead runs a three-state
// controller fed by two signals: how full the bounded admission queue
// is, and where the served p99 sits against the SLO target.
//
//	healthy ──(queue ≥ high OR p99 > SLO)──► shed-expensive
//	shed-expensive ──(queue ≥ full OR p99 ≥ 2·SLO)──► stale-serve
//	any ──(queue ≤ low AND p99 ≤ SLO, for CalmSamples consecutive
//	       samples)──► one state down
//
// In shed-expensive, queries classified expensive (big components) are
// answered from the stale cache when possible and shed otherwise, while
// cheap queries keep flowing — one whale storm cannot starve the
// interactive traffic. In stale-serve, the server stops starting ANY
// new peels: everything is answered from cached (possibly epoch-stale,
// explicitly flagged) results or shed with Retry-After. Recovery steps
// down one state at a time and only after a run of calm samples, so the
// controller cannot flap at a watermark.
//
// The controller itself is a pure, single-goroutine state machine —
// Observe takes a sample, returns the state — so every transition is
// table-testable without clocks or load. The Server feeds it from a
// background sampler and publishes the state in an atomic for handlers.

// OverloadState is the controller's degradation level. Order matters:
// higher states are stricter, and recovery steps down one level at a
// time.
type OverloadState int32

const (
	// StateHealthy admits everything that passes the token buckets and
	// the bounded queue.
	StateHealthy OverloadState = iota
	// StateShedExpensive sheds expensive-class queries (stale answers
	// allowed); cheap queries flow normally.
	StateShedExpensive
	// StateStaleServe starts no new peels: cached/stale answers or
	// explicit shed responses only.
	StateStaleServe
)

// String returns the state's wire name (as reported by /stats and
// /healthz).
func (s OverloadState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateShedExpensive:
		return "shed-expensive"
	case StateStaleServe:
		return "stale-serve"
	}
	return "unknown"
}

// OverloadConfig tunes the controller's watermarks. The zero value is
// filled in by defaults() — fractions of the bounded queue plus an SLO
// p99 target.
type OverloadConfig struct {
	// SLO is the p99 latency target; p99 above it escalates one level,
	// p99 at 2× or beyond escalates straight to stale-serve. 0 disables
	// the latency signal (queue depth still escalates).
	SLO time.Duration
	// HighWater and FullWater are admission-queue fullness fractions
	// that trigger shed-expensive and stale-serve respectively.
	HighWater, FullWater float64
	// LowWater is the queue fraction at or below which a sample counts
	// as calm (p99 must also be within SLO).
	LowWater float64
	// CalmSamples is how many consecutive calm samples are required to
	// step down one state — the hysteresis that stops flapping.
	CalmSamples int
}

func (c *OverloadConfig) defaults() {
	if c.HighWater == 0 {
		c.HighWater = 0.75
	}
	if c.FullWater == 0 {
		c.FullWater = 0.95
	}
	if c.LowWater == 0 {
		c.LowWater = 0.25
	}
	if c.CalmSamples == 0 {
		c.CalmSamples = 5
	}
}

// overloadController is the pure state machine. Not safe for concurrent
// use — the Server samples from one goroutine and publishes the
// resulting state atomically.
type overloadController struct {
	cfg   OverloadConfig
	state OverloadState
	calm  int
}

func newOverloadController(cfg OverloadConfig) *overloadController {
	cfg.defaults()
	return &overloadController{cfg: cfg}
}

// Observe feeds one sample (queue fullness in [0,1], served p99) and
// returns the resulting state.
func (c *overloadController) Observe(queueFrac float64, p99 time.Duration) OverloadState {
	sloBlown := c.cfg.SLO > 0 && p99 > c.cfg.SLO
	sloCollapsed := c.cfg.SLO > 0 && p99 >= 2*c.cfg.SLO
	switch {
	case queueFrac >= c.cfg.FullWater || sloCollapsed:
		c.state = StateStaleServe
		c.calm = 0
	case queueFrac >= c.cfg.HighWater || sloBlown:
		if c.state < StateShedExpensive {
			c.state = StateShedExpensive
		}
		c.calm = 0
	case queueFrac <= c.cfg.LowWater && !sloBlown:
		c.calm++
		if c.calm >= c.cfg.CalmSamples && c.state > StateHealthy {
			c.state--
			c.calm = 0
		}
	default:
		// In-between load: neither escalate nor make recovery progress.
		c.calm = 0
	}
	return c.state
}
