package detect

import (
	"slices"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// DensityDetect implements the paper's future-work proposal (Section 7):
// community *detection* driven by density modularity. It is an
// agglomerative algorithm in the CNM mold whose objective is the *mean*
// density modularity (Σ_C DM(C)) / |partition|.
//
// The aggregation matters. Summing DM naively rewards fragmentation (every
// extra dense fragment adds a positive term), while the size-weighted sum
// Σ|C|·DM(C) telescopes to Σ(l_C − d_C²/4|E|) = |E|·CM — exactly classic
// modularity, resolution limit included (TestSumDMIdentity verifies this
// identity). The mean sits in between: it inherits DM's per-community
// density signal yet penalizes gratuitous splitting, so on the
// ring-of-cliques gadget it stops at the individual cliques instead of
// merging neighbours.
//
// It returns the final partition as a node labeling.
func DensityDetect(g *graph.Graph) []int {
	n := g.NumNodes()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	m := int64(g.NumEdges())
	if m == 0 {
		return labels
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// per-root sufficient statistics
	l := make([]int64, n) // internal edges
	d := make([]int64, n) // degree sum
	sz := make([]int, n)  // size
	for u := 0; u < n; u++ {
		d[u] = int64(g.Degree(graph.Node(u)))
		sz[u] = 1
	}
	dm := func(root int32) float64 {
		return modularity.DensityParts(modularity.Stats{L: l[root], D: d[root], Size: sz[root]}, m)
	}
	// current objective state: Σ DM over communities, community count
	sum := 0.0
	for u := 0; u < n; u++ {
		sum += dm(int32(u))
	}
	count := n
	edges := g.EdgeList()
	for count > 1 {
		// aggregate inter-community edges by root pair
		between := make(map[[2]int32]int64)
		for _, e := range edges {
			ru, rv := find(int32(e[0])), find(int32(e[1]))
			if ru == rv {
				continue
			}
			if ru > rv {
				ru, rv = rv, ru
			}
			between[[2]int32{ru, rv}]++
		}
		if len(between) == 0 {
			break
		}
		// best merge by gain in mean DM: (sum+δ)/(count−1) − sum/count
		var bi, bj int32 = -1, -1
		bestGain := 0.0
		bestDelta := 0.0
		mean := sum / float64(count)
		for pair, e := range between {
			ri, rj := pair[0], pair[1]
			merged := modularity.DensityParts(modularity.Stats{
				L: l[ri] + l[rj] + e, D: d[ri] + d[rj], Size: sz[ri] + sz[rj],
			}, m)
			delta := merged - dm(ri) - dm(rj)
			gain := (sum+delta)/float64(count-1) - mean
			if gain > bestGain+1e-12 {
				bestGain, bestDelta, bi, bj = gain, delta, pair[0], pair[1]
			}
		}
		if bi < 0 {
			break // no merge improves the mean density modularity
		}
		e := between[[2]int32{bi, bj}]
		parent[bj] = bi
		l[bi] += l[bj] + e
		d[bi] += d[bj]
		sz[bi] += sz[bj]
		sum += bestDelta
		count--
	}
	// densely renumber roots
	renum := map[int32]int{}
	for u := 0; u < n; u++ {
		r := find(int32(u))
		if _, ok := renum[r]; !ok {
			renum[r] = len(renum)
		}
		labels[u] = renum[r]
	}
	refineByLocalMoves(g, labels, m)
	return labels
}

// refineByLocalMoves greedily relocates single nodes between neighboring
// communities while the summed density modularity improves. Agglomeration
// can strand peripheral nodes in fragments (a merge is all-or-nothing);
// node-level moves clean those up without changing the objective.
func refineByLocalMoves(g *graph.Graph, labels []int, m int64) {
	n := g.NumNodes()
	k := 0
	for _, lab := range labels {
		if lab+1 > k {
			k = lab + 1
		}
	}
	l := make([]int64, k)
	d := make([]int64, k)
	sz := make([]int, k)
	for u := 0; u < n; u++ {
		d[labels[u]] += int64(g.Degree(graph.Node(u)))
		sz[labels[u]]++
	}
	g.Edges(func(u, v graph.Node) bool {
		if labels[u] == labels[v] {
			l[labels[u]]++
		}
		return true
	})
	dm := func(c int) float64 {
		return modularity.DensityParts(modularity.Stats{L: l[c], D: d[c], Size: sz[c]}, m)
	}
	sum := 0.0
	count := 0
	for c := 0; c < k; c++ {
		if sz[c] > 0 {
			sum += dm(c)
			count++
		}
	}
	for pass := 0; pass < 30; pass++ {
		moved := false
		for u := 0; u < n; u++ {
			cu := labels[u]
			// edges from u into each neighboring community
			kTo := map[int]int64{}
			for _, w := range g.Neighbors(graph.Node(u)) {
				kTo[labels[w]]++
			}
			du := int64(g.Degree(graph.Node(u)))
			base := dm(cu)
			afterLeave := modularity.DensityParts(modularity.Stats{
				L: l[cu] - kTo[cu], D: d[cu] - du, Size: sz[cu] - 1,
			}, m)
			countAfter := count
			if sz[cu] == 1 {
				countAfter-- // moving the last member dissolves cu
			}
			bestC, bestGain, bestDelta := cu, 0.0, 0.0
			for c := range kTo {
				if c == cu {
					continue
				}
				delta := afterLeave +
					modularity.DensityParts(modularity.Stats{
						L: l[c] + kTo[c], D: d[c] + du, Size: sz[c] + 1,
					}, m) - base - dm(c)
				gain := (sum+delta)/float64(countAfter) - sum/float64(count)
				if gain > bestGain+1e-12 {
					bestGain, bestDelta, bestC = gain, delta, c
				}
			}
			if bestC != cu {
				l[cu] -= kTo[cu]
				d[cu] -= du
				sz[cu]--
				l[bestC] += kTo[bestC]
				d[bestC] += du
				sz[bestC]++
				labels[u] = bestC
				sum += bestDelta
				count = countAfter
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// PartitionCommunities converts a labeling into explicit community node
// sets, sorted by community id then node id.
func PartitionCommunities(labels []int) [][]graph.Node {
	k := 0
	for _, lab := range labels {
		if lab+1 > k {
			k = lab + 1
		}
	}
	out := make([][]graph.Node, k)
	for u, lab := range labels {
		out[lab] = append(out[lab], graph.Node(u))
	}
	for _, c := range out {
		slices.Sort(c)
	}
	return out
}
