package detect

import (
	"testing"

	"dmcs/internal/gen"
	"dmcs/internal/graph"
	"dmcs/internal/metrics"
)

// twoCliquesBridge: two K5s (0-4, 5-9) joined by one bridge edge 4-5.
func twoCliquesBridge() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			b.AddEdge(graph.Node(i+5), graph.Node(j+5))
		}
	}
	b.AddEdge(4, 5)
	return b.Build()
}

func containsAll(c []graph.Node, want ...graph.Node) bool {
	in := make(map[graph.Node]bool, len(c))
	for _, u := range c {
		in[u] = true
	}
	for _, u := range want {
		if !in[u] {
			return false
		}
	}
	return true
}

func TestGirvanNewmanSplitsBridge(t *testing.T) {
	g := twoCliquesBridge()
	c := GirvanNewman(g, []graph.Node{0}, 0)
	if len(c) != 5 {
		t.Fatalf("GN community=%v want one K5", c)
	}
	if !containsAll(c, 0, 1, 2, 3, 4) {
		t.Fatalf("GN community=%v want left K5", c)
	}
}

func TestGirvanNewmanMultiQuery(t *testing.T) {
	g := twoCliquesBridge()
	// query nodes on both sides force the bridge to stay
	c := GirvanNewman(g, []graph.Node{0, 9}, 0)
	if !containsAll(c, 0, 9) {
		t.Fatalf("GN must keep both query nodes: %v", c)
	}
}

func TestGirvanNewmanDisconnectedQuery(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {2, 3}})
	if c := GirvanNewman(g, []graph.Node{0, 3}, 0); c != nil {
		t.Fatalf("disconnected query should fail, got %v", c)
	}
	if GirvanNewman(g, nil, 0) != nil {
		t.Fatal("empty query should fail")
	}
}

func TestGirvanNewmanMaxRemovals(t *testing.T) {
	g := twoCliquesBridge()
	// with a single removal allowed the bridge goes first, already
	// splitting the graph correctly
	c := GirvanNewman(g, []graph.Node{0}, 1)
	if len(c) != 5 {
		t.Fatalf("GN(1 removal)=%v want one K5", c)
	}
}

func TestCNMSplitsBridge(t *testing.T) {
	g := twoCliquesBridge()
	c := CNM(g, []graph.Node{0})
	if len(c) != 5 || !containsAll(c, 0, 1, 2, 3, 4) {
		t.Fatalf("CNM community=%v want left K5", c)
	}
}

func TestCNMKeepsQueryNodes(t *testing.T) {
	g := twoCliquesBridge()
	c := CNM(g, []graph.Node{0, 9})
	if !containsAll(c, 0, 9) {
		t.Fatalf("CNM must contain both query nodes: %v", c)
	}
}

func TestCNMEdgelessAndDisconnected(t *testing.T) {
	if CNM(graph.FromEdges(3, nil), []graph.Node{0}) != nil {
		t.Fatal("edgeless CNM should be nil")
	}
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {2, 3}})
	if CNM(g, []graph.Node{0, 3}) != nil {
		t.Fatal("disconnected query should be nil")
	}
}

func TestLouvainRingOfCliques(t *testing.T) {
	g, comms := gen.RingOfCliques(8, 5)
	labels := Louvain(g)
	// Louvain should give every clique a homogeneous label
	for ci, c := range comms {
		l := labels[c[0]]
		for _, u := range c {
			if labels[u] != l {
				t.Fatalf("clique %d split by Louvain: %v", ci, labels)
			}
		}
	}
	// and should find more than one community
	uniq := map[int]bool{}
	for _, l := range labels {
		uniq[l] = true
	}
	if len(uniq) < 2 {
		t.Fatalf("Louvain found %d communities, want several", len(uniq))
	}
}

func TestLouvainAgainstGroundTruthNMI(t *testing.T) {
	g, comms := gen.PlantedPartition([]int{40, 40, 40}, 0.4, 0.01, 17)
	labels := Louvain(g)
	truth := make([]int, g.NumNodes())
	for ci, c := range comms {
		for _, u := range c {
			truth[u] = ci
		}
	}
	if nmi := metrics.PartitionNMI(labels, truth); nmi < 0.8 {
		t.Fatalf("Louvain NMI=%.3f too low on an easy planted partition", nmi)
	}
}

func TestLouvainEdgeless(t *testing.T) {
	labels := Louvain(graph.FromEdges(3, nil))
	if len(labels) != 3 {
		t.Fatal("edgeless Louvain should return singleton labels")
	}
}

func TestLocalModularity(t *testing.T) {
	g := twoCliquesBridge()
	s := map[graph.Node]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	// left K5: 10 internal edges, 1 external (the bridge)
	if m := LocalModularity(g, s); m != 10 {
		t.Fatalf("M=%v want 10", m)
	}
	whole := map[graph.Node]bool{}
	for i := 0; i < 10; i++ {
		whole[graph.Node(i)] = true
	}
	if m := LocalModularity(g, whole); m < 1e17 {
		t.Fatalf("whole graph has no external edges, M=%v", m)
	}
	if m := LocalModularity(g, map[graph.Node]bool{}); m != 0 {
		t.Fatalf("empty set M=%v want 0", m)
	}
}

func TestICWI2008GrowsToClique(t *testing.T) {
	g := twoCliquesBridge()
	c := ICWI2008(g, []graph.Node{0})
	if !containsAll(c, 0) {
		t.Fatalf("icwi2008 must contain the query: %v", c)
	}
	// local modularity of a K5 with one external edge is 10; adding the
	// other clique makes it infinite (no external edges), so icwi2008
	// famously prefers the whole graph — the instability the paper notes.
	if len(c) != 5 && len(c) != 10 {
		t.Fatalf("icwi2008 community=%v want K5 or whole graph", c)
	}
}

func TestICWI2008EmptyQuery(t *testing.T) {
	if ICWI2008(twoCliquesBridge(), nil) != nil {
		t.Fatal("empty query should fail")
	}
}

func TestICWI2008ConnectedResult(t *testing.T) {
	g, _ := gen.PlantedPartition([]int{20, 20}, 0.4, 0.02, 5)
	c := ICWI2008(g, []graph.Node{3})
	if len(c) == 0 {
		t.Fatal("icwi2008 returned nothing")
	}
	s := make(map[graph.Node]bool, len(c))
	for _, u := range c {
		s[u] = true
	}
	if !connectedSet(g, s, 3) {
		t.Fatalf("icwi2008 result disconnected: %v", c)
	}
}
