package detect

import (
	"testing"

	"dmcs/internal/gen"
	"dmcs/internal/graph"
	"dmcs/internal/metrics"
	"dmcs/internal/modularity"
)

func modularityDensity(g *graph.Graph, c []graph.Node) float64 { return modularity.Density(g, c) }
func modularityClassic(g *graph.Graph, c []graph.Node) float64 { return modularity.Classic(g, c) }

func TestDensityDetectRingOfCliquesNoResolutionLimit(t *testing.T) {
	// The headline of the future-work extension: on the ring of cliques,
	// CM-based agglomeration famously merges adjacent cliques (resolution
	// limit), while DM-based agglomeration must recover each clique
	// exactly.
	g, comms := gen.RingOfCliques(20, 5)
	labels := DensityDetect(g)
	truth := make([]int, g.NumNodes())
	for ci, c := range comms {
		for _, u := range c {
			truth[u] = ci
		}
	}
	if nmi := metrics.PartitionNMI(labels, truth); nmi < 0.999 {
		t.Fatalf("DM detection NMI=%.4f, want exact clique recovery", nmi)
	}
	// every clique homogeneous, no two cliques share a label
	seen := map[int]int{}
	for ci, c := range comms {
		lab := labels[c[0]]
		for _, u := range c {
			if labels[u] != lab {
				t.Fatalf("clique %d split", ci)
			}
		}
		if prev, ok := seen[lab]; ok {
			t.Fatalf("cliques %d and %d merged (resolution limit!)", prev, ci)
		}
		seen[lab] = ci
	}
}

func TestDensityDetectPlantedPartition(t *testing.T) {
	g, comms := gen.PlantedPartition([]int{30, 30, 30}, 0.5, 0.01, 23)
	labels := DensityDetect(g)
	truth := make([]int, g.NumNodes())
	for ci, c := range comms {
		for _, u := range c {
			truth[u] = ci
		}
	}
	if nmi := metrics.PartitionNMI(labels, truth); nmi < 0.7 {
		t.Fatalf("DM detection NMI=%.3f too low on an easy planted partition", nmi)
	}
}

func TestDensityDetectEdgeless(t *testing.T) {
	labels := DensityDetect(graph.FromEdges(4, nil))
	uniq := map[int]bool{}
	for _, l := range labels {
		uniq[l] = true
	}
	if len(uniq) != 4 {
		t.Fatalf("edgeless graph should stay as singletons: %v", labels)
	}
}

// The identity referenced in DensityDetect's doc comment: the
// size-weighted sum of density modularities telescopes to |E| times the
// total classic modularity, Σ_C |C|·DM(C) = |E|·Σ_C CM(C). This is why
// size-weighting is NOT a resolution-limit fix.
func TestSumDMIdentity(t *testing.T) {
	g, comms := gen.PlantedPartition([]int{15, 20, 25}, 0.4, 0.03, 9)
	var weighted, cm float64
	for _, c := range comms {
		weighted += float64(len(c)) * modularityDensity(g, c)
		cm += modularityClassic(g, c)
	}
	want := float64(g.NumEdges()) * cm
	if diff := weighted - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Σ|C|·DM = %v, |E|·ΣCM = %v", weighted, want)
	}
}

func TestPartitionCommunities(t *testing.T) {
	comms := PartitionCommunities([]int{0, 1, 0, 2, 1})
	if len(comms) != 3 {
		t.Fatalf("got %d communities", len(comms))
	}
	if len(comms[0]) != 2 || comms[0][0] != 0 || comms[0][1] != 2 {
		t.Fatalf("community 0 = %v", comms[0])
	}
}

// Contrast test on the paper's own Example 3 gadget (30 six-node cliques):
// density modularity prefers the split cliques (DM 2.4111 > 2.4056), so DM
// detection must recover all 30, at least as many as CM-based Louvain
// whose resolution limit tends to merge neighbours. Note this flips for
// very small cliques (e.g. 4-node rings), where even DM scores the merged
// pair higher — the mitigation is relative, not absolute, exactly as
// Lemma 2 states.
func TestDensityDetectFinerThanLouvainOnRing(t *testing.T) {
	g, _ := gen.RingOfCliques(30, 6)
	dmLabels := DensityDetect(g)
	louvainLabels := Louvain(g)
	count := func(lab []int) int {
		u := map[int]bool{}
		for _, l := range lab {
			u[l] = true
		}
		return len(u)
	}
	if count(dmLabels) < count(louvainLabels) {
		t.Fatalf("DM detection found %d communities, Louvain %d — resolution limit not mitigated",
			count(dmLabels), count(louvainLabels))
	}
	if count(dmLabels) != 30 {
		t.Fatalf("DM detection found %d communities on 30 cliques", count(dmLabels))
	}
}
