// Package detect implements the community-detection baselines the paper
// compares against: the Girvan–Newman divisive algorithm (GN), the
// Clauset–Newman–Moore agglomerative algorithm (CNM), Luo's local
// modularity greedy (icwi2008), and — from the related-work discussion —
// the Louvain algorithm.
//
// Following Section 6.1, GN and CNM are adapted to community search by
// scanning their intermediate partitions: among all intermediate subgraphs
// containing the query nodes, the one with the largest density modularity
// is returned.
package detect

import (
	"slices"

	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// mutableGraph is a small adjacency-set graph supporting edge deletion,
// used by the divisive GN algorithm.
type mutableGraph struct {
	adj []map[graph.Node]bool
	m   int
}

func newMutable(g *graph.Graph) *mutableGraph {
	mg := &mutableGraph{adj: make([]map[graph.Node]bool, g.NumNodes()), m: g.NumEdges()}
	for u := 0; u < g.NumNodes(); u++ {
		mg.adj[u] = make(map[graph.Node]bool, g.Degree(graph.Node(u)))
		for _, w := range g.Neighbors(graph.Node(u)) {
			mg.adj[u][w] = true
		}
	}
	return mg
}

func (mg *mutableGraph) removeEdge(u, v graph.Node) {
	if mg.adj[u][v] {
		delete(mg.adj[u], v)
		delete(mg.adj[v], u)
		mg.m--
	}
}

func (mg *mutableGraph) component(src graph.Node) []graph.Node {
	seen := map[graph.Node]bool{src: true}
	queue := []graph.Node{src}
	out := []graph.Node{src}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for w := range mg.adj[u] {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
				queue = append(queue, w)
			}
		}
	}
	return out
}

// edgeBetweenness computes Brandes edge betweenness over the mutable graph.
func (mg *mutableGraph) edgeBetweenness() map[[2]graph.Node]float64 {
	n := len(mg.adj)
	out := make(map[[2]graph.Node]float64)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]graph.Node, n)
	for s := 0; s < n; s++ {
		if len(mg.adj[s]) == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		src := graph.Node(s)
		dist[src] = 0
		sigma[src] = 1
		queue := []graph.Node{src}
		var stack []graph.Node
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			stack = append(stack, x)
			for w := range mg.adj[x] {
				if dist[w] < 0 {
					dist[w] = dist[x] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[x]+1 {
					sigma[w] += sigma[x]
					preds[w] = append(preds[w], x)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, x := range preds[w] {
				c := sigma[x] / sigma[w] * (1 + delta[w])
				delta[x] += c
				a, b := x, w
				if a > b {
					a, b = b, a
				}
				out[[2]graph.Node{a, b}] += c
			}
		}
	}
	return out
}

// GirvanNewman runs the divisive GN baseline for community search: remove
// the highest-betweenness edge repeatedly; among the intermediate
// components containing all query nodes, return the one maximizing the
// density modularity. maxRemovals bounds the number of edge removals
// (≤ 0 means no bound). Returns nil when the query nodes start
// disconnected.
func GirvanNewman(g *graph.Graph, q []graph.Node, maxRemovals int) []graph.Node {
	if len(q) == 0 || !graph.SameComponent(g, q) {
		return nil
	}
	// One packed snapshot scores every intermediate component (the
	// original graph's statistics, per Section 6.1's adaptation).
	csr := graph.NewCSR(g)
	mg := newMutable(g)
	containsAll := func(comp []graph.Node) bool {
		in := make(map[graph.Node]bool, len(comp))
		for _, u := range comp {
			in[u] = true
		}
		for _, u := range q {
			if !in[u] {
				return false
			}
		}
		return true
	}
	best := mg.component(q[0])
	bestScore := modularity.DensityCSR(csr, best)
	removals := 0
	for mg.m > 0 {
		if maxRemovals > 0 && removals >= maxRemovals {
			break
		}
		eb := mg.edgeBetweenness()
		var maxE [2]graph.Node
		maxV := -1.0
		for e, v := range eb {
			if v > maxV {
				maxV, maxE = v, e
			}
		}
		if maxV < 0 {
			break
		}
		mg.removeEdge(maxE[0], maxE[1])
		removals++
		comp := mg.component(q[0])
		if !containsAll(comp) {
			break // Q can never reunite under further removals
		}
		if s := modularity.DensityCSR(csr, comp); s > bestScore {
			bestScore = s
			best = append(best[:0], comp...)
		}
	}
	slices.Sort(best)
	return best
}

// CNM runs the agglomerative Clauset–Newman–Moore baseline for community
// search: merge the community pair with the largest classic-modularity
// gain until a single community remains; among the intermediate
// communities containing all query nodes, return the one with the largest
// density modularity.
func CNM(g *graph.Graph, q []graph.Node) []graph.Node {
	if len(q) == 0 || !graph.SameComponent(g, q) {
		return nil
	}
	m := int64(g.NumEdges())
	if m == 0 {
		return nil
	}
	n := g.NumNodes()
	csr := graph.NewCSR(g) // scores every intermediate community over flat arrays
	// community state: union-find roots own degree sums and member lists
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	deg := make([]int64, n) // total degree per community root
	members := make([][]graph.Node, n)
	for u := 0; u < n; u++ {
		deg[u] = int64(g.Degree(graph.Node(u)))
		members[u] = []graph.Node{graph.Node(u)}
	}
	// track where the query nodes live and score whenever they share one
	best := []graph.Node(nil)
	bestScore := 0.0
	scoreIfQueryCommunity := func(root int32) {
		in := make(map[graph.Node]bool, len(members[root]))
		for _, u := range members[root] {
			in[u] = true
		}
		for _, u := range q {
			if !in[u] {
				return
			}
		}
		if s := modularity.DensityCSR(csr, members[root]); best == nil || s > bestScore {
			bestScore = s
			best = append([]graph.Node(nil), members[root]...)
		}
	}
	scoreIfQueryCommunity(find(int32(q[0])))
	edges := g.EdgeList()
	for active := n; active > 1; {
		// aggregate inter-community edge counts by root pair, then pick
		// the connected pair with the largest ΔQ = e_ij/m − d_i d_j/(2m²)
		between := make(map[[2]int32]int64)
		for _, e := range edges {
			ru, rv := find(int32(e[0])), find(int32(e[1]))
			if ru == rv {
				continue
			}
			if ru > rv {
				ru, rv = rv, ru
			}
			between[[2]int32{ru, rv}]++
		}
		if len(between) == 0 {
			break // remaining communities are disconnected
		}
		var bi, bj int32 = -1, -1
		bestGain := 0.0
		first := true
		for pair, e := range between {
			gain := float64(e)/float64(m) -
				float64(deg[pair[0]])*float64(deg[pair[1]])/(2*float64(m)*float64(m))
			// deterministic tie-break on the pair ids
			if first || gain > bestGain ||
				(gain == bestGain && (pair[0] < bi || (pair[0] == bi && pair[1] < bj))) {
				first = false
				bestGain, bi, bj = gain, pair[0], pair[1]
			}
		}
		parent[bj] = bi
		deg[bi] += deg[bj]
		members[bi] = append(members[bi], members[bj]...)
		members[bj] = nil
		active--
		scoreIfQueryCommunity(bi)
	}
	slices.Sort(best)
	return best
}

// Louvain runs the Louvain community-detection algorithm (Blondel et al.
// 2008) and returns the final partition as a node labeling. It is used by
// the ablation experiments; deterministic given the node order.
func Louvain(g *graph.Graph) []int {
	n := g.NumNodes()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	// current condensed graph: weights between super-nodes
	type wedge map[int]float64
	adj := make([]wedge, n)
	self := make([]float64, n)
	node2super := make([]int, n)
	for i := range node2super {
		node2super[i] = i
	}
	for u := 0; u < n; u++ {
		adj[u] = wedge{}
	}
	var m2 float64 // 2m (total weight × 2)
	g.EdgesW(func(u, v graph.Node, w float64) bool {
		adj[u][int(v)] += w
		adj[v][int(u)] += w
		m2 += 2 * w
		return true
	})
	if m2 == 0 {
		return labels
	}
	for pass := 0; pass < 16; pass++ {
		nn := len(adj)
		comm := make([]int, nn)
		ktot := make([]float64, nn) // community total degree
		kdeg := make([]float64, nn) // node degree
		for u := 0; u < nn; u++ {
			comm[u] = u
			// Sorted neighbor sweep keeps the float degree sums (and
			// with them the whole Louvain trajectory) run-to-run stable.
			for _, v := range sortedNbrs(adj[u]) {
				kdeg[u] += adj[u][v]
			}
			kdeg[u] += 2 * self[u]
			ktot[u] = kdeg[u]
		}
		improvedAny := false
		for moved := true; moved; {
			moved = false
			for u := 0; u < nn; u++ {
				// weights to neighbor communities, accumulated in
				// sorted neighbor order for deterministic float sums
				wc := map[int]float64{}
				for _, v := range sortedNbrs(adj[u]) {
					wc[comm[v]] += adj[u][v]
				}
				cur := comm[u]
				ktot[cur] -= kdeg[u]
				// sorted argmax: map-order iteration would break ties
				// differently run to run
				bestC, bestGain := cur, 0.0
				for _, c := range sortedNbrs(wc) {
					gain := wc[c] - ktot[c]*kdeg[u]/m2
					if gain > bestGain+1e-12 {
						bestGain, bestC = gain, c
					}
				}
				// compare against staying
				if wStay, ok := wc[cur]; ok {
					stay := wStay - ktot[cur]*kdeg[u]/m2
					if stay >= bestGain-1e-12 {
						bestC = cur
					}
				}
				ktot[bestC] += kdeg[u]
				if bestC != cur {
					comm[u] = bestC
					moved = true
					improvedAny = true
				}
			}
		}
		if !improvedAny {
			break
		}
		// renumber communities densely
		renum := map[int]int{}
		for u := 0; u < nn; u++ {
			if _, ok := renum[comm[u]]; !ok {
				renum[comm[u]] = len(renum)
			}
		}
		// write back to original nodes
		for i := range node2super {
			node2super[i] = renum[comm[node2super[i]]]
			labels[i] = node2super[i]
		}
		// condense
		cn := len(renum)
		nadj := make([]wedge, cn)
		nself := make([]float64, cn)
		for i := range nadj {
			nadj[i] = wedge{}
		}
		for u := 0; u < nn; u++ {
			cu := renum[comm[u]]
			nself[cu] += self[u]
			for _, v := range sortedNbrs(adj[u]) {
				w := adj[u][v]
				cv := renum[comm[v]]
				if cu == cv {
					if u < v {
						nself[cu] += w
					}
				} else {
					nadj[cu][cv] += w
				}
			}
		}
		adj, self = nadj, nself
		if cn == nn {
			break
		}
	}
	return labels
}

// LocalModularity is Luo's local modularity M(S) = internal edges /
// external edges of the subgraph S (icwi2008). Returns +Inf when S has no
// external edge.
func LocalModularity(g *graph.Graph, s map[graph.Node]bool) float64 {
	var in, out float64
	for u := range s {
		for _, w := range g.Neighbors(u) {
			if s[w] {
				if u < w {
					in++
				}
			} else {
				out++
			}
		}
	}
	if out == 0 {
		if in == 0 {
			return 0
		}
		return 1e18
	}
	return in / out
}

// ICWI2008 runs Luo's local-modularity greedy (icwi2008): grow the
// community from the query nodes by additions that improve M, then prune
// removable nodes that improve M, alternating until stable. The returned
// community always contains the query nodes and is connected.
func ICWI2008(g *graph.Graph, q []graph.Node) []graph.Node {
	if len(q) == 0 {
		return nil
	}
	s := make(map[graph.Node]bool, len(q))
	for _, u := range q {
		s[u] = true
	}
	isQuery := make(map[graph.Node]bool, len(q))
	for _, u := range q {
		isQuery[u] = true
	}
	for iter := 0; iter < 200; iter++ {
		changed := false
		// addition step: add the neighbor giving the best improvement
		cur := LocalModularity(g, s)
		frontier := map[graph.Node]bool{}
		for u := range s {
			for _, w := range g.Neighbors(u) {
				if !s[w] {
					frontier[w] = true
				}
			}
		}
		var bestAdd graph.Node = -1
		bestM := cur
		for w := range frontier {
			s[w] = true
			if m := LocalModularity(g, s); m > bestM {
				bestM, bestAdd = m, w
			}
			delete(s, w)
		}
		if bestAdd >= 0 {
			s[bestAdd] = true
			changed = true
		}
		// deletion step: remove any node that improves M, keeping Q and
		// connectivity
		cur = LocalModularity(g, s)
		var bestDel graph.Node = -1
		bestM = cur
		for u := range s {
			if isQuery[u] {
				continue
			}
			delete(s, u)
			if connectedSet(g, s, q[0]) {
				if m := LocalModularity(g, s); m > bestM {
					bestM, bestDel = m, u
				}
			}
			s[u] = true
		}
		if bestDel >= 0 {
			delete(s, bestDel)
			changed = true
		}
		if !changed {
			break
		}
	}
	out := make([]graph.Node, 0, len(s))
	for u := range s {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

func connectedSet(g *graph.Graph, s map[graph.Node]bool, src graph.Node) bool {
	if !s[src] {
		return false
	}
	seen := map[graph.Node]bool{src: true}
	queue := []graph.Node{src}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(u) {
			if s[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(seen) == len(s)
}

// sortedNbrs returns m's keys in ascending order, so float sums over the
// weighted adjacency maps visit entries deterministically.
func sortedNbrs(m map[int]float64) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}
