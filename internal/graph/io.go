package graph

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
)

// ParseEdgeList reads a whitespace-separated edge list, one edge per line.
// Lines starting with '#' or '%' are comments. Endpoints may be arbitrary
// string tokens; they are interned into dense node ids in first-seen order
// and kept as labels. An optional third numeric column is an edge weight.
//
// Weight rule for mixed files: if any line carries a weight, the whole
// graph is weighted and every bare 2-column line means weight 1.0 —
// regardless of whether the bare line appears before or after the first
// weighted one. (Previously bare lines got no weight entry at all,
// producing a half-weighted graph whose unweighted edges silently fell
// back to the default — correct by accident for the in-memory Graph, but
// lost on any explicit per-edge weight sweep.) Repeated edge lines
// overwrite: the last line mentioning an edge decides its weight.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	ids := make(map[string]Node)
	var labels []string
	intern := func(tok string) Node {
		if id, ok := ids[tok]; ok {
			return id
		}
		id := Node(len(labels))
		ids[tok] = id
		labels = append(labels, tok)
		return id
	}
	b := NewBuilder(0)
	anyWeighted := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(f))
		}
		u, v := intern(f[0]), intern(f[1])
		if len(f) >= 3 {
			w, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, f[2], err)
			}
			b.SetWeight(u, v, w)
			anyWeighted = true
		} else {
			b.AddEdge(u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %v", err)
	}
	// Whether the file is weighted is only known now. If any line carried
	// a weight, backfill an explicit 1.0 entry for every edge whose last
	// record was a bare line (AddEdge resets any earlier weight, so
	// last-wins already held per line; this keeps the parse streaming
	// instead of buffering O(E) lines). The tracked flag, not len(b.ew),
	// decides: bare re-adds may have reset every recorded weight, and the
	// file is weighted regardless.
	if anyWeighted {
		if b.ew == nil {
			b.ew = make(map[[2]Node]float64, len(b.edges))
		}
		for e := range b.edges {
			if _, ok := b.ew[e]; !ok {
				b.ew[e] = 1
			}
		}
	}
	b.SetLabels(labels)
	return b.Build(), nil
}

// WriteEdgeList writes g as "u v" lines using labels when present.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(u, v Node) bool {
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%s %s %g\n", g.Label(u), g.Label(v), g.EdgeWeight(u, v))
		} else {
			_, err = fmt.Fprintf(bw, "%s %s\n", g.Label(u), g.Label(v))
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ParseCommunities reads a ground-truth community file: one community per
// line, whitespace-separated member tokens resolved against the graph's
// labels (or decimal ids for unlabeled graphs). Unknown tokens are an error.
func ParseCommunities(r io.Reader, g *Graph) ([][]Node, error) {
	byLabel := make(map[string]Node, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		byLabel[g.Label(Node(u))] = Node(u)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var comms [][]Node
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		var c []Node
		for _, tok := range strings.Fields(line) {
			u, ok := byLabel[tok]
			if !ok {
				return nil, fmt.Errorf("graph: communities line %d: unknown node %q", lineNo, tok)
			}
			c = append(c, u)
		}
		slices.Sort(c)
		comms = append(comms, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading communities: %v", err)
	}
	return comms, nil
}

// WriteCommunities writes one community per line using node labels.
func WriteCommunities(w io.Writer, g *Graph, comms [][]Node) error {
	bw := bufio.NewWriter(w)
	for _, c := range comms {
		for i, u := range c {
			if i > 0 {
				if _, err := bw.WriteString(" "); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(g.Label(u)); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
