package graph

// View is a mutable "alive set" over an immutable Graph. Peeling algorithms
// remove nodes one at a time; View tracks alive nodes, degrees within the
// alive set, and the number of surviving edges in O(deg) per removal
// without copying the graph.
type View struct {
	g      *Graph
	alive  []bool
	deg    []int32 // degree restricted to alive nodes
	nAlive int
	mAlive int
}

// NewView creates a view with every node of g alive.
func NewView(g *Graph) *View {
	v := &View{
		g:      g,
		alive:  make([]bool, g.NumNodes()),
		deg:    make([]int32, g.NumNodes()),
		nAlive: g.NumNodes(),
		mAlive: g.NumEdges(),
	}
	for u := range v.alive {
		v.alive[u] = true
		v.deg[u] = int32(g.Degree(Node(u)))
	}
	return v
}

// NewViewOf creates a view in which exactly the nodes of set are alive.
// Duplicate nodes in set are counted once.
func NewViewOf(g *Graph, set []Node) *View {
	v := &View{
		g:     g,
		alive: make([]bool, g.NumNodes()),
		deg:   make([]int32, g.NumNodes()),
	}
	// Dedup while preserving first-occurrence order; iterating the raw set
	// below would double-count deg/mAlive for repeated nodes.
	members := make([]Node, 0, len(set))
	for _, u := range set {
		if !v.alive[u] {
			v.alive[u] = true
			v.nAlive++
			members = append(members, u)
		}
	}
	for _, u := range members {
		for _, w := range g.Neighbors(u) {
			if v.alive[w] {
				v.deg[u]++
				if u < w {
					v.mAlive++
				}
			}
		}
	}
	return v
}

// Graph returns the underlying immutable graph.
func (v *View) Graph() *Graph { return v.g }

// Alive reports whether node u is in the view.
func (v *View) Alive(u Node) bool { return v.alive[u] }

// NumAlive returns the number of alive nodes.
func (v *View) NumAlive() int { return v.nAlive }

// NumAliveEdges returns the number of edges with both endpoints alive.
func (v *View) NumAliveEdges() int { return v.mAlive }

// DegreeIn returns u's degree restricted to alive neighbors. It is 0 for
// dead nodes.
func (v *View) DegreeIn(u Node) int { return int(v.deg[u]) }

// Remove deletes u from the view, updating neighbor degrees. Removing a
// dead node is a no-op.
func (v *View) Remove(u Node) {
	if !v.alive[u] {
		return
	}
	v.alive[u] = false
	v.nAlive--
	for _, w := range v.g.Neighbors(u) {
		if v.alive[w] {
			v.deg[w]--
			v.mAlive--
		}
	}
	v.deg[u] = 0
}

// Restore re-inserts a previously removed node.
func (v *View) Restore(u Node) {
	if v.alive[u] {
		return
	}
	v.alive[u] = true
	v.nAlive++
	var d int32
	for _, w := range v.g.Neighbors(u) {
		if v.alive[w] {
			d++
			v.deg[w]++
			v.mAlive++
		}
	}
	v.deg[u] = d
}

// EachNeighbor calls fn for every alive neighbor of u.
func (v *View) EachNeighbor(u Node, fn func(w Node)) {
	for _, w := range v.g.Neighbors(u) {
		if v.alive[w] {
			fn(w)
		}
	}
}

// LiveNodes returns the alive node set in ascending order.
func (v *View) LiveNodes() []Node {
	out := make([]Node, 0, v.nAlive)
	for u := range v.alive {
		if v.alive[u] {
			out = append(out, Node(u))
		}
	}
	return out
}

// InducedGraph compacts the alive set into a standalone Graph; the second
// return value maps new ids to original ids.
func (v *View) InducedGraph() (*Graph, []Node) {
	return v.g.InducedSubgraph(v.LiveNodes())
}

// Clone returns an independent copy of the view.
func (v *View) Clone() *View {
	c := &View{
		g:      v.g,
		alive:  append([]bool(nil), v.alive...),
		deg:    append([]int32(nil), v.deg...),
		nAlive: v.nAlive,
		mAlive: v.mAlive,
	}
	return c
}

// SumDegrees returns the sum over alive nodes of their *original* degree in
// the underlying graph. This is the d_C term of the paper's modularity
// definitions, which always refers to degrees in G, not in the subgraph.
func (v *View) SumDegrees() int64 {
	var s int64
	for u := range v.alive {
		if v.alive[u] {
			s += int64(v.g.Degree(Node(u)))
		}
	}
	return s
}
