package graph

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func parRandomCSR(rng *rand.Rand, n int, p float64, weighted bool) *CSR {
	b := NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := Node(perm[i-1]), Node(perm[i])
		if weighted {
			b.SetWeight(u, v, 0.5+2.5*rng.Float64())
		} else {
			b.AddEdge(u, v)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if weighted {
					b.SetWeight(Node(u), Node(v), 0.5+2.5*rng.Float64())
				} else {
					b.AddEdge(Node(u), Node(v))
				}
			}
		}
	}
	return NewCSR(b.Build())
}

// TestParRangeCoversEveryIndex proves ParRange partitions [0, n) exactly:
// every index visited once, chunk ids dense, no overlap — across the
// degenerate shapes (n < workers, n == 0, workers <= 1).
func TestParRangeCoversEveryIndex(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {4, 10}, {4, 3}, {8, 8}, {3, 100}, {16, 17}, {5, 0}, {0, 5},
	} {
		seen := make([]int32, tc.n)
		ParRange(tc.workers, tc.n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d n=%d: index %d visited %d times", tc.workers, tc.n, i, c)
			}
		}
	}
}

// TestParallelBFSMatchesSerial proves MultiSourceBFSParInto writes the
// exact distance array the serial BFS writes, including on views with
// dead nodes, for every worker count and frontier threshold.
func TestParallelBFSMatchesSerial(t *testing.T) {
	oldFrontier := ParMinFrontier
	defer func() { ParMinFrontier = oldFrontier }()
	for _, frontier := range []int{1, 4, 1 << 20} { // always-parallel, mixed, always-serial-rounds
		ParMinFrontier = frontier
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(300 + seed))
			n := 100 + rng.Intn(200)
			c := parRandomCSR(rng, n, 0.03, seed%2 == 0)
			v := NewCSRView(c)
			// kill a random subset so dead-node handling is exercised
			for u := 0; u < n; u++ {
				if rng.Float64() < 0.2 {
					v.Remove(Node(u))
				}
			}
			sources := []Node{Node(rng.Intn(n)), Node(rng.Intn(n))}
			want := v.MultiSourceBFS(sources)
			for _, workers := range []int{2, 3, 8} {
				dist := make([]int32, n)
				queue := make([]Node, 0, n)
				next := make([][]Node, workers)
				got := v.MultiSourceBFSParInto(sources, dist, queue, workers, next)
				for u := range want {
					if want[u] != got[u] {
						t.Fatalf("seed=%d workers=%d frontier=%d: dist[%d] = %d, serial %d", seed, workers, frontier, u, got[u], want[u])
					}
				}
			}
		}
	}
}

// TestRemoveLayerRoundMatchesSerial proves the round-synchronous removal
// leaves the view bit-identical — float aggregates included — to serial
// ascending-id Remove calls over the same layer.
func TestRemoveLayerRoundMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		n := 150 + rng.Intn(150)
		c := parRandomCSR(rng, n, 0.04, seed%2 == 0)
		src := []Node{Node(rng.Intn(n))}
		serial := NewCSRView(c)
		parallel := NewCSRView(c)
		dist := serial.MultiSourceBFS(src)
		// Peel every layer from the outermost in, comparing after each round.
		maxD := int32(0)
		for _, d := range dist {
			if d != INF && d > maxD {
				maxD = d
			}
		}
		for d := maxD; d >= 1; d-- {
			var layer []Node
			for u := 0; u < n; u++ {
				if dist[u] == d && serial.Alive(Node(u)) {
					layer = append(layer, Node(u))
				}
			}
			for _, u := range layer {
				serial.Remove(u)
			}
			workers := 2 + int(seed)%4
			kEff := make([]float64, len(layer))
			removed := make([]int, workers)
			parallel.RemoveLayerRound(layer, dist, d, workers, kEff, removed)
			if serial.NumAlive() != parallel.NumAlive() || serial.NumAliveEdges() != parallel.NumAliveEdges() {
				t.Fatalf("seed=%d d=%d: nAlive/mAlive %d/%d vs serial %d/%d", seed, d, parallel.NumAlive(), parallel.NumAliveEdges(), serial.NumAlive(), serial.NumAliveEdges())
			}
			if math.Float64bits(serial.InternalWeight()) != math.Float64bits(parallel.InternalWeight()) {
				t.Fatalf("seed=%d d=%d: wAlive %x vs serial %x", seed, d, math.Float64bits(parallel.InternalWeight()), math.Float64bits(serial.InternalWeight()))
			}
			if math.Float64bits(serial.NodeWeightSum()) != math.Float64bits(parallel.NodeWeightSum()) {
				t.Fatalf("seed=%d d=%d: dAlive %x vs serial %x", seed, d, math.Float64bits(parallel.NodeWeightSum()), math.Float64bits(serial.NodeWeightSum()))
			}
			for u := 0; u < n; u++ {
				if serial.Alive(Node(u)) != parallel.Alive(Node(u)) || serial.DegreeIn(Node(u)) != parallel.DegreeIn(Node(u)) {
					t.Fatalf("seed=%d d=%d node %d: alive/deg %v/%d vs serial %v/%d", seed, d, u,
						parallel.Alive(Node(u)), parallel.DegreeIn(Node(u)), serial.Alive(Node(u)), serial.DegreeIn(Node(u)))
				}
			}
		}
	}
}
