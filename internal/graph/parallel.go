package graph

import (
	"sync"
	"sync/atomic"
)

// This file holds the intra-query parallel kernels: a gang-scheduling
// range helper, a level-synchronous parallel multi-source BFS, and the
// round-synchronous layer-removal kernel the parallel peel is built on.
//
// Everything here is EXACT, not merely deterministic: each kernel
// produces bit-identical outputs to its serial counterpart — including
// float aggregates — regardless of worker count or goroutine schedule.
// The trick is the same everywhere: parallel phases compute
// per-node/per-worker values whose definitions are schedule-independent
// (BFS levels; per-node neighbor-order weight sums; integer edge
// counts), and every float accumulation into shared state is replayed
// serially in the fixed serial order afterwards. See the package notes
// on CSRView for why float order is load-bearing.

// ParRange splits [0, n) into at most workers contiguous chunks and runs
// fn(chunk, lo, hi) on each concurrently, returning when all chunks are
// done. Chunk 0 runs on the calling goroutine; chunk ids are dense from
// 0. With workers <= 1 (or n <= chunk size) it degenerates to one inline
// call, so callers can dispatch unconditionally. The wait-group barrier
// establishes happens-before between everything the chunks wrote and the
// caller's continuation.
func ParRange(workers, n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 1; w*chunk < n; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	fn(0, 0, chunk)
	wg.Wait()
}

// ParMinFrontier is the BFS frontier size below which a parallel BFS
// round expands serially on the coordinating goroutine — waking workers
// for a handful of nodes costs more than the expansion. A var so the
// differential tests can force the parallel rounds on small graphs.
var ParMinFrontier = 256

// MultiSourceBFSParInto is MultiSourceBFSInto computed by workers
// goroutines. dist needs length >= NumNodes and queue capacity >=
// NumNodes; next supplies one per-worker frontier buffer per worker
// (grown buffers are handed back in place).
//
// The output is bit-identical to the serial BFS: a node's distance is
// its BFS level, which is schedule-independent — each level-synchronous
// round claims exactly the unvisited alive neighbors of the current
// frontier via compare-and-swap, so no interleaving can assign a node
// anything but its true level. Only the ORDER of nodes within the
// returned frontier buffers is schedule-dependent, and nothing reads it:
// callers consume dist alone.
func (v *CSRView) MultiSourceBFSParInto(sources []Node, dist []int32, queue []Node, workers int, next [][]Node) []int32 {
	if workers <= 1 {
		return v.MultiSourceBFSInto(sources, dist, queue)
	}
	n := v.c.NumNodes()
	dist = dist[:n]
	ParRange(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dist[i] = INF
		}
	})
	frontier := queue[:0]
	for _, s := range sources {
		if v.alive[s] && dist[s] == INF {
			dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	queue = frontier
	// Round invariant: frontier is a prefix of queue; expansion writes
	// only the per-worker next buffers; consolidation then rewrites
	// queue[:0] AFTER the old frontier is fully consumed. That keeps the
	// read and write sides of every round on disjoint memory. The
	// per-worker buffers are truncated up front each round because a
	// round may invoke fewer chunks than workers — a stale buffer from an
	// earlier, wider round must not be concatenated again.
	var d int32
	for len(frontier) > 0 {
		d++
		for w := range next {
			next[w] = next[w][:0]
		}
		if len(frontier) < ParMinFrontier {
			// Small frontier: expand on this goroutine with plain writes —
			// the round barriers order these against the parallel rounds.
			buf := next[0]
			for _, u := range frontier {
				for _, w := range v.c.Neighbors(u) {
					if v.alive[w] && dist[w] == INF {
						dist[w] = d
						buf = append(buf, w)
					}
				}
			}
			next[0] = buf
		} else {
			ParRange(workers, len(frontier), func(chunk, lo, hi int) {
				buf := next[chunk]
				for _, u := range frontier[lo:hi] {
					for _, w := range v.c.Neighbors(u) {
						if v.alive[w] && atomic.LoadInt32(&dist[w]) == INF &&
							atomic.CompareAndSwapInt32(&dist[w], INF, d) {
							buf = append(buf, w)
						}
					}
				}
				next[chunk] = buf
			})
		}
		// Consolidate into the queue buffer; total frontier size never
		// exceeds n, so queue never reallocates past its n capacity.
		nf := queue[:0]
		for w := range next {
			nf = append(nf, next[w]...)
		}
		queue = nf
		frontier = nf
	}
	return dist
}

// RemoveLayerRound removes every node of layer from the view in one
// round-synchronous step that leaves the view bit-identical — alive
// flags, degrees, nAlive, mAlive, AND the float aggregates wAlive/dAlive
// — to calling Remove(u) serially for each u of layer in slice order.
//
// Preconditions: layer is sorted ascending and holds exactly the alive
// nodes whose dist equals d; every other alive node has dist < d (the
// outermost alive BFS layer — what fpaWithPruning's phase 1 peels).
// kEff needs len >= len(layer); removed needs len >= workers. Both are
// scratch owned by the caller.
//
// Exactness argument: in the serial order, node w of the layer is
// already dead when u is removed iff w < u. So u's removal-time weighted
// degree k_{u,S} — the value serial Remove subtracts from wAlive — is
// the neighbor-order sum over neighbors w with alive[w] && !(dist[w]==d
// && w < u). Each worker computes that per-node sum independently in one
// packed-adjacency pass (identical term sequence to serial
// WeightedDegreeIn at removal time, so identical rounding), decrements
// survivor degrees with atomic integer adds (exact in any order), and
// counts its removed edges in an integer. The commit then replays
// wAlive/dAlive subtractions serially in ascending layer order — the
// exact serial interleaving — and applies the integer totals.
func (v *CSRView) RemoveLayerRound(layer []Node, dist []int32, d int32, workers int, kEff []float64, removed []int) {
	if len(layer) == 0 {
		return
	}
	c := v.c
	weighted := c.weights != nil
	for w := 0; w < workers && w < len(removed); w++ {
		removed[w] = 0
	}
	ParRange(workers, len(layer), func(chunk, lo, hi int) {
		edges := 0
		for i := lo; i < hi; i++ {
			u := layer[i]
			adj := c.Neighbors(u)
			var ws []float64
			if weighted {
				ws = c.NeighborWeights(u)
			}
			var k float64
			for j, w := range adj {
				if !v.alive[w] {
					continue
				}
				if dist[w] == d {
					if w < u {
						continue // layer member removed before u serially
					}
					// later layer member: still alive at u's removal
					if weighted {
						k += ws[j]
					} else {
						k++
					}
					edges++
					continue
				}
				// survivor (dist < d): alive throughout the round
				if weighted {
					k += ws[j]
				} else {
					k++
				}
				edges++
				atomic.AddInt32(&v.deg[w], -1)
			}
			kEff[i] = k
		}
		removed[chunk] = edges
	})
	// Serial commit: replay the float subtractions in the serial removal
	// order (ascending layer position, wAlive before dAlive per node —
	// the order Remove performs them) and fold in the integer totals.
	for i, u := range layer {
		v.wAlive -= kEff[i]
		v.dAlive -= c.wdeg[u]
		v.alive[u] = false
		v.deg[u] = 0
	}
	v.nAlive -= len(layer)
	total := 0
	for w := 0; w < workers && w < len(removed); w++ {
		total += removed[w]
	}
	v.mAlive -= total
}
