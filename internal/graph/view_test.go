package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestViewInitialState(t *testing.T) {
	g := complete(5)
	v := NewView(g)
	if v.NumAlive() != 5 || v.NumAliveEdges() != 10 {
		t.Fatalf("alive=%d edges=%d", v.NumAlive(), v.NumAliveEdges())
	}
	for u := Node(0); u < 5; u++ {
		if v.DegreeIn(u) != 4 {
			t.Fatalf("DegreeIn(%d)=%d want 4", u, v.DegreeIn(u))
		}
	}
}

func TestViewRemoveUpdatesDegreesAndEdges(t *testing.T) {
	g := complete(5)
	v := NewView(g)
	v.Remove(0)
	if v.NumAlive() != 4 || v.NumAliveEdges() != 6 {
		t.Fatalf("after remove: alive=%d edges=%d", v.NumAlive(), v.NumAliveEdges())
	}
	if v.DegreeIn(1) != 3 {
		t.Fatalf("DegreeIn(1)=%d want 3", v.DegreeIn(1))
	}
	v.Remove(0) // idempotent
	if v.NumAlive() != 4 {
		t.Fatal("double remove changed count")
	}
}

func TestViewRestore(t *testing.T) {
	g := cycle(6)
	v := NewView(g)
	v.Remove(3)
	v.Restore(3)
	if v.NumAlive() != 6 || v.NumAliveEdges() != 6 {
		t.Fatalf("restore: alive=%d edges=%d", v.NumAlive(), v.NumAliveEdges())
	}
	if v.DegreeIn(3) != 2 {
		t.Fatalf("DegreeIn(3)=%d want 2", v.DegreeIn(3))
	}
}

func TestNewViewOf(t *testing.T) {
	g := complete(5)
	v := NewViewOf(g, []Node{0, 1, 2})
	if v.NumAlive() != 3 || v.NumAliveEdges() != 3 {
		t.Fatalf("viewOf: alive=%d edges=%d", v.NumAlive(), v.NumAliveEdges())
	}
	if v.Alive(3) {
		t.Fatal("node 3 should be dead")
	}
	if v.DegreeIn(0) != 2 {
		t.Fatalf("DegreeIn(0)=%d want 2", v.DegreeIn(0))
	}
}

// Regression: NewViewOf must count deg/mAlive once per distinct node even
// when the input set contains duplicates (it used to loop per occurrence
// while only nAlive was dedup-guarded).
func TestNewViewOfDuplicates(t *testing.T) {
	g := complete(5)
	v := NewViewOf(g, []Node{0, 1, 2})
	dup := NewViewOf(g, []Node{0, 1, 2, 1, 0, 0})
	if dup.NumAlive() != v.NumAlive() {
		t.Fatalf("NumAlive=%d want %d", dup.NumAlive(), v.NumAlive())
	}
	if dup.NumAliveEdges() != v.NumAliveEdges() {
		t.Fatalf("NumAliveEdges=%d want %d", dup.NumAliveEdges(), v.NumAliveEdges())
	}
	for u := Node(0); u < 5; u++ {
		if dup.DegreeIn(u) != v.DegreeIn(u) {
			t.Fatalf("DegreeIn(%d)=%d want %d", u, dup.DegreeIn(u), v.DegreeIn(u))
		}
	}
}

// Property: after any sequence of removals the view's edge count equals the
// count of edges with both endpoints alive, and DegreeIn matches a direct
// recount.
func TestViewInvariantsUnderRandomRemovals(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(30, 0.2, seed^0x5f)
		v := NewView(g)
		order := rng.Perm(30)
		for _, u := range order[:20] {
			v.Remove(Node(u))
			// recount
			m := 0
			for x := 0; x < g.NumNodes(); x++ {
				if !v.Alive(Node(x)) {
					continue
				}
				d := 0
				for _, w := range g.Neighbors(Node(x)) {
					if v.Alive(w) {
						d++
						if Node(x) < w {
							m++
						}
					}
				}
				if d != v.DegreeIn(Node(x)) {
					return false
				}
			}
			if m != v.NumAliveEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestViewLiveNodesAndInduced(t *testing.T) {
	g := complete(6)
	v := NewView(g)
	v.Remove(1)
	v.Remove(4)
	live := v.LiveNodes()
	want := []Node{0, 2, 3, 5}
	if len(live) != len(want) {
		t.Fatalf("live=%v", live)
	}
	for i := range want {
		if live[i] != want[i] {
			t.Fatalf("live=%v want %v", live, want)
		}
	}
	sub, back := v.InducedGraph()
	if sub.NumNodes() != 4 || sub.NumEdges() != 6 {
		t.Fatalf("induced n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	if back[1] != 2 {
		t.Fatalf("back=%v", back)
	}
}

func TestViewCloneIndependent(t *testing.T) {
	g := cycle(5)
	v := NewView(g)
	c := v.Clone()
	c.Remove(0)
	if !v.Alive(0) {
		t.Fatal("clone removal affected original")
	}
	if c.NumAlive() != 4 || v.NumAlive() != 5 {
		t.Fatal("counts wrong after clone removal")
	}
}

func TestViewSumDegreesUsesOriginalDegrees(t *testing.T) {
	g := complete(4) // all degrees 3
	v := NewView(g)
	v.Remove(0)
	// d_C sums *original* degrees of alive nodes: 3 nodes × degree 3.
	if s := v.SumDegrees(); s != 9 {
		t.Fatalf("SumDegrees=%d want 9", s)
	}
}
