package graph

// ArticulationPoints returns a boolean mask over the alive nodes of the
// view: mask[u] is true when removing u disconnects the alive subgraph.
// It is the Hopcroft–Tarjan DFS-tree low-link algorithm (the paper's
// Section 5.2.1), implemented iteratively so deep graphs cannot overflow
// the goroutine stack. Runs in O(|V|+|E|) over the alive subgraph.
func ArticulationPoints(v *View) []bool {
	g := v.Graph()
	n := g.NumNodes()
	isArt := make([]bool, n)
	disc := make([]int32, n)  // discovery time, 0 = unvisited
	low := make([]int32, n)   // low-link value
	parent := make([]Node, n) // DFS-tree parent
	childCnt := make([]int32, n)
	iter := make([]int, n) // per-node adjacency cursor
	for i := range parent {
		parent[i] = -1
	}
	var timer int32 = 1
	stack := make([]Node, 0, 64)

	for s := 0; s < n; s++ {
		if !v.Alive(Node(s)) || disc[s] != 0 {
			continue
		}
		// Iterative DFS rooted at s.
		disc[s], low[s] = timer, timer
		timer++
		stack = append(stack[:0], Node(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			adj := g.Neighbors(u)
			advanced := false
			for iter[u] < len(adj) {
				w := adj[iter[u]]
				iter[u]++
				if !v.Alive(w) {
					continue
				}
				if disc[w] == 0 {
					parent[w] = u
					childCnt[u]++
					disc[w], low[w] = timer, timer
					timer++
					stack = append(stack, w)
					advanced = true
					break
				}
				if w != parent[u] && disc[w] < low[u] {
					low[u] = disc[w]
				}
			}
			if advanced {
				continue
			}
			// u is finished: pop and propagate low to the parent.
			stack = stack[:len(stack)-1]
			p := parent[u]
			if p >= 0 {
				if low[u] < low[p] {
					low[p] = low[u]
				}
				// Non-root p is an articulation point when no node in u's
				// subtree reaches above p.
				if parent[p] >= 0 && low[u] >= disc[p] {
					isArt[p] = true
				}
			}
		}
		// Root rule: articulation iff it has >= 2 DFS-tree children.
		if childCnt[s] >= 2 {
			isArt[s] = true
		}
	}
	// Reset cursors for reuse of the shared iter slice is unnecessary:
	// the slice is local. Dead nodes keep isArt=false.
	return isArt
}

// NonArticulationNodes lists alive nodes whose removal keeps the alive
// subgraph connected (the removable-candidate set of NCA, before excluding
// query nodes).
func NonArticulationNodes(v *View) []Node {
	isArt := ArticulationPoints(v)
	out := make([]Node, 0, v.NumAlive())
	for u := 0; u < v.Graph().NumNodes(); u++ {
		if v.Alive(Node(u)) && !isArt[u] {
			out = append(out, Node(u))
		}
	}
	return out
}
