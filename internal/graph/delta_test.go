package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// refApply applies a delta batch to a map-backed reference model
// (edge -> weight, plus a node count) with the same last-wins semantics
// MergeCSR documents, and rebuilds a CSR from scratch through the
// Builder. MergeCSR must match it bit for bit.
type refModel struct {
	n     int
	edges map[[2]Node]float64
}

func newRefModel(g *Graph) *refModel {
	r := &refModel{n: g.NumNodes(), edges: map[[2]Node]float64{}}
	g.EdgesW(func(u, v Node, w float64) bool {
		r.edges[[2]Node{u, v}] = w
		return true
	})
	return r
}

func (r *refModel) apply(ops []Delta) {
	for _, d := range ops {
		if d.Op == DeltaAddNode {
			if int(d.U)+1 > r.n {
				r.n = int(d.U) + 1
			}
			continue
		}
		u, v := d.U, d.V
		if u == v || u < 0 || v < 0 {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if d.Op != DeltaRemoveEdge && int(v)+1 > r.n {
			r.n = int(v) + 1
		}
		switch d.Op {
		case DeltaAddEdge:
			w := d.W
			if w == 0 {
				w = 1
			}
			r.edges[[2]Node{u, v}] = w
		case DeltaSetWeight:
			r.edges[[2]Node{u, v}] = d.W
		case DeltaRemoveEdge:
			delete(r.edges, [2]Node{u, v})
		}
	}
}

// build packs the reference model from scratch. weighted graphs keep
// explicit weights; a model whose weights are all 1 builds unweighted,
// matching MergeCSR's becomes-weighted rule.
func (r *refModel) build() *CSR {
	b := NewBuilder(r.n)
	weighted := false
	for _, w := range r.edges {
		if w != 1 {
			weighted = true
			break
		}
	}
	for e, w := range r.edges {
		if weighted {
			b.SetWeight(e[0], e[1], w)
		} else {
			b.AddEdge(e[0], e[1])
		}
	}
	return NewCSR(b.Build())
}

func csrEqual(t *testing.T, got, want *CSR) {
	t.Helper()
	if !reflect.DeepEqual(got.offsets, want.offsets) {
		t.Fatalf("offsets mismatch:\n got %v\nwant %v", got.offsets, want.offsets)
	}
	if !reflect.DeepEqual(got.targets, want.targets) {
		t.Fatalf("targets mismatch:\n got %v\nwant %v", got.targets, want.targets)
	}
	if !reflect.DeepEqual(got.weights, want.weights) {
		t.Fatalf("weights mismatch:\n got %v\nwant %v", got.weights, want.weights)
	}
	if !reflect.DeepEqual(got.wdeg, want.wdeg) {
		t.Fatalf("wdeg mismatch:\n got %v\nwant %v", got.wdeg, want.wdeg)
	}
	if got.totalW != want.totalW {
		t.Fatalf("totalW = %v, want %v", got.totalW, want.totalW)
	}
}

func randomDeltaGraph(rng *rand.Rand, n int, weighted bool) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if rng.Intn(4) == 0 {
				if weighted {
					b.SetWeight(Node(i), Node(j), 0.5+2*rng.Float64())
				} else {
					b.AddEdge(Node(i), Node(j))
				}
			}
		}
	}
	return b.Build()
}

func randomBatch(rng *rand.Rand, n, size int, weighted bool) []Delta {
	var ops []Delta
	for i := 0; i < size; i++ {
		u := Node(rng.Intn(n + 3)) // occasionally beyond the node count
		v := Node(rng.Intn(n + 3))
		switch rng.Intn(5) {
		case 0:
			ops = append(ops, Delta{Op: DeltaRemoveEdge, U: u, V: v})
		case 1:
			ops = append(ops, Delta{Op: DeltaAddNode, U: Node(rng.Intn(n + 4))})
		case 2:
			w := 1.0
			if weighted {
				w = 0.5 + 2*rng.Float64()
			}
			ops = append(ops, Delta{Op: DeltaSetWeight, U: u, V: v, W: w})
		default:
			ops = append(ops, Delta{Op: DeltaAddEdge, U: u, V: v})
		}
	}
	return ops
}

// TestMergeCSRMatchesRebuild drives random batches (including repeats,
// self-loops, no-op removals, and node growth) through chained MergeCSR
// calls and checks every intermediate snapshot bit-identically against a
// from-scratch rebuild of the reference model.
func TestMergeCSRMatchesRebuild(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		g := randomDeltaGraph(rng, 30, weighted)
		ref := newRefModel(g)
		cur := NewCSR(g)
		for round := 0; round < 25; round++ {
			ops := randomBatch(rng, cur.NumNodes(), 12, weighted)
			next, _ := MergeCSR(cur, ops)
			ref.apply(ops)
			csrEqual(t, next, ref.build())
			cur = next
		}
	}
}

// TestMergeCSRLastWins pins the in-batch normalization: the last op on an
// edge decides its final state, and ops that cancel out leave no residue.
func TestMergeCSRLastWins(t *testing.T) {
	g := FromEdges(4, [][2]Node{{0, 1}, {1, 2}, {2, 3}})
	c := NewCSR(g)
	next, info := MergeCSR(c, []Delta{
		{Op: DeltaAddEdge, U: 0, V: 3},    // insert...
		{Op: DeltaRemoveEdge, U: 0, V: 3}, // ...cancelled
		{Op: DeltaRemoveEdge, U: 1, V: 2}, // remove...
		{Op: DeltaAddEdge, U: 1, V: 2},    // ...re-added: net no-op
		{Op: DeltaSetWeight, U: 0, V: 1, W: 3.5},
		{Op: DeltaSetWeight, U: 0, V: 1, W: 2.0}, // last wins
		{Op: DeltaRemoveEdge, U: 2, V: 2},        // self-loop ignored
		{Op: DeltaRemoveEdge, U: 0, V: 2},        // absent: no-op
	})
	if len(info.Inserted) != 0 || len(info.Removed) != 0 {
		t.Fatalf("connectivity residue should be empty: %+v", info)
	}
	if info.WeightsChanged != 1 {
		t.Fatalf("WeightsChanged = %d, want 1", info.WeightsChanged)
	}
	if w, ok := next.edgeWeightOf(0, 1); !ok || w != 2.0 {
		t.Fatalf("weight(0,1) = %v,%v want 2,true", w, ok)
	}
	if !next.HasEdge(1, 2) || next.HasEdge(0, 3) {
		t.Fatal("edge set wrong after cancelling ops")
	}
	if next.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", next.NumEdges())
	}
}

// TestMergeCSRBecomesWeighted: merging a non-unit weight into an
// unweighted snapshot upgrades it, with old edges at weight 1.
func TestMergeCSRBecomesWeighted(t *testing.T) {
	c := NewCSR(FromEdges(3, [][2]Node{{0, 1}, {1, 2}}))
	if c.Weighted() {
		t.Fatal("precondition: unweighted")
	}
	next, _ := MergeCSR(c, []Delta{{Op: DeltaSetWeight, U: 0, V: 2, W: 2.5}})
	if !next.Weighted() {
		t.Fatal("snapshot should become weighted")
	}
	if w, _ := next.edgeWeightOf(0, 1); w != 1 {
		t.Fatalf("old edge weight = %v, want 1", w)
	}
	if next.TotalWeight() != 4.5 {
		t.Fatalf("TotalWeight = %v, want 4.5", next.TotalWeight())
	}
	// Unit-weight merges must NOT upgrade.
	next2, _ := MergeCSR(c, []Delta{{Op: DeltaAddEdge, U: 0, V: 2}})
	if next2.Weighted() {
		t.Fatal("unit-weight insert should keep the snapshot unweighted")
	}
}

// floodComponents is the from-scratch partition UpdateComponents must
// reproduce.
func floodComponents(c *CSR) ([]int32, [][]Node) {
	n := c.NumNodes()
	compID := make([]int32, n)
	for i := range compID {
		compID[i] = -1
	}
	var comps [][]Node
	var queue []Node
	for root := 0; root < n; root++ {
		if compID[root] != -1 {
			continue
		}
		id := int32(len(comps))
		compID[root] = id
		queue = append(queue[:0], Node(root))
		for head := 0; head < len(queue); head++ {
			for _, w := range c.Neighbors(queue[head]) {
				if compID[w] == -1 {
					compID[w] = id
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, nil)
	}
	for u, id := range compID {
		comps[id] = append(comps[id], Node(u))
	}
	return compID, comps
}

// TestUpdateComponentsMatchesFlood chains random batches and checks the
// incrementally maintained partition against a full re-flood each round.
func TestUpdateComponentsMatchesFlood(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomDeltaGraph(rng, 40, false)
	cur := NewCSR(g)
	compID, comps := floodComponents(cur)
	for round := 0; round < 30; round++ {
		ops := randomBatch(rng, cur.NumNodes(), 10, false)
		next, info := MergeCSR(cur, ops)
		oldComps := comps
		var carried []int32
		compID, comps, carried, _ = UpdateComponents(next, compID, len(comps), info)
		wantID, wantComps := floodComponents(next)
		if !reflect.DeepEqual(compID, wantID) {
			t.Fatalf("round %d: compID mismatch\n got %v\nwant %v", round, compID, wantID)
		}
		if !reflect.DeepEqual(comps, wantComps) {
			t.Fatalf("round %d: comps mismatch\n got %v\nwant %v", round, comps, wantComps)
		}
		checkCarried(t, cur, next, oldComps, comps, carried, info)
		cur = next
	}
}

// checkCarried verifies the carried contract: a carried component is a
// verbatim continuation — same members, same adjacency, same weights —
// and a component overlapping any edge the batch changed is never carried.
func checkCarried(t *testing.T, old, next *CSR, oldComps, comps [][]Node, carried []int32, info *MergeInfo) {
	t.Helper()
	if len(carried) != len(comps) {
		t.Fatalf("carried has %d entries for %d components", len(carried), len(comps))
	}
	touched := make(map[Node]bool)
	for _, es := range [][][2]Node{info.Inserted, info.Removed, info.WeightEdges} {
		for _, e := range es {
			touched[e[0]], touched[e[1]] = true, true
		}
	}
	for id, from := range carried {
		if from < 0 {
			continue
		}
		if !reflect.DeepEqual(comps[id], oldComps[from]) {
			t.Fatalf("carried comp %d: members %v != old comp %d members %v", id, comps[id], from, oldComps[from])
		}
		for _, u := range comps[id] {
			if touched[u] {
				t.Fatalf("carried comp %d contains node %d with a changed edge", id, u)
			}
			if !reflect.DeepEqual(next.Neighbors(u), old.Neighbors(u)) {
				t.Fatalf("carried comp %d: node %d adjacency changed across merge", id, u)
			}
			ow, nw := old.NeighborWeights(u), next.NeighborWeights(u)
			for i := range next.Neighbors(u) {
				wOld, wNew := 1.0, 1.0
				if ow != nil {
					wOld = ow[i]
				}
				if nw != nil {
					wNew = nw[i]
				}
				if wOld != wNew {
					t.Fatalf("carried comp %d: node %d weight[%d] changed %v -> %v", id, u, i, wOld, wNew)
				}
			}
		}
	}
}

// TestUpdateComponentsRefloodScope pins the incremental contract: inserts
// re-flood nothing, and removals re-flood only the affected component.
func TestUpdateComponentsRefloodScope(t *testing.T) {
	// Three components: a path 0-1-2-3, a triangle 4-5-6, a pair 7-8.
	g := FromEdges(9, [][2]Node{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {4, 6}, {7, 8}})
	cur := NewCSR(g)
	compID, comps := floodComponents(cur)
	if len(comps) != 3 {
		t.Fatalf("want 3 components, got %d", len(comps))
	}

	// Insert-only batch: joins the pair to the path, refloods nothing.
	next, info := MergeCSR(cur, []Delta{{Op: DeltaAddEdge, U: 3, V: 7}})
	compID, comps, _, reflooded := UpdateComponents(next, compID, len(comps), info)
	if reflooded != 0 {
		t.Fatalf("insert-only batch reflooded %d nodes, want 0", reflooded)
	}
	if len(comps) != 2 {
		t.Fatalf("want 2 components after union, got %d", len(comps))
	}

	// Removal inside the triangle: refloods exactly the triangle (3 nodes),
	// never the 6-node path+pair component.
	cur = next
	next, info = MergeCSR(cur, []Delta{{Op: DeltaRemoveEdge, U: 4, V: 5}})
	compID, comps, _, reflooded = UpdateComponents(next, compID, len(comps), info)
	if reflooded != 3 {
		t.Fatalf("triangle removal reflooded %d nodes, want 3", reflooded)
	}
	if len(comps) != 2 {
		t.Fatalf("triangle minus one edge stays connected; want 2 components, got %d", len(comps))
	}

	// A splitting removal: cutting 2-3 splits the big component; only its
	// 6 nodes are reflooded.
	cur = next
	next, info = MergeCSR(cur, []Delta{{Op: DeltaRemoveEdge, U: 2, V: 3}})
	_, comps, _, reflooded = UpdateComponents(next, compID, len(comps), info)
	if reflooded != 6 {
		t.Fatalf("split removal reflooded %d nodes, want 6", reflooded)
	}
	if len(comps) != 3 {
		t.Fatalf("want 3 components after split, got %d", len(comps))
	}
	wantID, wantComps := floodComponents(next)
	if !reflect.DeepEqual(comps, wantComps) {
		t.Fatalf("comps mismatch after split:\n got %v\nwant %v (ids %v)", comps, wantComps, wantID)
	}
}

// TestUpdateComponentsNewNodes: explicit and implicit node growth produce
// singletons that join components through inserted edges.
func TestUpdateComponentsNewNodes(t *testing.T) {
	cur := NewCSR(FromEdges(2, [][2]Node{{0, 1}}))
	compID, comps := floodComponents(cur)
	next, info := MergeCSR(cur, []Delta{
		{Op: DeltaAddNode, U: 4},       // isolated: nodes 2,3,4 appear
		{Op: DeltaAddEdge, U: 1, V: 5}, // implicit growth to 6 nodes
		{Op: DeltaAddEdge, U: 2, V: 3}, // two new nodes joined together
	})
	if info.NodesAdded != 4 {
		t.Fatalf("NodesAdded = %d, want 4", info.NodesAdded)
	}
	compID, comps, _, reflooded := UpdateComponents(next, compID, len(comps), info)
	if reflooded != 0 {
		t.Fatalf("growth batch reflooded %d nodes, want 0", reflooded)
	}
	wantID, wantComps := floodComponents(next)
	if !reflect.DeepEqual(compID, wantID) || !reflect.DeepEqual(comps, wantComps) {
		t.Fatalf("partition mismatch:\n got %v %v\nwant %v %v", compID, comps, wantID, wantComps)
	}
}

// TestUpdateComponentsCarried pins the carried map directly: untouched
// components survive any mix of inserts, removals, weight changes, and
// node growth elsewhere in the graph, and every kind of touch — including
// ones that keep a component's id and membership — clears the flag.
func TestUpdateComponentsCarried(t *testing.T) {
	// Four components: path 0-1-2, triangle 3-4-5, pair 6-7, pair 8-9.
	g := FromEdges(10, [][2]Node{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {3, 5}, {6, 7}, {8, 9}})
	cur := NewCSR(g)
	compID, comps := floodComponents(cur)
	if len(comps) != 4 {
		t.Fatalf("want 4 components, got %d", len(comps))
	}

	// Batch touches the path (insert chord 0-2), the triangle (weight
	// change), and grows an isolated node; both pairs must carry.
	next, info := MergeCSR(cur, []Delta{
		{Op: DeltaAddEdge, U: 0, V: 2},
		{Op: DeltaSetWeight, U: 3, V: 4, W: 5},
		{Op: DeltaAddNode, U: 10},
	})
	oldComps := comps
	compID, comps, carried, _ := UpdateComponents(next, compID, len(comps), info)
	checkCarried(t, cur, next, oldComps, comps, carried, info)
	want := []int32{-1, -1, 2, 3, -1} // path touched, triangle touched, pairs carried, singleton new
	if !reflect.DeepEqual(carried, want) {
		t.Fatalf("carried = %v, want %v", carried, want)
	}

	// A removal that splits a component: the fragments are not carried,
	// everything else is.
	cur = next
	next, info = MergeCSR(cur, []Delta{{Op: DeltaRemoveEdge, U: 6, V: 7}})
	oldComps = comps
	_, comps, carried, _ = UpdateComponents(next, compID, len(comps), info)
	checkCarried(t, cur, next, oldComps, comps, carried, info)
	if len(comps) != 6 {
		t.Fatalf("want 6 components after split, got %d", len(comps))
	}
	carriedCount := 0
	for _, from := range carried {
		if from >= 0 {
			carriedCount++
		}
	}
	if carriedCount != 4 { // path, triangle, pair 8-9, singleton 10
		t.Fatalf("carried = %v, want exactly 4 carried components", carried)
	}
}
