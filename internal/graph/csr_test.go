package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCSRMatchesGraph(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(40, 0.12, seed)
		c := NewCSR(g)
		if c.NumNodes() != g.NumNodes() {
			return false
		}
		for u := 0; u < g.NumNodes(); u++ {
			if c.Degree(Node(u)) != g.Degree(Node(u)) {
				return false
			}
			a, b := c.Neighbors(Node(u)), g.Neighbors(Node(u))
			for i := range b {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRBFSMatchesGraphBFS(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(35, 0.1, seed)
		c := NewCSR(g)
		want := BFS(g, 0)
		got := c.BFS(0)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRTrianglesClique(t *testing.T) {
	// every node of K5 is in C(4,2)=6 triangles
	c := NewCSR(complete(5))
	for u, tri := range c.Triangles() {
		if tri != 6 {
			t.Fatalf("tri[%d]=%d want 6", u, tri)
		}
	}
}

func TestCSRTrianglesTriangleFree(t *testing.T) {
	c := NewCSR(cycle(6))
	for u, tri := range c.Triangles() {
		if tri != 0 {
			t.Fatalf("tri[%d]=%d want 0 in a 6-cycle", u, tri)
		}
	}
}

func TestLocalClustering(t *testing.T) {
	// triangle with a pendant: triangle nodes have cc related to their
	// degree; the pendant has cc 0.
	g := FromEdges(4, [][2]Node{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	cc := NewCSR(g).LocalClustering()
	if cc[0] != 1 || cc[1] != 1 {
		t.Fatalf("cc of pure triangle nodes should be 1: %v", cc)
	}
	// node 2: degree 3, one triangle → 2·1/(3·2) = 1/3
	if math.Abs(cc[2]-1.0/3) > 1e-9 {
		t.Fatalf("cc[2]=%v want 1/3", cc[2])
	}
	if cc[3] != 0 {
		t.Fatalf("pendant cc=%v want 0", cc[3])
	}
}

func TestAvgClustering(t *testing.T) {
	c := NewCSR(complete(4))
	if got := c.AvgClustering(nil); math.Abs(got-1) > 1e-9 {
		t.Fatalf("K4 average clustering=%v want 1", got)
	}
	if got := c.AvgClustering([]Node{0, 1}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("subset clustering=%v want 1", got)
	}
	if got := c.AvgClustering([]Node{}); got != 0 {
		t.Fatalf("empty subset clustering=%v want 0", got)
	}
}

// BenchmarkCSRTraversal and BenchmarkAdjTraversal quantify the CSR
// ablation called out in DESIGN.md §4.
func BenchmarkCSRTraversal(b *testing.B) {
	g := benchRandom(3000, 0.004)
	c := NewCSR(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BFS(0)
	}
}

func BenchmarkAdjTraversal(b *testing.B) {
	g := benchRandom(3000, 0.004)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}
