package graph

import (
	"math/rand"
	"testing"
)

func benchRandom(n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(Node(i), Node(rng.Intn(i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(Node(i), Node(j))
			}
		}
	}
	return b.Build()
}

// BenchmarkViewRemove measures the core peeling primitive.
func BenchmarkViewRemove(b *testing.B) {
	g := benchRandom(2000, 0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := NewView(g)
		for u := 0; u < g.NumNodes(); u++ {
			v.Remove(Node(u))
		}
	}
}

// BenchmarkArticulationPoints measures the per-iteration cost of NCA.
func BenchmarkArticulationPoints(b *testing.B) {
	g := benchRandom(2000, 0.005)
	v := NewView(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArticulationPoints(v)
	}
}

// BenchmarkMultiSourceBFS measures FPA's distance-layer setup.
func BenchmarkMultiSourceBFS(b *testing.B) {
	g := benchRandom(5000, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiSourceBFS(g, []Node{0, 1, 2})
	}
}
