package graph

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

func benchRandom(n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(Node(i), Node(rng.Intn(i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(Node(i), Node(j))
			}
		}
	}
	return b.Build()
}

// BenchmarkViewRemove measures the core peeling primitive.
func BenchmarkViewRemove(b *testing.B) {
	g := benchRandom(2000, 0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := NewView(g)
		for u := 0; u < g.NumNodes(); u++ {
			v.Remove(Node(u))
		}
	}
}

// BenchmarkArticulationPoints measures the per-iteration cost of NCA.
func BenchmarkArticulationPoints(b *testing.B) {
	g := benchRandom(2000, 0.005)
	v := NewView(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArticulationPoints(v)
	}
}

// BenchmarkMultiSourceBFS measures FPA's distance-layer setup.
func BenchmarkMultiSourceBFS(b *testing.B) {
	g := benchRandom(5000, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiSourceBFS(g, []Node{0, 1, 2})
	}
}

// BenchmarkSortNodesReflect vs BenchmarkSortNodesSlices quantify the
// sortNodes migration from reflection-based sort.Slice to the
// monomorphized slices.Sort on a component-sized id slice — the sort
// every SearchCSR query pays after its component flood.
func sortBenchInput() []Node {
	rng := rand.New(rand.NewSource(9))
	out := make([]Node, 4096)
	for i := range out {
		out[i] = Node(rng.Intn(1 << 20))
	}
	return out
}

func BenchmarkSortNodesReflect(b *testing.B) {
	src := sortBenchInput()
	buf := make([]Node, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		sort.Slice(buf, func(x, y int) bool { return buf[x] < buf[y] })
	}
}

func BenchmarkSortNodesSlices(b *testing.B) {
	src := sortBenchInput()
	buf := make([]Node, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		slices.Sort(buf)
	}
}

// BenchmarkSubCSRExtract measures the per-query component compaction of
// the arena path: relabel one component of a multi-community graph into
// a dense sub-CSR, reusing arena storage.
func BenchmarkSubCSRExtract(b *testing.B) {
	bld := NewBuilder(64 * 256)
	for c := 0; c < 256; c++ {
		base := c * 64
		for i := 0; i < 64; i++ {
			bld.AddEdge(Node(base+i), Node(base+(i+1)%64))
			bld.AddEdge(Node(base+i), Node(base+(i+7)%64))
		}
	}
	csr := NewCSR(bld.Build())
	a := NewArena()
	comp, _ := csr.Component(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ExtractSub(i%2, csr, comp)
	}
}
