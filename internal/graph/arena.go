package graph

// Arena is a pooled bundle of the scratch memory one community-search
// query needs: the epoch-tagged source-id -> local-id relabelling table,
// double-buffered SubCSR backing stores, CSRView backing arrays, BFS
// dist/queue buffers, and articulation-DFS scratch. An arena is checked
// out per query (internal/engine owns one per worker; internal/dmcs keeps
// a sync.Pool for the one-shot entry points) and reused forever after, so
// steady-state query serving performs zero heap allocations: every buffer
// is grown to the largest component it has served and then recycled.
//
// Arenas are not safe for concurrent use; each in-flight query needs its
// own. Nothing handed back to a caller may alias arena memory — results
// are freshly allocated by the search layer — so recycling an arena can
// never corrupt a previously returned answer. The epoch-tagged table
// makes per-query reset O(1): entries are valid only when their tag
// matches the current epoch, so stale contents from earlier queries are
// unreadable by construction (Poison exploits exactly this contract).
//
// The two sub/view slots exist because peeling needs at most two
// generations of compact state alive at once: the current sub-CSR and the
// one being built from its alive set during geometric re-compaction (or,
// for layer pruning, the phase-1 view and the phase-2 prefix view).
// Slots ping-pong; entering slot i invalidates whatever it held before.
type Arena struct {
	epoch uint32
	tag   []uint32 // epoch tags: table[g] valid iff tag[g] == epoch
	table []int32  // source id -> local id (or any per-query node mark)

	subStore [2]subStorage
	subs     [2]SubCSR
	views    [2]CSRView

	dist  [2][]int32
	queue []Node
	nodes [2][]Node // generic node scratch (members list, BFS parents, ...)
	marks [2][]bool // generic per-local-node flags (isQuery, inLayer, ...)
	ksum  []float64 // fused k_{v,S} sums (ArticulationPointsKInto)
	art   ArtScratch

	parNext [][]Node // per-worker BFS frontier buffers (parallel peel)
	parCnt  []int    // per-worker integer accumulators (RemoveLayerRound)
}

// NewArena returns an empty arena; buffers are sized on first use.
func NewArena() *Arena { return &Arena{} }

// BeginEpoch invalidates every entry of the relabelling/mark table and
// sizes it for source ids in [0, n). O(1) except on growth and on the
// 2^32nd call, when the tags are rezeroed.
func (a *Arena) BeginEpoch(n int) {
	if len(a.tag) < n {
		tag := make([]uint32, n)
		copy(tag, a.tag)
		a.tag = tag
		table := make([]int32, n)
		copy(table, a.table)
		a.table = table
	}
	a.epoch++
	if a.epoch == 0 { // wrapped: stale tags could collide, rezero
		for i := range a.tag {
			a.tag[i] = 0
		}
		a.epoch = 1
	}
}

// Mark tags source id g with the current epoch and associates val with it.
func (a *Arena) Mark(g Node, val int32) {
	a.table[g] = val
	a.tag[g] = a.epoch
}

// Marked reports whether g was marked in the current epoch and, if so,
// its associated value.
func (a *Arena) Marked(g Node) (int32, bool) {
	if int(g) >= len(a.tag) || a.tag[g] != a.epoch {
		return 0, false
	}
	return a.table[g], true
}

// ExtractSub builds the compact relabelled sub-CSR of members (sorted
// ascending, duplicate-free, ids in src's space) into the given slot,
// reusing the slot's backing memory. Neighbors outside the member set are
// dropped, so members need not be component-closed — re-compaction passes
// the alive subset of a previous sub. The returned SubCSR's Globals() are
// the member ids in src's id space; when src is itself a sub, the caller
// rewrites them into true source ids via the previous generation's table.
// The arena's current epoch is consumed to build the relabelling table.
func (a *Arena) ExtractSub(slot int, src *CSR, members []Node) *SubCSR {
	a.BeginEpoch(src.NumNodes())
	for i, g := range members {
		a.Mark(g, int32(i))
	}
	store := &a.subStore[slot]
	dst := &a.subs[slot]
	extractSub(dst, store, src, members, a.table, a.tag, a.epoch)
	store.global = growNodes(store.global, len(members))
	copy(store.global, members)
	dst.global = store.global
	return dst
}

// WrapFull points the given slot at src itself: an identity sub over the
// whole snapshot, sharing its packed arrays (nothing is copied, and
// Poison will never scribble on them — the slot's owned store is left
// untouched). Used when the query's component spans the entire graph.
func (a *Arena) WrapFull(slot int, src *CSR) *SubCSR {
	dst := &a.subs[slot]
	dst.CSR = *src
	dst.global = nil
	dst.compW = src.totalW
	var d float64
	for _, w := range src.wdeg {
		d += w
	}
	dst.compD = d
	return dst
}

// ViewAll returns the slot's view with every node of sub alive, seeded
// with sub's canonical aggregates.
func (a *Arena) ViewAll(slot int, sub *SubCSR) *CSRView {
	return a.ViewAllWith(slot, sub, sub.compW, sub.compD)
}

// ViewAllWith is ViewAll with explicit w_C / d_S aggregates. Geometric
// re-compaction uses it to carry the incrementally maintained values of
// the previous generation's view into the rebuilt one — recomputing them
// fresh would change float accumulation order and break the bit-identity
// contract with the uncompacted peel.
func (a *Arena) ViewAllWith(slot int, sub *SubCSR, wAlive, dAlive float64) *CSRView {
	n := sub.NumNodes()
	v := &a.views[slot]
	v.c = &sub.CSR
	v.alive = growBool(v.alive, n)
	v.deg = growInt32(v.deg, n)
	for i := 0; i < n; i++ {
		v.alive[i] = true
		v.deg[i] = sub.offsets[i+1] - sub.offsets[i]
	}
	v.nAlive = n
	v.mAlive = len(sub.targets) / 2
	v.wAlive = wAlive
	v.dAlive = dAlive
	return v
}

// ViewOf returns the slot's view with exactly the nodes of set (sorted
// ascending, duplicate-free, local ids of sub) alive — the arena-backed
// NewCSRViewOf, with identical accumulation order for the aggregates.
func (a *Arena) ViewOf(slot int, sub *SubCSR, set []Node) *CSRView {
	n := sub.NumNodes()
	v := &a.views[slot]
	v.c = &sub.CSR
	v.alive = growBool(v.alive, n)
	v.deg = growInt32(v.deg, n)
	for i := 0; i < n; i++ {
		v.alive[i] = false
		v.deg[i] = 0
	}
	v.nAlive = len(set)
	v.mAlive = 0
	v.wAlive = 0
	v.dAlive = 0
	for _, u := range set {
		v.alive[u] = true
	}
	c := &sub.CSR
	for _, u := range set {
		v.dAlive += c.wdeg[u]
		adj := c.Neighbors(u)
		if c.weights != nil {
			ws := c.NeighborWeights(u)
			for i, w := range adj {
				if v.alive[w] {
					v.deg[u]++
					if u < w {
						v.mAlive++
						v.wAlive += ws[i]
					}
				}
			}
		} else {
			for _, w := range adj {
				if v.alive[w] {
					v.deg[u]++
					if u < w {
						v.mAlive++
					}
				}
			}
		}
	}
	if c.weights == nil {
		v.wAlive = float64(v.mAlive)
	}
	return v
}

// Dist returns the slot's distance buffer sized for n nodes (contents
// arbitrary; BFS fills it).
func (a *Arena) Dist(slot, n int) []int32 {
	a.dist[slot] = growInt32(a.dist[slot], n)
	return a.dist[slot]
}

// SwapDist exchanges the two distance buffers (re-compaction writes the
// remapped distances into the spare slot, then swaps).
func (a *Arena) SwapDist() { a.dist[0], a.dist[1] = a.dist[1], a.dist[0] }

// Queue returns an empty node queue with capacity for n entries.
func (a *Arena) Queue(n int) []Node {
	if cap(a.queue) < n {
		a.queue = make([]Node, 0, n)
	}
	return a.queue[:0]
}

// Nodes returns the slot's generic node buffer sized n (contents
// arbitrary).
func (a *Arena) Nodes(slot, n int) []Node {
	a.nodes[slot] = growNodes(a.nodes[slot], n)
	return a.nodes[slot]
}

// Marks returns the slot's per-node flag buffer sized n, cleared.
func (a *Arena) Marks(slot, n int) []bool {
	a.marks[slot] = growBool(a.marks[slot], n)
	m := a.marks[slot]
	for i := range m {
		m[i] = false
	}
	return m
}

// KSum returns the per-node weighted-degree accumulator sized n.
// Contents are arbitrary: the fused articulation sweep rewrites the
// entries of alive nodes only, so dead nodes' slots stay stale garbage.
func (a *Arena) KSum(n int) []float64 {
	a.ksum = growFloat64(a.ksum, n)
	return a.ksum
}

// Art returns the articulation-DFS scratch.
func (a *Arena) Art() *ArtScratch { return &a.art }

// ParNext returns workers per-worker frontier buffers for the parallel
// BFS (each empty; grown buffers are kept across queries). The outer
// slice is sized exactly so MultiSourceBFSParInto's worker w can write
// its slot without racing its siblings.
func (a *Arena) ParNext(workers int) [][]Node {
	if cap(a.parNext) < workers {
		next := make([][]Node, workers)
		copy(next, a.parNext)
		a.parNext = next
	}
	a.parNext = a.parNext[:workers]
	return a.parNext
}

// ParCounts returns workers per-worker integer accumulator slots
// (contents arbitrary; RemoveLayerRound zeroes what it uses).
func (a *Arena) ParCounts(workers int) []int {
	if cap(a.parCnt) < workers {
		a.parCnt = make([]int, workers)
	}
	return a.parCnt[:workers]
}

// Poison overwrites every arena-owned buffer with garbage while keeping
// the epoch bookkeeping in a legal (worst-case) state: all table entries
// tagged with the CURRENT epoch so any consumer that forgets to begin a
// new epoch, or to rewrite a buffer before reading it, sees the garbage.
// It exists for tests proving that no query result can depend on arena
// state left behind by earlier queries. Shared snapshot memory referenced
// by WrapFull slots is deliberately not touched — the arena does not own
// it.
func (a *Arena) Poison() {
	const junk = -0x5A5A
	for i := range a.table {
		a.table[i] = junk
		a.tag[i] = a.epoch
	}
	for s := range a.subStore {
		st := &a.subStore[s]
		poisonInt32(st.offsets[:cap(st.offsets)])
		poisonNodes(st.targets[:cap(st.targets)])
		poisonFloat64(st.weights[:cap(st.weights)])
		poisonFloat64(st.wdeg[:cap(st.wdeg)])
		poisonNodes(st.global[:cap(st.global)])
		// Wrapped slots alias shared snapshot memory; detach the headers
		// so the poisoned stores are what the next query would reuse.
		a.subs[s] = SubCSR{}
	}
	for i := range a.views {
		v := &a.views[i]
		poisonBool(v.alive[:cap(v.alive)])
		poisonInt32(v.deg[:cap(v.deg)])
		v.c = nil
		v.nAlive, v.mAlive = junk, junk
		v.wAlive, v.dAlive = junk, junk
	}
	poisonInt32(a.dist[0][:cap(a.dist[0])])
	poisonInt32(a.dist[1][:cap(a.dist[1])])
	poisonNodes(a.queue[:cap(a.queue)])
	for i := range a.nodes {
		poisonNodes(a.nodes[i][:cap(a.nodes[i])])
	}
	for i := range a.marks {
		poisonBool(a.marks[i][:cap(a.marks[i])])
	}
	poisonFloat64(a.ksum[:cap(a.ksum)])
	for i := range a.parNext {
		poisonNodes(a.parNext[i][:cap(a.parNext[i])])
	}
	for i := range a.parCnt {
		a.parCnt[i] = junk
	}
	s := &a.art
	poisonBool(s.isArt[:cap(s.isArt)])
	poisonInt32(s.disc[:cap(s.disc)])
	poisonInt32(s.low[:cap(s.low)])
	poisonNodes(s.parent[:cap(s.parent)])
	poisonInt32(s.iter[:cap(s.iter)])
	poisonNodes(s.stack[:cap(s.stack)])
}

func poisonInt32(s []int32) {
	for i := range s {
		s[i] = -0x5A5A
	}
}

func poisonNodes(s []Node) {
	for i := range s {
		s[i] = -0x5A5A
	}
}

func poisonFloat64(s []float64) {
	for i := range s {
		s[i] = -23130.23130
	}
}

func poisonBool(s []bool) {
	for i := range s {
		s[i] = true
	}
}
