package graph

// CSRView is a mutable "alive set" over an immutable CSR snapshot — the
// peeling substrate every search algorithm in this repository runs on.
// Like View it tracks alive nodes and alive degrees in O(deg) per
// Remove/Restore, but it additionally maintains the two weighted
// aggregates the modularity objectives need — the alive internal edge
// weight w_C and the alive node-weight sum d_S — straight from the CSR's
// packed weights slice and cached node-weight table. No edge-weight map
// is ever consulted: on unweighted snapshots every edge counts 1, on
// weighted snapshots the packed parallel weights array is read in
// neighbor order, so scores stay bit-identical to the historical
// map-backed implementation (float accumulation order is preserved).
type CSRView struct {
	c      *CSR
	alive  []bool
	deg    []int32 // degree restricted to alive nodes
	nAlive int
	mAlive int
	wAlive float64 // alive internal edge weight w_C (mAlive when unweighted)
	dAlive float64 // sum over alive nodes of cached node weight (d_S)
}

// NewCSRView creates a view with every node of c alive.
func NewCSRView(c *CSR) *CSRView {
	n := c.NumNodes()
	v := &CSRView{
		c:      c,
		alive:  make([]bool, n),
		deg:    make([]int32, n),
		nAlive: n,
		mAlive: len(c.targets) / 2,
		wAlive: c.totalW,
	}
	for u := range v.alive {
		v.alive[u] = true
		v.deg[u] = int32(c.Degree(Node(u)))
		v.dAlive += c.wdeg[u]
	}
	return v
}

// NewCSRViewOf creates a view in which exactly the nodes of set are alive.
// Duplicate nodes in set are counted once. The weighted aggregates are
// accumulated in set (first-occurrence) order over sorted adjacency, the
// same order the peeling algorithms have always used, so downstream float
// comparisons are reproducible.
func NewCSRViewOf(c *CSR, set []Node) *CSRView {
	n := c.NumNodes()
	v := &CSRView{
		c:     c,
		alive: make([]bool, n),
		deg:   make([]int32, n),
	}
	members := make([]Node, 0, len(set))
	for _, u := range set {
		if !v.alive[u] {
			v.alive[u] = true
			v.nAlive++
			members = append(members, u)
		}
	}
	for _, u := range members {
		v.dAlive += c.wdeg[u]
		adj := c.Neighbors(u)
		if c.weights != nil {
			ws := c.NeighborWeights(u)
			for i, w := range adj {
				if v.alive[w] {
					v.deg[u]++
					if u < w {
						v.mAlive++
						v.wAlive += ws[i]
					}
				}
			}
		} else {
			for _, w := range adj {
				if v.alive[w] {
					v.deg[u]++
					if u < w {
						v.mAlive++
					}
				}
			}
		}
	}
	if c.weights == nil {
		v.wAlive = float64(v.mAlive)
	}
	return v
}

// CSR returns the underlying immutable snapshot.
func (v *CSRView) CSR() *CSR { return v.c }

// Alive reports whether node u is in the view.
func (v *CSRView) Alive(u Node) bool { return v.alive[u] }

// NumAlive returns the number of alive nodes.
func (v *CSRView) NumAlive() int { return v.nAlive }

// NumAliveEdges returns the number of edges with both endpoints alive.
func (v *CSRView) NumAliveEdges() int { return v.mAlive }

// DegreeIn returns u's degree restricted to alive neighbors (0 for dead
// nodes).
func (v *CSRView) DegreeIn(u Node) int { return int(v.deg[u]) }

// WeightedDegreeIn returns k_{u,S}: the weighted degree of u into the
// alive set (Definitions 5–7). It is computed fresh in O(deg) from the
// packed weights so repeated calls after interleaved removals return
// exactly the neighbor-order sum, never a drifted incremental value.
func (v *CSRView) WeightedDegreeIn(u Node) float64 {
	if v.c.weights == nil {
		return float64(v.deg[u])
	}
	adj := v.c.Neighbors(u)
	ws := v.c.NeighborWeights(u)
	var k float64
	for i, w := range adj {
		if v.alive[w] {
			k += ws[i]
		}
	}
	return k
}

// InternalWeight returns w_C, the total weight of edges with both
// endpoints alive (NumAliveEdges when unweighted). It is maintained
// incrementally across Remove/Restore.
func (v *CSRView) InternalWeight() float64 { return v.wAlive }

// NodeWeightSum returns d_S, the sum of cached node weights (weighted
// degrees in the full graph) over the alive set.
func (v *CSRView) NodeWeightSum() float64 { return v.dAlive }

// Remove deletes u from the view, updating neighbor degrees and the
// weighted aggregates in O(deg). Removing a dead node is a no-op.
func (v *CSRView) Remove(u Node) {
	if !v.alive[u] {
		return
	}
	// w_C loses exactly k_{u,S}, summed in neighbor order before any
	// flag flips (the same subtraction the peeling recurrences perform).
	v.wAlive -= v.WeightedDegreeIn(u)
	v.dAlive -= v.c.wdeg[u]
	v.alive[u] = false
	v.nAlive--
	for _, w := range v.c.Neighbors(u) {
		if v.alive[w] {
			v.deg[w]--
			v.mAlive--
		}
	}
	v.deg[u] = 0
}

// Restore re-inserts a previously removed node, reversing Remove.
func (v *CSRView) Restore(u Node) {
	if v.alive[u] {
		return
	}
	v.alive[u] = true
	v.nAlive++
	var d int32
	for _, w := range v.c.Neighbors(u) {
		if v.alive[w] {
			d++
			v.deg[w]++
			v.mAlive++
		}
	}
	v.deg[u] = d
	v.wAlive += v.WeightedDegreeIn(u)
	v.dAlive += v.c.wdeg[u]
}

// EachNeighbor calls fn for every alive neighbor of u.
func (v *CSRView) EachNeighbor(u Node, fn func(w Node)) {
	for _, w := range v.c.Neighbors(u) {
		if v.alive[w] {
			fn(w)
		}
	}
}

// LiveNodes returns the alive node set in ascending order.
func (v *CSRView) LiveNodes() []Node {
	out := make([]Node, 0, v.nAlive)
	for u := range v.alive {
		if v.alive[u] {
			out = append(out, Node(u))
		}
	}
	return out
}

// Clone returns an independent copy of the view sharing the immutable CSR.
func (v *CSRView) Clone() *CSRView {
	return &CSRView{
		c:      v.c,
		alive:  append([]bool(nil), v.alive...),
		deg:    append([]int32(nil), v.deg...),
		nAlive: v.nAlive,
		mAlive: v.mAlive,
		wAlive: v.wAlive,
		dAlive: v.dAlive,
	}
}

// MultiSourceBFS computes, for every node, the minimum unweighted distance
// to any alive source, restricted to alive nodes. Dead nodes, dead
// sources, and unreachable nodes get INF.
func (v *CSRView) MultiSourceBFS(sources []Node) []int32 {
	dist := make([]int32, v.c.NumNodes())
	for i := range dist {
		dist[i] = INF
	}
	queue := make([]Node, 0, len(sources))
	for _, s := range sources {
		if v.alive[s] && dist[s] == INF {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range v.c.Neighbors(u) {
			if v.alive[w] && dist[w] == INF {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ArticulationPoints returns a boolean mask over the alive nodes: mask[u]
// is true when removing u disconnects the alive subgraph. It is the same
// iterative Hopcroft–Tarjan low-link DFS as ArticulationPoints over a
// Graph view, running on the packed CSR adjacency (identical sorted
// neighbor order, so DFS trees — and therefore results — match exactly).
func (v *CSRView) ArticulationPoints() []bool {
	c := v.c
	n := c.NumNodes()
	isArt := make([]bool, n)
	disc := make([]int32, n)  // discovery time, 0 = unvisited
	low := make([]int32, n)   // low-link value
	parent := make([]Node, n) // DFS-tree parent
	childCnt := make([]int32, n)
	iter := make([]int, n) // per-node adjacency cursor
	for i := range parent {
		parent[i] = -1
	}
	var timer int32 = 1
	stack := make([]Node, 0, 64)

	for s := 0; s < n; s++ {
		if !v.alive[s] || disc[s] != 0 {
			continue
		}
		disc[s], low[s] = timer, timer
		timer++
		stack = append(stack[:0], Node(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			adj := c.Neighbors(u)
			advanced := false
			for iter[u] < len(adj) {
				w := adj[iter[u]]
				iter[u]++
				if !v.alive[w] {
					continue
				}
				if disc[w] == 0 {
					parent[w] = u
					childCnt[u]++
					disc[w], low[w] = timer, timer
					timer++
					stack = append(stack, w)
					advanced = true
					break
				}
				if w != parent[u] && disc[w] < low[u] {
					low[u] = disc[w]
				}
			}
			if advanced {
				continue
			}
			stack = stack[:len(stack)-1]
			p := parent[u]
			if p >= 0 {
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if parent[p] >= 0 && low[u] >= disc[p] {
					isArt[p] = true
				}
			}
		}
		if childCnt[s] >= 2 {
			isArt[s] = true
		}
	}
	return isArt
}
