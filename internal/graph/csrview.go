package graph

import "unsafe"

// i32at / f64at are the unchecked loads of the articulation hot loop.
// The DFS executes once per node removal of NCA — the dominant cost of
// the whole variant — and every index is in range by construction (CSR
// targets hold valid node ids < n; cursors stay below the row end, which
// is bounded by len(targets)), so the compiler's per-entry bounds checks
// are pure overhead (~25% of the sweep, measured). Touch these only with
// indices whose validity follows from the packed-array invariants.
func i32at(base *int32, i int32) *int32 {
	return (*int32)(unsafe.Add(unsafe.Pointer(base), uintptr(uint32(i))*4))
}

func f64at(base *float64, i int32) *float64 {
	return (*float64)(unsafe.Add(unsafe.Pointer(base), uintptr(uint32(i))*8))
}

// CSRView is a mutable "alive set" over an immutable CSR snapshot — the
// peeling substrate every search algorithm in this repository runs on.
// Like View it tracks alive nodes and alive degrees in O(deg) per
// Remove/Restore, but it additionally maintains the two weighted
// aggregates the modularity objectives need — the alive internal edge
// weight w_C and the alive node-weight sum d_S — straight from the CSR's
// packed weights slice and cached node-weight table. No edge-weight map
// is ever consulted: on unweighted snapshots every edge counts 1, on
// weighted snapshots the packed parallel weights array is read in
// neighbor order, so scores stay bit-identical to the historical
// map-backed implementation (float accumulation order is preserved).
type CSRView struct {
	c      *CSR
	alive  []bool
	deg    []int32 // degree restricted to alive nodes
	nAlive int
	mAlive int
	wAlive float64 // alive internal edge weight w_C (mAlive when unweighted)
	dAlive float64 // sum over alive nodes of cached node weight (d_S)
}

// NewCSRView creates a view with every node of c alive.
func NewCSRView(c *CSR) *CSRView {
	n := c.NumNodes()
	v := &CSRView{
		c:      c,
		alive:  make([]bool, n),
		deg:    make([]int32, n),
		nAlive: n,
		mAlive: len(c.targets) / 2,
		wAlive: c.totalW,
	}
	for u := range v.alive {
		v.alive[u] = true
		v.deg[u] = int32(c.Degree(Node(u)))
		v.dAlive += c.wdeg[u]
	}
	return v
}

// NewCSRViewOf creates a view in which exactly the nodes of set are alive.
// Duplicate nodes in set are counted once. The weighted aggregates are
// accumulated in set (first-occurrence) order over sorted adjacency, the
// same order the peeling algorithms have always used, so downstream float
// comparisons are reproducible.
func NewCSRViewOf(c *CSR, set []Node) *CSRView {
	n := c.NumNodes()
	v := &CSRView{
		c:     c,
		alive: make([]bool, n),
		deg:   make([]int32, n),
	}
	members := make([]Node, 0, len(set))
	for _, u := range set {
		if !v.alive[u] {
			v.alive[u] = true
			v.nAlive++
			members = append(members, u)
		}
	}
	for _, u := range members {
		v.dAlive += c.wdeg[u]
		adj := c.Neighbors(u)
		if c.weights != nil {
			ws := c.NeighborWeights(u)
			for i, w := range adj {
				if v.alive[w] {
					v.deg[u]++
					if u < w {
						v.mAlive++
						v.wAlive += ws[i]
					}
				}
			}
		} else {
			for _, w := range adj {
				if v.alive[w] {
					v.deg[u]++
					if u < w {
						v.mAlive++
					}
				}
			}
		}
	}
	if c.weights == nil {
		v.wAlive = float64(v.mAlive)
	}
	return v
}

// CSR returns the underlying immutable snapshot.
func (v *CSRView) CSR() *CSR { return v.c }

// Alive reports whether node u is in the view.
func (v *CSRView) Alive(u Node) bool { return v.alive[u] }

// NumAlive returns the number of alive nodes.
func (v *CSRView) NumAlive() int { return v.nAlive }

// NumAliveEdges returns the number of edges with both endpoints alive.
func (v *CSRView) NumAliveEdges() int { return v.mAlive }

// DegreeIn returns u's degree restricted to alive neighbors (0 for dead
// nodes).
func (v *CSRView) DegreeIn(u Node) int { return int(v.deg[u]) }

// WeightedDegreeIn returns k_{u,S}: the weighted degree of u into the
// alive set (Definitions 5–7). It is computed fresh in O(deg) from the
// packed weights so repeated calls after interleaved removals return
// exactly the neighbor-order sum, never a drifted incremental value.
func (v *CSRView) WeightedDegreeIn(u Node) float64 {
	if v.c.weights == nil {
		return float64(v.deg[u])
	}
	adj := v.c.Neighbors(u)
	ws := v.c.NeighborWeights(u)
	var k float64
	for i, w := range adj {
		if v.alive[w] {
			k += ws[i]
		}
	}
	return k
}

// InternalWeight returns w_C, the total weight of edges with both
// endpoints alive (NumAliveEdges when unweighted). It is maintained
// incrementally across Remove/Restore.
func (v *CSRView) InternalWeight() float64 { return v.wAlive }

// NodeWeightSum returns d_S, the sum of cached node weights (weighted
// degrees in the full graph) over the alive set.
func (v *CSRView) NodeWeightSum() float64 { return v.dAlive }

// Remove deletes u from the view, updating neighbor degrees and the
// weighted aggregates in O(deg). Removing a dead node is a no-op.
func (v *CSRView) Remove(u Node) {
	if !v.alive[u] {
		return
	}
	// w_C loses exactly k_{u,S}, summed in neighbor order before any
	// flag flips (the same subtraction the peeling recurrences perform).
	v.wAlive -= v.WeightedDegreeIn(u)
	v.dAlive -= v.c.wdeg[u]
	v.alive[u] = false
	v.nAlive--
	for _, w := range v.c.Neighbors(u) {
		if v.alive[w] {
			v.deg[w]--
			v.mAlive--
		}
	}
	v.deg[u] = 0
}

// Restore re-inserts a previously removed node, reversing Remove.
func (v *CSRView) Restore(u Node) {
	if v.alive[u] {
		return
	}
	v.alive[u] = true
	v.nAlive++
	var d int32
	for _, w := range v.c.Neighbors(u) {
		if v.alive[w] {
			d++
			v.deg[w]++
			v.mAlive++
		}
	}
	v.deg[u] = d
	v.wAlive += v.WeightedDegreeIn(u)
	v.dAlive += v.c.wdeg[u]
}

// EachNeighbor calls fn for every alive neighbor of u.
func (v *CSRView) EachNeighbor(u Node, fn func(w Node)) {
	for _, w := range v.c.Neighbors(u) {
		if v.alive[w] {
			fn(w)
		}
	}
}

// LiveNodes returns the alive node set in ascending order.
func (v *CSRView) LiveNodes() []Node {
	out := make([]Node, 0, v.nAlive)
	for u := range v.alive {
		if v.alive[u] {
			out = append(out, Node(u))
		}
	}
	return out
}

// Clone returns an independent copy of the view sharing the immutable CSR.
func (v *CSRView) Clone() *CSRView {
	return &CSRView{
		c:      v.c,
		alive:  append([]bool(nil), v.alive...),
		deg:    append([]int32(nil), v.deg...),
		nAlive: v.nAlive,
		mAlive: v.mAlive,
		wAlive: v.wAlive,
		dAlive: v.dAlive,
	}
}

// MultiSourceBFS computes, for every node, the minimum unweighted distance
// to any alive source, restricted to alive nodes. Dead nodes, dead
// sources, and unreachable nodes get INF.
func (v *CSRView) MultiSourceBFS(sources []Node) []int32 {
	n := v.c.NumNodes()
	return v.MultiSourceBFSInto(sources, make([]int32, n), make([]Node, 0, n))
}

// MultiSourceBFSInto is MultiSourceBFS writing into caller-owned scratch;
// dist needs length >= NumNodes, queue capacity >= NumNodes.
func (v *CSRView) MultiSourceBFSInto(sources []Node, dist []int32, queue []Node) []int32 {
	dist = dist[:v.c.NumNodes()]
	for i := range dist {
		dist[i] = INF
	}
	queue = queue[:0]
	for _, s := range sources {
		if v.alive[s] && dist[s] == INF {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range v.c.Neighbors(u) {
			if v.alive[w] && dist[w] == INF {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ArtScratch is the reusable backing memory of one articulation-point
// DFS: per-node discovery/low-link/parent/cursor tables plus the explicit
// DFS stack. NCA recomputes articulation points once per node removal, so
// arenas keep one ArtScratch and pay an O(alive) re-initialization per
// sweep instead of six fresh allocations.
type ArtScratch struct {
	isArt  []bool
	disc   []int32 // discovery time; 0 = unvisited, -1 = dead
	low    []int32 // low-link value
	parent []Node  // DFS-tree parent
	iter   []int32 // per-node absolute adjacency cursor
	stack  []Node
}

// reset sizes every table for n nodes and restores the pre-DFS state;
// the adjacency cursors start at each node's absolute offset into the
// packed targets array. Deadness is folded into disc (-1) so the hot
// edge loop pays one random read per target instead of two. low and
// parent need no reset — both are written at discovery before any read —
// and the reset loop is the only whole-table pass of a sweep.
func (s *ArtScratch) reset(c *CSR, alive []bool, n int) {
	s.isArt = growBool(s.isArt, n)
	s.disc = growInt32(s.disc, n)
	s.low = growInt32(s.low, n)
	s.parent = growNodes(s.parent, n)
	s.iter = growInt32(s.iter, n)
	for i := 0; i < n; i++ {
		s.isArt[i] = false
		if alive[i] {
			s.disc[i] = 0
		} else {
			s.disc[i] = -1
		}
		s.iter[i] = c.offsets[i]
	}
	if cap(s.stack) < 64 {
		s.stack = make([]Node, 0, 64)
	}
}

// ArticulationPoints returns a boolean mask over the alive nodes: mask[u]
// is true when removing u disconnects the alive subgraph. It is the same
// iterative Hopcroft–Tarjan low-link DFS as ArticulationPoints over a
// Graph view, running on the packed CSR adjacency (identical sorted
// neighbor order, so DFS trees — and therefore results — match exactly).
func (v *CSRView) ArticulationPoints() []bool {
	return v.ArticulationPointsInto(new(ArtScratch))
}

// ArticulationPointsInto is ArticulationPoints running on caller-owned
// scratch. The returned mask aliases s.isArt and is valid until the next
// sweep on the same scratch.
func (v *CSRView) ArticulationPointsInto(s *ArtScratch) []bool {
	return v.articulation(s, nil)
}

// ArticulationPointsKInto additionally accumulates, for every alive node
// u, its weighted degree into the alive set k_{u,S} into kSum[u]; entries
// of dead nodes are left untouched (stale) and must not be read. The DFS
// cursor walks each alive node's
// packed adjacency exactly once in ascending order — the same term order
// WeightedDegreeIn uses — so the fused sums are bit-identical to separate
// per-node rescans while saving a full pass over the alive edges. NCA's
// candidate scan consumes them every removal.
func (v *CSRView) ArticulationPointsKInto(s *ArtScratch, kSum []float64) []bool {
	return v.articulation(s, kSum)
}

func (v *CSRView) articulation(s *ArtScratch, kSum []float64) []bool {
	c := v.c
	n := c.NumNodes()
	s.reset(c, v.alive, n)
	offsets, targets, weights := c.offsets, c.targets, c.weights
	isArt := s.isArt
	disc, low := s.disc, s.low
	parent := s.parent
	iter := s.iter
	// Unchecked base pointers for the per-entry loads/stores (see i32at).
	targetsP := unsafe.SliceData(targets)
	discP := unsafe.SliceData(disc)
	lowP := unsafe.SliceData(low)
	parentP := unsafe.SliceData(parent)
	var weightsP, kSumP *float64
	if kSum != nil {
		weightsP = unsafe.SliceData(weights)
		kSumP = unsafe.SliceData(kSum)
	}
	var timer int32 = 1
	stack := s.stack[:0]
	defer func() { s.stack = stack[:0] }() // keep a grown stack

	for ri := 0; ri < n; ri++ {
		if disc[ri] != 0 { // dead (-1) or already visited
			continue
		}
		root := Node(ri)
		disc[root], low[root] = timer, timer
		parent[root] = -1
		if kSum != nil {
			kSum[root] = 0
		}
		rootChildren := 0
		timer++
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			end := offsets[u+1]
			cur := iter[u]
			pu := parent[u]
			lu := low[u]
			advanced := false
			// The low-link and k_{u,S} accumulators live in registers
			// while u is the stack top and are flushed on descend/pop;
			// the += order is the cursor order either way, so the fused
			// sums stay bit-identical to a per-node rescan.
			var ku float64
			if kSum != nil {
				ku = kSum[u]
			}
			for cur < end {
				w := *i32at(targetsP, cur)
				dw := *i32at(discP, w) // the one random read of the edge loop
				if dw > 0 {            // visited alive neighbor: the common case
					if kSumP != nil {
						ku += *f64at(weightsP, cur)
					}
					cur++
					if w != pu && dw < lu {
						lu = dw
					}
					continue
				}
				if dw < 0 { // dead neighbor
					cur++
					continue
				}
				// tree edge: discover w
				if kSumP != nil {
					ku += *f64at(weightsP, cur)
					*f64at(kSumP, w) = 0
				}
				cur++
				*i32at(parentP, w) = u
				if u == root {
					rootChildren++
				}
				*i32at(discP, w) = timer
				*i32at(lowP, w) = timer
				timer++
				stack = append(stack, w)
				advanced = true
				break
			}
			iter[u] = cur
			low[u] = lu
			if kSum != nil {
				kSum[u] = ku
			}
			if advanced {
				continue
			}
			stack = stack[:len(stack)-1]
			if pu >= 0 {
				if lu < low[pu] {
					low[pu] = lu
				}
				if parent[pu] >= 0 && lu >= disc[pu] {
					isArt[pu] = true
				}
			}
		}
		if rootChildren >= 2 {
			isArt[root] = true
		}
	}
	return isArt
}
