package graph

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestDeltaCodecRoundTrip(t *testing.T) {
	ops := []Delta{
		{Op: DeltaAddEdge, U: 0, V: 7, W: 1},
		{Op: DeltaSetWeight, U: 3, V: 9, W: 2.5},
		{Op: DeltaSetWeight, U: 1, V: 2, W: 0}, // zero weight is a real value
		{Op: DeltaRemoveEdge, U: 4, V: 5},
		{Op: DeltaAddNode, U: 42},
		// Negative ids are invalid for MergeCSR but must round-trip
		// verbatim: the log stores staged batches, not normalized ones.
		{Op: DeltaAddEdge, U: -3, V: -1, W: 1},
		{Op: DeltaSetWeight, U: 6, V: 8, W: math.Inf(1)},
	}
	enc := AppendDeltas(nil, ops)
	got, n, err := DecodeDeltas(enc, nil)
	if err != nil {
		t.Fatalf("DecodeDeltas: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ops)
	}

	// Trailing bytes after the declared count are the caller's problem.
	got2, n2, err := DecodeDeltas(append(enc, 0xde, 0xad), nil)
	if err != nil || n2 != len(enc) || !reflect.DeepEqual(got2, ops) {
		t.Fatalf("trailing bytes changed the decode: n=%d err=%v", n2, err)
	}
}

func TestDeltaCodecEmpty(t *testing.T) {
	enc := AppendDeltas(nil, nil)
	got, n, err := DecodeDeltas(enc, nil)
	if err != nil || n != len(enc) || len(got) != 0 {
		t.Fatalf("empty batch: got %v, n=%d, err=%v", got, n, err)
	}
}

func TestDeltaCodecRejectsCorrupt(t *testing.T) {
	valid := AppendDeltas(nil, []Delta{
		{Op: DeltaAddEdge, U: 1, V: 2, W: 1},
		{Op: DeltaRemoveEdge, U: 3, V: 4},
	})
	// Every strict prefix must fail: there is no valid shorter encoding
	// with the same declared count.
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := DecodeDeltas(valid[:cut], nil); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		} else if !errors.Is(err, ErrCodec) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCodec", cut, err)
		}
	}
	// Unknown op byte.
	bad := append([]byte(nil), valid...)
	bad[1] = 0xff
	if _, _, err := DecodeDeltas(bad, nil); !errors.Is(err, ErrCodec) {
		t.Fatalf("unknown op byte: err=%v", err)
	}
}

func TestCSRCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, weighted := range []bool{false, true} {
		g := randomDeltaGraph(rng, 40, weighted)
		want := NewCSR(g)
		enc := AppendCSR(nil, want)
		got, n, err := DecodeCSR(enc)
		if err != nil {
			t.Fatalf("weighted=%v DecodeCSR: %v", weighted, err)
		}
		if n != len(enc) {
			t.Fatalf("weighted=%v consumed %d of %d bytes", weighted, n, len(enc))
		}
		csrEqual(t, got, want)

		// Trailing bytes are left for the caller (the checkpoint codec
		// appends the component vectors right after the CSR image).
		got2, n2, err := DecodeCSR(append(enc, 1, 2, 3))
		if err != nil || n2 != len(enc) {
			t.Fatalf("weighted=%v trailing bytes: n=%d err=%v", weighted, n2, err)
		}
		csrEqual(t, got2, want)
	}
}

func TestCSRCodecEmptyGraph(t *testing.T) {
	want := NewCSR(NewBuilder(0).Build())
	enc := AppendCSR(nil, want)
	got, _, err := DecodeCSR(enc)
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	csrEqual(t, got, want)
}

func TestCSRCodecBitExactAggregates(t *testing.T) {
	// Force an aggregate whose value depends on float addition order:
	// decoding must reproduce the stored bits, not recompute the sum.
	b := NewBuilder(4)
	b.SetWeight(0, 1, 0.1)
	b.SetWeight(1, 2, 0.2)
	b.SetWeight(2, 3, 0.3)
	want := NewCSR(b.Build())
	got, _, err := DecodeCSR(AppendCSR(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.totalW) != math.Float64bits(want.totalW) {
		t.Fatalf("totalW bits drifted: got %x want %x",
			math.Float64bits(got.totalW), math.Float64bits(want.totalW))
	}
	for i := range want.wdeg {
		if math.Float64bits(got.wdeg[i]) != math.Float64bits(want.wdeg[i]) {
			t.Fatalf("wdeg[%d] bits drifted", i)
		}
	}
}

func TestCSRCodecRejectsCorrupt(t *testing.T) {
	g := randomDeltaGraph(rand.New(rand.NewSource(11)), 12, true)
	valid := AppendCSR(nil, NewCSR(g))

	check := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		b := mutate(append([]byte(nil), valid...))
		if _, _, err := DecodeCSR(b); err == nil {
			t.Fatalf("%s decoded cleanly", name)
		} else if !errors.Is(err, ErrCodec) {
			t.Fatalf("%s: error %v does not wrap ErrCodec", name, err)
		}
	}
	check("bad version", func(b []byte) []byte { b[0] = 99; return b })
	check("bad weighted flag", func(b []byte) []byte { b[1] = 7; return b })
	check("truncated body", func(b []byte) []byte { return b[:len(b)/2] })
	check("empty", func(b []byte) []byte { return b[:0] })

	// Structural invariants: corrupt a target to a self-loop. The offsets
	// region starts after version, flag and two uvarints; easier to build
	// a tiny graph where byte positions are known.
	tiny := NewBuilder(2)
	tiny.AddEdge(0, 1)
	enc := AppendCSR(nil, NewCSR(tiny.Build()))
	// Layout: ver, flag, uvarint n=2, uvarint m=2, offsets[3]*4, targets[2]*4, ...
	// targets[0] is node 0's neighbor (=1); pointing it at 0 makes a self-loop.
	tgt := 4 + 3*4
	enc[tgt] = 0
	if _, _, err := DecodeCSR(enc); !errors.Is(err, ErrCodec) {
		t.Fatalf("self-loop target: err=%v", err)
	}
}
