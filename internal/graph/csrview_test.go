package graph

import (
	"math/rand"
	"testing"
)

// randomWeightedGraph builds a random graph whose every edge carries a
// weight in (0.5, 2.5).
func randomWeightedGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.SetWeight(Node(u), Node(v), 0.5+2*rng.Float64())
			}
		}
	}
	return b.Build()
}

func TestCSRViewMatchesViewUnweighted(t *testing.T) {
	g := randomGraph(40, 0.15, 7)
	c := NewCSR(g)
	v := NewView(g)
	cv := NewCSRView(c)
	rng := rand.New(rand.NewSource(1))
	order := rng.Perm(40)
	for _, u := range order[:30] {
		v.Remove(Node(u))
		cv.Remove(Node(u))
		if v.NumAlive() != cv.NumAlive() || v.NumAliveEdges() != cv.NumAliveEdges() {
			t.Fatalf("alive %d/%d edges %d/%d", v.NumAlive(), cv.NumAlive(),
				v.NumAliveEdges(), cv.NumAliveEdges())
		}
		for x := Node(0); int(x) < 40; x++ {
			if v.DegreeIn(x) != cv.DegreeIn(x) || v.Alive(x) != cv.Alive(x) {
				t.Fatalf("node %d: deg %d/%d alive %v/%v", x,
					v.DegreeIn(x), cv.DegreeIn(x), v.Alive(x), cv.Alive(x))
			}
		}
		if cv.InternalWeight() != float64(cv.NumAliveEdges()) {
			t.Fatalf("unweighted InternalWeight=%g want %d", cv.InternalWeight(), cv.NumAliveEdges())
		}
	}
}

// The incremental weighted aggregates must equal a direct recount after
// any removal/restore sequence (within float tolerance — the recount sums
// in a different order).
func TestCSRViewWeightedAggregates(t *testing.T) {
	g := randomWeightedGraph(30, 0.25, 3)
	c := NewCSR(g)
	cv := NewCSRView(c)
	rng := rand.New(rand.NewSource(2))
	recheck := func() {
		var wC, dS float64
		for u := Node(0); int(u) < 30; u++ {
			if !cv.Alive(u) {
				continue
			}
			dS += g.WeightedDegree(u)
			for _, w := range g.Neighbors(u) {
				if cv.Alive(w) && u < w {
					wC += g.EdgeWeight(u, w)
				}
			}
		}
		if d := cv.InternalWeight() - wC; d > 1e-9 || d < -1e-9 {
			t.Fatalf("InternalWeight=%g recount=%g", cv.InternalWeight(), wC)
		}
		if d := cv.NodeWeightSum() - dS; d > 1e-9 || d < -1e-9 {
			t.Fatalf("NodeWeightSum=%g recount=%g", cv.NodeWeightSum(), dS)
		}
	}
	recheck()
	removed := make([]Node, 0, 30)
	for _, u := range rng.Perm(30)[:20] {
		cv.Remove(Node(u))
		removed = append(removed, Node(u))
		recheck()
	}
	for _, u := range removed {
		cv.Restore(u)
		recheck()
	}
	if cv.NumAlive() != 30 {
		t.Fatalf("NumAlive=%d after full restore", cv.NumAlive())
	}
}

// WeightedDegreeIn must equal the ordered sum of alive-neighbor weights —
// exactly what the peeling objectives call k_{v,S}.
func TestCSRViewWeightedDegreeIn(t *testing.T) {
	g := randomWeightedGraph(25, 0.3, 11)
	c := NewCSR(g)
	cv := NewCSRView(c)
	cv.Remove(3)
	cv.Remove(17)
	for u := Node(0); int(u) < 25; u++ {
		var k float64
		for _, w := range g.Neighbors(u) {
			if cv.Alive(w) {
				k += g.EdgeWeight(u, w)
			}
		}
		if got := cv.WeightedDegreeIn(u); got != k {
			t.Fatalf("WeightedDegreeIn(%d)=%g want %g", u, got, k)
		}
	}
}

func TestNewCSRViewOfDuplicatesAndSubset(t *testing.T) {
	g := complete(6)
	c := NewCSR(g)
	v := NewCSRViewOf(c, []Node{0, 2, 4})
	dup := NewCSRViewOf(c, []Node{0, 2, 4, 2, 0})
	if v.NumAlive() != 3 || dup.NumAlive() != 3 {
		t.Fatalf("alive %d/%d want 3", v.NumAlive(), dup.NumAlive())
	}
	if v.NumAliveEdges() != 3 || dup.NumAliveEdges() != 3 {
		t.Fatalf("edges %d/%d want 3", v.NumAliveEdges(), dup.NumAliveEdges())
	}
	if v.InternalWeight() != 3 || dup.InternalWeight() != 3 ||
		dup.NodeWeightSum() != v.NodeWeightSum() {
		t.Fatalf("aggregates broken: wC=%g/%g dS=%g/%g",
			v.InternalWeight(), dup.InternalWeight(), v.NodeWeightSum(), dup.NodeWeightSum())
	}
	if v.DegreeIn(0) != 2 || dup.DegreeIn(0) != 2 {
		t.Fatalf("DegreeIn(0)=%d/%d want 2", v.DegreeIn(0), dup.DegreeIn(0))
	}
	if v.Alive(1) || dup.Alive(5) {
		t.Fatal("dead nodes alive")
	}
}

func TestCSRViewArticulationPointsMatchView(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(35, 0.12, seed)
		c := NewCSR(g)
		v := NewView(g)
		cv := NewCSRView(c)
		rng := rand.New(rand.NewSource(seed * 31))
		for _, u := range rng.Perm(35)[:10] {
			v.Remove(Node(u))
			cv.Remove(Node(u))
		}
		want := ArticulationPoints(v)
		got := cv.ArticulationPoints()
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d node %d: art %v vs %v", seed, i, want[i], got[i])
			}
		}
	}
}

func TestCSRViewMultiSourceBFSMatchesView(t *testing.T) {
	g := randomGraph(40, 0.1, 5)
	c := NewCSR(g)
	v := NewView(g)
	cv := NewCSRView(c)
	for _, u := range []Node{1, 7, 13, 22} {
		v.Remove(u)
		cv.Remove(u)
	}
	src := []Node{0, 9, 7} // 7 is dead: must be skipped by both
	want := MultiSourceBFSView(v, src)
	got := cv.MultiSourceBFS(src)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("dist[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestCSRMultiSourceBFSAndDijkstra(t *testing.T) {
	g := randomWeightedGraph(30, 0.2, 9)
	c := NewCSR(g)
	wantB := MultiSourceBFS(g, []Node{0, 4})
	gotB := c.MultiSourceBFS([]Node{0, 4})
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("bfs dist[%d]=%d want %d", i, gotB[i], wantB[i])
		}
	}
	wantD := Dijkstra(g, []Node{0})
	gotD := c.Dijkstra([]Node{0})
	for i := range wantD {
		if wantD[i] != gotD[i] {
			t.Fatalf("dijkstra dist[%d]=%g want %g", i, gotD[i], wantD[i])
		}
	}
}

func TestCSREdgesIterator(t *testing.T) {
	g := randomWeightedGraph(20, 0.3, 13)
	c := NewCSR(g)
	var sum float64
	count := 0
	c.Edges(func(u, v Node, w float64) bool {
		if u >= v {
			t.Fatalf("edge (%d,%d) not u<v", u, v)
		}
		if w != g.EdgeWeight(u, v) {
			t.Fatalf("weight(%d,%d)=%g want %g", u, v, w, g.EdgeWeight(u, v))
		}
		sum += w
		count++
		return true
	})
	if count != g.NumEdges() {
		t.Fatalf("visited %d edges want %d", count, g.NumEdges())
	}
	if d := sum - g.TotalWeight(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("edge-weight sum %g want %g", sum, g.TotalWeight())
	}
}

func TestCSRViewCloneIndependent(t *testing.T) {
	g := randomWeightedGraph(15, 0.3, 1)
	c := NewCSR(g)
	v := NewCSRView(c)
	cl := v.Clone()
	cl.Remove(0)
	if !v.Alive(0) || cl.Alive(0) {
		t.Fatal("clone removal leaked")
	}
	if v.InternalWeight() == cl.InternalWeight() && v.DegreeIn(0) > 0 {
		t.Fatal("clone aggregates not independent")
	}
}
