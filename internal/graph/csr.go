package graph

import "container/heap"

// CSR is a compressed-sparse-row snapshot of a Graph: all adjacency lists
// packed into one contiguous slice with per-node offsets. It is the
// canonical algorithm substrate of this repository — traversals (BFS,
// Dijkstra), modularity evaluation, and the peeling searches all run on
// the packed arrays; mutation during peeling is handled by CSRView, a
// mutable alive-set overlay. The map-backed Graph remains the right type
// only for construction and I/O. BenchmarkCSRTraversal quantifies the
// locality difference.
//
// The snapshot also caches the aggregates the modularity formulas need on
// every query — per-node weighted degrees (the d_v node weights of
// Definition 2) and the total edge weight w_G — so read-heavy servers like
// internal/engine evaluate them without touching the edge-weight map.
type CSR struct {
	offsets []int32
	targets []Node
	weights []float64 // parallel to targets; nil for unweighted graphs
	wdeg    []float64 // cached WeightedDegree per node (plain degree when unweighted)
	totalW  float64   // cached TotalWeight (|E| when unweighted)
}

// NewCSR packs g into CSR form.
func NewCSR(g *Graph) *CSR {
	n := g.NumNodes()
	c := &CSR{
		offsets: make([]int32, n+1),
		targets: make([]Node, 0, 2*g.NumEdges()),
		wdeg:    make([]float64, n),
	}
	if g.Weighted() {
		c.weights = make([]float64, 0, 2*g.NumEdges())
	}
	for u := 0; u < n; u++ {
		c.offsets[u] = int32(len(c.targets))
		c.targets = append(c.targets, g.Neighbors(Node(u))...)
		if c.weights != nil {
			for _, w := range g.Neighbors(Node(u)) {
				ew := g.EdgeWeight(Node(u), w)
				c.weights = append(c.weights, ew)
				c.wdeg[u] += ew
				// Per-edge (u < w) accumulation in Graph.TotalWeight's
				// iteration order, so the two values are bit-identical
				// (float addition is order-sensitive and searches compare
				// scores computed from either source).
				if Node(u) < w {
					c.totalW += ew
				}
			}
		} else {
			c.wdeg[u] = float64(g.Degree(Node(u)))
		}
	}
	c.offsets[n] = int32(len(c.targets))
	if c.weights == nil {
		c.totalW = float64(g.NumEdges())
	}
	return c
}

// NumNodes returns |V|.
func (c *CSR) NumNodes() int { return len(c.offsets) - 1 }

// NumEdges returns |E| (each undirected edge counted once).
func (c *CSR) NumEdges() int { return len(c.targets) / 2 }

// Degree returns the degree of u.
func (c *CSR) Degree(u Node) int { return int(c.offsets[u+1] - c.offsets[u]) }

// Neighbors returns u's packed, sorted adjacency slice (do not modify).
func (c *CSR) Neighbors(u Node) []Node {
	return c.targets[c.offsets[u]:c.offsets[u+1]]
}

// Weighted reports whether the snapshot carries per-edge weights.
func (c *CSR) Weighted() bool { return c.weights != nil }

// NeighborWeights returns the edge weights parallel to Neighbors(u), or nil
// when the graph is unweighted (every edge weighs 1). Do not modify.
func (c *CSR) NeighborWeights(u Node) []float64 {
	if c.weights == nil {
		return nil
	}
	return c.weights[c.offsets[u]:c.offsets[u+1]]
}

// WeightedDegree returns the cached node weight d_u (the sum of adjacent
// edge weights; the plain degree when unweighted).
func (c *CSR) WeightedDegree(u Node) float64 { return c.wdeg[u] }

// WeightedDegrees returns the full cached node-weight table, indexed by
// node id. The caller must not modify it; it is shared by every query that
// runs against the snapshot.
func (c *CSR) WeightedDegrees() []float64 { return c.wdeg }

// TotalWeight returns the cached total edge weight w_G (|E| unweighted).
func (c *CSR) TotalWeight() float64 { return c.totalW }

// Volume returns the sum of cached node weights over set — the d_C volume
// aggregate of the modularity definitions (vol(C) = Σ_{u∈C} d_u).
func (c *CSR) Volume(set []Node) float64 {
	var t float64
	for _, u := range set {
		t += c.wdeg[u]
	}
	return t
}

// Edges calls fn once per undirected edge with u < v, passing the edge
// weight (1 for unweighted snapshots). Iteration follows the packed
// adjacency — ascending u, ascending v — and stops early if fn returns
// false. Consumers that need a deterministic weighted edge sweep use this
// instead of Graph.Edges + EdgeWeight map lookups.
func (c *CSR) Edges(fn func(u, v Node, w float64) bool) {
	n := c.NumNodes()
	for u := 0; u < n; u++ {
		adj := c.Neighbors(Node(u))
		if c.weights != nil {
			ws := c.NeighborWeights(Node(u))
			for i, v := range adj {
				if Node(u) < v {
					if !fn(Node(u), v, ws[i]) {
						return
					}
				}
			}
		} else {
			for _, v := range adj {
				if Node(u) < v {
					if !fn(Node(u), v, 1) {
						return
					}
				}
			}
		}
	}
}

// BFS computes unweighted distances from src over the CSR snapshot.
func (c *CSR) BFS(src Node) []int32 {
	return c.MultiSourceBFS([]Node{src})
}

// MultiSourceBFS computes, for every node, the minimum unweighted distance
// to any of the sources (the paper's dist(v) = min over q in Q of d(q,v)).
// Unreachable nodes get INF.
func (c *CSR) MultiSourceBFS(sources []Node) []int32 {
	n := c.NumNodes()
	return c.MultiSourceBFSInto(sources, make([]int32, n), make([]Node, 0, n))
}

// MultiSourceBFSInto is MultiSourceBFS writing into caller-owned scratch:
// dist must have length >= NumNodes and queue capacity >= NumNodes (each
// node is enqueued at most once, so the queue never reallocates). Arenas
// use it to make per-query traversal allocation-free.
func (c *CSR) MultiSourceBFSInto(sources []Node, dist []int32, queue []Node) []int32 {
	dist = dist[:c.NumNodes()]
	for i := range dist {
		dist[i] = INF
	}
	queue = queue[:0]
	for _, s := range sources {
		if dist[s] == INF {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range c.Neighbors(u) {
			if dist[w] == INF {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Component returns the sorted connected component containing src
// together with the BFS distance array that enumerated it (INF marks
// nodes outside the component, so callers validate membership of further
// nodes — e.g. the rest of a query — without a second traversal).
func (c *CSR) Component(src Node) ([]Node, []int32) {
	dist := c.BFS(src)
	comp := make([]Node, 0, 64)
	for u, d := range dist {
		if d != INF {
			comp = append(comp, Node(u))
		}
	}
	return comp, dist
}

// Dijkstra computes weighted shortest-path distances from the sources
// over the packed weights (unit weights when the snapshot is unweighted,
// degenerating to BFS distances). Unreachable nodes get -1.
func (c *CSR) Dijkstra(sources []Node) []float64 {
	dist := make([]float64, c.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	h := &dijkstraHeap{}
	for _, s := range sources {
		if dist[s] < 0 {
			dist[s] = 0
			heap.Push(h, dijkstraItem{s, 0})
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkstraItem)
		if it.dist > dist[it.node] {
			continue
		}
		adj := c.Neighbors(it.node)
		ws := c.NeighborWeights(it.node)
		for i, w := range adj {
			step := 1.0
			if ws != nil {
				step = ws[i]
			}
			nd := it.dist + step
			if dist[w] < 0 || nd < dist[w] {
				dist[w] = nd
				heap.Push(h, dijkstraItem{w, nd})
			}
		}
	}
	return dist
}

// Triangles counts the triangles incident to every node using the packed
// lists (merge-intersection over sorted adjacencies).
func (c *CSR) Triangles() []int32 {
	n := c.NumNodes()
	tri := make([]int32, n)
	for u := 0; u < n; u++ {
		nu := c.Neighbors(Node(u))
		for _, v := range nu {
			if v <= Node(u) {
				continue
			}
			nv := c.Neighbors(v)
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				switch {
				case nu[i] == nv[j]:
					if nu[i] > v { // count each triangle once at its apex
						tri[u]++
						tri[v]++
						tri[nu[i]]++
					}
					i++
					j++
				case nu[i] < nv[j]:
					i++
				default:
					j++
				}
			}
		}
	}
	return tri
}

// LocalClustering returns each node's local clustering coefficient
// 2·tri(u) / (deg(u)·(deg(u)−1)), 0 for degree < 2. The paper uses the
// average difference of local clustering coefficients between ground-truth
// communities to explain NCA's behaviour on Dolphin/Polblogs (§6.3).
func (c *CSR) LocalClustering() []float64 {
	tri := c.Triangles()
	out := make([]float64, c.NumNodes())
	for u := range out {
		d := c.Degree(Node(u))
		if d >= 2 {
			out[u] = 2 * float64(tri[u]) / (float64(d) * float64(d-1))
		}
	}
	return out
}

// AvgClustering returns the mean local clustering coefficient over the
// given node set (over all nodes when set is nil).
func (c *CSR) AvgClustering(set []Node) float64 {
	cc := c.LocalClustering()
	if set == nil {
		var t float64
		for _, x := range cc {
			t += x
		}
		if len(cc) == 0 {
			return 0
		}
		return t / float64(len(cc))
	}
	if len(set) == 0 {
		return 0
	}
	var t float64
	for _, u := range set {
		t += cc[u]
	}
	return t / float64(len(set))
}
