package graph

import (
	"math/rand"
	"testing"
)

// subTestGraph builds a random graph of a few components; weighted draws
// a weight in (0.5, 3) per edge.
func subTestGraph(rng *rand.Rand, n int, weighted bool) *Graph {
	b := NewBuilder(n)
	third := n / 3
	addEdge := func(u, v Node) {
		if weighted {
			b.SetWeight(u, v, 0.5+2.5*rng.Float64())
		} else {
			b.AddEdge(u, v)
		}
	}
	// three chains keep three components, then random intra-third edges
	for c := 0; c < 3; c++ {
		lo, hi := c*third, (c+1)*third
		if c == 2 {
			hi = n
		}
		for i := lo + 1; i < hi; i++ {
			addEdge(Node(i-1), Node(i))
		}
		for t := 0; t < (hi-lo)*2; t++ {
			u, v := lo+rng.Intn(hi-lo), lo+rng.Intn(hi-lo)
			if u != v {
				addEdge(Node(u), Node(v))
			}
		}
	}
	return b.Build()
}

func TestSubCSRMatchesInducedSubgraph(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(42))
		g := subTestGraph(rng, 90, weighted)
		c := NewCSR(g)
		comp, _ := c.Component(0)
		if len(comp) >= c.NumNodes() {
			t.Fatal("fixture should have several components")
		}
		sub := NewSubCSR(c, comp)

		if sub.NumNodes() != len(comp) {
			t.Fatalf("NumNodes = %d, want %d", sub.NumNodes(), len(comp))
		}
		if sub.TotalWeight() != c.TotalWeight() {
			t.Errorf("TotalWeight = %v, want parent %v", sub.TotalWeight(), c.TotalWeight())
		}
		if sub.Weighted() != c.Weighted() {
			t.Errorf("Weighted = %v, want %v", sub.Weighted(), c.Weighted())
		}
		for li, gu := range comp {
			u := Node(li)
			if sub.GlobalOf(u) != gu {
				t.Fatalf("GlobalOf(%d) = %d, want %d", li, sub.GlobalOf(u), gu)
			}
			if got, ok := sub.LocalOf(gu); !ok || got != u {
				t.Fatalf("LocalOf(%d) = %d,%v, want %d", gu, got, ok, li)
			}
			if sub.WeightedDegree(u) != c.WeightedDegree(gu) {
				t.Errorf("wdeg mismatch at local %d", li)
			}
			adj := sub.Neighbors(u)
			gadj := c.Neighbors(gu)
			if len(adj) != len(gadj) {
				t.Fatalf("degree mismatch at local %d: %d vs %d", li, len(adj), len(gadj))
			}
			for j, lw := range adj {
				if sub.GlobalOf(lw) != gadj[j] {
					t.Fatalf("neighbor order mismatch at local %d", li)
				}
				if j > 0 && adj[j-1] >= lw {
					t.Fatalf("local adjacency of %d not sorted", li)
				}
			}
			if weighted {
				ws, gws := sub.NeighborWeights(u), c.NeighborWeights(gu)
				for j := range ws {
					if ws[j] != gws[j] {
						t.Fatalf("weight mismatch at local %d", li)
					}
				}
			}
		}
		// The canonical aggregates must be bit-identical to what a view
		// over the parent computes for the same member set.
		pv := NewCSRViewOf(c, comp)
		if sub.InternalWeight() != pv.InternalWeight() {
			t.Errorf("InternalWeight = %v, want %v", sub.InternalWeight(), pv.InternalWeight())
		}
		if sub.MemberWeightSum() != pv.NodeWeightSum() {
			t.Errorf("MemberWeightSum = %v, want %v", sub.MemberWeightSum(), pv.NodeWeightSum())
		}
		// A non-member node id must not resolve.
		for _, gu := range []Node{comp[len(comp)-1] + 1, Node(c.NumNodes() - 1)} {
			if _, ok := sub.LocalOf(gu); ok {
				t.Errorf("LocalOf(%d) resolved for a non-member", gu)
			}
		}
	}
}

func TestWrapCSRIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := subTestGraph(rng, 60, true)
	c := NewCSR(g)
	sub := WrapCSR(c)
	v := NewCSRView(c)
	if sub.InternalWeight() != v.InternalWeight() {
		t.Errorf("InternalWeight = %v, want %v", sub.InternalWeight(), v.InternalWeight())
	}
	if sub.MemberWeightSum() != v.NodeWeightSum() {
		t.Errorf("MemberWeightSum = %v, want %v", sub.MemberWeightSum(), v.NodeWeightSum())
	}
	if sub.GlobalOf(5) != 5 {
		t.Error("identity GlobalOf broken")
	}
	if l, ok := sub.LocalOf(7); !ok || l != 7 {
		t.Error("identity LocalOf broken")
	}
	if _, ok := sub.LocalOf(Node(c.NumNodes())); ok {
		t.Error("identity LocalOf resolved out-of-range id")
	}
}

// TestArenaExtractMatchesFresh drives one arena through many extractions
// (interleaved with poisoning) and checks each against the allocating
// constructor — proving reuse cannot leak state between queries.
func TestArenaExtractMatchesFresh(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(3))
		g := subTestGraph(rng, 120, weighted)
		c := NewCSR(g)
		a := NewArena()
		roots := []Node{0, 50, 100, 0, 119, 40}
		for trial, root := range roots {
			if trial%2 == 1 {
				a.Poison()
			}
			comp, _ := c.Component(root)
			sub := a.ExtractSub(trial%2, c, comp)
			want := NewSubCSR(c, comp)
			if sub.NumNodes() != want.NumNodes() ||
				sub.InternalWeight() != want.InternalWeight() ||
				sub.MemberWeightSum() != want.MemberWeightSum() ||
				sub.TotalWeight() != want.TotalWeight() {
				t.Fatalf("trial %d: aggregates differ from fresh extraction", trial)
			}
			for u := 0; u < sub.NumNodes(); u++ {
				if sub.GlobalOf(Node(u)) != want.GlobalOf(Node(u)) {
					t.Fatalf("trial %d: global map differs at %d", trial, u)
				}
				adj, wadj := sub.Neighbors(Node(u)), want.Neighbors(Node(u))
				if len(adj) != len(wadj) {
					t.Fatalf("trial %d: degree differs at %d", trial, u)
				}
				for j := range adj {
					if adj[j] != wadj[j] {
						t.Fatalf("trial %d: adjacency differs at %d", trial, u)
					}
				}
			}
		}
	}
}

// TestArenaViewMatchesFresh checks the arena-backed view constructors
// against NewCSRView/NewCSRViewOf on extracted subs.
func TestArenaViewMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := subTestGraph(rng, 90, true)
	c := NewCSR(g)
	a := NewArena()
	comp, _ := c.Component(0)
	sub := a.ExtractSub(0, c, comp)

	av := a.ViewAll(0, sub)
	fresh := NewCSRViewOf(&sub.CSR, allNodes(sub.NumNodes()))
	compareViews(t, "ViewAll", av, fresh)

	// a strict subset (every third member)
	var set []Node
	for i := 0; i < sub.NumNodes(); i += 3 {
		set = append(set, Node(i))
	}
	a.Poison()
	sub = a.ExtractSub(0, c, comp)
	sv := a.ViewOf(1, sub, set)
	freshSub := NewCSRViewOf(&sub.CSR, set)
	compareViews(t, "ViewOf", sv, freshSub)
}

func allNodes(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node(i)
	}
	return out
}

func compareViews(t *testing.T, name string, got, want *CSRView) {
	t.Helper()
	if got.NumAlive() != want.NumAlive() || got.NumAliveEdges() != want.NumAliveEdges() {
		t.Fatalf("%s: alive counts differ", name)
	}
	if got.InternalWeight() != want.InternalWeight() {
		t.Fatalf("%s: InternalWeight %v != %v", name, got.InternalWeight(), want.InternalWeight())
	}
	if got.NodeWeightSum() != want.NodeWeightSum() {
		t.Fatalf("%s: NodeWeightSum %v != %v", name, got.NodeWeightSum(), want.NodeWeightSum())
	}
	for u := 0; u < got.CSR().NumNodes(); u++ {
		if got.Alive(Node(u)) != want.Alive(Node(u)) || got.DegreeIn(Node(u)) != want.DegreeIn(Node(u)) {
			t.Fatalf("%s: per-node state differs at %d", name, u)
		}
	}
}

// TestArticulationPointsIntoMatches runs the scratch-backed DFS against
// the allocating one across removals, reusing one scratch.
func TestArticulationPointsIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := subTestGraph(rng, 80, false)
	c := NewCSR(g)
	v := NewCSRView(c)
	var scratch ArtScratch
	for round := 0; round < 20; round++ {
		want := v.ArticulationPoints()
		got := v.ArticulationPointsInto(&scratch)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("round %d: mask differs at %d", round, u)
			}
		}
		// remove a random alive non-articulation node to vary the graph
		for tries := 0; tries < 50; tries++ {
			u := Node(rng.Intn(c.NumNodes()))
			if v.Alive(u) && !want[u] {
				v.Remove(u)
				break
			}
		}
	}
}

func TestMultiSourceBFSIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := subTestGraph(rng, 80, false)
	c := NewCSR(g)
	n := c.NumNodes()
	dist := make([]int32, n)
	queue := make([]Node, 0, n)
	for _, srcs := range [][]Node{{0}, {0, 30}, {79}, {10, 11, 12}} {
		want := c.MultiSourceBFS(srcs)
		got := c.MultiSourceBFSInto(srcs, dist, queue)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("sources %v: dist differs at %d", srcs, u)
			}
		}
		v := NewCSRView(c)
		v.Remove(Node(1))
		wantV := v.MultiSourceBFS(srcs)
		gotV := v.MultiSourceBFSInto(srcs, dist, queue)
		for u := range wantV {
			if gotV[u] != wantV[u] {
				t.Fatalf("view sources %v: dist differs at %d", srcs, u)
			}
		}
	}
}
