package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzParseEdgeList feeds arbitrary text through the edge-list parser and
// checks the structural invariants every accepted graph must satisfy,
// plus a write/re-parse round trip. The parser must never panic; inputs
// it rejects are fine.
func FuzzParseEdgeList(f *testing.F) {
	f.Add([]byte("a b\nb c\nc a\n"))
	f.Add([]byte("# comment\n1 2 0.5\n2 3\n% also comment\n"))
	f.Add([]byte("x y 2.5\ny x 3\nx y\n")) // repeats: last line wins
	f.Add([]byte("u u\nv v\n"))            // self-loops intern but drop
	f.Add([]byte("a b not-a-number\n"))    // rejected weight
	f.Add([]byte("lonely\n"))              // rejected field count
	f.Add([]byte("a b 1e308\nb c -0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // keep individual executions fast
		}
		g, err := ParseEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}

		// Structural invariants of the packed form: adjacency strictly
		// ascending (sorted, deduplicated, self-loop-free) and degree sum
		// equal to twice the edge count.
		c := NewCSR(g)
		degSum := 0
		for u := 0; u < c.NumNodes(); u++ {
			nbrs := c.Neighbors(Node(u))
			degSum += len(nbrs)
			for i, w := range nbrs {
				if w == Node(u) {
					t.Fatalf("node %d: self-loop survived the parse", u)
				}
				if i > 0 && nbrs[i-1] >= w {
					t.Fatalf("node %d: adjacency not strictly ascending: %v", u, nbrs)
				}
			}
		}
		if degSum != 2*c.NumEdges() {
			t.Fatalf("degree sum %d != 2 * %d edges", degSum, c.NumEdges())
		}

		// Round trip. Isolated nodes (tokens seen only in self-loop lines)
		// have no edge to be written, so only the non-isolated count
		// survives; everything else must.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		g2, err := ParseEdgeList(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-parsing written graph: %v\ninput:\n%s", err, buf.String())
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
		// Weightedness rides on the edge lines, so a graph whose only
		// weighted lines were dropped self-loops can't round-trip the flag.
		if g.NumEdges() > 0 && g2.Weighted() != g.Weighted() {
			t.Fatalf("round trip changed weightedness: %v -> %v", g.Weighted(), g2.Weighted())
		}
		nonIsolated := 0
		for u := 0; u < c.NumNodes(); u++ {
			if c.Degree(Node(u)) > 0 {
				nonIsolated++
			}
		}
		if g2.NumNodes() != nonIsolated {
			t.Fatalf("round trip has %d nodes, want %d non-isolated", g2.NumNodes(), nonIsolated)
		}
		// Node ids may be permuted by re-interning, so compare the total
		// weight (order-tolerant) rather than packed arrays. %g printing
		// round-trips float64 exactly; only the summation order differs.
		w1, w2 := c.TotalWeight(), NewCSR(g2).TotalWeight()
		if math.IsInf(w1, 0) || math.IsNaN(w1) {
			return // degenerate weights forfeit the aggregate comparison
		}
		if diff := math.Abs(w1 - w2); diff > 1e-9*math.Max(1, math.Abs(w1)) {
			t.Fatalf("round trip changed total weight: %v -> %v", w1, w2)
		}
	})
}

// FuzzMergeCSR decodes the fuzz input into delta batches, applies them to
// a small base snapshot through MergeCSR, and cross-checks every round
// against the map-backed reference model (packed arrays must match bit
// for bit), the MergeInfo residue, and the incrementally maintained
// component partition.
func FuzzMergeCSR(f *testing.F) {
	f.Add([]byte{0, 1, 2, 8, 1, 1, 2, 0, 2, 3, 4, 16})
	f.Add([]byte{3, 9, 0, 0, 0, 9, 9, 4, 1, 9, 1, 0})
	f.Add([]byte{2, 0, 1, 0, 2, 0, 1, 12, 0, 0, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		b := NewBuilder(5)
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		b.AddEdge(3, 4)
		if len(data) > 0 && data[0]%2 == 1 {
			b.SetWeight(0, 2, 2.5)
		}
		base := b.Build()
		cur := NewCSR(base)
		ref := newRefModel(base)
		compID, comps := floodComponents(cur)

		// buildRef packs the reference model with an explicit weighted
		// flag: MergeCSR's weightedness is sticky (a weighted snapshot
		// never reverts even if every weight drifts back to 1), which
		// refModel.build's all-ones inference cannot express.
		buildRef := func(weighted bool) *CSR {
			rb := NewBuilder(ref.n)
			for e, w := range ref.edges {
				if weighted {
					rb.SetWeight(e[0], e[1], w)
				} else {
					rb.AddEdge(e[0], e[1])
				}
			}
			return NewCSR(rb.Build())
		}

		const opBytes, batchOps = 4, 6
		var ops []Delta
		flush := func() {
			if len(ops) == 0 {
				return
			}
			prevWeighted := cur.Weighted()
			next, info := MergeCSR(cur, ops)
			ref.apply(ops)
			wantWeighted := prevWeighted
			if !wantWeighted {
				// An unweighted snapshot's edges all weigh 1, so any
				// non-unit weight in the model must come from this batch.
				for _, w := range ref.edges {
					if w != 1 {
						wantWeighted = true
						break
					}
				}
			}
			if next.Weighted() != wantWeighted {
				t.Fatalf("merged snapshot weighted=%v, want %v", next.Weighted(), wantWeighted)
			}
			csrEqual(t, next, buildRef(wantWeighted))

			// The residue lists exactly the connectivity changes.
			for _, e := range info.Inserted {
				if cur.HasEdge(e[0], e[1]) || !next.HasEdge(e[0], e[1]) {
					t.Fatalf("Inserted %v is not a fresh edge", e)
				}
			}
			for _, e := range info.Removed {
				if !cur.HasEdge(e[0], e[1]) || next.HasEdge(e[0], e[1]) {
					t.Fatalf("Removed %v was not actually removed", e)
				}
			}

			oldComps := comps
			var carried []int32
			compID, comps, carried, _ = UpdateComponents(next, compID, len(comps), info)
			checkCarried(t, cur, next, oldComps, comps, carried, info)
			wantID, wantComps := floodComponents(next)
			if len(comps) != len(wantComps) {
				t.Fatalf("incremental partition has %d components, re-flood has %d", len(comps), len(wantComps))
			}
			// Component ids are history-dependent; membership must agree.
			for u := range wantID {
				for v := range wantID {
					if (compID[u] == compID[v]) != (wantID[u] == wantID[v]) {
						t.Fatalf("nodes %d,%d: incremental and re-flooded partitions disagree", u, v)
					}
				}
			}
			cur, ops = next, ops[:0]
		}

		for i := 0; i+opBytes <= len(data); i += opBytes {
			d := Delta{
				U: Node(data[i+1] % 14),
				V: Node(data[i+2] % 14),
				W: float64(data[i+3]) / 4,
			}
			switch data[i] % 4 {
			case 0:
				d.Op = DeltaAddEdge
			case 1:
				d.Op = DeltaRemoveEdge
			case 2:
				d.Op = DeltaSetWeight
			case 3:
				d.Op = DeltaAddNode
			}
			ops = append(ops, d)
			if len(ops) == batchOps {
				flush()
			}
		}
		flush()
	})
}
