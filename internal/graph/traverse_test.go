package graph

import (
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := path(5)
	dist := BFS(g, 0)
	for i := 0; i < 5; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("dist[%d]=%d want %d", i, dist[i], i)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromEdges(4, [][2]Node{{0, 1}, {2, 3}})
	dist := BFS(g, 0)
	if dist[2] != INF || dist[3] != INF {
		t.Fatalf("disconnected nodes should be INF: %v", dist)
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := path(7)
	dist := MultiSourceBFS(g, []Node{0, 6})
	want := []int32{0, 1, 2, 3, 2, 1, 0}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist=%v want %v", dist, want)
		}
	}
}

func TestMultiSourceBFSView(t *testing.T) {
	g := cycle(6)
	v := NewView(g)
	v.Remove(3)
	dist := MultiSourceBFSView(v, []Node{0})
	if dist[3] != INF {
		t.Fatal("dead node must be INF")
	}
	// With node 3 removed, node 4 is reached the long way: 0-5-4.
	if dist[4] != 2 {
		t.Fatalf("dist[4]=%d want 2", dist[4])
	}
	if dist[2] != 2 {
		t.Fatalf("dist[2]=%d want 2", dist[2])
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(6, [][2]Node{{0, 1}, {1, 2}, {3, 4}})
	comp, k := ConnectedComponents(g)
	if k != 3 {
		t.Fatalf("k=%d want 3 (two edges comps + isolated 5)", k)
	}
	if comp[0] != comp[2] || comp[0] == comp[3] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatalf("comp=%v", comp)
	}
}

func TestComponentOfView(t *testing.T) {
	g := cycle(6)
	v := NewView(g)
	v.Remove(1)
	v.Remove(4)
	comp := ComponentOf(v, 0)
	// Removing 1 and 4 from the 6-cycle leaves 0-5 and 2-3.
	if len(comp) != 2 {
		t.Fatalf("component=%v", comp)
	}
	if ComponentOf(v, 1) != nil {
		t.Fatal("component of dead node should be nil")
	}
}

func TestConnectedWithin(t *testing.T) {
	g := cycle(6)
	v := NewView(g)
	if !ConnectedWithin(v) {
		t.Fatal("cycle should be connected")
	}
	v.Remove(0)
	if !ConnectedWithin(v) {
		t.Fatal("cycle minus one node is a path, still connected")
	}
	v.Remove(3)
	if ConnectedWithin(v) {
		t.Fatal("cycle minus two opposite nodes disconnects")
	}
}

func TestSameComponent(t *testing.T) {
	g := FromEdges(5, [][2]Node{{0, 1}, {1, 2}, {3, 4}})
	if !SameComponent(g, []Node{0, 2}) {
		t.Fatal("0 and 2 are connected")
	}
	if SameComponent(g, []Node{0, 3}) {
		t.Fatal("0 and 3 are not connected")
	}
	if !SameComponent(g, []Node{2}) {
		t.Fatal("singleton is trivially same-component")
	}
}

func TestDijkstraMatchesBFSOnUnweighted(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(25, 0.15, seed)
		bfs := BFS(g, 0)
		dj := Dijkstra(g, []Node{0})
		for i := range bfs {
			if bfs[i] == INF {
				if dj[i] >= 0 {
					return false
				}
				continue
			}
			if dj[i] != float64(bfs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraWeighted(t *testing.T) {
	b := NewBuilder(3)
	b.SetWeight(0, 1, 5)
	b.SetWeight(1, 2, 5)
	b.SetWeight(0, 2, 20)
	g := b.Build()
	d := Dijkstra(g, []Node{0})
	if d[2] != 10 {
		t.Fatalf("dist[2]=%g want 10 (via node 1)", d[2])
	}
}

func TestDiameter(t *testing.T) {
	if d := Diameter(path(5)); d != 4 {
		t.Fatalf("path diameter=%d want 4", d)
	}
	if d := Diameter(cycle(6)); d != 3 {
		t.Fatalf("cycle diameter=%d want 3", d)
	}
	if d := Diameter(complete(7)); d != 1 {
		t.Fatalf("K7 diameter=%d want 1", d)
	}
}

func TestApproxDiameterLowerBoundsExact(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(30, 0.12, seed)
		// restrict to a connected component for a meaningful comparison
		comp, _ := ConnectedComponents(g)
		var keep []Node
		for u, c := range comp {
			if c == comp[0] {
				keep = append(keep, Node(u))
			}
		}
		sub, _ := g.InducedSubgraph(keep)
		if sub.NumNodes() < 2 {
			return true
		}
		return ApproxDiameter(sub, 0) <= Diameter(sub)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestArticulationPointsPath(t *testing.T) {
	g := path(5)
	v := NewView(g)
	art := ArticulationPoints(v)
	want := []bool{false, true, true, true, false}
	for i := range want {
		if art[i] != want[i] {
			t.Fatalf("art=%v want %v", art, want)
		}
	}
}

func TestArticulationPointsCycleHasNone(t *testing.T) {
	g := cycle(8)
	art := ArticulationPoints(NewView(g))
	for u, a := range art {
		if a {
			t.Fatalf("cycle has no articulation points, got node %d", u)
		}
	}
}

func TestArticulationPointsBridge(t *testing.T) {
	// Two triangles joined by a bridge 2-3: nodes 2 and 3 are articulation.
	g := FromEdges(6, [][2]Node{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
	art := ArticulationPoints(NewView(g))
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if art[i] != want[i] {
			t.Fatalf("art=%v want %v", art, want)
		}
	}
}

func TestArticulationPointsRespectsView(t *testing.T) {
	// Path 0-1-2-3 plus chord 0-2: with all alive, only 2 is articulation
	// (1 is on a cycle). After removing 3, nothing is articulation.
	g := FromEdges(4, [][2]Node{{0, 1}, {1, 2}, {2, 3}, {0, 2}})
	v := NewView(g)
	art := ArticulationPoints(v)
	if !art[2] || art[1] || art[0] {
		t.Fatalf("art=%v", art)
	}
	v.Remove(3)
	art = ArticulationPoints(v)
	for u := 0; u < 3; u++ {
		if art[u] {
			t.Fatalf("triangle has no articulation nodes: %v", art)
		}
	}
}

// Property: brute-force check of articulation points on random graphs — a
// node is articulation iff removing it increases the number of connected
// components among the remaining alive nodes.
func TestArticulationPointsMatchBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(18, 0.15, seed)
		v := NewView(g)
		art := ArticulationPoints(v)
		// count components of alive subgraph
		countComps := func(v *View) int {
			seen := make(map[Node]bool)
			comps := 0
			for u := 0; u < g.NumNodes(); u++ {
				if v.Alive(Node(u)) && !seen[Node(u)] {
					comps++
					for _, x := range ComponentOf(v, Node(u)) {
						seen[x] = true
					}
				}
			}
			return comps
		}
		base := countComps(v)
		for u := 0; u < g.NumNodes(); u++ {
			if g.Degree(Node(u)) == 0 {
				continue // isolated nodes are never articulation
			}
			v.Remove(Node(u))
			after := countComps(v)
			v.Restore(Node(u))
			isArt := after > base
			if isArt != art[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNonArticulationNodes(t *testing.T) {
	g := path(4)
	nodes := NonArticulationNodes(NewView(g))
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 3 {
		t.Fatalf("non-articulation=%v want [0 3]", nodes)
	}
}
