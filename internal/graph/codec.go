package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary codecs for the two durable forms of the graph: a Delta batch
// (the write-ahead log's record body) and a packed CSR (the checkpoint's
// graph image). Both encodings are deliberately bit-faithful rather than
// merely value-faithful — weights, weighted degrees, and the total-weight
// aggregate round-trip as their exact float64 bit patterns, because the
// recovery contract is "the recovered snapshot bit-matches a serial
// reference" and float addition order already makes those aggregates
// sensitive to provenance.
//
// Compatibility rule (see CONTRIBUTING.md): decoders reject what they do
// not understand instead of guessing. New Delta op kinds or CSR layouts
// get a new code point / version byte; existing ones are frozen.

// ErrCodec is wrapped by every decode failure in this file, so callers
// (the WAL's recovery scan, the fuzzers) can classify "corrupt bytes"
// without matching message strings.
var ErrCodec = errors.New("graph: malformed encoding")

// csrCodecVersion is the CSR encoding's version byte. Bump when the
// layout changes; DecodeCSR refuses versions it does not know.
const csrCodecVersion = 1

// maxCodecElems caps slice lengths read from untrusted bytes before any
// allocation, so a corrupt length prefix cannot OOM the decoder.
const maxCodecElems = 1 << 31

// AppendDeltas appends a compact binary encoding of ops to dst and
// returns the extended slice. Node ids are zigzag-varint (Delta fields
// are not validated here, and a staged batch may legally carry negative
// ids that MergeCSR will reject later — the log must round-trip them
// verbatim); weights are full float64 bit patterns. Layout per op: one
// op byte, then the operands that op actually has (AddEdge/SetWeight:
// u, v, w; RemoveEdge: u, v; AddNode: u).
//
//dmcs:hotpath
func AppendDeltas(dst []byte, ops []Delta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		dst = append(dst, byte(op.Op))
		dst = binary.AppendVarint(dst, int64(op.U))
		switch op.Op {
		case DeltaAddEdge, DeltaSetWeight:
			dst = binary.AppendVarint(dst, int64(op.V))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(op.W))
		case DeltaRemoveEdge:
			dst = binary.AppendVarint(dst, int64(op.V))
		case DeltaAddNode:
			// u only.
		}
	}
	return dst
}

// DecodeDeltas decodes an AppendDeltas encoding from the front of b,
// appending the ops to dst. It returns the extended slice and the number
// of bytes consumed. Unknown op bytes and truncated operands fail with
// an ErrCodec-wrapped error; trailing bytes after the declared op count
// are left for the caller.
func DecodeDeltas(b []byte, dst []Delta) ([]Delta, int, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return dst, 0, fmt.Errorf("%w: delta count", ErrCodec)
	}
	if n > maxCodecElems {
		return dst, 0, fmt.Errorf("%w: absurd delta count %d", ErrCodec, n)
	}
	for i := uint64(0); i < n; i++ {
		if off >= len(b) {
			return dst, 0, fmt.Errorf("%w: truncated delta %d/%d", ErrCodec, i, n)
		}
		op := DeltaOp(b[off])
		off++
		u, k := binary.Varint(b[off:])
		if k <= 0 {
			return dst, 0, fmt.Errorf("%w: delta %d operand u", ErrCodec, i)
		}
		off += k
		d := Delta{Op: op, U: Node(u)}
		switch op {
		case DeltaAddEdge, DeltaSetWeight:
			v, k := binary.Varint(b[off:])
			if k <= 0 {
				return dst, 0, fmt.Errorf("%w: delta %d operand v", ErrCodec, i)
			}
			off += k
			if off+8 > len(b) {
				return dst, 0, fmt.Errorf("%w: delta %d weight", ErrCodec, i)
			}
			d.V = Node(v)
			d.W = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		case DeltaRemoveEdge:
			v, k := binary.Varint(b[off:])
			if k <= 0 {
				return dst, 0, fmt.Errorf("%w: delta %d operand v", ErrCodec, i)
			}
			off += k
			d.V = Node(v)
		case DeltaAddNode:
			// u only.
		default:
			return dst, 0, fmt.Errorf("%w: unknown delta op %d", ErrCodec, op)
		}
		dst = append(dst, d)
	}
	return dst, off, nil
}

// AppendCSR appends the binary image of c to dst and returns the
// extended slice. All float64 payloads (weights, weighted degrees, the
// total-weight aggregate) are stored as raw bit patterns so DecodeCSR
// reproduces the snapshot bit-for-bit — including the cached aggregates,
// which are NOT recomputed on load precisely because their float addition
// order would have to be re-derived to match.
func AppendCSR(dst []byte, c *CSR) []byte {
	n := c.NumNodes()
	dst = append(dst, csrCodecVersion)
	if c.weights != nil {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(len(c.targets)))
	for _, o := range c.offsets {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(o))
	}
	for _, t := range c.targets {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(t))
	}
	for _, w := range c.weights {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w))
	}
	for _, w := range c.wdeg {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w))
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.totalW))
	return dst
}

// DecodeCSR decodes an AppendCSR image from the front of b, returning
// the snapshot and the number of bytes consumed. The structural
// invariants every consumer of a CSR assumes are re-validated —
// monotonic offsets bracketing the target array, in-range neighbor ids,
// per-node strictly sorted adjacency with no self-loops — so a corrupt
// checkpoint that survived its CRC by construction (or a fuzzer's
// synthetic one) is rejected here instead of crashing a traversal later.
func DecodeCSR(b []byte) (*CSR, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("%w: csr header", ErrCodec)
	}
	if b[0] != csrCodecVersion {
		return nil, 0, fmt.Errorf("%w: csr version %d (want %d)", ErrCodec, b[0], csrCodecVersion)
	}
	weighted := b[1] == 1
	if !weighted && b[1] != 0 {
		return nil, 0, fmt.Errorf("%w: csr weighted flag %d", ErrCodec, b[1])
	}
	off := 2
	n64, k := binary.Uvarint(b[off:])
	if k <= 0 || n64 > maxCodecElems {
		return nil, 0, fmt.Errorf("%w: csr node count", ErrCodec)
	}
	off += k
	m64, k := binary.Uvarint(b[off:])
	if k <= 0 || m64 > maxCodecElems || m64%2 != 0 {
		return nil, 0, fmt.Errorf("%w: csr target count", ErrCodec)
	}
	off += k
	n, m := int(n64), int(m64)

	need := 4*(n+1) + 4*m + 8*n + 8
	if weighted {
		need += 8 * m
	}
	if len(b)-off < need {
		return nil, 0, fmt.Errorf("%w: csr truncated (%d bytes, need %d)", ErrCodec, len(b)-off, need)
	}

	c := &CSR{
		offsets: make([]int32, n+1),
		targets: make([]Node, m),
		wdeg:    make([]float64, n),
	}
	for i := range c.offsets {
		c.offsets[i] = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	for i := range c.targets {
		c.targets[i] = Node(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	if weighted {
		c.weights = make([]float64, m)
		for i := range c.weights {
			c.weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	for i := range c.wdeg {
		c.wdeg[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	c.totalW = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
	off += 8

	if c.offsets[0] != 0 || c.offsets[n] != int32(m) {
		return nil, 0, fmt.Errorf("%w: csr offsets do not bracket targets", ErrCodec)
	}
	for u := 0; u < n; u++ {
		if c.offsets[u] > c.offsets[u+1] {
			return nil, 0, fmt.Errorf("%w: csr offsets not monotonic at node %d", ErrCodec, u)
		}
		prev := Node(-1)
		for _, v := range c.targets[c.offsets[u]:c.offsets[u+1]] {
			if v < 0 || int(v) >= n {
				return nil, 0, fmt.Errorf("%w: csr neighbor %d of node %d out of range", ErrCodec, v, u)
			}
			if int(v) == u {
				return nil, 0, fmt.Errorf("%w: csr self-loop at node %d", ErrCodec, u)
			}
			if v <= prev {
				return nil, 0, fmt.Errorf("%w: csr adjacency of node %d not strictly sorted", ErrCodec, u)
			}
			prev = v
		}
	}
	return c, off, nil
}
