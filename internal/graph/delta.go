package graph

import "slices"

// This file is the dynamic-graph substrate: applying a batch of edge/node
// mutations to a packed CSR snapshot produces the next snapshot by a
// single merge sweep over the packed arrays — the same relabelling-free,
// order-preserving style as SubCSR extraction — instead of round-tripping
// through the map-backed Graph. The component partition is maintained
// incrementally on top: insertions union existing components, and only
// components that actually lost an edge are re-flooded.

// DeltaOp enumerates the mutation kinds a Delta can carry.
type DeltaOp uint8

const (
	// DeltaAddEdge inserts the undirected edge (U,V) with weight W (0 means
	// the default weight 1). If the edge already exists its weight is
	// overwritten — within a batch, as in the Builder, the last record of
	// an edge wins.
	DeltaAddEdge DeltaOp = iota
	// DeltaRemoveEdge deletes the undirected edge (U,V). Removing an absent
	// edge is a no-op.
	DeltaRemoveEdge
	// DeltaSetWeight sets the weight of edge (U,V) to W, inserting the edge
	// if absent.
	DeltaSetWeight
	// DeltaAddNode ensures node U exists, growing the node count to U+1.
	// Edge deltas grow the node count implicitly the same way; an explicit
	// DeltaAddNode adds an isolated node.
	DeltaAddNode
)

// Delta is one graph mutation. Batches of deltas are applied atomically by
// MergeCSR; op order within a batch only matters for repeats of the same
// edge (last wins).
type Delta struct {
	Op   DeltaOp
	U, V Node
	W    float64
}

// MergeInfo is the connectivity-relevant residue of a batch after
// normalizing it against the snapshot it was applied to: which edges were
// actually inserted (absent before, present after) and actually removed
// (present before, absent after), plus bookkeeping counts. Ops that
// cancel out within the batch, re-adds of existing edges, and removals of
// absent edges leave no trace here. UpdateComponents consumes it to
// maintain the component partition incrementally.
type MergeInfo struct {
	Inserted       [][2]Node // now present, previously absent; u < v, sorted
	Removed        [][2]Node // now absent, previously present; u < v, sorted
	WeightEdges    [][2]Node // present before and after with a changed weight; u < v, sorted
	WeightsChanged int       // existing edges whose weight changed (== len(WeightEdges))
	NodesAdded     int       // node-count growth (explicit and implicit)
}

// edgeState tracks one touched edge through batch normalization: its
// state in the source snapshot and its final state after the last op.
type edgeState struct {
	existed bool
	oldW    float64
	present bool
	w       float64
}

// edgeWeightOf returns the weight of edge (u,v) in the snapshot and
// whether the edge exists (binary search over the sorted packed adjacency).
func (c *CSR) edgeWeightOf(u, v Node) (float64, bool) {
	if int(u) >= c.NumNodes() || int(v) >= c.NumNodes() || u < 0 || v < 0 {
		return 0, false
	}
	adj := c.Neighbors(u)
	if d := c.Neighbors(v); len(d) < len(adj) {
		adj, u, v = d, v, u
	}
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(adj) || adj[lo] != v {
		return 0, false
	}
	if c.weights == nil {
		return 1, true
	}
	return c.weights[int(c.offsets[u])+lo], true
}

// HasEdge reports whether the undirected edge (u,v) is present in the
// snapshot.
func (c *CSR) HasEdge(u, v Node) bool {
	_, ok := c.edgeWeightOf(u, v)
	return ok
}

// MergeCSR applies a batch of deltas to c and returns the merged snapshot
// plus the normalized residue of the batch. c itself is never modified —
// readers holding it keep a consistent view — and the merge runs entirely
// on the packed arrays: one sweep interleaves each node's old adjacency
// with its sorted per-node ops, recomputing the weighted-degree and
// total-weight aggregates in the same ascending-node, ascending-neighbor
// order as NewCSR, so scores computed on the merged snapshot are
// bit-identical to a from-scratch pack of the same graph.
//
// Semantics per edge (u ≠ v; self-loops are ignored like Builder.AddEdge):
// the batch is normalized last-wins, then inserts add the edge with the
// given weight (DeltaAddEdge with W=0 means 1), removes drop it, and
// weight updates rewrite the packed weight in place. A previously
// unweighted snapshot becomes weighted the first time any edge ends up
// with a non-unit weight. Endpoints beyond the current node count grow
// the graph (DeltaRemoveEdge never grows it).
func MergeCSR(c *CSR, ops []Delta) (*CSR, *MergeInfo) {
	oldN := c.NumNodes()
	newN := oldN
	touched := make(map[[2]Node]*edgeState, len(ops))
	for _, d := range ops {
		if d.Op == DeltaAddNode {
			if int(d.U)+1 > newN && d.U >= 0 {
				newN = int(d.U) + 1
			}
			continue
		}
		u, v := d.U, d.V
		if u == v || u < 0 || v < 0 {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if d.Op != DeltaRemoveEdge && int(v)+1 > newN {
			newN = int(v) + 1
		}
		key := [2]Node{u, v}
		s := touched[key]
		if s == nil {
			s = &edgeState{}
			if w, ok := c.edgeWeightOf(u, v); ok {
				s.existed, s.oldW, s.present, s.w = true, w, true, w
			}
			touched[key] = s
		}
		switch d.Op {
		case DeltaAddEdge:
			w := d.W
			if w == 0 {
				w = 1
			}
			s.present, s.w = true, w
		case DeltaSetWeight:
			s.present, s.w = true, d.W
		case DeltaRemoveEdge:
			s.present = false
		}
	}

	info := &MergeInfo{NodesAdded: newN - oldN}
	// Directed op entries drive the per-node merge; only edges whose final
	// state differs from the snapshot produce any.
	type dirOp struct {
		src, dst Node
		w        float64
		del      bool // final state absent (only for previously-present edges)
		ins      bool // final state present, previously absent
	}
	var dir []dirOp
	for key, s := range touched {
		u, v := key[0], key[1]
		switch {
		case s.present && !s.existed:
			info.Inserted = append(info.Inserted, key)
			dir = append(dir, dirOp{u, v, s.w, false, true}, dirOp{v, u, s.w, false, true})
		case !s.present && s.existed:
			info.Removed = append(info.Removed, key)
			dir = append(dir, dirOp{src: u, dst: v, del: true}, dirOp{src: v, dst: u, del: true})
		case s.present && s.existed && s.w != s.oldW:
			info.WeightEdges = append(info.WeightEdges, key)
			info.WeightsChanged++
			dir = append(dir, dirOp{src: u, dst: v, w: s.w}, dirOp{src: v, dst: u, w: s.w})
		}
	}
	slices.SortFunc(dir, func(a, b dirOp) int {
		if a.src != b.src {
			return int(a.src - b.src)
		}
		return int(a.dst - b.dst)
	})
	slices.SortFunc(info.Inserted, cmpEdge)
	slices.SortFunc(info.Removed, cmpEdge)
	slices.SortFunc(info.WeightEdges, cmpEdge)

	weighted := c.weights != nil
	if !weighted {
		for _, s := range touched {
			if s.present && s.w != 1 {
				weighted = true
				break
			}
		}
	}

	m := &CSR{
		offsets: make([]int32, newN+1),
		targets: make([]Node, 0, len(c.targets)+2*(len(info.Inserted)-len(info.Removed))),
		wdeg:    make([]float64, newN),
	}
	if weighted {
		m.weights = make([]float64, 0, cap(m.targets))
	}
	di := 0 // cursor into dir
	for u := 0; u < newN; u++ {
		m.offsets[u] = int32(len(m.targets))
		var adj []Node
		var ws []float64
		if u < oldN {
			adj = c.Neighbors(Node(u))
			ws = c.NeighborWeights(Node(u))
		}
		ai := 0
		emit := func(v Node, w float64) {
			m.targets = append(m.targets, v)
			if weighted {
				m.weights = append(m.weights, w)
			}
			m.wdeg[u] += w
			if Node(u) < v {
				m.totalW += w
			}
		}
		oldWeightAt := func(i int) float64 {
			if ws == nil {
				return 1
			}
			return ws[i]
		}
		for di < len(dir) && dir[di].src == Node(u) {
			op := dir[di]
			for ai < len(adj) && adj[ai] < op.dst {
				emit(adj[ai], oldWeightAt(ai))
				ai++
			}
			switch {
			case op.del:
				// op.dst is present in adj here; skip it.
				ai++
			case op.ins:
				emit(op.dst, op.w)
			default: // weight update in place
				emit(op.dst, op.w)
				ai++
			}
			di++
		}
		for ; ai < len(adj); ai++ {
			emit(adj[ai], oldWeightAt(ai))
		}
	}
	m.offsets[newN] = int32(len(m.targets))
	if !weighted {
		// Unweighted aggregates are exact counts; keep them in the same
		// form NewCSR produces.
		for u := range m.wdeg {
			m.wdeg[u] = float64(m.Degree(Node(u)))
		}
		m.totalW = float64(m.NumEdges())
	}
	return m, info
}

func cmpEdge(a, b [2]Node) int {
	if a[0] != b[0] {
		return int(a[0] - b[0])
	}
	return int(a[1] - b[1])
}

// UpdateComponents maintains the connected-component partition across one
// merge: c is the merged snapshot, oldCompID/numOldComps the partition of
// the pre-merge snapshot, and info the merge residue. Insertions union
// the endpoint components in near-constant time; only components that
// actually lost an edge are re-flooded (a removal may split one into
// many). New nodes start as singletons and join components through their
// inserted edges. refloodedNodes counts exactly the nodes visited by
// re-flooding — an insert-only batch reports 0, and a batch with
// removals reports at most the sizes of the post-union components the
// removals landed in (a removal inside a group the batch also merged
// re-floods the whole merged group).
//
// The returned partition is in canonical form: component ids are assigned
// in first-seen ascending-node order and each member list is sorted, the
// same invariants a from-scratch flood produces.
//
// carried maps each new component id to the old component id it is a
// verbatim continuation of, or -1. carried[id] == r guarantees that new
// component id has exactly the member set, adjacency, and edge weights of
// old component r: no edge incident to the component was inserted,
// removed, or re-weighted by the batch, and no node joined or left it.
// Callers use this to preserve per-component version stamps (and anything
// keyed by them — cached results, sub-CSRs) across a merge.
func UpdateComponents(c *CSR, oldCompID []int32, numOldComps int, info *MergeInfo) (compID []int32, comps [][]Node, carried []int32, refloodedNodes int) {
	n := c.NumNodes()
	oldN := len(oldCompID)
	groups := numOldComps + (n - oldN) // old components + new-node singletons
	parent := make([]int32, groups)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	groupOf := func(u Node) int32 {
		if int(u) < oldN {
			return oldCompID[u]
		}
		return int32(numOldComps + int(u) - oldN)
	}
	for _, e := range info.Inserted {
		ru, rv := find(groupOf(e[0])), find(groupOf(e[1]))
		if ru != rv {
			parent[rv] = ru
		}
	}
	// Mark after all unions so the dirty bit lands on the final root: a
	// removal inside a group that an insertion also merged must dirty the
	// whole merged group. touched marks every root whose component's edge
	// set changed in any way — such groups can never be carried, even when
	// they keep their id and membership (e.g. a weight update or an
	// inserted chord inside one component).
	dirty := make([]bool, groups)
	touched := make([]bool, groups)
	for _, e := range info.Inserted {
		touched[find(groupOf(e[0]))] = true
	}
	for _, e := range info.Removed {
		r := find(groupOf(e[0]))
		dirty[r] = true
		touched[r] = true
	}
	for _, e := range info.WeightEdges {
		touched[find(groupOf(e[0]))] = true
	}

	// Provisional component ids: clean merged groups keep their root id;
	// dirty groups are re-flooded into fresh ids starting at groups. Edges
	// of the merged snapshot never cross group boundaries (kept edges stay
	// within an old component, inserted edges were unioned), so each flood
	// is confined to its dirty group by construction.
	prov := make([]int32, n)
	for i := range prov {
		prov[i] = -1
	}
	next := int32(groups)
	var queue []Node
	for u := 0; u < n; u++ {
		if prov[u] != -1 {
			continue
		}
		r := find(groupOf(Node(u)))
		if !dirty[r] {
			prov[u] = r
			continue
		}
		id := next
		next++
		prov[u] = id
		refloodedNodes++
		queue = append(queue[:0], Node(u))
		for head := 0; head < len(queue); head++ {
			for _, w := range c.Neighbors(queue[head]) {
				if prov[w] == -1 {
					prov[w] = id
					refloodedNodes++
					queue = append(queue, w)
				}
			}
		}
	}

	// Renumber provisional ids into first-seen ascending-node order;
	// member lists come out sorted for free.
	table := make([]int32, next)
	for i := range table {
		table[i] = -1
	}
	compID = make([]int32, n)
	for u := 0; u < n; u++ {
		p := prov[u]
		if table[p] == -1 {
			table[p] = int32(len(comps))
			comps = append(comps, nil)
			// A carried component is a clean untouched old group: its
			// provisional id is still an old root (< numOldComps), nothing
			// was unioned into it (that would have marked it touched), and
			// none of its edges changed.
			if p < int32(numOldComps) && !touched[p] {
				carried = append(carried, p)
			} else {
				carried = append(carried, -1)
			}
		}
		id := table[p]
		compID[u] = id
		comps[id] = append(comps[id], Node(u))
	}
	return compID, comps, carried, refloodedNodes
}
