package graph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// path returns a path graph 0-1-2-...-n-1.
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(Node(i), Node(i+1))
	}
	return b.Build()
}

// cycle returns a cycle graph on n nodes.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(Node(i), Node((i+1)%n))
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(Node(i), Node(j))
		}
	}
	return b.Build()
}

// randomGraph returns an Erdős–Rényi style graph used by property tests.
func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(Node(i), Node(j))
			}
		}
	}
	return b.Build()
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self-loop should have been dropped, deg(2)=%d", g.Degree(2))
	}
}

func TestBuilderGrowsNodeCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestHasEdgeAndNeighborsSorted(t *testing.T) {
	g := FromEdges(5, [][2]Node{{0, 3}, {0, 1}, {0, 4}, {2, 3}})
	if !g.HasEdge(3, 0) || !g.HasEdge(0, 3) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(1, 2) {
		t.Fatal("HasEdge(1,2) should be false")
	}
	if g.HasEdge(-1, 2) || g.HasEdge(0, 99) {
		t.Fatal("out-of-range HasEdge should be false")
	}
	nb := g.Neighbors(0)
	if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
		t.Fatalf("neighbors not sorted: %v", nb)
	}
}

func TestDegreeSumEqualsTwiceEdges(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(40, 0.15, seed)
		sum := 0
		for u := 0; u < g.NumNodes(); u++ {
			sum += g.Degree(Node(u))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesIterationCountsEachOnce(t *testing.T) {
	g := randomGraph(30, 0.2, 7)
	count := 0
	g.Edges(func(u, v Node) bool {
		if u >= v {
			t.Fatalf("Edges yielded u >= v: %d %d", u, v)
		}
		count++
		return true
	})
	if count != g.NumEdges() {
		t.Fatalf("Edges visited %d, want %d", count, g.NumEdges())
	}
	if len(g.EdgeList()) != g.NumEdges() {
		t.Fatalf("EdgeList length mismatch")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := complete(5)
	sub, back := g.InducedSubgraph([]Node{1, 2, 4})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced K3: n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	want := []Node{1, 2, 4}
	for i, u := range back {
		if u != want[i] {
			t.Fatalf("back[%d]=%d want %d", i, u, want[i])
		}
	}
}

func TestInducedSubgraphKeepsWeightsAndLabels(t *testing.T) {
	b := NewBuilder(3)
	b.SetLabels([]string{"a", "b", "c"})
	b.SetWeight(0, 1, 2.5)
	b.AddEdge(1, 2)
	g := b.Build()
	sub, _ := g.InducedSubgraph([]Node{0, 1})
	if sub.NumEdges() != 1 {
		t.Fatalf("want 1 edge, got %d", sub.NumEdges())
	}
	if w := sub.EdgeWeight(0, 1); w != 2.5 {
		t.Fatalf("weight = %g, want 2.5", w)
	}
	if sub.Label(1) != "b" {
		t.Fatalf("label = %q, want b", sub.Label(1))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := complete(4)
	c := g.Clone()
	if c.NumNodes() != 4 || c.NumEdges() != 6 {
		t.Fatal("clone shape mismatch")
	}
	c.adj[0] = nil // mutate the clone's internals
	if g.Degree(0) != 3 {
		t.Fatal("mutating clone affected original")
	}
}

func TestWeightsDefaultToOne(t *testing.T) {
	g := complete(3)
	if g.Weighted() {
		t.Fatal("complete(3) should be unweighted")
	}
	if g.EdgeWeight(0, 1) != 1 {
		t.Fatal("unweighted edge weight should be 1")
	}
	if g.TotalWeight() != 3 {
		t.Fatalf("TotalWeight = %g, want 3", g.TotalWeight())
	}
	if g.WeightedDegree(0) != 2 {
		t.Fatalf("WeightedDegree = %g, want 2", g.WeightedDegree(0))
	}
}

func TestWeightedAccessors(t *testing.T) {
	b := NewBuilder(3)
	b.SetWeight(0, 1, 2)
	b.SetWeight(1, 2, 3)
	g := b.Build()
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if g.TotalWeight() != 5 {
		t.Fatalf("TotalWeight = %g, want 5", g.TotalWeight())
	}
	if g.WeightedDegree(1) != 5 {
		t.Fatalf("WeightedDegree(1) = %g, want 5", g.WeightedDegree(1))
	}
}

func TestParseEdgeListRoundTrip(t *testing.T) {
	in := "# comment\na b\nb c\n\nc a\n"
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != 3 {
		t.Fatal("round trip changed the graph")
	}
}

func TestParseEdgeListWeighted(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("x y 4.5\ny z 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() || g.EdgeWeight(0, 1) != 4.5 {
		t.Fatalf("weight = %g, want 4.5", g.EdgeWeight(0, 1))
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	if _, err := ParseEdgeList(strings.NewReader("justone\n")); err == nil {
		t.Fatal("want error for single-field line")
	}
	if _, err := ParseEdgeList(strings.NewReader("a b notanumber\n")); err == nil {
		t.Fatal("want error for bad weight")
	}
}

func TestParseCommunities(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("a b\nb c\nc d\n"))
	if err != nil {
		t.Fatal(err)
	}
	comms, err := ParseCommunities(strings.NewReader("a b\nc d\n"), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != 2 || len(comms[0]) != 2 {
		t.Fatalf("parsed %v", comms)
	}
	if _, err := ParseCommunities(strings.NewReader("a nosuch\n"), g); err == nil {
		t.Fatal("want error for unknown node")
	}
	var sb strings.Builder
	if err := WriteCommunities(&sb, g, comms); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a b\nc d\n" {
		t.Fatalf("WriteCommunities output %q", sb.String())
	}
}
