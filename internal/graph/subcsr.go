package graph

// SubCSR is a query-scoped compact snapshot: the induced subgraph of one
// member set (typically a connected component) relabelled into dense local
// ids 0..k-1 and packed into its own CSR, with a mapping back to the
// source snapshot's ids. Peeling a 50-node community on a 10M-node graph
// over the parent CSR still touches Θ(n) scratch per query; over a SubCSR
// every traversal, articulation sweep, and candidate scan costs O(k).
//
// The relabelling is monotonic (local order == source order), so the
// packed local adjacency stays sorted and every order-sensitive float
// accumulation — the internal edge weight w_C, the node-weight sum d_S,
// each k_{v,S} neighbor sum — visits exactly the terms the parent-CSR code
// visited, in the same order. Scores computed on a SubCSR are therefore
// bit-identical to scores computed on the parent (the differential tests
// in internal/dmcs prove this end to end).
//
// The embedded CSR's TotalWeight is the PARENT graph's w_G, not the
// member set's internal weight: modularity objectives normalize by the
// whole graph even when the search is confined to one component. The
// member set's own aggregates are exposed as InternalWeight (w_C) and
// MemberWeightSum (d_S at full membership); WeightedDegree returns the
// node's weighted degree in the parent graph.
type SubCSR struct {
	CSR
	global []Node  // local -> source id; nil means identity (sub == source)
	compW  float64 // internal edge weight of the member set (w_C)
	compD  float64 // sum of member node weights (d_S at full membership)
}

// GlobalOf maps a local node id back to the source snapshot's id.
func (s *SubCSR) GlobalOf(u Node) Node {
	if s.global == nil {
		return u
	}
	return s.global[u]
}

// Globals returns the local->source id table (ascending; nil when the sub
// spans the whole source snapshot, in which case ids coincide). Do not
// modify.
func (s *SubCSR) Globals() []Node { return s.global }

// LocalOf maps a source-snapshot id to its local id, reporting false when
// the node is not a member. O(log k) via binary search over the sorted id
// table; O(1) for identity subs.
func (s *SubCSR) LocalOf(g Node) (Node, bool) {
	if s.global == nil {
		if int(g) >= s.NumNodes() || g < 0 {
			return 0, false
		}
		return g, true
	}
	lo, hi := 0, len(s.global)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.global[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.global) && s.global[lo] == g {
		return Node(lo), true
	}
	return 0, false
}

// InternalWeight returns w_C of the member set — the total weight of
// edges with both endpoints inside it, accumulated in the canonical
// member-ascending, neighbor-ascending order.
func (s *SubCSR) InternalWeight() float64 { return s.compW }

// MemberWeightSum returns d_S at full membership: the sum of member node
// weights (parent-graph weighted degrees), accumulated in ascending
// member order.
func (s *SubCSR) MemberWeightSum() float64 { return s.compD }

// NewSubCSR extracts the induced subgraph of members (sorted ascending,
// duplicate-free) from c into a freshly allocated SubCSR. Neighbors
// outside the member set are dropped, so the member set need not be
// component-closed. Long-lived callers that serve many queries (the
// engine's snapshot) build one per component and share it; per-query
// extraction goes through Arena.ExtractSub instead, which reuses buffers.
func NewSubCSR(c *CSR, members []Node) *SubCSR {
	table := make([]int32, c.NumNodes())
	tag := make([]uint32, c.NumNodes())
	for i, g := range members {
		table[g] = int32(i)
		tag[g] = 1
	}
	dst := &SubCSR{}
	extractSub(dst, &subStorage{}, c, members, table, tag, 1)
	dst.global = append([]Node(nil), members...)
	return dst
}

// NewSubCSRAt is NewSubCSR with the normalization weight pinned: the
// returned sub scores against wG instead of c.TotalWeight(). Callers that
// version components independently use it to rebuild a carried
// component's sub on a later snapshot while keeping its answers
// bit-identical to the version the component was stamped at — the member
// adjacency is unchanged by construction (see UpdateComponents' carried
// contract) and wG freezes the only global term the objectives consume.
func NewSubCSRAt(c *CSR, members []Node, wG float64) *SubCSR {
	dst := NewSubCSR(c, members)
	dst.totalW = wG
	return dst
}

// WrapCSR returns the identity SubCSR over the whole snapshot: shared
// packed arrays, no relabelling, w_C = w_G. It lets single-component
// graphs use the query-scoped search path without copying the snapshot.
func WrapCSR(c *CSR) *SubCSR {
	s := &SubCSR{CSR: *c, compW: c.totalW}
	for _, d := range c.wdeg {
		s.compD += d
	}
	return s
}

// subStorage owns the backing slices a SubCSR header points into when the
// sub was extracted (rather than wrapped). Arenas keep two of these so
// extraction reuses buffers across queries; NewSubCSR uses a throwaway.
type subStorage struct {
	offsets []int32
	targets []Node
	weights []float64
	wdeg    []float64
	global  []Node
}

// extractSub builds the compact relabelled CSR of members into dst,
// backed by store's slices (grown as needed). table/tag is the
// source-id -> local-id map: an entry is valid iff tag[g] == epoch.
// Neighbors with stale tags are dropped. The caller owns dst.global.
func extractSub(dst *SubCSR, store *subStorage, src *CSR, members []Node, table []int32, tag []uint32, epoch uint32) {
	k := len(members)
	degSum := 0
	for _, g := range members {
		degSum += src.Degree(g)
	}
	store.offsets = growInt32(store.offsets, k+1)
	store.targets = growNodes(store.targets, degSum)
	store.wdeg = growFloat64(store.wdeg, k)
	weighted := src.weights != nil
	if weighted {
		store.weights = growFloat64(store.weights, degSum)
	}

	var compW, compD float64
	pos := 0
	for i, g := range members {
		store.offsets[i] = int32(pos)
		d := src.wdeg[g]
		store.wdeg[i] = d
		compD += d
		adj := src.Neighbors(g)
		if weighted {
			ws := src.NeighborWeights(g)
			for j, w := range adj {
				if tag[w] != epoch {
					continue
				}
				lw := table[w]
				store.targets[pos] = Node(lw)
				wt := ws[j]
				store.weights[pos] = wt
				// u < w in local ids iff u < w in source ids (monotonic
				// relabelling), so this is the NewCSRViewOf accumulation
				// order exactly.
				if int32(i) < lw {
					compW += wt
				}
				pos++
			}
		} else {
			for _, w := range adj {
				if tag[w] != epoch {
					continue
				}
				store.targets[pos] = Node(table[w])
				pos++
			}
		}
	}
	store.offsets[k] = int32(pos)

	dst.offsets = store.offsets[:k+1]
	dst.targets = store.targets[:pos]
	dst.wdeg = store.wdeg[:k]
	if weighted {
		dst.weights = store.weights[:pos]
	} else {
		dst.weights = nil
		compW = float64(pos / 2)
	}
	dst.totalW = src.totalW // objectives normalize by the parent graph
	dst.compW = compW
	dst.compD = compD
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growNodes(s []Node, n int) []Node {
	if cap(s) < n {
		return make([]Node, n)
	}
	return s[:n]
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growUint32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}
