package graph

import (
	"strings"
	"testing"
)

// TestParseEdgeListMixedWeights is the regression test for the
// half-weighted-graph bug: a file mixing 2-column and 3-column lines must
// treat every bare line as weight 1.0 — including bare lines that appear
// before the first weighted one — so the parsed graph's explicit weight
// sweep accounts for every edge.
func TestParseEdgeListMixedWeights(t *testing.T) {
	const in = "a b\nb c 2.5\nc d\nd e 0.5\n"
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("mixed file should parse as weighted")
	}
	want := map[string]float64{"a b": 1, "b c": 2.5, "c d": 1, "d e": 0.5}
	seen := 0
	g.EdgesW(func(u, v Node, w float64) bool {
		key := g.Label(u) + " " + g.Label(v)
		if want[key] != w {
			t.Errorf("weight(%s) = %g, want %g", key, w, want[key])
		}
		seen++
		return true
	})
	if seen != len(want) {
		t.Fatalf("saw %d edges, want %d", seen, len(want))
	}
	// The bare edges must carry explicit weight entries, not rely on the
	// missing-entry fallback: a write/parse round trip preserves them.
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "a b 1") {
		t.Errorf("round-trip output lost the bare edge's unit weight:\n%s", sb.String())
	}
	g2, err := ParseEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.TotalWeight() != g.TotalWeight() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed the graph: %g/%d -> %g/%d",
			g.TotalWeight(), g.NumEdges(), g2.TotalWeight(), g2.NumEdges())
	}
	// A fully bare file must stay unweighted.
	g3, err := ParseEdgeList(strings.NewReader("a b\nb c\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g3.Weighted() {
		t.Fatal("bare file should stay unweighted")
	}
}

// TestParseEdgeListDuplicateLines: repeated edge lines are last-wins,
// and the file stays weighted even when bare re-adds override every
// weighted line (the file carried a weight, so the rule applies).
func TestParseEdgeListDuplicateLines(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("a b 2.5\na b 7\nb a\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("last line is bare, so weight = %g, want 1", w)
	}
	if !g.Weighted() {
		t.Fatal("a file with any weighted line parses as weighted")
	}
}

// TestBuilderDuplicateEdgeLastWins pins the Builder's duplicate-edge
// semantics: one adjacency entry, last call decides the weight, and a
// write/parse round trip reproduces the graph exactly.
func TestBuilderDuplicateEdgeLastWins(t *testing.T) {
	b := NewBuilder(3)
	b.SetWeight(0, 1, 2.5)
	b.SetWeight(1, 0, 7) // same undirected edge, reversed: overwrites
	b.SetWeight(1, 2, 3)
	b.AddEdge(1, 2) // resets to the default weight
	b.SetWeight(2, 0, 4)
	g := b.Build()
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d, want 2 (no duplicate adjacency entries)", d)
	}
	if w := g.EdgeWeight(0, 1); w != 7 {
		t.Fatalf("weight(0,1) = %g, want 7 (last SetWeight wins)", w)
	}
	if w := g.EdgeWeight(1, 2); w != 1 {
		t.Fatalf("weight(1,2) = %g, want 1 (AddEdge resets)", w)
	}
	// Round trip through the text format.
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.TotalWeight() != g.TotalWeight() {
		t.Fatalf("round trip changed the graph: %d/%g -> %d/%g",
			g.NumEdges(), g.TotalWeight(), g2.NumEdges(), g2.TotalWeight())
	}

	// A builder whose weights were all reset by AddEdge builds unweighted.
	b2 := NewBuilder(2)
	b2.SetWeight(0, 1, 5)
	b2.AddEdge(0, 1)
	if g := b2.Build(); g.Weighted() {
		t.Fatal("all weights reset: graph should be unweighted")
	}
}
