package graph

import "container/heap"

// INF marks unreachable nodes in distance slices.
const INF int32 = 1<<31 - 1

// BFS computes unweighted shortest-path distances from src. Unreachable
// nodes get INF.
func BFS(g *Graph, src Node) []int32 {
	return MultiSourceBFS(g, []Node{src})
}

// MultiSourceBFS computes, for every node, the minimum unweighted distance
// to any of the sources (the paper's dist(v) = min over q in Q of d(q,v)).
func MultiSourceBFS(g *Graph, sources []Node) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = INF
	}
	queue := make([]Node, 0, len(sources))
	for _, s := range sources {
		if dist[s] == INF {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range g.Neighbors(u) {
			if dist[w] == INF {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// MultiSourceBFSView is MultiSourceBFS restricted to the alive nodes of a
// view. Dead nodes and unreachable alive nodes get INF. Dead sources are
// skipped.
func MultiSourceBFSView(v *View, sources []Node) []int32 {
	g := v.Graph()
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = INF
	}
	queue := make([]Node, 0, len(sources))
	for _, s := range sources {
		if v.Alive(s) && dist[s] == INF {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range g.Neighbors(u) {
			if v.Alive(w) && dist[w] == INF {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ConnectedComponents labels every node with a component id in [0,k) and
// returns the labels plus k.
func ConnectedComponents(g *Graph) (comp []int32, count int) {
	comp = make([]int32, g.NumNodes())
	for i := range comp {
		comp[i] = -1
	}
	var queue []Node
	for s := 0; s < g.NumNodes(); s++ {
		if comp[s] != -1 {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		queue = append(queue[:0], Node(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}

// ComponentOf returns the alive nodes reachable from src inside the view
// (including src). Returns nil when src is dead.
func ComponentOf(v *View, src Node) []Node {
	if !v.Alive(src) {
		return nil
	}
	seen := map[Node]bool{src: true}
	out := []Node{src}
	queue := []Node{src}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		v.EachNeighbor(u, func(w Node) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
				queue = append(queue, w)
			}
		})
	}
	return out
}

// ConnectedWithin reports whether all alive nodes of the view form a single
// connected subgraph. An empty view is connected by convention.
func ConnectedWithin(v *View) bool {
	if v.NumAlive() == 0 {
		return true
	}
	var src Node = -1
	for u := 0; u < v.Graph().NumNodes(); u++ {
		if v.Alive(Node(u)) {
			src = Node(u)
			break
		}
	}
	return len(ComponentOf(v, src)) == v.NumAlive()
}

// SameComponent reports whether all the given nodes lie in one connected
// component of g.
func SameComponent(g *Graph, nodes []Node) bool {
	if len(nodes) <= 1 {
		return true
	}
	dist := BFS(g, nodes[0])
	for _, u := range nodes[1:] {
		if dist[u] == INF {
			return false
		}
	}
	return true
}

type dijkstraItem struct {
	node Node
	dist float64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int            { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x interface{}) { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes weighted shortest-path distances from the sources,
// using EdgeWeight (1 for unweighted graphs, so it degenerates to BFS
// distances). Unreachable nodes get +Inf encoded as -1. This is the
// one-shot convenience form: it only pays map lookups for edges it
// actually relaxes. Repeated or whole-graph weighted traversals should
// pack a snapshot once and use CSR.Dijkstra, which reads the packed
// weights instead.
func Dijkstra(g *Graph, sources []Node) []float64 {
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	h := &dijkstraHeap{}
	for _, s := range sources {
		if dist[s] < 0 {
			dist[s] = 0
			heap.Push(h, dijkstraItem{s, 0})
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkstraItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, w := range g.Neighbors(it.node) {
			nd := it.dist + g.EdgeWeight(it.node, w)
			if dist[w] < 0 || nd < dist[w] {
				dist[w] = nd
				heap.Push(h, dijkstraItem{w, nd})
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from src.
func Eccentricity(g *Graph, src Node) int {
	dist := BFS(g, src)
	ecc := 0
	for _, d := range dist {
		if d != INF && int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter computes the exact diameter of g (the largest eccentricity over
// all nodes, ignoring unreachable pairs) by running a BFS from every node.
// Suitable for the small community subgraphs of Figure 4; use
// ApproxDiameter for whole large graphs.
func Diameter(g *Graph) int {
	d := 0
	for u := 0; u < g.NumNodes(); u++ {
		if e := Eccentricity(g, Node(u)); e > d {
			d = e
		}
	}
	return d
}

// ApproxDiameter lower-bounds the diameter with the classic double-sweep
// heuristic: BFS from src, then BFS from the farthest node found.
func ApproxDiameter(g *Graph, src Node) int {
	dist := BFS(g, src)
	far := src
	for u, d := range dist {
		if d != INF && d > dist[far] {
			far = Node(u)
		}
	}
	return Eccentricity(g, far)
}
