// Package graph provides the undirected-graph substrate used by every
// algorithm in this repository: construction, adjacency access, mutable
// subgraph views for peeling algorithms, traversals (BFS, Dijkstra),
// connectivity, diameter, articulation points, and plain-text I/O.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected.
// Nodes are dense indices of type Node ([0, N)). Loaders that read edge
// lists with arbitrary string labels keep a label table on the side.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Node is a dense node identifier in [0, NumNodes).
type Node = int32

// Graph is an immutable simple undirected graph. Build one with a Builder.
//
// The zero value is an empty graph. Adjacency lists are sorted by neighbor
// id, enabling binary-search membership tests via HasEdge.
type Graph struct {
	adj    [][]Node
	m      int      // number of undirected edges
	labels []string // optional external labels, len 0 or NumNodes
	ew     map[[2]Node]float64
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of node u.
func (g *Graph) Degree(u Node) int { return len(g.adj[u]) }

// Neighbors returns the sorted adjacency list of u. The caller must not
// modify the returned slice.
func (g *Graph) Neighbors(u Node) []Node { return g.adj[u] }

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v Node) bool {
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) || u < 0 || v < 0 {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, u, v = g.adj[v], v, u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// Label returns the external label of node u, or its decimal id when the
// graph was built without labels.
func (g *Graph) Label(u Node) string {
	if len(g.labels) == 0 {
		return fmt.Sprintf("%d", u)
	}
	return g.labels[u]
}

// Labels returns the label table (nil when the graph is unlabeled).
func (g *Graph) Labels() []string { return g.labels }

// EdgeWeight returns the weight of edge (u,v). Unweighted graphs (and
// missing edges) report 1 so the unweighted formulas fall out of the
// weighted ones.
func (g *Graph) EdgeWeight(u, v Node) float64 {
	if g.ew == nil {
		return 1
	}
	if u > v {
		u, v = v, u
	}
	if w, ok := g.ew[[2]Node{u, v}]; ok {
		return w
	}
	return 1
}

// Weighted reports whether any edge carries a non-unit weight.
func (g *Graph) Weighted() bool { return g.ew != nil }

// TotalWeight returns the sum of edge weights (|E| for unweighted graphs).
func (g *Graph) TotalWeight() float64 {
	if g.ew == nil {
		return float64(g.m)
	}
	var t float64
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if Node(u) < v {
				t += g.EdgeWeight(Node(u), v)
			}
		}
	}
	return t
}

// WeightedDegree returns the sum of adjacent edge weights of u (the node
// weight in the paper's Definition 2).
func (g *Graph) WeightedDegree(u Node) float64 {
	if g.ew == nil {
		return float64(len(g.adj[u]))
	}
	var t float64
	for _, v := range g.adj[u] {
		t += g.EdgeWeight(u, v)
	}
	return t
}

// Edges calls fn once per undirected edge with u < v. Iteration stops early
// if fn returns false.
func (g *Graph) Edges(fn func(u, v Node) bool) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if Node(u) < v {
				if !fn(Node(u), v) {
					return
				}
			}
		}
	}
}

// EdgesW is Edges with the edge weight passed along (1 for unweighted
// graphs): one map lookup per undirected edge, in deterministic
// ascending-adjacency order. It serves one-shot construction sweeps;
// repeated weighted passes should pack a CSR and use CSR.Edges.
func (g *Graph) EdgesW(fn func(u, v Node, w float64) bool) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if Node(u) < v {
				if !fn(Node(u), v, g.EdgeWeight(Node(u), v)) {
					return
				}
			}
		}
	}
}

// EdgeList materializes all undirected edges with u < v.
func (g *Graph) EdgeList() [][2]Node {
	out := make([][2]Node, 0, g.m)
	g.Edges(func(u, v Node) bool {
		out = append(out, [2]Node{u, v})
		return true
	})
	return out
}

// InducedSubgraph builds a new compact Graph over the node set keep. The
// second return value maps new ids back to ids in g.
func (g *Graph) InducedSubgraph(keep []Node) (*Graph, []Node) {
	old2new := make(map[Node]Node, len(keep))
	back := make([]Node, len(keep))
	sorted := append([]Node(nil), keep...)
	slices.Sort(sorted)
	for i, u := range sorted {
		old2new[u] = Node(i)
		back[i] = u
	}
	b := NewBuilder(len(sorted))
	for _, u := range sorted {
		for _, v := range g.adj[u] {
			if nv, ok := old2new[v]; ok && u < v {
				b.AddEdge(old2new[u], nv)
				if g.ew != nil {
					b.SetWeight(old2new[u], nv, g.EdgeWeight(u, v))
				}
			}
		}
	}
	sub := b.Build()
	if len(g.labels) > 0 {
		sub.labels = make([]string, len(sorted))
		for i, u := range back {
			sub.labels[i] = g.labels[u]
		}
	}
	return sub, back
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{m: g.m}
	c.adj = make([][]Node, len(g.adj))
	for u := range g.adj {
		c.adj[u] = append([]Node(nil), g.adj[u]...)
	}
	if g.labels != nil {
		c.labels = append([]string(nil), g.labels...)
	}
	if g.ew != nil {
		c.ew = make(map[[2]Node]float64, len(g.ew))
		for k, v := range g.ew {
			c.ew[k] = v
		}
	}
	return c
}

// Builder accumulates edges and produces an immutable Graph. Self-loops
// are silently dropped. Repeated records of the same edge are
// deterministic last-wins: the adjacency entry is never duplicated, and
// the final AddEdge/SetWeight call decides the weight (AddEdge resets it
// to the default 1).
type Builder struct {
	n      int
	edges  map[[2]Node]struct{}
	ew     map[[2]Node]float64
	labels []string
}

// NewBuilder creates a Builder for a graph with n nodes. AddEdge may grow n
// implicitly when given larger endpoints.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[[2]Node]struct{})}
}

// SetLabels attaches external node labels; len(labels) fixes the node count
// if larger than the current one.
func (b *Builder) SetLabels(labels []string) {
	b.labels = labels
	if len(labels) > b.n {
		b.n = len(labels)
	}
}

// AddEdge records the undirected edge (u,v) with the default weight 1.
// Self-loops are ignored. Re-adding an edge that already carries a weight
// resets it to the default — the last record of an edge wins.
func (b *Builder) AddEdge(u, v Node) {
	if u == v || u < 0 || v < 0 {
		return
	}
	if u > v {
		u, v = v, u
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges[[2]Node{u, v}] = struct{}{}
	if b.ew != nil {
		delete(b.ew, [2]Node{u, v})
	}
}

// SetWeight sets the weight of edge (u,v), adding the edge if absent and
// overwriting any previously recorded weight (last wins).
func (b *Builder) SetWeight(u, v Node, w float64) {
	b.AddEdge(u, v)
	if u > v {
		u, v = v, u
	}
	if b.ew == nil {
		b.ew = make(map[[2]Node]float64)
	}
	b.ew[[2]Node{u, v}] = w
}

// NumEdges returns the number of distinct edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the graph. The Builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{m: len(b.edges)}
	g.adj = make([][]Node, b.n)
	deg := make([]int, b.n)
	for e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for u := range g.adj {
		g.adj[u] = make([]Node, 0, deg[u])
	}
	for e := range b.edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	for u := range g.adj {
		a := g.adj[u]
		slices.Sort(a)
	}
	if b.labels != nil {
		g.labels = append([]string(nil), b.labels...)
	}
	// len, not nil: AddEdge may have reset every recorded weight, and an
	// empty weight map must not make the graph report Weighted.
	if len(b.ew) > 0 {
		g.ew = make(map[[2]Node]float64, len(b.ew))
		for k, v := range b.ew {
			g.ew[k] = v
		}
	}
	return g
}

// FromEdges is a convenience constructor for tests and examples.
func FromEdges(n int, edges [][2]Node) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
