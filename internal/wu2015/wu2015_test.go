package wu2015

import (
	"math"
	"testing"

	"dmcs/internal/gen"
	"dmcs/internal/graph"
)

func twoCliquesBridge() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			b.AddEdge(graph.Node(i+5), graph.Node(j+5))
		}
	}
	b.AddEdge(4, 5)
	return b.Build()
}

func TestProximitySumsToOne(t *testing.T) {
	g := twoCliquesBridge()
	r := Proximity(g, []graph.Node{0}, Options{})
	var sum float64
	for _, x := range r {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proximity mass=%v want 1", sum)
	}
}

func TestProximityDecaysWithDistance(t *testing.T) {
	g := twoCliquesBridge()
	r := Proximity(g, []graph.Node{0}, Options{})
	// node 1 (same clique) should be closer than node 9 (other clique)
	if r[1] <= r[9] {
		t.Fatalf("proximity should decay with distance: r[1]=%v r[9]=%v", r[1], r[9])
	}
	if r[0] <= r[1] {
		t.Fatalf("query node should have the highest proximity: %v vs %v", r[0], r[1])
	}
}

func TestProximityUnreachable(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {2, 3}})
	r := Proximity(g, []graph.Node{0}, Options{})
	if r[2] != 0 || r[3] != 0 {
		t.Fatalf("unreachable nodes should have zero proximity: %v", r)
	}
	if r2 := Proximity(g, nil, Options{}); r2[0] != 0 {
		t.Fatal("empty query should yield zero proximity")
	}
}

func TestQueryBiasedDensityPrefersNearClique(t *testing.T) {
	g := twoCliquesBridge()
	prox := Proximity(g, []graph.Node{0}, Options{})
	left := graph.NewViewOf(g, []graph.Node{0, 1, 2, 3, 4})
	whole := graph.NewView(g)
	if QueryBiasedDensity(left, prox) <= QueryBiasedDensity(whole, prox) {
		t.Fatal("query-biased density should prefer the near clique over the whole graph")
	}
}

func TestQueryBiasedDensityUnreachableZero(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {2, 3}})
	prox := Proximity(g, []graph.Node{0}, Options{})
	v := graph.NewView(g) // includes unreachable nodes
	if QueryBiasedDensity(v, prox) != 0 {
		t.Fatal("sets with unreachable nodes should score 0")
	}
}

func TestSearchFindsNearClique(t *testing.T) {
	g := twoCliquesBridge()
	c := Search(g, []graph.Node{0}, Options{})
	if len(c) != 5 {
		t.Fatalf("wu2015 community=%v want the near K5", c)
	}
	for _, u := range c {
		if u > 4 {
			t.Fatalf("community crossed the bridge: %v", c)
		}
	}
}

func TestSearchKeepsQueryNodes(t *testing.T) {
	g := twoCliquesBridge()
	c := Search(g, []graph.Node{0, 9}, Options{})
	in := map[graph.Node]bool{}
	for _, u := range c {
		in[u] = true
	}
	if !in[0] || !in[9] {
		t.Fatalf("wu2015 must keep the query nodes: %v", c)
	}
}

func TestSearchDisconnectedQuery(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {2, 3}})
	if Search(g, []graph.Node{0, 3}, Options{}) != nil {
		t.Fatal("disconnected query should return nil")
	}
	if Search(g, nil, Options{}) != nil {
		t.Fatal("empty query should return nil")
	}
}

func TestSearchOnPlantedPartition(t *testing.T) {
	g, comms := gen.PlantedPartition([]int{25, 25}, 0.5, 0.01, 11)
	q := comms[0][0]
	c := Search(g, []graph.Node{q}, Options{})
	if len(c) == 0 {
		t.Fatal("wu2015 found nothing")
	}
	// the majority of the result should come from the query's community
	in := make(map[graph.Node]bool, len(comms[0]))
	for _, u := range comms[0] {
		in[u] = true
	}
	hits := 0
	for _, u := range c {
		if in[u] {
			hits++
		}
	}
	if float64(hits)/float64(len(c)) < 0.6 {
		t.Fatalf("only %d/%d of wu2015's community is near the query", hits, len(c))
	}
}
