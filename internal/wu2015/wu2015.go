// Package wu2015 reproduces the query-biased density baseline of Wu, Jin,
// Li & Zhang (PVLDB 2015), "Robust local community detection: on free
// rider effect and its elimination", referred to as wu2015 in the paper's
// evaluation.
//
// The method scores a subgraph S by its query-biased density: the number
// of internal edges divided by the sum of query-biased node weights, where
// a node's weight is the reciprocal of its random-walk-with-restart
// proximity to the query (decay factor c). Far-from-query nodes are heavy,
// so including them hurts; the greedy node-deletion algorithm repeatedly
// deletes the removable (non-articulation, non-query) node whose removal
// maximizes the score. The parameter η softens the proximity penalty when
// ranking candidates, matching the paper's η = 0.5 setting.
package wu2015

import (
	"math"
	"slices"

	"dmcs/internal/graph"
)

// Options configures the baseline. Zero values select the defaults used in
// the paper's evaluation (c = 0.8, η = 0.5, 50 RWR iterations).
type Options struct {
	Decay float64 // RWR restart-free continuation probability c
	Eta   float64 // proximity-penalty exponent η
	Iters int     // RWR power iterations
}

func (o Options) withDefaults() Options {
	if o.Decay == 0 {
		o.Decay = 0.8
	}
	if o.Eta == 0 {
		o.Eta = 0.5
	}
	if o.Iters == 0 {
		o.Iters = 50
	}
	return o
}

// Proximity computes random-walk-with-restart proximity scores from the
// query nodes: r = (1−c)·e_Q + c·Pᵀr with column-normalized transition P.
// Scores sum to 1 over reachable nodes.
func Proximity(g *graph.Graph, q []graph.Node, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	r := make([]float64, n)
	next := make([]float64, n)
	restart := make([]float64, n)
	if len(q) == 0 {
		return r
	}
	for _, u := range q {
		restart[u] = 1 / float64(len(q))
		r[u] = restart[u]
	}
	for it := 0; it < opt.Iters; it++ {
		for i := range next {
			next[i] = (1 - opt.Decay) * restart[i]
		}
		for u := 0; u < n; u++ {
			if r[u] == 0 {
				continue
			}
			d := g.Degree(graph.Node(u))
			if d == 0 {
				next[u] += opt.Decay * r[u] // dangling mass stays put
				continue
			}
			share := opt.Decay * r[u] / float64(d)
			for _, w := range g.Neighbors(graph.Node(u)) {
				next[w] += share
			}
		}
		r, next = next, r
	}
	return r
}

// QueryBiasedDensity scores the alive set of the view: internal edges
// divided by the total query-biased node weight Σ 1/r(v). Unreachable
// nodes (r = 0) make the score 0, reflecting that they should never be in
// the community.
func QueryBiasedDensity(v *graph.View, prox []float64) float64 {
	return queryBiasedDensity(v.NumAliveEdges(), v.Graph().NumNodes(), v.Alive, prox)
}

// QueryBiasedDensityCSR is QueryBiasedDensity over a CSR peeling view.
func QueryBiasedDensityCSR(v *graph.CSRView, prox []float64) float64 {
	return queryBiasedDensity(v.NumAliveEdges(), v.CSR().NumNodes(), v.Alive, prox)
}

func queryBiasedDensity(mAlive, n int, alive func(graph.Node) bool, prox []float64) float64 {
	var wsum float64
	for u := 0; u < n; u++ {
		if !alive(graph.Node(u)) {
			continue
		}
		p := prox[u]
		if p <= 0 {
			return 0
		}
		wsum += 1 / p
	}
	if wsum == 0 {
		return 0
	}
	return float64(mAlive) / wsum
}

// Search runs the greedy node-deletion algorithm: starting from the
// connected component of the query, repeatedly delete the non-articulation
// non-query node with the smallest proximity-weighted retention score
// r(v)^η · k(v,S), and return the intermediate subgraph with the largest
// query-biased density. Returns nil when the query nodes are disconnected.
// The peeling loop — articulation recomputation plus candidate scans every
// iteration — runs on the packed CSR substrate like the dmcs searches.
func Search(g *graph.Graph, q []graph.Node, opt Options) []graph.Node {
	if len(q) == 0 {
		return nil
	}
	opt = opt.withDefaults()
	c := graph.NewCSR(g)
	// restrict to the component containing the query; the same distance
	// array validates that the whole query is inside it
	comp, dist := c.Component(q[0])
	for _, u := range q[1:] {
		if dist[u] == graph.INF {
			return nil
		}
	}
	prox := Proximity(g, q, opt)
	v := graph.NewCSRViewOf(c, comp)
	isQuery := make(map[graph.Node]bool, len(q))
	for _, u := range q {
		isQuery[u] = true
	}
	best := append([]graph.Node(nil), comp...)
	bestScore := QueryBiasedDensityCSR(v, prox)
	for v.NumAlive() > len(q) {
		art := v.ArticulationPoints()
		var pick graph.Node = -1
		pickScore := math.Inf(1)
		for _, u := range comp {
			if !v.Alive(u) || art[u] || isQuery[u] {
				continue
			}
			// retention score: high proximity and high internal degree
			// argue for keeping the node
			s := math.Pow(prox[u], opt.Eta) * float64(v.DegreeIn(u))
			if s < pickScore || (s == pickScore && u < pick) {
				pickScore, pick = s, u
			}
		}
		if pick < 0 {
			break
		}
		v.Remove(pick)
		if s := QueryBiasedDensityCSR(v, prox); s > bestScore {
			bestScore = s
			best = v.LiveNodes()
		}
	}
	slices.Sort(best)
	return best
}
