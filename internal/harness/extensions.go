package harness

import (
	"fmt"

	"dmcs/internal/dataset"
	"dmcs/internal/detect"
	core "dmcs/internal/dmcs"
	"dmcs/internal/gen"
	"dmcs/internal/graph"
	"dmcs/internal/lfr"
	"dmcs/internal/metrics"
	"dmcs/internal/queries"
)

// ExtDetect runs the future-work extension of the paper's Section 7:
// density-modularity-driven community *detection*, compared against
// Louvain (classic modularity) on the resolution-limit gadget and an LFR
// benchmark. Reported: partition NMI against ground truth and the number
// of communities found.
func (c Config) ExtDetect(base lfr.Config) error {
	type job struct {
		name  string
		g     *graph.Graph
		truth []int
		comms int
	}
	var jobs []job

	ringG, ringComms := gen.RingOfCliques(30, 6)
	truth := make([]int, ringG.NumNodes())
	for ci, cm := range ringComms {
		for _, u := range cm {
			truth[u] = ci
		}
	}
	jobs = append(jobs, job{"ring-of-cliques(30x6)", ringG, truth, len(ringComms)})

	res, err := lfr.Generate(base)
	if err != nil {
		return err
	}
	ltruth := make([]int, res.G.NumNodes())
	for ci, cm := range res.Communities {
		for _, u := range cm {
			ltruth[u] = ci
		}
	}
	jobs = append(jobs, job{fmt.Sprintf("lfr(n=%d)", base.N), res.G, ltruth, len(res.Communities)})

	t := newTable(c.Out, "graph", "truth |C|", "method", "NMI", "found |C|")
	for _, j := range jobs {
		for _, method := range []struct {
			name string
			run  func(*graph.Graph) []int
		}{
			{"louvain (CM)", detect.Louvain},
			{"density-detect (DM)", detect.DensityDetect},
		} {
			labels := method.run(j.g)
			found := map[int]bool{}
			for _, l := range labels {
				found[l] = true
			}
			t.row(j.name, j.comms, method.name,
				fmt.Sprintf("%.4f", metrics.PartitionNMI(labels, j.truth)), len(found))
		}
	}
	t.flush()
	return nil
}

// ExtOptimalityGap measures the heuristics' optimality gap against the
// exponential exact solver on small random graphs — a calibration the
// paper could not run at scale (Theorem 3: the problem is NP-hard).
func (c Config) ExtOptimalityGap(trials int) error {
	if trials <= 0 {
		trials = 30
	}
	t := newTable(c.Out, "variant", "mean gap", "worst gap", "exact matches")
	type acc struct {
		sum, worst float64
		exactHits  int
		runs       int
	}
	results := map[core.Variant]*acc{
		core.VariantFPA: {}, core.VariantNCA: {},
	}
	for trial := 0; trial < trials; trial++ {
		g := gen.ErdosRenyi(12, 0.3, c.Seed+int64(trial))
		// connect it: add a spanning path
		b := graph.NewBuilder(12)
		g.Edges(func(u, v graph.Node) bool { b.AddEdge(u, v); return true })
		for i := 1; i < 12; i++ {
			b.AddEdge(graph.Node(i-1), graph.Node(i))
		}
		g = b.Build()
		q := []graph.Node{graph.Node(trial % 12)}
		exact, err := core.ExactSmall(g, q, 0)
		if err != nil {
			continue
		}
		// Fixed variant order: gap sums must not depend on map order.
		for _, variant := range []core.Variant{core.VariantFPA, core.VariantNCA} {
			a := results[variant]
			r, err := core.Search(g, q, variant, core.Options{})
			if err != nil {
				continue
			}
			a.runs++
			gap := 0.0
			if exact.Score > 0 {
				gap = (exact.Score - r.Score) / exact.Score
			}
			if gap < 1e-9 {
				a.exactHits++
			}
			a.sum += gap
			if gap > a.worst {
				a.worst = gap
			}
		}
	}
	for _, variant := range []core.Variant{core.VariantFPA, core.VariantNCA} {
		a := results[variant]
		if a.runs == 0 {
			t.row(variant.String(), "NA", "NA", "NA")
			continue
		}
		t.row(variant.String(),
			fmt.Sprintf("%.1f%%", 100*a.sum/float64(a.runs)),
			fmt.Sprintf("%.1f%%", 100*a.worst),
			fmt.Sprintf("%d/%d", a.exactHits, a.runs))
	}
	t.flush()
	return nil
}

// ExtWeighted demonstrates weighted community search (Definition 2 is
// stated for weighted graphs): an LFR graph is reweighted so that
// intra-community edges are heavy, and FPA's accuracy with and without
// the weights is compared.
func (c Config) ExtWeighted(base lfr.Config) error {
	res, err := lfr.Generate(base)
	if err != nil {
		return err
	}
	// weighted twin: intra-community edges weight 3, inter weight 1
	b := graph.NewBuilder(res.G.NumNodes())
	res.G.Edges(func(u, v graph.Node) bool {
		if res.Membership[u] == res.Membership[v] {
			b.SetWeight(u, v, 3)
		} else {
			b.AddEdge(u, v)
		}
		return true
	})
	weighted := b.Build()
	d := &dataset.Dataset{Name: "lfr", G: res.G, Communities: res.Communities}
	qs := queries.Generate(d.G, d.Communities, queries.Options{
		NumSets: c.NumQuerySets, Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
	})
	t := newTable(c.Out, "graph", "NMI", "ARI")
	for _, variant := range []struct {
		name string
		g    *graph.Graph
	}{
		{"unweighted", res.G},
		{"intra-weighted ×3", weighted},
	} {
		var nmi, ari []float64
		for _, q := range qs {
			r, err := core.FPA(variant.g, q, core.Options{LayerPruning: true, Timeout: c.Timeout})
			if err != nil {
				continue
			}
			truth := groundTruthOf(d, q)
			if truth == nil {
				continue
			}
			n := variant.g.NumNodes()
			nmi = append(nmi, metrics.NMI(r.Community, truth, n))
			ari = append(ari, metrics.ARI(r.Community, truth, n))
		}
		t.row(variant.name,
			fmt.Sprintf("%.4f", metrics.Median(nmi)),
			fmt.Sprintf("%.4f", metrics.Median(ari)))
	}
	t.flush()
	return nil
}
