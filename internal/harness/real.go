package harness

import (
	"fmt"

	"dmcs/internal/centrality"
	"dmcs/internal/dataset"
	core "dmcs/internal/dmcs"
	"dmcs/internal/graph"
	"dmcs/internal/kcore"
	"dmcs/internal/ktruss"
	"dmcs/internal/lfr"
	"dmcs/internal/queries"
)

// Fig15Algos is the roster of Figure 15 (small real graphs).
var Fig15Algos = []string{
	AlgoClique, AlgoKC, AlgoKT, AlgoKECC, AlgoGN, AlgoCNM, AlgoICWI,
	AlgoHuang, AlgoWu, AlgoHighCore, AlgoHighTruss, AlgoNCA, AlgoFPA,
}

// Fig17Algos is the roster of Figures 17–19 (large graphs).
var Fig17Algos = []string{AlgoKC, AlgoKT, AlgoKECC, AlgoHighCore, AlgoHighTruss, AlgoFPA}

// Table1 prints the dataset statistics table (Table 1).
func (c Config) Table1(scale int) error {
	t := newTable(c.Out, "dataset", "|V|", "|E|", "|C|", "overlap", "kind")
	for _, name := range dataset.Names() {
		d, err := dataset.LoadScaled(name, scale)
		if err != nil {
			return err
		}
		overlap := "✗"
		if d.Overlap {
			overlap = "✓"
		}
		t.row(d.Name, d.G.NumNodes(), d.G.NumEdges(), d.NumCommunities(), overlap, d.Kind)
	}
	t.flush()
	return nil
}

// Table2 prints the synthetic-network configuration (Table 2).
func (c Config) Table2() error {
	def := lfr.Default()
	t := newTable(c.Out, "var", "values", "default", "description")
	t.row("|V|", "5,000", def.N, "number of nodes")
	t.row("d_avg", "20,30,40,50", def.AvgDeg, "average degree")
	t.row("d_max", "200,300,400,500", def.MaxDeg, "maximum degree")
	t.row("mu", "0.2,0.3,0.4", def.Mu, "mixing parameter (inter/intra edge ratio)")
	t.row("min C", "20", def.MinComm, "minimum community size")
	t.row("max C", "1,000", def.MaxComm, "maximum community size")
	t.flush()
	return nil
}

// Fig4 prints the community-diameter histograms of the DBLP and Youtube
// stand-ins, reproducing the "≈80% of DBLP communities have diameter ≤4"
// observation that motivates distance-based peeling.
func (c Config) Fig4(scale int) error {
	for _, name := range []string{"dblp", "youtube"} {
		d, err := dataset.LoadScaled(name, scale)
		if err != nil {
			return err
		}
		hist := d.DiameterHistogram(500)
		total := 0
		for _, cnt := range hist {
			total += cnt
		}
		cum := 0
		t := newTable(c.Out, name+" diameter", "count", "cumulative%")
		for _, diam := range sortedKeys(hist) {
			cum += hist[diam]
			t.row(diam, hist[diam], fmt.Sprintf("%.1f%%", 100*float64(cum)/float64(total)))
		}
		t.flush()
	}
	return nil
}

// Fig5 prints the node-removal orders of the Λ and Θ goodness functions on
// the Karate network (query node 1), the paper's update-order heatmap.
func (c Config) Fig5() error {
	d := dataset.Karate()
	q := []graph.Node{0} // node "1"
	orders := map[string][]graph.Node{}
	for _, v := range []core.Variant{core.VariantFPADMG, core.VariantFPA} {
		res, err := core.Search(d.G, q, v, core.Options{TrackOrder: true})
		if err != nil {
			return err
		}
		orders[v.String()] = res.RemovalOrder
	}
	t := newTable(c.Out, "node", "Λ removal rank (FPA-DMG)", "Θ removal rank (FPA)")
	rank := func(order []graph.Node, u graph.Node) string {
		for i, x := range order {
			if x == u {
				return fmt.Sprintf("%d", i+1)
			}
		}
		return "kept"
	}
	for u := graph.Node(1); u < 34; u++ {
		t.row(d.G.Label(u), rank(orders["FPA-DMG"], u), rank(orders["FPA"], u))
	}
	t.flush()
	return nil
}

// Fig15and16 reproduces effectiveness (Fig 15) and running time (Fig 16)
// on the four small real graphs across all thirteen algorithms.
func (c Config) Fig15and16(algos []string) error {
	if algos == nil {
		algos = Fig15Algos
	}
	t := newTable(c.Out, "dataset", "algo", "NMI", "ARI", "seconds")
	for _, name := range []string{"dolphin", "karate", "mexican", "polblogs"} {
		d, err := dataset.Load(name)
		if err != nil {
			return err
		}
		qs := queries.Generate(d.G, d.Communities, queries.Options{
			NumSets: 10, Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
		})
		for _, algo := range algos {
			agg := AggregateScores(c.Evaluate(d, algo, qs))
			t.row(d.Name, algo, fmtAgg(agg, "nmi"), fmtAgg(agg, "ari"), fmtAgg(agg, "sec"))
		}
	}
	t.flush()
	// The paper explains NCA's per-dataset behaviour by the imbalance of
	// local clustering coefficients between the two ground-truth
	// communities (~10% on Karate/Mexican, 20–50% on Dolphin/Polblogs).
	for _, name := range []string{"dolphin", "karate", "mexican", "polblogs"} {
		d, err := dataset.Load(name)
		if err != nil {
			return err
		}
		if len(d.Communities) != 2 {
			continue
		}
		csr := graph.NewCSR(d.G)
		c0 := csr.AvgClustering(d.Communities[0])
		c1 := csr.AvgClustering(d.Communities[1])
		hi := c0
		if c1 > hi {
			hi = c1
		}
		imb := 0.0
		if hi > 0 {
			imb = 100 * absF(c0-c1) / hi
		}
		fmt.Fprintf(c.Out, "%s: avg local clustering %.3f vs %.3f (imbalance %.0f%%)\n",
			name, c0, c1, imb)
	}
	return nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig17and18 reproduces effectiveness (Fig 17) and running time (Fig 18)
// on the large overlapping-ground-truth stand-ins.
func (c Config) Fig17and18(scale int, algos []string) error {
	if algos == nil {
		algos = Fig17Algos
	}
	t := newTable(c.Out, "dataset", "algo", "NMI", "ARI", "seconds")
	for _, name := range []string{"dblp", "youtube", "livejournal"} {
		d, err := dataset.LoadScaled(name, scale)
		if err != nil {
			return err
		}
		qs := queries.Generate(d.G, d.Communities, queries.Options{
			NumSets: c.NumQuerySets, Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
		})
		for _, algo := range algos {
			agg := AggregateScores(c.Evaluate(d, algo, qs))
			t.row(d.Name, algo, fmtAgg(agg, "nmi"), fmtAgg(agg, "ari"), fmtAgg(agg, "sec"))
		}
	}
	t.flush()
	return nil
}

// Fig19 reproduces the parameter-sensitivity experiment: kc/kt/kecc with
// k ∈ ks (paper: 3..6) against parameter-free FPA on the DBLP and Youtube
// stand-ins.
func (c Config) Fig19(scale int, ks []int) error {
	if ks == nil {
		ks = []int{3, 4, 5, 6}
	}
	t := newTable(c.Out, "dataset", "k", "algo", "NMI", "ARI")
	for _, name := range []string{"dblp", "youtube"} {
		d, err := dataset.LoadScaled(name, scale)
		if err != nil {
			return err
		}
		qs := queries.Generate(d.G, d.Communities, queries.Options{
			NumSets: c.NumQuerySets, Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
		})
		for _, k := range ks {
			kc := c
			kc.K = k
			for _, algo := range []string{AlgoKC, AlgoKT, AlgoKECC, AlgoFPA} {
				agg := AggregateScores(kc.Evaluate(d, algo, qs))
				t.row(d.Name, k, algo, fmtAgg(agg, "nmi"), fmtAgg(agg, "ari"))
			}
		}
	}
	t.flush()
	return nil
}

// CaseStudy reproduces Section 6.3.2: on a DBLP-like co-authorship graph,
// compare the DMCS community of a hub query node against its 3-truss and
// 3-core communities — sizes, the fraction of members adjacent to the
// query, and the query's betweenness/eigenvector centrality ranks within
// each community.
func (c Config) CaseStudy(scale int) error {
	if scale <= 0 {
		scale = 4000
	}
	d, err := dataset.LoadScaled("dblp", scale)
	if err != nil {
		return err
	}
	g := d.G
	// the query is the highest-degree node, the stand-in's "Philip S. Yu"
	q := graph.Node(0)
	for u := 1; u < g.NumNodes(); u++ {
		if g.Degree(graph.Node(u)) > g.Degree(q) {
			q = graph.Node(u)
		}
	}
	res, err := core.FPA(g, []graph.Node{q}, core.Options{LayerPruning: true, Timeout: c.Timeout})
	if err != nil {
		return err
	}
	truss := ktruss.Community(g, []graph.Node{q}, 3)
	coreComm := kcore.Community(g, []graph.Node{q}, 3)

	t := newTable(c.Out, "community", "size", "%adjacent to query", "betweenness rank", "eigenvector rank")
	for _, row := range []struct {
		name string
		comm []graph.Node
	}{
		{"FPA (DMCS)", res.Community},
		{"3-truss", truss},
		{"3-core", coreComm},
	} {
		if len(row.comm) == 0 {
			t.row(row.name, "NA", "NA", "NA", "NA")
			continue
		}
		sub, back := g.InducedSubgraph(row.comm)
		var qLocal graph.Node = -1
		for i, u := range back {
			if u == q {
				qLocal = graph.Node(i)
				break
			}
		}
		adj := 0
		for _, u := range row.comm {
			if u != q && g.HasEdge(q, u) {
				adj++
			}
		}
		pctAdj := 100 * float64(adj) / float64(maxInt(len(row.comm)-1, 1))
		bRank, eRank := "NA", "NA"
		if qLocal >= 0 && sub.NumNodes() <= 20000 {
			bRank = fmt.Sprintf("%d", centrality.Rank(centrality.Betweenness(sub), qLocal))
			eRank = fmt.Sprintf("%d", centrality.Rank(centrality.Eigenvector(sub, 200, 1e-9), qLocal))
		}
		t.row(row.name, len(row.comm), fmt.Sprintf("%.0f%%", pctAdj), bRank, eRank)
	}
	t.flush()
	return nil
}

// CommunitySizesSummary prints min/median/max ground-truth community sizes
// (used in EXPERIMENTS.md narration).
func (c Config) CommunitySizesSummary(d *dataset.Dataset) {
	sizes := d.SortedCommunitySizes()
	if len(sizes) == 0 {
		fmt.Fprintf(c.Out, "%s: no communities\n", d.Name)
		return
	}
	fmt.Fprintf(c.Out, "%s: %d communities, sizes min=%d median=%d max=%d\n",
		d.Name, len(sizes), sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
