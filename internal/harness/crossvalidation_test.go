package harness

// Cross-substrate validation: relationships between the baseline community
// models that must hold on any graph, checked on random LFR instances.
// These catch integration bugs that per-package unit tests cannot see.

import (
	"testing"

	"dmcs/internal/graph"
	"dmcs/internal/kcore"
	"dmcs/internal/kecc"
	"dmcs/internal/ktruss"
	"dmcs/internal/lfr"
)

func crossGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	cfg := lfr.Default()
	cfg.N = 300
	cfg.AvgDeg = 10
	cfg.MaxDeg = 40
	cfg.MinComm = 15
	cfg.MaxComm = 60
	cfg.Seed = seed
	res, err := lfr.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.G
}

// Every node of a (k+1)-truss belongs to the k-core: trussness t implies
// degree ≥ t−1 within the truss subgraph.
func TestTrussInsideCore(t *testing.T) {
	g := crossGraph(t, 31)
	core := kcore.Decompose(g)
	d := ktruss.Decompose(g)
	for id, e := range d.Edges {
		k := int(d.Truss[id])
		for _, u := range []graph.Node{e[0], e[1]} {
			if int(core[u]) < k-1 {
				t.Fatalf("edge %v has trussness %d but endpoint %d has core %d < %d",
					e, k, u, core[u], k-1)
			}
		}
	}
}

// A k-edge-connected subgraph has minimum degree ≥ k, so its nodes lie in
// the k-core.
func TestKECCInsideCore(t *testing.T) {
	g := crossGraph(t, 32)
	core := kcore.Decompose(g)
	for _, comp := range kecc.Decompose(g, 3, 1) {
		for _, u := range comp {
			if core[u] < 3 {
				t.Fatalf("3-ECC member %d has core number %d < 3", u, core[u])
			}
		}
	}
}

// The k-core community of a query (when it exists) contains the
// (k+1)-truss community of the same query: trussness k+1 implies core ≥ k
// and the truss component is connected inside the core.
func TestTrussCommunityInsideCoreCommunity(t *testing.T) {
	g := crossGraph(t, 33)
	q := graph.Node(0)
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(graph.Node(u)) > g.Degree(q) {
			q = graph.Node(u)
		}
	}
	truss := ktruss.Community(g, []graph.Node{q}, 4)
	if truss == nil {
		t.Skip("query not in any 4-truss")
	}
	core := kcore.Community(g, []graph.Node{q}, 3)
	in := make(map[graph.Node]bool, len(core))
	for _, u := range core {
		in[u] = true
	}
	for _, u := range truss {
		if !in[u] {
			t.Fatalf("4-truss member %d outside the 3-core community", u)
		}
	}
}

// HighestCore k never exceeds the query's core number; HighestTruss k
// never exceeds the max trussness of the query's incident edges.
func TestHighestCoreTrussBounds(t *testing.T) {
	g := crossGraph(t, 34)
	core := kcore.Decompose(g)
	d := ktruss.Decompose(g)
	for _, qi := range []int{0, 17, 101, 250} {
		q := graph.Node(qi)
		if _, k := kcore.HighestCore(g, []graph.Node{q}); k > int(core[q]) {
			t.Fatalf("highcore k=%d exceeds core number %d", k, core[q])
		}
		maxT := 0
		for _, w := range g.Neighbors(q) {
			if tr := d.Trussness(q, w); tr > maxT {
				maxT = tr
			}
		}
		if _, k := ktruss.HighestTruss(g, []graph.Node{q}); k > maxT {
			t.Fatalf("hightruss k=%d exceeds max incident trussness %d", k, maxT)
		}
	}
}
