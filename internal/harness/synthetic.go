package harness

import (
	"fmt"
	"time"

	"dmcs/internal/dataset"
	core "dmcs/internal/dmcs"
	"dmcs/internal/graph"
	"dmcs/internal/lfr"
	"dmcs/internal/metrics"
	"dmcs/internal/queries"
)

// Fig8Algos is the algorithm roster of Figures 8, 9 and 11.
var Fig8Algos = []string{
	AlgoKC, AlgoKT, AlgoKECC, AlgoHuang, AlgoWu,
	AlgoHighCore, AlgoHighTruss, AlgoNCA, AlgoFPA,
}

// LFRSweep describes one parameter sweep of Table 2.
type LFRSweep struct {
	Param  string // "mu", "davg" or "dmax"
	Values []float64
}

// PaperSweeps returns the three sweeps of Figures 8–9 (defaults
// underlined in Table 2: μ=0.2, d_avg=20, d_max=300).
func PaperSweeps() []LFRSweep {
	return []LFRSweep{
		{Param: "mu", Values: []float64{0.2, 0.3, 0.4}},
		{Param: "davg", Values: []float64{20, 30, 40, 50}},
		{Param: "dmax", Values: []float64{200, 300, 400, 500}},
	}
}

// lfrConfigFor applies one sweep point to the Table 2 default config.
func lfrConfigFor(base lfr.Config, param string, value float64) lfr.Config {
	cfg := base
	switch param {
	case "mu":
		cfg.Mu = value
	case "davg":
		cfg.AvgDeg = value
	case "dmax":
		cfg.MaxDeg = int(value)
	}
	return cfg
}

// syntheticDataset wraps an LFR graph as a Dataset.
func syntheticDataset(cfg lfr.Config) (*dataset.Dataset, error) {
	res, err := lfr.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &dataset.Dataset{
		Name: "lfr", G: res.G, Communities: res.Communities, Kind: "synthetic",
	}, nil
}

// Fig8and9 reproduces Figures 8 (NMI/ARI/Fscore) and 9 (running time) on
// the LFR benchmark sweeps. base is the Table 2 default configuration
// (shrink base.N for quick runs); algos defaults to Fig8Algos.
func (c Config) Fig8and9(base lfr.Config, sweeps []LFRSweep, algos []string) error {
	if algos == nil {
		algos = Fig8Algos
	}
	if sweeps == nil {
		sweeps = PaperSweeps()
	}
	t := newTable(c.Out, "sweep", "value", "algo", "NMI", "ARI", "Fscore", "seconds")
	for _, sw := range sweeps {
		for _, val := range sw.Values {
			d, err := syntheticDataset(lfrConfigFor(base, sw.Param, val))
			if err != nil {
				return fmt.Errorf("fig8: %s=%v: %w", sw.Param, val, err)
			}
			qs := queries.Generate(d.G, d.Communities, queries.Options{
				NumSets: c.NumQuerySets, Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
			})
			for _, algo := range algos {
				agg := AggregateScores(c.Evaluate(d, algo, qs))
				t.row(sw.Param, fmt.Sprintf("%g", val), algo,
					fmtAgg(agg, "nmi"), fmtAgg(agg, "ari"), fmtAgg(agg, "f1"), fmtAgg(agg, "sec"))
			}
		}
	}
	t.flush()
	return nil
}

// Fig10 reproduces the multi-query-size experiment: |Q| ∈ sizes (paper:
// 1, 4, 8, 12) on the default LFR graph for kc, kecc, NCA and FPA.
func (c Config) Fig10(base lfr.Config, sizes []int) error {
	if sizes == nil {
		sizes = []int{1, 4, 8, 12}
	}
	d, err := syntheticDataset(base)
	if err != nil {
		return err
	}
	algos := []string{AlgoKC, AlgoKECC, AlgoNCA, AlgoFPA}
	t := newTable(c.Out, "|Q|", "algo", "NMI", "ARI")
	for _, size := range sizes {
		qs := queries.Generate(d.G, d.Communities, queries.Options{
			NumSets: 15, Size: size, TrussK: c.K, Seed: c.Seed,
		})
		for _, algo := range algos {
			agg := AggregateScores(c.Evaluate(d, algo, qs))
			t.row(size, algo, fmtAgg(agg, "nmi"), fmtAgg(agg, "ari"))
		}
	}
	t.flush()
	return nil
}

// Fig11 reproduces the scalability test: running time of every algorithm
// as the LFR node count grows (paper: 10K → 100K).
func (c Config) Fig11(base lfr.Config, nodeCounts []int, algos []string) error {
	if algos == nil {
		algos = Fig8Algos
	}
	if nodeCounts == nil {
		nodeCounts = []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000, 90000, 100000}
	}
	t := newTable(c.Out, "|V|", "algo", "seconds", "NMI")
	for _, n := range nodeCounts {
		cfg := base
		cfg.N = n
		d, err := syntheticDataset(cfg)
		if err != nil {
			return fmt.Errorf("fig11: n=%d: %w", n, err)
		}
		qs := queries.Generate(d.G, d.Communities, queries.Options{
			NumSets: min(c.NumQuerySets, 5), Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
		})
		for _, algo := range algos {
			agg := AggregateScores(c.Evaluate(d, algo, qs))
			t.row(n, algo, fmtAgg(agg, "sec"), fmtAgg(agg, "nmi"))
		}
	}
	t.flush()
	return nil
}

// Fig12 reproduces the objective ablation: FPA selecting the best subgraph
// by classic modularity, generalized modularity density, and density
// modularity. The paper's headline: the classic-modularity variant returns
// communities ~18× larger on average.
func (c Config) Fig12(base lfr.Config) error {
	d, err := syntheticDataset(base)
	if err != nil {
		return err
	}
	qs := queries.Generate(d.G, d.Communities, queries.Options{
		NumSets: c.NumQuerySets, Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
	})
	objectives := []struct {
		name string
		obj  core.Objective
	}{
		{"classic-modularity", core.ClassicModularity},
		{"generalized-mod-density", core.GeneralizedModularityDensity},
		{"density-modularity", core.DensityModularity},
	}
	t := newTable(c.Out, "objective", "NMI", "ARI", "mean|C|")
	for _, o := range objectives {
		scores := c.evaluateFPAWith(d, qs, core.Options{Objective: o.obj, LayerPruning: true, Timeout: c.Timeout})
		agg := AggregateScores(scores)
		t.row(o.name, fmtAgg(agg, "nmi"), fmtAgg(agg, "ari"), fmtAgg(agg, "size"))
	}
	t.flush()
	return nil
}

// Fig13 reproduces the pruning ablation: FPA with and without the
// layer-based pruning strategy (quality and running time).
func (c Config) Fig13(base lfr.Config) error {
	d, err := syntheticDataset(base)
	if err != nil {
		return err
	}
	qs := queries.Generate(d.G, d.Communities, queries.Options{
		NumSets: c.NumQuerySets, Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
	})
	t := newTable(c.Out, "variant", "NMI", "ARI", "seconds")
	for _, pruned := range []bool{true, false} {
		name := "FPA"
		if !pruned {
			name = "FPA w/o pruning"
		}
		scores := c.evaluateFPAWith(d, qs, core.Options{LayerPruning: pruned, Timeout: c.Timeout})
		agg := AggregateScores(scores)
		t.row(name, fmtAgg(agg, "nmi"), fmtAgg(agg, "ari"), fmtAgg(agg, "sec"))
	}
	t.flush()
	return nil
}

// Fig14 reproduces the variant matrix of Section 6.2.5: NCA ((a)+(c)),
// NCA-DR ((a)+(d)), FPA-DMG ((b)+(c)) and FPA ((b)+(d)).
func (c Config) Fig14(base lfr.Config) error {
	d, err := syntheticDataset(base)
	if err != nil {
		return err
	}
	qs := queries.Generate(d.G, d.Communities, queries.Options{
		NumSets: c.NumQuerySets, Size: c.QuerySize, TrussK: c.K, Seed: c.Seed,
	})
	t := newTable(c.Out, "variant", "NMI", "ARI", "seconds")
	for _, algo := range []string{AlgoNCA, AlgoNCADR, AlgoFPADMG, AlgoFPA} {
		agg := AggregateScores(c.Evaluate(d, algo, qs))
		t.row(algo, fmtAgg(agg, "nmi"), fmtAgg(agg, "ari"), fmtAgg(agg, "sec"))
	}
	t.flush()
	return nil
}

// evaluateFPAWith scores FPA runs under explicit core.Options (used by the
// ablations, which tweak options rather than algorithm identity).
func (c Config) evaluateFPAWith(d *dataset.Dataset, qs [][]graph.Node, opts core.Options) []Score {
	scores := make([]Score, 0, len(qs))
	n := d.G.NumNodes()
	for _, q := range qs {
		start := time.Now()
		res, err := core.FPA(d.G, q, opts)
		elapsed := time.Since(start)
		if err != nil {
			scores = append(scores, Score{Elapsed: elapsed})
			continue
		}
		truth := groundTruthOf(d, q)
		if truth == nil {
			scores = append(scores, Score{Elapsed: elapsed})
			continue
		}
		scores = append(scores, Score{
			OK:      true,
			Elapsed: elapsed,
			Size:    len(res.Community),
			NMI:     metrics.NMI(res.Community, truth, n),
			ARI:     metrics.ARI(res.Community, truth, n),
			F1:      metrics.FScore(res.Community, truth, n),
		})
	}
	return scores
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
