package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dmcs/internal/dataset"
	"dmcs/internal/graph"
	"dmcs/internal/lfr"
	"dmcs/internal/queries"
)

// quickConfig is a scaled-down configuration so tests finish in seconds.
func quickConfig(out *bytes.Buffer) Config {
	return Config{
		K:            3,
		NumQuerySets: 4,
		QuerySize:    1,
		Timeout:      5 * time.Second,
		Seed:         1,
		Out:          out,
	}
}

// quickLFR is a small Table 2 configuration.
func quickLFR() lfr.Config {
	cfg := lfr.Default()
	cfg.N = 400
	cfg.AvgDeg = 12
	cfg.MaxDeg = 40
	cfg.MinComm = 15
	cfg.MaxComm = 60
	return cfg
}

func TestRunAllAlgorithmsOnKarate(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	d := dataset.Karate()
	for _, algo := range Fig15Algos {
		comm, elapsed, err := c.Run(algo, d.G, []graph.Node{0})
		if err != nil {
			t.Fatalf("%s failed: %v", algo, err)
		}
		if len(comm) == 0 {
			t.Fatalf("%s returned empty community", algo)
		}
		if elapsed < 0 {
			t.Fatalf("%s negative elapsed", algo)
		}
		// community must contain the query
		found := false
		for _, u := range comm {
			if u == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s community %v misses the query", algo, comm)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	d := dataset.Karate()
	if _, _, err := c.Run("nosuch", d.G, []graph.Node{0}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestNAPolicy(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	// GN must be skipped on graphs above its size limit
	big, err := dataset.LoadScaled("dblp", 2500)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Run(AlgoGN, big.G, []graph.Node{0}); err != ErrNA {
		t.Fatalf("GN on 2500-node graph: want ErrNA, got %v", err)
	}
}

func TestEvaluateKarate(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	d := dataset.Karate()
	qs := queries.Generate(d.G, d.Communities, queries.Options{NumSets: 6, Size: 1, TrussK: 3, Seed: 1})
	scores := c.Evaluate(d, AlgoFPA, qs)
	if len(scores) != len(qs) {
		t.Fatalf("scores=%d want %d", len(scores), len(qs))
	}
	agg := AggregateScores(scores)
	if agg.Succeeded == 0 {
		t.Fatal("no FPA run succeeded on karate")
	}
	if agg.NMI < 0 || agg.NMI > 1 || agg.ARI < -1 || agg.ARI > 1 {
		t.Fatalf("implausible aggregate %+v", agg)
	}
}

func TestFPABeatsParameterBaselinesOnKarate(t *testing.T) {
	// the headline claim at small scale: FPA should beat kc on median NMI
	var buf bytes.Buffer
	c := quickConfig(&buf)
	d := dataset.Karate()
	qs := queries.Generate(d.G, d.Communities, queries.Options{NumSets: 10, Size: 1, TrussK: 3, Seed: 2})
	fpa := AggregateScores(c.Evaluate(d, AlgoFPA, qs))
	kc := AggregateScores(c.Evaluate(d, AlgoKC, qs))
	if fpa.NMI <= kc.NMI {
		t.Fatalf("FPA NMI %.3f should beat kc %.3f on karate", fpa.NMI, kc.NMI)
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Table1(1200); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range dataset.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table1 output missing %s:\n%s", name, out)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Table2(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "d_avg") || !strings.Contains(buf.String(), "5000") {
		t.Fatalf("Table2 output incomplete:\n%s", buf.String())
	}
}

func TestFig4(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig4(1500); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dblp diameter") || !strings.Contains(out, "youtube diameter") {
		t.Fatalf("Fig4 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "cumulative%") {
		t.Fatal("Fig4 missing cumulative column")
	}
}

func TestFig5(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig5(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Θ removal rank") {
		t.Fatalf("Fig5 output incomplete:\n%s", out)
	}
	// 33 non-query karate nodes → 33 data rows
	if lines := strings.Count(out, "\n"); lines < 34 {
		t.Fatalf("Fig5 printed %d lines, want ≥34", lines)
	}
}

func TestFig8and9Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	sweeps := []LFRSweep{{Param: "mu", Values: []float64{0.2}}}
	algos := []string{AlgoKC, AlgoHighCore, AlgoFPA}
	if err := c.Fig8and9(quickLFR(), sweeps, algos); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, a := range algos {
		if !strings.Contains(out, a) {
			t.Fatalf("Fig8 output missing %s:\n%s", a, out)
		}
	}
}

func TestFig10Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig10(quickLFR(), []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|Q|") {
		t.Fatalf("Fig10 output incomplete:\n%s", buf.String())
	}
}

func TestFig11Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig11(quickLFR(), []int{400, 800}, []string{AlgoKC, AlgoFPA}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "400") || !strings.Contains(out, "800") {
		t.Fatalf("Fig11 output incomplete:\n%s", out)
	}
}

func TestFig12Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig12(quickLFR()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, obj := range []string{"classic-modularity", "generalized-mod-density", "density-modularity"} {
		if !strings.Contains(out, obj) {
			t.Fatalf("Fig12 missing %s:\n%s", obj, out)
		}
	}
}

func TestFig13Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig13(quickLFR()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "w/o pruning") {
		t.Fatalf("Fig13 output incomplete:\n%s", buf.String())
	}
}

func TestFig14Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig14(quickLFR()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, v := range []string{AlgoNCA, AlgoNCADR, AlgoFPADMG, AlgoFPA} {
		if !strings.Contains(out, v) {
			t.Fatalf("Fig14 missing %s:\n%s", v, out)
		}
	}
}

func TestFig15and16Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	algos := []string{AlgoKC, AlgoCNM, AlgoFPA}
	if testing.Short() {
		// CNM on the polblogs graph dominates this test's ~10 s runtime;
		// -short keeps the small-real-graph sweep but drops it.
		algos = []string{AlgoKC, AlgoFPA}
	}
	if err := c.Fig15and16(algos); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"dolphin", "karate", "mexican", "polblogs"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Fig15 missing %s:\n%s", name, out)
		}
	}
}

func TestFig17and18Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig17and18(1200, []string{AlgoKC, AlgoFPA}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"dblp", "youtube", "livejournal"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Fig17 missing %s:\n%s", name, out)
		}
	}
}

func TestFig19Reduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.Fig19(1200, []int{3, 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kt") {
		t.Fatalf("Fig19 output incomplete:\n%s", buf.String())
	}
}

func TestCaseStudyReduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.CaseStudy(1200); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"FPA (DMCS)", "3-truss", "3-core"} {
		if !strings.Contains(out, s) {
			t.Fatalf("case study missing %s:\n%s", s, out)
		}
	}
}

func TestCommunitySizesSummary(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	c.CommunitySizesSummary(dataset.Karate())
	if !strings.Contains(buf.String(), "karate") {
		t.Fatal("summary missing dataset name")
	}
}

func TestAggregateScoresEmpty(t *testing.T) {
	agg := AggregateScores(nil)
	if agg.Succeeded != 0 || agg.NMI != 0 {
		t.Fatalf("empty aggregate %+v", agg)
	}
	if fmtAgg(agg, "nmi") != "NA" {
		t.Fatal("empty aggregate should render NA")
	}
}

func TestExtDetectReduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.ExtDetect(quickLFR()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "density-detect (DM)") || !strings.Contains(out, "louvain (CM)") {
		t.Fatalf("ExtDetect output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "ring-of-cliques") {
		t.Fatal("ExtDetect missing the resolution-limit gadget row")
	}
}

func TestExtOptimalityGap(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.ExtOptimalityGap(10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FPA") || !strings.Contains(out, "worst gap") {
		t.Fatalf("ExtOptimalityGap output incomplete:\n%s", out)
	}
}

func TestExtWeightedReduced(t *testing.T) {
	var buf bytes.Buffer
	c := quickConfig(&buf)
	if err := c.ExtWeighted(quickLFR()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "intra-weighted") {
		t.Fatalf("ExtWeighted output incomplete:\n%s", out)
	}
}
