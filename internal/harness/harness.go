// Package harness regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment has a function that runs the
// workload and prints the same rows/series the paper reports; cmd/experiments
// exposes them behind -exp flags, and bench_test.go wraps them in testing.B
// benchmarks.
//
// Absolute numbers differ from the paper (different hardware, stand-in
// datasets — see DESIGN.md §2); the reproduction target is the *shape*:
// which algorithm wins, by roughly what factor, and where the crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for every experiment.
package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"dmcs/internal/clique"
	"dmcs/internal/dataset"
	"dmcs/internal/detect"
	core "dmcs/internal/dmcs"
	"dmcs/internal/graph"
	"dmcs/internal/kcore"
	"dmcs/internal/kecc"
	"dmcs/internal/ktruss"
	"dmcs/internal/metrics"
	"dmcs/internal/wu2015"
)

// Algorithms in the paper's naming.
const (
	AlgoClique    = "clique"
	AlgoKC        = "kc"
	AlgoKT        = "kt"
	AlgoKECC      = "kecc"
	AlgoGN        = "GN"
	AlgoCNM       = "CNM"
	AlgoICWI      = "icwi2008"
	AlgoHuang     = "huang2015"
	AlgoWu        = "wu2015"
	AlgoHighCore  = "highcore"
	AlgoHighTruss = "hightruss"
	AlgoNCA       = "NCA"
	AlgoFPA       = "FPA"
	AlgoNCADR     = "NCA-DR"
	AlgoFPADMG    = "FPA-DMG"
)

// Config holds global experiment knobs. DefaultConfig reproduces the
// paper's settings; tests shrink the sizes.
type Config struct {
	K            int           // parameter k for kc/kt(−1)/kecc (paper: kc,kecc k=3; kt k=4)
	NumQuerySets int           // query sets per dataset (paper: 20, small: 10)
	QuerySize    int           // nodes per query set
	Timeout      time.Duration // per-run cap for the slow algorithms
	Seed         int64
	Out          io.Writer
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig(out io.Writer) Config {
	return Config{
		K:            3,
		NumQuerySets: 20,
		QuerySize:    1,
		Timeout:      60 * time.Second,
		Seed:         1,
		Out:          out,
	}
}

// naLimits mirror the paper's "we only report the results when the
// baseline algorithms return a result within 24 hours": algorithms whose
// complexity explodes are skipped (reported NA) beyond these sizes.
var naLimits = map[string]struct{ maxN, maxM int }{
	AlgoGN:     {2000, 4000},
	AlgoCNM:    {30000, 300000},
	AlgoClique: {3000, 10000},
	AlgoICWI:   {5000, 100000},
	AlgoWu:     {20000, 400000},
	AlgoNCA:    {150000, 2000000},
	AlgoNCADR:  {150000, 2000000},
}

// ErrNA marks runs skipped by the naLimits policy.
var ErrNA = fmt.Errorf("harness: skipped (exceeds the 24h-policy size limit)")

// Run executes one community search. k is the core/truss/connectivity
// parameter where applicable (kt uses k+1 following the paper's
// "(k+1)-truss contains k-core" convention).
func (c Config) Run(algo string, g *graph.Graph, q []graph.Node) ([]graph.Node, time.Duration, error) {
	if lim, ok := naLimits[algo]; ok {
		if g.NumNodes() > lim.maxN || g.NumEdges() > lim.maxM {
			return nil, 0, ErrNA
		}
	}
	start := time.Now()
	var comm []graph.Node
	var err error
	switch algo {
	case AlgoClique:
		comm, _ = clique.DensestPercolationCommunity(g, q[0])
	case AlgoKC:
		comm = kcore.Community(g, q, c.K)
	case AlgoKT:
		comm = ktruss.Community(g, q[:1], c.K+1)
	case AlgoKECC:
		comm = kecc.Community(g, q, c.K, c.Seed)
	case AlgoGN:
		comm = detect.GirvanNewman(g, q, 0)
	case AlgoCNM:
		comm = detect.CNM(g, q)
	case AlgoICWI:
		comm = detect.ICWI2008(g, q)
	case AlgoHuang:
		comm = ktruss.ClosestTruss(g, q)
	case AlgoWu:
		comm = wu2015.Search(g, q, wu2015.Options{Eta: 0.5})
	case AlgoHighCore:
		comm, _ = kcore.HighestCore(g, q)
	case AlgoHighTruss:
		comm, _ = ktruss.HighestTruss(g, q)
	case AlgoNCA, AlgoFPA, AlgoNCADR, AlgoFPADMG:
		var res *core.Result
		res, err = core.Search(g, q, variantOf(algo), core.Options{Timeout: c.Timeout, LayerPruning: algo == AlgoFPA})
		if res != nil {
			comm = res.Community
		}
	default:
		err = fmt.Errorf("harness: unknown algorithm %q", algo)
	}
	elapsed := time.Since(start)
	if err != nil {
		return nil, elapsed, err
	}
	if len(comm) == 0 {
		return nil, elapsed, fmt.Errorf("harness: %s returned no community", algo)
	}
	return comm, elapsed, nil
}

func variantOf(algo string) core.Variant {
	switch algo {
	case AlgoNCA:
		return core.VariantNCA
	case AlgoNCADR:
		return core.VariantNCADR
	case AlgoFPADMG:
		return core.VariantFPADMG
	default:
		return core.VariantFPA
	}
}

// Score is the per-query-set evaluation of one algorithm run.
type Score struct {
	NMI, ARI, F1 float64
	Size         int
	Elapsed      time.Duration
	OK           bool
}

// Evaluate runs algo on every query set of d and scores each run against
// the ground truth. For overlapping ground truth (the paper's Section 6.3
// protocol) each run is scored against every ground-truth community
// containing the query and the best value is kept.
func (c Config) Evaluate(d *dataset.Dataset, algo string, querySets [][]graph.Node) []Score {
	scores := make([]Score, 0, len(querySets))
	n := d.G.NumNodes()
	for _, q := range querySets {
		comm, elapsed, err := c.Run(algo, d.G, q)
		if err != nil {
			scores = append(scores, Score{Elapsed: elapsed})
			continue
		}
		var s Score
		s.OK = true
		s.Elapsed = elapsed
		s.Size = len(comm)
		if d.Overlap {
			truths := d.CommunityOf(q[0])
			s.NMI = metrics.BestAgainst(comm, truths, n, metrics.NMI)
			s.ARI = metrics.BestAgainst(comm, truths, n, metrics.ARI)
			s.F1 = metrics.BestAgainst(comm, truths, n, func(f, t []graph.Node, n int) float64 {
				return metrics.FScore(f, t, n)
			})
		} else {
			truth := groundTruthOf(d, q)
			if truth == nil {
				scores = append(scores, Score{Elapsed: elapsed})
				continue
			}
			s.NMI = metrics.NMI(comm, truth, n)
			s.ARI = metrics.ARI(comm, truth, n)
			s.F1 = metrics.FScore(comm, truth, n)
		}
		scores = append(scores, s)
	}
	return scores
}

// groundTruthOf returns the ground-truth community containing every query
// node, or nil (the paper: "if there are multiple query nodes and they are
// not in the same ground-truth community, this evaluation is not
// applicable").
func groundTruthOf(d *dataset.Dataset, q []graph.Node) []graph.Node {
	for _, cm := range d.Communities {
		in := make(map[graph.Node]bool, len(cm))
		for _, u := range cm {
			in[u] = true
		}
		all := true
		for _, u := range q {
			if !in[u] {
				all = false
				break
			}
		}
		if all {
			return cm
		}
	}
	return nil
}

// Aggregate reduces per-query scores to the medians the paper reports.
type Aggregate struct {
	NMI, ARI, F1 float64
	MeanSize     float64
	MedianSec    float64
	Succeeded    int
	Total        int
}

// Aggregate computes median NMI/ARI/F1 and times over successful runs.
func AggregateScores(scores []Score) Aggregate {
	var a Aggregate
	a.Total = len(scores)
	var nmi, ari, f1, secs []float64
	var sizeSum float64
	for _, s := range scores {
		if !s.OK {
			continue
		}
		a.Succeeded++
		nmi = append(nmi, s.NMI)
		ari = append(ari, s.ARI)
		f1 = append(f1, s.F1)
		secs = append(secs, s.Elapsed.Seconds())
		sizeSum += float64(s.Size)
	}
	a.NMI = metrics.Median(nmi)
	a.ARI = metrics.Median(ari)
	a.F1 = metrics.Median(f1)
	a.MedianSec = metrics.Median(secs)
	if a.Succeeded > 0 {
		a.MeanSize = sizeSum / float64(a.Succeeded)
	}
	return a
}

// table is a small helper for printing aligned experiment tables.
type table struct {
	w    *tabwriter.Writer
	rows int
}

func newTable(out io.Writer, header ...string) *table {
	t := &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, h)
	}
	fmt.Fprintln(t.w)
	return t
}

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.4f", v)
		default:
			fmt.Fprint(t.w, v)
		}
	}
	fmt.Fprintln(t.w)
	t.rows++
}

// flush drains the tabwriter; a report-stream write error has no
// recovery beyond the fact that later writes will fail too.
func (t *table) flush() { _ = t.w.Flush() }

// fmtAgg renders an aggregate cell, or NA when nothing succeeded.
func fmtAgg(a Aggregate, metric string) string {
	if a.Succeeded == 0 {
		return "NA"
	}
	switch metric {
	case "nmi":
		return fmt.Sprintf("%.4f", a.NMI)
	case "ari":
		return fmt.Sprintf("%.4f", a.ARI)
	case "f1":
		return fmt.Sprintf("%.4f", a.F1)
	case "sec":
		return fmt.Sprintf("%.4f", a.MedianSec)
	case "size":
		return fmt.Sprintf("%.1f", a.MeanSize)
	}
	return "?"
}

// sortedKeys returns map keys in ascending order (tables must be stable).
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
