// Package modularity implements every community goodness function used in
// the paper: classic modularity (Definition 1), the proposed density
// modularity (Definition 2), the updated density modularity and density
// modularity gain Λ (Definitions 5–6), the density ratio Θ (Definition 7),
// and the generalized modularity density comparator of Section 6.2.3.
//
// All functions exist in two forms: one that takes a graph and an explicit
// node set, and a "parts" form over the sufficient statistics
// (l_C, d_C, |C|, |E|) so peeling algorithms can evaluate objectives
// incrementally without touching the graph.
package modularity

import (
	"math"
	"slices"

	"dmcs/internal/graph"
)

// Stats holds the sufficient statistics of a community C within a graph G:
// the number of internal edges l_C, the sum over C of node degrees *in G*
// (d_C), and |C|. Every modularity variant is a function of these plus |E|.
type Stats struct {
	L    int64 // internal edge count l_C
	D    int64 // sum of degrees in G over C (d_C)
	Size int   // |C|
}

// StatsOf computes the sufficient statistics of the node set C in g.
// Duplicate nodes in C are counted once.
func StatsOf(g *graph.Graph, c []graph.Node) Stats {
	in := make(map[graph.Node]bool, len(c))
	for _, u := range c {
		in[u] = true
	}
	var s Stats
	s.Size = len(in)
	for u := range in {
		s.D += int64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			if in[v] && u < v {
				s.L++
			}
		}
	}
	return s
}

// StatsOfView computes the sufficient statistics of the alive set of v.
func StatsOfView(v *graph.View) Stats {
	return Stats{
		L:    int64(v.NumAliveEdges()),
		D:    v.SumDegrees(),
		Size: v.NumAlive(),
	}
}

// Classic evaluates the classic modularity of Definition 1:
//
//	CM(G,C) = (1/2|E|) (2 l_C − d_C²/(2|E|)) = l_C/|E| − d_C²/(4|E|²).
//
// It returns 0 for empty graphs.
func Classic(g *graph.Graph, c []graph.Node) float64 {
	return ClassicParts(StatsOf(g, c), int64(g.NumEdges()))
}

// ClassicParts is Classic over precomputed statistics.
func ClassicParts(s Stats, m int64) float64 {
	return ClassicPartsF(float64(s.L), float64(s.D), float64(m))
}

// ClassicPartsF is the float form of ClassicParts, shared by the weighted
// generalization: wC is the internal edge weight, dC the node-weight sum,
// wG the total edge weight.
func ClassicPartsF(wC, dC, wG float64) float64 {
	if wG == 0 {
		return 0
	}
	return wC/wG - dC*dC/(4*wG*wG)
}

// Density evaluates the paper's density modularity (Definition 2,
// unweighted form):
//
//	DM(G,C) = (1/2|C|) (2 l_C − d_C²/(2|E|)) = l_C/|C| − d_C²/(4|E||C|).
//
// It returns 0 for empty communities.
func Density(g *graph.Graph, c []graph.Node) float64 {
	return DensityParts(StatsOf(g, c), int64(g.NumEdges()))
}

// DensityParts is Density over precomputed statistics.
func DensityParts(s Stats, m int64) float64 {
	return DensityPartsF(float64(s.L), float64(s.D), float64(m), s.Size)
}

// DensityPartsF is the float form of DensityParts, which is exactly the
// weighted Definition 2: DM = (wC − dC²/(4 wG)) / |C|.
func DensityPartsF(wC, dC, wG float64, size int) float64 {
	if size == 0 || wG == 0 {
		return 0
	}
	n := float64(size)
	return wC/n - dC*dC/(4*wG*n)
}

// DensityWeighted evaluates Definition 2 on a weighted graph:
//
//	DM(G,C) = (1/|C|) (w_C − d_C²/(4 w_G)),
//
// where w_C is the internal edge-weight sum, d_C the sum of node weights
// (adjacent edge-weight sums), and w_G the total edge weight of G. On an
// unweighted graph it coincides with Density.
func DensityWeighted(g *graph.Graph, c []graph.Node) float64 {
	in := make(map[graph.Node]bool, len(c))
	for _, u := range c {
		in[u] = true
	}
	if len(in) == 0 {
		return 0
	}
	wg := g.TotalWeight()
	if wg == 0 {
		return 0
	}
	// Sorted sweep: summing in map order would make the low bits of the
	// score differ run to run.
	nodes := make([]graph.Node, 0, len(in))
	for u := range in {
		nodes = append(nodes, u)
	}
	slices.Sort(nodes)
	var wc, dc float64
	for _, u := range nodes {
		dc += g.WeightedDegree(u)
		for _, v := range g.Neighbors(u) {
			if in[v] && u < v {
				wc += g.EdgeWeight(u, v)
			}
		}
	}
	return (wc - dc*dc/(4*wg)) / float64(len(in))
}

// GeneralizedDensity evaluates the generalized modularity density
// comparator used in Section 6.2.3 (Guo, Singh & Bassler 2020): classic
// modularity weighted by the community's internal edge density raised to
// the power chi,
//
//	GMD(C) = CM(C) · ρ_C^χ,  ρ_C = 2 l_C / (|C|(|C|−1)),
//
// with ρ_C = 0 for singleton communities. χ = 1 reproduces the default
// setting; χ = 0 degenerates to classic modularity.
func GeneralizedDensity(g *graph.Graph, c []graph.Node, chi float64) float64 {
	return GeneralizedDensityParts(StatsOf(g, c), int64(g.NumEdges()), chi)
}

// GeneralizedDensityParts is GeneralizedDensity over precomputed statistics.
func GeneralizedDensityParts(s Stats, m int64, chi float64) float64 {
	return GeneralizedDensityPartsF(float64(s.L), float64(s.D), float64(m), s.Size, chi)
}

// GeneralizedDensityPartsF is the float (weighted) form of
// GeneralizedDensityParts.
func GeneralizedDensityPartsF(wC, dC, wG float64, size int, chi float64) float64 {
	cm := ClassicPartsF(wC, dC, wG)
	if chi == 0 {
		return cm
	}
	if size <= 1 {
		return 0
	}
	rho := 2 * wC / (float64(size) * float64(size-1))
	return cm * math.Pow(rho, chi)
}

// GraphDensity is the classic density |E[C]| / |C| (Khuller & Saha 2009),
// the absolute-cohesiveness half of the paper's motivation.
func GraphDensity(s Stats) float64 {
	if s.Size == 0 {
		return 0
	}
	return float64(s.L) / float64(s.Size)
}

// UpdatedDensity evaluates Definition 5: the density modularity of S \ {v},
//
//	(l_S − k_{v,S}) / (|S|−1) − (d_S − d_v)² / (4|E| (|S|−1)),
//
// where kv is the number of edges from v into S and dv is v's degree in G.
func UpdatedDensity(s Stats, m int64, kv, dv int64) float64 {
	if s.Size <= 1 || m == 0 {
		return 0
	}
	n1 := float64(s.Size - 1)
	rest := float64(s.D - dv)
	return (float64(s.L-kv))/n1 - rest*rest/(4*float64(m)*n1)
}

// Lambda evaluates the density modularity gain of Definition 6:
//
//	Λ_S(v) = −4|E| k_{v,S} + 2 d_S d_v − d_v².
//
// Among candidate removable nodes, maximizing Λ is equivalent to maximizing
// the updated density modularity (the dropped terms are constant across
// candidates). Lemma 4: Λ is *unstable* — removing u changes d_S and hence
// the Λ of every node, connected to u or not.
func Lambda(m, dS, kv, dv int64) float64 {
	return float64(-4*m*kv + 2*dS*dv - dv*dv)
}

// LambdaF is the float form of Lambda used on weighted graphs, where kv is
// the edge weight from v into S, dv the node weight of v, dS the community
// node-weight sum, and wG the total edge weight.
func LambdaF(wG, dS, kv, dv float64) float64 {
	return -4*wG*kv + 2*dS*dv - dv*dv
}

// Theta evaluates the density ratio of Definition 7: Θ_S(v) = d_v / k_{v,S}
// where d_v is v's degree in G (fixed) and k_{v,S} its degree into the
// current subgraph. Nodes with no edge into S get +Inf (removing them is
// free). Lemma 5: Θ is *stable* — removing u only changes Θ of u's
// neighbors.
func Theta(dv, kv int64) float64 {
	return ThetaF(float64(dv), float64(kv))
}

// ThetaF is the float form of Theta used on weighted graphs.
func ThetaF(dv, kv float64) float64 {
	if kv == 0 {
		return math.Inf(1)
	}
	return dv / kv
}

// SuffersFreeRider reports whether goodness function f suffers from the
// free-rider effect (Definition 3) for the identified community S against
// an optimum S*: true iff f(S ∪ S*) ≥ f(S).
func SuffersFreeRider(f func([]graph.Node) float64, s, sStar []graph.Node) bool {
	union := make(map[graph.Node]bool, len(s)+len(sStar))
	for _, u := range s {
		union[u] = true
	}
	for _, u := range sStar {
		union[u] = true
	}
	merged := make([]graph.Node, 0, len(union))
	for u := range union {
		merged = append(merged, u)
	}
	return f(merged) >= f(s)
}
