package modularity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmcs/internal/graph"
)

const eps = 1e-6

// figure1Toy builds a graph consistent with the paper's Figure 1 numbers:
// |E| = 26, community A with l=6, d=14, |A|=4 and A∪B with l=14, d=28,
// |A∪B|=8. A and B are K4s joined by two cross edges; the remaining eight
// nodes form two disjoint K4s.
func figure1Toy() (g *graph.Graph, a, ab []graph.Node) {
	b := graph.NewBuilder(16)
	k4 := func(base graph.Node) {
		for i := graph.Node(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	k4(0)  // A = {0,1,2,3}
	k4(4)  // B = {4,5,6,7}
	k4(8)  // filler
	k4(12) // filler
	b.AddEdge(0, 4)
	b.AddEdge(1, 5)
	g = b.Build()
	a = []graph.Node{0, 1, 2, 3}
	ab = []graph.Node{0, 1, 2, 3, 4, 5, 6, 7}
	return g, a, ab
}

func TestFigure1GraphShape(t *testing.T) {
	g, a, ab := figure1Toy()
	if g.NumEdges() != 26 {
		t.Fatalf("|E|=%d want 26", g.NumEdges())
	}
	sa := StatsOf(g, a)
	if sa.L != 6 || sa.D != 14 || sa.Size != 4 {
		t.Fatalf("stats(A)=%+v", sa)
	}
	sab := StatsOf(g, ab)
	if sab.L != 14 || sab.D != 28 || sab.Size != 8 {
		t.Fatalf("stats(A∪B)=%+v", sab)
	}
}

// Example 1 of the paper: classic modularity of A and A∪B.
func TestPaperExample1ClassicModularity(t *testing.T) {
	g, a, ab := figure1Toy()
	if got := Classic(g, a); math.Abs(got-0.158284) > eps {
		t.Fatalf("CM(A)=%v want 0.158284", got)
	}
	if got := Classic(g, ab); math.Abs(got-0.2485207) > eps {
		t.Fatalf("CM(A∪B)=%v want 0.2485207", got)
	}
	// The free-rider effect of classic modularity: CM(A∪B) > CM(A).
	if Classic(g, ab) <= Classic(g, a) {
		t.Fatal("classic modularity should prefer the merged community")
	}
}

// Example 2 of the paper: density modularity of A and A∪B.
func TestPaperExample2DensityModularity(t *testing.T) {
	g, a, ab := figure1Toy()
	if got := Density(g, a); math.Abs(got-1.028846) > eps {
		t.Fatalf("DM(A)=%v want 1.028846", got)
	}
	if got := Density(g, ab); math.Abs(got-0.8076923) > eps {
		t.Fatalf("DM(A∪B)=%v want 0.8076923", got)
	}
	// Density modularity prefers A, avoiding the free rider B.
	if Density(g, a) <= Density(g, ab) {
		t.Fatal("density modularity should prefer community A")
	}
}

// Example 3 of the paper: ring of 30 6-cliques, merged vs split community,
// evaluated from the sufficient statistics given in the text.
func TestPaperExample3RingOfCliques(t *testing.T) {
	const m = 480
	merged := Stats{L: 31, D: 64, Size: 12}
	split := Stats{L: 15, D: 32, Size: 6}
	if got := ClassicParts(merged, m); math.Abs(got-0.06013889) > eps {
		t.Fatalf("CM(merged)=%v want 0.06013889", got)
	}
	if got := ClassicParts(split, m); math.Abs(got-0.03013889) > eps {
		t.Fatalf("CM(split)=%v want 0.03013889", got)
	}
	if got := DensityParts(merged, m); math.Abs(got-2.405556) > eps {
		t.Fatalf("DM(merged)=%v want 2.405556", got)
	}
	if got := DensityParts(split, m); math.Abs(got-2.411111) > eps {
		t.Fatalf("DM(split)=%v want 2.411111", got)
	}
	// Resolution limit: CM prefers merged, DM prefers split.
	if ClassicParts(merged, m) <= ClassicParts(split, m) {
		t.Fatal("classic modularity should prefer merged (resolution limit)")
	}
	if DensityParts(split, m) <= DensityParts(merged, m) {
		t.Fatal("density modularity should prefer the single clique")
	}
}

func TestStatsOfDedupsNodes(t *testing.T) {
	g, a, _ := figure1Toy()
	dup := append(append([]graph.Node{}, a...), a...)
	if s := StatsOf(g, dup); s.Size != 4 || s.L != 6 {
		t.Fatalf("dedup failed: %+v", s)
	}
}

func TestStatsOfViewMatchesStatsOf(t *testing.T) {
	g, _, ab := figure1Toy()
	v := graph.NewViewOf(g, ab)
	sv := StatsOfView(v)
	ss := StatsOf(g, ab)
	if sv != ss {
		t.Fatalf("view stats %+v != set stats %+v", sv, ss)
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.Node{{0, 1}})
	if Classic(g, nil) != 0 {
		t.Fatal("CM(∅) should be 0")
	}
	if Density(g, nil) != 0 {
		t.Fatal("DM(∅) should be 0")
	}
	empty := graph.FromEdges(2, nil)
	if Classic(empty, []graph.Node{0}) != 0 || Density(empty, []graph.Node{0}) != 0 {
		t.Fatal("edgeless graph should score 0")
	}
	if GeneralizedDensity(g, []graph.Node{0}, 1) != 0 {
		t.Fatal("GMD of singleton should be 0")
	}
}

func TestDensityWeightedMatchesUnweighted(t *testing.T) {
	g, a, _ := figure1Toy()
	if got, want := DensityWeighted(g, a), Density(g, a); math.Abs(got-want) > eps {
		t.Fatalf("weighted DM=%v want %v on unweighted graph", got, want)
	}
	if DensityWeighted(g, nil) != 0 {
		t.Fatal("weighted DM of empty set should be 0")
	}
}

func TestDensityWeightedScaling(t *testing.T) {
	// Doubling all edge weights must not change the *sign structure* and
	// scales DM linearly: DM' = (2w_C − (2d_C)²/(4·2w_G))/|C| = 2·DM.
	b := graph.NewBuilder(4)
	b.SetWeight(0, 1, 2)
	b.SetWeight(1, 2, 2)
	b.SetWeight(2, 3, 2)
	b.SetWeight(0, 3, 2)
	g := b.Build()
	c := []graph.Node{0, 1}
	b2 := graph.NewBuilder(4)
	b2.SetWeight(0, 1, 4)
	b2.SetWeight(1, 2, 4)
	b2.SetWeight(2, 3, 4)
	b2.SetWeight(0, 3, 4)
	g2 := b2.Build()
	if got, want := DensityWeighted(g2, c), 2*DensityWeighted(g, c); math.Abs(got-want) > eps {
		t.Fatalf("scaled DM=%v want %v", got, want)
	}
}

func TestGeneralizedDensityChiZeroIsClassic(t *testing.T) {
	g, a, _ := figure1Toy()
	if got, want := GeneralizedDensity(g, a, 0), Classic(g, a); math.Abs(got-want) > eps {
		t.Fatalf("GMD(χ=0)=%v want CM=%v", got, want)
	}
}

func TestGeneralizedDensityCliquePreference(t *testing.T) {
	// For the ring-of-cliques statistics, GMD with χ=1 should (like DM)
	// prefer the split clique: split has internal density 1.
	const m = 480
	merged := GeneralizedDensityParts(Stats{L: 31, D: 64, Size: 12}, m, 1)
	split := GeneralizedDensityParts(Stats{L: 15, D: 32, Size: 6}, m, 1)
	if split <= merged {
		t.Fatalf("GMD split=%v merged=%v; split should win", split, merged)
	}
}

func TestGraphDensity(t *testing.T) {
	if got := GraphDensity(Stats{L: 6, Size: 4}); got != 1.5 {
		t.Fatalf("density=%v want 1.5", got)
	}
	if GraphDensity(Stats{}) != 0 {
		t.Fatal("density of empty stats should be 0")
	}
}

func TestUpdatedDensityMatchesDirectRecomputation(t *testing.T) {
	g, _, ab := figure1Toy()
	m := int64(g.NumEdges())
	s := StatsOf(g, ab)
	// Remove node 7 (in B): recompute directly and via Definition 5.
	var rest []graph.Node
	for _, u := range ab {
		if u != 7 {
			rest = append(rest, u)
		}
	}
	kv := int64(0)
	for _, v := range g.Neighbors(7) {
		for _, u := range ab {
			if u == v {
				kv++
			}
		}
	}
	dv := int64(g.Degree(7))
	got := UpdatedDensity(s, m, kv, dv)
	want := Density(g, rest)
	if math.Abs(got-want) > eps {
		t.Fatalf("UpdatedDensity=%v direct=%v", got, want)
	}
}

// Property: Definition 5 always equals the direct recomputation of DM on
// S \ {v}, for random graphs, random S and random v in S.
func TestUpdatedDensityProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(20)
		for i := 0; i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				if rng.Float64() < 0.2 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		if g.NumEdges() == 0 {
			return true
		}
		perm := rng.Perm(20)
		size := 2 + rng.Intn(10)
		set := make([]graph.Node, size)
		for i := range set {
			set[i] = graph.Node(perm[i])
		}
		v := set[rng.Intn(size)]
		var rest []graph.Node
		inSet := make(map[graph.Node]bool)
		for _, u := range set {
			inSet[u] = true
			if u != v {
				rest = append(rest, u)
			}
		}
		var kv int64
		for _, w := range g.Neighbors(v) {
			if inSet[w] {
				kv++
			}
		}
		s := StatsOf(g, set)
		got := UpdatedDensity(s, int64(g.NumEdges()), kv, int64(g.Degree(v)))
		want := Density(g, rest)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ranking candidates by Λ is equivalent to ranking them by the
// updated density modularity (Definition 6 drops only candidate-independent
// terms).
func TestLambdaOrderEquivalentToUpdatedDensity(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(16)
		for i := 0; i < 16; i++ {
			for j := i + 1; j < 16; j++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		if g.NumEdges() == 0 {
			return true
		}
		set := make([]graph.Node, 0, 10)
		inSet := make(map[graph.Node]bool)
		for _, p := range rng.Perm(16)[:10] {
			set = append(set, graph.Node(p))
			inSet[graph.Node(p)] = true
		}
		s := StatsOf(g, set)
		m := int64(g.NumEdges())
		kOf := func(v graph.Node) int64 {
			var k int64
			for _, w := range g.Neighbors(v) {
				if inSet[w] {
					k++
				}
			}
			return k
		}
		// compare every candidate pair
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				u, v := set[i], set[j]
				lu := Lambda(m, s.D, kOf(u), int64(g.Degree(u)))
				lv := Lambda(m, s.D, kOf(v), int64(g.Degree(v)))
				du := UpdatedDensity(s, m, kOf(u), int64(g.Degree(u)))
				dv := UpdatedDensity(s, m, kOf(v), int64(g.Degree(v)))
				if (lu > lv && du < dv-1e-9) || (lu < lv && du > dv+1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestThetaBasics(t *testing.T) {
	if got := Theta(6, 2); got != 3 {
		t.Fatalf("Θ=%v want 3", got)
	}
	if !math.IsInf(Theta(4, 0), 1) {
		t.Fatal("Θ with k=0 should be +Inf")
	}
}

// Lemma 5: Θ is stable — removing a node changes Θ only for its neighbors.
func TestThetaStability(t *testing.T) {
	g, _, ab := figure1Toy()
	v := graph.NewViewOf(g, ab)
	theta := func(u graph.Node) float64 {
		return Theta(int64(g.Degree(u)), int64(v.DegreeIn(u)))
	}
	before := map[graph.Node]float64{}
	for _, u := range ab {
		before[u] = theta(u)
	}
	removed := graph.Node(7)
	nbr := map[graph.Node]bool{}
	for _, w := range g.Neighbors(removed) {
		nbr[w] = true
	}
	v.Remove(removed)
	for _, u := range ab {
		if u == removed {
			continue
		}
		after := theta(u)
		if !nbr[u] && math.Abs(after-before[u]) > eps {
			t.Fatalf("Θ of non-neighbor %d changed: %v -> %v", u, before[u], after)
		}
	}
}

// Lemma 4: Λ is unstable — removing a node changes Λ of non-neighbors too
// (because d_S shrinks).
func TestLambdaInstability(t *testing.T) {
	g, _, ab := figure1Toy()
	v := graph.NewViewOf(g, ab)
	m := int64(g.NumEdges())
	dS := StatsOfView(v).D
	// Node 3 (in A) is not adjacent to node 7 (in B).
	if g.HasEdge(3, 7) {
		t.Fatal("test setup: 3 and 7 must not be adjacent")
	}
	lBefore := Lambda(m, dS, int64(v.DegreeIn(3)), int64(g.Degree(3)))
	v.Remove(7)
	dS = StatsOfView(v).D
	lAfter := Lambda(m, dS, int64(v.DegreeIn(3)), int64(g.Degree(3)))
	if lBefore == lAfter {
		t.Fatal("Λ of a non-neighbor should change after removal (instability)")
	}
}

// Lemma 1 (contrapositive): whenever the classic modularity avoids the
// free-rider effect (CM(S) ≥ CM(S∪S*), with CM(S) > 0 and S* ⊄ S), density
// modularity avoids it too.
func TestLemma1FreeRiderProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(24)
		for i := 0; i < 24; i++ {
			for j := i + 1; j < 24; j++ {
				if rng.Float64() < 0.18 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		if g.NumEdges() == 0 {
			return true
		}
		perm := rng.Perm(24)
		sizeS := 2 + rng.Intn(8)
		sizeStar := 2 + rng.Intn(8)
		s := make([]graph.Node, sizeS)
		for i := range s {
			s[i] = graph.Node(perm[i])
		}
		// S* overlaps S partially, but must contain nodes outside S.
		star := make([]graph.Node, 0, sizeStar)
		overlap := rng.Intn(min(2, sizeS))
		for i := 0; i < overlap; i++ {
			star = append(star, s[i])
		}
		for i := sizeS; i < sizeS+sizeStar-overlap && i < 24; i++ {
			star = append(star, graph.Node(perm[i]))
		}
		if len(star) == overlap { // S* ⊆ S: lemma precondition violated
			return true
		}
		cm := func(c []graph.Node) float64 { return Classic(g, c) }
		dm := func(c []graph.Node) float64 { return Density(g, c) }
		if Classic(g, s) <= 0 {
			return true // lemma assumes positive modularity
		}
		if !SuffersFreeRider(cm, s, star) && SuffersFreeRider(dm, s, star) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 2 (contrapositive), disjoint-community version: with S ∩ S* = ∅,
// whenever CM avoids the resolution-limit merge, DM avoids it as well.
func TestLemma2ResolutionLimitProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(24)
		for i := 0; i < 24; i++ {
			for j := i + 1; j < 24; j++ {
				if rng.Float64() < 0.18 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		if g.NumEdges() == 0 {
			return true
		}
		perm := rng.Perm(24)
		sizeS := 2 + rng.Intn(8)
		sizeStar := 2 + rng.Intn(8)
		s := make([]graph.Node, sizeS)
		for i := range s {
			s[i] = graph.Node(perm[i])
		}
		star := make([]graph.Node, 0, sizeStar)
		for i := sizeS; i < sizeS+sizeStar && i < 24; i++ {
			star = append(star, graph.Node(perm[i]))
		}
		if len(star) == 0 || Classic(g, s) <= 0 {
			return true
		}
		cm := func(c []graph.Node) float64 { return Classic(g, c) }
		dm := func(c []graph.Node) float64 { return Density(g, c) }
		if !SuffersFreeRider(cm, s, star) && SuffersFreeRider(dm, s, star) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
