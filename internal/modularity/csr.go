package modularity

import "dmcs/internal/graph"

// This file is the CSR half of the package: the goodness functions are
// also evaluable over a packed graph.CSR snapshot, using flat membership
// masks, the packed adjacency, and the snapshot's cached weighted-degree
// table and total edge weight — no per-edge weight-map lookups. Servers
// and baselines that score many candidate communities against one graph
// build the CSR once and call these.

// StatsOfCSR computes the sufficient statistics of the node set c within
// the snapshot: internal edge count l_C, degree sum d_C (degrees in G),
// and |C|. Duplicate nodes in c are counted once. It returns exactly what
// StatsOf returns on the originating Graph.
func StatsOfCSR(csr *graph.CSR, c []graph.Node) Stats {
	in := make([]bool, csr.NumNodes())
	members := make([]graph.Node, 0, len(c))
	for _, u := range c {
		if !in[u] {
			in[u] = true
			members = append(members, u)
		}
	}
	s := Stats{Size: len(members)}
	for _, u := range members {
		s.D += int64(csr.Degree(u))
		for _, v := range csr.Neighbors(u) {
			if u < v && in[v] {
				s.L++
			}
		}
	}
	return s
}

// ClassicCSR evaluates the classic modularity of Definition 1 over the
// snapshot (see Classic).
func ClassicCSR(csr *graph.CSR, c []graph.Node) float64 {
	return ClassicParts(StatsOfCSR(csr, c), int64(csr.NumEdges()))
}

// DensityCSR evaluates the paper's density modularity (Definition 2,
// unweighted form) over the snapshot (see Density).
func DensityCSR(csr *graph.CSR, c []graph.Node) float64 {
	return DensityParts(StatsOfCSR(csr, c), int64(csr.NumEdges()))
}

// GeneralizedDensityCSR evaluates the generalized modularity density
// comparator over the snapshot (see GeneralizedDensity).
func GeneralizedDensityCSR(csr *graph.CSR, c []graph.Node, chi float64) float64 {
	return GeneralizedDensityParts(StatsOfCSR(csr, c), int64(csr.NumEdges()), chi)
}

// DensityWeightedCSR evaluates the weighted Definition 2 over the
// snapshot: DM = (w_C − d_C²/(4 w_G)) / |C|, with w_C summed over the
// packed weights, d_C over the cached node-weight table, and w_G the
// cached total. Unlike DensityWeighted on a Graph (which iterates a map
// in nondeterministic order), accumulation follows the packed adjacency,
// so repeated calls are bit-reproducible.
func DensityWeightedCSR(csr *graph.CSR, c []graph.Node) float64 {
	in := make([]bool, csr.NumNodes())
	members := make([]graph.Node, 0, len(c))
	for _, u := range c {
		if !in[u] {
			in[u] = true
			members = append(members, u)
		}
	}
	if len(members) == 0 {
		return 0
	}
	wg := csr.TotalWeight()
	if wg == 0 {
		return 0
	}
	wdeg := csr.WeightedDegrees()
	var wc, dc float64
	for _, u := range members {
		dc += wdeg[u]
		adj := csr.Neighbors(u)
		if ws := csr.NeighborWeights(u); ws != nil {
			for i, v := range adj {
				if u < v && in[v] {
					wc += ws[i]
				}
			}
		} else {
			for _, v := range adj {
				if u < v && in[v] {
					wc++
				}
			}
		}
	}
	return (wc - dc*dc/(4*wg)) / float64(len(members))
}
