package modularity

import (
	"math"
	"math/rand"
	"testing"

	"dmcs/internal/graph"
)

func randomSet(rng *rand.Rand, n, size int) []graph.Node {
	perm := rng.Perm(n)
	out := make([]graph.Node, 0, size)
	for _, u := range perm[:size] {
		out = append(out, graph.Node(u))
	}
	return out
}

func TestStatsOfCSRMatchesStatsOf(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.15 {
					b.AddEdge(graph.Node(u), graph.Node(v))
				}
			}
		}
		g := b.Build()
		csr := graph.NewCSR(g)
		set := randomSet(rng, n, 1+rng.Intn(n))
		want := StatsOf(g, set)
		got := StatsOfCSR(csr, set)
		if want != got {
			t.Fatalf("trial %d: StatsOfCSR=%+v want %+v", trial, got, want)
		}
		// duplicates must be counted once
		dup := append(append([]graph.Node(nil), set...), set[0], set[len(set)-1])
		if got := StatsOfCSR(csr, dup); got != want {
			t.Fatalf("trial %d: duplicates changed stats: %+v want %+v", trial, got, want)
		}
	}
}

func TestCSRGoodnessMatchesGraphForms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(30)
	for u := 0; u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(graph.Node(u), graph.Node(v))
			}
		}
	}
	g := b.Build()
	csr := graph.NewCSR(g)
	for trial := 0; trial < 10; trial++ {
		set := randomSet(rng, 30, 2+rng.Intn(20))
		if got, want := ClassicCSR(csr, set), Classic(g, set); got != want {
			t.Fatalf("ClassicCSR=%v want %v", got, want)
		}
		if got, want := DensityCSR(csr, set), Density(g, set); got != want {
			t.Fatalf("DensityCSR=%v want %v", got, want)
		}
		if got, want := GeneralizedDensityCSR(csr, set, 1.5), GeneralizedDensity(g, set, 1.5); got != want {
			t.Fatalf("GeneralizedDensityCSR=%v want %v", got, want)
		}
	}
}

func TestDensityWeightedCSRMatchesMapForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := graph.NewBuilder(25)
	for u := 0; u < 25; u++ {
		for v := u + 1; v < 25; v++ {
			if rng.Float64() < 0.25 {
				b.SetWeight(graph.Node(u), graph.Node(v), 0.5+3*rng.Float64())
			}
		}
	}
	g := b.Build()
	csr := graph.NewCSR(g)
	for trial := 0; trial < 10; trial++ {
		set := randomSet(rng, 25, 2+rng.Intn(15))
		got := DensityWeightedCSR(csr, set)
		want := DensityWeighted(g, set)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("DensityWeightedCSR=%v want %v", got, want)
		}
	}
	// unweighted snapshots fall back to unit weights and the unweighted DM
	gu := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	cu := graph.NewCSR(gu)
	set := []graph.Node{0, 1, 2}
	if got, want := DensityWeightedCSR(cu, set), Density(gu, set); math.Abs(got-want) > 1e-12 {
		t.Fatalf("unweighted DensityWeightedCSR=%v want %v", got, want)
	}
}
