package ktruss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmcs/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	return b.Build()
}

func TestDecomposeClique(t *testing.T) {
	// every edge of K5 participates in 3 triangles: trussness 5
	d := Decompose(complete(5))
	for id, tr := range d.Truss {
		if tr != 5 {
			t.Fatalf("truss[%d]=%d want 5", id, tr)
		}
	}
	if d.MaxTruss() != 5 {
		t.Fatalf("MaxTruss=%d", d.MaxTruss())
	}
}

func TestDecomposeTriangleWithTail(t *testing.T) {
	// triangle 0-1-2 plus pendant edge 2-3
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	d := Decompose(g)
	if tr := d.Trussness(0, 1); tr != 3 {
		t.Fatalf("triangle edge trussness=%d want 3", tr)
	}
	if tr := d.Trussness(2, 3); tr != 2 {
		t.Fatalf("pendant edge trussness=%d want 2", tr)
	}
	if d.Trussness(0, 3) != 0 {
		t.Fatal("missing edge should have trussness 0")
	}
}

// naive trussness: repeatedly delete edges with support < k-2 and record
// the level at which each edge disappears.
func naiveTruss(g *graph.Graph) map[[2]graph.Node]int {
	type edge = [2]graph.Node
	alive := make(map[edge]bool)
	g.Edges(func(u, v graph.Node) bool {
		alive[edge{u, v}] = true
		return true
	})
	has := func(u, v graph.Node) bool {
		if u > v {
			u, v = v, u
		}
		return alive[edge{u, v}]
	}
	support := func(u, v graph.Node) int {
		c := 0
		for _, w := range g.Neighbors(u) {
			if has(u, w) && has(v, w) && g.HasEdge(v, w) {
				c++
			}
		}
		return c
	}
	out := make(map[edge]int)
	for k := 3; len(alive) > 0; k++ {
		for {
			var doomed []edge
			for e := range alive {
				if support(e[0], e[1]) < k-2 {
					doomed = append(doomed, e)
				}
			}
			if len(doomed) == 0 {
				break
			}
			for _, e := range doomed {
				out[e] = k - 1
				delete(alive, e)
			}
		}
	}
	return out
}

func TestDecomposeMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(18)
		for i := 0; i < 18; i++ {
			for j := i + 1; j < 18; j++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		d := Decompose(g)
		want := naiveTruss(g)
		for id, e := range d.Edges {
			if int(d.Truss[id]) != want[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// twoK4sViaTrianglePath: two K4s joined by a single edge — that edge has
// trussness 2, so the 3-truss splits into the two K4s.
func twoK4s() *graph.Graph {
	b := graph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			b.AddEdge(graph.Node(i+4), graph.Node(j+4))
		}
	}
	b.AddEdge(3, 4)
	return b.Build()
}

func TestCommunityTrussSplit(t *testing.T) {
	g := twoK4s()
	c := Community(g, []graph.Node{0}, 3)
	if len(c) != 4 {
		t.Fatalf("3-truss community=%v want the K4", c)
	}
	for _, u := range c {
		if u >= 4 {
			t.Fatalf("3-truss crossed the bridge: %v", c)
		}
	}
	// 2-truss includes the bridge → whole graph
	if c := Community(g, []graph.Node{0}, 2); len(c) != 8 {
		t.Fatalf("2-truss community size=%d want 8", len(c))
	}
	// multi-query across the bridge fails at k=3
	if c := Community(g, []graph.Node{0, 7}, 3); c != nil {
		t.Fatalf("cross-bridge 3-truss should be nil, got %v", c)
	}
	// infeasible k
	if Community(g, []graph.Node{0}, 5) != nil {
		t.Fatal("5-truss of K4 should not exist")
	}
	if Community(g, nil, 3) != nil {
		t.Fatal("empty query should return nil")
	}
}

func TestHighestTruss(t *testing.T) {
	g := twoK4s()
	c, k := HighestTruss(g, []graph.Node{0})
	if k != 4 || len(c) != 4 {
		t.Fatalf("hightruss k=%d |c|=%d want 4/4", k, len(c))
	}
	// across the bridge only the 2-truss connects them
	c, k = HighestTruss(g, []graph.Node{0, 7})
	if k != 2 || len(c) != 8 {
		t.Fatalf("cross hightruss k=%d |c|=%d want 2/8", k, len(c))
	}
	if c, k := HighestTruss(graph.FromEdges(3, nil), []graph.Node{0}); c != nil || k != 0 {
		t.Fatal("edgeless hightruss should be nil")
	}
}

func TestClosestTrussSingleQuery(t *testing.T) {
	g := twoK4s()
	c := ClosestTruss(g, []graph.Node{0})
	if len(c) != 4 {
		t.Fatalf("closest truss=%v want the K4", c)
	}
}

func TestClosestTrussShrinksLongTruss(t *testing.T) {
	// A chain of triangles: 0-1-2, 2-3-4, 4-5-6, ... Every edge has
	// trussness 3. The closest truss community around node 0 should not
	// keep the whole chain.
	b := graph.NewBuilder(9)
	for i := 0; i+2 < 9; i += 2 {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
		b.AddEdge(graph.Node(i+1), graph.Node(i+2))
		b.AddEdge(graph.Node(i), graph.Node(i+2))
	}
	g := b.Build()
	full := Community(g, []graph.Node{0}, 3)
	c := ClosestTruss(g, []graph.Node{0})
	if len(c) == 0 {
		t.Fatal("closest truss should not be empty")
	}
	if len(c) >= len(full) {
		t.Fatalf("closest truss |c|=%d should shrink below the full 3-truss %d", len(c), len(full))
	}
	// must still contain the query node
	found := false
	for _, u := range c {
		if u == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("closest truss must contain the query")
	}
}

func TestClosestTrussMultiQuery(t *testing.T) {
	g := complete(6)
	c := ClosestTruss(g, []graph.Node{0, 5})
	if len(c) == 0 {
		t.Fatal("closest truss of K6 should exist")
	}
	has := map[graph.Node]bool{}
	for _, u := range c {
		has[u] = true
	}
	if !has[0] || !has[5] {
		t.Fatalf("closest truss must contain both queries: %v", c)
	}
}

func TestCountCommon(t *testing.T) {
	g := complete(5)
	if c := countCommon(g, 0, 1, nil); c != 3 {
		t.Fatalf("common(0,1)=%d want 3", c)
	}
	var seen []graph.Node
	countCommon(g, 0, 1, func(w graph.Node) { seen = append(seen, w) })
	if len(seen) != 3 {
		t.Fatalf("visit saw %v", seen)
	}
}
