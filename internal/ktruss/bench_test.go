package ktruss

import (
	"testing"

	"dmcs/internal/lfr"
)

// BenchmarkDecompose measures truss decomposition (support peeling), the
// dominant cost of the kt/hightruss/huang2015 baselines and of query-set
// generation.
func BenchmarkDecompose(b *testing.B) {
	cfg := lfr.Default()
	cfg.N = 3000
	cfg.MaxDeg = 100
	cfg.MaxComm = 300
	res, err := lfr.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(res.G)
	}
}
