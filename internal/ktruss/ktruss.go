// Package ktruss implements k-truss decomposition and the truss-based
// community-search baselines of the paper: kt (the connected k-truss
// containing the query node, Huang et al. 2014), hightruss (maximum
// feasible k), and huang2015, the closest-truss-community basic algorithm
// with the 2-approximation flavour of Huang, Lakshmanan, Yu & Cheng 2015.
package ktruss

import (
	"slices"

	"dmcs/internal/graph"
)

// Decomposition holds per-edge trussness: edge e participates in every
// k-truss with k ≤ Truss[e]. Trussness is at least 2 for every edge.
type Decomposition struct {
	G     *graph.Graph
	Edges [][2]graph.Node         // edge id -> endpoints (u < v)
	EID   map[[2]graph.Node]int32 // endpoints -> edge id
	Truss []int32                 // edge id -> trussness
}

// Decompose computes the trussness of every edge by support peeling
// (O(m^1.5) triangle counting plus bucket peeling).
func Decompose(g *graph.Graph) *Decomposition {
	m := g.NumEdges()
	d := &Decomposition{
		G:     g,
		Edges: make([][2]graph.Node, 0, m),
		EID:   make(map[[2]graph.Node]int32, m),
		Truss: make([]int32, m),
	}
	g.Edges(func(u, v graph.Node) bool {
		d.EID[[2]graph.Node{u, v}] = int32(len(d.Edges))
		d.Edges = append(d.Edges, [2]graph.Node{u, v})
		return true
	})
	sup := make([]int32, m)
	for id, e := range d.Edges {
		sup[id] = int32(countCommon(g, e[0], e[1], nil))
	}
	// bucket peeling on support
	maxSup := int32(0)
	for _, s := range sup {
		if s > maxSup {
			maxSup = s
		}
	}
	buckets := make([][]int32, maxSup+1)
	for id, s := range sup {
		buckets[s] = append(buckets[s], int32(id))
	}
	removed := make([]bool, m)
	cur := make([]int32, m) // current support (decreases as edges peel)
	copy(cur, sup)
	processed := 0
	for level := int32(0); processed < m; level++ {
		if int(level) >= len(buckets) {
			break
		}
		for len(buckets[level]) > 0 {
			id := buckets[level][len(buckets[level])-1]
			buckets[level] = buckets[level][:len(buckets[level])-1]
			if removed[id] || cur[id] > level {
				continue // stale entry
			}
			removed[id] = true
			processed++
			d.Truss[id] = level + 2
			u, v := d.Edges[id][0], d.Edges[id][1]
			countCommon(g, u, v, func(w graph.Node) {
				e1, ok1 := d.edgeID(u, w)
				e2, ok2 := d.edgeID(v, w)
				if !ok1 || !ok2 || removed[e1] || removed[e2] {
					return
				}
				for _, e := range []int32{e1, e2} {
					if cur[e] > level {
						cur[e]--
						buckets[cur[e]] = append(buckets[cur[e]], e)
					}
				}
			})
		}
	}
	return d
}

func (d *Decomposition) edgeID(u, v graph.Node) (int32, bool) {
	if u > v {
		u, v = v, u
	}
	id, ok := d.EID[[2]graph.Node{u, v}]
	return id, ok
}

// Trussness returns the trussness of edge (u,v), 0 when absent.
func (d *Decomposition) Trussness(u, v graph.Node) int {
	if id, ok := d.edgeID(u, v); ok {
		return int(d.Truss[id])
	}
	return 0
}

// MaxTruss returns the largest trussness of any edge (0 for edgeless g).
func (d *Decomposition) MaxTruss() int {
	m := int32(0)
	for _, t := range d.Truss {
		if t > m {
			m = t
		}
	}
	return int(m)
}

// countCommon counts common neighbors of u and v using the sorted
// adjacency lists; when visit is non-nil it is called for each one.
func countCommon(g *graph.Graph, u, v graph.Node, visit func(w graph.Node)) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			c++
			if visit != nil {
				visit(a[i])
			}
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return c
}

// Community returns the kt baseline: the nodes of the connected k-truss
// containing all query nodes, reachable through edges of trussness ≥ k.
// Returns nil when no such truss exists or when the query nodes fall in
// different k-truss components.
func Community(g *graph.Graph, q []graph.Node, k int) []graph.Node {
	d := Decompose(g)
	return d.CommunityFrom(q, k)
}

// CommunityFrom answers a kt query against a precomputed decomposition.
func (d *Decomposition) CommunityFrom(q []graph.Node, k int) []graph.Node {
	if len(q) == 0 {
		return nil
	}
	g := d.G
	// BFS over edges with trussness >= k starting from q[0]
	seen := map[graph.Node]bool{q[0]: true}
	queue := []graph.Node{q[0]}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(u) {
			if seen[w] || d.Trussness(u, w) < k {
				continue
			}
			seen[w] = true
			queue = append(queue, w)
		}
	}
	if len(seen) == 1 {
		return nil // q[0] has no edge of the requested trussness
	}
	for _, u := range q[1:] {
		if !seen[u] {
			return nil
		}
	}
	out := make([]graph.Node, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

// HighestTruss returns the hightruss baseline: the connected k-truss
// containing the query nodes for the maximum feasible k, plus that k.
func HighestTruss(g *graph.Graph, q []graph.Node) ([]graph.Node, int) {
	if len(q) == 0 {
		return nil, 0
	}
	d := Decompose(g)
	kmax := 0
	for _, u := range q {
		best := 0
		for _, w := range g.Neighbors(u) {
			if t := d.Trussness(u, w); t > best {
				best = t
			}
		}
		if kmax == 0 || best < kmax {
			kmax = best
		}
	}
	for k := kmax; k >= 2; k-- {
		if c := d.CommunityFrom(q, k); c != nil {
			return c, k
		}
	}
	return nil, 0
}

// ClosestTruss implements the huang2015 baseline: start from the connected
// k-truss with the largest feasible k containing Q, then repeatedly delete
// a farthest node (by query distance) while maintaining the k-truss
// property, keeping the intermediate subgraph with the smallest query
// eccentricity. This is the "basic" algorithm of Huang et al. 2015 whose
// result has a 2-approximate diameter.
func ClosestTruss(g *graph.Graph, q []graph.Node) []graph.Node {
	start, k := HighestTruss(g, q)
	if start == nil {
		return nil
	}
	d := Decompose(g)
	alive := make(map[graph.Node]bool, len(start))
	for _, u := range start {
		alive[u] = true
	}
	// edgeAlive: an edge participates while its trussness >= k and both
	// endpoints are alive; its support is counted within alive edges.
	isQuery := make(map[graph.Node]bool, len(q))
	for _, u := range q {
		isQuery[u] = true
	}
	best := append([]graph.Node(nil), start...)
	bestEcc := queryEcc(g, d, alive, q, k)
	for {
		dist := trussDistances(g, d, alive, q, k)
		far, farD := graph.Node(-1), int32(0)
		for u := range alive {
			if isQuery[u] {
				continue
			}
			du, ok := dist[u]
			if !ok {
				far, farD = u, 1<<30 // disconnected from Q: remove first
				break
			}
			if du > farD {
				far, farD = u, du
			}
		}
		if far < 0 || farD == 0 {
			break
		}
		// delete far, then cascade the k-truss constraint
		delete(alive, far)
		if !cascade(g, d, alive, isQuery, k) {
			break // a query node lost truss support: stop
		}
		if !trussConnected(g, d, alive, q, k) {
			break
		}
		if ecc := queryEcc(g, d, alive, q, k); ecc >= 0 && ecc <= bestEcc {
			bestEcc = ecc
			best = best[:0]
			for u := range alive {
				best = append(best, u)
			}
		}
	}
	slices.Sort(best)
	return best
}

// cascade removes nodes whose alive incident edges of trussness >= k have
// insufficient support within the alive set, until stable. Returns false
// when a query node would have to be removed.
func cascade(g *graph.Graph, d *Decomposition, alive map[graph.Node]bool, isQuery map[graph.Node]bool, k int) bool {
	for changed := true; changed; {
		changed = false
		for u := range alive {
			supported := false
			for _, w := range g.Neighbors(u) {
				if alive[w] && d.Trussness(u, w) >= k && supportIn(g, d, alive, u, w, k) >= k-2 {
					supported = true
					break
				}
			}
			if !supported {
				if isQuery[u] {
					return false
				}
				delete(alive, u)
				changed = true
			}
		}
	}
	return true
}

func supportIn(g *graph.Graph, d *Decomposition, alive map[graph.Node]bool, u, v graph.Node, k int) int {
	c := 0
	countCommon(g, u, v, func(w graph.Node) {
		if alive[w] && d.Trussness(u, w) >= k && d.Trussness(v, w) >= k {
			c++
		}
	})
	return c
}

func trussDistances(g *graph.Graph, d *Decomposition, alive map[graph.Node]bool, q []graph.Node, k int) map[graph.Node]int32 {
	dist := make(map[graph.Node]int32, len(alive))
	var queue []graph.Node
	for _, s := range q {
		if alive[s] {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for i := 0; i < len(queue); i++ {
		u := queue[i]
		for _, w := range g.Neighbors(u) {
			if !alive[w] || d.Trussness(u, w) < k {
				continue
			}
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func trussConnected(g *graph.Graph, d *Decomposition, alive map[graph.Node]bool, q []graph.Node, k int) bool {
	dist := trussDistances(g, d, alive, q, k)
	for _, u := range q {
		if _, ok := dist[u]; !ok {
			return false
		}
	}
	return true
}

// queryEcc returns the largest query distance among alive nodes, or -1
// when some alive node is unreachable from Q.
func queryEcc(g *graph.Graph, d *Decomposition, alive map[graph.Node]bool, q []graph.Node, k int) int32 {
	dist := trussDistances(g, d, alive, q, k)
	var ecc int32
	for u := range alive {
		du, ok := dist[u]
		if !ok {
			return -1
		}
		if du > ecc {
			ecc = du
		}
	}
	return ecc
}
