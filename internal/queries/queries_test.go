package queries

import (
	"testing"

	"dmcs/internal/dataset"
	"dmcs/internal/gen"
	"dmcs/internal/graph"
)

func TestGenerateFromKarate(t *testing.T) {
	d := dataset.Karate()
	sets := Generate(d.G, d.Communities, Options{NumSets: 10, Size: 1, TrussK: 3, Seed: 1})
	if len(sets) != 10 {
		t.Fatalf("got %d sets want 10", len(sets))
	}
	for _, q := range sets {
		if len(q) != 1 {
			t.Fatalf("set size %d want 1", len(q))
		}
		if q[0] < 0 || int(q[0]) >= d.G.NumNodes() {
			t.Fatalf("query node %d out of range", q[0])
		}
	}
}

func TestGenerateEquallySpreadOverFewCommunities(t *testing.T) {
	d := dataset.Karate() // 2 communities, 10 sets → 5 from each
	sets := Generate(d.G, d.Communities, Options{NumSets: 10, Size: 1, TrussK: 3, Seed: 7})
	counts := [2]int{}
	memb := d.Membership()
	for _, q := range sets {
		counts[memb[q[0]]]++
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("sets per community %v want [5 5]", counts)
	}
}

func TestGenerateManyCommunitiesSamplesDistinct(t *testing.T) {
	g, comms := gen.RingOfCliques(30, 6)
	sets := Generate(g, comms, Options{NumSets: 20, Size: 1, TrussK: 3, Seed: 3})
	if len(sets) != 20 {
		t.Fatalf("got %d sets want 20", len(sets))
	}
	// with 30 communities and 20 sets, each set from a distinct community
	seen := map[int]bool{}
	for _, q := range sets {
		c := int(q[0]) / 6
		if seen[c] {
			t.Fatalf("community %d sampled twice", c)
		}
		seen[c] = true
	}
}

func TestGenerateMultiNodeSetsStayInCommunity(t *testing.T) {
	g, comms := gen.RingOfCliques(10, 6)
	sets := Generate(g, comms, Options{NumSets: 10, Size: 4, TrussK: 3, Seed: 5})
	for _, q := range sets {
		if len(q) != 4 {
			t.Fatalf("set size=%d want 4", len(q))
		}
		c := int(q[0]) / 6
		for _, u := range q {
			if int(u)/6 != c {
				t.Fatalf("query set %v spans cliques", q)
			}
		}
	}
}

func TestGeneratePrefersTrussEligibleNodes(t *testing.T) {
	// clique (high trussness) plus a star (trussness 2): queries should
	// come from the clique part of the community.
	b := graph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	for i := 6; i < 12; i++ {
		b.AddEdge(0, graph.Node(i))
	}
	g := b.Build()
	var comm []graph.Node
	for i := 0; i < 12; i++ {
		comm = append(comm, graph.Node(i))
	}
	sets := Generate(g, [][]graph.Node{comm}, Options{NumSets: 6, Size: 1, TrussK: 4, Seed: 2})
	for _, q := range sets {
		if q[0] >= 6 {
			t.Fatalf("query %v should prefer the 5-truss clique nodes", q)
		}
	}
}

func TestGenerateSkipsTooSmallCommunities(t *testing.T) {
	g, comms := gen.RingOfCliques(4, 3)
	sets := Generate(g, comms, Options{NumSets: 4, Size: 5, TrussK: 2, Seed: 2})
	if len(sets) != 0 {
		t.Fatalf("no community can host 5 queries, got %v", sets)
	}
	if Generate(g, nil, Options{}) != nil {
		t.Fatal("no communities should yield no sets")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := dataset.Karate()
	a := Generate(d.G, d.Communities, Options{NumSets: 10, TrussK: 3, Seed: 9})
	b := Generate(d.G, d.Communities, Options{NumSets: 10, TrussK: 3, Seed: 9})
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatal("same seed must give the same query sets")
		}
	}
}
