// Package queries generates query sets following the paper's Section 6.1
// protocol: "we pick 20 sets (10 sets for small-sized datasets) of query
// nodes from the result of (k+1)-truss so that the query nodes are more
// likely to be located in a meaningful community. If there are over 20
// ground-truth communities, we randomly choose 20 communities and then
// randomly pick a query set from each community. If there are fewer than
// 20 ground-truth communities, we pick query sets such that they are most
// equally generated from each community."
package queries

import (
	"math/rand"

	"dmcs/internal/graph"
	"dmcs/internal/ktruss"
)

// Options configures query-set generation.
type Options struct {
	NumSets int   // number of query sets (paper: 20, small datasets 10)
	Size    int   // nodes per query set (paper default 1)
	TrussK  int   // eligibility: node must touch a (TrussK+1)-truss edge; paper uses k=4 → 5-truss
	Seed    int64 // RNG seed
}

func (o Options) withDefaults() Options {
	if o.NumSets == 0 {
		o.NumSets = 20
	}
	if o.Size == 0 {
		o.Size = 1
	}
	if o.TrussK == 0 {
		o.TrussK = 4
	}
	return o
}

// Generate draws query sets from the ground-truth communities. Each query
// set comes from one community; nodes that touch a (k+1)-truss edge are
// preferred, falling back to arbitrary community members when a community
// has too few eligible nodes. Communities smaller than Size are skipped.
func Generate(g *graph.Graph, comms [][]graph.Node, opt Options) [][]graph.Node {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	eligible := eligibleNodes(g, opt.TrussK+1)

	// candidate communities: at least Size members
	var candIdx []int
	for i, c := range comms {
		if len(c) >= opt.Size {
			candIdx = append(candIdx, i)
		}
	}
	if len(candIdx) == 0 {
		return nil
	}
	// choose which community each query set comes from
	var chosen []int
	if len(candIdx) >= opt.NumSets {
		perm := rng.Perm(len(candIdx))
		for _, p := range perm[:opt.NumSets] {
			chosen = append(chosen, candIdx[p])
		}
	} else {
		// spread sets as equally as possible across communities
		for len(chosen) < opt.NumSets {
			for _, ci := range candIdx {
				chosen = append(chosen, ci)
				if len(chosen) == opt.NumSets {
					break
				}
			}
		}
	}
	var out [][]graph.Node
	for _, ci := range chosen {
		if q := pickFrom(comms[ci], eligible, opt.Size, rng); q != nil {
			out = append(out, q)
		}
	}
	return out
}

// eligibleNodes marks nodes incident to an edge of trussness ≥ k.
func eligibleNodes(g *graph.Graph, k int) []bool {
	d := ktruss.Decompose(g)
	ok := make([]bool, g.NumNodes())
	for id, e := range d.Edges {
		if int(d.Truss[id]) >= k {
			ok[e[0]] = true
			ok[e[1]] = true
		}
	}
	return ok
}

// pickFrom samples size nodes from community c, preferring eligible ones.
func pickFrom(c []graph.Node, eligible []bool, size int, rng *rand.Rand) []graph.Node {
	var pref, rest []graph.Node
	for _, u := range c {
		if eligible[u] {
			pref = append(pref, u)
		} else {
			rest = append(rest, u)
		}
	}
	rng.Shuffle(len(pref), func(i, j int) { pref[i], pref[j] = pref[j], pref[i] })
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	pool := append(pref, rest...)
	if len(pool) < size {
		return nil
	}
	q := append([]graph.Node(nil), pool[:size]...)
	return q
}
