package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a set of packages loaded together with one shared FileSet
// and consistent type identities: module-internal imports resolve to the
// loaded packages themselves, so a *types.Func seen at a call site in one
// package is the same object as the one indexed from its defining
// package. Only the standard library is imported through go/importer's
// source importer.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	byPath      map[string]*Package
	fileOwner   map[string]*Package // filename -> owning package
	funcAnnots  map[*types.Func]*FuncAnnot
	fieldAnnots map[*types.Var]*FieldAnnot
	funcDecls   map[*types.Func]*ast.FuncDecl
	declPkg     map[*types.Func]*Package
	waivers     []allowWaiver
	annotDiags  []Diagnostic

	memoMu sync.Mutex
	memo   map[string]any
}

// memoize caches a Program-wide computation under key, so an analyzer
// that needs whole-program state (e.g. hotpath reachability) derives it
// once however many per-package passes run.
func (prog *Program) memoize(key string, f func() any) any {
	prog.memoMu.Lock()
	defer prog.memoMu.Unlock()
	if prog.memo == nil {
		prog.memo = make(map[string]any)
	}
	if v, ok := prog.memo[key]; ok {
		return v
	}
	v := f()
	prog.memo[key] = v
	return v
}

// FuncAnnotOf returns fn's parsed //dmcs: directives, or nil.
func (prog *Program) FuncAnnotOf(fn *types.Func) *FuncAnnot { return prog.funcAnnots[fn] }

// FieldAnnotOf returns the field's parsed //dmcs: directives, or nil.
func (prog *Program) FieldAnnotOf(v *types.Var) *FieldAnnot { return prog.fieldAnnots[v] }

// DeclOf returns the body-bearing declaration of a module function, or
// nil for functions outside the loaded set (standard library, interface
// methods).
func (prog *Program) DeclOf(fn *types.Func) *ast.FuncDecl { return prog.funcDecls[fn] }

// PackageOf returns the package that declares fn, or nil.
func (prog *Program) PackageOf(fn *types.Func) *Package { return prog.declPkg[fn] }

// OwnerOf returns the loaded package owning the file at pos.
func (prog *Program) OwnerOf(pos token.Pos) *Package {
	return prog.fileOwner[prog.Fset.Position(pos).Filename]
}

// progImporter resolves imports against the packages loaded so far and
// falls back to compiling the standard library from source. It is the
// identity glue: two loaded packages that both import a third see the
// same *types.Package for it.
type progImporter struct {
	prog *Program
	std  types.Importer
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if p, ok := pi.prog.byPath[path]; ok {
		return p.Types, nil
	}
	return pi.std.Import(path)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
}

// LoadPackages loads the module packages matched by patterns (plus their
// in-module dependencies), rooted at dir, in dependency order. Test
// files are not loaded: the analyzers enforce invariants of the serving
// code, and the differential/stress tests are full of deliberately
// nasty constructs.
func LoadPackages(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,Standard,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	prog := newProgram()
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		// -deps emits dependencies before dependents, so every in-module
		// import of this package is already loaded.
		if err := prog.addPackage(lp.ImportPath, lp.Dir, files); err != nil {
			return nil, err
		}
	}
	if len(prog.Packages) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	return prog, nil
}

// LoadFixtureDirs loads analyzer test fixture packages: each path names
// a directory under root (the conventional testdata/src), and imports
// between fixture packages resolve within root before falling back to
// the standard library.
func LoadFixtureDirs(root string, paths ...string) (*Program, error) {
	prog := newProgram()
	for _, p := range paths {
		if err := prog.loadFixture(root, p, make(map[string]bool)); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (prog *Program) loadFixture(root, path string, loading map[string]bool) error {
	if _, ok := prog.byPath[path]; ok {
		return nil
	}
	if loading[path] {
		return fmt.Errorf("import cycle through fixture %q", path)
	}
	loading[path] = true
	defer delete(loading, path)
	dir := filepath.Join(root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("fixture %q: no Go files in %s", path, dir)
	}
	// Load fixture-internal imports first so addPackage's import step
	// finds them in prog.byPath.
	imports, err := scanImports(files)
	if err != nil {
		return err
	}
	for _, imp := range imports {
		if _, statErr := os.Stat(filepath.Join(root, filepath.FromSlash(imp))); statErr == nil {
			if err := prog.loadFixture(root, imp, loading); err != nil {
				return err
			}
		}
	}
	return prog.addPackage(path, dir, files)
}

// scanImports returns the union of import paths across files.
func scanImports(files []string) ([]string, error) {
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	var out []string
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range af.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func newProgram() *Program {
	prog := &Program{
		Fset:        token.NewFileSet(),
		byPath:      make(map[string]*Package),
		fileOwner:   make(map[string]*Package),
		funcAnnots:  make(map[*types.Func]*FuncAnnot),
		fieldAnnots: make(map[*types.Var]*FieldAnnot),
		funcDecls:   make(map[*types.Func]*ast.FuncDecl),
		declPkg:     make(map[*types.Func]*Package),
	}
	return prog
}

// stdImporter is shared across Programs: the source importer re-type-
// checks standard-library packages from source, which is the expensive
// part of loading, and its internal cache makes the second Program
// (each analyzer test loads its own fixtures) nearly free.
var (
	stdImporterMu   sync.Mutex
	stdImporterInst types.Importer
	stdImporterFset = token.NewFileSet()
)

func stdImporter() types.Importer {
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	if stdImporterInst == nil {
		stdImporterInst = importer.ForCompiler(stdImporterFset, "source", nil)
	}
	return stdImporterInst
}

// addPackage parses, type-checks, and indexes one package.
func (prog *Program) addPackage(path, dir string, filenames []string) error {
	var files []*ast.File
	for _, fn := range filenames {
		af, err := parser.ParseFile(prog.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %v", fn, err)
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: &progImporter{prog: prog, std: stdImporter()},
	}
	tpkg, err := conf.Check(path, prog.Fset, files, info)
	if err != nil {
		return fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	prog.Packages = append(prog.Packages, pkg)
	prog.byPath[path] = pkg
	for i, af := range files {
		prog.fileOwner[filenames[i]] = pkg
		prog.indexFile(pkg, af)
	}
	return nil
}

// indexFile records the file's annotations, waivers, and function
// declarations in the Program-wide indexes.
func (prog *Program) indexFile(pkg *Package, af *ast.File) {
	report := func(pos token.Pos, format string, args ...any) {
		prog.annotDiags = append(prog.annotDiags, Diagnostic{
			Pos:      pos,
			Analyzer: "dmcsvet",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	// Waivers can appear in any comment group, including trailing
	// same-line comments.
	for _, g := range af.Comments {
		for _, c := range g.List {
			directive, rest, ok := splitDirective(c.Text)
			if !ok || directive != "allow" {
				continue
			}
			posn := prog.Fset.Position(c.Pos())
			w := allowWaiver{pos: c.Pos(), file: posn.Filename, line: posn.Line}
			parts := strings.Fields(rest)
			if len(parts) > 0 {
				w.analyzer = parts[0]
			}
			if len(parts) > 1 {
				w.reason = strings.Join(parts[1:], " ")
			}
			prog.waivers = append(prog.waivers, w)
		}
	}
	ast.Inspect(af, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			obj, _ := pkg.Info.Defs[n.Name].(*types.Func)
			if obj == nil {
				return true
			}
			if n.Body != nil {
				prog.funcDecls[obj] = n
				prog.declPkg[obj] = pkg
			}
			if fa := parseFuncAnnot(n.Doc, report); fa != nil {
				prog.funcAnnots[obj] = fa
			}
		case *ast.StructType:
			for _, f := range n.Fields.List {
				fa := parseFieldAnnot(f.Doc, f.Comment)
				if fa == nil {
					continue
				}
				for _, name := range f.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						prog.fieldAnnots[v] = fa
					}
				}
			}
		}
		return true
	})
}
