// Package analysis is the home of dmcsvet: a family of static analyzers
// that machine-enforce the serving-path invariants this repository's
// performance work depends on — zero-allocation hot paths, snapshot
// immutability after publish, epoch-prefixed cache keys, arena
// checkout/release pairing, deterministic float accumulation, and the
// slice-shift queue-pop bug class.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is built entirely on the
// standard library's go/ast, go/parser, go/types and go/importer, so the
// module keeps its zero-dependency contract. cmd/dmcsvet wraps the suite
// in a multichecker binary that runs standalone (dmcsvet ./...) and also
// speaks the `go vet -vettool` unit-config protocol.
//
// # Annotations
//
// The analyzers are driven by machine-readable comment directives:
//
//	//dmcs:hotpath
//	    On a function: this function and every module function it
//	    statically calls must not allocate and must not take a
//	    non-striped lock (analyzer: hotpath).
//	//dmcs:striped
//	    On a mutex-typed struct field: the lock is sharded/striped and
//	    therefore allowed on a hot path.
//	//dmcs:keymaker
//	    On a function: its result is a canonical epoch-prefixed cache
//	    key (analyzer: epochkey).
//	//dmcs:keyed <param>
//	    On a function: the named parameter must be derived from a
//	    keymaker result at every call site. On a map-typed struct
//	    field (bare //dmcs:keyed): every index expression over the map
//	    must use a keymaker-derived key. On a []byte/string struct
//	    field (bare //dmcs:keyed): reads of the field are canonical by
//	    contract, and in exchange every write to it — assignment or
//	    composite literal, keyed or positional — must be a
//	    keymaker-derived value.
//	//dmcs:acquire <releaser>
//	    On a function: calling it checks out a pooled resource that
//	    must be released via the named function/method on every path
//	    (analyzer: arenapair).
//	//dmcs:owns <param>
//	    On a function: it takes ownership of the named resource
//	    parameter — passing a held resource to it counts as the
//	    caller's release, and the function itself must release the
//	    parameter on every path.
//	//dmcs:lazyinit
//	    On a struct field of a published snapshot type: writes are
//	    allowed after publish when guarded by sync.Once.Do (analyzer:
//	    snapshotsafe).
//	//dmcs:builder
//	    On a function: it constructs a not-yet-published snapshot and
//	    may write its fields (analyzer: snapshotsafe).
//	//dmcs:allow <analyzer> <reason>
//	    Waiver: suppresses the named analyzer's findings on this line
//	    or the line below. The reason is mandatory; a missing reason is
//	    itself a finding.
//
// See CONTRIBUTING.md ("Invariants the linter enforces") for the
// narrative version of each invariant.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. It mirrors the x/tools analysis.Analyzer
// shape: Run inspects one package via its Pass and reports findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned in the Program's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass connects one Analyzer run to one loaded package plus the whole
// Program (for cross-package checks such as hotpath reachability).
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the file set all positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Reportf records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe shorthand for the package's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// All returns the full dmcsvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPath,
		SnapshotSafe,
		EpochKey,
		ArenaPair,
		FloatDet,
		SliceShift,
	}
}

// byName resolves an analyzer name against the suite.
func byName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// FuncAnnot is the parsed //dmcs: directive set of one function.
type FuncAnnot struct {
	Hotpath         bool
	Keymaker        bool
	KeyedParams     []string
	AcquireReleaser string
	Owns            []string
	Builder         bool
}

// FieldAnnot is the parsed //dmcs: directive set of one struct field.
type FieldAnnot struct {
	Striped  bool
	LazyInit bool
	Keyed    bool
}

// allowWaiver is one //dmcs:allow comment: it suppresses diagnostics of
// one analyzer on its own line and the next line.
type allowWaiver struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
}

// parseFuncAnnot extracts //dmcs: directives from a function's doc
// comment group. Malformed directives are reported through report.
func parseFuncAnnot(doc *ast.CommentGroup, report func(pos token.Pos, format string, args ...any)) *FuncAnnot {
	if doc == nil {
		return nil
	}
	var fa *FuncAnnot
	get := func() *FuncAnnot {
		if fa == nil {
			fa = &FuncAnnot{}
		}
		return fa
	}
	for _, c := range doc.List {
		directive, rest, ok := splitDirective(c.Text)
		if !ok {
			continue
		}
		switch directive {
		case "hotpath":
			get().Hotpath = true
		case "keymaker":
			get().Keymaker = true
		case "keyed":
			if rest == "" {
				report(c.Pos(), "malformed //dmcs:keyed on function: missing parameter name")
				continue
			}
			get().KeyedParams = append(get().KeyedParams, strings.Fields(rest)...)
		case "acquire":
			if rest == "" {
				report(c.Pos(), "malformed //dmcs:acquire: missing releaser name")
				continue
			}
			get().AcquireReleaser = strings.Fields(rest)[0]
		case "owns":
			if rest == "" {
				report(c.Pos(), "malformed //dmcs:owns: missing parameter name")
				continue
			}
			get().Owns = append(get().Owns, strings.Fields(rest)...)
		case "builder":
			get().Builder = true
		case "allow", "striped", "lazyinit":
			// handled elsewhere (allow: waiver pass; striped/lazyinit:
			// field annotations) — not an error to appear near a func.
		default:
			report(c.Pos(), "unknown //dmcs:%s directive", directive)
		}
	}
	return fa
}

// parseFieldAnnot extracts //dmcs: directives from a struct field's doc
// or trailing comment.
func parseFieldAnnot(groups ...*ast.CommentGroup) *FieldAnnot {
	var fa *FieldAnnot
	get := func() *FieldAnnot {
		if fa == nil {
			fa = &FieldAnnot{}
		}
		return fa
	}
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			directive, _, ok := splitDirective(c.Text)
			if !ok {
				continue
			}
			switch directive {
			case "striped":
				get().Striped = true
			case "lazyinit":
				get().LazyInit = true
			case "keyed":
				get().Keyed = true
			}
		}
	}
	return fa
}

// splitDirective decomposes a "//dmcs:name rest" comment into its
// directive name and argument text. Directive comments have no space
// after "//", matching Go toolchain directive conventions.
func splitDirective(text string) (directive, rest string, ok bool) {
	const prefix = "//dmcs:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	body := text[len(prefix):]
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// applyWaivers filters diags through the //dmcs:allow waivers collected
// at load time and appends a diagnostic for every malformed waiver.
// A waiver at line L suppresses matching diagnostics at L and L+1, so it
// can sit on the flagged line or on its own line directly above.
func (prog *Program) applyWaivers(diags []Diagnostic) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool)
	var out []Diagnostic
	for _, w := range prog.waivers {
		if w.analyzer == "" || w.reason == "" {
			out = append(out, Diagnostic{
				Pos:      w.pos,
				Analyzer: "dmcsvet",
				Message:  "malformed //dmcs:allow: want //dmcs:allow <analyzer> <reason>",
			})
			continue
		}
		if byName(w.analyzer) == nil && w.analyzer != "all" {
			out = append(out, Diagnostic{
				Pos:      w.pos,
				Analyzer: "dmcsvet",
				Message:  fmt.Sprintf("//dmcs:allow names unknown analyzer %q", w.analyzer),
			})
			continue
		}
		allowed[key{w.file, w.line, w.analyzer}] = true
		allowed[key{w.file, w.line + 1, w.analyzer}] = true
	}
	for _, d := range diags {
		posn := prog.Fset.Position(d.Pos)
		if allowed[key{posn.Filename, posn.Line, d.Analyzer}] ||
			allowed[key{posn.Filename, posn.Line, "all"}] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := prog.Fset.Position(out[i].Pos), prog.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// Run executes the given analyzers over every loaded package and returns
// the waiver-filtered, position-sorted findings.
func (prog *Program) Run(analyzers ...*Analyzer) ([]Diagnostic, error) {
	diags := append([]Diagnostic(nil), prog.annotDiags...)
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	return prog.applyWaivers(diags), nil
}
