package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaPair enforces checkout/release pairing for pooled scratch memory
// (dmcs.Arena bundles, the engine's workerScratch): every checkout must
// be released on every return path — and at explicit panics — and the
// checked-out value must not escape by being returned or stored into a
// field, because a recycled arena scribbles over whatever still aliases
// it.
//
// Recognized checkouts:
//
//   - x := pool.Get() (optionally with a type assertion) where pool is
//     a sync.Pool; the matching release is pool.Put(x) on the same pool
//     expression;
//   - x := f(...) where f is annotated //dmcs:acquire <releaser>; the
//     matching release is a call to <releaser> passing x.
//
// Additionally, passing a held resource to a function annotated
// //dmcs:owns <param> transfers ownership: it counts as the caller's
// release, and the callee's parameter is checked as acquired-on-entry.
// A `defer release(x)` satisfies every later exit, including panics.
//
// The analysis is a path-sensitive walk of the function's statement
// tree (branches fork the held-set; a resource survives a branch join
// if any surviving path still holds it). It is deliberately syntactic —
// goto is not modeled, and a release threaded through a helper that is
// not annotated //dmcs:owns is invisible; annotate the helper or waive
// the finding.
var ArenaPair = &Analyzer{
	Name: "arenapair",
	Doc:  "arena/pool checkouts must be released on all paths and must not escape",
	Run:  runArenaPair,
}

// apResource is one live checkout on one walk path.
type apResource struct {
	name     string    // variable name, for messages
	pos      token.Pos // acquire site
	poolKey  string    // sync.Pool receiver expression, or ""
	releaser string    // //dmcs:acquire releaser name, or ""
	deferred bool      // a defer guarantees release on every later exit
	owned    bool      // acquired-on-entry via //dmcs:owns
}

// apState is the held-set of one walk path. Maps are copied on branch
// forks; apResource values are copied with them.
type apState map[*types.Var]apResource

func (st apState) clone() apState {
	c := make(apState, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

func runArenaPair(pass *Pass) error {
	for _, fd := range enclosingFuncs(pass.Pkg) {
		w := &apWalker{pass: pass, info: pass.Pkg.Info}
		if fd.obj != nil {
			// The //dmcs:acquire wrapper itself hands the resource out
			// by design; checking its body would flag the wrapper.
			if fa := pass.Prog.FuncAnnotOf(fd.obj); fa != nil && fa.AcquireReleaser != "" {
				continue
			}
		}
		st := make(apState)
		// //dmcs:owns parameters are acquired on entry.
		if fd.obj != nil {
			if fa := pass.Prog.FuncAnnotOf(fd.obj); fa != nil {
				sig := fd.obj.Type().(*types.Signature)
				for _, name := range fa.Owns {
					if i := paramIndex(sig, name); i >= 0 {
						p := sig.Params().At(i)
						st[p] = apResource{name: name, pos: p.Pos(), owned: true}
					}
				}
			}
		}
		if hasGoto(fd.decl.Body) {
			continue // not modeled; nothing in the serving path uses goto
		}
		terminated := w.walkStmts(fd.decl.Body.List, st)
		if !terminated {
			w.reportHeld(st, fd.decl.Body.End(), "at function exit")
		}
	}
	return nil
}

func hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

type apWalker struct {
	pass *Pass
	info *types.Info
}

func (w *apWalker) reportHeld(st apState, pos token.Pos, where string) {
	for _, r := range st {
		if !r.deferred {
			w.pass.Reportf(pos, "checked-out %s is not released %s (checkout at %s)", r.name, where, w.pass.Fset().Position(r.pos))
		}
	}
}

// walkStmts walks a statement list on one path; it reports findings and
// returns whether the path terminated (return/branch out).
func (w *apWalker) walkStmts(list []ast.Stmt, st apState) bool {
	for _, s := range list {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *apWalker) walkStmt(s ast.Stmt, st apState) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.releaseCallsIn(s, st)
		w.checkEscape(s, st)
		w.checkAcquire(s, st)
	case *ast.ExprStmt:
		w.releaseCallsIn(s, st)
		w.checkPanic(s, st)
		w.checkDiscardedCheckout(s, st)
		w.walkFuncLits(s)
	case *ast.DeferStmt:
		w.handleDefer(s, st)
	case *ast.ReturnStmt:
		w.releaseCallsIn(s, st)
		w.checkReturnEscape(s, st)
		w.reportHeld(st, s.Pos(), "on this return path")
		return true
	case *ast.BranchStmt:
		// break/continue leave the enclosing loop/switch; the resource
		// can still be released after it. Treat as path-terminating
		// without a held check.
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.releaseCallsIn(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		var elseSt apState
		elseTerm := false
		if s.Else != nil {
			elseSt = st.clone()
			elseTerm = w.walkStmt(s.Else, elseSt)
		} else {
			elseSt = st.clone()
		}
		return w.merge(st, thenSt, thenTerm, elseSt, elseTerm)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkLoopBody(s.Body, st)
	case *ast.RangeStmt:
		w.walkLoopBody(s.Body, st)
	case *ast.GoStmt:
		w.releaseCallsIn(s.Call, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.EmptyStmt:
		// No checkout/release semantics.
	}
	return false
}

// walkLoopBody walks a loop body on a cloned state. Resources acquired
// inside the body must be released inside it (each iteration is its own
// checkout); the outer held-set is left untouched — a loop may run zero
// times, so a release inside it cannot count for the outer path.
func (w *apWalker) walkLoopBody(body *ast.BlockStmt, outer apState) {
	st := outer.clone()
	pre := make(map[*types.Var]bool, len(st))
	for k := range st {
		pre[k] = true
	}
	if w.walkStmts(body.List, st) {
		return
	}
	for v, r := range st {
		if !pre[v] && !r.deferred {
			w.pass.Reportf(body.End(), "checked-out %s acquired inside the loop is not released before the next iteration (checkout at %s)", r.name, w.pass.Fset().Position(r.pos))
		}
	}
}

// walkBranches handles switch/type-switch/select: each clause forks the
// state; the post state holds a resource if any surviving clause does.
func (w *apWalker) walkBranches(s ast.Stmt, st apState) bool {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			clauses = append(clauses, c)
		}
		if !hasDefault {
			clauses = append(clauses, nil) // fall-through path
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			clauses = append(clauses, c)
		}
		if !hasDefault {
			clauses = append(clauses, nil)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			clauses = append(clauses, c)
		}
	}
	type branchEnd struct {
		st   apState
		term bool
	}
	var ends []branchEnd
	for _, c := range clauses {
		bst := st.clone()
		term := false
		switch c := c.(type) {
		case nil:
			// implicit no-match path: state unchanged
		case *ast.CaseClause:
			term = w.walkStmts(c.Body, bst)
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, bst)
			}
			term = w.walkStmts(c.Body, bst)
		}
		ends = append(ends, branchEnd{bst, term})
	}
	// Merge surviving clause states into st.
	allTerm := len(ends) > 0
	for k := range st {
		delete(st, k)
	}
	for _, e := range ends {
		if e.term {
			continue
		}
		allTerm = false
		for v, r := range e.st {
			if held, ok := st[v]; !ok || (!held.deferred && r.deferred) {
				// Prefer recording the non-deferred variant so a
				// missing release on another path still reports.
				if !ok || !r.deferred || held.deferred {
					st[v] = r
				}
			}
		}
	}
	return allTerm
}

// merge folds two if-branch end states back into st and reports whether
// both branches terminated.
func (w *apWalker) merge(st, aSt apState, aTerm bool, bSt apState, bTerm bool) bool {
	for k := range st {
		delete(st, k)
	}
	add := func(from apState) {
		for v, r := range from {
			if cur, ok := st[v]; !ok || (cur.deferred && !r.deferred) {
				st[v] = r
			}
		}
	}
	if !aTerm {
		add(aSt)
	}
	if !bTerm {
		add(bSt)
	}
	return aTerm && bTerm
}

// checkAcquire records new checkouts from an assignment statement.
func (w *apWalker) checkAcquire(s *ast.AssignStmt, st apState) {
	if len(s.Rhs) != 1 {
		return
	}
	rhs := unparen(s.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	res, ok := w.acquisition(call)
	if !ok {
		return
	}
	if len(s.Lhs) == 0 {
		return
	}
	id, ok := unparen(s.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		w.pass.Reportf(call.Pos(), "pool checkout result is discarded; the checked-out value can never be released")
		return
	}
	obj := w.info.Defs[id]
	if obj == nil {
		obj = w.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	res.name = id.Name
	res.pos = call.Pos()
	st[v] = res
}

// acquisition classifies a call as a checkout.
func (w *apWalker) acquisition(call *ast.CallExpr) (apResource, bool) {
	if callee := calleeOf(w.info, call); callee != nil {
		if fa := w.pass.Prog.FuncAnnotOf(callee); fa != nil && fa.AcquireReleaser != "" {
			return apResource{releaser: fa.AcquireReleaser}, true
		}
		if callee.Name() == "Get" {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if isNamed(w.info.TypeOf(sel.X), "sync", "Pool") {
					return apResource{poolKey: types.ExprString(sel.X)}, true
				}
			}
		}
	}
	return apResource{}, false
}

// releaseCallsIn scans a node for calls that release held resources:
// pool.Put(x), <releaser>(..., x, ...), and ownership transfers into
// //dmcs:owns parameters.
func (w *apWalker) releaseCallsIn(n ast.Node, st apState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.applyRelease(call, st, false)
		return true
	})
}

// applyRelease removes resources the call releases. deferred marks the
// release as defer-based (survives panics).
func (w *apWalker) applyRelease(call *ast.CallExpr, st apState, deferred bool) {
	callee := calleeOf(w.info, call)
	argResource := func(arg ast.Expr) (*types.Var, bool) {
		id, ok := unparen(arg).(*ast.Ident)
		if !ok {
			return nil, false
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if !ok {
			return nil, false
		}
		_, held := st[v]
		return v, held
	}

	// pool.Put(x) on the matching pool expression.
	if callee != nil && callee.Name() == "Put" {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && isNamed(w.info.TypeOf(sel.X), "sync", "Pool") {
			poolKey := types.ExprString(sel.X)
			for _, arg := range call.Args {
				if v, held := argResource(arg); held && st[v].poolKey == poolKey {
					w.release(st, v, deferred)
				}
			}
		}
	}
	if callee == nil {
		return
	}
	// Named releaser from //dmcs:acquire, or release of an owned
	// parameter via the same releaser the acquiring function names —
	// owned resources accept any releaser-style call or pool Put above,
	// so match by name for both.
	name := callee.Name()
	for _, arg := range call.Args {
		v, held := argResource(arg)
		if !held {
			continue
		}
		r := st[v]
		if (r.releaser != "" && name == r.releaser) || (r.owned && isReleaserName(name)) {
			w.release(st, v, deferred)
		}
	}
	// Ownership transfer: held resource passed as a //dmcs:owns param.
	if fa := w.pass.Prog.FuncAnnotOf(callee); fa != nil && len(fa.Owns) > 0 {
		sig := callee.Type().(*types.Signature)
		for _, pname := range fa.Owns {
			i := paramIndex(sig, pname)
			if i < 0 || i >= len(call.Args) {
				continue
			}
			if v, held := argResource(call.Args[i]); held {
				w.release(st, v, deferred)
			}
		}
	}
}

// isReleaserName is the loose match for releasing an owned parameter:
// the conventional release vocabulary of this codebase.
func isReleaserName(name string) bool {
	switch name {
	case "Put", "putScratch", "Release", "release", "put":
		return true
	}
	return false
}

func (w *apWalker) release(st apState, v *types.Var, deferred bool) {
	if deferred {
		r := st[v]
		r.deferred = true
		st[v] = r
		return
	}
	delete(st, v)
}

func (w *apWalker) handleDefer(s *ast.DeferStmt, st apState) {
	// defer release(x) — or defer func() { release(x) }().
	w.applyRelease(s.Call, st, true)
	if fl, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				w.applyRelease(call, st, true)
			}
			return true
		})
	}
}

// checkEscape flags a held resource stored into a field or index whose
// base is a different object — arena-backed memory must not outlive the
// checkout.
func (w *apWalker) checkEscape(s *ast.AssignStmt, st apState) {
	if len(st) == 0 {
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) && len(s.Rhs) != 1 {
			break
		}
		rhs := s.Rhs[0]
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		base := unparen(lhs)
		if _, isSel := base.(*ast.SelectorExpr); !isSel {
			if _, isIdx := base.(*ast.IndexExpr); !isIdx {
				continue
			}
		}
		root := rootIdentOf(lhs)
		for v, r := range st {
			if root != nil && w.info.Uses[root] == v {
				continue // mutating the resource's own fields is fine
			}
			if mentionsObject(w.info, rhs, v) {
				w.pass.Reportf(s.Pos(), "checked-out %s (or memory derived from it) is stored into %s and escapes its checkout (checkout at %s)", r.name, types.ExprString(lhs), w.pass.Fset().Position(r.pos))
			}
		}
	}
}

// checkReturnEscape flags returning a held (or just-released) resource.
func (w *apWalker) checkReturnEscape(s *ast.ReturnStmt, st apState) {
	for _, res := range s.Results {
		e := unparen(res)
		id := rootIdentOf(e)
		if id == nil {
			continue
		}
		// Only the resource itself or a selector chain on it — a call
		// result computed FROM the resource is the normal way results
		// leave a search.
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.SliceExpr, *ast.IndexExpr:
		default:
			continue
		}
		if v, ok := w.info.Uses[id].(*types.Var); ok {
			if r, held := st[v]; held {
				w.pass.Reportf(res.Pos(), "checked-out %s is returned and escapes its checkout (checkout at %s)", r.name, w.pass.Fset().Position(r.pos))
			}
		}
	}
}

// checkPanic reports resources held across an explicit panic without a
// deferred release.
func (w *apWalker) checkPanic(s *ast.ExprStmt, st apState) {
	call, ok := unparen(s.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if builtinOf(w.info, call) != "panic" {
		return
	}
	w.reportHeld(st, s.Pos(), "when panicking here (use defer)")
}

// checkDiscardedCheckout flags a bare pool checkout whose result is
// dropped on the floor.
func (w *apWalker) checkDiscardedCheckout(s *ast.ExprStmt, st apState) {
	call, ok := unparen(s.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if _, isAcq := w.acquisition(call); isAcq {
		w.pass.Reportf(call.Pos(), "pool checkout result is discarded; the checked-out value can never be released")
	}
}

// walkFuncLits analyzes closures declared in expression statements as
// independent scopes (their execution timing is unknown).
func (w *apWalker) walkFuncLits(s *ast.ExprStmt) {
	ast.Inspect(s.X, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			if !hasGoto(fl.Body) {
				st := make(apState)
				if !w.walkStmts(fl.Body.List, st) {
					w.reportHeld(st, fl.Body.End(), "at closure exit")
				}
			}
			return false
		}
		return true
	})
}
