package analysis

import (
	"go/ast"
	"go/types"
)

// unparen strips parentheses. (ast.Unparen is Go 1.22+; the module
// targets go 1.21.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes, unwrapping parentheses. It returns nil for calls through
// function values, builtins, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr: // generic instantiation: f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

// builtinOf returns the builtin a call invokes ("make", "append", ...)
// or "".
func builtinOf(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// rootIdentOf peels selectors, indexes, stars, parens, and slice
// expressions down to the base identifier of an lvalue-ish expression,
// or nil.
func rootIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsObject reports whether expr contains an identifier resolving
// to obj.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// fieldVarOf resolves a selector expression to the struct-field variable
// it selects, or nil.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Package-qualified or unqualified uses.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// namedOf unwraps a pointer to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (or its pointee) is the named type
// pkgpath.name.
func isNamed(t types.Type, pkgpath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgpath
}

// enclosingFuncs returns every function declaration of the package's
// files, paired with its defining object.
func enclosingFuncs(pkg *Package) []funcDeclInfo {
	var out []funcDeclInfo
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			out = append(out, funcDeclInfo{decl: fd, obj: obj})
		}
	}
	return out
}

type funcDeclInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

// paramIndex returns the position of the named parameter in sig, or -1.
func paramIndex(sig *types.Signature, name string) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i
		}
	}
	return -1
}

// isSliceType reports whether t's underlying type is a slice.
func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExprStructure reports whether two expressions are structurally
// identical identifier/selector/index chains — the cheap aliasing test
// used to pair q = q[1:] and pool.Get/pool.Put.
func sameExprStructure(a, b ast.Expr) bool {
	switch a := unparen(a).(type) {
	case *ast.Ident:
		b, ok := unparen(b).(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExprStructure(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := unparen(b).(*ast.IndexExpr)
		return ok && sameExprStructure(a.X, b.X) && sameExprStructure(a.Index, b.Index)
	case *ast.StarExpr:
		b, ok := unparen(b).(*ast.StarExpr)
		return ok && sameExprStructure(a.X, b.X)
	default:
		return false
	}
}
