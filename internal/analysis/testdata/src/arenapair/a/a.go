package a

import "sync"

type scratch struct{ buf []byte }

var pool = sync.Pool{New: func() interface{} { return new(scratch) }}

type engine struct {
	pool sync.Pool
	held *scratch
}

//dmcs:acquire putScratch
func getScratch() *scratch {
	return pool.Get().(*scratch)
}

func putScratch(s *scratch) { pool.Put(s) }

func use(*scratch) {}

func deferOK() {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	use(s)
}

func everyPathOK(cond bool) {
	s := getScratch()
	if cond {
		putScratch(s)
		return
	}
	use(s)
	putScratch(s)
}

func missingOnPath(cond bool) {
	s := getScratch()
	if cond {
		return // want `checked-out s is not released on this return path`
	}
	putScratch(s)
}

func leaks() {
	s := getScratch()
	use(s)
} // want `checked-out s is not released at function exit`

func escapes(e *engine) {
	s := getScratch()
	e.held = s // want `escapes its checkout`
	putScratch(s)
}

func returned() *scratch {
	s := getScratch()
	return s // want `is returned and escapes` `not released on this return path`
}

//dmcs:owns s
func consume(s *scratch) {
	use(s)
	putScratch(s)
}

func transfer() {
	s := getScratch()
	consume(s) // ownership handed to //dmcs:owns callee: fine
}

func discard() {
	pool.Get() // want `pool checkout result is discarded`
}

func panics(cond bool) {
	s := getScratch()
	if cond {
		panic("boom") // want `not released when panicking here`
	}
	putScratch(s)
}

func fieldPool(e *engine) {
	s := e.pool.Get().(*scratch)
	use(s)
	e.pool.Put(s)
}

func inLoop(n int) {
	for i := 0; i < n; i++ {
		s := getScratch()
		use(s)
	} // want `acquired inside the loop is not released before the next iteration`
}

func loopOK(n int) {
	for i := 0; i < n; i++ {
		s := getScratch()
		use(s)
		putScratch(s)
	}
}

func waived() {
	s := getScratch()
	use(s)
	//dmcs:allow arenapair fixture: released by a registered finalizer
}

// The closing brace of waived carries the would-be finding; it sits on
// the line after the //dmcs:allow comment and is suppressed (L+1 rule).
