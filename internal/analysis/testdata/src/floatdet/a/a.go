package a

func sums(m map[int]float64) float64 {
	var total float64
	for _, w := range m {
		total += w // want `float accumulation into total`
	}

	var longhand float64
	for _, w := range m {
		longhand = longhand + w // want `float accumulation into longhand`
	}

	out := make(map[int]float64, len(m))
	for k, w := range m {
		out[k] += w // one slot per key: order-independent, never flagged
	}

	var n int
	for range m {
		n++ // integer accumulation is exact: never flagged
	}

	for _, w := range m {
		local := 0.0
		local += w // loop-local accumulator resets per iteration: fine
		_ = local
	}

	xs := []float64{1, 2, 3}
	var ordered float64
	for _, w := range xs {
		ordered += w // slice iteration order is fixed: fine
	}

	var waivedSum float64
	for _, w := range m {
		//dmcs:allow floatdet fixture: consumer tolerates any summation order
		waivedSum += w
	}

	_ = n
	return total + longhand + ordered + waivedSum + out[0]
}
