package a

import (
	"fmt"
	"sync"
)

type shard struct {
	//dmcs:striped
	mu sync.Mutex
	n  int
}

type server struct {
	global sync.Mutex
	shards []shard
	buf    []int
}

//dmcs:hotpath
func (s *server) hot(x int) int {
	m := map[int]int{} // want `map literal allocates`
	_ = m
	sl := []int{1} // want `slice literal allocates`
	_ = sl
	p := &shard{} // want `&T\{\} literal allocates`
	_ = p
	b := make([]byte, 8) // want `make allocates`
	_ = b
	fmt.Println(x)           // want `fmt\.Println allocates`
	s.buf = append(s.buf, x) // self-append recycle idiom: fine
	var q []int
	grown := append(q, x) // want `append to a fresh slice`
	_ = grown
	helper(s)
	s.shards[0].mu.Lock() // striped shard lock: fine
	s.shards[0].mu.Unlock()
	s.global.Lock() // want `mutex field global is not marked //dmcs:striped`
	s.global.Unlock()
	var f func()
	f = func() {} // want `closure allocates`
	f()           // want `dynamic call through a function value`
	go helper(s)  // want `go statement`
	return s.hit(x)
}

// hit is reached from hot, but allocates nothing: no findings.
func (s *server) hit(x int) int { return x + s.shards[0].n }

// helper is transitively hot; findings carry the root attribution.
func helper(s *server) {
	_ = make([]int, 4) // want `make allocates .*via //dmcs:hotpath root hot`
}

// cold is unreachable from any //dmcs:hotpath root: allocate freely.
func cold() []int { return make([]int, 1) }

func sink(v interface{})      { _ = v }
func sinks(vs ...interface{}) { _ = vs }

type anyHolder struct{ v interface{} }

//dmcs:hotpath
func boxing(h *anyHolder, n int, p *shard) {
	h.v = n // want `value-to-interface assignment boxes`
	h.v = p // pointers don't box: fine
	sink(n) // want `value-to-interface argument boxes`
	sink(p)
	sinks(n) // want `variadic interface argument allocates`
}

//dmcs:hotpath
func conv(m map[string]int, b []byte) int {
	s := string(b) // want `string<->\[\]byte conversion copies`
	_ = s
	return m[string(b)] // map-index lookup conversion is exempt
}

//dmcs:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

type iface interface{ M() }

//dmcs:hotpath
func dyn(i iface) {
	i.M() // want `interface method call is dynamic dispatch`
}

//dmcs:hotpath
func waived() {
	//dmcs:allow hotpath fixture: one-time allocation by design
	_ = make([]int, 1)
}
