package a

type shard struct {
	//dmcs:keyed
	byKey map[string]int
}

//dmcs:keymaker
func appendKey(b []byte, epoch uint64) []byte {
	return append(b, byte(epoch))
}

//dmcs:keyed key
func insert(key []byte, v int) { _ = key; _ = v }

func good(epoch uint64, sh *shard) int {
	var buf []byte
	buf = appendKey(buf[:0], epoch)
	insert(buf, 1)               // canonical: derived by the keymaker
	insert(buf[:1], 1)           // slicing preserves canonicality
	return sh.byKey[string(buf)] // conversion preserves canonicality
}

//dmcs:keyed key
func forward(key []byte) {
	insert(key, 2) // a keyed parameter is canonical by contract
}

func bad(sh *shard) int {
	key := []byte("handrolled")
	insert(key, 1)         // want `cache/flight key key is not derived`
	return sh.byKey["raw"] // want `keyed-map key "raw" is not derived`
}

func tainted(epoch uint64) {
	k := appendKey(nil, epoch)
	k = []byte("oops") // reassignment from a non-keymaker source taints k
	insert(k, 1)       // want `cache/flight key k is not derived`
}

func waived(sh *shard) int {
	//dmcs:allow epochkey fixture: test-only probe key
	return sh.byKey["probe"]
}

// pending carries a key built at admission; the bare //dmcs:keyed on a
// key-typed field makes reads canonical and writes checked.
type pending struct {
	//dmcs:keyed
	key []byte
	n   int
}

func fieldReads(p *pending, sh *shard) int {
	insert(p.key, 1)               // a keyed key-typed field is canonical on read
	insert(p.key[:1], 1)           // slicing preserves canonicality
	return sh.byKey[string(p.key)] // conversion preserves canonicality
}

func fieldWrites(epoch uint64, p *pending) {
	p.key = appendKey(nil, epoch) // canonical write
	k := appendKey(nil, epoch)
	q := pending{key: k, n: 1}             // canonical composite-literal write
	r := pending{appendKey(nil, epoch), 2} // positional form is checked too
	_, _ = q, r
}

func fieldWritesBad(p *pending) {
	p.key = []byte("handrolled")           // want `keyed-field key .* is not derived`
	q := pending{key: []byte("raw"), n: 1} // want `keyed-field key .* is not derived`
	r := pending{[]byte("pos"), 2}         // want `keyed-field key .* is not derived`
	_, _ = q, r
}
