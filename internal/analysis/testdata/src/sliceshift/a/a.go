package a

func pops() {
	q := []int{1, 2, 3}
	for len(q) > 0 {
		_ = q[0]
		q = q[1:] // want `queue pop by re-slicing`
	}

	r := []int{1, 2, 3}
	for range r {
		r = r[2:] // want `queue pop by re-slicing`
	}

	s := []int{1, 2, 3}
	for head := 0; head < len(s); head++ {
		_ = s[head] // index head: the fix, never flagged
	}

	t := "abc"
	for len(t) > 0 {
		t = t[1:] // strings are value-semantic: exempt
	}

	u := []int{1, 2}
	for range u {
		u = u[0:] // zero low bound is a no-op, not a pop
	}

	v := []int{1, 2}
	v = v[1:] // outside any loop: fine
	_ = v
	_ = u
}

func waived() {
	q := []int{1, 2, 3}
	for len(q) > 0 {
		//dmcs:allow sliceshift fixture: exercising the waiver path
		q = q[1:]
	}
}
