package a

import (
	"sync"
	"sync/atomic"
)

type Snap struct {
	epoch uint64
	//dmcs:lazyinit
	lazy []int
	once sync.Once
	data map[string]int
}

type Holder struct {
	cur atomic.Pointer[Snap]
}

type BadCache struct {
	snap *Snap // want `struct field caches a \*Snap across Apply boundaries`
}

func NewSnap(n int) *Snap {
	s := &Snap{}
	s.epoch = uint64(n) // new* builder assembles before publish: fine
	return s
}

//dmcs:builder
func assemble(s *Snap) {
	s.data = map[string]int{} // annotated builder: fine
}

func (h *Holder) mutate() {
	s := h.cur.Load()
	s.epoch++       // want `write to Snap field epoch after publish`
	s.data["k"] = 1 // want `write to Snap field data after publish`
}

func (h *Holder) lazyOK() {
	s := h.cur.Load()
	s.once.Do(func() {
		s.lazy = []int{1} // //dmcs:lazyinit under sync.Once: fine
	})
}

func (h *Holder) lazyOutsideOnce() {
	s := h.cur.Load()
	s.lazy = nil // want `write to Snap field lazy after publish`
}

func (h *Holder) waived() {
	s := h.cur.Load()
	//dmcs:allow snapshotsafe fixture: exercising the waiver path
	s.epoch = 0
}
