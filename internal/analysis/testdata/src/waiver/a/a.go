package a

// Exercises the waiver machinery itself; checked by TestWaivers with
// explicit assertions rather than want comments (a want comment cannot
// share a line with the //dmcs:allow comment it describes).

func malformed() {
	//dmcs:allow sliceshift
	q := []int{1, 2}
	for len(q) > 0 {
		q = q[1:] // NOT suppressed: the waiver above is malformed (no reason)
	}
}

func unknown() {
	//dmcs:allow nosuchanalyzer because reasons
	_ = 0
}

func suppressed() {
	q := []int{1, 2}
	for len(q) > 0 {
		//dmcs:allow sliceshift index heads are overkill in this fixture
		q = q[1:]
	}
}

func allAnalyzers() {
	q := []int{1, 2}
	for len(q) > 0 {
		//dmcs:allow all blanket waiver covers every analyzer
		q = q[1:]
	}
}
