package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatDet flags floating-point accumulation inside a range over a map.
// Map iteration order is randomized per run, float addition is not
// associative, and the DMCS density-modularity scores are float
// reductions whose bit-exactness the repository's differential tests
// (legacy vs CSR, serial vs engine, pre- vs post-Apply) depend on — so
// an accumulation like
//
//	for _, w := range weights { total += w } // finding
//
// produces run-to-run-different low bits and breaks those tests
// nondeterministically. The fix is to iterate a sorted key slice (or a
// deterministic sweep like Graph.EdgesW) instead. Only accumulators
// declared outside the range body are flagged: a float reduction into a
// loop-local is per-iteration state, not a cross-iteration sum.
var FloatDet = &Analyzer{
	Name: "floatdet",
	Doc:  "flag float accumulation over map iteration (nondeterministic order breaks bit-exact results)",
	Run:  runFloatDet,
}

func runFloatDet(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkFloatAccum(pass, info, rng)
			return true
		})
	}
	return nil
}

// checkFloatAccum reports float accumulations into outside-declared
// variables anywhere inside the range body (including nested blocks and
// loops, but not nested functions — a closure's execution timing is not
// the range's). Accumulators indexed by the range key itself
// (out[k] += v inside for k, v := range m) are exempt: every iteration
// touches a distinct slot, so the result is order-independent.
func checkFloatAccum(pass *Pass, info *types.Info, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				reportIfOuterFloat(pass, info, rng, lhs)
			}
		case token.ASSIGN:
			// x = x + e (and x = e + x etc.) spelled out long-hand.
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if bin, ok := unparen(as.Rhs[i]).(*ast.BinaryExpr); ok && selfReferential(info, lhs, bin) {
					reportIfOuterFloat(pass, info, rng, lhs)
				}
			}
		}
		return true
	})
}

// selfReferential reports whether the binary expression mentions the
// object lhs resolves to (so `x = x + w` counts, `x = a + b` does not).
func selfReferential(info *types.Info, lhs ast.Expr, bin *ast.BinaryExpr) bool {
	id := rootIdentOf(lhs)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return mentionsObject(info, bin, obj)
}

// reportIfOuterFloat reports lhs when it is float-typed and its variable
// was declared outside the range statement's body.
func reportIfOuterFloat(pass *Pass, info *types.Info, rng *ast.RangeStmt, lhs ast.Expr) {
	t := pass.TypeOf(lhs)
	if t == nil || !isFloat(t) {
		return
	}
	if indexedByRangeKey(info, rng, lhs) {
		return
	}
	id := rootIdentOf(lhs)
	if id == nil {
		return
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return
	}
	// Struct fields and package vars have no in-body position; locals
	// declared inside the body span [rng.Body.Pos(), rng.Body.End()).
	if obj.Pos() >= rng.Body.Pos() && obj.Pos() < rng.Body.End() {
		return
	}
	pass.Reportf(lhs.Pos(), "float accumulation into %s over map iteration is order-nondeterministic; iterate sorted keys instead", types.ExprString(lhs))
}

// indexedByRangeKey reports whether lhs is an index expression whose
// index is exactly the range statement's key variable — the distinct-
// slot-per-iteration pattern that is order-independent.
func indexedByRangeKey(info *types.Info, rng *ast.RangeStmt, lhs ast.Expr) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := info.Defs[keyID]
	if keyObj == nil {
		keyObj = info.Uses[keyID]
	}
	if keyObj == nil {
		return false
	}
	ix, ok := unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := unparen(ix.Index).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj == keyObj
}
