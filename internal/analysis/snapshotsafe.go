package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotSafe enforces the engine's publish-then-freeze snapshot
// contract. A type is "published" when some struct field or variable in
// the program holds it inside a sync/atomic.Pointer — after an
// atomic.Pointer[T].Store, every *T reachable from a Load must be
// immutable, because readers drain on old versions with no lock held.
//
// Two rules:
//
//  1. No field of a published type may be written. Writes are allowed
//     only in builder functions (names starting with new/New that
//     return the type, or any function annotated //dmcs:builder), and
//     in sync.Once.Do closures targeting fields annotated
//     //dmcs:lazyinit (the snapshot's lazily built per-component
//     sub-CSR cache is the canonical example: Once makes the write
//     safe, the annotation makes it auditable).
//
//  2. No struct field may have type *T for a published T. Holding a
//     snapshot pointer in a field caches it across an Apply boundary —
//     the exact staleness the atomic pointer exists to prevent.
//     Snapshot pointers live in locals (one query = one Load) or inside
//     the atomic.Pointer itself.
var SnapshotSafe = &Analyzer{
	Name: "snapshotsafe",
	Doc:  "no writes to published snapshot fields; no snapshot pointers cached in struct fields",
	Run:  runSnapshotSafe,
}

// publishedTypes computes, once per Program, the set of named types that
// appear as a type argument of sync/atomic.Pointer anywhere in the
// loaded packages.
func publishedTypes(prog *Program) map[*types.TypeName]bool {
	return prog.memoize("snapshotsafe.published", func() any {
		set := make(map[*types.TypeName]bool)
		for _, pkg := range prog.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					e, ok := n.(ast.Expr)
					if !ok {
						return true
					}
					t := pkg.Info.TypeOf(e)
					if t == nil {
						return true
					}
					n2 := namedOf(t)
					if n2 == nil || n2.TypeArgs() == nil || n2.TypeArgs().Len() != 1 {
						return true
					}
					obj := n2.Obj()
					if obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
						return true
					}
					if arg := namedOf(n2.TypeArgs().At(0)); arg != nil {
						set[arg.Obj()] = true
					}
					return true
				})
			}
		}
		return set
	}).(map[*types.TypeName]bool)
}

func runSnapshotSafe(pass *Pass) error {
	published := publishedTypes(pass.Prog)
	if len(published) == 0 {
		return nil
	}
	info := pass.Pkg.Info

	isPublished := func(t types.Type) bool {
		if t == nil {
			return false
		}
		n := namedOf(t)
		return n != nil && published[n.Obj()]
	}

	// Rule 2: struct fields of published pointer type.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				t := info.TypeOf(field.Type)
				if t == nil {
					continue
				}
				if _, ok := t.(*types.Pointer); !ok {
					continue
				}
				if isPublished(t) {
					pass.Reportf(field.Pos(), "struct field caches a *%s across Apply boundaries; load it from the atomic.Pointer per use instead", namedOf(t).Obj().Name())
				}
			}
			return true
		})
	}

	// Rule 1: field writes outside builders/lazyinit.
	for _, fd := range enclosingFuncs(pass.Pkg) {
		if isSnapshotBuilder(pass, fd, isPublished) {
			continue
		}
		checkSnapshotWrites(pass, fd, isPublished)
	}
	return nil
}

// isSnapshotBuilder reports whether the function is allowed to write
// published-type fields: annotated //dmcs:builder, or named new*/New*
// and returning the published type.
func isSnapshotBuilder(pass *Pass, fd funcDeclInfo, isPublished func(types.Type) bool) bool {
	if fd.obj == nil {
		return false
	}
	if fa := pass.Prog.FuncAnnotOf(fd.obj); fa != nil && fa.Builder {
		return true
	}
	name := fd.obj.Name()
	if len(name) < 3 || (name[:3] != "new" && name[:3] != "New") {
		return false
	}
	sig := fd.obj.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if isPublished(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func checkSnapshotWrites(pass *Pass, fd funcDeclInfo, isPublished func(types.Type) bool) {
	info := pass.Pkg.Info

	// onceLazyRegions are the spans of sync.Once.Do closure bodies;
	// writes to //dmcs:lazyinit fields inside them are allowed.
	type span struct{ lo, hi int }
	var onceRegions []span
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Do" {
			return true
		}
		if !isNamed(info.TypeOf(sel.X), "sync", "Once") {
			return true
		}
		if len(call.Args) == 1 {
			if fl, ok := unparen(call.Args[0]).(*ast.FuncLit); ok {
				onceRegions = append(onceRegions, span{int(fl.Body.Pos()), int(fl.Body.End())})
			}
		}
		return true
	})
	inOnce := func(pos int) bool {
		for _, r := range onceRegions {
			if pos >= r.lo && pos < r.hi {
				return true
			}
		}
		return false
	}

	check := func(lhs ast.Expr) {
		// Peel indexes/stars down to the field selector being written:
		// s.subs[id] = x writes field subs of s.
		e := unparen(lhs)
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = unparen(x.X)
				continue
			case *ast.StarExpr:
				e = unparen(x.X)
				continue
			}
			break
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		recv := info.TypeOf(sel.X)
		if !isPublished(recv) {
			return
		}
		field := fieldVarOf(info, sel)
		if field != nil {
			if fa := pass.Prog.FieldAnnotOf(field); fa != nil && fa.LazyInit && inOnce(int(lhs.Pos())) {
				return
			}
		}
		tn := namedOf(recv).Obj()
		pass.Reportf(lhs.Pos(), "write to %s field %s after publish; %s is stored in an atomic.Pointer and must be immutable once published (build a new version instead)", tn.Name(), sel.Sel.Name, tn.Name())
	}

	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
}
