package analysis

import (
	"go/ast"
	"go/types"
)

// EpochKey enforces the engine's epoch-keying contract: every key that
// reaches the result cache or the singleflight table must be derived
// from the canonical epoch-prefixed key helper, never hand-rolled. The
// epoch prefix is what makes a mutation unable to serve stale results —
// a key built any other way silently re-opens that hole.
//
// Wiring is annotation-driven so the check survives refactors:
//
//   - the canonical helpers carry //dmcs:keymaker (engine:
//     appendCacheKey, appendFlightKey);
//   - sink functions carry //dmcs:keyed <param> naming the parameter
//     that must be canonical (engine: resultCache.get/add,
//     cacheShard.addLocked, computeFlight's fk);
//   - map fields indexed directly carry //dmcs:keyed on the field
//     (engine: cacheShard.byKey, cacheShard.flights);
//   - key-typed struct fields ([]byte/string) carry a bare //dmcs:keyed
//     (engine: batchPending.key). Such a field is canonical wherever it
//     is READ — the annotation is its contract — and in exchange every
//     WRITE to it (assignment or composite literal) must itself be
//     canonical, so the contract is machine-checked at the producer
//     instead of waived at every consumer.
//
// Within one function, an expression is "canonical" if it is a keymaker
// call result, one of the function's own //dmcs:keyed parameters, a
// read of a keyed key-typed field, or a variable/field every one of
// whose in-function assignments is canonical — propagated through
// slicing, string/[]byte conversion, and plain assignment. Passing a
// non-canonical expression to a keyed sink is a finding; so is calling
// a keyed function with an unverifiable argument, which is resolved by
// annotating the calling function's own parameter, pushing the
// obligation out to its callers.
var EpochKey = &Analyzer{
	Name: "epochkey",
	Doc:  "cache/flight-table keys must come from the canonical epoch-prefixed key helper",
	Run:  runEpochKey,
}

func runEpochKey(pass *Pass) error {
	for _, fd := range enclosingFuncs(pass.Pkg) {
		checkEpochKeyFunc(pass, fd)
	}
	return nil
}

func checkEpochKeyFunc(pass *Pass, fd funcDeclInfo) {
	info := pass.Pkg.Info
	prog := pass.Prog

	// Blessed objects: variables (including struct-field vars used via
	// this function's receiver/locals) whose in-function assignments all
	// derive from a keymaker, plus the function's own keyed parameters.
	blessed := make(map[types.Object]bool)
	// tainted tracks objects with at least one non-canonical assignment:
	// one hand-rolled write poisons the variable even if another
	// assignment is canonical.
	tainted := make(map[types.Object]bool)

	if fd.obj != nil {
		if fa := prog.FuncAnnotOf(fd.obj); fa != nil {
			sig := fd.obj.Type().(*types.Signature)
			for _, name := range fa.KeyedParams {
				if i := paramIndex(sig, name); i >= 0 {
					blessed[sig.Params().At(i)] = true
				}
			}
		}
	}

	var canonical func(e ast.Expr) bool
	canonical = func(e ast.Expr) bool {
		switch e := unparen(e).(type) {
		case *ast.CallExpr:
			if callee := calleeOf(info, e); callee != nil {
				if fa := prog.FuncAnnotOf(callee); fa != nil && fa.Keymaker {
					return true
				}
			}
			// string(k) / []byte(k) conversions preserve canonicality.
			if isConversion(info, e) && len(e.Args) == 1 {
				return canonical(e.Args[0])
			}
			return false
		case *ast.SliceExpr:
			return canonical(e.X)
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && blessed[obj] && !tainted[obj]
		case *ast.SelectorExpr:
			if v := fieldVarOf(info, e); v != nil {
				if keyedKeyField(prog, v) {
					// A //dmcs:keyed key-typed field is canonical by
					// contract; its writes are checked below.
					return true
				}
				return blessed[v] && !tainted[v]
			}
			return false
		default:
			return false
		}
	}

	assignTarget := func(e ast.Expr) types.Object {
		switch e := unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Defs[e]; obj != nil {
				return obj
			}
			return info.Uses[e]
		case *ast.SelectorExpr:
			if v := fieldVarOf(info, e); v != nil {
				return v
			}
		}
		return nil
	}

	// Fixpoint over assignments: unordered flow, so `k := appendKey(...)`
	// followed by `use(k)` blesses k wherever it appears.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				obj := assignTarget(lhs)
				if obj == nil {
					continue
				}
				if canonical(as.Rhs[i]) {
					if !blessed[obj] {
						blessed[obj] = true
						changed = true
					}
				} else if keyLike(info, lhs) && mentionsKeymaker(info, prog, as.Rhs[i]) {
					// Mixed expression that still roots in a keymaker
					// (e.g. append(canonicalKey, suffix...)) stays
					// unblessed but is not treated as a taint either.
					continue
				}
			}
			return true
		})
	}
	// Taint pass: any assignment of a non-canonical value to an object
	// that also has canonical assignments.
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			obj := assignTarget(lhs)
			if obj == nil || !blessed[obj] {
				continue
			}
			if !canonical(as.Rhs[i]) && !mentionsKeymaker(info, prog, as.Rhs[i]) {
				tainted[obj] = true
			}
		}
		return true
	})

	report := func(arg ast.Expr, what string) {
		pass.Reportf(arg.Pos(), "%s key %s is not derived from the canonical epoch-prefixed key helper (//dmcs:keymaker)", what, types.ExprString(arg))
	}

	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil {
				return true
			}
			fa := prog.FuncAnnotOf(callee)
			if fa == nil || len(fa.KeyedParams) == 0 {
				return true
			}
			sig := callee.Type().(*types.Signature)
			for _, name := range fa.KeyedParams {
				i := paramIndex(sig, name)
				if i < 0 || i >= len(n.Args) {
					continue
				}
				if !canonical(n.Args[i]) {
					report(n.Args[i], "cache/flight")
				}
			}
		case *ast.IndexExpr:
			sel, ok := unparen(n.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldVarOf(info, sel)
			if v == nil {
				return true
			}
			if fa := prog.FieldAnnotOf(v); fa == nil || !fa.Keyed {
				return true
			}
			if !canonical(n.Index) {
				report(n.Index, "keyed-map")
			}
		case *ast.AssignStmt:
			// Writes to keyed key-typed fields must be canonical: reads
			// of such fields are trusted on that basis.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldVarOf(info, sel); keyedKeyField(prog, v) && !canonical(n.Rhs[i]) {
					report(n.Rhs[i], "keyed-field")
				}
			}
		case *ast.CompositeLit:
			// Composite literals are the other way a keyed key-typed
			// field gets written (engine: the batchPending admission
			// literal).
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, el := range n.Elts {
				var v *types.Var
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					id, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					v, _ = info.Uses[id].(*types.Var)
					val = kv.Value
				} else if i < st.NumFields() {
					v = st.Field(i)
				}
				if keyedKeyField(prog, v) && !canonical(val) {
					report(val, "keyed-field")
				}
			}
		}
		return true
	})
}

// keyedKeyField reports whether v is a struct field annotated with a
// bare //dmcs:keyed whose type is key-like ([]byte or string). Map
// fields carrying the same annotation keep their index-expression
// semantics and are excluded here.
func keyedKeyField(prog *Program, v *types.Var) bool {
	if v == nil {
		return false
	}
	fa := prog.FieldAnnotOf(v)
	return fa != nil && fa.Keyed && keyLikeType(v.Type())
}

// keyLike reports whether the assignment target is a plausible key
// buffer ([]byte or string typed).
func keyLike(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	return keyLikeType(t)
}

// keyLikeType reports whether t is a key-buffer type: []byte or string.
func keyLikeType(t types.Type) bool {
	if s, ok := t.Underlying().(*types.Slice); ok {
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// mentionsKeymaker reports whether the expression contains a call to a
// //dmcs:keymaker function anywhere inside it.
func mentionsKeymaker(info *types.Info, prog *Program, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if callee := calleeOf(info, call); callee != nil {
			if fa := prog.FuncAnnotOf(callee); fa != nil && fa.Keymaker {
				found = true
			}
		}
		return !found
	})
	return found
}
