package analysis

import (
	"go/ast"
	"go/types"
)

// SliceShift flags the PR-1 bug class: popping a BFS/work queue by
// re-slicing it from the front inside a loop.
//
//	for len(q) > 0 {
//		u := q[0]
//		q = q[1:]        // finding
//		q = append(q, w) // appends now write into a shifted window
//	}
//
// Re-slicing advances the slice header past the backing array's start,
// so a later append can reuse capacity that still aliases elements a
// concurrent reader (or the same loop's earlier reference) considers
// live — the exact shape behind the seven identical BFS bugs PR 1 fixed
// by switching to index-based queue heads. The analyzer flags any
// `x = x[k:]` with a nonzero low bound on a slice-typed x inside a for
// or range statement; strings are exempt (front-trimming a string in a
// parser loop is idiomatic and value-semantic).
var SliceShift = &Analyzer{
	Name: "sliceshift",
	Doc:  "flag q = q[1:] queue-pop re-slicing inside loops (use an index head)",
	Run:  runSliceShift,
}

func runSliceShift(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		var loopDepth int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth++
				// Walk children manually so the depth unwinds afterwards.
				ast.Inspect(loopBody(n), walk)
				if init := loopInit(n); init != nil {
					ast.Inspect(init, walk)
				}
				loopDepth--
				return false
			case *ast.AssignStmt:
				if loopDepth == 0 {
					return true
				}
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					checkSliceShift(pass, lhs, n.Rhs[i])
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// loopBody returns the body of a for or range statement.
func loopBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// loopInit returns the init/condition region of a for statement, where a
// pop can also hide (`for q = q[1:]; len(q) > 0; ...`).
func loopInit(n ast.Node) ast.Node {
	if f, ok := n.(*ast.ForStmt); ok && f.Init != nil {
		return f.Init
	}
	return nil
}

func checkSliceShift(pass *Pass, lhs, rhs ast.Expr) {
	se, ok := unparen(rhs).(*ast.SliceExpr)
	if !ok || se.Low == nil || se.Slice3 {
		return
	}
	// x = x[k:] with the same x on both sides.
	if !sameExprStructure(lhs, se.X) {
		return
	}
	// Nonzero low bound: a literal 0 low is a no-op, not a pop.
	if lit, ok := unparen(se.Low).(*ast.BasicLit); ok && lit.Value == "0" {
		return
	}
	t := pass.TypeOf(se.X)
	if t == nil {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		return
	}
	if !isSliceType(t) {
		return
	}
	pass.Reportf(rhs.Pos(), "queue pop by re-slicing (%s) inside a loop shifts the backing window under later appends; use an index head instead", types.ExprString(rhs))
}
