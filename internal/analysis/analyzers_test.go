package analysis

import (
	"strings"
	"testing"
)

func TestHotPath(t *testing.T)      { runAnalyzer(t, HotPath, "hotpath/a") }
func TestSnapshotSafe(t *testing.T) { runAnalyzer(t, SnapshotSafe, "snapshotsafe/a") }
func TestEpochKey(t *testing.T)     { runAnalyzer(t, EpochKey, "epochkey/a") }
func TestArenaPair(t *testing.T)    { runAnalyzer(t, ArenaPair, "arenapair/a") }
func TestFloatDet(t *testing.T)     { runAnalyzer(t, FloatDet, "floatdet/a") }
func TestSliceShift(t *testing.T)   { runAnalyzer(t, SliceShift, "sliceshift/a") }

// TestWaivers checks the //dmcs:allow machinery directly: malformed and
// unknown-analyzer waivers are themselves findings and suppress nothing,
// while well-formed analyzer-specific and blanket waivers suppress the
// finding on their own line and the next.
func TestWaivers(t *testing.T) {
	prog, err := LoadFixtureDirs("testdata/src", "waiver/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := prog.Run(SliceShift)
	if err != nil {
		t.Fatalf("running sliceshift: %v", err)
	}

	type found struct {
		analyzer string
		line     int
		message  string
	}
	var got []found
	for _, d := range diags {
		posn := prog.Fset.Position(d.Pos)
		got = append(got, found{d.Analyzer, posn.Line, d.Message})
	}

	want := []struct {
		analyzer string
		line     int
		substr   string
	}{
		{"dmcsvet", 8, "malformed //dmcs:allow"},
		{"sliceshift", 11, "queue pop by re-slicing"},
		{"dmcsvet", 16, `unknown analyzer "nosuchanalyzer"`},
	}
	for _, w := range want {
		matched := false
		for _, g := range got {
			if g.analyzer == w.analyzer && g.line == w.line && strings.Contains(g.message, w.substr) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("missing diagnostic: %s at line %d containing %q (got %v)", w.analyzer, w.line, w.substr, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d diagnostics, want %d: %v", len(got), len(want), got)
	}
}

// TestAnalyzerRegistry pins the suite's composition: All() is the list
// CI runs, and byName is how waivers name their targets.
func TestAnalyzerRegistry(t *testing.T) {
	names := []string{"hotpath", "snapshotsafe", "epochkey", "arenapair", "floatdet", "sliceshift"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(names))
	}
	for i, n := range names {
		if all[i].Name != n {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name, n)
		}
		if byName(n) != all[i] {
			t.Errorf("byName(%q) did not return All()[%d]", n, i)
		}
		if all[i].Doc == "" {
			t.Errorf("%s has no Doc", n)
		}
	}
	if byName("nosuch") != nil {
		t.Error("byName(nosuch) should be nil")
	}
}
