package analysis

// antest_test.go is the package's analysistest equivalent: fixtures
// under testdata/src carry `// want "regexp"` comments on the lines
// where an analyzer must report, and runAnalyzer checks the diagnostic
// set against them exactly — every reported diagnostic must match a
// want on its line, and every want must be matched by some diagnostic.
// The same golang.org/x/tools/go/analysis/analysistest contract, built
// on the package's own fixture loader.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runAnalyzer loads the fixture packages (paths under testdata/src) and
// checks the analyzer's diagnostics against their want comments.
func runAnalyzer(t *testing.T, a *Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join("testdata", "src")
	prog, err := LoadFixtureDirs(root, pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgs, err)
	}
	diags, err := prog.Run(a)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					posn := prog.Fset.Position(c.Pos())
					ws, err := parseWants(c.Text)
					if err != nil {
						t.Fatalf("%s: %v", posn, err)
					}
					for _, re := range ws {
						wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		posn := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", posn, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the regexps of a `// want "re" "re"...` comment.
// Non-want comments return nil. Both interpreted and raw Go string
// literals are accepted.
func parseWants(text string) ([]*regexp.Regexp, error) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		lit, err := quotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want comment at %q: %v", rest, err)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("compiling want pattern %q: %v", s, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[len(lit):])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

// quotedPrefix returns the Go string literal at the start of s.
func quotedPrefix(s string) (string, error) {
	return strconv.QuotedPrefix(s)
}
