package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath enforces the zero-allocation contract on the serving hot path.
// A function annotated //dmcs:hotpath — and, transitively, every module
// function it statically calls — must not allocate or take an
// unsharded lock: these are the paths the engine's cache-hit latency and
// the peel kernels' throughput depend on, and the repository already
// gates them with testing.AllocsPerRun in CI. The analyzer is the
// static complement: it points at the exact expression that allocates
// instead of a post-hoc allocation count.
//
// Flagged constructs inside a hot function:
//
//   - map and slice composite literals, &T{} heap literals, make, new;
//   - append whose destination is not recycled capacity (allowed when
//     the first argument is a parameter, a slice expression like
//     buf[:0], or the self-append idiom x = append(x, ...));
//   - fmt.* calls (interface boxing plus formatting state);
//   - string<->[]byte conversions, except the m[string(b)] map-index
//     idiom the compiler optimizes to zero allocations;
//   - string concatenation;
//   - value-to-interface boxing in calls, assignments, and returns
//     (pointers are exempt: boxing a pointer does not allocate);
//   - closures (FuncLit) and go statements;
//   - dynamic calls (func values, interface methods) — unanalyzable,
//     so unprovable;
//   - Lock/RLock on a sync.Mutex/RWMutex unless the mutex is a struct
//     field annotated //dmcs:striped (per-shard locks are bounded; a
//     global lock serializes the serving path).
//
// Exceptions that are genuinely safe (grow-once prealloc helpers, a
// defer closure on a cold error path) carry //dmcs:allow hotpath
// waivers with a reason.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//dmcs:hotpath functions (and their static callees) must not allocate or take non-striped locks",
	Run:  runHotPath,
}

// hotFuncs computes, once per Program, every function reachable from a
// //dmcs:hotpath root through static calls to module functions, mapped
// to the root that reaches it (for attribution in messages).
func hotFuncs(prog *Program) map[*types.Func]*types.Func {
	return prog.memoize("hotpath.reach", func() any {
		hot := make(map[*types.Func]*types.Func)
		var queue []*types.Func
		for fn, fa := range prog.funcAnnots {
			if fa.Hotpath {
				hot[fn] = fn
				queue = append(queue, fn)
			}
		}
		// Deterministic BFS order so root attribution is stable when a
		// function is reachable from several roots.
		sortFuncsByPos(prog, queue)
		for i := 0; i < len(queue); i++ {
			fn := queue[i]
			decl := prog.DeclOf(fn)
			pkg := prog.PackageOf(fn)
			if decl == nil || pkg == nil {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // the closure itself is flagged; its body is its own world
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(pkg.Info, call)
				if callee == nil || prog.DeclOf(callee) == nil {
					return true // dynamic or extra-module; handled at check time
				}
				if _, seen := hot[callee]; !seen {
					hot[callee] = hot[fn]
					queue = append(queue, callee)
				}
				return true
			})
		}
		return hot
	}).(map[*types.Func]*types.Func)
}

func sortFuncsByPos(prog *Program, fns []*types.Func) {
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && fns[j].Pos() < fns[j-1].Pos(); j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
}

func runHotPath(pass *Pass) error {
	hot := hotFuncs(pass.Prog)
	if len(hot) == 0 {
		return nil
	}
	for _, fd := range enclosingFuncs(pass.Pkg) {
		if fd.obj == nil {
			continue
		}
		if root, ok := hot[fd.obj]; ok {
			checkHotBody(pass, fd, root)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, fd funcDeclInfo, root *types.Func) {
	info := pass.Pkg.Info

	suffix := ""
	if root != fd.obj {
		suffix = " (on hot path via //dmcs:hotpath root " + root.Name() + ")"
	}
	report := func(pos token.Pos, msg string) {
		pass.Reportf(pos, "%s%s", msg, suffix)
	}

	// Pre-pass 1: m[string(b)] map-index conversions are compiled
	// without allocating; exempt them.
	exemptConv := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if t := info.TypeOf(ix.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if call, ok := unparen(ix.Index).(*ast.CallExpr); ok && isConversion(info, call) {
			exemptConv[call] = true
		}
		return true
	})

	// Pre-pass 2: self-append recycle idiom x = append(x, ...).
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok || builtinOf(info, call) != "append" || len(call.Args) == 0 {
				continue
			}
			if sameExprStructure(as.Lhs[i], call.Args[0]) {
				selfAppend[call] = true
			}
		}
		return true
	})

	sig := fd.obj.Type().(*types.Signature)
	isParam := func(e ast.Expr) bool {
		id := rootIdentOf(e)
		if id == nil {
			return false
		}
		obj := info.Uses[id]
		for i := 0; i < sig.Params().Len(); i++ {
			if obj == sig.Params().At(i) {
				return true
			}
		}
		if sig.Recv() != nil && obj == sig.Recv() {
			return true
		}
		return false
	}

	boxes := func(dst types.Type, src ast.Expr) bool {
		if dst == nil || !types.IsInterface(dst.Underlying()) {
			return false
		}
		st := info.TypeOf(src)
		if st == nil {
			return false
		}
		if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return false
		}
		if types.IsInterface(st.Underlying()) {
			return false // already boxed
		}
		if _, ok := st.Underlying().(*types.Pointer); ok {
			return false // pointer-in-interface needs no allocation
		}
		return true
	}

	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure allocates on the hot path")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement on the hot path spawns a goroutine")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&T{} literal allocates on the hot path")
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates on the hot path")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates on the hot path")
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if boxes(info.TypeOf(n.Lhs[i]), rhs) {
						report(rhs.Pos(), "value-to-interface assignment boxes (allocates) on the hot path")
					}
				}
			}
		case *ast.ReturnStmt:
			res := sig.Results()
			if len(n.Results) == res.Len() {
				for i, r := range n.Results {
					if boxes(res.At(i).Type(), r) {
						report(r.Pos(), "value-to-interface return boxes (allocates) on the hot path")
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, info, n, report, exemptConv, selfAppend, isParam, boxes)
		}
		return true
	})
}

func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, report func(token.Pos, string), exemptConv, selfAppend map[*ast.CallExpr]bool, isParam func(ast.Expr) bool, boxes func(types.Type, ast.Expr) bool) {
	switch builtinOf(info, call) {
	case "make":
		report(call.Pos(), "make allocates on the hot path (preallocate in the builder or scratch arena)")
		return
	case "new":
		report(call.Pos(), "new allocates on the hot path")
		return
	case "append":
		if len(call.Args) == 0 {
			return
		}
		dst := unparen(call.Args[0])
		if _, isSlice := dst.(*ast.SliceExpr); isSlice {
			return // buf[:0] recycle
		}
		if selfAppend[call] || isParam(dst) {
			return
		}
		report(call.Pos(), "append to a fresh slice may allocate on the hot path (recycle capacity: x = append(x[:0], ...))")
		return
	case "":
		// not a builtin; fall through
	default:
		return // len/cap/copy/delete and friends don't allocate
	}

	if isConversion(info, call) {
		if len(call.Args) == 1 && !exemptConv[call] {
			dst, src := info.TypeOf(call), info.TypeOf(call.Args[0])
			if stringByteConversion(dst, src) {
				report(call.Pos(), "string<->[]byte conversion copies on the hot path (keep one representation; m[string(b)] lookups are exempt)")
			}
			if boxes(dst, call.Args[0]) {
				report(call.Pos(), "conversion to interface boxes (allocates) on the hot path")
			}
		}
		return
	}

	callee := calleeOf(info, call)
	if callee == nil {
		// An immediately-invoked func literal is statically known; the
		// FuncLit itself is already flagged as a closure allocation.
		if _, isLit := unparen(call.Fun).(*ast.FuncLit); !isLit {
			report(call.Pos(), "dynamic call through a function value cannot be proven allocation-free on the hot path")
		}
		return
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt."+callee.Name()+" allocates (formatting state and boxed arguments) on the hot path")
		return
	}
	csig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := csig.Recv(); recv != nil {
		if types.IsInterface(recv.Type().Underlying()) {
			report(call.Pos(), "interface method call is dynamic dispatch and cannot be proven allocation-free on the hot path")
			return
		}
		if callee.Name() == "Lock" || callee.Name() == "RLock" {
			checkHotLock(pass, info, call, callee, report)
		}
	}
	// Boxing at call arguments against the static callee signature.
	params := csig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case csig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			if types.IsInterface(pt.Underlying()) {
				report(arg.Pos(), "variadic interface argument allocates (arg slice plus boxing) on the hot path")
				continue
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pt, arg) {
			report(arg.Pos(), "value-to-interface argument boxes (allocates) on the hot path")
		}
	}
}

// checkHotLock flags Lock/RLock on sync mutexes that are not struct
// fields annotated //dmcs:striped.
func checkHotLock(pass *Pass, info *types.Info, call *ast.CallExpr, callee *types.Func, report func(token.Pos, string)) {
	recvT := callee.Type().(*types.Signature).Recv().Type()
	if !isNamed(recvT, "sync", "Mutex") && !isNamed(recvT, "sync", "RWMutex") {
		return
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if mutexSel, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
		if v := fieldVarOf(info, mutexSel); v != nil {
			if fa := pass.Prog.FieldAnnotOf(v); fa != nil && fa.Striped {
				return
			}
			report(call.Pos(), "lock on mutex field "+v.Name()+" is not marked //dmcs:striped; a global lock serializes the hot path")
			return
		}
	}
	report(call.Pos(), callee.Name()+" on a mutex that is not a //dmcs:striped struct field; a global lock serializes the hot path")
}

// stringByteConversion reports a string<->[]byte (or []rune) copy.
func stringByteConversion(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
