// Package clique implements k-clique enumeration and the clique-percolation
// community-search baseline of the paper (Yuan et al. 2017, "index-based
// densest clique percolation community search"): two k-cliques are adjacent
// when they share k−1 nodes, and a community is the union of the cliques in
// one connected class of that adjacency relation. The densest clique
// percolation community of a query node is the k-clique percolation
// community with the largest feasible k.
package clique

import (
	"slices"

	"dmcs/internal/graph"
)

// Enumerate lists all k-cliques of g (k ≥ 2) as sorted node slices. The
// enumeration extends partial cliques with higher-numbered common
// neighbors, so every clique is emitted exactly once.
func Enumerate(g *graph.Graph, k int) [][]graph.Node {
	if k < 2 {
		return nil
	}
	var out [][]graph.Node
	cur := make([]graph.Node, 0, k)
	var extend func(cands []graph.Node)
	extend = func(cands []graph.Node) {
		if len(cur) == k {
			out = append(out, append([]graph.Node(nil), cur...))
			return
		}
		for i, v := range cands {
			cur = append(cur, v)
			if len(cur) == k {
				extend(nil)
			} else {
				var next []graph.Node
				for _, w := range cands[i+1:] {
					if g.HasEdge(v, w) {
						next = append(next, w)
					}
				}
				// prune: not enough candidates to finish the clique
				if len(cur)+len(next) >= k {
					extend(next)
				}
			}
			cur = cur[:len(cur)-1]
		}
	}
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		var cands []graph.Node
		for _, w := range g.Neighbors(graph.Node(u)) {
			if w > graph.Node(u) {
				cands = append(cands, w)
			}
		}
		cur = append(cur, graph.Node(u))
		if len(cands)+1 >= k {
			extend(cands)
		}
		cur = cur[:0]
	}
	return out
}

// MaxCliqueSize returns the size of the largest clique containing node u
// (at least 1). It uses a greedy-then-exact search over u's neighborhood,
// exact because neighborhoods in our workloads are small.
func MaxCliqueSize(g *graph.Graph, u graph.Node) int {
	nbrs := g.Neighbors(u)
	best := 1
	var cur []graph.Node
	var extend func(cands []graph.Node)
	extend = func(cands []graph.Node) {
		if len(cur)+1 > best {
			best = len(cur) + 1
		}
		for i, v := range cands {
			if len(cur)+1+len(cands)-i <= best {
				return // bound
			}
			var next []graph.Node
			for _, w := range cands[i+1:] {
				if g.HasEdge(v, w) {
					next = append(next, w)
				}
			}
			cur = append(cur, v)
			extend(next)
			cur = cur[:len(cur)-1]
		}
	}
	extend(nbrs)
	return best
}

// PercolationCommunity returns the union of k-cliques reachable from a
// k-clique containing q by moves between cliques sharing k−1 nodes, or nil
// when q is in no k-clique.
func PercolationCommunity(g *graph.Graph, q graph.Node, k int) []graph.Node {
	cliques := Enumerate(g, k)
	if len(cliques) == 0 {
		return nil
	}
	// adjacency between cliques via shared (k-1)-subsets
	subKey := func(c []graph.Node, skip int) string {
		buf := make([]byte, 0, (len(c)-1)*4)
		for i, u := range c {
			if i == skip {
				continue
			}
			buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
		return string(buf)
	}
	bySub := make(map[string][]int)
	for ci, c := range cliques {
		for s := range c {
			key := subKey(c, s)
			bySub[key] = append(bySub[key], ci)
		}
	}
	// union-find over cliques
	parent := make([]int, len(cliques))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, group := range bySub {
		for _, ci := range group[1:] {
			a, b := find(group[0]), find(ci)
			if a != b {
				parent[b] = a
			}
		}
	}
	// find a clique containing q
	root := -1
	for ci, c := range cliques {
		for _, u := range c {
			if u == q {
				root = find(ci)
				break
			}
		}
		if root >= 0 {
			break
		}
	}
	if root < 0 {
		return nil
	}
	seen := make(map[graph.Node]bool)
	for ci, c := range cliques {
		if find(ci) == root {
			for _, u := range c {
				seen[u] = true
			}
		}
	}
	out := make([]graph.Node, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

// DensestPercolationCommunity implements the clique baseline: the k-clique
// percolation community of q with the maximum feasible k. Returns the
// community and k, or (nil, 0) when q has no edge.
func DensestPercolationCommunity(g *graph.Graph, q graph.Node) ([]graph.Node, int) {
	kmax := MaxCliqueSize(g, q)
	for k := kmax; k >= 2; k-- {
		if c := PercolationCommunity(g, q, k); c != nil {
			return c, k
		}
	}
	return nil, 0
}
