package clique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmcs/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	return b.Build()
}

func choose(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestEnumerateCliqueCounts(t *testing.T) {
	g := complete(6)
	for k := 2; k <= 6; k++ {
		got := len(Enumerate(g, k))
		want := choose(6, k)
		if got != want {
			t.Fatalf("K6 has %d %d-cliques, want %d", got, k, want)
		}
	}
}

func TestEnumerateTriangleFree(t *testing.T) {
	// 4-cycle has no triangles
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if got := Enumerate(g, 3); len(got) != 0 {
		t.Fatalf("C4 should have no triangles, got %v", got)
	}
	if got := Enumerate(g, 2); len(got) != 4 {
		t.Fatalf("C4 has 4 edges, got %d", len(got))
	}
}

func TestEnumerateRejectsK1(t *testing.T) {
	if Enumerate(complete(3), 1) != nil {
		t.Fatal("k<2 should return nil")
	}
}

// Property: every enumerated set is a clique, all distinct.
func TestEnumerateProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(12)
		for i := 0; i < 12; i++ {
			for j := i + 1; j < 12; j++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		k := 3 + rng.Intn(2)
		seen := make(map[[4]graph.Node]bool)
		for _, c := range Enumerate(g, k) {
			if len(c) != k {
				return false
			}
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if !g.HasEdge(c[i], c[j]) {
						return false
					}
				}
			}
			var key [4]graph.Node
			copy(key[:], c)
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCliqueSize(t *testing.T) {
	g := complete(5)
	if got := MaxCliqueSize(g, 0); got != 5 {
		t.Fatalf("K5 max clique=%d want 5", got)
	}
	// triangle + pendant
	g2 := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if got := MaxCliqueSize(g2, 3); got != 2 {
		t.Fatalf("pendant max clique=%d want 2", got)
	}
	if got := MaxCliqueSize(g2, 0); got != 3 {
		t.Fatalf("triangle node max clique=%d want 3", got)
	}
	iso := graph.FromEdges(2, nil)
	if got := MaxCliqueSize(iso, 0); got != 1 {
		t.Fatalf("isolated max clique=%d want 1", got)
	}
}

func TestPercolationCommunityTwoTrianglesSharedEdge(t *testing.T) {
	// triangles {0,1,2} and {1,2,3} share edge (1,2): one 3-clique
	// percolation community covering all 4 nodes.
	g := graph.FromEdges(4, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}})
	c := PercolationCommunity(g, 0, 3)
	if len(c) != 4 {
		t.Fatalf("community=%v want all 4 nodes", c)
	}
}

func TestPercolationCommunitySeparatedTriangles(t *testing.T) {
	// two triangles sharing only node 2: NOT adjacent for k=3 (share 1 < 2
	// nodes), so the community of node 0 is just its triangle.
	g := graph.FromEdges(5, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	c := PercolationCommunity(g, 0, 3)
	if len(c) != 3 {
		t.Fatalf("community=%v want one triangle", c)
	}
	for _, u := range c {
		if u > 2 {
			t.Fatalf("community leaked: %v", c)
		}
	}
}

func TestPercolationCommunityNoClique(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.Node{{0, 1}, {1, 2}})
	if c := PercolationCommunity(g, 0, 3); c != nil {
		t.Fatalf("no triangle exists, got %v", c)
	}
}

func TestDensestPercolationCommunity(t *testing.T) {
	// K4 joined to a triangle via a shared node: densest for a K4 member
	// is k=4 covering the K4 only.
	b := graph.NewBuilder(6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	g := b.Build()
	c, k := DensestPercolationCommunity(g, 0)
	if k != 4 || len(c) != 4 {
		t.Fatalf("densest percolation k=%d c=%v want k=4 over the K4", k, c)
	}
	// for the triangle node 5, densest is the triangle at k=3
	c, k = DensestPercolationCommunity(g, 5)
	if k != 3 || len(c) != 3 {
		t.Fatalf("densest percolation k=%d c=%v want the triangle", k, c)
	}
	// isolated node
	iso := graph.FromEdges(2, nil)
	if c, k := DensestPercolationCommunity(iso, 0); c != nil || k != 0 {
		t.Fatal("isolated node should have no percolation community")
	}
}
