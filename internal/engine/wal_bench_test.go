package engine

import (
	"testing"
	"time"

	"dmcs/internal/graph"
	"dmcs/internal/wal"
)

// walBenchBatch is the BenchmarkEngineApplyUpdates workload: consecutive
// op pairs remove then restore the same 8 edges inside one component, so
// the graph returns to its start state every two ops and every batch is
// guaranteed effective (the epoch sequence stays dense).
func walBenchBatch(i int) Batch {
	comp := (i / 2) % benchComponents
	base := graph.Node(comp * benchCompSize)
	var batch Batch
	for k := 0; k < 8; k++ {
		u := base + graph.Node(((i/2)*11+k*5)%(benchCompSize-1))
		if i%2 == 0 {
			batch.RemoveEdge(u, u+1)
		} else {
			batch.AddEdge(u, u+1)
		}
	}
	return batch
}

// BenchmarkEngineApplyWALOverhead prices durability on the mutation
// path: the same toggle-batch workload as BenchmarkEngineApplyUpdates,
// once against a plain engine (untimed baseline) and once against a
// durable engine with the production default fsync policy (interval).
// The reported wal_overhead_ratio is durable-ns-per-op over
// baseline-ns-per-op; CI gates it at <= 1.5 — the WAL append (encode +
// buffered write) must stay a fraction of the O(V+E) merge sweep it
// rides on, not a second copy of it.
func BenchmarkEngineApplyWALOverhead(b *testing.B) {
	// Baseline: identical workload and iteration count, no WAL. Measured
	// with a plain wall clock outside the benchmark timer so only the
	// durable run below is what b.N calibrates against.
	base := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1})
	start := time.Now()
	for i := 0; i < b.N; i++ {
		base.Apply(walBenchBatch(i))
	}
	baseline := time.Since(start)

	e, _, err := OpenDurable(smallQueryEngineGraph(benchComponents, benchCompSize), wal.Options{
		Dir:    b.TempDir(),
		Policy: wal.SyncInterval,
	}, Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer e.CloseWAL()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Apply(walBenchBatch(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if baseline > 0 {
		b.ReportMetric(float64(b.Elapsed())/float64(baseline), "wal_overhead_ratio")
	}
}

// BenchmarkEngineApplyWALFsyncAlways records (not gates) the cost of the
// strictest policy: one fsync per acknowledged batch. The gap between
// this and the interval run above is the price of zero-loss-on-power-cut
// durability.
func BenchmarkEngineApplyWALFsyncAlways(b *testing.B) {
	e, _, err := OpenDurable(smallQueryEngineGraph(benchComponents, benchCompSize), wal.Options{
		Dir:    b.TempDir(),
		Policy: wal.SyncAlways,
	}, Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer e.CloseWAL()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Apply(walBenchBatch(i)); err != nil {
			b.Fatal(err)
		}
	}
}
