package engine

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// ErrNodeOutOfRange is returned for query nodes outside [0, NumNodes).
var ErrNodeOutOfRange = errors.New("engine: query node out of range")

// Snapshot is the immutable, read-optimized view of one graph version
// that every query served by an Engine runs against. It packs the
// adjacency into a CSR (with the weighted-degree and total-weight
// aggregates the modularity formulas need) and precomputes the
// connected-component partition, so admitting a query costs O(|Q|)
// instead of the BFS + sort that the plain dmcs.Search entry points pay
// per call. Snapshots are safe for concurrent readers; nothing visible to
// them is ever mutated after construction. Engine.Apply never touches an
// existing snapshot either — it builds the next one and swaps an atomic
// pointer, so queries that admitted against an older version drain on it
// undisturbed.
//
// Each snapshot carries an epoch — 0 at construction, incremented by
// every applied mutation batch — plus a component-version vector: every
// component has a stable identity (ComponentKey, never reused across the
// engine's lifetime) and a version (ComponentVersion, the epoch at which
// the component last changed). An Apply advances the versions only of the
// components it actually touched; an untouched component keeps its
// identity and version across the swap, so everything keyed by
// (identity, version) — cached results, in-flight singleflights, the
// per-component sub-CSR — stays valid and warm. A component's version
// pins its full scoring context: the member adjacency AND the
// normalization weight w_G the modularity objectives divide by, frozen at
// the stamping epoch. A served answer is therefore always the exact
// serial-reference answer for the graph as of that component's version.
// (Consequence, by design: on a multi-component graph, churn in one
// component does not shift the normalization term of answers served for
// other, untouched components — their answers stay bit-stable until the
// component itself changes.)
//
// Per component the snapshot also caches a compact sub-CSR (the
// component's adjacency relabelled into dense 0..k-1 ids), built lazily
// on the component's first query and shared by every later one, so a
// query against a small component of a huge graph touches only
// component-sized memory end to end. A component spanning the whole graph
// wraps the main CSR instead of copying it. Apply carries an
// already-built sub-CSR forward to the successor snapshot when the
// component is untouched; a carried component whose sub was never built
// rebuilds it lazily against the new CSR with its frozen w_G (the member
// adjacency is bit-identical by the carried contract, so the answers are
// too).
type Snapshot struct {
	csr    *graph.CSR
	compID []int32        // node id -> component id
	comps  [][]graph.Node // component id -> sorted member list
	epoch  uint64         // graph version; 0 at construction, +1 per Apply

	compKey     []uint64    // component id -> stable identity, preserved across Apply while untouched
	compVer     []uint64    // component id -> version: the epoch the component last changed
	compWG      []float64   // component id -> normalization weight w_G frozen at compVer
	compHist    [][]compRef // component id -> superseded ancestor versions, newest first
	nextCompKey uint64      // next unissued component identity

	subOnce  []sync.Once   // per-component lazy sub-CSR construction
	subBuilt []atomic.Bool // set after subOnce[id] completed; lets Apply carry built subs race-free
	//dmcs:lazyinit
	subs []*graph.SubCSR // component id -> compact sub-CSR
}

// compRef names one superseded version in a component's ancestry: the
// identity and version a now-replaced component was stamped with.
// LookupStale probes these, newest first, to serve bounded-staleness
// answers for a component that churned.
type compRef struct {
	key, ver uint64
}

// NewSnapshot builds the read-optimized snapshot of g at epoch 0. The
// map-backed graph itself is not retained: once packed, every query runs
// off the CSR, so a long-lived engine does not keep the edge-weight map
// and nested adjacency resident alongside the flat copy.
func NewSnapshot(g *graph.Graph) *Snapshot {
	csr := graph.NewCSR(g)
	compID := make([]int32, csr.NumNodes())
	for i := range compID {
		compID[i] = -1
	}
	var comps [][]graph.Node
	var queue []graph.Node
	for root := 0; root < csr.NumNodes(); root++ {
		if compID[root] != -1 {
			continue
		}
		id := int32(len(comps))
		compID[root] = id
		queue = append(queue[:0], graph.Node(root))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range csr.Neighbors(u) {
				if compID[w] == -1 {
					compID[w] = id
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, nil)
	}
	// Member lists come out sorted for free by visiting node ids in order.
	for u, id := range compID {
		comps[id] = append(comps[id], graph.Node(u))
	}
	return newSnapshotParts(csr, compID, comps, 0)
}

// newSnapshotParts assembles a snapshot from an already-built CSR and
// component partition, stamping every component fresh at epoch — the
// construction path of NewSnapshot. Apply-produced successors go through
// newSnapshotFrom instead, which preserves untouched components' stamps.
func newSnapshotParts(csr *graph.CSR, compID []int32, comps [][]graph.Node, epoch uint64) *Snapshot {
	n := len(comps)
	s := &Snapshot{
		csr:      csr,
		compID:   compID,
		comps:    comps,
		epoch:    epoch,
		compKey:  make([]uint64, n),
		compVer:  make([]uint64, n),
		compWG:   make([]float64, n),
		compHist: make([][]compRef, n),

		nextCompKey: uint64(n),
		subOnce:     make([]sync.Once, n),
		subBuilt:    make([]atomic.Bool, n),
		subs:        make([]*graph.SubCSR, n),
	}
	for i := range comps {
		s.compKey[i] = uint64(i)
		s.compVer[i] = epoch
		s.compWG[i] = csr.TotalWeight()
	}
	return s
}

// newSnapshotFrom builds the successor of prev after a merge: component
// id -> old id correspondence comes from carried (see
// graph.UpdateComponents). A carried component keeps its identity,
// version, frozen w_G, staleness ancestry, and — when already built — its
// sub-CSR. Every other component is stamped fresh: a new identity, the
// new epoch as its version, the new graph's total weight as its w_G, and
// an ancestry assembled from the old components its members came from
// (bounded by staleRetention; empty when retention is off). Returns the
// snapshot plus how many old components were invalidated (superseded by a
// touched successor) and how many were retained (carried).
func newSnapshotFrom(prev *Snapshot, csr *graph.CSR, compID []int32, comps [][]graph.Node, carried []int32, epoch uint64, staleRetention int) (s *Snapshot, invalidated, retained int) {
	n := len(comps)
	s = &Snapshot{
		csr:      csr,
		compID:   compID,
		comps:    comps,
		epoch:    epoch,
		compKey:  make([]uint64, n),
		compVer:  make([]uint64, n),
		compWG:   make([]float64, n),
		compHist: make([][]compRef, n),

		nextCompKey: prev.nextCompKey,
		subOnce:     make([]sync.Once, n),
		subBuilt:    make([]atomic.Bool, n),
		subs:        make([]*graph.SubCSR, n),
	}
	// Which old components survive verbatim; the rest are superseded.
	oldCarried := make([]bool, len(prev.comps))
	for id := 0; id < n; id++ {
		from := carried[id]
		if from < 0 {
			continue
		}
		oldCarried[from] = true
		s.compKey[id] = prev.compKey[from]
		s.compVer[id] = prev.compVer[from]
		s.compWG[id] = prev.compWG[from]
		s.compHist[id] = prev.compHist[from]
		// Carry a built sub-CSR forward. subBuilt's acquire/release pair
		// makes the read race-free against prev's concurrent lazy builders:
		// Load()==true happens-after some SubCSR call's completed Do, which
		// happens-after the build. The old sub stays valid on the new
		// snapshot — same members, same adjacency, frozen w_G — and
		// pre-completing the Once here publishes it with the usual
		// happens-before for later readers.
		if prev.subBuilt[from].Load() {
			sub := prev.subs[from]
			s.subOnce[id].Do(func() { s.subs[id] = sub })
			s.subBuilt[id].Store(true)
		}
	}
	for r := range oldCarried {
		if !oldCarried[r] {
			invalidated++
		}
	}
	for _, from := range carried {
		if from >= 0 {
			retained++
		}
	}
	// Fresh components: new identity, stamped at the new epoch, ancestry
	// collected from the distinct old components their members belonged to.
	for id := 0; id < n; id++ {
		if carried[id] >= 0 {
			continue
		}
		s.compKey[id] = s.nextCompKey
		s.nextCompKey++
		s.compVer[id] = epoch
		s.compWG[id] = csr.TotalWeight()
		if staleRetention > 0 {
			s.compHist[id] = ancestryOf(prev, comps[id], staleRetention)
		}
	}
	return s, invalidated, retained
}

// ancestryOf assembles the stale-probe list for a fresh component whose
// members came (possibly) from several old components: each distinct old
// parent contributes its own (identity, version) plus its recorded
// ancestry. Entries are ordered newest-version first and capped at
// retention.
func ancestryOf(prev *Snapshot, members []graph.Node, retention int) []compRef {
	var refs []compRef
	seen := make(map[uint64]bool, 2)
	for _, u := range members {
		if int(u) >= len(prev.compID) {
			continue // node did not exist before the merge
		}
		from := prev.compID[u]
		if seen[prev.compKey[from]] {
			continue
		}
		seen[prev.compKey[from]] = true
		refs = append(refs, compRef{key: prev.compKey[from], ver: prev.compVer[from]})
		refs = append(refs, prev.compHist[from]...)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].ver > refs[j].ver })
	if len(refs) > retention {
		refs = refs[:retention]
	}
	return refs
}

// CSR returns the packed adjacency snapshot.
func (s *Snapshot) CSR() *graph.CSR { return s.csr }

// Epoch returns the snapshot's graph version: 0 for the engine's initial
// snapshot, incremented by one per applied mutation batch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumComponents returns the number of connected components.
func (s *Snapshot) NumComponents() int { return len(s.comps) }

// ComponentID validates a query against the partition and returns the
// index of the component containing all its nodes — the public form of
// the admission check. It fails with dmcs.ErrEmptyQuery,
// ErrNodeOutOfRange, or dmcs.ErrDisconnected.
func (s *Snapshot) ComponentID(q []graph.Node) (int32, error) {
	return s.componentIndex(q)
}

// ComponentMembers returns component id's sorted member list. The slice
// is shared across queries and must not be modified.
func (s *Snapshot) ComponentMembers(id int32) []graph.Node { return s.comps[id] }

// ComponentKey returns component id's stable identity: assigned once,
// preserved across Apply while the component is untouched, and never
// reused after the component churns.
func (s *Snapshot) ComponentKey(id int32) uint64 { return s.compKey[id] }

// ComponentVersion returns component id's version — the epoch at which
// the component last changed. An Apply that does not touch the component
// leaves it unchanged, so results computed at this version stay servable.
func (s *Snapshot) ComponentVersion(id int32) uint64 { return s.compVer[id] }

// Component validates a query against the partition and returns the sorted
// connected component containing all its nodes. The returned slice is
// shared across queries and must not be modified. It fails with
// dmcs.ErrEmptyQuery, ErrNodeOutOfRange, or dmcs.ErrDisconnected.
func (s *Snapshot) Component(q []graph.Node) ([]graph.Node, error) {
	id, err := s.componentIndex(q)
	if err != nil {
		return nil, err
	}
	return s.comps[id], nil
}

// componentIndex is Component returning the partition index instead of
// the member list — the allocation-free admission check of the query
// path.
func (s *Snapshot) componentIndex(q []graph.Node) (int32, error) {
	if len(q) == 0 {
		return 0, dmcs.ErrEmptyQuery
	}
	for _, u := range q {
		if u < 0 || int(u) >= len(s.compID) {
			return 0, ErrNodeOutOfRange
		}
	}
	id := s.compID[q[0]]
	for _, u := range q[1:] {
		if s.compID[u] != id {
			return 0, dmcs.ErrDisconnected
		}
	}
	return id, nil
}

// SubCSR returns the compact sub-CSR of component id, building it on
// first use (Apply may have pre-completed the build by carrying the
// previous version's sub forward). The build pins the component's frozen
// normalization weight, so a carried component rebuilt against a newer
// CSR still scores exactly as it did at its stamped version. Safe for
// concurrent callers; the result is immutable and shared.
func (s *Snapshot) SubCSR(id int32) *graph.SubCSR {
	s.subOnce[id].Do(func() {
		if len(s.comps[id]) == s.csr.NumNodes() && s.compWG[id] == s.csr.TotalWeight() {
			s.subs[id] = graph.WrapCSR(s.csr)
		} else {
			s.subs[id] = graph.NewSubCSRAt(s.csr, s.comps[id], s.compWG[id])
		}
	})
	if !s.subBuilt[id].Load() {
		s.subBuilt[id].Store(true)
	}
	return s.subs[id]
}
