package engine

import (
	"errors"
	"sync"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// ErrNodeOutOfRange is returned for query nodes outside [0, NumNodes).
var ErrNodeOutOfRange = errors.New("engine: query node out of range")

// Snapshot is the immutable, read-optimized view of one graph that every
// query served by an Engine runs against. It packs the adjacency into a
// CSR (with the weighted-degree and total-weight aggregates the modularity
// formulas need) and precomputes the connected-component partition, so
// admitting a query costs O(|Q|) instead of the BFS + sort that the plain
// dmcs.Search entry points pay per call. Snapshots are safe for concurrent
// readers; nothing visible to them is ever mutated after construction.
//
// Per component the snapshot also caches a compact sub-CSR (the
// component's adjacency relabelled into dense 0..k-1 ids), built lazily
// on the component's first query and shared by every later one, so a
// query against a small component of a huge graph touches only
// component-sized memory end to end. A component spanning the whole graph
// wraps the main CSR instead of copying it.
type Snapshot struct {
	csr    *graph.CSR
	compID []int32        // node id -> component id
	comps  [][]graph.Node // component id -> sorted member list

	subOnce []sync.Once     // per-component lazy sub-CSR construction
	subs    []*graph.SubCSR // component id -> compact sub-CSR
}

// NewSnapshot builds the read-optimized snapshot of g. The map-backed
// graph itself is not retained: once packed, every query runs off the
// CSR, so a long-lived engine does not keep the edge-weight map and
// nested adjacency resident alongside the flat copy.
func NewSnapshot(g *graph.Graph) *Snapshot {
	s := &Snapshot{
		csr:    graph.NewCSR(g),
		compID: make([]int32, g.NumNodes()),
	}
	for i := range s.compID {
		s.compID[i] = -1
	}
	var queue []graph.Node
	for root := 0; root < g.NumNodes(); root++ {
		if s.compID[root] != -1 {
			continue
		}
		id := int32(len(s.comps))
		s.compID[root] = id
		queue = append(queue[:0], graph.Node(root))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range s.csr.Neighbors(u) {
				if s.compID[w] == -1 {
					s.compID[w] = id
					queue = append(queue, w)
				}
			}
		}
		s.comps = append(s.comps, nil)
	}
	// Member lists come out sorted for free by visiting node ids in order.
	for u, id := range s.compID {
		s.comps[id] = append(s.comps[id], graph.Node(u))
	}
	s.subOnce = make([]sync.Once, len(s.comps))
	s.subs = make([]*graph.SubCSR, len(s.comps))
	return s
}

// CSR returns the packed adjacency snapshot.
func (s *Snapshot) CSR() *graph.CSR { return s.csr }

// NumComponents returns the number of connected components.
func (s *Snapshot) NumComponents() int { return len(s.comps) }

// Component validates a query against the partition and returns the sorted
// connected component containing all its nodes. The returned slice is
// shared across queries and must not be modified. It fails with
// dmcs.ErrEmptyQuery, ErrNodeOutOfRange, or dmcs.ErrDisconnected.
func (s *Snapshot) Component(q []graph.Node) ([]graph.Node, error) {
	id, err := s.componentIndex(q)
	if err != nil {
		return nil, err
	}
	return s.comps[id], nil
}

// componentIndex is Component returning the partition index instead of
// the member list — the allocation-free admission check of the query
// path.
func (s *Snapshot) componentIndex(q []graph.Node) (int32, error) {
	if len(q) == 0 {
		return 0, dmcs.ErrEmptyQuery
	}
	for _, u := range q {
		if u < 0 || int(u) >= len(s.compID) {
			return 0, ErrNodeOutOfRange
		}
	}
	id := s.compID[q[0]]
	for _, u := range q[1:] {
		if s.compID[u] != id {
			return 0, dmcs.ErrDisconnected
		}
	}
	return id, nil
}

// SubCSR returns the compact sub-CSR of component id, building it on
// first use. Safe for concurrent callers; the result is immutable and
// shared.
func (s *Snapshot) SubCSR(id int32) *graph.SubCSR {
	s.subOnce[id].Do(func() {
		if len(s.comps[id]) == s.csr.NumNodes() {
			s.subs[id] = graph.WrapCSR(s.csr)
		} else {
			s.subs[id] = graph.NewSubCSR(s.csr, s.comps[id])
		}
	})
	return s.subs[id]
}
