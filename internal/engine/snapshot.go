package engine

import (
	"errors"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// ErrNodeOutOfRange is returned for query nodes outside [0, NumNodes).
var ErrNodeOutOfRange = errors.New("engine: query node out of range")

// Snapshot is the immutable, read-optimized view of one graph that every
// query served by an Engine runs against. It packs the adjacency into a
// CSR (with the weighted-degree and total-weight aggregates the modularity
// formulas need) and precomputes the connected-component partition, so
// admitting a query costs O(|Q|) instead of the BFS + sort that the plain
// dmcs.Search entry points pay per call. Snapshots are safe for concurrent
// readers; nothing in them is ever mutated after construction.
type Snapshot struct {
	csr    *graph.CSR
	compID []int32        // node id -> component id
	comps  [][]graph.Node // component id -> sorted member list
}

// NewSnapshot builds the read-optimized snapshot of g. The map-backed
// graph itself is not retained: once packed, every query runs off the
// CSR, so a long-lived engine does not keep the edge-weight map and
// nested adjacency resident alongside the flat copy.
func NewSnapshot(g *graph.Graph) *Snapshot {
	s := &Snapshot{
		csr:    graph.NewCSR(g),
		compID: make([]int32, g.NumNodes()),
	}
	for i := range s.compID {
		s.compID[i] = -1
	}
	var queue []graph.Node
	for root := 0; root < g.NumNodes(); root++ {
		if s.compID[root] != -1 {
			continue
		}
		id := int32(len(s.comps))
		s.compID[root] = id
		queue = append(queue[:0], graph.Node(root))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range s.csr.Neighbors(u) {
				if s.compID[w] == -1 {
					s.compID[w] = id
					queue = append(queue, w)
				}
			}
		}
		s.comps = append(s.comps, nil)
	}
	// Member lists come out sorted for free by visiting node ids in order.
	for u, id := range s.compID {
		s.comps[id] = append(s.comps[id], graph.Node(u))
	}
	return s
}

// CSR returns the packed adjacency snapshot.
func (s *Snapshot) CSR() *graph.CSR { return s.csr }

// NumComponents returns the number of connected components.
func (s *Snapshot) NumComponents() int { return len(s.comps) }

// Component validates a query against the partition and returns the sorted
// connected component containing all its nodes. The returned slice is
// shared across queries and must not be modified. It fails with
// dmcs.ErrEmptyQuery, ErrNodeOutOfRange, or dmcs.ErrDisconnected.
func (s *Snapshot) Component(q []graph.Node) ([]graph.Node, error) {
	if len(q) == 0 {
		return nil, dmcs.ErrEmptyQuery
	}
	for _, u := range q {
		if u < 0 || int(u) >= len(s.compID) {
			return nil, ErrNodeOutOfRange
		}
	}
	id := s.compID[q[0]]
	for _, u := range q[1:] {
		if s.compID[u] != id {
			return nil, dmcs.ErrDisconnected
		}
	}
	return s.comps[id], nil
}
