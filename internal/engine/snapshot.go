package engine

import (
	"errors"
	"sync"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// ErrNodeOutOfRange is returned for query nodes outside [0, NumNodes).
var ErrNodeOutOfRange = errors.New("engine: query node out of range")

// Snapshot is the immutable, read-optimized view of one graph version
// that every query served by an Engine runs against. It packs the
// adjacency into a CSR (with the weighted-degree and total-weight
// aggregates the modularity formulas need) and precomputes the
// connected-component partition, so admitting a query costs O(|Q|)
// instead of the BFS + sort that the plain dmcs.Search entry points pay
// per call. Snapshots are safe for concurrent readers; nothing visible to
// them is ever mutated after construction. Engine.Apply never touches an
// existing snapshot either — it builds the next one and swaps an atomic
// pointer, so queries that admitted against an older version drain on it
// undisturbed.
//
// Each snapshot carries an epoch — 0 at construction, incremented by
// every applied mutation batch. The epoch keys all version-scoped caching
// (the per-component sub-CSR cache lives on the snapshot itself, and the
// engine's result LRU prefixes its keys with the epoch), so a result
// computed against one version can never be served for a later one.
//
// Per component the snapshot also caches a compact sub-CSR (the
// component's adjacency relabelled into dense 0..k-1 ids), built lazily
// on the component's first query and shared by every later one, so a
// query against a small component of a huge graph touches only
// component-sized memory end to end. A component spanning the whole graph
// wraps the main CSR instead of copying it.
type Snapshot struct {
	csr    *graph.CSR
	compID []int32        // node id -> component id
	comps  [][]graph.Node // component id -> sorted member list
	epoch  uint64         // graph version; 0 at construction, +1 per Apply

	subOnce []sync.Once // per-component lazy sub-CSR construction
	//dmcs:lazyinit
	subs []*graph.SubCSR // component id -> compact sub-CSR
}

// NewSnapshot builds the read-optimized snapshot of g at epoch 0. The
// map-backed graph itself is not retained: once packed, every query runs
// off the CSR, so a long-lived engine does not keep the edge-weight map
// and nested adjacency resident alongside the flat copy.
func NewSnapshot(g *graph.Graph) *Snapshot {
	csr := graph.NewCSR(g)
	compID := make([]int32, csr.NumNodes())
	for i := range compID {
		compID[i] = -1
	}
	var comps [][]graph.Node
	var queue []graph.Node
	for root := 0; root < csr.NumNodes(); root++ {
		if compID[root] != -1 {
			continue
		}
		id := int32(len(comps))
		compID[root] = id
		queue = append(queue[:0], graph.Node(root))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range csr.Neighbors(u) {
				if compID[w] == -1 {
					compID[w] = id
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, nil)
	}
	// Member lists come out sorted for free by visiting node ids in order.
	for u, id := range compID {
		comps[id] = append(comps[id], graph.Node(u))
	}
	return newSnapshotParts(csr, compID, comps, 0)
}

// newSnapshotParts assembles a snapshot from an already-built CSR and
// component partition — the construction path of NewSnapshot and of every
// Apply-produced successor version.
func newSnapshotParts(csr *graph.CSR, compID []int32, comps [][]graph.Node, epoch uint64) *Snapshot {
	return &Snapshot{
		csr:     csr,
		compID:  compID,
		comps:   comps,
		epoch:   epoch,
		subOnce: make([]sync.Once, len(comps)),
		subs:    make([]*graph.SubCSR, len(comps)),
	}
}

// CSR returns the packed adjacency snapshot.
func (s *Snapshot) CSR() *graph.CSR { return s.csr }

// Epoch returns the snapshot's graph version: 0 for the engine's initial
// snapshot, incremented by one per applied mutation batch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumComponents returns the number of connected components.
func (s *Snapshot) NumComponents() int { return len(s.comps) }

// Component validates a query against the partition and returns the sorted
// connected component containing all its nodes. The returned slice is
// shared across queries and must not be modified. It fails with
// dmcs.ErrEmptyQuery, ErrNodeOutOfRange, or dmcs.ErrDisconnected.
func (s *Snapshot) Component(q []graph.Node) ([]graph.Node, error) {
	id, err := s.componentIndex(q)
	if err != nil {
		return nil, err
	}
	return s.comps[id], nil
}

// componentIndex is Component returning the partition index instead of
// the member list — the allocation-free admission check of the query
// path.
func (s *Snapshot) componentIndex(q []graph.Node) (int32, error) {
	if len(q) == 0 {
		return 0, dmcs.ErrEmptyQuery
	}
	for _, u := range q {
		if u < 0 || int(u) >= len(s.compID) {
			return 0, ErrNodeOutOfRange
		}
	}
	id := s.compID[q[0]]
	for _, u := range q[1:] {
		if s.compID[u] != id {
			return 0, dmcs.ErrDisconnected
		}
	}
	return id, nil
}

// SubCSR returns the compact sub-CSR of component id, building it on
// first use. Safe for concurrent callers; the result is immutable and
// shared.
func (s *Snapshot) SubCSR(id int32) *graph.SubCSR {
	s.subOnce[id].Do(func() {
		if len(s.comps[id]) == s.csr.NumNodes() {
			s.subs[id] = graph.WrapCSR(s.csr)
		} else {
			s.subs[id] = graph.NewSubCSR(s.csr, s.comps[id])
		}
	})
	return s.subs[id]
}
