package engine

// Tests for the serving-robustness layer: queue-timeout vs peel-timeout
// semantics, per-query panic isolation (with poisoned-arena discard),
// the stale-read API, and the new overload counters.

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
)

// TestQueueTimeoutDistinctFromPeelTimeout is the regression test for the
// Options.Timeout boundary fix: a query whose budget expires while
// QUEUED (worker pool saturated, peel never started) must fail with
// ErrQueueTimeout — not return a TimedOut partial — and must leave
// nothing in the cache.
func TestQueueTimeoutDistinctFromPeelTimeout(t *testing.T) {
	defer faultinject.Reset()
	res := testGraph(t, 400)
	e := New(res.G, Options{Workers: 1})

	// Occupy the single worker with a slow peel (injected 300ms latency,
	// fired exactly once so the later re-query runs clean).
	faultinject.Set(faultinject.EnginePeel, faultinject.Injection{Latency: 300 * time.Millisecond, Limit: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := e.Search(context.Background(), Query{Nodes: []graph.Node{0}})
		if err != nil {
			t.Errorf("slow query failed: %v", err)
		}
	}()
	// Wait until the slow peel holds the worker slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(e.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never took the worker slot")
		}
		time.Sleep(time.Millisecond)
	}

	// A second, different query with a 30ms budget: it queues behind the
	// slow peel and must report a queue-timeout, never a partial.
	r, err := e.Search(context.Background(), Query{Nodes: []graph.Node{1}, Opts: dmcs.Options{Timeout: 30 * time.Millisecond}})
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued query: got (%v, %v), want ErrQueueTimeout", r, err)
	}
	if r != nil {
		t.Fatal("queue-timeout must not produce a result")
	}
	wg.Wait()

	st := e.Stats()
	if st.TimedOut == 0 {
		t.Errorf("Stats.TimedOut = 0 after a queue-timeout")
	}
	if st.Errors == 0 {
		t.Errorf("Stats.Errors = 0 after a queue-timeout")
	}

	// Never cached: re-issuing the queue-timed-out query must be a miss
	// that computes fresh (and now succeeds — the worker is free).
	before := e.Stats().Computed
	r2, err := e.Search(context.Background(), Query{Nodes: []graph.Node{1}, Opts: dmcs.Options{Timeout: 30 * time.Millisecond}})
	if err != nil || r2 == nil || r2.TimedOut {
		t.Fatalf("re-query after queue-timeout: res=%v err=%v", r2, err)
	}
	if e.Stats().Computed <= before {
		t.Error("re-query was served from cache — a queue-timed-out query left a cache entry")
	}
}

// TestPeelTimeoutStillReturnsPartial pins the other half of the
// distinction: a budget that expires MID-peel keeps the documented
// best-so-far contract (TimedOut partial, nil error), counts toward
// Stats.TimedOut, and is still never cached.
func TestPeelTimeoutStillReturnsPartial(t *testing.T) {
	res := testGraph(t, 2000)
	e := New(res.G, Options{})
	r, err := e.Search(context.Background(), Query{
		Nodes:   []graph.Node{0},
		Variant: dmcs.VariantNCA,
		Opts:    dmcs.Options{Timeout: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatal("expected a TimedOut partial under a 1ms budget")
	}
	st := e.Stats()
	if st.TimedOut == 0 {
		t.Error("Stats.TimedOut = 0 after a peel-timeout")
	}
	if st.CacheEntries != 0 {
		t.Error("timed-out partial was cached")
	}
}

// TestAcquireSlotDeductsQueueWait unit-tests the budget accounting
// directly: a contended acquire must return the original budget minus
// the observed queue wait, a budget the wait fully consumes must yield
// ErrQueueTimeout with the slot released, and cancellation must win
// when it fires first.
func TestAcquireSlotDeductsQueueWait(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{Workers: 1})

	// Uncontended: full budget back, no deduction.
	if rem, err := e.acquireSlot(time.Second, nil); err != nil || rem != time.Second {
		t.Fatalf("uncontended acquire: rem=%v err=%v", rem, err)
	}
	<-e.sem

	// Contended, slot freed after ~60ms: remaining ≈ budget − wait.
	e.sem <- struct{}{}
	go func() {
		time.Sleep(60 * time.Millisecond)
		<-e.sem
	}()
	rem, err := e.acquireSlot(time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rem >= time.Second-40*time.Millisecond || rem <= 0 {
		t.Fatalf("contended acquire returned remaining=%v of a 1s budget after a ~60ms wait", rem)
	}
	<-e.sem

	// Budget consumed while queued: ErrQueueTimeout, slot NOT leaked.
	e.sem <- struct{}{}
	if _, err := e.acquireSlot(20*time.Millisecond, nil); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("saturated acquire: err=%v, want ErrQueueTimeout", err)
	}
	<-e.sem
	select {
	case e.sem <- struct{}{}:
		<-e.sem
	default:
		t.Fatal("acquireSlot leaked a worker slot on queue-timeout")
	}

	// Cancellation beats the budget when it fires first.
	e.sem <- struct{}{}
	cancel := make(chan struct{})
	close(cancel)
	if _, err := e.acquireSlot(time.Second, cancel); !errors.Is(err, errSlotCancelled) {
		t.Fatalf("cancelled acquire: err=%v, want errSlotCancelled", err)
	}
	<-e.sem
}

// TestPanicIsolation: a poisoned query (injected panic mid-peel) must
// fail with *PanicError while the process — and the engine — keep
// serving, and the discarded arena must never corrupt later answers.
func TestPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	res := testGraph(t, 400)
	e := New(res.G, Options{})
	q := Query{Nodes: []graph.Node{3}}

	faultinject.Set(faultinject.EnginePeel, faultinject.Injection{Panic: "poisoned query", Limit: 1})
	_, err := e.Search(context.Background(), q)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("poisoned query returned %v, want *PanicError", err)
	}
	if faultinject.Fired(faultinject.EnginePeel) != 1 {
		t.Fatalf("panic injection fired %d times", faultinject.Fired(faultinject.EnginePeel))
	}

	// The engine must still serve, and bit-identically to a fresh serial
	// search — a poisoned arena leaking back into the pool would show up
	// here as a corrupt community or score.
	got, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("post-panic query failed: %v", err)
	}
	want, err := dmcs.Search(res.G, q.Nodes, dmcs.VariantFPA, dmcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Community, want.Community) || got.Score != want.Score {
		t.Fatal("post-panic result differs from serial reference")
	}
	if st := e.Stats(); st.Errors == 0 {
		t.Error("panicked query not counted as an error")
	}
}

// TestPanicIsolationHerd: a panic inside a SHARED flight computation
// fails every collapsed waiter with the same *PanicError, and the key
// recovers on the next query.
func TestPanicIsolationHerd(t *testing.T) {
	defer faultinject.Reset()
	res := testGraph(t, 400)
	e := New(res.G, Options{Workers: 2})
	q := Query{Nodes: []graph.Node{5}}

	faultinject.Set(faultinject.EnginePeel, faultinject.Injection{
		Panic:   "poisoned flight",
		Latency: 20 * time.Millisecond, // hold the flight open so the herd can join
		Limit:   1,
	})
	const herd = 8
	errs := make([]error, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Search(context.Background(), q)
		}(i)
	}
	wg.Wait()

	panicked := 0
	for _, err := range errs {
		var pe *PanicError
		if errors.As(err, &pe) {
			panicked++
		} else if err != nil {
			t.Fatalf("herd member got unexpected error %v", err)
		}
	}
	if panicked == 0 {
		t.Fatal("no herd member observed the injected panic")
	}
	// The exhausted injection lets the key recover.
	if _, err := e.Search(context.Background(), q); err != nil {
		t.Fatalf("key did not recover after flight panic: %v", err)
	}
}

// TestLookupStale covers the degraded-mode read API under per-component
// staleness: an Apply that never touches the queried component leaves
// its answer a fresh current-version hit; an Apply that does touch it
// supersedes the version, and (with retention on) the old answer stays
// reachable through the component's ancestry, counted as StaleServed.
func TestLookupStale(t *testing.T) {
	// Four disjoint ring+chord communities; the query lives in
	// component 0 (nodes 0..15), mutations target specific components.
	g := smallQueryEngineGraph(4, 16)
	q := Query{Nodes: []graph.Node{0}}

	e := New(g, Options{StaleRetention: 4})
	first, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ver, stale, ok := e.LookupStale(q, 0); !ok || stale || ver != 0 {
		t.Fatalf("current-version lookup: ok=%v stale=%v ver=%d", ok, stale, ver)
	}

	// An Apply entirely inside component 1 must not disturb component 0's
	// answer: still a fresh hit at an unchanged version, even with
	// maxBehind 0, and never flagged stale.
	var untouched Batch
	untouched.RemoveEdge(16, 23) // a chord inside component 1
	if st, _ := e.Apply(untouched); st.Epoch != 1 {
		t.Fatalf("Apply epoch = %d, want 1", st.Epoch)
	}
	got, ver, stale, ok := e.LookupStale(q, 0)
	if !ok || stale || ver != 0 {
		t.Fatalf("untouched-component lookup after Apply: ok=%v stale=%v ver=%d", ok, stale, ver)
	}
	if !reflect.DeepEqual(got.Community, first.Community) {
		t.Fatal("untouched-component lookup returned a different community")
	}
	if st := e.Stats(); st.StaleServed != 0 {
		t.Fatalf("untouched-component hits counted as StaleServed (%d)", st.StaleServed)
	}

	// Now mutate INSIDE component 0: its version is superseded, so the
	// cached answer is no longer current.
	var touching Batch
	touching.RemoveEdge(0, 7) // a chord inside component 0; ring stays connected
	if st, _ := e.Apply(touching); st.Epoch != 2 {
		t.Fatalf("Apply epoch = %d, want 2", st.Epoch)
	}

	// maxBehind 0: current version only — the superseded entry must not
	// answer.
	if _, _, _, ok := e.LookupStale(q, 0); ok {
		t.Fatal("superseded entry served for a current-version-only probe")
	}
	// maxBehind 1: the stale answer is reachable through the component's
	// ancestry, flagged with the version it was computed against.
	staleRes, ver, stale, ok := e.LookupStale(q, 1)
	if !ok || !stale || ver != 0 {
		t.Fatalf("stale lookup: ok=%v stale=%v ver=%d", ok, stale, ver)
	}
	if !reflect.DeepEqual(staleRes.Community, first.Community) {
		t.Fatal("stale lookup returned a different community than was cached")
	}
	if st := e.Stats(); st.StaleServed != 1 {
		t.Errorf("Stats.StaleServed = %d, want 1", st.StaleServed)
	}

	// A fresh search repopulates at the component's new version;
	// LookupStale hits the current version and counts as a plain cache
	// hit.
	if _, err := e.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	hitsBefore := e.Stats().CacheHits
	if _, ver, stale, ok := e.LookupStale(q, 4); !ok || stale || ver != 2 {
		t.Fatalf("post-recompute lookup: ok=%v stale=%v ver=%d", ok, stale, ver)
	}
	if e.Stats().CacheHits != hitsBefore+1 {
		t.Error("current-version LookupStale hit not counted as a cache hit")
	}

	// Without retention there is no ancestry: a touching Apply strands
	// the old entry, but untouched components STILL keep their answers —
	// retention only governs stale reachability, not warm hits.
	e2 := New(smallQueryEngineGraph(4, 16), Options{})
	if _, err := e2.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	var b2 Batch
	b2.RemoveEdge(16, 23)
	e2.Apply(b2)
	if _, ver, stale, ok := e2.LookupStale(q, 8); !ok || stale || ver != 0 {
		t.Fatalf("retention-0 untouched lookup: ok=%v stale=%v ver=%d", ok, stale, ver)
	}
	var b3 Batch
	b3.RemoveEdge(0, 7)
	e2.Apply(b3)
	if _, _, _, ok := e2.LookupStale(q, 8); ok {
		t.Fatal("StaleRetention=0 engine served a stale entry after a touching Apply")
	}
}

// TestLookupStaleNeverSearches: a miss does no search work.
func TestLookupStaleNeverSearches(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{StaleRetention: 2})
	if _, _, _, ok := e.LookupStale(Query{Nodes: []graph.Node{7}}, 3); ok {
		t.Fatal("cold cache lookup reported a hit")
	}
	if st := e.Stats(); st.Computed != 0 {
		t.Errorf("LookupStale computed %d searches", st.Computed)
	}
}

// TestNoteCounters: the serving tier's shed/reject recorders land in
// Stats without disturbing Queries.
func TestNoteCounters(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{})
	for i := 0; i < 3; i++ {
		e.NoteShed()
	}
	for i := 0; i < 2; i++ {
		e.NoteRejected()
	}
	st := e.Stats()
	if st.Shed != 3 || st.Rejected != 2 {
		t.Fatalf("Shed=%d Rejected=%d, want 3/2", st.Shed, st.Rejected)
	}
	if st.Queries != 0 {
		t.Errorf("Note* recorders leaked into Queries (%d)", st.Queries)
	}
}

// TestStatsP99 sanity: present and ordered after real searches.
func TestStatsP99(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{CacheSize: -1})
	for i := 0; i < 32; i++ {
		if _, err := e.Search(context.Background(), Query{Nodes: []graph.Node{graph.Node(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.P99 <= 0 {
		t.Fatal("P99 not populated")
	}
	if st.P50 > st.P95 || st.P95 > st.P99 {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v", st.P50, st.P95, st.P99)
	}
}
