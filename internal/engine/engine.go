// Package engine serves many DMCS community-search queries concurrently
// against one shared graph. It is the many-queries-one-graph layer of the
// repository: construction builds a single immutable Snapshot (CSR
// adjacency, cached modularity aggregates, connected-component partition)
// and every query afterwards is a pure read — a bounded worker pool fans
// searches out across cores, a per-query context carries cancellation and
// deadlines, a result cache answers repeated queries without
// recomputation, and a stats collector tracks throughput and latency
// percentiles.
//
// The serving path is built to scale across cores: no query-rate-
// proportional work takes a globally contended lock. The result cache is
// hash-sharded (per-shard mutex, array-backed intrusive LRU), the stats
// counters are striped cache-line-padded atomics, per-query scratch comes
// from a per-P sync.Pool, and identical concurrent misses collapse onto
// one in-flight computation (singleflight) instead of peeling the same
// community once per caller. A warm cache hit touches one shard mutex,
// two atomic adds, and nothing else — no channels, no global locks, no
// allocation. The Workers bound applies to computed searches (the
// CPU-heavy part); cache hits are not throttled by it.
//
// The graph is shared but not frozen: Engine.Apply takes a Batch of edge
// and node mutations, merges it into the current snapshot's packed CSR
// (internal/graph.MergeCSR — no round-trip through the map-backed Graph),
// maintains the component partition incrementally (unions on insert,
// re-flooding only components that lost an edge), and publishes the
// result as the next version with an atomic pointer swap. In-flight
// queries drain on the version they admitted against.
//
// # Component-scoped epochs
//
// Invalidation is per component, not per graph. Every component carries a
// stable identity and a version — the epoch at which it last changed —
// and every cache key, singleflight key, and fused-batch admission key is
// prefixed with that (identity, version) pair instead of the global
// epoch. An Apply advances only the versions of the components its batch
// touched (an edge inserted, removed, or re-weighted inside it, or a
// merge/split involving it); results, sub-CSRs, and in-flight
// computations for every untouched component remain valid, warm, and
// joinable across the swap. Under churn concentrated away from the hot
// query set, the hit ratio therefore stays high instead of collapsing to
// zero on every mutation.
//
// A component's version pins its full scoring context: the member
// adjacency and the normalization weight w_G the modularity objectives
// divide by, both frozen at the stamping epoch. Served answers bit-match
// the serial reference for the graph as of that component's version —
// never a hybrid of two versions. The deliberate consequence on
// multi-component graphs: churn in one component does not shift the
// normalization term of answers served for other, untouched components;
// their answers stay bit-stable until the component itself changes.
// "Stale" is a per-component notion as well — see LookupStale — and a
// degraded-mode answer for an untouched component is not stale at all.
//
// Queries are deterministic: node sets are normalized (sorted,
// deduplicated) on entry, and for a given normalized set and options the
// engine returns exactly what the serial dmcs entry points return for
// that slice against the same graph version, regardless of worker count,
// shard count, batch composition, cache state, or which caller's
// computation a collapsed query joined. That guarantee extends to
// Options.Parallelism: a query requesting an intra-query parallel peel
// (engaged only on components of ~8k+ nodes) gets a bit-identical result
// to the serial peel, which is why Parallelism is deliberately absent
// from the cache key — a serial caller may be served a parallel
// caller's cached community and vice versa.
//
// SearchBatch fuses batches instead of fanning them out: all queries of
// one call are admitted, keyed, and answered against a single snapshot
// (batch-level consistency even when Apply lands mid-batch), identical
// queries collapse onto one peel before any work starts, and the misses
// are grouped by connected component so the worker gang drains each
// component's queries back-to-back against its shared sub-CSR. See
// batch.go for the full design notes; Stats.Fused counts queries
// computed through this path.
package engine

import (
	"context"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
	"dmcs/internal/wal"
)

// defaultCacheSize is the LRU capacity when Options.CacheSize is zero.
const defaultCacheSize = 1024

// Options configures an Engine. The zero value is a sensible server
// setup: GOMAXPROCS workers, a 1024-entry result cache, no timeout.
type Options struct {
	// Workers bounds how many searches execute concurrently across Search
	// and SearchBatch calls combined. The bound covers computed searches
	// — actual peels; cache hits and singleflight joins are not throttled
	// by it. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize is the result-cache capacity in entries, spread across
	// hash shards. 0 means the default (1024); negative disables caching
	// (and with it singleflight collapsing) entirely.
	CacheSize int
	// DefaultTimeout is applied to queries whose own Options.Timeout is
	// zero. 0 leaves such queries unbounded.
	DefaultTimeout time.Duration
	// StaleRetention, when > 0, bounds per-component staleness ancestry:
	// when an Apply supersedes a component, the new component records up
	// to StaleRetention (identity, version) pairs of its ancestors, and
	// LookupStale may probe those entries (still resident in the LRU) for
	// degraded-mode serving. Version-scoped keys keep superseded entries
	// unservable on the normal query path either way — retention changes
	// only the stale-read API, never a fresh query's answer. 0 (the
	// default) records no ancestry, so LookupStale serves only current-
	// version (non-stale) answers. Results for components an Apply did
	// not touch are never stale and are unaffected by this knob.
	StaleRetention int
	// CheckpointEvery, when > 0 on an engine opened through OpenDurable,
	// writes a background checkpoint after every CheckpointEvery
	// effective Applies, bounding how much log a recovery must replay.
	// Ignored without a WAL; 0 leaves checkpointing to explicit
	// Checkpoint calls (e.g. the serving tier's drain path).
	CheckpointEvery int
}

// Query is one community-search request.
type Query struct {
	// Nodes is the query-node set. It is normalized (sorted, deduplicated)
	// before searching, so node order never affects the answer or the
	// cache key.
	Nodes []graph.Node
	// Variant selects the algorithm; the zero value is FPA.
	Variant dmcs.Variant
	// Opts tunes the search exactly as in the serial API. Cancel is owned
	// by the engine and overwritten.
	Opts dmcs.Options
}

// BatchResult pairs one query's result with its error; exactly one of the
// two fields is set.
type BatchResult struct {
	Result *dmcs.Result
	Err    error
}

// Engine answers DMCS queries against the current version of one graph,
// mutable through Apply. It is safe for concurrent use and needs no
// shutdown — it owns no long-lived background goroutines, only a
// concurrency bound on computed searches (each miss spawns one short-
// lived goroutine that dies with its computation).
//
// Steady-state serving is allocation-free and contention-free: each
// query checks out a scratch bundle (a search arena plus the
// normalized-node and cache-key buffers) from a per-P pool, and a cache
// hit touches only those reusable buffers, its key's cache shard, and
// one stats stripe. Computed queries allocate only the escaping Result,
// the cache entry that stores it, and their flight bookkeeping.
type Engine struct {
	snap           atomic.Pointer[Snapshot] // current version; swapped by Apply
	applyMu        sync.Mutex               // serializes writers (Apply)
	cache          *resultCache
	stats          *statsCollector
	sem            chan struct{} // worker-pool slots, acquired per computed search
	scratch        sync.Pool     // *workerScratch; per-P, so checkout does no channel ops
	stripeCtr      atomic.Uint32 // round-robins stats stripes across scratch bundles
	invalidated    atomic.Uint64 // components superseded by Apply, cumulative
	retained       atomic.Uint64 // components carried across Apply, cumulative
	workers        int
	defaultTimeout time.Duration
	staleRetention int

	// Durability (nil / zero without OpenDurable): the write-ahead log
	// Apply appends to before publishing, the periodic-checkpoint
	// cadence, and what recovery reconstructed.
	wal             *wal.Log
	checkpointEvery int
	sinceCkpt       atomic.Int64 // effective Applies since the last checkpoint trigger
	ckptBusy        atomic.Bool  // at most one periodic checkpoint in flight
	ckptFails       atomic.Uint64
	recovery        *RecoveryInfo
}

// workerScratch is the reusable per-query state one serving goroutine
// needs: the dmcs search arena, the admission buffers, and the stats
// stripe this bundle reports to. Bundles live in a sync.Pool, so under
// steady load each P keeps reusing its own bundle — and therefore its
// own stats stripe, which is what keeps the striped counters
// contention-free.
type workerScratch struct {
	arena  *dmcs.Arena
	nodes  []graph.Node // normalized query nodes
	key    []byte       // cache key (+ flight-key suffix on the miss path)
	stripe int          // stats stripe this bundle records on
}

// getScratch checks a worker bundle out of the pool; every path must
// hand it back via putScratch (or transfer it to searchShared).
//
//dmcs:acquire putScratch
func (e *Engine) getScratch() *workerScratch {
	return e.scratch.Get().(*workerScratch)
}

func (e *Engine) putScratch(ws *workerScratch) {
	e.scratch.Put(ws)
}

// New packs a read-optimized snapshot of g and returns an Engine serving
// it. The graph itself is not retained — queries run entirely off the
// snapshot's flat arrays. For an engine whose state survives restarts,
// use OpenDurable instead.
func New(g *graph.Graph, opts Options) *Engine {
	e := newEngine(opts)
	e.snap.Store(NewSnapshot(g))
	return e
}

// newEngine builds everything but the initial snapshot — shared by New
// (snapshot from a graph) and OpenDurable (snapshot from recovery).
func newEngine(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	cs := opts.CacheSize
	if cs == 0 {
		cs = defaultCacheSize
	}
	// Shards and stripes scale with the hotter of the worker bound and
	// the machine's parallelism: cache hits bypass the worker bound, so
	// GOMAXPROCS goroutines can be on the hit path at once even when
	// Workers is small.
	par := max(w, runtime.GOMAXPROCS(0))
	e := &Engine{
		cache:          newResultCache(cs, par), // nil (disabled) when cs < 0
		stats:          newStatsCollector(par),
		sem:            make(chan struct{}, w),
		workers:        w,
		defaultTimeout: opts.DefaultTimeout,
		staleRetention: opts.StaleRetention,
	}
	e.scratch.New = func() any {
		return &workerScratch{
			arena: dmcs.NewArena(),
			// Mask in unsigned space: stripe counts are powers of two,
			// and int(uint32) would go negative past 2^31 on 32-bit
			// platforms, where a signed % turns into a panic-inducing
			// negative index.
			stripe: int((e.stripeCtr.Add(1) - 1) & uint32(e.stats.numStripes()-1)),
		}
	}
	return e
}

// Snapshot exposes the engine's current read-optimized graph snapshot.
// Successive calls may return different versions once Apply is in play;
// each returned snapshot is individually immutable.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Epoch returns the current graph version (0 until the first Apply).
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// Workers returns the concurrency bound the engine runs with.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a point-in-time snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	st := e.stats.snapshot(e.cache.len())
	st.Invalidated = e.invalidated.Load()
	st.Retained = e.retained.Load()
	if e.wal != nil {
		st.DurableEpoch = e.wal.DurableEpoch()
		st.LastCheckpoint, _ = e.wal.LastCheckpoint()
		st.CheckpointFailures = e.ckptFails.Load()
		st.WALSyncErrors = e.wal.SyncErrors()
	}
	return st
}

// Search answers one query. A cache hit returns immediately; a miss
// either joins the key's in-flight computation or starts one, blocking
// until a worker slot frees up. The context cancels this caller's wait
// and — unless other callers are still waiting on the same computation —
// the search itself; a search cancelled mid-peel returns ctx.Err(),
// never a partial result. Cached results are shared across callers and
// must not be modified.
func (e *Engine) Search(ctx context.Context, q Query) (*dmcs.Result, error) {
	// The faultinject.EngineSearch point sits before everything — ON the
	// cache-hit path, deliberately: its disarmed cost (one atomic load,
	// zero allocations) is what the registry's zero-cost contract gates,
	// and when armed it lets chaos suites fail or stall queries before
	// admission.
	if err := faultinject.Fire(faultinject.EngineSearch); err != nil {
		e.stats.recordError(int(e.stripeCtr.Add(1) & uint32(e.stats.numStripes()-1)))
		return nil, err
	}
	// An already-cancelled context must fail deterministically — the
	// cache-hit path never polls the context, and the flight wait selects
	// randomly when both channels are ready. The error is recorded on a
	// rotating stripe (no scratch checkout — this path must not construct
	// an arena — and no single hardcoded counter cache line for a flood
	// of cancelled calls to pile onto).
	if err := ctx.Err(); err != nil {
		e.stats.recordError(int(e.stripeCtr.Add(1) & uint32(e.stats.numStripes()-1)))
		return nil, err
	}
	return e.run(ctx, q)
}

// run executes one admitted query: normalize, key, cache lookup, then —
// on a miss — snapshot validation and the flight (or, with caching
// disabled, an inline search). The whole hit path reuses pooled buffers
// and performs no channel operation and no allocation.
//
// The snapshot pointer is loaded exactly once, so a query racing an
// Apply runs consistently against one version end to end: its component
// lookup and search read that version's arrays, its cache key carries
// that version's (component identity, component version) stamp, and a
// result it inserts afterwards is keyed under that stamp — visible to
// any query whose component is at the same version, which is exactly the
// set of queries owed a bit-identical answer.
// Scratch discipline: the bundle is returned to the pool as soon as its
// last buffer use is behind us — in particular BEFORE blocking on a
// flight, so the number of live bundles (and their grown arenas) stays
// bounded by the engine's actual parallelism, not by how many callers
// are parked waiting on slow computations.
func (e *Engine) run(ctx context.Context, q Query) (*dmcs.Result, error) {
	snap := e.snap.Load()
	ws := e.getScratch()
	ws.nodes = normalizeNodesInto(ws.nodes[:0], q.Nodes)
	nodes := ws.nodes
	opts := canonicalOptions(q.Opts)
	if opts.Timeout == 0 {
		opts.Timeout = e.defaultTimeout
	}
	// Admission (the component lookup) runs before keying: the cache key
	// is scoped to the query's component, so it cannot be built until the
	// component is known. The lookup is allocation-free, keeping the warm
	// hit path at 0 allocs/op.
	id, err := snap.componentIndex(nodes)
	if err != nil {
		e.stats.recordError(ws.stripe)
		e.putScratch(ws)
		return nil, err
	}
	if e.cache == nil {
		// Cache-disabled path: peel on the caller's goroutine with the
		// caller's context — exactly the serial semantics, bounded by the
		// worker pool.
		res, err := e.peelOwn(ctx, snap, id, q.Variant, opts, ws)
		e.putScratch(ws)
		return res, err
	}
	ws.key = appendCacheKey(ws.key[:0], snap.compKey[id], snap.compVer[id], nodes, q.Variant, opts)
	h := hashKey(ws.key)
	if res, ok := e.cache.get(h, ws.key); ok {
		e.stats.recordHit(ws.stripe)
		e.putScratch(ws)
		return res, nil
	}
	return e.searchShared(ctx, snap, id, q.Variant, opts, ws, h, q)
}

// peelOwn runs one unshared search on the caller's goroutine and clock:
// take a worker slot, wire the caller's context into the search, peel
// on the bundle's arena, and record the full stats sequence. It is the
// single implementation of the semaphore/cancellation/stats protocol
// shared by the cache-disabled path and the joiner's own-clock
// fallback, so the two can never drift apart.
func (e *Engine) peelOwn(ctx context.Context, snap *Snapshot, id int32, v dmcs.Variant, opts dmcs.Options, ws *workerScratch) (*dmcs.Result, error) {
	// The slot wait runs under the query's own deadline budget: a budget
	// that expires while QUEUED fails with ErrQueueTimeout — no peel ran,
	// so there is no partial and nothing cacheable — and a contended wait
	// that succeeds hands the peel only the REMAINING budget, so queue
	// wait plus peel never exceed the configured Timeout.
	remaining, aerr := e.acquireSlot(opts.Timeout, ctx.Done())
	if aerr != nil {
		if aerr == errSlotCancelled {
			aerr = ctx.Err()
		} else {
			e.stats.recordTimedOut(ws.stripe)
		}
		e.stats.recordError(ws.stripe)
		return nil, aerr
	}
	opts.Timeout = remaining
	defer func() { <-e.sem }()
	opts.Cancel = ctx.Done()
	start := time.Now()
	// The component's compact sub-CSR goes straight into the search:
	// per-query work touches only component-sized packed arrays plus the
	// arena's recycled scratch — never whole-graph-sized state and never
	// the map-backed Graph. safeSearch confines a panicking peel to this
	// query and discards the poisoned arena.
	res, err := e.safeSearch(ws, snap.SubCSR(id), ws.nodes, snap.comps[id], v, opts)
	if err != nil {
		e.stats.recordSearch(ws.stripe, time.Since(start), false)
		e.stats.recordError(ws.stripe)
		return nil, err
	}
	if ctx.Err() != nil {
		// The search unwound early through Options.Cancel; its partial
		// community depends on when the cancellation landed, so surface
		// the context error instead. The interrupted peel still counts
		// as computed work, but not toward the latency window.
		e.stats.recordSearch(ws.stripe, time.Since(start), false)
		e.stats.recordError(ws.stripe)
		return nil, ctx.Err()
	}
	if res.TimedOut {
		// Peel-timeout: a genuine deadline expiry mid-peel. The partial
		// is returned (documented best-so-far contract) but counted, and
		// callers never cache it.
		e.stats.recordTimedOut(ws.stripe)
	}
	e.stats.recordSearch(ws.stripe, time.Since(start), true)
	e.stats.recordServed(ws.stripe, false)
	return res, nil
}

// canonicalOptions maps result-equivalent option settings onto one
// representative, so equivalent queries share a cache entry and a
// flight. Chi only participates in scoring under
// GeneralizedModularityDensity, so it is zeroed for the other
// objectives; under GMD, Chi 0 is documented as "the comparator's
// default of 1" and is canonicalized to 1. The canonical options are
// also what the search runs with — by construction they produce
// bit-identical results.
func canonicalOptions(o dmcs.Options) dmcs.Options {
	if o.Objective == dmcs.GeneralizedModularityDensity {
		if o.Chi == 0 {
			o.Chi = 1
		}
	} else {
		o.Chi = 0
	}
	return o
}

// normalizeNodesInto appends a sorted, deduplicated copy of q to dst
// (usually a recycled worker buffer).
func normalizeNodesInto(dst, q []graph.Node) []graph.Node {
	out := append(dst, q...)
	if len(out) < 2 {
		return out
	}
	sortNodes(out)
	dup := 1
	for _, u := range out[1:] {
		if u != out[dup-1] {
			out[dup] = u
			dup++
		}
	}
	return out[:dup]
}

// normalizeNodes returns a sorted, deduplicated copy of q.
func normalizeNodes(q []graph.Node) []graph.Node {
	return normalizeNodesInto(nil, q)
}

// insertionSortMax is the query-set size up to which sortNodes uses
// insertion sort. The paper's interactive protocol uses 1–16 query
// nodes, where insertion sort on an almost-always-tiny slice beats the
// general sort's overhead; programmatic callers can pass arbitrarily
// large sets, which fall through to slices.Sort instead of degrading
// quadratically.
const insertionSortMax = 24

func sortNodes(a []graph.Node) {
	if len(a) > insertionSortMax {
		slices.Sort(a)
		return
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// appendCacheKey appends the encoding of the query component's stable
// identity and version, the normalized node set, and every option that
// shapes a completed result to b (usually a recycled worker buffer, so
// the hit path builds its key without allocating). The
// (identity, version) prefix makes version confusion structurally
// impossible at component scope: a result computed against one version
// of a component is keyed under that version and can never answer a
// lookup after the component changes — while an Apply that leaves the
// component untouched leaves both numbers, and therefore every cached
// entry for it, intact. Timeout is deliberately excluded: only results
// that ran to completion are cached, and those do not depend on the
// deadline. Callers pass canonicalized options (see canonicalOptions) so
// result-equivalent settings collide.
//
//dmcs:keymaker
func appendCacheKey(b []byte, compKey, compVer uint64, nodes []graph.Node, v dmcs.Variant, o dmcs.Options) []byte {
	b = strconv.AppendUint(b, compKey, 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, compVer, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(v), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.Objective), 10)
	b = append(b, '|')
	b = strconv.AppendFloat(b, o.Chi, 'g', -1, 64)
	b = append(b, '|')
	if o.LayerPruning {
		b = append(b, 'p')
	}
	if o.TrackOrder {
		b = append(b, 't')
	}
	for _, u := range nodes {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(u), 10)
	}
	return b
}
