// Package engine serves many DMCS community-search queries concurrently
// against one shared graph. It is the many-queries-one-graph layer of the
// repository: construction builds a single immutable Snapshot (CSR
// adjacency, cached modularity aggregates, connected-component partition)
// and every query afterwards is a pure read — a bounded worker pool fans
// searches out across cores, a per-query context carries cancellation and
// deadlines, an LRU cache answers repeated queries without recomputation,
// and a stats collector tracks throughput and latency percentiles.
//
// The graph is shared but not frozen: Engine.Apply takes a Batch of edge
// and node mutations, merges it into the current snapshot's packed CSR
// (internal/graph.MergeCSR — no round-trip through the map-backed Graph),
// maintains the component partition incrementally (unions on insert,
// re-flooding only components that lost an edge), and publishes the
// result as the next version with an atomic pointer swap. Snapshots are
// versioned by an epoch; in-flight queries drain on the version they
// admitted against, and the result cache keys every entry by epoch, so a
// mutation can never leave a stale community result servable.
//
// Queries are deterministic: node sets are normalized (sorted,
// deduplicated) on entry, and for a given normalized set and options the
// engine returns exactly what the serial dmcs entry points return for
// that slice against the same graph version, regardless of worker count,
// batch composition, or cache state.
package engine

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// defaultCacheSize is the LRU capacity when Options.CacheSize is zero.
const defaultCacheSize = 1024

// Options configures an Engine. The zero value is a sensible server
// setup: GOMAXPROCS workers, a 1024-entry result cache, no timeout.
type Options struct {
	// Workers bounds how many searches run concurrently across Search and
	// SearchBatch calls combined. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize is the LRU result-cache capacity in entries. 0 means the
	// default (1024); negative disables caching entirely.
	CacheSize int
	// DefaultTimeout is applied to queries whose own Options.Timeout is
	// zero. 0 leaves such queries unbounded.
	DefaultTimeout time.Duration
}

// Query is one community-search request.
type Query struct {
	// Nodes is the query-node set. It is normalized (sorted, deduplicated)
	// before searching, so node order never affects the answer or the
	// cache key.
	Nodes []graph.Node
	// Variant selects the algorithm; the zero value is FPA.
	Variant dmcs.Variant
	// Opts tunes the search exactly as in the serial API. Cancel is owned
	// by the engine and overwritten.
	Opts dmcs.Options
}

// BatchResult pairs one query's result with its error; exactly one of the
// two fields is set.
type BatchResult struct {
	Result *dmcs.Result
	Err    error
}

// Engine answers DMCS queries against the current version of one graph,
// mutable through Apply. It is safe for concurrent use and needs no
// shutdown — it owns no background goroutines, only a concurrency bound
// that Search/SearchBatch respect.
//
// Steady-state serving is allocation-free: each admitted query checks out
// a per-worker scratch bundle (a search arena plus the normalized-node
// and cache-key buffers) from a free list sized to the worker pool, and a
// cache hit touches nothing but those reusable buffers and the shared
// *Result. Computed queries allocate only the escaping Result and the
// cache entry that stores it.
type Engine struct {
	snap           atomic.Pointer[Snapshot] // current version; swapped by Apply
	applyMu        sync.Mutex               // serializes writers (Apply)
	cache          *resultCache
	stats          statsCollector
	sem            chan struct{}       // worker-pool slots
	scratch        chan *workerScratch // per-worker reusable query scratch
	workers        int
	defaultTimeout time.Duration
}

// workerScratch is the reusable per-query state one worker needs: the
// dmcs search arena and the admission buffers. At most Workers bundles
// exist at steady state (one per in-flight query); the free list hands
// them out without allocation.
type workerScratch struct {
	arena *dmcs.Arena
	nodes []graph.Node // normalized query nodes
	key   []byte       // cache key
}

func (e *Engine) getScratch() *workerScratch {
	select {
	case ws := <-e.scratch:
		return ws
	default:
		return &workerScratch{arena: dmcs.NewArena()}
	}
}

func (e *Engine) putScratch(ws *workerScratch) {
	select {
	case e.scratch <- ws:
	default: // pool full (transient oversubscription); let the GC take it
	}
}

// New packs a read-optimized snapshot of g and returns an Engine serving
// it. The graph itself is not retained — queries run entirely off the
// snapshot's flat arrays.
func New(g *graph.Graph, opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	cs := opts.CacheSize
	if cs == 0 {
		cs = defaultCacheSize
	}
	e := &Engine{
		cache:          newResultCache(cs), // nil (disabled) when cs < 0
		sem:            make(chan struct{}, w),
		scratch:        make(chan *workerScratch, w),
		workers:        w,
		defaultTimeout: opts.DefaultTimeout,
	}
	e.snap.Store(NewSnapshot(g))
	return e
}

// Snapshot exposes the engine's current read-optimized graph snapshot.
// Successive calls may return different versions once Apply is in play;
// each returned snapshot is individually immutable.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Epoch returns the current graph version (0 until the first Apply).
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// Workers returns the concurrency bound the engine runs with.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a point-in-time snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats.snapshot(e.cache.len()) }

// Search answers one query, blocking until a worker slot is free. The
// context cancels both the wait for a slot and the search itself; a
// search cancelled mid-peel returns ctx.Err(), never a partial result.
// Cached results are shared across callers and must not be modified.
func (e *Engine) Search(ctx context.Context, q Query) (*dmcs.Result, error) {
	// An already-cancelled context must fail deterministically — the
	// slot/Done select below picks randomly when both are ready, and the
	// cache-hit path never polls the context again.
	if err := ctx.Err(); err != nil {
		e.stats.recordError()
		return nil, err
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.stats.recordError()
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	return e.run(ctx, q)
}

// SearchBatch answers qs with up to Workers queries in flight at once and
// returns per-query results in input order. The concurrency bound is
// engine-wide: overlapping SearchBatch and Search calls share the same
// pool. A cancelled context fails the remaining queries with ctx.Err()
// but never discards results already computed.
func (e *Engine) SearchBatch(ctx context.Context, qs []Query) []BatchResult {
	out := make([]BatchResult, len(qs))
	workers := e.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				res, err := e.Search(ctx, qs[i])
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// run executes one admitted query: cache lookup, snapshot validation,
// then the query-scoped search armed with the context, running on the
// component's cached sub-CSR with the worker's arena. The whole path
// reuses per-worker buffers; a cache hit allocates nothing.
//
// The snapshot pointer is loaded exactly once, so a query racing an
// Apply runs consistently against one version end to end: its cache key
// carries that version's epoch, its component lookup and search read that
// version's arrays, and a result it inserts afterwards is keyed under
// that epoch — visible only to queries of the same version, never to
// queries admitted after the swap.
func (e *Engine) run(ctx context.Context, q Query) (*dmcs.Result, error) {
	snap := e.snap.Load()
	ws := e.getScratch()
	defer e.putScratch(ws)
	ws.nodes = normalizeNodesInto(ws.nodes[:0], q.Nodes)
	nodes := ws.nodes
	ws.key = appendCacheKey(ws.key[:0], snap.epoch, nodes, q.Variant, q.Opts)
	if res, ok := e.cache.get(ws.key); ok {
		e.stats.recordHit()
		return res, nil
	}
	id, err := snap.componentIndex(nodes)
	if err != nil {
		e.stats.recordError()
		return nil, err
	}
	opts := q.Opts
	if opts.Timeout == 0 {
		opts.Timeout = e.defaultTimeout
	}
	opts.Cancel = ctx.Done()
	start := time.Now()
	// The component's compact sub-CSR goes straight into the search:
	// per-query work touches only component-sized packed arrays plus the
	// arena's recycled scratch — never whole-graph-sized state and never
	// the map-backed Graph.
	res, err := dmcs.SearchSub(ws.arena, snap.SubCSR(id), nodes, snap.comps[id], q.Variant, opts)
	if err != nil {
		e.stats.recordError()
		return nil, err
	}
	if ctx.Err() != nil {
		// The search unwound early through Options.Cancel; its partial
		// community depends on when the cancellation landed, so surface
		// the context error instead.
		e.stats.recordError()
		return nil, ctx.Err()
	}
	e.stats.recordSearch(time.Since(start))
	if !res.TimedOut {
		e.cache.add(ws.key, res)
	}
	return res, nil
}

// normalizeNodesInto appends a sorted, deduplicated copy of q to dst
// (usually a recycled worker buffer).
func normalizeNodesInto(dst, q []graph.Node) []graph.Node {
	out := append(dst, q...)
	if len(out) < 2 {
		return out
	}
	sortNodes(out)
	dup := 1
	for _, u := range out[1:] {
		if u != out[dup-1] {
			out[dup] = u
			dup++
		}
	}
	return out[:dup]
}

// normalizeNodes returns a sorted, deduplicated copy of q.
func normalizeNodes(q []graph.Node) []graph.Node {
	return normalizeNodesInto(nil, q)
}

func sortNodes(a []graph.Node) {
	// insertion sort: query sets are tiny (paper protocol: 1–16 nodes)
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// appendCacheKey appends the encoding of the snapshot epoch, the
// normalized node set, and every option that shapes a completed result to
// b (usually a recycled worker buffer, so the hit path builds its key
// without allocating). The epoch prefix makes version confusion
// structurally impossible: a result computed against snapshot N is keyed
// under N and can never answer a lookup for snapshot N+1, even when the
// computing query finishes (and inserts) after the swap. Timeout is
// deliberately excluded: only results that ran to completion are cached,
// and those do not depend on the deadline.
func appendCacheKey(b []byte, epoch uint64, nodes []graph.Node, v dmcs.Variant, o dmcs.Options) []byte {
	b = strconv.AppendUint(b, epoch, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(v), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(o.Objective), 10)
	b = append(b, '|')
	b = strconv.AppendFloat(b, o.Chi, 'g', -1, 64)
	b = append(b, '|')
	if o.LayerPruning {
		b = append(b, 'p')
	}
	if o.TrackOrder {
		b = append(b, 't')
	}
	for _, u := range nodes {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(u), 10)
	}
	return b
}
