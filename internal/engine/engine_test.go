package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"slices"
	"strconv"
	"testing"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
	"dmcs/internal/lfr"
	"dmcs/internal/queries"
)

// testGraph generates a small deterministic LFR benchmark graph with its
// ground-truth communities.
func testGraph(t testing.TB, n int) *lfr.Result {
	t.Helper()
	cfg := lfr.Default()
	cfg.N = n
	cfg.AvgDeg = 12
	cfg.MaxDeg = 40
	cfg.MinComm = 15
	cfg.MaxComm = 60
	cfg.Seed = 1
	res, err := lfr.Generate(cfg)
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	return res
}

// testQueries draws query sets of mixed sizes from the ground truth.
func testQueries(t testing.TB, res *lfr.Result, numSets int) []Query {
	t.Helper()
	var qs []Query
	for _, size := range []int{1, 2, 4} {
		sets := queries.Generate(res.G, res.Communities, queries.Options{
			NumSets: numSets,
			Size:    size,
			Seed:    int64(size),
		})
		for _, q := range sets {
			qs = append(qs, Query{Nodes: q})
		}
	}
	if len(qs) == 0 {
		t.Fatal("no query sets generated")
	}
	return qs
}

func TestBatchMatchesSerial(t *testing.T) {
	res := testGraph(t, 400)
	qs := testQueries(t, res, 6)
	// Add the slower variants on a few queries so every code path is
	// compared, not just FPA.
	qs = append(qs,
		Query{Nodes: qs[0].Nodes, Variant: dmcs.VariantFPADMG},
		Query{Nodes: qs[1].Nodes, Variant: dmcs.VariantNCA},
		Query{Nodes: qs[2].Nodes, Variant: dmcs.VariantNCADR},
		Query{Nodes: qs[3].Nodes, Opts: dmcs.Options{LayerPruning: true}},
		Query{Nodes: qs[4].Nodes, Opts: dmcs.Options{Objective: dmcs.ClassicModularity}},
	)

	e := New(res.G, Options{Workers: 8})
	got := e.SearchBatch(context.Background(), qs)
	for i, q := range qs {
		want, wantErr := dmcs.Search(res.G, normalizeNodes(q.Nodes), q.Variant, q.Opts)
		if (got[i].Err == nil) != (wantErr == nil) {
			t.Fatalf("query %d: err=%v, serial err=%v", i, got[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(got[i].Result.Community, want.Community) {
			t.Errorf("query %d (%v): community mismatch\n got %v\nwant %v",
				i, q.Nodes, got[i].Result.Community, want.Community)
		}
		if got[i].Result.Score != want.Score {
			t.Errorf("query %d: score %v != serial %v", i, got[i].Result.Score, want.Score)
		}
		if got[i].Result.Iterations != want.Iterations {
			t.Errorf("query %d: iterations %d != serial %d", i, got[i].Result.Iterations, want.Iterations)
		}
	}
}

func TestBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	res := testGraph(t, 400)
	qs := testQueries(t, res, 5)
	var base []BatchResult
	for _, workers := range []int{1, 4, 16} {
		// Cache disabled so every run recomputes under a different
		// interleaving instead of replaying the first run's answers.
		e := New(res.G, Options{Workers: workers, CacheSize: -1})
		got := e.SearchBatch(context.Background(), qs)
		if base == nil {
			base = got
			continue
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Result.Community, base[i].Result.Community) {
				t.Fatalf("workers=%d query %d: community differs from workers=1 run", workers, i)
			}
		}
	}
}

func TestCacheHits(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{Workers: 2})
	q := Query{Nodes: []graph.Node{3, 1, 1}} // unnormalized on purpose
	ctx := context.Background()

	first, err := e.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// Same set under a different order and duplication must hit.
	second, err := e.Search(ctx, Query{Nodes: []graph.Node{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("expected the cached *Result pointer on the second search")
	}
	// A different option shape must miss.
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{1, 3}, Opts: dmcs.Options{TrackOrder: true}}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Queries != 3 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want Queries=3 CacheHits=1", st)
	}
	if st.CacheEntries != 2 {
		t.Errorf("CacheEntries = %d, want 2", st.CacheEntries)
	}
	if st.P50 <= 0 || st.P95 < st.P50 {
		t.Errorf("implausible latency percentiles: %+v", st)
	}
}

// cachePut/cacheGet are test shorthands hashing the key themselves.
func cachePut(c *resultCache, key string, r *dmcs.Result) {
	c.add(hashKey([]byte(key)), []byte(key), r)
}

func cacheGet(c *resultCache, key string) (*dmcs.Result, bool) {
	return c.get(hashKey([]byte(key)), []byte(key))
}

func TestCacheEviction(t *testing.T) {
	// One shard pins the global LRU order; multi-shard eviction is
	// per-shard and covered by TestShardedCachePerShardEviction.
	c := newResultCache(2, 1)
	r := &dmcs.Result{}
	cachePut(c, "a", r)
	cachePut(c, "b", r)
	if _, ok := cacheGet(c, "a"); !ok {
		t.Fatal("a evicted too early")
	}
	cachePut(c, "c", r) // evicts b (a was just touched)
	if _, ok := cacheGet(c, "b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := cacheGet(c, "a"); !ok {
		t.Error("a should have survived")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestShardedCachePerShardEviction groups keys by the shard their hash
// lands them in and verifies each shard runs an independent LRU of its
// own capacity: filling one shard beyond capacity evicts that shard's
// LRU key and nothing in any other shard.
func TestShardedCachePerShardEviction(t *testing.T) {
	c := newResultCache(8, 4) // 4 shards x 2 entries
	if len(c.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(c.shards))
	}
	// Bucket generated keys by shard until one shard has three keys (one
	// more than its capacity) and a different shard has at least one.
	byShard := make(map[*cacheShard][]string)
	var full []string
	var fullShard *cacheShard
	var other string
	for i := 0; full == nil || other == ""; i++ {
		if i > 10000 {
			t.Fatal("hash never distributed keys across shards")
		}
		k := key(i)
		sh := c.shardFor(hashKey([]byte(k)))
		byShard[sh] = append(byShard[sh], k)
		if full == nil && len(byShard[sh]) == 3 {
			full, fullShard = byShard[sh], sh
		}
		if full != nil && other == "" {
			for osh, keys := range byShard {
				if osh != fullShard {
					other = keys[0]
					break
				}
			}
		}
	}
	r := &dmcs.Result{}
	cachePut(c, other, r)
	cachePut(c, full[0], r)
	cachePut(c, full[1], r)
	cachePut(c, full[2], r) // shard cap 2: evicts full[0], the shard's LRU
	if _, ok := cacheGet(c, full[0]); ok {
		t.Error("expected the overfull shard's LRU key to be evicted")
	}
	for _, k := range []string{full[1], full[2], other} {
		if _, ok := cacheGet(c, k); !ok {
			t.Errorf("key %q should have survived", k)
		}
	}
	c.clear()
	if c.len() != 0 {
		t.Errorf("len after clear = %d, want 0", c.len())
	}
	if _, ok := cacheGet(c, full[1]); ok {
		t.Error("cleared key still served")
	}
	// The slab must be reusable after clear.
	cachePut(c, full[1], r)
	if _, ok := cacheGet(c, full[1]); !ok {
		t.Error("insert after clear failed")
	}
}

func key(i int) string { return "k" + strconv.Itoa(i) }

// TestShardedCacheCapacityClamp: the shard count never inflates the
// configured capacity — a small cache on a many-core machine (shard
// request > capacity) reduces its shard count instead of exceeding the
// CacheSize contract.
func TestShardedCacheCapacityClamp(t *testing.T) {
	for _, capacity := range []int{1, 32, 33} {
		c := newResultCache(capacity, 64)
		if got := len(c.shards) * int(c.shards[0].cap); got > capacity {
			t.Fatalf("capacity %d: shards hold %d total entries", capacity, got)
		}
		r := &dmcs.Result{}
		for i := 0; i < 4*capacity+8; i++ {
			cachePut(c, key(i), r)
		}
		if n := c.len(); n > capacity {
			t.Fatalf("capacity %d: cache holds %d entries after churn", capacity, n)
		}
	}
}

// TestCacheKeyCanonicalization is the regression test for
// result-irrelevant options splitting identical results across cache
// entries: Chi is ignored unless the objective is
// GeneralizedModularityDensity, and under GMD, Chi 0 and the documented
// default of 1 are the same configuration.
func TestCacheKeyCanonicalization(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{Workers: 2})
	ctx := context.Background()
	nodes := []graph.Node{0}

	r1, err := e.Search(ctx, Query{Nodes: nodes, Opts: dmcs.Options{Chi: 7.5}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Search(ctx, Query{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("Chi must not split cache entries under the default objective")
	}

	gmd0, err := e.Search(ctx, Query{Nodes: nodes, Opts: dmcs.Options{Objective: dmcs.GeneralizedModularityDensity}})
	if err != nil {
		t.Fatal(err)
	}
	gmd1, err := e.Search(ctx, Query{Nodes: nodes, Opts: dmcs.Options{Objective: dmcs.GeneralizedModularityDensity, Chi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if gmd0 != gmd1 {
		t.Error("GMD Chi=0 and Chi=1 are documented-equivalent and must share a cache entry")
	}
	gmd2, err := e.Search(ctx, Query{Nodes: nodes, Opts: dmcs.Options{Objective: dmcs.GeneralizedModularityDensity, Chi: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if gmd2 == gmd0 {
		t.Error("GMD Chi=2 is a different configuration and must not hit Chi=1's entry")
	}
	st := e.Stats()
	if st.CacheHits != 2 {
		t.Errorf("CacheHits = %d, want 2 (the two canonicalized repeats)", st.CacheHits)
	}
	if st.Computed != 3 {
		t.Errorf("Computed = %d, want 3 distinct configurations peeled", st.Computed)
	}
}

// TestSortNodesLargeSets covers the slices.Sort fallback: normalization
// of a large programmatic node set must stay correct (and fast) past the
// insertion-sort threshold.
func TestSortNodesLargeSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{insertionSortMax, insertionSortMax + 1, 1000} {
		in := make([]graph.Node, n)
		for i := range in {
			in[i] = graph.Node(rng.Intn(n / 2)) // force duplicates
		}
		got := normalizeNodes(in)
		want := append([]graph.Node(nil), in...)
		slices.Sort(want)
		want = slices.Compact(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: normalizeNodes mismatch", n)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	// Two triangles, disconnected from each other.
	g := graph.FromEdges(6, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	e := New(g, Options{})
	ctx := context.Background()
	if _, err := e.Search(ctx, Query{}); !errors.Is(err, dmcs.ErrEmptyQuery) {
		t.Errorf("empty query: err = %v", err)
	}
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{0, 99}}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out of range: err = %v", err)
	}
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{0, 3}}); !errors.Is(err, dmcs.ErrDisconnected) {
		t.Errorf("disconnected: err = %v", err)
	}
	if e.Snapshot().NumComponents() != 2 {
		t.Errorf("NumComponents = %d, want 2", e.Snapshot().NumComponents())
	}
	st := e.Stats()
	if st.Errors != 3 {
		t.Errorf("Errors = %d, want 3", st.Errors)
	}
}

func TestContextCancelledBeforeStart(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{0}}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestContextCancelMidQuery(t *testing.T) {
	// NCA recomputes articulation points per removal, so on a 2000-node
	// graph the serial run takes well over a second — cancelling after a
	// few milliseconds must land mid-peel.
	res := testGraph(t, 2000)
	e := New(res.G, Options{CacheSize: -1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.Search(ctx, Query{Nodes: []graph.Node{0}, Variant: dmcs.VariantNCA})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v to unwind", elapsed)
	}
}

func TestDefaultTimeoutMarksResult(t *testing.T) {
	res := testGraph(t, 2000)
	e := New(res.G, Options{DefaultTimeout: time.Millisecond})
	r, err := e.Search(context.Background(), Query{Nodes: []graph.Node{0}, Variant: dmcs.VariantNCA})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatal("expected TimedOut result under a 1ms default timeout")
	}
	if e.Stats().CacheEntries != 0 {
		t.Error("timed-out results must not be cached")
	}
}

func TestSnapshotAggregatesMatchGraph(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.SetWeight(1, 2, 2.5)
	b.AddEdge(2, 3)
	b.SetWeight(3, 4, 0.5)
	g := b.Build()
	s := NewSnapshot(g)
	c := s.CSR()
	if !c.Weighted() {
		t.Fatal("CSR should report weighted")
	}
	if c.TotalWeight() != g.TotalWeight() {
		t.Errorf("TotalWeight = %v, want %v", c.TotalWeight(), g.TotalWeight())
	}
	for u := 0; u < g.NumNodes(); u++ {
		if c.WeightedDegree(graph.Node(u)) != g.WeightedDegree(graph.Node(u)) {
			t.Errorf("WeightedDegree(%d) = %v, want %v", u, c.WeightedDegree(graph.Node(u)), g.WeightedDegree(graph.Node(u)))
		}
	}
	if got, want := c.Volume([]graph.Node{1, 2}), g.WeightedDegree(1)+g.WeightedDegree(2); got != want {
		t.Errorf("Volume = %v, want %v", got, want)
	}
}

func TestWeightedBatchMatchesSerial(t *testing.T) {
	// A weighted graph exercises the packed-weights CSR search end to end.
	b := graph.NewBuilder(8)
	edges := [][2]graph.Node{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}, {5, 6}, {6, 7}}
	for i, e := range edges {
		b.SetWeight(e[0], e[1], float64(i%3)+0.5)
	}
	g := b.Build()
	e := New(g, Options{Workers: 4})
	qs := []Query{{Nodes: []graph.Node{0}}, {Nodes: []graph.Node{4}}, {Nodes: []graph.Node{2, 5}}}
	got := e.SearchBatch(context.Background(), qs)
	for i, q := range qs {
		want, err := dmcs.Search(g, q.Nodes, q.Variant, q.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Err != nil {
			t.Fatal(got[i].Err)
		}
		if !reflect.DeepEqual(got[i].Result.Community, want.Community) || got[i].Result.Score != want.Score {
			t.Errorf("query %d: engine (%v, %v) != serial (%v, %v)",
				i, got[i].Result.Community, got[i].Result.Score, want.Community, want.Score)
		}
	}
}

// TestStressMixedVariantsArenaReuse floods the engine with mixed-variant
// queries across many components — unweighted and weighted rounds, with
// components big enough (>= 2×recompactMinAlive nodes) that NCA's
// geometric re-compaction and the fused weighted articulation kernel
// both run through the per-worker arena slot ping-pong — twice over the
// same engine so every worker arena is reused by dozens of searches, and
// checks every answer against a fresh serial search. Run under -race
// (CI does) this also proves arena checkout is properly isolated per
// in-flight query.
func TestStressMixedVariantsArenaReuse(t *testing.T) {
	const comps, size = 12, 80
	base := smallQueryEngineGraph(comps, size)
	weighted := graph.NewBuilder(base.NumNodes())
	i := 0
	base.Edges(func(u, v graph.Node) bool {
		weighted.SetWeight(u, v, 0.5+float64(i%7)/3)
		i++
		return true
	})
	variants := []dmcs.Variant{dmcs.VariantFPA, dmcs.VariantNCA, dmcs.VariantNCADR, dmcs.VariantFPADMG}
	var qs []Query
	for c := 0; c < comps; c++ {
		b := c * size
		v := variants[c%len(variants)]
		qs = append(qs,
			Query{Nodes: []graph.Node{graph.Node(b)}, Variant: v},
			Query{Nodes: []graph.Node{graph.Node(b + 5), graph.Node(b + 50)}, Variant: v,
				Opts: dmcs.Options{LayerPruning: v == dmcs.VariantFPA}},
		)
	}
	for _, g := range []*graph.Graph{base, weighted.Build()} {
		// Cache disabled: both rounds must recompute on recycled arenas.
		e := New(g, Options{Workers: 8, CacheSize: -1})
		for round := 0; round < 2; round++ {
			got := e.SearchBatch(context.Background(), qs)
			for i, q := range qs {
				want, err := dmcs.Search(g, normalizeNodes(q.Nodes), q.Variant, q.Opts)
				if err != nil {
					t.Fatal(err)
				}
				if got[i].Err != nil {
					t.Fatalf("round %d query %d: %v", round, i, got[i].Err)
				}
				if !reflect.DeepEqual(got[i].Result.Community, want.Community) || got[i].Result.Score != want.Score {
					t.Fatalf("round %d query %d (%v weighted=%v): engine (%v, %v) != serial (%v, %v)",
						round, i, q.Variant, g.Weighted(), got[i].Result.Community, got[i].Result.Score, want.Community, want.Score)
				}
			}
		}
	}
}

// TestEngineSteadyStateZeroAlloc pins the zero-alloc serving contract:
// once the cache is warm, Engine.Search performs no heap allocation.
// cmd/bench gates the same property via BenchmarkEngineSmallQueriesCacheHit.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := smallQueryEngineGraph(8, 40)
	e := New(g, Options{Workers: 1})
	ctx := context.Background()
	nodes := make([]graph.Node, 1)
	for c := 0; c < 8; c++ {
		nodes[0] = graph.Node(c * 40)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(400, func() {
		nodes[0] = graph.Node((i % 8) * 40)
		i++
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state cache-hit serving allocates %.1f allocs/op, want 0", allocs)
	}
}
