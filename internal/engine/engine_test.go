package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
	"dmcs/internal/lfr"
	"dmcs/internal/queries"
)

// testGraph generates a small deterministic LFR benchmark graph with its
// ground-truth communities.
func testGraph(t testing.TB, n int) *lfr.Result {
	t.Helper()
	cfg := lfr.Default()
	cfg.N = n
	cfg.AvgDeg = 12
	cfg.MaxDeg = 40
	cfg.MinComm = 15
	cfg.MaxComm = 60
	cfg.Seed = 1
	res, err := lfr.Generate(cfg)
	if err != nil {
		t.Fatalf("lfr.Generate: %v", err)
	}
	return res
}

// testQueries draws query sets of mixed sizes from the ground truth.
func testQueries(t testing.TB, res *lfr.Result, numSets int) []Query {
	t.Helper()
	var qs []Query
	for _, size := range []int{1, 2, 4} {
		sets := queries.Generate(res.G, res.Communities, queries.Options{
			NumSets: numSets,
			Size:    size,
			Seed:    int64(size),
		})
		for _, q := range sets {
			qs = append(qs, Query{Nodes: q})
		}
	}
	if len(qs) == 0 {
		t.Fatal("no query sets generated")
	}
	return qs
}

func TestBatchMatchesSerial(t *testing.T) {
	res := testGraph(t, 400)
	qs := testQueries(t, res, 6)
	// Add the slower variants on a few queries so every code path is
	// compared, not just FPA.
	qs = append(qs,
		Query{Nodes: qs[0].Nodes, Variant: dmcs.VariantFPADMG},
		Query{Nodes: qs[1].Nodes, Variant: dmcs.VariantNCA},
		Query{Nodes: qs[2].Nodes, Variant: dmcs.VariantNCADR},
		Query{Nodes: qs[3].Nodes, Opts: dmcs.Options{LayerPruning: true}},
		Query{Nodes: qs[4].Nodes, Opts: dmcs.Options{Objective: dmcs.ClassicModularity}},
	)

	e := New(res.G, Options{Workers: 8})
	got := e.SearchBatch(context.Background(), qs)
	for i, q := range qs {
		want, wantErr := dmcs.Search(res.G, normalizeNodes(q.Nodes), q.Variant, q.Opts)
		if (got[i].Err == nil) != (wantErr == nil) {
			t.Fatalf("query %d: err=%v, serial err=%v", i, got[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(got[i].Result.Community, want.Community) {
			t.Errorf("query %d (%v): community mismatch\n got %v\nwant %v",
				i, q.Nodes, got[i].Result.Community, want.Community)
		}
		if got[i].Result.Score != want.Score {
			t.Errorf("query %d: score %v != serial %v", i, got[i].Result.Score, want.Score)
		}
		if got[i].Result.Iterations != want.Iterations {
			t.Errorf("query %d: iterations %d != serial %d", i, got[i].Result.Iterations, want.Iterations)
		}
	}
}

func TestBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	res := testGraph(t, 400)
	qs := testQueries(t, res, 5)
	var base []BatchResult
	for _, workers := range []int{1, 4, 16} {
		// Cache disabled so every run recomputes under a different
		// interleaving instead of replaying the first run's answers.
		e := New(res.G, Options{Workers: workers, CacheSize: -1})
		got := e.SearchBatch(context.Background(), qs)
		if base == nil {
			base = got
			continue
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Result.Community, base[i].Result.Community) {
				t.Fatalf("workers=%d query %d: community differs from workers=1 run", workers, i)
			}
		}
	}
}

func TestCacheHits(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{Workers: 2})
	q := Query{Nodes: []graph.Node{3, 1, 1}} // unnormalized on purpose
	ctx := context.Background()

	first, err := e.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// Same set under a different order and duplication must hit.
	second, err := e.Search(ctx, Query{Nodes: []graph.Node{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("expected the cached *Result pointer on the second search")
	}
	// A different option shape must miss.
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{1, 3}, Opts: dmcs.Options{TrackOrder: true}}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Queries != 3 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want Queries=3 CacheHits=1", st)
	}
	if st.CacheEntries != 2 {
		t.Errorf("CacheEntries = %d, want 2", st.CacheEntries)
	}
	if st.P50 <= 0 || st.P95 < st.P50 {
		t.Errorf("implausible latency percentiles: %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newResultCache(2)
	r := &dmcs.Result{}
	c.add([]byte("a"), r)
	c.add([]byte("b"), r)
	if _, ok := c.get([]byte("a")); !ok {
		t.Fatal("a evicted too early")
	}
	c.add([]byte("c"), r) // evicts b (a was just touched)
	if _, ok := c.get([]byte("b")); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get([]byte("a")); !ok {
		t.Error("a should have survived")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestQueryValidation(t *testing.T) {
	// Two triangles, disconnected from each other.
	g := graph.FromEdges(6, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	e := New(g, Options{})
	ctx := context.Background()
	if _, err := e.Search(ctx, Query{}); !errors.Is(err, dmcs.ErrEmptyQuery) {
		t.Errorf("empty query: err = %v", err)
	}
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{0, 99}}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out of range: err = %v", err)
	}
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{0, 3}}); !errors.Is(err, dmcs.ErrDisconnected) {
		t.Errorf("disconnected: err = %v", err)
	}
	if e.Snapshot().NumComponents() != 2 {
		t.Errorf("NumComponents = %d, want 2", e.Snapshot().NumComponents())
	}
	st := e.Stats()
	if st.Errors != 3 {
		t.Errorf("Errors = %d, want 3", st.Errors)
	}
}

func TestContextCancelledBeforeStart(t *testing.T) {
	res := testGraph(t, 400)
	e := New(res.G, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{0}}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestContextCancelMidQuery(t *testing.T) {
	// NCA recomputes articulation points per removal, so on a 2000-node
	// graph the serial run takes well over a second — cancelling after a
	// few milliseconds must land mid-peel.
	res := testGraph(t, 2000)
	e := New(res.G, Options{CacheSize: -1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.Search(ctx, Query{Nodes: []graph.Node{0}, Variant: dmcs.VariantNCA})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v to unwind", elapsed)
	}
}

func TestDefaultTimeoutMarksResult(t *testing.T) {
	res := testGraph(t, 2000)
	e := New(res.G, Options{DefaultTimeout: time.Millisecond})
	r, err := e.Search(context.Background(), Query{Nodes: []graph.Node{0}, Variant: dmcs.VariantNCA})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Fatal("expected TimedOut result under a 1ms default timeout")
	}
	if e.Stats().CacheEntries != 0 {
		t.Error("timed-out results must not be cached")
	}
}

func TestSnapshotAggregatesMatchGraph(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.SetWeight(1, 2, 2.5)
	b.AddEdge(2, 3)
	b.SetWeight(3, 4, 0.5)
	g := b.Build()
	s := NewSnapshot(g)
	c := s.CSR()
	if !c.Weighted() {
		t.Fatal("CSR should report weighted")
	}
	if c.TotalWeight() != g.TotalWeight() {
		t.Errorf("TotalWeight = %v, want %v", c.TotalWeight(), g.TotalWeight())
	}
	for u := 0; u < g.NumNodes(); u++ {
		if c.WeightedDegree(graph.Node(u)) != g.WeightedDegree(graph.Node(u)) {
			t.Errorf("WeightedDegree(%d) = %v, want %v", u, c.WeightedDegree(graph.Node(u)), g.WeightedDegree(graph.Node(u)))
		}
	}
	if got, want := c.Volume([]graph.Node{1, 2}), g.WeightedDegree(1)+g.WeightedDegree(2); got != want {
		t.Errorf("Volume = %v, want %v", got, want)
	}
}

func TestWeightedBatchMatchesSerial(t *testing.T) {
	// A weighted graph exercises the packed-weights CSR search end to end.
	b := graph.NewBuilder(8)
	edges := [][2]graph.Node{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}, {5, 6}, {6, 7}}
	for i, e := range edges {
		b.SetWeight(e[0], e[1], float64(i%3)+0.5)
	}
	g := b.Build()
	e := New(g, Options{Workers: 4})
	qs := []Query{{Nodes: []graph.Node{0}}, {Nodes: []graph.Node{4}}, {Nodes: []graph.Node{2, 5}}}
	got := e.SearchBatch(context.Background(), qs)
	for i, q := range qs {
		want, err := dmcs.Search(g, q.Nodes, q.Variant, q.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Err != nil {
			t.Fatal(got[i].Err)
		}
		if !reflect.DeepEqual(got[i].Result.Community, want.Community) || got[i].Result.Score != want.Score {
			t.Errorf("query %d: engine (%v, %v) != serial (%v, %v)",
				i, got[i].Result.Community, got[i].Result.Score, want.Community, want.Score)
		}
	}
}

// TestStressMixedVariantsArenaReuse floods the engine with mixed-variant
// queries across many components — unweighted and weighted rounds, with
// components big enough (>= 2×recompactMinAlive nodes) that NCA's
// geometric re-compaction and the fused weighted articulation kernel
// both run through the per-worker arena slot ping-pong — twice over the
// same engine so every worker arena is reused by dozens of searches, and
// checks every answer against a fresh serial search. Run under -race
// (CI does) this also proves arena checkout is properly isolated per
// in-flight query.
func TestStressMixedVariantsArenaReuse(t *testing.T) {
	const comps, size = 12, 80
	base := smallQueryEngineGraph(comps, size)
	weighted := graph.NewBuilder(base.NumNodes())
	i := 0
	base.Edges(func(u, v graph.Node) bool {
		weighted.SetWeight(u, v, 0.5+float64(i%7)/3)
		i++
		return true
	})
	variants := []dmcs.Variant{dmcs.VariantFPA, dmcs.VariantNCA, dmcs.VariantNCADR, dmcs.VariantFPADMG}
	var qs []Query
	for c := 0; c < comps; c++ {
		b := c * size
		v := variants[c%len(variants)]
		qs = append(qs,
			Query{Nodes: []graph.Node{graph.Node(b)}, Variant: v},
			Query{Nodes: []graph.Node{graph.Node(b + 5), graph.Node(b + 50)}, Variant: v,
				Opts: dmcs.Options{LayerPruning: v == dmcs.VariantFPA}},
		)
	}
	for _, g := range []*graph.Graph{base, weighted.Build()} {
		// Cache disabled: both rounds must recompute on recycled arenas.
		e := New(g, Options{Workers: 8, CacheSize: -1})
		for round := 0; round < 2; round++ {
			got := e.SearchBatch(context.Background(), qs)
			for i, q := range qs {
				want, err := dmcs.Search(g, normalizeNodes(q.Nodes), q.Variant, q.Opts)
				if err != nil {
					t.Fatal(err)
				}
				if got[i].Err != nil {
					t.Fatalf("round %d query %d: %v", round, i, got[i].Err)
				}
				if !reflect.DeepEqual(got[i].Result.Community, want.Community) || got[i].Result.Score != want.Score {
					t.Fatalf("round %d query %d (%v weighted=%v): engine (%v, %v) != serial (%v, %v)",
						round, i, q.Variant, g.Weighted(), got[i].Result.Community, got[i].Result.Score, want.Community, want.Score)
				}
			}
		}
	}
}

// TestEngineSteadyStateZeroAlloc pins the zero-alloc serving contract:
// once the cache is warm, Engine.Search performs no heap allocation.
// cmd/bench gates the same property via BenchmarkEngineSmallQueriesCacheHit.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := smallQueryEngineGraph(8, 40)
	e := New(g, Options{Workers: 1})
	ctx := context.Background()
	nodes := make([]graph.Node, 1)
	for c := 0; c < 8; c++ {
		nodes[0] = graph.Node(c * 40)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(400, func() {
		nodes[0] = graph.Node((i % 8) * 40)
		i++
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state cache-hit serving allocates %.1f allocs/op, want 0", allocs)
	}
}
