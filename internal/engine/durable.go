package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"dmcs/internal/graph"
	"dmcs/internal/wal"
)

// Durable engines: an Engine wired to a write-ahead log. Apply appends
// each effective batch to the WAL before publishing its snapshot (an
// append failure fails the Apply — no un-logged state is ever served),
// periodic checkpoints bound replay time, and OpenDurable restarts into
// exactly the last durable epoch by loading the newest checkpoint and
// replaying the log suffix.
//
// Replay is bit-exact by construction: MergeCSR, UpdateComponents, and
// newSnapshotFrom are deterministic functions of (previous snapshot,
// ops), so replaying the logged ops reproduces not just the adjacency
// but the full component version vector — stable keys, versions, frozen
// w_G — that the cache-invalidation machinery is keyed by. Each log
// record carries the version stamps of the components its Apply
// touched; recovery re-derives them and refuses on any mismatch, so a
// divergence bug surfaces as a loud recovery error, never as a silently
// wrong graph. The one deliberate non-survivor is per-component
// stale-read ancestry (LookupStale's bounded history): it is a serving
// cache, empty after every restart.

// RecoveryInfo reports what OpenDurable reconstructed.
type RecoveryInfo struct {
	// CheckpointEpoch is the epoch of the checkpoint recovery started
	// from (0 for a fresh directory).
	CheckpointEpoch uint64
	// RecoveredEpoch is the epoch the engine serves after recovery.
	RecoveredEpoch uint64
	// RecordsReplayed is how many log records were replayed on top of
	// the checkpoint.
	RecordsReplayed int
	// TruncatedBytes is how much torn log tail recovery cut off.
	TruncatedBytes int64
	// SkippedCheckpoints counts invalid (torn) checkpoint files recovery
	// fell past.
	SkippedCheckpoints int
	// FreshStart reports that the data directory was empty and the
	// engine was seeded from the supplied graph.
	FreshStart bool
}

// OpenDurable opens (or initializes) the write-ahead log in wopts.Dir
// and returns an Engine serving the recovered state. A fresh directory
// is seeded from g (nil means an empty graph) and immediately
// checkpointed, so every subsequent recovery has a base image; a
// non-fresh directory ignores g entirely — the durable state is
// authoritative. Callers must CloseWAL when done.
func OpenDurable(g *graph.Graph, wopts wal.Options, opts Options) (*Engine, RecoveryInfo, error) {
	lg, recd, err := wal.Open(wopts)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	info := RecoveryInfo{
		CheckpointEpoch:    recd.BaseEpoch,
		RecordsReplayed:    len(recd.Records),
		TruncatedBytes:     recd.TruncatedBytes,
		SkippedCheckpoints: recd.SkippedCheckpoints,
	}
	e := newEngine(opts)
	e.wal = lg
	e.checkpointEvery = opts.CheckpointEvery
	if recd.Checkpoint == nil {
		if len(recd.Records) > 0 {
			lg.Close()
			return nil, info, fmt.Errorf("engine: data dir has %d log records but no checkpoint to replay them onto", len(recd.Records))
		}
		if g == nil {
			g = graph.NewBuilder(0).Build()
		}
		e.snap.Store(NewSnapshot(g))
		info.FreshStart = true
		// Seed checkpoint at epoch 0: without it a crash before the first
		// periodic checkpoint would leave records with no base image.
		if _, err := e.Checkpoint(); err != nil {
			lg.Close()
			return nil, info, fmt.Errorf("engine: seed checkpoint: %w", err)
		}
	} else {
		snap, err := newSnapshotFromCheckpoint(recd.Checkpoint)
		if err != nil {
			lg.Close()
			return nil, info, err
		}
		for i := range recd.Records {
			snap, err = replaySnapshot(snap, &recd.Records[i], opts.StaleRetention)
			if err != nil {
				lg.Close()
				return nil, info, err
			}
		}
		e.snap.Store(snap)
	}
	info.RecoveredEpoch = e.snap.Load().epoch
	rc := info
	e.recovery = &rc
	return e, info, nil
}

// newSnapshotFromCheckpoint rebuilds the published snapshot a
// checkpoint captured. Member lists are reconstructed by walking nodes
// in id order, which is exactly how every snapshot builder in this
// package produces them, so the result is bit-identical to the
// checkpointed original.
//
//dmcs:builder
func newSnapshotFromCheckpoint(cp *wal.Checkpoint) (*Snapshot, error) {
	n := cp.CSR.NumNodes()
	nc := len(cp.CompKeys)
	if len(cp.CompID) != n || len(cp.CompVers) != nc || len(cp.CompWG) != nc {
		return nil, fmt.Errorf("engine: checkpoint component vectors are inconsistent")
	}
	comps := make([][]graph.Node, nc)
	for u, id := range cp.CompID {
		if id < 0 || int(id) >= nc {
			return nil, fmt.Errorf("engine: checkpoint component id %d of node %d out of range", id, u)
		}
		comps[id] = append(comps[id], graph.Node(u))
	}
	for id, members := range comps {
		if len(members) == 0 {
			return nil, fmt.Errorf("engine: checkpoint component %d has no members", id)
		}
	}
	s := &Snapshot{
		csr:      cp.CSR,
		compID:   cp.CompID,
		comps:    comps,
		epoch:    cp.Epoch,
		compKey:  cp.CompKeys,
		compVer:  cp.CompVers,
		compWG:   cp.CompWG,
		compHist: make([][]compRef, nc),

		nextCompKey: cp.NextCompKey,
		subOnce:     make([]sync.Once, nc),
		subBuilt:    make([]atomic.Bool, nc),
		subs:        make([]*graph.SubCSR, nc),
	}
	return s, nil
}

// replaySnapshot applies one logged record on top of cur, verifying
// that replay reproduces exactly what was logged: the epoch must
// advance to the record's, the batch must not normalize away (an
// ineffective batch was never logged, so one appearing here means the
// base state diverged), and the re-derived component version stamps
// must match the record's.
func replaySnapshot(cur *Snapshot, r *wal.Record, staleRetention int) (*Snapshot, error) {
	csr, info := graph.MergeCSR(cur.csr, r.Ops)
	if info.NodesAdded == 0 && len(info.Inserted) == 0 && len(info.Removed) == 0 && info.WeightsChanged == 0 {
		return nil, fmt.Errorf("engine: replay diverged at epoch %d: logged batch normalized to a no-op", r.Epoch)
	}
	compID, comps, carried, _ := graph.UpdateComponents(csr, cur.compID, len(cur.comps), info)
	next, _, _ := newSnapshotFrom(cur, csr, compID, comps, carried, cur.epoch+1, staleRetention)
	if next.epoch != r.Epoch {
		return nil, fmt.Errorf("engine: replay diverged: produced epoch %d for record %d", next.epoch, r.Epoch)
	}
	if err := verifyStamps(next, r.Stamps); err != nil {
		return nil, err
	}
	return next, nil
}

// verifyStamps checks that the components replay touched are exactly
// the logged stamp set — the determinism oracle of recovery.
func verifyStamps(s *Snapshot, logged []wal.ComponentStamp) error {
	derived := touchedStamps(s)
	if len(derived) != len(logged) {
		return fmt.Errorf("engine: replay diverged at epoch %d: %d touched components, log says %d", s.epoch, len(derived), len(logged))
	}
	a := append([]wal.ComponentStamp(nil), derived...)
	b := append([]wal.ComponentStamp(nil), logged...)
	sort.Slice(a, func(i, j int) bool { return a[i].Key < a[j].Key })
	sort.Slice(b, func(i, j int) bool { return b[i].Key < b[j].Key })
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("engine: replay diverged at epoch %d: component stamp %d/%d is (%d,%d), log says (%d,%d)",
				s.epoch, i, len(a), a[i].Key, a[i].Ver, b[i].Key, b[i].Ver)
		}
	}
	return nil
}

// touchedStamps collects the (identity, version) stamps of the
// components whose version is the snapshot's own epoch — exactly the
// components the producing Apply touched.
func touchedStamps(s *Snapshot) []wal.ComponentStamp {
	var stamps []wal.ComponentStamp
	for id, ver := range s.compVer {
		if ver == s.epoch {
			stamps = append(stamps, wal.ComponentStamp{Key: s.compKey[id], Ver: ver})
		}
	}
	return stamps
}

// checkpointOf captures snap as a checkpoint image. Read-only on the
// snapshot; the returned checkpoint aliases the snapshot's immutable
// slices, which is safe because both sides are never mutated.
func checkpointOf(snap *Snapshot) *wal.Checkpoint {
	return &wal.Checkpoint{
		Epoch:       snap.epoch,
		NextCompKey: snap.nextCompKey,
		CSR:         snap.csr,
		CompID:      snap.compID,
		CompKeys:    snap.compKey,
		CompVers:    snap.compVer,
		CompWG:      snap.compWG,
	}
}

// Checkpoint persists the current snapshot as the newest checkpoint and
// prunes the log history it covers, returning the checkpointed epoch.
// It is a no-op (returning the existing epoch) when the newest
// checkpoint is already current. Concurrent with Apply and queries;
// the engine runs at most one periodic checkpoint at a time, and
// explicit callers racing it at worst write the same image twice.
func (e *Engine) Checkpoint() (uint64, error) {
	if e.wal == nil {
		return 0, fmt.Errorf("engine: no WAL attached")
	}
	snap := e.snap.Load()
	if ep, ok := e.wal.LastCheckpoint(); ok && ep == snap.epoch {
		return ep, nil
	}
	if err := e.wal.WriteCheckpoint(checkpointOf(snap)); err != nil {
		return 0, err
	}
	return snap.epoch, nil
}

// SyncWAL flushes and fsyncs the write-ahead log, advancing the durable
// epoch to everything applied so far. A no-op without a WAL.
func (e *Engine) SyncWAL() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Sync()
}

// DurableEpoch returns the newest epoch the WAL considers durable and
// whether a WAL is attached at all.
func (e *Engine) DurableEpoch() (uint64, bool) {
	if e.wal == nil {
		return 0, false
	}
	return e.wal.DurableEpoch(), true
}

// Recovery returns what OpenDurable reconstructed, if this engine was
// built through it.
func (e *Engine) Recovery() (RecoveryInfo, bool) {
	if e.recovery == nil {
		return RecoveryInfo{}, false
	}
	return *e.recovery, true
}

// CloseWAL syncs and closes the attached WAL (no-op without one). The
// engine must not Apply afterwards; queries keep working.
func (e *Engine) CloseWAL() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Close()
}

// EncodeState appends the engine's canonical state image — the
// checkpoint encoding of the current snapshot — to dst. Two engines
// hold bit-identical graph state (adjacency, aggregates, component
// partition, version vector) iff their EncodeState bytes are equal;
// the kill-crash differential harness compares recovered processes
// against a serial reference exactly this way.
func (e *Engine) EncodeState(dst []byte) []byte {
	return wal.AppendCheckpoint(dst, checkpointOf(e.snap.Load()))
}

// WriteStateDump writes EncodeState to w.
func (e *Engine) WriteStateDump(w io.Writer) error {
	_, err := w.Write(e.EncodeState(nil))
	return err
}
