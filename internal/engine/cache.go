package engine

import (
	"container/list"
	"sync"

	"dmcs/internal/dmcs"
)

// resultCache is a mutex-guarded LRU keyed by the normalized query key
// (snapshot epoch + sorted deduplicated node set + algorithm variant +
// result-shaping options). Only complete results are stored — timed-out
// or cancelled searches return whatever was peeled so far, which depends
// on wall-clock time, so caching them would leak nondeterminism into
// later queries.
//
// Entries are immutable once published: add on an existing key replaces
// the whole *cacheEntry rather than mutating the existing one in place.
// (Both paths hold the mutex, so the in-place write was not a data race;
// the invariant exists so no published entry is ever rewritten, keeping
// the cache safe against future lock-free readers or entries escaping
// the critical section.)
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *dmcs.Result
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, promoting it to most recently
// used. The result is shared — callers must treat it as immutable. The
// key is a byte view (usually a recycled worker buffer): the map lookup
// uses Go's string([]byte)-index optimization, so a cache hit performs no
// allocation.
func (c *resultCache) get(key []byte) (*dmcs.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[string(key)]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add stores res under a copy of key, evicting the least recently used
// entry when the cache is full. Only the insert path materializes the key
// string.
func (c *resultCache) add(key []byte, res *dmcs.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[string(key)]; ok {
		c.order.MoveToFront(el)
		// Replace immutably: the old entry is retired, never rewritten.
		old := el.Value.(*cacheEntry)
		el.Value = &cacheEntry{key: old.key, res: res}
		return
	}
	k := string(key)
	c.byKey[k] = c.order.PushFront(&cacheEntry{key: k, res: res})
	if c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

// clear drops every entry. Apply calls it after an epoch bump: entries of
// older epochs can no longer match any lookup, so holding them would only
// waste capacity until LRU churn evicts them.
func (c *resultCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.byKey)
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
