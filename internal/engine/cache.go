package engine

import (
	"sync"

	"dmcs/internal/dmcs"
)

// resultCache is a hash-sharded LRU keyed by the normalized query key
// (component identity + component version + sorted deduplicated node set
// + algorithm variant + result-shaping options). Only complete results
// are stored — timed-out or cancelled searches return whatever was
// peeled so far, which depends on wall-clock time, so caching them would
// leak nondeterminism into later queries.
//
// Sharding is the cache's concurrency story: the key's FNV-1a hash picks
// one of a power-of-two number of shards (sized to at least the engine's
// parallelism), and each shard has its own mutex, so concurrent hits on
// different keys proceed without contending on any global lock.
// Component-version keying makes this safe under mutation without any
// cross-shard coordination: Apply never needs to atomically invalidate
// the cache, because entries of superseded component versions can no
// longer match any fresh-path lookup — while entries of components the
// Apply did not touch keep matching, which is the whole point of
// component-scoped epochs (see the package doc).
//
// Within a shard the LRU is array-backed and intrusive: entries live in
// one slab indexed by int32, with prev/next links stored inline and a
// free list threaded through the same slab. Compared to the previous
// container/list implementation this eliminates the per-entry
// list.Element allocation and the pointer chase per touch — a hit is a
// map probe plus two slab index updates on memory the shard owns
// contiguously. Note the slab deliberately trades away the earlier
// design's never-rewrite-a-published-entry invariant: slots are
// recycled on eviction and overwritten on key replacement, so readers
// MUST hold the shard mutex — lock-free slot reads are not an available
// next step without reintroducing per-entry boxing. The shared
// *dmcs.Result values themselves stay immutable, which is what lets a
// hit hand the pointer out beyond the critical section.
//
// Each shard also anchors the singleflight table for its keys (see
// flight.go): in-flight computations and cached results are checked and
// published under the same shard lock, so a completed flight transitions
// into a cache entry with no window in which a concurrent miss could
// start a duplicate computation.
type resultCache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one lock's worth of the cache. The trailing pad keeps
// neighbouring shards' hot fields off one cache line when the shard
// slab is iterated by independent cores.
type cacheShard struct {
	//dmcs:striped
	mu sync.Mutex
	//dmcs:keyed
	byKey   map[string]int32
	entries []cacheEntry // slab; prev/next/free links are slab indices
	head    int32        // most recently used; -1 when empty
	tail    int32        // least recently used; -1 when empty
	free    int32        // free-list head threaded through next; -1 when none
	cap     int32        // max entries this shard holds
	//dmcs:keyed
	flights map[string]*flight
	_       [64]byte
}

type cacheEntry struct {
	key        string
	res        *dmcs.Result
	prev, next int32
}

// FNV-1a constants; the key hash that picks a shard.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey is allocation-free FNV-1a over the key bytes.
func hashKey(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// nextPow2 returns the smallest power of two >= n (and >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newResultCache builds a cache of at most capacity entries spread over
// a power-of-two number of shards. capacity <= 0 disables caching (nil
// cache; every method no-ops). The shard count starts at
// nextPow2(shards) and is halved until shards <= capacity, so the total
// never exceeds the configured capacity — a tiny cache on a many-core
// machine trades shard count for its capacity contract, not the other
// way around.
func newResultCache(capacity, shards int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	n := nextPow2(max(1, shards))
	for n > capacity {
		n >>= 1
	}
	perShard := capacity / n
	c := &resultCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		s := &c.shards[i]
		s.byKey = make(map[string]int32, perShard)
		s.head, s.tail, s.free = -1, -1, -1
		s.cap = int32(perShard)
	}
	return c
}

// shardFor returns the shard owning hash h.
func (c *resultCache) shardFor(h uint64) *cacheShard {
	// xor-fold the high bits in so shard choice uses the whole hash, not
	// just the low bits FNV mixes least.
	return &c.shards[(h^(h>>32))&c.mask]
}

// get returns the cached result for key, promoting it to most recently
// used in its shard. The result is shared — callers must treat it as
// immutable. The key is a byte view (usually a recycled worker buffer):
// the map lookup uses Go's string([]byte)-index optimization, so a cache
// hit performs no allocation and no channel operation — just one shard
// mutex.
//
//dmcs:hotpath
//dmcs:keyed key
func (c *resultCache) get(h uint64, key []byte) (*dmcs.Result, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(h)
	s.mu.Lock()
	// Inline map probe: the direct m[string(b)] expression is what keeps
	// the conversion allocation-free on the hit path.
	i, ok := s.byKey[string(key)]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.moveToFrontLocked(i)
	res := s.entries[i].res
	s.mu.Unlock()
	return res, true
}

// add stores res under a copy of key, evicting the shard's least
// recently used entry when the shard is full.
//
//dmcs:keyed key
func (c *resultCache) add(h uint64, key []byte, res *dmcs.Result) {
	if c == nil {
		return
	}
	s := c.shardFor(h)
	s.mu.Lock()
	s.addLocked(string(key), res)
	s.mu.Unlock()
}

// addLocked inserts or replaces key's entry. Only this path materializes
// key strings; flight publication passes an already-built string.
//
//dmcs:keyed key
func (s *cacheShard) addLocked(key string, res *dmcs.Result) {
	if i, ok := s.byKey[key]; ok {
		s.entries[i].res = res
		s.moveToFrontLocked(i)
		return
	}
	var i int32
	switch {
	case s.free >= 0:
		i = s.free
		s.free = s.entries[i].next
	case int32(len(s.entries)) < s.cap:
		s.entries = append(s.entries, cacheEntry{})
		i = int32(len(s.entries) - 1)
	default:
		// Recycle the LRU slot in place: no allocation, no free-list hop.
		i = s.tail
		s.detachLocked(i)
		delete(s.byKey, s.entries[i].key)
	}
	s.entries[i] = cacheEntry{key: key, res: res, prev: -1, next: -1}
	s.byKey[key] = i
	s.pushFrontLocked(i)
}

func (s *cacheShard) detachLocked(i int32) {
	e := &s.entries[i]
	if e.prev >= 0 {
		s.entries[e.prev].next = e.next
	} else {
		s.head = e.next
	}
	if e.next >= 0 {
		s.entries[e.next].prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (s *cacheShard) pushFrontLocked(i int32) {
	e := &s.entries[i]
	e.prev, e.next = -1, s.head
	if s.head >= 0 {
		s.entries[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

func (s *cacheShard) moveToFrontLocked(i int32) {
	if s.head == i {
		return
	}
	s.detachLocked(i)
	s.pushFrontLocked(i)
}

// clear drops every cached entry. The serving path never calls it —
// Apply invalidates logically, by advancing touched components'
// versions, and deliberately leaves untouched components' entries warm;
// superseded entries age out through LRU churn (or stay probeable by
// LookupStale within StaleRetention). clear remains for tests and for
// callers that want to release result memory wholesale. Shards are
// cleared one lock at a time — there is no cross-shard atomicity and
// none is needed, because version keying (not clearing) is what makes
// superseded entries unservable. In-flight computations are left
// untouched: a flight for a touched component publishes under its
// superseded version key, which no fresh-path lookup can match.
func (c *resultCache) clear() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.byKey)
		// Drop the slab's key/result references so the GC can reclaim
		// retired results, then reuse the backing array.
		s.entries = s.entries[:cap(s.entries)]
		clear(s.entries)
		s.entries = s.entries[:0]
		s.head, s.tail, s.free = -1, -1, -1
		s.mu.Unlock()
	}
}

// len returns the number of cached entries across all shards.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.byKey)
		s.mu.Unlock()
	}
	return n
}
