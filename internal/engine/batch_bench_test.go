package engine

import (
	"context"
	"testing"

	"dmcs/internal/graph"
)

// skewedBatchGraph is the fused-batch fixture: component 0 is a 2048-node
// expander-style whale (ring plus affine chords), followed by numComp
// small ring+chord communities of compSize nodes. The whale absorbs the
// hot 80% of a skewed batch; the tail spreads over the small components.
func skewedBatchGraph(whale, numComp, compSize int) *graph.Graph {
	b := graph.NewBuilder(whale + numComp*compSize)
	for u := 0; u < whale; u++ {
		b.AddEdge(graph.Node(u), graph.Node((u+1)%whale))
		b.AddEdge(graph.Node(u), graph.Node((7*u+3)%whale))
		b.AddEdge(graph.Node(u), graph.Node((131*u+17)%whale))
	}
	for c := 0; c < numComp; c++ {
		base := whale + c*compSize
		for i := 0; i < compSize; i++ {
			u := graph.Node(base + i)
			b.AddEdge(u, graph.Node(base+(i+1)%compSize))
			b.AddEdge(u, graph.Node(base+(i+7)%compSize))
			b.AddEdge(u, graph.Node(base+(i+13)%compSize))
		}
	}
	return b.Build()
}

const (
	skewWhaleNodes = 2048
	skewComponents = 200
	skewCompSize   = 80
	skewBatchSize  = 128
)

// skewedBatch builds one 128-query batch for iteration i: 80% of the
// queries hit the whale component through 8 distinct hot nodes (heavy
// intra-batch duplication — the hot-key shape production batches have),
// 20% spread across distinct small components. The node choices rotate
// with i so successive iterations present fresh cache keys and the
// benchmark keeps measuring computation, not replay.
func skewedBatch(i int) []Query {
	qs := make([]Query, 0, skewBatchSize)
	hotN := skewBatchSize * 8 / 10
	for j := 0; j < hotN; j++ {
		u := graph.Node((i*8 + j%8) * 13 % skewWhaleNodes)
		qs = append(qs, Query{Nodes: []graph.Node{u}})
	}
	for j := hotN; j < skewBatchSize; j++ {
		c := (i*(skewBatchSize-hotN) + j) % skewComponents
		u := graph.Node(skewWhaleNodes + c*skewCompSize + (i+j)%skewCompSize)
		qs = append(qs, Query{Nodes: []graph.Node{u}})
	}
	return qs
}

// BenchmarkEngineSkewedBatchFused measures the fused SearchBatch on the
// skewed workload: one admission snapshot, intra-batch dedup (the 102
// hot queries collapse onto 8 peels), component-ordered draining.
func BenchmarkEngineSkewedBatchFused(b *testing.B) {
	e := New(skewedBatchGraph(skewWhaleNodes, skewComponents, skewCompSize), Options{Workers: 4})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range e.SearchBatch(ctx, skewedBatch(i)) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkEngineSkewedBatchFanout is the pre-fusion comparator: the
// identical workload through the old per-query fan-out (every query a
// full Search — own snapshot load, flight registration, no intra-batch
// dedup beyond what cache and singleflight recover dynamically).
func BenchmarkEngineSkewedBatchFanout(b *testing.B) {
	e := New(skewedBatchGraph(skewWhaleNodes, skewComponents, skewCompSize), Options{Workers: 4})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs := skewedBatch(i)
		out := make([]BatchResult, len(qs))
		e.searchBatchFanout(ctx, qs, out)
		for _, r := range out {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkEngineSkewedBatchSolo issues the batch as a serial per-query
// Search loop — the client-side alternative to SearchBatch.
func BenchmarkEngineSkewedBatchSolo(b *testing.B) {
	e := New(skewedBatchGraph(skewWhaleNodes, skewComponents, skewCompSize), Options{Workers: 4})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range skewedBatch(i) {
			if _, err := e.Search(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}
