package engine

import (
	"bytes"
	"testing"

	"dmcs/internal/graph"
	"dmcs/internal/wal"
)

// FuzzCheckpointRoundTrip drives a durable engine with a fuzzed delta
// stream and asserts the checkpoint pipeline is lossless end to end:
// the canonical state encoding decodes back to an identical image, and
// an engine recovered from the persisted checkpoint + log is
// bit-identical to both the original engine and a reference rebuilt by
// replaying the same batches through the MergeCSR pipeline without any
// durability layer.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 1, 2, 3, 2, 3, 4})
	f.Add([]byte{3, 9, 0, 1, 4, 200, 2, 1, 2, 0, 1, 2})
	f.Add([]byte{1, 5, 6, 100, 1, 6, 7, 0, 2, 5, 6, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the fuzz bytes as a stream of small deltas, 4 bytes per
		// op: kind, u, v, weight-ish.
		var batches []Batch
		var cur Batch
		for i := 0; i+3 < len(data); i += 4 {
			u, v := graph.Node(data[i+1]%16), graph.Node(data[i+2]%16)
			switch data[i] % 5 {
			case 0:
				cur.AddEdge(u, v)
			case 1:
				cur.SetWeight(u, v, float64(data[i+3])/8)
			case 2:
				cur.RemoveEdge(u, v)
			case 3:
				cur.AddNode(u)
			case 4: // batch boundary
				batches = append(batches, cur)
				cur = Batch{}
			}
		}
		batches = append(batches, cur)

		dir := t.TempDir()
		seed := durableFixture()
		e, _, err := OpenDurable(seed, wal.Options{Dir: dir, Policy: wal.SyncOff}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref := New(durableFixture(), Options{})
		for _, b := range batches {
			st, err := e.Apply(b)
			if err != nil {
				t.Fatalf("durable apply: %v", err)
			}
			rst, _ := ref.Apply(b)
			if st.Epoch != rst.Epoch {
				t.Fatalf("durable engine at epoch %d, reference at %d", st.Epoch, rst.Epoch)
			}
		}

		enc := e.EncodeState(nil)
		if refEnc := ref.EncodeState(nil); !bytes.Equal(enc, refEnc) {
			t.Fatal("durable engine state diverged from the no-WAL reference")
		}
		// The canonical encoding decodes and re-encodes byte-identically.
		cp, err := wal.DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("DecodeCheckpoint of live state: %v", err)
		}
		if !bytes.Equal(wal.AppendCheckpoint(nil, cp), enc) {
			t.Fatal("checkpoint encoding did not round-trip byte-identically")
		}
		// Persist, recover, compare: restart must land on the same bits,
		// whether it replays from the seed checkpoint or loads the fresh one.
		if _, err := e.Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		if err := e.CloseWAL(); err != nil {
			t.Fatal(err)
		}
		e2, _, err := OpenDurable(nil, wal.Options{Dir: dir, Policy: wal.SyncOff}, Options{})
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer e2.CloseWAL()
		if !bytes.Equal(e2.EncodeState(nil), enc) {
			t.Fatal("recovered engine state diverged")
		}
	})
}
