package engine

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// Fused batch execution. SearchBatch used to be a thin fan-out that fed
// every query through the full Search path independently; for the skewed
// batches real workloads produce — most queries landing in one whale
// component — that meant B admissions racing the cache, B singleflight
// round-trips, and worker goroutines hopping between components so no
// arena stayed warm for any of them. The fused path instead admits the
// whole batch up front against ONE snapshot, answers hits immediately,
// deduplicates identical misses inside the batch, groups the remaining
// leaders by component id, and has the worker gang drain them in
// component order — consecutive peels of the same component reuse the
// snapshot's shared lazily-built sub-CSR (one build per group, however
// many queries hit it) and keep each worker's arena sized and
// cache-warm for that component. Per-query BFS layerings are NOT shared
// across distinct node sets: a layering depends on the protected node
// set, so sharing one would change results — only bitwise-identical
// queries (the deduplicated ones) share a peel, which is exactly the
// singleflight guarantee, applied intra-batch without its bookkeeping.
//
// Batch-level snapshot consistency is a deliberate upgrade: every query
// of one SearchBatch call is admitted, keyed, and computed against the
// same graph version, even if an Apply lands mid-batch (the old fan-out
// loaded the snapshot per query, so one batch could straddle versions).
// The only exception is the rare dup-fallback recompute below, which
// goes through Search and therefore the then-current version.
//
// The fused path deliberately skips the flight table: batch-internal
// duplicates are already collapsed, and registering B flights would put
// B map insertions back on the path the fusion exists to shorten. A
// concurrent Search that misses on the same key may therefore compute
// it redundantly — results are bit-identical either way, and the cache
// re-check under computeFused keeps the window small.

// batchPending is one admitted cache-miss awaiting fused execution.
type batchPending struct {
	idx   int // position in qs/out
	nodes []graph.Node
	//dmcs:keyed
	key  []byte // built by appendCacheKey at admission; epochkey tracks this field
	h    uint64
	comp int32
	v    dmcs.Variant
	opts dmcs.Options
	dup  int32 // index into pend of the identical leader, or -1
}

// SearchBatch answers qs and returns per-query results in input order.
// Queries are admitted against one snapshot, answered from the cache
// where possible, deduplicated, grouped by component id, and computed by
// up to Workers goroutines pulling groups in component order (the
// concurrency bound is engine-wide: overlapping SearchBatch and Search
// calls share the same semaphore). Results are bit-identical to issuing
// each query through Search serially against the same snapshot. A
// cancelled context fails the remaining queries with ctx.Err() but never
// discards results already computed.
func (e *Engine) SearchBatch(ctx context.Context, qs []Query) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	if e.cache == nil {
		// No cache means no keys to dedup or insert under; keep the
		// simple fan-out with per-query Search semantics.
		e.searchBatchFanout(ctx, qs, out)
		return out
	}
	snap := e.snap.Load()
	stripe := int(e.stripeCtr.Add(1) & uint32(e.stats.numStripes()-1))
	pend := make([]batchPending, 0, len(qs))
	firstByKey := make(map[string]int32, len(qs))
	for i := range qs {
		if err := ctx.Err(); err != nil {
			e.stats.recordError(stripe)
			out[i] = BatchResult{Err: err}
			continue
		}
		nodes := normalizeNodes(qs[i].Nodes)
		opts := canonicalOptions(qs[i].Opts)
		if opts.Timeout == 0 {
			opts.Timeout = e.defaultTimeout
		}
		// Admission before keying, as in run(): the key is scoped to the
		// query component's (identity, version) stamp on this snapshot.
		id, err := snap.componentIndex(nodes)
		if err != nil {
			e.stats.recordError(stripe)
			out[i] = BatchResult{Err: err}
			continue
		}
		key := appendCacheKey(nil, snap.compKey[id], snap.compVer[id], nodes, qs[i].Variant, opts)
		h := hashKey(key)
		if res, ok := e.cache.get(h, key); ok {
			e.stats.recordHit(stripe)
			out[i] = BatchResult{Result: res}
			continue
		}
		p := batchPending{idx: i, nodes: nodes, key: key, h: h, comp: id, v: qs[i].Variant, opts: opts, dup: -1}
		if j, ok := firstByKey[string(key)]; ok {
			p.dup = j
		} else {
			firstByKey[string(key)] = int32(len(pend))
		}
		pend = append(pend, p)
	}
	// Order the leaders so same-component work is contiguous: the worker
	// gang pulls from this order, so a component's sub-CSR is built once
	// (snapshot sync.Once) and each worker's arena stays warm for the
	// component it keeps drawing. Ties keep input order for locality of
	// anything the caller grouped deliberately.
	order := make([]int32, 0, len(pend))
	for pi := range pend {
		if pend[pi].dup < 0 {
			order = append(order, int32(pi))
		}
	}
	if len(order) > 0 {
		slices.SortFunc(order, func(a, b int32) int {
			pa, pb := &pend[a], &pend[b]
			if pa.comp != pb.comp {
				return int(pa.comp) - int(pb.comp)
			}
			return pa.idx - pb.idx
		})
		workers := e.workers
		if workers > len(order) {
			workers = len(order)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.drainBatch(ctx, snap, pend, order, &next, out)
			}()
		}
		e.drainBatch(ctx, snap, pend, order, &next, out)
		wg.Wait()
	}
	// Duplicates: share the leader's completed result (one peel served
	// them all — counted like a singleflight collapse). A leader that
	// errored or timed out produced an answer tied to its own clock and
	// cancellation timing, so its duplicates recompute individually.
	for pi := range pend {
		p := &pend[pi]
		if p.dup < 0 {
			continue
		}
		lead := out[pend[p.dup].idx]
		if lead.Err == nil && lead.Result != nil && !lead.Result.TimedOut {
			e.stats.recordServed(stripe, true)
			out[p.idx] = lead
			continue
		}
		res, err := e.Search(ctx, qs[p.idx])
		out[p.idx] = BatchResult{Result: res, Err: err}
	}
	return out
}

// drainBatch is one gang member's pull loop over the component-ordered
// leader queue.
func (e *Engine) drainBatch(ctx context.Context, snap *Snapshot, pend []batchPending, order []int32, next *atomic.Int64, out []BatchResult) {
	ws := e.getScratch()
	defer e.putScratch(ws)
	for {
		oi := int(next.Add(1)) - 1
		if oi >= len(order) {
			return
		}
		p := &pend[order[oi]]
		//dmcs:allow arenapair computeFused's BatchResult holds only the peel's escaping Result, never arena-backed memory; ws is released by the deferred putScratch above
		out[p.idx] = e.computeFused(ctx, snap, p, ws)
	}
}

// computeFused answers one deduplicated batch miss: re-check the cache
// (a concurrent Search may have published the key since admission), then
// peel through the same semaphore/cancellation/stats protocol as every
// other computed query and publish the completed result.
func (e *Engine) computeFused(ctx context.Context, snap *Snapshot, p *batchPending, ws *workerScratch) BatchResult {
	if res, ok := e.cache.get(p.h, p.key); ok {
		e.stats.recordHit(ws.stripe)
		return BatchResult{Result: res}
	}
	ws.nodes = append(ws.nodes[:0], p.nodes...)
	res, err := e.peelOwn(ctx, snap, p.comp, p.v, p.opts, ws)
	if err != nil {
		return BatchResult{Err: err}
	}
	e.stats.recordFused(ws.stripe)
	if !res.TimedOut {
		// Same publication rule as the flight path: only results that ran
		// to their natural end are shareable across callers.
		e.cache.add(p.h, p.key, res)
	}
	return BatchResult{Result: res}
}

// searchBatchFanout is the cache-disabled batch path: per-query Search
// calls pulled by a bounded goroutine pool, exactly the pre-fusion
// semantics (each query loads the then-current snapshot).
func (e *Engine) searchBatchFanout(ctx context.Context, qs []Query, out []BatchResult) {
	workers := e.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				res, err := e.Search(ctx, qs[i])
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
}
