package engine

import (
	"fmt"

	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
	"dmcs/internal/wal"
)

// Batch stages an ordered set of graph mutations for Engine.Apply. The
// zero value is an empty batch; stage ops with AddEdge / SetWeight /
// RemoveEdge / AddNode and hand the batch to Apply, which applies it
// atomically — queries see either none of the batch or all of it, never a
// prefix. Within a batch the last op on an edge wins, matching the
// Builder's duplicate-edge rule.
//
// A Batch is not safe for concurrent staging; build it on one goroutine
// (or guard it) and it may be reused after Apply via Reset.
type Batch struct {
	ops []graph.Delta
}

// AddEdge stages inserting the undirected edge (u,v) with weight 1.
// Inserting an existing edge resets its weight to 1 (last wins).
// Endpoints beyond the current node count grow the graph. Self-loops are
// ignored, as in the Builder.
func (b *Batch) AddEdge(u, v graph.Node) {
	b.ops = append(b.ops, graph.Delta{Op: graph.DeltaAddEdge, U: u, V: v, W: 1})
}

// SetWeight stages setting the weight of edge (u,v) to w, inserting the
// edge if absent. Applying a non-unit weight to a previously unweighted
// graph upgrades it to weighted.
func (b *Batch) SetWeight(u, v graph.Node, w float64) {
	b.ops = append(b.ops, graph.Delta{Op: graph.DeltaSetWeight, U: u, V: v, W: w})
}

// RemoveEdge stages deleting the undirected edge (u,v). Removing an
// absent edge is a no-op.
func (b *Batch) RemoveEdge(u, v graph.Node) {
	b.ops = append(b.ops, graph.Delta{Op: graph.DeltaRemoveEdge, U: u, V: v})
}

// AddNode stages ensuring node u exists (growing the node count to u+1),
// as an isolated node unless edges to it are staged too.
func (b *Batch) AddNode(u graph.Node) {
	b.ops = append(b.ops, graph.Delta{Op: graph.DeltaAddNode, U: u})
}

// Len returns the number of staged ops.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch for reuse, keeping its capacity.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// ApplyStats reports what one Engine.Apply did.
type ApplyStats struct {
	// Epoch is the version of the snapshot the batch produced (the
	// engine's initial snapshot is epoch 0). A batch whose ops all
	// normalize to nothing leaves the current version — and its warm
	// caches — in place, reporting the unchanged epoch.
	Epoch uint64
	// NodesAdded, EdgesAdded, EdgesRemoved, and WeightsChanged count the
	// batch's net effect after last-wins normalization against the
	// pre-batch snapshot: re-adding an existing edge or removing an absent
	// one counts nothing.
	NodesAdded, EdgesAdded, EdgesRemoved, WeightsChanged int
	// RefloodedNodes is how many nodes the incremental component
	// maintenance re-flooded — 0 for insert-only batches, and bounded by
	// the sizes of the post-union components containing a removal (a
	// batch that both merges components and removes an edge inside the
	// merged group re-floods the whole group).
	RefloodedNodes int
	// Components is the component count of the new snapshot.
	Components int
	// Invalidated counts the pre-batch components this Apply superseded:
	// their cached results, sub-CSRs, and in-flight singleflights became
	// unservable on the fresh path. Retained counts the pre-batch
	// components carried verbatim into the new snapshot — their versions,
	// caches, and flights all survived. Invalidated + Retained equals the
	// pre-batch component count.
	Invalidated, Retained int
}

// Apply merges the batch into the current snapshot and publishes the
// result as the next graph version. Concurrent Apply calls are
// serialized; Search/SearchBatch are never blocked — queries in flight
// drain on the version they admitted against (old snapshots are immutable
// and stay valid until their last reader finishes), and queries admitted
// after Apply returns run on the new version.
//
// Invalidation is component-scoped and airtight: every cache key, flight
// key, and sub-CSR is scoped to a (component identity, component version)
// pair, and Apply advances the versions only of the components the batch
// actually touched. Results for untouched components stay servable — no
// eager cache clear, no cross-shard sweep; entries for superseded
// component versions become unreachable on the fresh path the instant the
// new snapshot is published (LookupStale may still probe them, flagged,
// within StaleRetention) and age out of the LRU naturally. No query can
// ever observe a community computed against a superseded version of its
// component — not even a result that a slow pre-batch query inserts into
// the cache after the swap. In-flight singleflight computations are
// deliberately left running: flights for untouched components remain
// joinable and their results cacheable (their key is still current),
// while flights for touched components publish under the superseded
// version, unreachable by post-swap lookups.
//
// Cost: the merge is one sweep over the packed arrays (O(V+E) for the
// whole snapshot, independent of batch size), and component maintenance
// is incremental — insertions union in near-constant time, and only
// components that lost an edge are re-flooded.
//
// On an engine opened through OpenDurable, the batch is appended to the
// write-ahead log BEFORE the snapshot is published, and an append
// failure fails the whole Apply: the error return is non-nil, nothing
// was published, queries keep seeing the pre-batch version, and no
// un-logged state is ever served or acknowledged. On an engine without
// a WAL (New), Apply never returns an error.
func (e *Engine) Apply(b Batch) (ApplyStats, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	// The slow-Apply injection point: chaos profiles inject latency here
	// to stall mutation while queries keep draining on the old snapshot
	// (writers hold applyMu, so the stall also backs up later Applies —
	// exactly the failure being modeled). Error directives are
	// deliberately dropped for compatibility with the pre-durability
	// chaos profiles — the faultinject.WALAppend point inside the log is
	// where injected errors fail an Apply; an injected panic propagates
	// to the caller with applyMu released by the defer above.
	_ = faultinject.Fire(faultinject.EngineApply)
	cur := e.snap.Load()
	if len(b.ops) == 0 {
		return ApplyStats{Epoch: cur.epoch, Components: len(cur.comps)}, nil
	}
	csr, info := graph.MergeCSR(cur.csr, b.ops)
	if info.NodesAdded == 0 && len(info.Inserted) == 0 && len(info.Removed) == 0 && info.WeightsChanged == 0 {
		// Every op normalized away (removes of absent edges, re-adds of
		// existing ones): the merged graph is bit-identical, so keep the
		// current version and its warm result/sub-CSR caches. Nothing is
		// logged either — ineffective batches do not consume an epoch, so
		// the log's epoch sequence stays dense and replayable.
		return ApplyStats{Epoch: cur.epoch, Components: len(cur.comps)}, nil
	}
	compID, comps, carried, reflooded := graph.UpdateComponents(csr, cur.compID, len(cur.comps), info)
	next, invalidated, retained := newSnapshotFrom(cur, csr, compID, comps, carried, cur.epoch+1, e.staleRetention)
	if e.wal != nil {
		// Durability point: the raw staged ops (replay renormalizes them
		// identically) plus the version stamps of the touched components,
		// which recovery re-derives and verifies. Runs before the swap so
		// a failed append leaves the engine exactly at the pre-batch
		// version.
		rec := wal.Record{Epoch: next.epoch, Stamps: touchedStamps(next), Ops: b.ops}
		if err := e.wal.Append(rec); err != nil {
			return ApplyStats{}, fmt.Errorf("engine: apply epoch %d not durable: %w", next.epoch, err)
		}
	}
	e.invalidated.Add(uint64(invalidated))
	e.retained.Add(uint64(retained))
	e.snap.Store(next)
	e.maybeCheckpoint()
	return ApplyStats{
		Epoch:          next.epoch,
		NodesAdded:     info.NodesAdded,
		EdgesAdded:     len(info.Inserted),
		EdgesRemoved:   len(info.Removed),
		WeightsChanged: info.WeightsChanged,
		RefloodedNodes: reflooded,
		Components:     len(comps),
		Invalidated:    invalidated,
		Retained:       retained,
	}, nil
}

// maybeCheckpoint triggers a background checkpoint every
// Options.CheckpointEvery effective Applies. At most one runs at a
// time; a trigger that finds one in flight folds into it (the running
// checkpoint captures whatever snapshot is current when it reads).
func (e *Engine) maybeCheckpoint() {
	if e.wal == nil || e.checkpointEvery <= 0 {
		return
	}
	if e.sinceCkpt.Add(1) < int64(e.checkpointEvery) {
		return
	}
	if !e.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	e.sinceCkpt.Store(0)
	go func() {
		defer e.ckptBusy.Store(false)
		if _, err := e.Checkpoint(); err != nil {
			e.ckptFails.Add(1)
		}
	}()
}
