package engine

import (
	"context"
	"strconv"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// flight is one in-flight computation that concurrent identical misses
// collapse onto. The first miss (the leader) registers the flight in its
// cache shard and spawns the computing goroutine; later misses on the
// same (component version, key, effective timeout) join it. Everyone —
// leader included — waits on done, so a thundering herd of N identical
// misses costs one peel instead of N. Because flight keys carry the
// component's (identity, version) stamp rather than the global epoch, an
// Apply that does not touch a flight's component leaves the flight
// joinable — and its eventual result cacheable and servable — across the
// snapshot swap.
//
// Cancellation is refcounted, which is what makes joining safe: a
// waiter whose context fires leaves its wait immediately (returning its
// own ctx.Err()) and only decrements waiters; the shared computation is
// aborted — by closing cancel, which is wired into the search's
// Options.Cancel — only when the last waiter has left. So a joiner's
// cancellation never poisons the result other waiters are blocked on,
// and a fully abandoned computation stops peeling instead of running to
// completion for nobody.
type flight struct {
	done   chan struct{} // closed by the computing goroutine when res/err are set
	cancel chan struct{} // closed by the last departing waiter to abort the peel
	// waiters is guarded by the owning shard's mutex. It starts at 1
	// (the leader) and is joinable while > 0; once it reaches 0 the
	// flight is dead — late arrivals for the same key start a fresh one.
	waiters int
	res     *dmcs.Result
	err     error
}

// appendFlightKey extends a cache key with the query's effective timeout.
// The cache key deliberately excludes Timeout (only complete results are
// cached, and those do not depend on the deadline), but a flight's
// deadline shapes which partial it would produce, so queries only
// collapse onto computations configured with the same timeout — and even
// then, joiners refuse TimedOut outcomes (leader-clock skew) and fall
// back to their own clock; see searchShared.
//
//dmcs:keymaker
func appendFlightKey(b []byte, timeout time.Duration) []byte {
	b = append(b, '|', 't')
	return strconv.AppendInt(b, int64(timeout), 10)
}

// searchShared is the miss path when caching is enabled: join the key's
// in-flight computation if one is running, otherwise become the leader
// of a new one. ws.key holds the cache key on entry; the component id
// has already been validated against snap. searchShared takes ownership
// of ws and returns it to the pool before blocking on the flight — a
// parked waiter must not pin an arena-bearing bundle, or live bundles
// would scale with concurrent callers instead of actual parallelism.
//
// Joiners accept only complete (or errored) flight outcomes. A flight
// that ends TimedOut hit a deadline measured from the LEADER's start —
// a joiner that arrived later may have most of its own budget left, so
// handing it the leader's partial would shortchange it by the arrival
// skew. Such a joiner falls back to one computation on its own clock
// (exactly the serial semantics), which also caches its result if it
// completes. The leader keeps its own TimedOut partial: that clock was
// genuinely its own.
//
// Consequence worth knowing: for a hot key whose peel always exceeds
// the configured timeout, collapsing degrades to one peel per caller —
// each partial is arrival-time-dependent, so sharing any of them would
// change answers, and the fallbacks deliberately do not collapse with
// each other for the same reason. That is exactly the pre-singleflight
// cost (every caller peels, bounded by the Workers semaphore), not a
// new failure mode; singleflight's win applies to computations that
// complete.
//
//dmcs:owns ws
func (e *Engine) searchShared(ctx context.Context, snap *Snapshot, id int32, v dmcs.Variant, opts dmcs.Options, ws *workerScratch, h uint64, q Query) (*dmcs.Result, error) {
	baseLen := len(ws.key)
	ws.key = appendFlightKey(ws.key, opts.Timeout)
	stripe := ws.stripe
	sh := e.cache.shardFor(h)
	sh.mu.Lock()
	// Re-check the cache under the shard lock: the flight we would have
	// joined may have published between our lock-free miss and here, and
	// publication removes the flight and inserts the entry atomically
	// under this same lock. The probes below use the direct
	// map[string(bytes)] idiom, so a joiner (or this re-check hit)
	// allocates nothing — only the leader materializes keys.
	if i, ok := sh.byKey[string(ws.key[:baseLen])]; ok {
		sh.moveToFrontLocked(i)
		res := sh.entries[i].res
		sh.mu.Unlock()
		e.stats.recordHit(stripe)
		e.putScratch(ws)
		return res, nil
	}
	if f, ok := sh.flights[string(ws.key)]; ok && f.waiters > 0 {
		f.waiters++
		sh.mu.Unlock()
		e.putScratch(ws) // a parked waiter must not pin an arena
		res, err := e.awaitFlight(ctx, sh, f)
		switch {
		case err == ErrQueueTimeout:
			// The flight's budget ran out on the LEADER's queue clock; a
			// joiner that arrived later may have budget left, so it falls
			// back to its own clock, exactly like the TimedOut case below.
			return e.searchOwnClock(ctx, snap, id, v, opts, q)
		case err != nil:
			e.stats.recordError(stripe)
			return nil, err
		case res.TimedOut:
			// Leader-clock deadline expiry: recompute on our own clock.
			return e.searchOwnClock(ctx, snap, id, v, opts, q)
		default:
			e.stats.recordServed(stripe, true)
			return res, nil
		}
	}
	// Leader: materialize the flight key and the computing goroutine's
	// node copy (the computation about to run allocates its Result
	// anyway), then release the bundle before blocking.
	f := &flight{done: make(chan struct{}), cancel: make(chan struct{}), waiters: 1}
	if sh.flights == nil {
		sh.flights = make(map[string]*flight)
	}
	fk := string(ws.key)
	sh.flights[fk] = f
	sh.mu.Unlock()
	nodes := append([]graph.Node(nil), ws.nodes...)
	e.putScratch(ws)
	go e.computeFlight(f, sh, fk, baseLen, snap, id, nodes, v, opts)
	res, err := e.awaitFlight(ctx, sh, f)
	if err != nil {
		// A flight queue-timeout IS this leader's queue-timeout: the
		// flight's clock started when the leader registered it.
		if err == ErrQueueTimeout {
			e.stats.recordTimedOut(stripe)
		}
		e.stats.recordError(stripe)
		return nil, err
	}
	e.stats.recordServed(stripe, false)
	return res, nil
}

// awaitFlight blocks until the flight completes or the caller's context
// fires — whichever comes first. The context cancels only this caller's
// wait; the shared computation is aborted only if this caller was the
// last waiter. Stats are the caller's concern: a joiner may discard a
// timed-out outcome and recompute, so nothing is recorded here.
func (e *Engine) awaitFlight(ctx context.Context, sh *cacheShard, f *flight) (*dmcs.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		sh.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		sh.mu.Unlock()
		if last {
			close(f.cancel)
		}
		return nil, ctx.Err()
	}
}

// searchOwnClock is the joiner fallback when a shared computation timed
// out on the leader's clock: one unshared peel with this caller's own
// deadline, through the same peelOwn helper as the cache-disabled path,
// published to the cache if it runs to completion. It deliberately does
// not register a flight — the whole point is that this caller's clock
// is not shareable. The fallback is rare (it requires a flight to hit
// its deadline), so it checks out a fresh bundle and re-derives its
// buffers rather than taxing every joiner with copies up front.
func (e *Engine) searchOwnClock(ctx context.Context, snap *Snapshot, id int32, v dmcs.Variant, opts dmcs.Options, q Query) (*dmcs.Result, error) {
	ws := e.getScratch()
	ws.nodes = normalizeNodesInto(ws.nodes[:0], q.Nodes)
	res, err := e.peelOwn(ctx, snap, id, v, opts, ws)
	if err == nil && !res.TimedOut {
		ws.key = appendCacheKey(ws.key[:0], snap.compKey[id], snap.compVer[id], ws.nodes, v, opts)
		e.cache.add(hashKey(ws.key), ws.key, res)
	}
	e.putScratch(ws)
	return res, err
}

// computeFlight runs the flight's single peel: acquire a worker slot
// (bailing out if every waiter leaves while queued), search with the
// flight's refcounted cancel channel, then publish — removing the
// flight and, for complete results, inserting the cache entry under one
// shard lock, so no concurrent miss can slip between the two and start
// a duplicate computation.
//
//dmcs:keyed fk
func (e *Engine) computeFlight(f *flight, sh *cacheShard, fk string, baseLen int, snap *Snapshot, id int32, nodes []graph.Node, v dmcs.Variant, opts dmcs.Options) {
	var res *dmcs.Result
	var err error
	remaining, aerr := e.acquireSlot(opts.Timeout, f.cancel)
	switch aerr {
	case nil:
		opts.Timeout = remaining
		ws := e.getScratch()
		opts.Cancel = f.cancel
		start := time.Now()
		// safeSearch confines a panicking peel to this flight: every
		// waiter gets the *PanicError, the poisoned arena is discarded,
		// and the engine keeps serving.
		res, err = e.safeSearch(ws, snap.SubCSR(id), nodes, snap.comps[id], v, opts)
		// An abandoned peel is one that unwound early because the last
		// waiter left (a closed Cancel surfaces as TimedOut). It still
		// counts as a computed search — the work happened — but its
		// wall-clock is cancellation timing, not search cost, so it stays
		// out of the latency window; and its partial community depends on
		// when the cancellation landed, so it is never published. (A
		// genuine Options.Timeout expiry with waiters still present keeps
		// its TimedOut result: that is the documented deadline contract,
		// and it is still never cached.)
		abandoned := err == nil && res.TimedOut && isClosed(f.cancel)
		e.stats.recordSearch(ws.stripe, time.Since(start), err == nil && !abandoned)
		if err == nil && res.TimedOut && !abandoned {
			e.stats.recordTimedOut(ws.stripe)
		}
		e.putScratch(ws)
		<-e.sem
		if abandoned {
			res, err = nil, context.Canceled
		}
	case errSlotCancelled:
		// Abandoned before a worker slot freed up: nobody is waiting and
		// no peel ran, so there is nothing worth computing or counting.
		err = context.Canceled
	default:
		// The flight's budget expired while queued — no peel ran, nothing
		// is cacheable, and every waiter sees ErrQueueTimeout (joiners
		// fall back to their own clocks; see searchShared).
		err = aerr
	}
	sh.mu.Lock()
	// Guard against having been superseded: if every waiter left and a
	// late arrival started a replacement flight under the same key, the
	// map now points at the replacement — leave it alone.
	if sh.flights[fk] == f {
		delete(sh.flights, fk)
	}
	if err == nil && !res.TimedOut {
		sh.addLocked(fk[:baseLen], res)
	}
	sh.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// isClosed reports whether c has been closed, without blocking.
func isClosed(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}
